package contribmax_test

import (
	"os"
	"testing"

	"contribmax/internal/experiments"
)

// TestCommittedBaselineReport validates the checked-in BENCH_baseline.json
// against the report schema. The file records the cmbench figures measured
// at the commit preceding the CSR/arena memory-layout refactor and is the
// reference point for the RIS-throughput comparison in docs/PERFORMANCE.md;
// regenerate it with `go run ./cmd/cmbench -json BENCH_baseline.json` only
// when intentionally re-baselining.
func TestCommittedBaselineReport(t *testing.T) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	if err := experiments.ValidateReportJSON(data); err != nil {
		t.Errorf("BENCH_baseline.json invalid: %v", err)
	}
}

package contribmax_test

import (
	"os"
	"path/filepath"
	"testing"

	"contribmax/internal/experiments"
)

// TestCommittedBaselineReport validates the checked-in BENCH_baseline.json
// against the report schema. The file records the cmbench figures measured
// at the commit preceding the CSR/arena memory-layout refactor and is the
// reference point for the RIS-throughput comparison in docs/PERFORMANCE.md;
// regenerate it with `go run ./cmd/cmbench -json BENCH_baseline.json` only
// when intentionally re-baselining.
func TestCommittedBaselineReport(t *testing.T) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	if err := experiments.ValidateReportJSON(data); err != nil {
		t.Errorf("BENCH_baseline.json invalid: %v", err)
	}
}

// TestCommittedBenchReports validates every checked-in BENCH_*.json — the
// per-PR measurement snapshots as well as the baseline — against the
// report schema, so an additive schema change can never silently orphan
// an older committed report.
func TestCommittedBenchReports(t *testing.T) {
	reports, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no committed BENCH_*.json reports found")
	}
	for _, path := range reports {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := experiments.ValidateReportJSON(data); err != nil {
			t.Errorf("%s invalid: %v", path, err)
		}
	}
}

# Development targets. CI (.github/workflows/ci.yml) runs check + lint.

GO ?= go

# Every checked-in datalog program outside the seeded-defect corpus
# (testdata/analysis holds intentionally broken programs with .golden
# expectations; the golden test in internal/analysis covers those).
DL_PROGRAMS := $(shell find examples testdata -name '*.dl' -not -path 'testdata/analysis/*' | sort)

.PHONY: all build test race check lint staticcheck fmt bench bench-report fuzz journal-demo

all: check lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that evaluate programs concurrently.
race:
	$(GO) test -race ./internal/cm ./internal/db ./internal/im ./internal/engine ./internal/engine/difftest ./internal/obs ./internal/obs/journal ./internal/planner ./internal/prof ./internal/server ./internal/solvecache

# Run every Go micro-benchmark once: a compile-and-run guard for the bench
# code. Meaningful numbers need -benchtime left at its default; compare
# RIS-path results against the committed BENCH_baseline.json (see
# docs/PERFORMANCE.md).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable benchmark report (cmbench figures as BENCH_quick.json).
bench-report:
	$(GO) run ./cmd/cmbench -fig 7a -json BENCH_quick.json

# End-to-end journal demo: solve the paper's trade example with the event
# journal on, then render the convergence curves (see docs/OBSERVABILITY.md).
journal-demo:
	$(GO) run ./cmd/cmrun -program testdata/trade.dl -facts testdata/trade.facts \
		-target 'dealsWith(russia, ukraine)' -k 2 -rr 1000 \
		-journal /tmp/contribmax-journal.jsonl
	$(GO) run ./cmd/cmjournal /tmp/contribmax-journal.jsonl

# Short fuzz runs: the parse -> analyze -> stratify -> evaluate pipeline
# (asserting parallel evaluation stays byte-identical to sequential on
# every input the pipeline accepts), then the exact-vs-RIS estimator
# differential (random hierarchical instances; the sampled estimate must
# stay within its error proxy of the exact lifted value). CI runs the same
# smokes; longer local runs: make fuzz FUZZTIME=10m
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/engine -run=NONE -fuzz=FuzzEvalProgram -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cm -run=NONE -fuzz=FuzzExactVsRIS -fuzztime=$(FUZZTIME)

check: build test race
	$(GO) vet ./...

# Static-analyze every example and testdata program; warnings are
# reported but only errors (or missing files) fail the build.
lint:
	$(GO) run ./cmd/cmlint $(DL_PROGRAMS)

# Go static analysis beyond vet. CI installs staticcheck and govulncheck
# at workflow time; locally each runs when on PATH and is skipped (with a
# note) otherwise, so the target never requires a network install.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

fmt:
	gofmt -l -w .

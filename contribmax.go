package contribmax

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/im"
	"contribmax/internal/magic"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/optimize"
	"contribmax/internal/parser"
	"contribmax/internal/prof"
	"contribmax/internal/provenance"
	"contribmax/internal/solvecache"
	"contribmax/internal/wdgraph"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Term is a datalog term: variable or constant.
	Term = ast.Term
	// Atom is a relational atom R(t1, ..., tn).
	Atom = ast.Atom
	// Rule is a probabilistic datalog rule.
	Rule = ast.Rule
	// Program is a set of probabilistic datalog rules.
	Program = ast.Program

	// Input is a CM problem instance (program, database, T1, T2, k).
	Input = cm.Input
	// Options tunes the CM algorithms (θ policy, randomness source).
	Options = cm.Options
	// PlanMode toggles the greedy join planner for Options.Plan: PlanOn
	// (the zero value) plans and caches join orders; PlanOff evaluates
	// with the engine's built-in per-rule ordering and no cache.
	PlanMode = cm.PlanMode
	// Result is a CM algorithm's outcome: seeds, contribution estimate,
	// and the cost statistics the paper's figures report.
	Result = cm.Result
	// Stats carries per-run cost measurements.
	Stats = cm.Stats
	// OPTResult is the outcome of the exhaustive optimum search.
	OPTResult = cm.OPTResult
	// Estimator is the Monte-Carlo contribution oracle over the full WD
	// graph.
	Estimator = cm.Estimator

	// ThetaSpec selects the number of RR sets.
	ThetaSpec = im.ThetaSpec

	// EvalStats summarizes one datalog evaluation run.
	EvalStats = engine.Stats

	// WDGraph is the Weighted Derivation graph of Definition 3.1.
	WDGraph = wdgraph.Graph

	// DerivationTree is a derivation tree of an output tuple (Section II
	// of the paper); see Explain.
	DerivationTree = provenance.Tree

	// MetricsRegistry collects counters, gauges, and histograms from every
	// layer of a solve when handed to Options.Obs (nil disables all
	// collection at zero cost); see NewMetricsRegistry.
	MetricsRegistry = obs.Registry
	// TraceSpan is a node of a phase-timing trace tree; hand the root to
	// Options.Trace and render it afterwards. See StartTrace.
	TraceSpan = obs.Span

	// Journal is the structured solve event stream: hand one to
	// Options.Journal and every phase of the solve (graph build, fixpoint
	// rounds, RR batches, adaptive IMM rounds, greedy selection) emits
	// typed events into it — buffered in memory, optionally mirrored to a
	// JSONL sink. A nil Journal costs nothing. See NewJournal.
	Journal = journal.Journal
	// JournalOptions configures NewJournal (buffer capacity, JSONL sink).
	JournalOptions = journal.Options
	// JournalEvent is one journal entry: sequence number, timestamp, run
	// ID, type tag, and exactly one typed payload.
	JournalEvent = journal.Event

	// SolveCache memoizes built WD graphs and finalized RR collections
	// across solves, keyed by content fingerprints (database, program,
	// evaluation config, rng identity). Hand one to Options.Cache and
	// repeated solves of the same instance replay instead of rebuilding —
	// byte-identically. Safe for concurrent use; see NewSolveCache.
	SolveCache = solvecache.Cache
	// CacheIdentity names a solve's inputs to the cache (Options.CacheID).
	// The Rand field asserts the identity of the rng stream — required for
	// RR-collection reuse, since the multiset depends on the draws; leave
	// it empty (with a caller-supplied Rand) to cache graphs only.
	CacheIdentity = solvecache.Identity
	// SolveCacheStats is a point-in-time snapshot of a cache's hit, miss,
	// eviction, and byte accounting.
	SolveCacheStats = solvecache.Stats

	// RuntimeProfiler is the solve-scoped EXPLAIN ANALYZE collector: hand
	// one (NewRuntimeProfiler) to Options.Profile and the solve records
	// per-rule fixpoint accounting, per-stratum convergence curves, and
	// RR-phase attribution without perturbing results; render it afterwards
	// with Report. A nil profiler costs nothing.
	RuntimeProfiler = prof.Profile
	// RuntimeProfile is the finalized profile artifact (schema
	// contribmax/profile/v1): rules ranked by self-time, targets by walk
	// time, plus planner and phase reconciliation. WriteText renders the
	// cmrun -explain text tree, WriteJSON the JSON artifact.
	RuntimeProfile = prof.RuntimeProfile

	// Diagnostic is one static-analysis finding (severity, stable code,
	// source position, message); see Analyze.
	Diagnostic = analysis.Diagnostic
	// AnalysisOptions configures Analyze (extensional schema, query roots).
	AnalysisOptions = analysis.Options
	// Severity grades a Diagnostic.
	Severity = analysis.Severity
)

// Diagnostic severities, in ascending order.
const (
	SeverityInfo    = analysis.Info
	SeverityWarning = analysis.Warning
	SeverityError   = analysis.Error
)

// Join-planner modes for Options.Plan. Both modes provably compute the
// same results (the engine's differential battery holds them byte-
// identical); PlanOff exists as an escape hatch and an A/B lever.
const (
	PlanOn  = cm.PlanOn
	PlanOff = cm.PlanOff
)

// NewMetricsRegistry returns an empty metrics registry for Options.Obs.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSolveCache returns a solve cache bounded to maxBytes of resident
// graph and RR-collection payload (LRU-evicted; maxBytes <= 0 uses the
// 256 MiB default). Share one cache across all solves of a process.
func NewSolveCache(maxBytes int64) *SolveCache { return solvecache.New(maxBytes) }

// StartTrace opens a root trace span for Options.Trace. End it (or its
// children) and render the phase tree with its Render method.
func StartTrace(name string) *TraceSpan { return obs.StartSpan(name) }

// NewJournal returns a journal for Options.Journal. An empty runID gets a
// fresh random run ID (see NewRunID); Close flushes and reports any sink
// write error.
func NewJournal(runID string, opts JournalOptions) *Journal { return journal.New(runID, opts) }

// NewRunID returns a fresh random run identifier for correlating a solve's
// journal, metrics, and logs.
func NewRunID() string { return journal.NewRunID() }

// NewRuntimeProfiler returns an empty runtime profiler for Options.Profile.
// One profiler observes one solve; call Report on it after the solve
// returns.
func NewRuntimeProfiler() *RuntimeProfiler { return prof.New() }

// V returns a variable term.
func V(name string) Term { return ast.V(name) }

// C returns a constant term.
func C(name string) Term { return ast.C(name) }

// NewAtom builds an atom.
func NewAtom(pred string, terms ...Term) Atom { return ast.NewAtom(pred, terms...) }

// ParseProgram parses probabilistic datalog source text. See
// internal/parser for the grammar; briefly:
//
//	0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// ParseProgramFile reads and parses a program file.
func ParseProgramFile(path string) (*Program, error) { return parser.ParseProgramFile(path) }

// ParseProgramLoose parses program text without the well-formedness
// validation ParseProgram runs, so semantically ill-formed programs still
// yield an AST. Pair it with Analyze to get the full positioned diagnostic
// list instead of the first validation error.
func ParseProgramLoose(src string) (*Program, error) { return parser.ParseProgramLoose(src) }

// ParseFacts parses ground atoms ("exports(france, wine).") from source
// text.
func ParseFacts(src string) ([]Atom, error) { return parser.ParseFacts(src) }

// ParseFactsFile reads and parses a fact file.
func ParseFactsFile(path string) ([]Atom, error) { return parser.ParseFactsFile(path) }

// ParseAtom parses a single atom, e.g. "dealsWith(usa, iran)".
func ParseAtom(src string) (Atom, error) { return parser.ParseAtom(src) }

// Database wraps the storage layer with convenience loaders.
type Database struct {
	*db.Database
}

// NewDatabase returns an empty database.
func NewDatabase() Database { return Database{db.NewDatabase()} }

// InsertAll inserts ground atoms, ignoring duplicates. It returns the
// number of newly added facts and the first error encountered (non-ground
// atoms are errors).
func (d Database) InsertAll(facts []Atom) (added int, err error) {
	for _, f := range facts {
		_, _, fresh, err := d.InsertAtom(f)
		if err != nil {
			return added, err
		}
		if fresh {
			added++
		}
	}
	return added, nil
}

// LoadDatabase parses fact text into a fresh database.
func LoadDatabase(factSrc string) (Database, error) {
	d := NewDatabase()
	facts, err := ParseFacts(factSrc)
	if err != nil {
		return d, err
	}
	_, err = d.InsertAll(facts)
	return d, err
}

// LoadDatabaseFile loads facts from a file: a binary snapshot when the
// path ends in ".cmdb" (see Database.SaveSnapshot), a textual fact file
// otherwise.
func LoadDatabaseFile(path string) (Database, error) {
	if strings.HasSuffix(path, ".cmdb") {
		inner, err := db.LoadSnapshot(path)
		if err != nil {
			return Database{}, err
		}
		return Database{inner}, nil
	}
	facts, err := ParseFactsFile(path)
	if err != nil {
		return Database{}, err
	}
	d := NewDatabase()
	_, err = d.InsertAll(facts)
	return d, err
}

// ProbFact is a ground fact with a probability, for databases whose tuples
// (not only rules) are uncertain.
type ProbFact = parser.ProbFact

// ParseProbFacts parses a fact file with optional leading probabilities:
// "0.9 exports(france, wine)."
func ParseProbFacts(src string) ([]ProbFact, error) { return parser.ParseProbFacts(src) }

// ApplyFactProbabilities encodes tuple-level uncertainty in the pure
// rule-probability model, following footnote 2 of the paper: every
// probabilistic fact R(c...) @ p is stored in an auxiliary replica
// relation R_base, and a ground copy rule
//
//	p: R(c...) :- R_base(c...).
//
// is added to the program, so a random execution includes the fact with
// probability p. It returns the extended program and inserts the replica
// facts into d. Candidate sets (T1) should then name the R_base facts.
//
// It is an error if the program already mentions an R_base relation, or if
// R appears as an extensional predicate elsewhere in the program while
// also receiving copy rules (mixing certain edb tuples and probabilistic
// tuples of one relation requires routing the certain ones through a
// probability-1 ProbFact).
func ApplyFactProbabilities(prog *Program, facts []ProbFact, d Database) (*Program, error) {
	out := prog.Clone()
	used := map[string]bool{}
	for _, r := range out.Rules {
		used[r.Label] = true
	}
	baseOf := map[string]string{}
	n := 0
	for _, pf := range facts {
		if !pf.Atom.IsGround() {
			return nil, fmt.Errorf("contribmax: probabilistic fact %s is not ground", pf.Atom)
		}
		if pf.Prob < 0 || pf.Prob > 1 {
			return nil, fmt.Errorf("contribmax: probability %g outside [0,1] for %s", pf.Prob, pf.Atom)
		}
		pred := pf.Atom.Predicate
		base, ok := baseOf[pred]
		if !ok {
			base = pred + "_base"
			for _, r := range prog.Rules {
				if r.Head.Predicate == base {
					return nil, fmt.Errorf("contribmax: auxiliary relation %s collides with a program predicate", base)
				}
				for _, b := range r.Body {
					if b.Predicate == base {
						return nil, fmt.Errorf("contribmax: auxiliary relation %s collides with a program predicate", base)
					}
				}
			}
			baseOf[pred] = base
		}
		replica := pf.Atom.Rename(base)
		if _, _, _, err := d.InsertAtom(replica); err != nil {
			return nil, err
		}
		var label string
		for {
			n++
			label = fmt.Sprintf("pf%d", n)
			if !used[label] {
				break
			}
		}
		used[label] = true
		out.Add(ast.Rule{Label: label, Prob: pf.Prob, Head: pf.Atom.Clone(), Body: []ast.Atom{replica}})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("contribmax: %w", err)
	}
	return out, nil
}

// Analyze runs the static analyzer over prog: safety and range
// restriction, probability validation, arity consistency, undefined and
// unreachable predicates, negation through recursion, Magic-Sets
// applicability, recursion shape, query hierarchy, and dead rules, each
// reported with a stable code (CM000–CM019, see docs/DIALECT.md) and source
// positions when the program was parsed from text. The same checks gate
// every CM algorithm by default (see Options.SkipAnalysis); call Analyze
// directly for the full finding list rather than the first error.
func Analyze(prog *Program, opts AnalysisOptions) []Diagnostic {
	return analysis.Analyze(prog, opts)
}

// AnalyzeWithDB is Analyze with the extensional schema and query roots
// derived from a database and target atoms, matching the gate the CM
// algorithms run in front of an Input.
func AnalyzeWithDB(prog *Program, d Database, targets []Atom) []Diagnostic {
	edb := map[string]int{}
	for _, name := range d.RelationNames() {
		if rel, ok := d.Lookup(name); ok {
			edb[name] = rel.Arity()
		}
	}
	var roots []string
	seen := map[string]bool{}
	for _, a := range targets {
		if !seen[a.Predicate] {
			seen[a.Predicate] = true
			roots = append(roots, a.Predicate)
		}
	}
	return analysis.Analyze(prog, analysis.Options{EDB: edb, Roots: roots})
}

// ProgramProfile is the machine-readable output of the semantic program
// profiler: binding patterns per predicate, recursion and hierarchy
// classification, and prunable rules (see docs/ANALYSIS.md).
type ProgramProfile = analysis.ProgramProfile

// Profile runs every semantic analysis pass (adornment dataflow,
// recursion classification, hierarchy detection, dead-rule analysis) and
// returns the aggregate. The same information drives the CM013–CM019
// diagnostics and Options.Prune; cmlint -profile exposes it on files.
func Profile(prog *Program, opts AnalysisOptions) *ProgramProfile {
	return analysis.Profile(prog, opts)
}

// OptimizeReport counts the simplifications Optimize performed.
type OptimizeReport = optimize.Report

// Optimize returns a simplified copy of the program: constant-folded
// built-in guards, unsatisfiable rules dropped, self-supporting rules
// dropped, duplicate deterministic rules removed. The fixpoint and the
// contribution semantics are preserved.
func Optimize(prog *Program) (*Program, OptimizeReport) { return optimize.Program(prog) }

// NaiveCM solves the CM instance with the paper's Algorithm 2: full WD
// graph materialization followed by targeted RIS influence maximization.
func NaiveCM(in Input, opts Options) (*Result, error) { return cm.NaiveCM(in, opts) }

// MagicCM solves the CM instance with on-the-fly Magic-Sets subgraph
// construction (Algorithm 3): per sampled target, only the backward-
// reachable subgraph is materialized, then discarded.
func MagicCM(in Input, opts Options) (*Result, error) { return cm.MagicCM(in, opts) }

// MagicSampledCM is the paper's Magic^S CM: MagicCM with the RR sampling
// folded into subgraph construction, the recommended algorithm.
func MagicSampledCM(in Input, opts Options) (*Result, error) { return cm.MagicSampledCM(in, opts) }

// MagicGroupedCM is the paper's Magic^G CM variant: one grouped
// transformation and one shared subgraph for all sampled targets.
func MagicGroupedCM(in Input, opts Options) (*Result, error) { return cm.MagicGroupedCM(in, opts) }

// ExactCM solves the CM instance exactly by lifted inference when every
// target's cone is hierarchical (non-recursive, negation-free,
// self-join-free, nested-or-disjoint existential variables), and falls
// back to MagicCM sampling otherwise (Result.Stats.ExactFallback names
// the reason). Exact answers carry no sampling error: EstContribution and
// SeedGains are closed-form edge-percolation probabilities.
func ExactCM(in Input, opts Options) (*Result, error) { return cm.ExactCM(in, opts) }

// DNFCM solves the CM instance by Monte-Carlo possible-world sampling
// over per-target reachability DNFs from the provenance layer — an
// estimator with per-variable lineage, independent of the RIS machinery,
// used to cross-validate the samplers. Falls back to MagicCM when a
// lineage exceeds the clause budget.
func DNFCM(in Input, opts Options) (*Result, error) { return cm.DNFCM(in, opts) }

// ExactContribution evaluates C(S ⇝ T2) exactly for a specific seed set
// on a hierarchical instance (errors when ineligible).
func ExactContribution(in Input, seeds []Atom, opts Options) (float64, error) {
	return cm.ExactContribution(in, seeds, opts)
}

// ExactQueryProbability computes the exact edge-percolation probability
// that target is derivable, by lifted inference over its reachability
// lineage (errors when the cone is not hierarchical).
func ExactQueryProbability(prog *Program, d Database, target Atom) (float64, error) {
	return cm.ExactQueryProbability(prog, d.Database, target)
}

// GreedyMCOptions tunes GreedyMCCM.
type GreedyMCOptions = cm.GreedyMCOptions

// GreedyMCCM is the pre-RIS greedy baseline (Kempe et al.): full WD graph
// plus Monte-Carlo marginal-gain re-simulation per candidate per round.
// Same guarantee, far slower — kept for the ablation benchmark.
func GreedyMCCM(in Input, opts GreedyMCOptions) (*Result, error) { return cm.GreedyMCCM(in, opts) }

// NewEstimator builds a Monte-Carlo contribution oracle for the instance
// (materializes the full WD graph; meant for validation and small studies).
func NewEstimator(in Input) (*Estimator, error) { return cm.NewEstimator(in) }

// BruteForceOPT computes the (RR-estimated) optimum by exhaustive search
// over all k-subsets of T1. Feasible only for small T1.
func BruteForceOPT(in Input, rrSets int, rng *rand.Rand) (*OPTResult, error) {
	return cm.BruteForceOPT(in, rrSets, rng)
}

// Explain returns the most probable derivation tree of target — the
// complementary "how was this derived?" question to CM's "which inputs
// matter most?". For positive programs only the Magic-Sets-relevant
// subgraph is materialized; render the result with
// tree.Render(d.Symbols()).
//
// ok is false when target is not derivable from d under prog.
func Explain(prog *Program, d Database, target Atom) (tree *DerivationTree, ok bool, err error) {
	g, root, found, err := relevantGraph(prog, d, target)
	if err != nil || !found {
		return nil, false, err
	}
	tree, ok = provenance.BestDerivation(g, root)
	return tree, ok, nil
}

// relevantGraph materializes the WD subgraph relevant to target (via the
// Magic-Sets rewriting when the program is positive; the full graph
// otherwise) and locates target's node.
func relevantGraph(prog *Program, d Database, target Atom) (*wdgraph.Graph, wdgraph.NodeID, bool, error) {
	if !target.IsGround() {
		return nil, 0, false, fmt.Errorf("contribmax: target %s is not ground", target)
	}
	scratch := d.CloneSchema()
	for _, pred := range prog.EDBs() {
		if rel, found := d.Lookup(pred); found {
			scratch.Attach(rel)
		}
	}
	var g *wdgraph.Graph
	if tr, terr := magic.Transform(prog, []Atom{target}); terr == nil {
		eng, err := engine.New(tr.Program, scratch)
		if err != nil {
			return nil, 0, false, err
		}
		b := wdgraph.NewBuilder(tr.Projection())
		if _, err := eng.Run(engine.Options{Listener: b.Listener()}); err != nil {
			return nil, 0, false, err
		}
		g = b.Graph()
	} else {
		// Programs the transformation rejects (e.g. stratified negation)
		// fall back to the full graph of the positive rule firings.
		var err error
		g, _, err = wdgraph.Build(prog, scratch, nil, true, nil)
		if err != nil {
			return nil, 0, false, err
		}
	}
	tuple, err := d.InternAtom(target)
	if err != nil {
		return nil, 0, false, err
	}
	root, found := g.FactID(target.Predicate, tuple)
	return g, root, found, nil
}

// ExplainTopK returns up to k derivation trees of target, best first (see
// Explain for the single best). The trees are cycle-free; ok is false when
// target is not derivable.
func ExplainTopK(prog *Program, d Database, target Atom, k int) ([]*DerivationTree, error) {
	g, root, found, err := relevantGraph(prog, d, target)
	if err != nil || !found {
		return nil, err
	}
	return provenance.TopKDerivations(g, root, k, 0), nil
}

// DerivationProbability estimates the probability that target is derived
// in a random execution of the probabilistic program — the tuple semantics
// of probabilistic datalog. This is the conjunctive measure (a fact needs
// an instantiation with all body facts derived); contrast with
// Estimator.Contribution, the reachability-based marginal-contribution
// measure of the paper's Definition 3.4.
func DerivationProbability(prog *Program, d Database, target Atom, samples int, rng *rand.Rand) (float64, error) {
	return cm.DerivationProbability(prog, d.Database, target, samples, rng)
}

// Eval evaluates a (probabilistic) datalog program to its deterministic
// fixpoint P(D): all facts derivable by some execution. Derived facts are
// inserted into the database's idb relations.
func Eval(prog *Program, d Database) (EvalStats, error) {
	eng, err := engine.New(prog, d.Database)
	if err != nil {
		return EvalStats{}, err
	}
	return eng.Run(engine.Options{})
}

// BuildWDGraph materializes the full WD graph of (prog, d) per Definition
// 3.1, including a node for every edb fact. The evaluation runs on a
// scratch copy sharing d's edb relations, so d itself is not mutated.
func BuildWDGraph(prog *Program, d Database) (*WDGraph, error) {
	scratch := d.CloneSchema()
	for _, pred := range prog.EDBs() {
		if rel, ok := d.Lookup(pred); ok {
			scratch.Attach(rel)
		}
	}
	g, _, err := wdgraph.Build(prog, scratch, nil, true, nil)
	return g, err
}

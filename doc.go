// Package contribmax is a Go implementation of Contribution Maximization
// (CM) in probabilistic datalog, reproducing the system of
//
//	Milo, Moskovitch, Youngmann.
//	"Contribution Maximization in Probabilistic Datalog." ICDE 2020.
//
// Given a probabilistic datalog program (P, w), a database D, a candidate
// set T1 ⊆ D of input facts, a target set T2 ⊆ P(D) of output facts, and a
// budget k, the CM problem asks for the k-size subset of T1 whose joint
// expected contribution to the derivation of T2 is maximal. Contribution is
// defined over the Weighted Derivation (WD) graph — the union of all
// derivation trees with rule probabilities as edge weights — as the
// expected number of T2 facts reachable from the chosen seeds in a random
// subgraph (one random execution of the probabilistic program).
//
// The package exposes the paper's four algorithms:
//
//   - NaiveCM: materialize the full WD graph, then run a targeted
//     RIS-based influence-maximization algorithm over it.
//   - MagicCM: never materialize the full graph; per sampled target,
//     evaluate a probability-preserving Magic-Sets rewriting of the
//     program to build only the backward-reachable subgraph.
//   - MagicSampledCM (the paper's Magic^S / "Magic³"): additionally fold
//     the RR-set edge sampling into the subgraph construction, so only the
//     fired part of one random execution is ever materialized.
//   - MagicGroupedCM (Magic^G): one grouped Magic-Sets rewriting for all
//     sampled targets, one shared subgraph, per-RR sampled walks.
//
// All algorithms return the same (1 − 1/e − ε)-approximate solution in
// expectation; they differ — dramatically — in time and memory, which the
// bundled benchmark harness (bench_test.go, cmd/cmbench) quantifies per
// figure of the paper.
//
// # Quick start
//
//	prog, _ := contribmax.ParseProgram(`
//	    0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
//	    0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
//	    0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
//	`)
//	db := contribmax.NewDatabase()
//	facts, _ := contribmax.ParseFacts(`exports(france, wine). imports(germany, wine).`)
//	db.InsertAll(facts)
//	target, _ := contribmax.ParseAtom("dealsWith(france, germany)")
//	res, _ := contribmax.MagicSampledCM(contribmax.Input{
//	    Program: prog, DB: db.Database, T2: []contribmax.Atom{target}, K: 2,
//	}, contribmax.Options{})
//	fmt.Println(res.Seeds, res.EstContribution)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and the per-experiment index.
package contribmax

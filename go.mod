module contribmax

go 1.22

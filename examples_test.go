package contribmax_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program, asserting clean
// exit and a recognizable fragment of its output, so the examples cannot
// rot silently. Skipped under -short (each invocation pays a go-build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped with -short")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{
			"dealsWith0(france, cuba)",
			"Estimated joint contribution",
		}},
		{"./examples/trade", []string{
			"Example 3.5",
			"Example 3.7",
			"dealsWith0(france, cuba)",
		}},
		{"./examples/bottleneck", []string{
			"OPT pair:",
			"Magic^S / OPT contribution ratio",
		}},
		{"./examples/kbexplain", []string{
			"suspicious derived facts",
			"most responsible base facts",
		}},
		{"./examples/uncertain", []string{
			"most probable derivation",
			"most contributing source facts",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}

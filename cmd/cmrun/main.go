// Command cmrun solves a Contribution Maximization instance from files:
// given a probabilistic datalog program, a fact file, a set of target
// output tuples and a budget k, it prints the k input facts contributing
// the most to the targets.
//
// Usage:
//
//	cmrun -program trade.dl -facts trade.facts \
//	      -target 'dealsWith(usa, iran)' -target 'dealsWith(russia, ukraine)' \
//	      -k 2 [-algo magics] [-rr 300] [-seed 42] [-verbose]
//
// Algorithms: naive | magic | magics (default) | magicg | exact | dnf.
// exact answers by lifted inference — no sampling error — when every
// target's dependency cone is hierarchical, and falls back to magic
// sampling otherwise; dnf estimates by Monte-Carlo possible-world
// sampling over derivation lineages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"

	"contribmax"
)

type targetList []string

func (t *targetList) String() string { return strings.Join(*t, "; ") }

func (t *targetList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cmrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programPath = fs.String("program", "", "path to the datalog program file (required)")
		factsPath   = fs.String("facts", "", "path to the fact file or .cmdb snapshot (required)")
		k           = fs.Int("k", 10, "seed-set size")
		algo        = fs.String("algo", "magics", "algorithm: naive | magic | magics | magicg | exact | dnf")
		rr          = fs.Int("rr", 0, "number of RR sets (0 = 30% of #targets, floored at 1000)")
		seed        = fs.Uint64("seed", 1, "random seed")
		parallel    = fs.Int("parallel", 1, "worker goroutines: RR generation (magic/magics) and, when >= 2, the fixpoint engine for full-graph builds (naive/magicg); results are identical at every level")
		adaptive    = fs.Bool("adaptive", false, "derive the RR-set count adaptively (IMM) instead of -rr")
		verbose     = fs.Bool("verbose", false, "print run statistics")
		stats       = fs.Bool("stats", false, "print the per-phase timing tree and collected metrics on stderr")
		jsonOut     = fs.Bool("json", false, "emit the result as JSON on stdout")
		diverse     = fs.Int("diverse", 0, "max seeds per relation (1 = every seed from a different table; 0 = unconstrained)")
		journalOut  = fs.String("journal", "", "write the solve's structured event journal to this file as JSONL (render with cmjournal)")
		estimate    = fs.Bool("estimate", false, "re-estimate the seeds' contribution with 10k Monte-Carlo samples (builds the full WD graph)")
		nolint      = fs.Bool("nolint", false, "skip the static-analysis gate (errors still fail inside the algorithms; warnings are not printed)")
		warnFlag    = fs.String("W", "", `"error" makes static-analysis warnings fatal, matching cmlint -W error`)
		prune       = fs.Bool("prune", false, "drop rules provably outside the targets' dependency cone before solving (results are byte-identical)")
		noplan      = fs.Bool("noplan", false, "disable the greedy join planner and its plan cache (results are byte-identical; escape hatch / A-B lever)")
		explain     = fs.Bool("explain", false, "profile the solve and print an EXPLAIN ANALYZE-style tree on stderr: rules ranked by self-time, per-stratum convergence, RR-phase attribution (results are byte-identical)")
		profileOut  = fs.String("profile-json", "", "profile the solve and write the full runtime profile artifact (schema contribmax/profile/v1) to this file as JSON")
	)
	var targets targetList
	fs.Var(&targets, "target", "target output tuple or pattern, e.g. 'dealsWith(usa, iran)' or 'dealsWith(usa, Y)' (repeatable, required; patterns match against the program's derived facts)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *programPath == "" || *factsPath == "" || len(targets) == 0 {
		fs.Usage()
		return fmt.Errorf("need -program, -facts, and at least one -target")
	}
	if *warnFlag != "" && *warnFlag != "error" {
		return fmt.Errorf("-W accepts only \"error\", got %q", *warnFlag)
	}
	// Parse loose so the static-analysis gate below reports every finding
	// with source positions, not just the first validation error.
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return err
	}
	prog, err := contribmax.ParseProgramLoose(string(src))
	if err != nil {
		return fmt.Errorf("%s: %w", *programPath, err)
	}
	db, err := contribmax.LoadDatabaseFile(*factsPath)
	if err != nil {
		return err
	}
	var T2 []contribmax.Atom
	var patterns []contribmax.Atom
	for _, t := range targets {
		a, err := contribmax.ParseAtom(t)
		if err != nil {
			return fmt.Errorf("target %q: %w", t, err)
		}
		if a.IsGround() {
			T2 = append(T2, a)
		} else {
			patterns = append(patterns, a)
		}
	}
	if !*nolint {
		// Fail fast with positioned diagnostics (and surface warnings)
		// before any evaluation or graph construction. Roots are all target
		// predicates, ground and pattern alike.
		diags := contribmax.AnalyzeWithDB(prog, db, append(append([]contribmax.Atom{}, T2...), patterns...))
		failSeverity := contribmax.SeverityError
		if *warnFlag == "error" {
			failSeverity = contribmax.SeverityWarning
		}
		fatal := false
		for _, d := range diags {
			if d.Severity >= contribmax.SeverityWarning {
				fmt.Fprintf(stderr, "%s:%s\n", *programPath, d)
			}
			if d.Severity >= failSeverity {
				fatal = true
			}
		}
		if fatal {
			return fmt.Errorf("program rejected by static analysis (run cmlint %s for details, or -nolint to bypass)", *programPath)
		}
	} else if err := prog.Validate(); err != nil {
		// -nolint keeps the engine's own validation as the only gate.
		return fmt.Errorf("%s: %w", *programPath, err)
	}
	if len(patterns) > 0 {
		// Evaluate on a scratch database sharing the edb relations, then
		// expand each pattern against the derived facts.
		scratch := db.CloneSchema()
		for _, pred := range prog.EDBs() {
			if rel, ok := db.Lookup(pred); ok {
				scratch.Attach(rel)
			}
		}
		sdb := contribmax.Database{Database: scratch}
		if _, err := contribmax.Eval(prog, sdb); err != nil {
			return err
		}
		for _, p := range patterns {
			matches, err := sdb.Match(p)
			if err != nil {
				return fmt.Errorf("target pattern %s: %w", p, err)
			}
			if len(matches) == 0 {
				fmt.Fprintf(stderr, "warning: pattern %s matched no derived facts\n", p)
			}
			T2 = append(T2, matches...)
		}
	}
	if len(T2) == 0 {
		return fmt.Errorf("no target tuples (patterns matched nothing?)")
	}

	in := contribmax.Input{Program: prog, DB: db.Database, T2: T2, K: *k}
	opts := contribmax.Options{
		Theta:               contribmax.ThetaSpec{Explicit: *rr, Min: 1000},
		Adaptive:            *adaptive,
		MaxSeedsPerRelation: *diverse,
		Parallelism:         *parallel,
		Rand:                rand.New(rand.NewPCG(*seed, *seed^0x9E3779B9)),
		SkipAnalysis:        true,
		Prune:               *prune,
	}
	if *noplan {
		opts.Plan = contribmax.PlanOff
	}
	var trace *contribmax.TraceSpan
	if *stats {
		opts.Obs = contribmax.NewMetricsRegistry()
		trace = contribmax.StartTrace("cmrun")
		opts.Trace = trace
	}
	var journalFile *os.File
	if *journalOut != "" {
		journalFile, err = os.Create(*journalOut)
		if err != nil {
			return err
		}
		opts.Journal = contribmax.NewJournal("", contribmax.JournalOptions{Sink: journalFile})
	}
	if *explain || *profileOut != "" {
		opts.Profile = contribmax.NewRuntimeProfiler()
	}
	var res *contribmax.Result
	switch *algo {
	case "naive":
		res, err = contribmax.NaiveCM(in, opts)
	case "magic":
		res, err = contribmax.MagicCM(in, opts)
	case "magics":
		res, err = contribmax.MagicSampledCM(in, opts)
	case "magicg":
		res, err = contribmax.MagicGroupedCM(in, opts)
	case "exact":
		res, err = contribmax.ExactCM(in, opts)
	case "dnf":
		res, err = contribmax.DNFCM(in, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if *stats {
		trace.End()
		fmt.Fprintln(stderr, "phases:")
		trace.Render(stderr)
		fmt.Fprintln(stderr, "metrics:")
		opts.Obs.WriteText(stderr)
	}
	if journalFile != nil {
		// Close even on solve error: a partial journal still shows where
		// the solve got to.
		jerr := opts.Journal.Close()
		if cerr := journalFile.Close(); jerr == nil {
			jerr = cerr
		}
		if jerr != nil {
			return fmt.Errorf("journal %s: %w", *journalOut, jerr)
		}
		fmt.Fprintf(stderr, "cmrun: journal run %s written to %s\n", opts.Journal.Run(), *journalOut)
	}
	if err != nil {
		return err
	}
	if opts.Profile != nil {
		rep := opts.Profile.Report()
		if *explain {
			fmt.Fprintln(stderr, "explain:")
			if err := rep.WriteText(stderr); err != nil {
				return err
			}
		}
		if *profileOut != "" {
			f, ferr := os.Create(*profileOut)
			if ferr != nil {
				return ferr
			}
			werr := rep.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("profile %s: %w", *profileOut, werr)
			}
			fmt.Fprintf(stderr, "cmrun: runtime profile written to %s\n", *profileOut)
		}
	}

	if *jsonOut {
		return emitJSON(stdout, res, T2)
	}
	fmt.Fprintf(stdout, "algorithm: %s\n", res.Algorithm)
	if res.Stats.ExactFallback != "" {
		fmt.Fprintf(stderr, "cmrun: exact tier unavailable (%s); answered by %s sampling\n",
			res.Stats.ExactFallback, res.Algorithm)
	}
	fmt.Fprintf(stdout, "estimated contribution to %d targets: %.4f\n", len(T2), res.EstContribution)
	fmt.Fprintln(stdout, "seeds (greedy order):")
	for i, s := range res.Seeds {
		fmt.Fprintf(stdout, "  %d. %s\n", i+1, s)
	}
	if *verbose {
		st := res.Stats
		fmt.Fprintf(stdout, "stats: rr=%d builds=%d avgGraph=%.1f peak=%d covered=%d rules=%d pruned=%d\n",
			st.NumRR, st.GraphBuilds, st.AvgGraphSize(), st.PeakResidentSize, st.CoveredRR,
			st.RulesTotal, st.RulesPruned)
		fmt.Fprintf(stdout, "time: build=%v rrGen=%v select=%v total=%v\n",
			st.BuildTime, st.RRGenTime, st.SelectTime, st.TotalTime)
		if st.PlansBuilt > 0 {
			fmt.Fprintf(stdout, "plans: built=%d cacheHits=%d reordered=%d\n",
				st.PlansBuilt, st.PlanCacheHits, st.PlanAtomsReordered)
		}
	}
	if *estimate {
		est, err := contribmax.NewEstimator(in)
		if err != nil {
			return err
		}
		c, se, err := est.ContributionCI(res.Seeds, 10000, opts.Rand)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Monte-Carlo contribution of seeds: %.4f ± %.4f\n", c, 2*se)
	}
	return nil
}

// emitJSON writes the result in a stable machine-readable shape.
func emitJSON(w io.Writer, res *contribmax.Result, targets []contribmax.Atom) error {
	type out struct {
		Algorithm       string   `json:"algorithm"`
		Seeds           []string `json:"seeds"`
		SeedGains       []int    `json:"seedGains"`
		EstContribution float64  `json:"estContribution"`
		Targets         int      `json:"targets"`
		RRSets          int      `json:"rrSets"`
		GraphBuilds     int      `json:"graphBuilds"`
		AvgGraphSize    float64  `json:"avgGraphSize"`
		PeakGraphSize   int      `json:"peakGraphSize"`
		RulesTotal      int      `json:"rulesTotal"`
		RulesPruned     int      `json:"rulesPruned"`
		ExactFallback   string   `json:"exactFallback,omitempty"`
		TotalMillis     float64  `json:"totalMillis"`
	}
	o := out{
		Algorithm:       res.Algorithm,
		SeedGains:       res.SeedGains,
		EstContribution: res.EstContribution,
		Targets:         len(targets),
		RRSets:          res.Stats.NumRR,
		GraphBuilds:     res.Stats.GraphBuilds,
		AvgGraphSize:    res.Stats.AvgGraphSize(),
		PeakGraphSize:   res.Stats.PeakResidentSize,
		RulesTotal:      res.Stats.RulesTotal,
		RulesPruned:     res.Stats.RulesPruned,
		ExactFallback:   res.Stats.ExactFallback,
		TotalMillis:     float64(res.Stats.TotalTime.Microseconds()) / 1000,
	}
	for _, s := range res.Seeds {
		o.Seeds = append(o.Seeds, s.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o)
}

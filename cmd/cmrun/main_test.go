package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tcProgram = `1.0 r1: tc(X, Y) :- edge(X, Y).
0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
`

const tcFacts = `edge(a, b). edge(b, c). edge(x, y).
`

func writeFiles(t *testing.T, program, facts string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	pp := filepath.Join(dir, "prog.dl")
	fp := filepath.Join(dir, "edb.facts")
	if err := os.WriteFile(pp, []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fp, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	return pp, fp
}

func TestRunWarnAsError(t *testing.T) {
	// The zero-probability rule lints as a warning: fatal only under -W
	// error, mirroring cmlint and cmserve.
	pp, fp := writeFiles(t, tcProgram+"0.0 dead: tc(X, Y) :- edge(Y, X).\n", tcFacts)
	base := []string{"-program", pp, "-facts", fp, "-target", "tc(a, c)", "-k", "1", "-rr", "200"}

	var out, errBuf strings.Builder
	if err := run(base, &out, &errBuf); err != nil {
		t.Fatalf("warnings without -W error: %v", err)
	}
	if !strings.Contains(errBuf.String(), "warning") {
		t.Errorf("warning not printed to stderr: %q", errBuf.String())
	}

	err := run(append([]string{"-W", "error"}, base...), &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "static analysis") {
		t.Errorf("with -W error: err = %v, want static-analysis rejection", err)
	}

	if err := run(append([]string{"-W", "bogus"}, base...), &out, &errBuf); err == nil {
		t.Error("bad -W value accepted")
	}
}

func TestRunPruneByteIdentical(t *testing.T) {
	// d1 is outside tc's dependency cone; -prune must drop it without
	// changing the solution.
	pp, fp := writeFiles(t, tcProgram+"1.0 d1: other(X) :- edge(X, X).\n", tcFacts)
	base := []string{"-program", pp, "-facts", fp, "-target", "tc(a, c)", "-k", "1", "-rr", "200", "-json"}

	type result struct {
		Seeds           []string `json:"seeds"`
		EstContribution float64  `json:"estContribution"`
		RulesTotal      int      `json:"rulesTotal"`
		RulesPruned     int      `json:"rulesPruned"`
	}
	solve := func(args []string) result {
		t.Helper()
		var out, errBuf strings.Builder
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		var r result
		if err := json.Unmarshal([]byte(out.String()), &r); err != nil {
			t.Fatalf("output is not JSON: %v\n%s", err, out.String())
		}
		return r
	}

	plain := solve(base)
	pruned := solve(append([]string{"-prune"}, base...))
	if plain.RulesTotal != 3 || plain.RulesPruned != 0 {
		t.Errorf("unpruned counts = %d/%d, want 0/3", plain.RulesPruned, plain.RulesTotal)
	}
	if pruned.RulesTotal != 3 || pruned.RulesPruned != 1 {
		t.Errorf("pruned counts = %d/%d, want 1/3", pruned.RulesPruned, pruned.RulesTotal)
	}
	if strings.Join(plain.Seeds, ";") != strings.Join(pruned.Seeds, ";") ||
		plain.EstContribution != pruned.EstContribution {
		t.Errorf("pruned solve diverged: %+v vs %+v", pruned, plain)
	}
}

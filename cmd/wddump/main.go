// Command wddump materializes the full Weighted Derivation graph of a
// program and database and reports its statistics, optionally exporting it
// in Graphviz DOT format or printing the backward closure of a tuple.
//
// Usage:
//
//	wddump -program trade.dl -facts trade.facts            # stats only
//	wddump ... -dot graph.dot                              # DOT export
//	wddump ... -closure 'dealsWith(usa, iran)'             # ancestors of a tuple
package main

import (
	"flag"
	"fmt"
	"os"

	"contribmax"
	"contribmax/internal/wdgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wddump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		programPath = flag.String("program", "", "path to the datalog program file (required)")
		factsPath   = flag.String("facts", "", "path to the fact file or .cmdb snapshot (required)")
		dotPath     = flag.String("dot", "", "write the graph in DOT format to this file")
		closure     = flag.String("closure", "", "print the backward closure (ancestors) of this tuple")
		explain     = flag.String("explain", "", "print the most probable derivation tree of this tuple")
		topk        = flag.Int("topk", 1, "with -explain: print up to this many derivation trees, best first")
		probability = flag.String("probability", "", "estimate this tuple's derivation probability (10k random executions)")
	)
	flag.Parse()
	if *programPath == "" || *factsPath == "" {
		flag.Usage()
		return fmt.Errorf("need -program and -facts")
	}
	prog, err := contribmax.ParseProgramFile(*programPath)
	if err != nil {
		return err
	}
	db, err := contribmax.LoadDatabaseFile(*factsPath)
	if err != nil {
		return err
	}
	g, err := contribmax.BuildWDGraph(prog, db)
	if err != nil {
		return err
	}

	var factNodes, ruleNodes, edbNodes int
	g.FactNodes(func(_ wdgraph.NodeID, n wdgraph.Node) {
		factNodes++
		if n.EDB {
			edbNodes++
		}
	})
	ruleNodes = g.NumNodes() - factNodes
	fmt.Printf("WD graph: %d nodes (%d facts, %d edb, %d rule instantiations), %d edges, size %d\n",
		g.NumNodes(), factNodes, edbNodes, ruleNodes, g.NumEdges(), g.Size())
	fmt.Print(db.Stats())

	if *closure != "" {
		atom, err := contribmax.ParseAtom(*closure)
		if err != nil {
			return err
		}
		tuple, err := db.InternAtom(atom)
		if err != nil {
			return err
		}
		root, ok := g.FactID(atom.Predicate, tuple)
		if !ok {
			return fmt.Errorf("tuple %s is not in the WD graph (not derivable?)", atom)
		}
		fmt.Printf("backward closure of %s:\n", atom)
		w := wdgraph.NewWalker(g)
		syms := db.Symbols()
		count := 0
		w.ReverseClosure(root, func(v wdgraph.NodeID) {
			n := g.Node(v)
			if n.Kind != wdgraph.FactNode {
				return
			}
			count++
			fmt.Printf("  %s(", n.Pred)
			for i, s := range n.Tuple {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Print(syms.Name(s))
			}
			fmt.Println(")")
		})
		fmt.Printf("%d ancestor facts\n", count)
	}

	if *explain != "" {
		atom, err := contribmax.ParseAtom(*explain)
		if err != nil {
			return err
		}
		trees, err := contribmax.ExplainTopK(prog, db, atom, *topk)
		if err != nil {
			return err
		}
		if len(trees) == 0 {
			return fmt.Errorf("tuple %s is not derivable", atom)
		}
		for i, tree := range trees {
			fmt.Printf("derivation %d of %s (p = %.4g):\n%s",
				i+1, atom, tree.Prob, tree.Render(db.Symbols()))
		}
	}

	if *probability != "" {
		atom, err := contribmax.ParseAtom(*probability)
		if err != nil {
			return err
		}
		p, err := contribmax.DerivationProbability(prog, db, atom, 10000, nil)
		if err != nil {
			return err
		}
		fmt.Printf("P[%s derived] ~= %.4f (10k sampled executions)\n", atom, p)
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := wdgraph.WriteDOT(f, g, db.Symbols()); err != nil {
			return err
		}
		fmt.Printf("wrote DOT to %s\n", *dotPath)
	}
	return nil
}

// Command cmlint statically analyzes probabilistic datalog programs and
// reports diagnostics with source positions and stable codes (CM000–CM019,
// documented in docs/DIALECT.md).
//
// Usage:
//
//	cmlint [flags] program.dl...         # lint files
//	cmlint [flags] -                     # lint stdin
//
// Flags:
//
//	-facts file.facts   treat the fact file's predicates as the edb schema
//	-query p,q          analyze relative to these query/target predicates
//	-format f           output format: text (default), json, or sarif
//	-json               shorthand for -format json
//	-profile            emit the semantic program profile as JSON instead
//	                    of diagnostics (see docs/ANALYSIS.md)
//	-W error            promote warnings to errors (exit code 1)
//	-q                  suppress info-severity findings
//
// Programs may embed the same configuration as comments, so corpora lint
// without per-file flags:
//
//	%! query: dealsWith
//	%! facts: trade.facts
//
// Exit codes: 0 clean (or warnings without -W error), 1 diagnostics at the
// failing severity, 2 usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		factsFlag   = fs.String("facts", "", "comma-separated fact files giving the edb schema")
		queryFlag   = fs.String("query", "", "comma-separated query/target predicates")
		jsonFlag    = fs.Bool("json", false, "shorthand for -format json")
		formatFlag  = fs.String("format", "", "output format: text, json, or sarif")
		profileFlag = fs.Bool("profile", false, "emit the semantic program profile as JSON")
		wFlag       = fs.String("W", "", `"error" promotes warnings to errors`)
		quiet       = fs.Bool("q", false, "suppress info-severity findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *wFlag != "" && *wFlag != "error" {
		fmt.Fprintf(stderr, "cmlint: -W accepts only \"error\", got %q\n", *wFlag)
		return 2
	}
	format := *formatFlag
	if format == "" {
		if *jsonFlag {
			format = "json"
		} else {
			format = "text"
		}
	}
	switch format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "cmlint: -format accepts text, json, or sarif, got %q\n", format)
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "cmlint: no input files (use - for stdin)")
		fs.Usage()
		return 2
	}

	failSeverity := analysis.Error
	if *wFlag == "error" {
		failSeverity = analysis.Warning
	}

	exit := 0
	var results []analysis.FileResult
	for _, path := range paths {
		var res analysis.FileResult
		if path == "-" {
			src, err := io.ReadAll(os.Stdin)
			if err != nil {
				fmt.Fprintf(stderr, "cmlint: reading stdin: %v\n", err)
				return 2
			}
			res = analysis.LintSource("-", withFlagDirectives(string(src), *factsFlag, *queryFlag), analysis.Options{})
		} else {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "cmlint: %v\n", err)
				return 2
			}
			res = analysis.LintSource(path, withFlagDirectives(string(data), *factsFlag, *queryFlag), analysis.Options{})
		}
		if *quiet {
			res.Diagnostics = dropInfo(res.Diagnostics)
		}
		results = append(results, res)
		for _, d := range res.Diagnostics {
			if d.Severity >= failSeverity && exit == 0 {
				exit = 1
			}
		}
		if format == "text" && !*profileFlag {
			for _, d := range res.Diagnostics {
				fmt.Fprintf(stdout, "%s:%s\n", res.Path, d)
			}
		}
	}
	if *profileFlag {
		if err := writeProfiles(stdout, results); err != nil {
			fmt.Fprintf(stderr, "cmlint: %v\n", err)
			return 2
		}
		return exit
	}
	switch format {
	case "json":
		if err := writeJSON(stdout, results); err != nil {
			fmt.Fprintf(stderr, "cmlint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, results); err != nil {
			fmt.Fprintf(stderr, "cmlint: %v\n", err)
			return 2
		}
	}
	return exit
}

// writeProfiles emits one semantic profile object per file, keyed by path.
// Files that failed to parse get a null profile.
func writeProfiles(w io.Writer, results []analysis.FileResult) error {
	type fileProfile struct {
		File    string                   `json:"file"`
		Profile *analysis.ProgramProfile `json:"profile"`
	}
	out := make([]fileProfile, 0, len(results))
	for _, res := range results {
		fp := fileProfile{File: res.Path}
		if res.Program != nil {
			fp.Profile = analysis.Profile(res.Program, res.Options)
		}
		out = append(out, fp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// withFlagDirectives appends -facts/-query flag values as lint directives,
// so the one directive code path handles both sources of configuration.
// Appending (not prepending) keeps every source position unchanged.
// Directive-supplied fact paths resolve against the program file's
// directory, so flag paths — conventionally working-directory-relative —
// are made absolute first.
func withFlagDirectives(src, facts, query string) string {
	var sb strings.Builder
	for _, f := range splitList(facts) {
		if abs, err := absPath(f); err == nil {
			f = abs
		}
		sb.WriteString("%! facts: " + f + "\n")
	}
	if q := splitList(query); len(q) > 0 {
		sb.WriteString("%! query: " + strings.Join(q, " ") + "\n")
	}
	if sb.Len() == 0 {
		return src
	}
	return src + "\n" + sb.String()
}

func absPath(p string) (string, error) {
	if strings.HasPrefix(p, "/") {
		return p, nil
	}
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	return wd + "/" + p, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func dropInfo(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Severity != analysis.Info {
			out = append(out, d)
		}
	}
	return out
}

// jsonDiagnostic is the machine-readable diagnostic shape. Positions are
// 1-based; zero line means unknown.
type jsonDiagnostic struct {
	File     string        `json:"file"`
	Severity string        `json:"severity"`
	Code     string        `json:"code"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	EndLine  int           `json:"endLine,omitempty"`
	EndCol   int           `json:"endCol,omitempty"`
	Message  string        `json:"message"`
	Related  []jsonRelated `json:"related,omitempty"`
}

type jsonRelated struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, results []analysis.FileResult) error {
	out := []jsonDiagnostic{}
	for _, res := range results {
		for _, d := range res.Diagnostics {
			jd := jsonDiagnostic{
				File:     res.Path,
				Severity: d.Severity.String(),
				Code:     string(d.Code),
				Line:     d.Pos.Line,
				Col:      d.Pos.Col,
				Message:  d.Message,
			}
			if end := d.Span.End; end.IsValid() && end != (ast.Pos{Line: d.Pos.Line, Col: d.Pos.Col}) {
				jd.EndLine, jd.EndCol = end.Line, end.Col
			}
			for _, r := range d.Related {
				jd.Related = append(jd.Related, jsonRelated{Line: r.Pos.Line, Col: r.Pos.Col, Message: r.Message})
			}
			out = append(out, jd)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

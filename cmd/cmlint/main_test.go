package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.dl", "p(X) :- q(X).\n")
	warn := write(t, dir, "warn.dl", "0.0 dead: p(X) :- q(X).\np(X) :- q(X).\n")
	broken := write(t, dir, "broken.dl", "p(X :- q(X).\n")

	var out, errBuf strings.Builder
	if code := run([]string{clean}, &out, &errBuf); code != 0 {
		t.Errorf("clean file: exit %d, want 0 (stderr %q)", code, errBuf.String())
	}
	if code := run([]string{warn}, &out, &errBuf); code != 0 {
		t.Errorf("warnings without -W error: exit %d, want 0", code)
	}
	if code := run([]string{"-W", "error", warn}, &out, &errBuf); code != 1 {
		t.Errorf("warnings with -W error: exit %d, want 1", code)
	}
	if code := run([]string{broken}, &out, &errBuf); code != 1 {
		t.Errorf("parse error: exit %d, want 1", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.dl")}, &out, &errBuf); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"-W", "bogus", clean}, &out, &errBuf); code != 2 {
		t.Errorf("bad -W value: exit %d, want 2", code)
	}
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no inputs: exit %d, want 2", code)
	}
}

func TestRunTextOutputHasPositionsAndCodes(t *testing.T) {
	dir := t.TempDir()
	bad := write(t, dir, "bad.dl", "p(X, Y) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{bad}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	got := out.String() + errBuf.String()
	if !strings.Contains(got, "1:6") || !strings.Contains(got, "CM004") {
		t.Errorf("output %q lacks position 1:6 or code CM004", got)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	bad := write(t, dir, "bad.dl", "p(X, Y) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-json", bad}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errBuf.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatalf("no diagnostics in JSON output: %s", out.String())
	}
	d := diags[0]
	if d.Code != "CM004" || d.Line != 1 || d.Col != 6 || d.File != bad {
		t.Errorf("first diagnostic = %+v, want CM004 at 1:6 in %s", d, bad)
	}
}

// TestRunSARIFOutput is the acceptance check that -format sarif emits a
// log parseable as SARIF 2.1.0: correct version, a run with a tool driver,
// and one result per diagnostic carrying a ruleId and physical location.
func TestRunSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	bad := write(t, dir, "bad.dl", "p(X, Y) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-format", "sarif", bad}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errBuf.String())
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "cmlint" {
		t.Fatalf("runs %+v, want one run driven by cmlint", log.Runs)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	r := log.Runs[0].Results[0]
	if r.RuleID != "CM004" || r.Level != "error" {
		t.Errorf("first result = %+v, want CM004 at level error", r)
	}
	if len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
		t.Errorf("first result lacks a physical location: %+v", r)
	}
}

func TestRunBadFormat(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.dl", "p(X) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-format", "xml", clean}, &out, &errBuf); code != 2 {
		t.Errorf("bad -format: exit %d, want 2", code)
	}
}

func TestRunProfileOutput(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "prog.dl",
		"%! query: tc\nr1: tc(X, Y) :- edge(X, Y).\nr2: tc(X, Y) :- tc(X, Z), tc(Z, Y).\nd1: other(X) :- edge(X, X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-profile", prog}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errBuf.String())
	}
	var profiles []struct {
		File    string `json:"file"`
		Profile *struct {
			Roots   []string `json:"roots"`
			Pruning *struct {
				RulesTotal  int `json:"rules_total"`
				RulesPruned int `json:"rules_pruned"`
			} `json:"pruning"`
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(out.String()), &profiles); err != nil {
		t.Fatalf("profile output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(profiles) != 1 || profiles[0].Profile == nil {
		t.Fatalf("profiles = %+v, want one non-null profile", profiles)
	}
	p := profiles[0].Profile
	if len(p.Roots) != 1 || p.Roots[0] != "tc" {
		t.Errorf("roots = %v, want [tc] from the embedded directive", p.Roots)
	}
	if p.Pruning == nil || p.Pruning.RulesTotal != 3 || p.Pruning.RulesPruned != 1 {
		t.Errorf("pruning = %+v, want 3 total / 1 pruned", p.Pruning)
	}
}

func TestRunQueryAndFactsFlags(t *testing.T) {
	dir := t.TempDir()
	facts := write(t, dir, "edb.facts", "e(a, b).\n")
	prog := write(t, dir, "prog.dl", "p(X) :- e(X, Y).\ndead(X) :- e(X, X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-facts", facts, "-query", "p", prog}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errBuf.String())
	}
	got := out.String() + errBuf.String()
	if !strings.Contains(got, "CM009") {
		t.Errorf("output %q lacks CM009 for the unreachable rule", got)
	}
	if strings.Contains(got, "CM008") {
		t.Errorf("output %q reports CM008 though e is in the fact file", got)
	}
}

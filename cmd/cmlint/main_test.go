package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.dl", "p(X) :- q(X).\n")
	warn := write(t, dir, "warn.dl", "0.0 dead: p(X) :- q(X).\np(X) :- q(X).\n")
	broken := write(t, dir, "broken.dl", "p(X :- q(X).\n")

	var out, errBuf strings.Builder
	if code := run([]string{clean}, &out, &errBuf); code != 0 {
		t.Errorf("clean file: exit %d, want 0 (stderr %q)", code, errBuf.String())
	}
	if code := run([]string{warn}, &out, &errBuf); code != 0 {
		t.Errorf("warnings without -W error: exit %d, want 0", code)
	}
	if code := run([]string{"-W", "error", warn}, &out, &errBuf); code != 1 {
		t.Errorf("warnings with -W error: exit %d, want 1", code)
	}
	if code := run([]string{broken}, &out, &errBuf); code != 1 {
		t.Errorf("parse error: exit %d, want 1", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.dl")}, &out, &errBuf); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"-W", "bogus", clean}, &out, &errBuf); code != 2 {
		t.Errorf("bad -W value: exit %d, want 2", code)
	}
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no inputs: exit %d, want 2", code)
	}
}

func TestRunTextOutputHasPositionsAndCodes(t *testing.T) {
	dir := t.TempDir()
	bad := write(t, dir, "bad.dl", "p(X, Y) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{bad}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	got := out.String() + errBuf.String()
	if !strings.Contains(got, "1:6") || !strings.Contains(got, "CM004") {
		t.Errorf("output %q lacks position 1:6 or code CM004", got)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	bad := write(t, dir, "bad.dl", "p(X, Y) :- q(X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-json", bad}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errBuf.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatalf("no diagnostics in JSON output: %s", out.String())
	}
	d := diags[0]
	if d.Code != "CM004" || d.Line != 1 || d.Col != 6 || d.File != bad {
		t.Errorf("first diagnostic = %+v, want CM004 at 1:6 in %s", d, bad)
	}
}

func TestRunQueryAndFactsFlags(t *testing.T) {
	dir := t.TempDir()
	facts := write(t, dir, "edb.facts", "e(a, b).\n")
	prog := write(t, dir, "prog.dl", "p(X) :- e(X, Y).\ndead(X) :- e(X, X).\n")
	var out, errBuf strings.Builder
	if code := run([]string{"-facts", facts, "-query", "p", prog}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errBuf.String())
	}
	got := out.String() + errBuf.String()
	if !strings.Contains(got, "CM009") {
		t.Errorf("output %q lacks CM009 for the unreachable rule", got)
	}
	if strings.Contains(got, "CM008") {
		t.Errorf("output %q reports CM008 though e is in the fact file", got)
	}
}

// Command cmrepl is an interactive datalog shell: add rules and facts,
// query with patterns, explain derivations, estimate probabilities, and
// run contribution maximization from a prompt.
//
//	$ cmrepl
//	> :load program testdata/trade.dl
//	> :load facts testdata/trade.facts
//	> ?- dealsWith(usa, X).
//	> :explain dealsWith(usa, iran)
//	> :solve k=2 dealsWith(usa, iran) dealsWith(russia, ukraine)
package main

import (
	"fmt"
	"os"

	"contribmax/internal/repl"
)

func main() {
	if err := repl.New().Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cmrepl:", err)
		os.Exit(1)
	}
}

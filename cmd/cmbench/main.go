// Command cmbench regenerates the paper's evaluation figures (Section V)
// and prints each as a plain-text table: Figures 2 & 3 (per-RR graph size
// and generation time vs output size), Figures 4 & 5 (graph size and
// runtime vs number of RR sets), and Figures 7a/7b (approximation quality
// vs the exhaustive optimum).
//
// Usage:
//
//	cmbench                 # all figures, quick scale
//	cmbench -fig 2 -ds TC   # one figure, one dataset
//	cmbench -full           # the full laptop-scale sweep (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"contribmax/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig           = flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 7a, 7b, or all")
		ds            = flag.String("ds", "all", "dataset: TC, Explain, IRIS, AMIE, or all")
		full          = flag.Bool("full", false, "run the full-scale sweep (minutes) instead of the quick one")
		format        = flag.String("format", "text", "output format: text | csv")
		jsonOut       = flag.String("json", "", "also write every figure to this file as a machine-readable BENCH report")
		diff          = flag.String("diff", "", "compare this run against a baseline BENCH_*.json and warn (stderr) on regressions beyond -diff-threshold")
		diffThreshold = flag.Float64("diff-threshold", 0.20, "relative slowdown that counts as a regression for -diff (0.20 = 20%)")
		diffStrict    = flag.Bool("diff-strict", false, "exit nonzero when -diff finds regressions (default: warn only, for noisy CI runners)")
		noplan        = flag.Bool("noplan", false, "disable the greedy join planner in every solve (results are byte-identical; for bisecting timing regressions)")
		planAB        = flag.Bool("plan-ab", false, "also run and print the join-planner A/B measurement (always included in -json reports)")
		cacheAB       = flag.Bool("cache-ab", false, "also run and print the solve-cache cold/warm A/B (always included in -json reports)")
		estimatorAB   = flag.Bool("estimator-ab", false, "also run and print the exact/RIS/DNF estimator A/B (always included in -json reports)")
		profileRun    = flag.Bool("profile", false, "also run and print the runtime-profiled reference solve's rule hotspots (always included in -json reports)")
	)
	flag.Parse()
	experiments.NoPlan = *noplan

	scale := experiments.Quick
	scaleName := "quick"
	if *full {
		scale = experiments.Full
		scaleName = "full"
	}
	var report *experiments.Report
	if *jsonOut != "" || *diff != "" {
		report = experiments.NewReport(scaleName)
	}
	datasets := experiments.Datasets
	if *ds != "all" {
		datasets = []experiments.Dataset{experiments.Dataset(*ds)}
		found := false
		for _, d := range experiments.Datasets {
			if d == datasets[0] {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown dataset %q", *ds)
		}
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	emit := func(t *experiments.Table) error {
		if report != nil {
			report.AddTable(t)
		}
		if *format == "csv" {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			t.Print(os.Stdout)
		}
		fmt.Println()
		return nil
	}

	if want("2") || want("3") {
		for _, d := range datasets {
			fig2, fig3, err := experiments.FigureVaryingDataSize(d, scale)
			if err != nil {
				return err
			}
			if want("2") {
				if err := emit(fig2); err != nil {
					return err
				}
			}
			if want("3") {
				if err := emit(fig3); err != nil {
					return err
				}
			}
		}
	}
	if want("4") || want("5") {
		for _, d := range datasets {
			fig4, fig5, err := experiments.FigureVaryingRRSets(d, scale)
			if err != nil {
				return err
			}
			if want("4") {
				if err := emit(fig4); err != nil {
					return err
				}
			}
			if want("5") {
				if err := emit(fig5); err != nil {
					return err
				}
			}
		}
	}
	if want("7a") || strings.EqualFold(*fig, "7") {
		t, err := experiments.Figure7a(scale)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("7b") || strings.EqualFold(*fig, "7") {
		t, err := experiments.Figure7b(scale)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if *planAB || report != nil {
		// The planner A/B times the same Magic^S solves with the join
		// planner on and off and records the plan cache's accounting.
		summaries, err := experiments.PlannerSummaries()
		if err != nil {
			return err
		}
		if report != nil {
			report.Planner = summaries
		}
		if *planAB {
			t := experiments.PlannerTable(summaries)
			if *format == "csv" {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else {
				t.Print(os.Stdout)
			}
			fmt.Println()
		}
	}
	if *cacheAB || report != nil {
		// The cache A/B resolves the same request cold and warm against the
		// solve cache and fails hard if the warm replay misses or diverges.
		summaries, err := experiments.CacheSummaries()
		if err != nil {
			return err
		}
		if report != nil {
			report.Cache = summaries
		}
		if *cacheAB {
			t := experiments.CacheTable(summaries)
			if *format == "csv" {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else {
				t.Print(os.Stdout)
			}
			fmt.Println()
		}
	}
	if *estimatorAB || report != nil {
		// The estimator A/B solves the same power-law instances with the
		// exact lifted tier, RIS, and DNF world sampling, and fails hard if
		// a sampler strays beyond its error proxy of the exact value.
		summaries, err := experiments.EstimatorSummaries()
		if err != nil {
			return err
		}
		if report != nil {
			report.Estimators = summaries
		}
		if *estimatorAB {
			t := experiments.EstimatorTable(summaries)
			if *format == "csv" {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else {
				t.Print(os.Stdout)
			}
			fmt.Println()
		}
	}
	if *profileRun || report != nil {
		// The profiled reference solve embeds rule-level hotspots so report
		// diffs notice when evaluation behavior shifts, not just timings.
		summary, err := experiments.ProfiledReferenceSolve(scale)
		if err != nil {
			return err
		}
		if report != nil {
			report.Profile = summary
		}
		if *profileRun {
			t := experiments.ProfileTable(summary)
			if *format == "csv" {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else {
				t.Print(os.Stdout)
			}
			fmt.Println()
		}
	}
	if report != nil {
		// The journaled reference solve gives every report a comparable
		// RR/coverage telemetry block alongside the figures.
		summary, err := experiments.JournaledReferenceSolve(scale)
		if err != nil {
			return err
		}
		report.Journal = summary
		// Static dead-rule summaries let report diffs notice workload
		// program changes (see DiffReports).
		pruning, err := experiments.PruningSummaries()
		if err != nil {
			return err
		}
		report.Pruning = pruning
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cmbench: wrote %d figure(s) to %s\n", len(report.Figures), *jsonOut)
	}
	if *diff != "" {
		data, err := os.ReadFile(*diff)
		if err != nil {
			return err
		}
		baseline, err := experiments.LoadReport(data)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", *diff, err)
		}
		warnings := experiments.DiffReports(baseline, report, *diffThreshold)
		if len(warnings) == 0 {
			fmt.Fprintf(os.Stderr, "cmbench: no regressions >%.0f%% vs %s\n", *diffThreshold*100, *diff)
		}
		// Warn-only by default: benchmark noise on shared CI runners must
		// not fail the build; -diff-strict opts into a hard gate.
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "cmbench: WARNING: regression vs %s: %s\n", *diff, w)
		}
		if *diffStrict && len(warnings) > 0 {
			return fmt.Errorf("%d regression(s) beyond %.0f%% vs %s", len(warnings), *diffThreshold*100, *diff)
		}
	}
	return nil
}

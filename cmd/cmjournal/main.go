// Command cmjournal renders a solve journal (the JSONL event stream
// written by `cmrun -journal`, `GET /journal/{id}`, or any
// Options.Journal sink) as human-readable text: a run summary plus the
// convergence curves — RR generation progress, adaptive IMM rounds,
// fixpoint round deltas, and the greedy selection's gain/coverage/error
// trajectory.
//
// Usage:
//
//	cmjournal solve.jsonl           # summary and curves
//	cmjournal -events solve.jsonl   # raw event listing instead
//	cmrun ... -journal /dev/stdout | cmjournal -    # from a pipe
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"contribmax/internal/obs/journal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cmjournal:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		events   = flag.Bool("events", false, "list every event (seq, time, type, payload) instead of the summary")
		maxRound = flag.Int("rounds", 20, "show at most this many fixpoint rounds (0 = all)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmjournal [-events] [-rounds N] FILE  (- for stdin)")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	evs, err := decode(in)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("empty journal")
	}
	if *events {
		return listEvents(os.Stdout, evs)
	}
	return render(os.Stdout, evs, *maxRound)
}

// decode reads JSONL events, skipping blank lines.
func decode(r io.Reader) ([]journal.Event, error) {
	var evs []journal.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev journal.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	return evs, sc.Err()
}

func listEvents(w io.Writer, evs []journal.Event) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tt\ttype\tpayload")
	for _, ev := range evs {
		payload, _ := json.Marshal(ev)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", ev.Seq, durStr(ev.TNs), ev.Type, trimEnvelope(payload))
	}
	return tw.Flush()
}

// trimEnvelope drops the envelope fields from a marshaled event so the
// listing shows just the typed payload.
func trimEnvelope(b []byte) string {
	var m map[string]json.RawMessage
	if json.Unmarshal(b, &m) != nil {
		return string(b)
	}
	for _, k := range []string{"seq", "t_ns", "run", "type"} {
		delete(m, k)
	}
	out, err := json.Marshal(m)
	if err != nil {
		return string(b)
	}
	return string(out)
}

func durStr(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func render(w io.Writer, evs []journal.Event, maxRound int) error {
	var (
		start  *journal.SolveInfo
		finish *journal.FinishInfo
		rounds []journal.RoundInfo
		builds []journal.BuildInfo
		rr     []journal.Event // rr.batch, in seq order
		imm    []journal.IMMInfo
		iters  []journal.IterInfo
		plan   *journal.PlanInfo
		cache  *journal.CacheInfo
		est    *journal.EstInfo
		prof   *journal.ProfileInfo
		run    string
		endNs  int64
	)
	for _, ev := range evs {
		run = ev.Run
		switch ev.Type {
		case journal.TypeSolveStart:
			start = ev.Solve
		case journal.TypeSolveFinish:
			finish = ev.Finish
			endNs = ev.TNs
		case journal.TypeEngineRound:
			rounds = append(rounds, *ev.Round)
		case journal.TypeGraphBuild:
			builds = append(builds, *ev.Build)
		case journal.TypeRRBatch:
			rr = append(rr, ev)
		case journal.TypeIMMRound:
			imm = append(imm, *ev.IMM)
		case journal.TypeSelectIter:
			iters = append(iters, *ev.Iter)
		case journal.TypePlanSummary:
			plan = ev.Plan
		case journal.TypeCacheSummary:
			cache = ev.Cache
		case journal.TypeEstimatorSummary:
			est = ev.Est
		case journal.TypeProfileSummary:
			prof = ev.Profile
		}
	}

	fmt.Fprintf(w, "run %s: %d events", run, len(evs))
	if evs[0].Seq > 1 {
		fmt.Fprintf(w, " (ring-evicted; first retained seq %d)", evs[0].Seq)
	}
	fmt.Fprintln(w)
	if start != nil {
		fmt.Fprintf(w, "solve: %s  k=%d  candidates=%d  targets=%d", start.Algorithm, start.K, start.Candidates, start.Targets)
		if start.Adaptive {
			fmt.Fprintf(w, "  theta=adaptive")
		} else {
			fmt.Fprintf(w, "  theta=%d", start.Theta)
		}
		if start.Parallelism > 1 {
			fmt.Fprintf(w, "  parallelism=%d", start.Parallelism)
		}
		fmt.Fprintf(w, "\nconfig fingerprint: %s\n", start.Fingerprint)
	}

	if len(builds) > 0 {
		fmt.Fprintln(w, "\ngraph builds:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "nodes\tedges\ttime\t")
		for _, b := range builds {
			fmt.Fprintf(tw, "%d\t%d\t%s\t\n", b.Nodes, b.Edges, durStr(b.DurationNs))
		}
		tw.Flush()
	}

	if len(rounds) > 0 {
		fmt.Fprintln(w, "\nfixpoint rounds (delta = new facts):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "round\tdelta\t")
		shown := rounds
		if maxRound > 0 && len(shown) > maxRound {
			shown = shown[:maxRound]
		}
		for _, r := range shown {
			fmt.Fprintf(tw, "%d\t%d\t\n", r.Round, r.Delta)
		}
		tw.Flush()
		if len(shown) < len(rounds) {
			fmt.Fprintf(w, "  ... %d more rounds (-rounds 0 for all)\n", len(rounds)-len(shown))
		}
	}

	if len(imm) > 0 {
		fmt.Fprintln(w, "\nadaptive sampling (IMM phase-1 rounds):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "round\tx\ttheta\test\tlb\t")
		for _, m := range imm {
			lb := "-"
			if m.LB > 0 {
				lb = fmt.Sprintf("%.3f", m.LB)
			}
			fmt.Fprintf(tw, "%d\t%.3f\t%d\t%.3f\t%s\t\n", m.Round, m.X, m.Theta, m.Est, lb)
		}
		tw.Flush()
	}

	if len(rr) > 0 {
		fmt.Fprintln(w, "\nRR generation (per flushed batch):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "t\tworker\tsets\tavg members\tmax\tworker total\t")
		globalSets, globalMembers := 0, 0
		for _, ev := range rr {
			b := ev.RR
			avg := 0.0
			if b.Sets > 0 {
				avg = float64(b.Members) / float64(b.Sets)
			}
			globalSets += b.Sets
			globalMembers += b.Members
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t\n", durStr(ev.TNs), b.Worker, b.Sets, avg, b.MaxLen, b.TotalSets)
		}
		tw.Flush()
		avg := 0.0
		if globalSets > 0 {
			avg = float64(globalMembers) / float64(globalSets)
		}
		fmt.Fprintf(w, "  total: %d sets, %.1f members/set\n", globalSets, avg)
	}

	if len(iters) > 0 {
		fmt.Fprintln(w, "\nselection convergence (gain per iteration, coverage vs RR count):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "iter\tseed\tgain\tcovered\tcoverage\terr proxy")
		for _, it := range iters {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.1f%%\t%.4f\n",
				it.I+1, it.Seed, it.Gain, it.Covered, 100*it.Coverage, it.ErrProxy)
		}
		tw.Flush()
	}

	if plan != nil {
		fmt.Fprintf(w, "\njoin planner: %d plans built, %d cache hits, %d atoms reordered\n",
			plan.Built, plan.Hits, plan.Reordered)
	}

	if est != nil {
		if est.Fallback != "" {
			fmt.Fprintf(w, "\nestimator: fell back to %s sampling (%s)\n", est.Algorithm, est.Fallback)
		} else {
			fmt.Fprintf(w, "\nestimator (%s): %d lineages, %d clauses / %d vars, extracted in %s",
				est.Algorithm, est.Targets, est.Clauses, est.Vars, durStr(est.LineageNs))
			if est.Samples > 0 {
				fmt.Fprintf(w, ", %d worlds sampled", est.Samples)
			}
			fmt.Fprintln(w)
		}
	}

	if prof != nil {
		fmt.Fprintf(w, "\nruntime profile: %d engine runs over %d rules, %d derived / %d attempted in %s",
			prof.EngineRuns, prof.Rules, prof.Derived, prof.Attempted, durStr(prof.EvalNs))
		if prof.Walks > 0 {
			fmt.Fprintf(w, "; %d RR walks in %s", prof.Walks, durStr(prof.WalkNs))
		}
		fmt.Fprintln(w)
		if len(prof.TopRules) > 0 {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "rule\tderived\tself time")
			for _, r := range prof.TopRules {
				fmt.Fprintf(tw, "%s\t%d\t%s\n", r.Rule, r.Derived, durStr(r.SelfNs))
			}
			tw.Flush()
			fmt.Fprintln(w, "  (full per-rule detail: cmrun -explain / -profile-json)")
		}
	}

	if cache != nil {
		fmt.Fprintf(w, "\nsolve cache: graph %d hit / %d miss, rr %d hit / %d miss",
			cache.GraphHits, cache.GraphMisses, cache.RRHits, cache.RRMisses)
		if cache.BytesReused > 0 {
			fmt.Fprintf(w, ", %.1f MiB reused", float64(cache.BytesReused)/(1<<20))
		}
		fmt.Fprintln(w)
	}

	if finish != nil {
		fmt.Fprintf(w, "\nfinished in %s: ", durStr(finish.DurationNs))
		if finish.Err != "" {
			fmt.Fprintf(w, "ERROR: %s\n", finish.Err)
		} else {
			fmt.Fprintf(w, "%d seeds, covered %d/%d RR sets, estimated contribution %.4f\n",
				len(finish.Seeds), finish.CoveredRR, finish.NumRR, finish.EstContribution)
		}
	} else {
		fmt.Fprintf(w, "\nno solve.finish event — journal ends at %s (solve interrupted?)\n", durStr(endNs))
	}
	return nil
}

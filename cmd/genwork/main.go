// Command genwork materializes the paper's workloads (Section V) as files
// usable with cmrun and wddump: a program file (.dl) plus either a textual
// fact file (.facts) or a binary snapshot (.cmdb).
//
// Usage:
//
//	genwork -ds TC   -size 60  -out /tmp/w       # ring+chords TC instance
//	genwork -ds AMIE -size 12  -out /tmp/w -snapshot
//
// Datasets: TC (size = node count), Explain (people), IRIS (people),
// AMIE (countries), Trade (the Table I example; size ignored), PowerLaw
// (people; -alpha overrides the Zipf skew exponent).
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"

	"contribmax/internal/ast"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genwork:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ds       = flag.String("ds", "TC", "dataset: TC | Explain | IRIS | AMIE | Trade | PowerLaw")
		size     = flag.Int("size", 60, "instance size (dataset-specific unit)")
		seed     = flag.Uint64("seed", 1, "random seed")
		alpha    = flag.Float64("alpha", -1, "PowerLaw only: Zipf skew exponent (negative = dataset default)")
		out      = flag.String("out", ".", "output directory")
		snapshot = flag.Bool("snapshot", false, "write a binary .cmdb snapshot instead of a .facts file")
	)
	flag.Parse()

	rng := rand.New(rand.NewPCG(*seed, *seed^0xABCDEF))
	var w workload.Workload
	if strings.EqualFold(*ds, "powerlaw") && *alpha >= 0 {
		if *size <= 0 {
			return fmt.Errorf("dataset %s needs a positive size, got %d", *ds, *size)
		}
		p := workload.DefaultPowerLawParams(*size)
		p.Alpha = *alpha
		w = workload.PowerLaw(p, rng)
	} else {
		var err error
		w, err = workload.ByName(*ds, *size, rng)
		if err != nil {
			return err
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	base := filepath.Join(*out, strings.ToLower(w.Name))

	progPath := base + ".dl"
	if err := os.WriteFile(progPath, []byte(w.Program.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rules)\n", progPath, len(w.Program.Rules))

	if *snapshot {
		snapPath := base + ".cmdb"
		if err := w.DB.SaveSnapshot(snapPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d facts)\n", snapPath, w.DB.TotalTuples())
		return nil
	}
	factsPath := base + ".facts"
	f, err := os.Create(factsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var all []ast.Atom
	for _, name := range w.DB.RelationNames() {
		all = append(all, w.DB.Facts(name)...)
	}
	if err := parser.WriteFacts(f, all); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d facts)\n", factsPath, len(all))
	return nil
}

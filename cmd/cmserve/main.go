// Command cmserve runs the HTTP interface for Contribution Maximization —
// the interactive front end the paper's conclusions propose: a form (and
// JSON API) where users specify their input/output tuple sets of interest,
// with patterns, and get the most contributing facts back.
//
// Usage:
//
//	cmserve -addr :8080
//	# then open http://localhost:8080/ or:
//	curl -s localhost:8080/api/solve -d '{"program":"...","facts":"...","targets":["p(a, X)"]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"contribmax/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()
	fmt.Printf("contribmax: listening on http://%s/\n", *addr)
	if err := http.ListenAndServe(*addr, server.New()); err != nil {
		fmt.Fprintln(os.Stderr, "cmserve:", err)
		os.Exit(1)
	}
}

// Command cmserve runs the HTTP interface for Contribution Maximization —
// the interactive front end the paper's conclusions propose: a form (and
// JSON API) where users specify their input/output tuple sets of interest,
// with patterns, and get the most contributing facts back.
//
// Usage:
//
//	cmserve -addr :8080 [-solve-timeout 30s] [-cache-size 256] [-max-concurrent 4] [-tenant-quota 2]
//	# then open http://localhost:8080/ or:
//	curl -s localhost:8080/api/solve -d '{"program":"...","facts":"...","targets":["p(a, X)"]}'
//	curl -s localhost:8080/api/solve/batch -d '{"program":"...","facts":"...","solves":[{"targets":["p(a, X)"],"k":1},{"targets":["p(a, X)"],"k":2}]}'
//	curl -s localhost:8080/metrics          # live counters, expvar-style JSON
//	curl -s 'localhost:8080/metrics?format=prometheus'  # Prometheus text format
//	curl -s localhost:8080/api/solve/start -d @req.json # async journaled solve (202 + run ID)
//	curl -sN localhost:8080/solve/RUNID/events          # live progress (SSE)
//	curl -s  localhost:8080/journal/RUNID               # journal replay (JSONL; pipe to cmjournal -)
//	go tool pprof localhost:8080/debug/pprof/profile   # CPU, with per-solve labels
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight solves get
// up to the solve timeout to finish, new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"contribmax/internal/obs"
	"contribmax/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cmserve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	solveTimeout := flag.Duration("solve-timeout", 60*time.Second, "per-request solve deadline (0 = none)")
	warnFlag := flag.String("W", "", `"error" rejects requests whose programs have static-analysis warnings, matching cmrun -W error`)
	noplan := flag.Bool("noplan", false, "disable the greedy join planner for every solve (results are byte-identical; escape hatch)")
	cacheMB := flag.Int64("cache-size", 0, "solve-cache bound in MiB (0 = default 256; negative disables caching)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max solves executing at once (0 = unlimited); excess queues, then sheds with 429")
	maxQueue := flag.Int("queue", 0, "max solves waiting for a slot (0 = 2 x max-concurrent)")
	queueWait := flag.Duration("queue-wait", 0, "max time a queued solve waits before shedding (0 = 10s)")
	tenantQuota := flag.Int("tenant-quota", 0, "max concurrent solves per tenant, keyed by the X-Tenant header (0 = no quotas)")
	maxRuns := flag.Int("max-runs", 0, "max async runs retained (0 = default 128); finished runs evict LRU-first")
	flag.Parse()
	if *warnFlag != "" && *warnFlag != "error" {
		return fmt.Errorf("-W accepts only \"error\", got %q", *warnFlag)
	}
	cacheBytes := *cacheMB * (1 << 20)
	if *cacheMB < 0 {
		cacheBytes = -1
	}

	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", server.NewWith(server.Config{
		Obs:                 reg,
		SolveTimeout:        *solveTimeout,
		WarnAsError:         *warnFlag == "error",
		NoPlan:              *noplan,
		CacheBytes:          cacheBytes,
		MaxConcurrentSolves: *maxConcurrent,
		MaxQueueDepth:       *maxQueue,
		QueueWait:           *queueWait,
		TenantQuota:         *tenantQuota,
		MaxRuns:             *maxRuns,
	}))
	// net/http/pprof registers on DefaultServeMux; mount its handlers
	// explicitly since this server uses its own mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("contribmax: listening on http://%s/\n", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("contribmax: shutting down")
	grace := *solveTimeout
	if grace <= 0 {
		grace = 30 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

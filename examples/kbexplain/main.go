// Kbexplain demonstrates the paper's motivating use case (Section I):
// tracing the critical sources of suspicious facts derived by AMIE-style
// mined rules over a knowledge base. It generates a synthetic YAGO-like KB,
// evaluates the 23-rule recursive program, picks a handful of derived
// "influences" facts as suspicious, and asks Magic^S CM — the only
// algorithm feasible on this program, per the paper's evaluation — which
// base facts are most responsible for them.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"contribmax"
	"contribmax/internal/workload"
)

func main() {
	rng := rand.New(rand.NewPCG(2020, 5))
	w := workload.AMIE(workload.AMIEDBParams{Countries: 12, People: 60}, rng)
	db := contribmax.Database{Database: w.DB}
	fmt.Printf("knowledge base: %d facts across %d relations\n",
		db.TotalTuples(), len(db.RelationNames()))

	// Evaluate to see what the mined rules derive.
	if _, err := contribmax.Eval(w.Program, db); err != nil {
		log.Fatal(err)
	}
	suspicious := db.Facts("influences")
	sort.Slice(suspicious, func(i, j int) bool { return suspicious[i].String() < suspicious[j].String() })
	if len(suspicious) == 0 {
		log.Fatal("no influences facts derived; increase the KB size")
	}
	if len(suspicious) > 5 {
		suspicious = suspicious[:5]
	}
	fmt.Println("suspicious derived facts under investigation:")
	for _, a := range suspicious {
		fmt.Println("  " + a.String())
	}

	// Which 5 base facts contribute most to them? (Note: evaluation above
	// inserted derived facts into db; CM algorithms evaluate on scratch
	// databases sharing only the edb relations, so this is safe.)
	res, err := contribmax.MagicSampledCM(contribmax.Input{
		Program: w.Program,
		DB:      w.DB,
		T2:      suspicious,
		K:       5,
	}, contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 500},
		Rand:  rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost responsible base facts (check these sources first):")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
	fmt.Printf("joint contribution: %.3f of %d investigated facts\n",
		res.EstContribution, len(suspicious))
	fmt.Printf("cost: %d RR sets, avg materialized subgraph %.0f nodes+edges (full WD graph never built)\n",
		res.Stats.NumRR, res.Stats.AvgGraphSize())
}

// Bottleneck reproduces the Section V-C case study: in a star-with-sinks
// graph, find the pair of edges forming the "bottleneck" of all paths from
// the spoke nodes to the sink nodes, and compare Magic^S CM's answer with
// the exhaustive optimum.
//
// The instance is the probabilistic Transitive Closure program of Example
// 4.2 over the Figure 6 graph: spokes a1..al feed the hub a, which feeds m
// two-edge sink chains. Any optimal pair takes one edge from each sink
// chain; picking the top-2 tuples by *individual* contribution can fail to
// do that — the reason CM is about joint, set-level contribution.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"contribmax"
	"contribmax/internal/workload"
)

func main() {
	const l, m = 5, 2
	db, spokes, sinks := workload.StarWithSinks(l, m)
	prog := workload.TCProgramDirected(1.0, 0.8)

	// T2: reachability of every sink from every spoke.
	var targets []contribmax.Atom
	for _, sp := range spokes {
		for _, sk := range sinks {
			targets = append(targets, contribmax.NewAtom("tc", contribmax.C(sp), contribmax.C(sk)))
		}
	}
	in := contribmax.Input{Program: prog, DB: db, T2: targets, K: 2}
	rng := rand.New(rand.NewPCG(6, 6))

	// The exhaustive optimum (feasible here: C(#edges, 2) pairs).
	opt, err := contribmax.BruteForceOPT(in, 20000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPT pair:      %v  (contribution %.3f over %d subsets)\n",
		opt.Seeds, opt.Contribution, opt.SubsetsExamined)

	// Magic^S CM.
	res, err := contribmax.MagicSampledCM(in, contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 2000},
		Rand:  rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Magic^S pair:  %v  (contribution %.3f)\n", res.Seeds, res.EstContribution)

	// Individual-contribution ranking, to contrast with the joint
	// optimum: the four chain edges all tie, so a top-2-by-individual
	// pick may take both edges of the same chain and miss one sink
	// entirely.
	est, err := contribmax.NewEstimator(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIndividual contributions of the chain edges:")
	for _, e := range db.Facts("edge") {
		c, err := est.Contribution([]contribmax.Atom{e}, 20000, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  c(%s) = %.3f\n", e, c)
	}
	ratio := 0.0
	if optC, e := est.Contribution(opt.Seeds, 20000, rng); e == nil && optC > 0 {
		magC, _ := est.Contribution(res.Seeds, 20000, rng)
		ratio = magC / optC
	}
	fmt.Printf("\nMagic^S / OPT contribution ratio: %.3f (guarantee: >= %.3f)\n", ratio, 1-1/2.718281828)
}

// Quickstart: solve a Contribution Maximization instance end to end on the
// paper's running example (Example 1.1 / Table I): which k database facts
// contributed the most to a set of derived international trade relations?
package main

import (
	_ "embed"
	"fmt"
	"log"

	"contribmax"
)

// The probabilistic datalog program and the Table I database live in
// sibling files so `make lint` (cmlint) checks them like any other
// program in the repo.
var (
	//go:embed program.dl
	programSrc string
	//go:embed trade.facts
	factsSrc string
)

func main() {
	prog, err := contribmax.ParseProgram(programSrc)
	if err != nil {
		log.Fatal(err)
	}

	db, err := contribmax.LoadDatabase(factsSrc)
	if err != nil {
		log.Fatal(err)
	}

	// The surprising derived facts of Example 3.7.
	var targets []contribmax.Atom
	for _, s := range []string{
		"dealsWith(usa, iran)",
		"dealsWith(pakistan, india)",
		"dealsWith(russia, ukraine)",
	} {
		a, err := contribmax.ParseAtom(s)
		if err != nil {
			log.Fatal(err)
		}
		targets = append(targets, a)
	}

	// Find the 2 input facts with the highest joint contribution, using
	// the recommended Magic^S CM algorithm.
	res, err := contribmax.MagicSampledCM(contribmax.Input{
		Program: prog,
		DB:      db.Database,
		T2:      targets,
		K:       2,
	}, contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Most contributing facts:")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
	fmt.Printf("Estimated joint contribution to %d targets: %.3f\n",
		len(targets), res.EstContribution)
	fmt.Printf("(generated %d RR sets; largest materialized subgraph: %d nodes+edges)\n",
		res.Stats.NumRR, res.Stats.PeakResidentSize)
}

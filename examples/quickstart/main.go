// Quickstart: solve a Contribution Maximization instance end to end on the
// paper's running example (Example 1.1 / Table I): which k database facts
// contributed the most to a set of derived international trade relations?
package main

import (
	"fmt"
	"log"

	"contribmax"
)

func main() {
	// The probabilistic datalog program: AMIE-style mined rules with
	// confidence weights. Rule r0 copies the extensional dealsWith facts
	// (footnote 2 of the paper).
	prog, err := contribmax.ParseProgram(`
		1.0 r0: dealsWith(A, B) :- dealsWith0(A, B).
		0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
		0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
		0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The database of Table I.
	db, err := contribmax.LoadDatabase(`
		exports(france, wine).    exports(france, vinegar). exports(france, oil).
		exports(cuba, tobacco).   exports(cuba, sugar).     exports(cuba, nickel).
		exports(russia, gas).
		imports(germany, wine).   imports(usa, vinegar).    imports(pakistan, oil).
		imports(india, tobacco).  imports(denmark, sugar).  imports(iran, nickel).
		imports(ukraine, gas).
		dealsWith0(france, cuba).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The surprising derived facts of Example 3.7.
	var targets []contribmax.Atom
	for _, s := range []string{
		"dealsWith(usa, iran)",
		"dealsWith(pakistan, india)",
		"dealsWith(russia, ukraine)",
	} {
		a, err := contribmax.ParseAtom(s)
		if err != nil {
			log.Fatal(err)
		}
		targets = append(targets, a)
	}

	// Find the 2 input facts with the highest joint contribution, using
	// the recommended Magic^S CM algorithm.
	res, err := contribmax.MagicSampledCM(contribmax.Input{
		Program: prog,
		DB:      db.Database,
		T2:      targets,
		K:       2,
	}, contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Most contributing facts:")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
	fmt.Printf("Estimated joint contribution to %d targets: %.3f\n",
		len(targets), res.EstContribution)
	fmt.Printf("(generated %d RR sets; largest materialized subgraph: %d nodes+edges)\n",
		res.Stats.NumRR, res.Stats.PeakResidentSize)
}

// Uncertain demonstrates tuple-level uncertainty (footnote 2 of the
// paper): facts extracted by an information-extraction pipeline carry
// confidences; ApplyFactProbabilities folds them into the rule-probability
// model, after which every analysis — derivation probability, most
// probable derivation, contribution maximization — accounts for both fact
// and rule uncertainty.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math/rand/v2"

	"contribmax"
)

// Program and confidence-weighted facts live in sibling files so `make
// lint` (cmlint) checks them like any other program in the repo.
var (
	//go:embed program.dl
	programSrc string
	//go:embed extracted.facts
	probFactsSrc string
)

func main() {
	// Mined rules with confidences.
	prog, err := contribmax.ParseProgram(programSrc)
	if err != nil {
		log.Fatal(err)
	}

	// Extracted facts, each with the extractor's confidence.
	probFacts, err := contribmax.ParseProbFacts(probFactsSrc)
	if err != nil {
		log.Fatal(err)
	}

	db := contribmax.NewDatabase()
	prog2, err := contribmax.ApplyFactProbabilities(prog, probFacts, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program grew from 3 to %d rules (one copy rule per uncertain fact)\n\n", len(prog2.Rules))

	rng := rand.New(rand.NewPCG(7, 42))
	for _, s := range []string{
		"dealsWith(france, germany)",
		"dealsWith(france, usa)",
		"dealsWith(usa, germany)",
	} {
		target, err := contribmax.ParseAtom(s)
		if err != nil {
			log.Fatal(err)
		}
		p, err := contribmax.DerivationProbability(prog2, db, target, 20000, rng)
		if err != nil {
			log.Fatal(err)
		}
		tree, ok, err := contribmax.Explain(prog2, db, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P[%s] ~= %.3f\n", s, p)
		if ok {
			fmt.Printf("most probable derivation (p = %.3f):\n%s\n", tree.Prob, tree.Render(db.Symbols()))
		}
	}

	// Which 2 uncertain source facts matter most for the France-USA link?
	target, _ := contribmax.ParseAtom("dealsWith(france, usa)")
	res, err := contribmax.MagicSampledCM(contribmax.Input{
		Program: prog2,
		DB:      db.Database,
		T2:      []contribmax.Atom{target},
		K:       2,
	}, contribmax.Options{Theta: contribmax.ThetaSpec{Explicit: 2000}, Rand: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most contributing source facts for dealsWith(france, usa):")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
}

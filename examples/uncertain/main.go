// Uncertain demonstrates tuple-level uncertainty (footnote 2 of the
// paper): facts extracted by an information-extraction pipeline carry
// confidences; ApplyFactProbabilities folds them into the rule-probability
// model, after which every analysis — derivation probability, most
// probable derivation, contribution maximization — accounts for both fact
// and rule uncertainty.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"contribmax"
)

func main() {
	// Mined rules with confidences.
	prog, err := contribmax.ParseProgram(`
		0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
		0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
		0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Extracted facts, each with the extractor's confidence.
	probFacts, err := contribmax.ParseProbFacts(`
		0.95 exports(france, wine).
		0.60 exports(france, vinegar).
		0.90 imports(germany, wine).
		0.70 imports(usa, vinegar).
		0.50 imports(usa, wine).
	`)
	if err != nil {
		log.Fatal(err)
	}

	db := contribmax.NewDatabase()
	prog2, err := contribmax.ApplyFactProbabilities(prog, probFacts, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program grew from 3 to %d rules (one copy rule per uncertain fact)\n\n", len(prog2.Rules))

	rng := rand.New(rand.NewPCG(7, 42))
	for _, s := range []string{
		"dealsWith(france, germany)",
		"dealsWith(france, usa)",
		"dealsWith(usa, germany)",
	} {
		target, err := contribmax.ParseAtom(s)
		if err != nil {
			log.Fatal(err)
		}
		p, err := contribmax.DerivationProbability(prog2, db, target, 20000, rng)
		if err != nil {
			log.Fatal(err)
		}
		tree, ok, err := contribmax.Explain(prog2, db, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P[%s] ~= %.3f\n", s, p)
		if ok {
			fmt.Printf("most probable derivation (p = %.3f):\n%s\n", tree.Prob, tree.Render(db.Symbols()))
		}
	}

	// Which 2 uncertain source facts matter most for the France-USA link?
	target, _ := contribmax.ParseAtom("dealsWith(france, usa)")
	res, err := contribmax.MagicSampledCM(contribmax.Input{
		Program: prog2,
		DB:      db.Database,
		T2:      []contribmax.Atom{target},
		K:       2,
	}, contribmax.Options{Theta: contribmax.ThetaSpec{Explicit: 2000}, Rand: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most contributing source facts for dealsWith(france, usa):")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s\n", i+1, s)
	}
}

// Trade walks through the paper's running example in detail: it evaluates
// the probabilistic program of Example 1.1 over the Table I database,
// lists the derived trade relations, quantifies individual and joint
// contributions with the Monte-Carlo estimator (Example 3.5), and compares
// all four CM algorithms on the Example 3.7 instance.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"contribmax"
	"contribmax/internal/workload"
)

func main() {
	w := workload.Trade()
	db := contribmax.Database{Database: w.DB}

	// 1. Evaluate the program: P(D) = every fact derivable by some
	// probabilistic execution.
	stats, err := contribmax.Eval(w.Program, db)
	if err != nil {
		log.Fatal(err)
	}
	derived := db.Facts("dealsWith")
	sort.Slice(derived, func(i, j int) bool { return derived[i].String() < derived[j].String() })
	fmt.Printf("Evaluation: %d rule instantiations fired in %d rounds; %d dealsWith facts derivable:\n",
		stats.Instantiations, stats.Rounds, len(derived))
	for _, a := range derived {
		fmt.Println("  " + a.String())
	}

	// 2. Example 3.5: contribution scores. dealsWith(france, cuba)
	// participates in derivations of both targets; exports(france,
	// vinegar) mainly in one.
	targets := atoms("dealsWith(usa, iran)", "dealsWith(pakistan, india)")
	in := contribmax.Input{Program: w.Program, DB: w.DB, T2: targets, K: 2}
	est, err := contribmax.NewEstimator(in)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(35, 35))
	const samples = 50000
	fc := atoms("dealsWith0(france, cuba)")
	fv := atoms("exports(france, vinegar)")
	c1, _ := est.Contribution(fc, samples, rng)
	c2, _ := est.Contribution(fv, samples, rng)
	joint, _ := est.Contribution(append(fc, fv...), samples, rng)
	fmt.Printf("\nExample 3.5 — contribution to {dealsWith(usa,iran), dealsWith(pakistan,india)}:\n")
	fmt.Printf("  c(dealsWith(france,cuba))    = %.3f\n", c1)
	fmt.Printf("  c(exports(france,vinegar))   = %.3f\n", c2)
	fmt.Printf("  c(both jointly)              = %.3f  (< %.3f, the sum — shared sub-paths)\n", joint, c1+c2)

	// 3. Example 3.7: the k=2 contribution-maximizing set, under all four
	// algorithms.
	in37 := contribmax.Input{
		Program: w.Program, DB: w.DB, K: 2,
		T2: atoms("dealsWith(usa, iran)", "dealsWith(pakistan, india)", "dealsWith(russia, ukraine)"),
	}
	fmt.Printf("\nExample 3.7 — best 2 facts for all three surprising results:\n")
	type algo struct {
		name string
		run  func(contribmax.Input, contribmax.Options) (*contribmax.Result, error)
	}
	for _, al := range []algo{
		{"NaiveCM ", contribmax.NaiveCM},
		{"MagicCM ", contribmax.MagicCM},
		{"MagicSCM", contribmax.MagicSampledCM},
		{"MagicGCM", contribmax.MagicGroupedCM},
	} {
		res, err := al.run(in37, contribmax.Options{
			Theta: contribmax.ThetaSpec{Explicit: 1200},
			Rand:  rand.New(rand.NewPCG(11, 7)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %v  (contribution %.3f, peak graph %d)\n",
			al.name, res.Seeds, res.EstContribution, res.Stats.PeakResidentSize)
	}
}

func atoms(ss ...string) []contribmax.Atom {
	out := make([]contribmax.Atom, len(ss))
	for i, s := range ss {
		a, err := contribmax.ParseAtom(s)
		if err != nil {
			log.Fatal(err)
		}
		out[i] = a
	}
	return out
}

package contribmax_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"contribmax"
)

const tcSrc = `
	1.0 r1: tc(X, Y) :- edge(X, Y).
	0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
`

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := contribmax.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	db, err := contribmax.LoadDatabase(`edge(a, b). edge(b, c). edge(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	target, err := contribmax.ParseAtom("tc(a, c)")
	if err != nil {
		t.Fatal(err)
	}
	in := contribmax.Input{Program: prog, DB: db.Database, T2: []contribmax.Atom{target}, K: 1}
	res, err := contribmax.MagicSampledCM(in, contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 300},
		Rand:  rand.New(rand.NewPCG(1, 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	s := res.Seeds[0].String()
	if s != "edge(a, b)" && s != "edge(b, c)" {
		t.Errorf("seed %s not on the a-c chain", s)
	}
	// The user's database must not have been polluted with derived facts.
	if db.Facts("tc") != nil {
		t.Error("CM run mutated the input database with derived tc facts")
	}
}

func TestFacadeEvalAndGraph(t *testing.T) {
	prog, _ := contribmax.ParseProgram(tcSrc)
	db, _ := contribmax.LoadDatabase(`edge(a, b). edge(b, c).`)

	g, err := contribmax.BuildWDGraph(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 || g.NumEdges() != 7 {
		t.Errorf("graph = %d nodes %d edges, want 8/7", g.NumNodes(), g.NumEdges())
	}
	if db.Facts("tc") != nil {
		t.Error("BuildWDGraph mutated the input database")
	}

	// Eval, by contrast, derives into the database.
	stats, err := contribmax.Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewFacts != 3 {
		t.Errorf("NewFacts = %d, want 3", stats.NewFacts)
	}
	if got := len(db.Facts("tc")); got != 3 {
		t.Errorf("tc facts = %d, want 3", got)
	}
}

func TestFacadeTermConstructors(t *testing.T) {
	a := contribmax.NewAtom("p", contribmax.V("X"), contribmax.C("k"))
	if a.String() != "p(X, k)" {
		t.Errorf("atom = %s", a)
	}
}

func TestFacadeInsertAllErrors(t *testing.T) {
	db := contribmax.NewDatabase()
	bad := []contribmax.Atom{contribmax.NewAtom("p", contribmax.V("X"))}
	if _, err := db.InsertAll(bad); err == nil {
		t.Error("non-ground InsertAll should error")
	}
	if _, err := contribmax.LoadDatabase(`p(X).`); err == nil {
		t.Error("LoadDatabase with variables should error")
	}
}

func TestFacadeEstimatorAndOPT(t *testing.T) {
	prog, _ := contribmax.ParseProgram(tcSrc)
	db, _ := contribmax.LoadDatabase(`edge(a, b). edge(b, c).`)
	target, _ := contribmax.ParseAtom("tc(a, c)")
	in := contribmax.Input{Program: prog, DB: db.Database, T2: []contribmax.Atom{target}, K: 1}

	est, err := contribmax.NewEstimator(in)
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := contribmax.ParseAtom("edge(a, b)")
	rng := rand.New(rand.NewPCG(2, 2))
	c, err := est.Contribution([]contribmax.Atom{seed}, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.75 || c > 0.85 { // exact value 0.8
		t.Errorf("contribution = %.3f, want ~0.8", c)
	}

	opt, err := contribmax.BruteForceOPT(in, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Seeds) != 1 || !strings.HasPrefix(opt.Seeds[0].String(), "edge(") {
		t.Errorf("OPT seeds = %v", opt.Seeds)
	}
}

func TestFacadeExplain(t *testing.T) {
	prog, _ := contribmax.ParseProgram(`
		0.6 r1: tc(X, Y) :- edge(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	db, _ := contribmax.LoadDatabase(`edge(a, b). edge(b, c).`)
	target, _ := contribmax.ParseAtom("tc(a, c)")
	tree, ok, err := contribmax.Explain(prog, db, target)
	if err != nil || !ok {
		t.Fatalf("Explain: ok=%v err=%v", ok, err)
	}
	if tree.Rule != "r2" || tree.Prob != 0.18 {
		t.Errorf("tree = (%s, %g)", tree.Rule, tree.Prob)
	}
	if !strings.Contains(tree.Render(db.Symbols()), "edge(a, b)") {
		t.Error("rendering missing leaf")
	}

	missing, _ := contribmax.ParseAtom("tc(c, a)")
	if _, ok, err := contribmax.Explain(prog, db, missing); err != nil || ok {
		t.Errorf("underivable: ok=%v err=%v", ok, err)
	}

	trees, err := contribmax.ExplainTopK(prog, db, target, 5)
	if err != nil || len(trees) != 1 {
		t.Errorf("ExplainTopK = %d trees, err=%v", len(trees), err)
	}

	nonGround, _ := contribmax.ParseAtom("tc(X, c)")
	if _, _, err := contribmax.Explain(prog, db, nonGround); err == nil {
		t.Error("non-ground target should error")
	}
}

func TestFacadeDerivationProbability(t *testing.T) {
	prog, _ := contribmax.ParseProgram(`0.25 r1: p(X) :- e(X).`)
	db, _ := contribmax.LoadDatabase(`e(a).`)
	target, _ := contribmax.ParseAtom("p(a)")
	got, err := contribmax.DerivationProbability(prog, db, target, 40000, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.23 || got > 0.27 {
		t.Errorf("P = %.4f, want ~0.25", got)
	}
}

// TestFacadeAlgorithmsAndFiles exercises the facade wrappers end to end.
func TestFacadeAlgorithmsAndFiles(t *testing.T) {
	prog, err := contribmax.ParseProgramFile("testdata/trade.dl")
	if err != nil {
		t.Fatal(err)
	}
	db, err := contribmax.LoadDatabaseFile("testdata/trade.facts")
	if err != nil {
		t.Fatal(err)
	}
	target, _ := contribmax.ParseAtom("dealsWith(russia, ukraine)")
	in := contribmax.Input{Program: prog, DB: db.Database, T2: []contribmax.Atom{target}, K: 1}
	opts := contribmax.Options{
		Theta: contribmax.ThetaSpec{Explicit: 300},
		Rand:  rand.New(rand.NewPCG(1, 1)),
	}
	for _, algo := range []struct {
		name string
		run  func(contribmax.Input, contribmax.Options) (*contribmax.Result, error)
	}{
		{"NaiveCM", contribmax.NaiveCM},
		{"MagicCM", contribmax.MagicCM},
		{"MagicSampledCM", contribmax.MagicSampledCM},
		{"MagicGroupedCM", contribmax.MagicGroupedCM},
	} {
		res, err := algo.run(in, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if s := res.Seeds[0].String(); s != "exports(russia, gas)" && s != "imports(ukraine, gas)" {
			t.Errorf("%s seed = %s", algo.name, s)
		}
	}
	res, err := contribmax.GreedyMCCM(in, contribmax.GreedyMCOptions{
		Simulations: 200,
		Options:     contribmax.Options{Rand: rand.New(rand.NewPCG(2, 2))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Seeds[0].String(); s != "exports(russia, gas)" && s != "imports(ukraine, gas)" {
		t.Errorf("GreedyMC seed = %s", s)
	}

	// Snapshot round trip through the facade loader.
	snap := t.TempDir() + "/trade.cmdb"
	if err := db.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	db2, err := contribmax.LoadDatabaseFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if db2.TotalTuples() != db.TotalTuples() {
		t.Errorf("snapshot tuples = %d, want %d", db2.TotalTuples(), db.TotalTuples())
	}
}

func TestFacadeOptimize(t *testing.T) {
	prog, _ := contribmax.ParseProgram(`
		p(X) :- e(X), lt(2, 1).
		q(X) :- e(X).
	`)
	opt, rep := contribmax.Optimize(prog)
	if !rep.Changed() || rep.DroppedUnsatisfiable != 1 || len(opt.Rules) != 1 {
		t.Errorf("optimize: %+v rules=%d", rep, len(opt.Rules))
	}
}

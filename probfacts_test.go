package contribmax_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"contribmax"
)

func TestApplyFactProbabilities(t *testing.T) {
	prog, err := contribmax.ParseProgram(`
		1.0 r1: tc(X, Y) :- edge(X, Y).
		0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := contribmax.ParseProbFacts(`
		0.5 edge(a, b).
		edge(b, c).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pf[0].Prob != 0.5 || pf[1].Prob != 1 {
		t.Fatalf("probs = %v", pf)
	}
	db := contribmax.NewDatabase()
	prog2, err := contribmax.ApplyFactProbabilities(prog, pf, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog2.Rules) != 4 {
		t.Fatalf("rules = %d, want 4 (2 + 2 copy rules)", len(prog2.Rules))
	}
	if got := len(db.Facts("edge_base")); got != 2 {
		t.Fatalf("edge_base facts = %d", got)
	}

	// The derivation tc(a, b) now fires with probability 0.5 (the fact) ·
	// 1.0 (r1); verify via the estimator.
	target, _ := contribmax.ParseAtom("tc(a, b)")
	est, err := contribmax.NewEstimator(contribmax.Input{
		Program: prog2, DB: db.Database, T2: []contribmax.Atom{target}, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := contribmax.ParseAtom("edge_base(a, b)")
	c, err := est.Contribution([]contribmax.Atom{seed}, 100000, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 0.01 {
		t.Errorf("contribution = %.3f, want 0.5", c)
	}
}

func TestApplyFactProbabilitiesCollision(t *testing.T) {
	prog, _ := contribmax.ParseProgram(`p(X) :- edge_base(X, X).`)
	pf, _ := contribmax.ParseProbFacts(`0.3 edge(a, a).`)
	if _, err := contribmax.ApplyFactProbabilities(prog, pf, contribmax.NewDatabase()); err == nil {
		t.Error("collision with edge_base should error")
	}
}

func TestParseProbFactsErrors(t *testing.T) {
	for _, src := range []string{
		`1.5 p(a).`,
		`0.5 p(X).`,
		`0.5 p(a)`,
	} {
		if _, err := contribmax.ParseProbFacts(src); err == nil {
			t.Errorf("ParseProbFacts(%q): want error", src)
		}
	}
}

package contribmax_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"contribmax/internal/experiments"
)

// TestCLIsRun smoke-tests every command-line tool end to end against the
// bundled testdata. Skipped under -short.
func TestCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests are slow; skipped with -short")
	}
	run := func(t *testing.T, args ...string) string {
		t.Helper()
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	t.Run("cmrun", func(t *testing.T) {
		t.Parallel()
		out := run(t, "run", "./cmd/cmrun",
			"-program", "testdata/trade.dl", "-facts", "testdata/trade.facts",
			"-target", "dealsWith(russia, ukraine)", "-k", "1", "-rr", "300", "-json")
		if !strings.Contains(out, `"algorithm": "MagicSCM"`) || !strings.Contains(out, "gas") {
			t.Errorf("cmrun output:\n%s", out)
		}
	})

	t.Run("wddump", func(t *testing.T) {
		t.Parallel()
		dot := filepath.Join(t.TempDir(), "g.dot")
		out := run(t, "run", "./cmd/wddump",
			"-program", "testdata/trade.dl", "-facts", "testdata/trade.facts",
			"-closure", "dealsWith(russia, ukraine)",
			"-explain", "dealsWith(russia, ukraine)",
			"-dot", dot)
		for _, want := range []string{"WD graph:", "ancestor facts", "derivation 1 of", "wrote DOT"} {
			if !strings.Contains(out, want) {
				t.Errorf("wddump missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("genwork-then-cmrun", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		out := run(t, "run", "./cmd/genwork", "-ds", "Trade", "-out", dir)
		if !strings.Contains(out, "wrote") {
			t.Fatalf("genwork output:\n%s", out)
		}
		out = run(t, "run", "./cmd/cmrun",
			"-program", filepath.Join(dir, "trade.dl"), "-facts", filepath.Join(dir, "trade.facts"),
			"-target", "dealsWith(russia, ukraine)", "-k", "1", "-rr", "200")
		if !strings.Contains(out, "seeds (greedy order):") {
			t.Errorf("cmrun on genwork output:\n%s", out)
		}
	})

	t.Run("genwork-snapshot", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		run(t, "run", "./cmd/genwork", "-ds", "TC", "-size", "12", "-out", dir, "-snapshot")
		out := run(t, "run", "./cmd/wddump",
			"-program", filepath.Join(dir, "tc.dl"), "-facts", filepath.Join(dir, "tc.cmdb"))
		if !strings.Contains(out, "WD graph:") {
			t.Errorf("wddump on snapshot:\n%s", out)
		}
	})

	t.Run("cmbench-csv", func(t *testing.T) {
		t.Parallel()
		out := run(t, "run", "./cmd/cmbench", "-fig", "7a", "-format", "csv")
		if !strings.Contains(out, "OPT,MagicSCM") {
			t.Errorf("cmbench CSV:\n%s", out)
		}
	})

	t.Run("cmbench-json", func(t *testing.T) {
		t.Parallel()
		path := filepath.Join(t.TempDir(), "BENCH_quick.json")
		run(t, "run", "./cmd/cmbench", "-fig", "7a", "-json", path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := experiments.ValidateReportJSON(data); err != nil {
			t.Errorf("BENCH report invalid: %v\n%s", err, data)
		}
	})

	t.Run("cmrun-journal-then-cmjournal", func(t *testing.T) {
		t.Parallel()
		path := filepath.Join(t.TempDir(), "solve.jsonl")
		out := run(t, "run", "./cmd/cmrun",
			"-program", "testdata/trade.dl", "-facts", "testdata/trade.facts",
			"-target", "dealsWith(russia, ukraine)", "-k", "2", "-rr", "300",
			"-journal", path)
		if !strings.Contains(out, "journal run ") {
			t.Fatalf("cmrun -journal output:\n%s", out)
		}
		out = run(t, "run", "./cmd/cmjournal", path)
		for _, want := range []string{
			"solve: MagicSCM", "config fingerprint:",
			"RR generation", "selection convergence", "finished in",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("cmjournal missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("cmbench-diff", func(t *testing.T) {
		t.Parallel()
		path := filepath.Join(t.TempDir(), "BENCH_quick.json")
		// First run writes the baseline; the second diffs against it —
		// same code, same scale, so no >20% regressions are expected.
		run(t, "run", "./cmd/cmbench", "-fig", "7a", "-json", path)
		out := run(t, "run", "./cmd/cmbench", "-fig", "7a", "-diff", path)
		if !strings.Contains(out, "no regressions") && !strings.Contains(out, "WARNING: regression") {
			t.Errorf("cmbench -diff output:\n%s", out)
		}
	})

	t.Run("cmrun-stats", func(t *testing.T) {
		t.Parallel()
		out := run(t, "run", "./cmd/cmrun",
			"-program", "testdata/trade.dl", "-facts", "testdata/trade.facts",
			"-target", "dealsWith(russia, ukraine)", "-k", "1", "-rr", "200", "-stats")
		// The phase tree and the metrics dump both land on stderr, which
		// CombinedOutput folds in.
		for _, want := range []string{"phases:", "MagicSCM", "rrgen", "select", "metrics:", "rr.sets", "cm.solves"} {
			if !strings.Contains(out, want) {
				t.Errorf("cmrun -stats missing %q:\n%s", want, out)
			}
		}
	})
}

// Package planner is the engine's greedy, statistics-free join planner: it
// orders the body literals of one datalog rule by bound-pattern visibility
// and schedules the rule's filters (built-ins and negated atoms) at the
// earliest join step where their variables are ground.
//
// The planner operates on rule *shapes* — argument positions resolved to
// variable slots or opaque constants, exactly the view internal/engine
// compiles rules into — and is deliberately blind to relation cardinalities:
// for pattern-based datalog the binding pattern alone picks good plans (the
// engine's semi-naive delta atom always comes first, the remaining atoms
// follow natural-join paths through already-bound variables, and filters cut
// subtrees as soon as they are evaluable). Statistics would add per-delta
// replanning cost to every fixpoint round for marginal gain.
//
// Plans never change results, only cost. Two properties make the planner
// safe to enable by default (and are enforced by the engine's differential
// battery, see docs/PERFORMANCE.md):
//
//   - the positive-atom order is the same greedy bound-first order the
//     engine has always used, so the derivation replay stream — and with it
//     every golden fingerprint — is byte-identical with planning on or off;
//   - filters are pure (built-ins) or stratification-stable (negated atoms
//     read relations frozen by earlier strata), so evaluating one at join
//     step s prunes exactly the partial bindings whose completions would
//     have failed the same filter after the join.
//
// Plans are cached in a Planner keyed by the rule's canonical shape — for
// Magic-Sets-transformed programs the adorned predicate names carry the
// binding pattern, so one cache entry covers a whole Magic^S rule family
// across the thousands of per-RR-set engine compilations a solve performs.
package planner

import (
	"strconv"
	"strings"

	"contribmax/internal/analysis"
)

// Term is one argument position of an atom: a variable slot or a constant.
// Constants are opaque — which constant occupies a position never affects
// the plan, only that one does — so shapes that differ only in constant
// identity share a plan (and a cache entry).
type Term struct {
	IsVar bool
	Slot  int // variable slot when IsVar; slots are dense per rule
}

// Atom is one positive, joinable body literal.
type Atom struct {
	Pred  string
	Terms []Term
}

// Check is one non-binding body literal: a built-in comparison or a negated
// atom. Checks filter; they never bind variables.
type Check struct {
	Builtin bool
	Negated bool
	Pred    string
	Terms   []Term
}

// Rule is the planner's view of one compiled rule: the positive join atoms
// and the filters, with variables resolved to dense slots.
type Rule struct {
	NumVars int
	Atoms   []Atom
	Checks  []Check
}

// Plan is the evaluation order of one rule, per semi-naive delta position.
// A Plan is immutable after Build and may be shared across engines (the
// cache does exactly that); consumers must not mutate its slices.
type Plan struct {
	// Order[d] is the positive-atom order when body position d carries the
	// delta: a permutation of [0, len(Atoms)) with Order[d][0] == d,
	// greedily maximizing bound argument positions at every step.
	Order [][]int
	// ChecksAt[d][s] lists the checks (indices into Rule.Checks) to
	// evaluate immediately after step s of Order[d] binds its atom's
	// variables — the earliest step at which every variable of the check
	// is ground. Safety guarantees every non-ground check lands on some
	// step.
	ChecksAt [][][]int
	// Pre lists the ground checks (no variables at all): evaluable once
	// per pass, before any atom is scanned, vetoing the whole pass.
	Pre []int
	// Adorn[d][s] is the binding pattern of atom Order[d][s] at match
	// time: constants and variables bound by earlier steps are 'b'. The
	// engine derives its index masks from the same arithmetic; the copy
	// here feeds diagnostics and tests.
	Adorn [][]analysis.Adornment
	// Reordered counts the plan positions (across all delta positions,
	// steps >= 1) where the greedy order deviates from the written order —
	// the "atoms reordered" signal surfaced in plan.* metrics.
	Reordered int
}

// Build computes the plan of one rule. It is deterministic: equal shapes
// produce identical plans.
func Build(r *Rule) *Plan {
	n := len(r.Atoms)
	p := &Plan{
		Order:    make([][]int, n),
		ChecksAt: make([][][]int, n),
		Adorn:    make([][]analysis.Adornment, n),
	}
	// Ground checks are delta-independent: schedule them once, pass-level.
	ground := make([]bool, len(r.Checks))
	for ci := range r.Checks {
		if !hasVars(&r.Checks[ci]) {
			ground[ci] = true
			p.Pre = append(p.Pre, ci)
		}
	}

	bound := make([]bool, r.NumVars)
	used := make([]bool, n)
	scheduled := make([]bool, len(r.Checks))
	for d := 0; d < n; d++ {
		for i := range bound {
			bound[i] = false
		}
		for i := range used {
			used[i] = false
		}
		copy(scheduled, ground)

		order := make([]int, 0, n)
		checksAt := make([][]int, n)
		adorn := make([]analysis.Adornment, 0, n)

		place := func(pos int) {
			step := len(order)
			adorn = append(adorn, adornmentOf(&r.Atoms[pos], bound))
			order = append(order, pos)
			used[pos] = true
			for _, t := range r.Atoms[pos].Terms {
				if t.IsVar {
					bound[t.Slot] = true
				}
			}
			// Schedule every not-yet-scheduled check whose variables just
			// became fully bound, in check order.
			for ci := range r.Checks {
				if !scheduled[ci] && checkBound(&r.Checks[ci], bound) {
					scheduled[ci] = true
					checksAt[step] = append(checksAt[step], ci)
				}
			}
		}

		place(d)
		for len(order) < n {
			// Greedy bound-first: most bound argument positions wins, ties
			// to the earliest body position. This is byte-for-byte the
			// order the engine used before the planner existed — keeping it
			// is what preserves the derivation replay stream.
			best, bestScore := -1, -1
			for pos := 0; pos < n; pos++ {
				if used[pos] {
					continue
				}
				if s := atomScore(&r.Atoms[pos], bound); s > bestScore {
					best, bestScore = pos, s
				}
			}
			place(best)
		}
		// Safety guarantees every check variable occurs in a positive atom,
		// so all checks are scheduled by the last step. Unsafe shapes can
		// only reach the planner through code that skipped validation;
		// schedule the leftovers at the final step (or pass level for
		// body-less rules) so the plan still evaluates every check.
		for ci := range r.Checks {
			if !scheduled[ci] {
				if n == 0 {
					p.Pre = append(p.Pre, ci)
					ground[ci] = true
				} else {
					checksAt[n-1] = append(checksAt[n-1], ci)
				}
				scheduled[ci] = true
			}
		}

		for s, pos := range order {
			if pos != writtenOrderAtom(d, s) {
				p.Reordered++
			}
		}
		p.Order[d] = order
		p.ChecksAt[d] = checksAt
		p.Adorn[d] = adorn
	}
	return p
}

// writtenOrderAtom maps a step to the body position the written
// (delta-first, then source) order would evaluate — the engine's
// DisableJoinReorder sequence.
func writtenOrderAtom(deltaPos, step int) int {
	if step == 0 {
		return deltaPos
	}
	if step <= deltaPos {
		return step - 1
	}
	return step
}

// atomScore counts the atom's argument positions that are constants or
// bound variables — the bound-pattern visibility the greedy maximizes.
func atomScore(a *Atom, bound []bool) int {
	s := 0
	for _, t := range a.Terms {
		if !t.IsVar || bound[t.Slot] {
			s++
		}
	}
	return s
}

// adornmentOf renders the atom's binding pattern under the current bound
// set — the same arithmetic as analysis.AdornmentFor, over slots instead of
// names.
func adornmentOf(a *Atom, bound []bool) analysis.Adornment {
	var sb strings.Builder
	sb.Grow(len(a.Terms))
	for _, t := range a.Terms {
		if !t.IsVar || bound[t.Slot] {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return analysis.Adornment(sb.String())
}

func hasVars(c *Check) bool {
	for _, t := range c.Terms {
		if t.IsVar {
			return true
		}
	}
	return false
}

func checkBound(c *Check, bound []bool) bool {
	for _, t := range c.Terms {
		if t.IsVar && !bound[t.Slot] {
			return false
		}
	}
	return true
}

// Key renders the rule's canonical shape: predicate names (for adorned
// Magic-Sets predicates these carry the binding pattern, making the key
// effectively (rule, adornment)-keyed), per-term variable slots, and a
// position-blind constant marker. Two rules with equal keys provably
// receive identical plans, so Key doubles as the cache key.
func Key(r *Rule) string {
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString(strconv.Itoa(r.NumVars))
	for i := range r.Atoms {
		a := &r.Atoms[i]
		sb.WriteByte('|')
		sb.WriteString(a.Pred)
		writeTerms(&sb, a.Terms)
	}
	for i := range r.Checks {
		c := &r.Checks[i]
		if c.Negated {
			sb.WriteString("|!")
		} else {
			sb.WriteString("|?")
		}
		sb.WriteString(c.Pred)
		writeTerms(&sb, c.Terms)
	}
	return sb.String()
}

func writeTerms(sb *strings.Builder, terms []Term) {
	sb.WriteByte('(')
	for j, t := range terms {
		if j > 0 {
			sb.WriteByte(',')
		}
		if t.IsVar {
			sb.WriteString(strconv.Itoa(t.Slot))
		} else {
			sb.WriteByte('c')
		}
	}
	sb.WriteByte(')')
}

package planner

import (
	"sync"

	"contribmax/internal/obs"
)

// maxCacheEntries bounds the plan cache. Rule-shape cardinality is tiny in
// practice — a Magic^S transform of a realistic program yields tens of
// adorned rule families, not thousands — so the cap is a safety valve, not
// a working-set tuner. At the cap the cache stops admitting (no eviction):
// plans are cheap to rebuild and deterministic admission keeps hit/miss
// counts reproducible.
const maxCacheEntries = 4096

// Planner is a concurrency-safe plan cache keyed by canonical rule shape
// (see Key). One Planner typically spans a whole solve: the Magic variants
// compile a fresh engine per RR set and per Monte-Carlo sample, and every
// compilation after the first hits the cache for each rule family.
//
// All methods are nil-safe: a nil *Planner plans without caching, so callers
// thread an optional planner with no conditionals.
type Planner struct {
	mu    sync.Mutex
	plans map[string]*Plan

	built     int64
	hits      int64
	reordered int64

	cBuilt     *obs.Counter
	cHits      *obs.Counter
	cReordered *obs.Counter
}

// CacheStats is a snapshot of the planner's lifetime counters.
type CacheStats struct {
	Built     int64 // plans computed (cache misses + uncacheable overflow)
	Hits      int64 // plans served from cache
	Reordered int64 // plan positions deviating from written order, summed over built plans
	Entries   int   // resident cache entries
}

// New returns an empty Planner reporting into reg (nil for no metrics).
func New(reg *obs.Registry) *Planner {
	return &Planner{
		plans:      make(map[string]*Plan),
		cBuilt:     reg.Counter(obs.PlanBuilt),
		cHits:      reg.Counter(obs.PlanCacheHits),
		cReordered: reg.Counter(obs.PlanReordered),
	}
}

// PlanRule returns the plan for r, computing and caching it on first sight
// of r's shape. The returned Plan is shared and must not be mutated. Plans
// are built under the cache lock so that concurrent callers racing on the
// same fresh shape count exactly one build — hit/miss totals are a pure
// function of the request sequence's shape multiset, independent of
// scheduling.
func (p *Planner) PlanRule(r *Rule) *Plan {
	if p == nil {
		return Build(r)
	}
	key := Key(r)
	p.mu.Lock()
	defer p.mu.Unlock()
	if pl, ok := p.plans[key]; ok {
		p.hits++
		p.cHits.Inc()
		return pl
	}
	pl := Build(r)
	p.built++
	p.reordered += int64(pl.Reordered)
	p.cBuilt.Inc()
	p.cReordered.Add(int64(pl.Reordered))
	if len(p.plans) < maxCacheEntries {
		p.plans[key] = pl
	}
	return pl
}

// Stats returns a snapshot of the planner's counters (zero for nil).
func (p *Planner) Stats() CacheStats {
	if p == nil {
		return CacheStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return CacheStats{
		Built:     p.built,
		Hits:      p.hits,
		Reordered: p.reordered,
		Entries:   len(p.plans),
	}
}

package planner

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"contribmax/internal/analysis"
)

func v(slot int) Term                      { return Term{IsVar: true, Slot: slot} }
func c() Term                              { return Term{} }
func atom(pred string, terms ...Term) Atom { return Atom{Pred: pred, Terms: terms} }

func builtin(pred string, terms ...Term) Check {
	return Check{Builtin: true, Pred: pred, Terms: terms}
}
func negated(pred string, terms ...Term) Check {
	return Check{Negated: true, Pred: pred, Terms: terms}
}

// TestBuildGreedyOrder pins the greedy bound-first order on a rule where it
// deviates from written order: after the delta binds X, the atom sharing X
// is more bound than the written-next atom and must be pulled forward.
func TestBuildGreedyOrder(t *testing.T) {
	// r(X,Z) :- a(X), b(Y,W), c(X,Y).
	r := &Rule{
		NumVars: 4,
		Atoms: []Atom{
			atom("a", v(0)),
			atom("b", v(1), v(2)),
			atom("c", v(0), v(1)),
		},
	}
	p := Build(r)
	if got, want := p.Order[0], []int{0, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Order[0] = %v, want %v (c shares X with the delta and must come before b)", got, want)
	}
	// With b as delta, Y is bound, so c scores 1 vs a's 0 — c again first.
	if got, want := p.Order[1], []int{1, 2, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("Order[1] = %v, want %v", got, want)
	}
	// With c as delta both X and Y are bound; a (score 1) beats b (score 1)?
	// a scores 1/1 terms, b scores 1/2 — raw bound-count ties at 1, and the
	// tie goes to the earlier body position: a.
	if got, want := p.Order[2], []int{2, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Order[2] = %v, want %v", got, want)
	}
	for d, order := range p.Order {
		if order[0] != d {
			t.Errorf("Order[%d][0] = %d, want the delta position", d, order[0])
		}
	}
}

// TestBuildTieBreakIsWrittenOrder pins the tie-break: equal scores resolve
// to the earliest body position, which is exactly the legacy engine order.
func TestBuildTieBreakIsWrittenOrder(t *testing.T) {
	// No shared variables anywhere: every non-delta atom always scores 0,
	// so every plan must collapse to written order and Reordered must be 0.
	r := &Rule{
		NumVars: 3,
		Atoms: []Atom{
			atom("a", v(0)),
			atom("b", v(1)),
			atom("c", v(2)),
		},
	}
	p := Build(r)
	for d := range r.Atoms {
		for s, pos := range p.Order[d] {
			if pos != writtenOrderAtom(d, s) {
				t.Errorf("Order[%d] = %v deviates from written order at step %d", d, p.Order[d], s)
			}
		}
	}
	if p.Reordered != 0 {
		t.Errorf("Reordered = %d, want 0 for an all-ties rule", p.Reordered)
	}
}

// TestCheckScheduling pins the earliest-step placement of filters and the
// pass-level placement of ground checks.
func TestCheckScheduling(t *testing.T) {
	// r(X,Y) :- a(X), b(X,Y), lt(X, c), neq(X, Y), not d(Y), eq(c, c).
	r := &Rule{
		NumVars: 2,
		Atoms: []Atom{
			atom("a", v(0)),
			atom("b", v(0), v(1)),
		},
		Checks: []Check{
			builtin("lt", v(0), c()),   // bound after step 0 (delta 0)
			builtin("neq", v(0), v(1)), // bound after step 1
			negated("d", v(1)),         // bound after the step binding Y
			builtin("eq", c(), c()),    // ground: pass-level
		},
	}
	p := Build(r)
	if got, want := p.Pre, []int{3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Pre = %v, want %v", got, want)
	}
	// Delta 0: step 0 = a(X) binds X → lt; step 1 = b(X,Y) binds Y → neq, not d.
	if got, want := p.ChecksAt[0], [][]int{{0}, {1, 2}}; !reflect.DeepEqual(got, want) {
		t.Errorf("ChecksAt[0] = %v, want %v", got, want)
	}
	// Delta 1: step 0 = b(X,Y) binds both → everything non-ground at step 0.
	if got, want := p.ChecksAt[1], [][]int{{0, 1, 2}, nil}; !reflect.DeepEqual(got, want) {
		t.Errorf("ChecksAt[1] = %v, want %v", got, want)
	}
}

// TestBodylessRule: rules with only checks get everything at pass level and
// empty plan tables.
func TestBodylessRule(t *testing.T) {
	r := &Rule{Checks: []Check{builtin("eq", c(), c())}}
	p := Build(r)
	if len(p.Order) != 0 || len(p.ChecksAt) != 0 {
		t.Errorf("body-less rule produced non-empty plan tables: %+v", p)
	}
	if got, want := p.Pre, []int{0}; !reflect.DeepEqual(got, want) {
		t.Errorf("Pre = %v, want %v", got, want)
	}
}

// TestUnsafeCheckFallback: a check over a variable no positive atom binds
// (an unsafe shape) must still be scheduled — at the final step — rather
// than dropped.
func TestUnsafeCheckFallback(t *testing.T) {
	r := &Rule{
		NumVars: 2,
		Atoms:   []Atom{atom("a", v(0))},
		Checks:  []Check{builtin("lt", v(1), c())}, // slot 1 never bound
	}
	p := Build(r)
	if got, want := p.ChecksAt[0], [][]int{{0}}; !reflect.DeepEqual(got, want) {
		t.Errorf("ChecksAt[0] = %v, want the leftover check at the final step (%v)", got, want)
	}
}

// TestAdornments pins the recorded binding patterns.
func TestAdornments(t *testing.T) {
	// r(X,Y) :- a(X), b(X,Y,c).
	r := &Rule{
		NumVars: 2,
		Atoms: []Atom{
			atom("a", v(0)),
			atom("b", v(0), v(1), c()),
		},
	}
	p := Build(r)
	want0 := []analysis.Adornment{"f", "bfb"}
	if !reflect.DeepEqual(p.Adorn[0], want0) {
		t.Errorf("Adorn[0] = %v, want %v", p.Adorn[0], want0)
	}
	want1 := []analysis.Adornment{"ffb", "b"}
	if !reflect.DeepEqual(p.Adorn[1], want1) {
		t.Errorf("Adorn[1] = %v, want %v", p.Adorn[1], want1)
	}
}

// TestKeyShape: the key identifies shapes — constant identity is invisible,
// everything structural is not.
func TestKeyShape(t *testing.T) {
	base := &Rule{NumVars: 2, Atoms: []Atom{atom("e", v(0), c()), atom("f", v(0), v(1))}}
	same := &Rule{NumVars: 2, Atoms: []Atom{atom("e", v(0), c()), atom("f", v(0), v(1))}}
	if Key(base) != Key(same) {
		t.Error("identical shapes produced different keys")
	}
	variants := []*Rule{
		{NumVars: 3, Atoms: base.Atoms},                                            // different var count
		{NumVars: 2, Atoms: []Atom{atom("e2", v(0), c()), atom("f", v(0), v(1))}},  // predicate name
		{NumVars: 2, Atoms: []Atom{atom("e", v(1), c()), atom("f", v(0), v(1))}},   // slot pattern
		{NumVars: 2, Atoms: []Atom{atom("e", v(0), v(1)), atom("f", v(0), v(1))}},  // const vs var
		{NumVars: 2, Atoms: base.Atoms, Checks: []Check{builtin("lt", v(0), c())}}, // extra check
	}
	for i, r := range variants {
		if Key(r) == Key(base) {
			t.Errorf("variant %d collided with base key %q", i, Key(base))
		}
	}
	// Builtin vs negated with the same predicate and terms must differ.
	b := &Rule{NumVars: 1, Atoms: []Atom{atom("a", v(0))}, Checks: []Check{builtin("p", v(0))}}
	n := &Rule{NumVars: 1, Atoms: []Atom{atom("a", v(0))}, Checks: []Check{negated("p", v(0))}}
	if Key(b) == Key(n) {
		t.Error("builtin and negated checks collided in the key")
	}
}

// TestCacheHit: second request for a shape is a hit returning the shared
// plan; constants don't fragment the cache.
func TestCacheHit(t *testing.T) {
	pl := New(nil)
	r1 := &Rule{NumVars: 1, Atoms: []Atom{atom("e", v(0), c())}}
	r2 := &Rule{NumVars: 1, Atoms: []Atom{atom("e", v(0), c())}} // different const identity, same shape
	p1 := pl.PlanRule(r1)
	p2 := pl.PlanRule(r2)
	if p1 != p2 {
		t.Error("equal shapes did not share a cached plan")
	}
	st := pl.Stats()
	if st.Built != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("Stats = %+v, want Built=1 Hits=1 Entries=1", st)
	}
}

// TestCacheReorderedCounter: the cache accumulates Reordered over built
// plans only — hits don't recount.
func TestCacheReorderedCounter(t *testing.T) {
	pl := New(nil)
	r := &Rule{
		NumVars: 4,
		Atoms:   []Atom{atom("a", v(0)), atom("b", v(1), v(2)), atom("c", v(0), v(1))},
	}
	want := int64(Build(r).Reordered)
	if want == 0 {
		t.Fatal("test rule unexpectedly plans in written order")
	}
	pl.PlanRule(r)
	pl.PlanRule(r)
	if st := pl.Stats(); st.Reordered != want {
		t.Errorf("Reordered = %d after build+hit, want %d", st.Reordered, want)
	}
}

// TestNilPlanner: a nil *Planner plans without caching and reports zeros.
func TestNilPlanner(t *testing.T) {
	var pl *Planner
	r := &Rule{NumVars: 1, Atoms: []Atom{atom("e", v(0))}}
	if p := pl.PlanRule(r); p == nil || len(p.Order) != 1 {
		t.Errorf("nil planner returned %+v", p)
	}
	if st := pl.Stats(); st != (CacheStats{}) {
		t.Errorf("nil planner Stats = %+v, want zero", st)
	}
}

// TestCacheCap: past the cap the cache stops admitting but keeps planning,
// and the resident set stays bounded.
func TestCacheCap(t *testing.T) {
	pl := New(nil)
	for i := 0; i < maxCacheEntries+10; i++ {
		r := &Rule{NumVars: 1, Atoms: []Atom{atom(fmt.Sprintf("p%d", i), v(0))}}
		if pl.PlanRule(r) == nil {
			t.Fatal("PlanRule returned nil past the cap")
		}
	}
	st := pl.Stats()
	if st.Entries != maxCacheEntries {
		t.Errorf("Entries = %d, want exactly the cap %d", st.Entries, maxCacheEntries)
	}
	if st.Built != int64(maxCacheEntries+10) || st.Hits != 0 {
		t.Errorf("Stats = %+v, want Built=%d Hits=0", st, maxCacheEntries+10)
	}
	// A shape rejected at the cap rebuilds on re-request rather than hitting.
	r := &Rule{NumVars: 1, Atoms: []Atom{atom(fmt.Sprintf("p%d", maxCacheEntries+5), v(0))}}
	pl.PlanRule(r)
	if st := pl.Stats(); st.Built != int64(maxCacheEntries+11) {
		t.Errorf("Built = %d after re-requesting an unadmitted shape, want %d", st.Built, maxCacheEntries+11)
	}
}

// TestCacheConcurrentDeterministicCounts: hammering one planner from many
// goroutines over a fixed shape set must produce exactly one build per
// distinct shape — builds happen under the lock, so hit/miss totals are a
// pure function of the request multiset.
func TestCacheConcurrentDeterministicCounts(t *testing.T) {
	const workers, shapes, reqs = 8, 13, 200
	pl := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xc0ffee))
			for i := 0; i < reqs; i++ {
				s := rng.IntN(shapes)
				r := &Rule{NumVars: 2, Atoms: []Atom{
					atom(fmt.Sprintf("p%d", s), v(0), v(1)),
					atom("e", v(1), c()),
				}}
				pl.PlanRule(r)
			}
		}(w)
	}
	wg.Wait()
	st := pl.Stats()
	if st.Built != shapes {
		t.Errorf("Built = %d across %d concurrent requests, want exactly %d (one per shape)", st.Built, workers*reqs, shapes)
	}
	if st.Hits != workers*reqs-shapes {
		t.Errorf("Hits = %d, want %d", st.Hits, workers*reqs-shapes)
	}
}

// genRule derives a random rule shape — not necessarily safe — from rng.
// Shared by the fuzz target and benchmarks.
func genRule(rng *rand.Rand) *Rule {
	r := &Rule{NumVars: 1 + rng.IntN(6)}
	nAtoms := rng.IntN(5)
	for i := 0; i < nAtoms; i++ {
		a := Atom{Pred: fmt.Sprintf("p%d", rng.IntN(4))}
		for j, nt := 0, 1+rng.IntN(3); j < nt; j++ {
			if rng.IntN(4) == 0 {
				a.Terms = append(a.Terms, c())
			} else {
				a.Terms = append(a.Terms, v(rng.IntN(r.NumVars)))
			}
		}
		r.Atoms = append(r.Atoms, a)
	}
	nChecks := rng.IntN(4)
	for i := 0; i < nChecks; i++ {
		ch := Check{Pred: "lt", Builtin: true}
		if rng.IntN(3) == 0 {
			ch = Check{Pred: fmt.Sprintf("n%d", rng.IntN(3)), Negated: true}
		}
		for j, nt := 0, 1+rng.IntN(2); j < nt; j++ {
			if rng.IntN(4) == 0 {
				ch.Terms = append(ch.Terms, c())
			} else {
				ch.Terms = append(ch.Terms, v(rng.IntN(r.NumVars)))
			}
		}
		r.Checks = append(r.Checks, ch)
	}
	return r
}

// FuzzPlanRule checks the planner's structural invariants over arbitrary
// rule shapes (including unsafe ones): every plan is a delta-first
// permutation, no check is scheduled before its variables are bound (except
// the unsafe-leftover fallback at the final step), ground checks are
// pass-level, scheduling is exactly-once, and Build is deterministic.
func FuzzPlanRule(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := genRule(rand.New(rand.NewPCG(seed, 0xfeed)))
		p := Build(r)
		if p2 := Build(r); !reflect.DeepEqual(p, p2) {
			t.Fatal("Build is not deterministic")
		}
		n := len(r.Atoms)
		if len(p.Order) != n || len(p.ChecksAt) != n || len(p.Adorn) != n {
			t.Fatalf("plan tables sized %d/%d/%d for %d atoms", len(p.Order), len(p.ChecksAt), len(p.Adorn), n)
		}
		for _, ci := range p.Pre {
			if hasVars(&r.Checks[ci]) {
				t.Fatalf("check %d has variables but is scheduled pass-level", ci)
			}
		}
		for d := 0; d < n; d++ {
			order := p.Order[d]
			if len(order) != n || order[0] != d {
				t.Fatalf("Order[%d] = %v: not a delta-first sequence", d, order)
			}
			seen := make([]bool, n)
			for _, pos := range order {
				if pos < 0 || pos >= n || seen[pos] {
					t.Fatalf("Order[%d] = %v is not a permutation", d, order)
				}
				seen[pos] = true
			}
			// Replay the plan, tracking bound variables, and verify check
			// placement: bound when scheduled (earliest such step), and
			// every check scheduled exactly once per delta (Pre included).
			bound := make([]bool, r.NumVars)
			times := make([]int, len(r.Checks))
			for _, ci := range p.Pre {
				times[ci]++
			}
			for s, pos := range order {
				if got := adornmentOf(&r.Atoms[pos], bound); got != p.Adorn[d][s] {
					t.Fatalf("Adorn[%d][%d] = %q, want %q", d, s, p.Adorn[d][s], got)
				}
				prevBound := append([]bool(nil), bound...)
				for _, tm := range r.Atoms[pos].Terms {
					if tm.IsVar {
						bound[tm.Slot] = true
					}
				}
				for _, ci := range p.ChecksAt[d][s] {
					times[ci]++
					ch := &r.Checks[ci]
					if checkBound(ch, prevBound) && s > 0 {
						t.Fatalf("delta %d: check %d bound before step %d but scheduled there", d, ci, s)
					}
					if !checkBound(ch, bound) && s != n-1 {
						t.Fatalf("delta %d: check %d scheduled at step %d with unbound variables", d, ci, s)
					}
				}
			}
			for ci, k := range times {
				if k != 1 {
					t.Fatalf("delta %d: check %d scheduled %d times, want exactly once", d, ci, k)
				}
			}
		}
		// Independent recount of the reordered metric.
		reordered := 0
		for d := 0; d < n; d++ {
			for s, pos := range p.Order[d] {
				if pos != writtenOrderAtom(d, s) {
					reordered++
				}
			}
		}
		if p.Reordered != reordered {
			t.Fatalf("Reordered = %d, recount says %d", p.Reordered, reordered)
		}
	})
}

func benchRule() *Rule {
	// A representative Magic^S-ish shape: guard + three joinable atoms +
	// two filters.
	return &Rule{
		NumVars: 5,
		Atoms: []Atom{
			atom("m_p_bf", v(0)),
			atom("e", v(0), v(1)),
			atom("e", v(1), v(2)),
			atom("f", v(2), v(3), v(4)),
		},
		Checks: []Check{
			builtin("neq", v(0), v(2)),
			negated("blocked", v(3)),
		},
	}
}

func BenchmarkBuild(b *testing.B) {
	r := benchRule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(r)
	}
}

func BenchmarkPlanRuleCached(b *testing.B) {
	pl := New(nil)
	r := benchRule()
	pl.PlanRule(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.PlanRule(r)
	}
}

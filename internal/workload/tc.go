// Package workload generates the datasets of the paper's experimental
// study (Section V): the Transitive Closure (TC) family over synthetic
// graphs, the 3-rule recursive Explain program, an IRIS-style 8-rule
// non-recursive program, and an AMIE-style 23-rule recursive program over a
// synthetic YAGO-like knowledge base, plus the running dealsWith example of
// Table I and the star-with-sinks case-study graphs of Section V-C.
//
// Every generator is deterministic given its parameters and seed.
package workload

import (
	"fmt"
	"math/rand/v2"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/parser"
)

// Workload bundles a probabilistic program with a populated database.
type Workload struct {
	Name    string
	Program *ast.Program
	DB      *db.Database
}

// parseProgram parses a generated program source, returning parse and
// validation failures as errors.
func parseProgram(src string) (*ast.Program, error) {
	return parser.ParseProgram(src)
}

// mustParse wraps parseProgram for this package's built-in program
// constructors. Their sources are constants up to the probability
// parameters, so a failure means either a bug in the template (covered by
// workload_test's TestProgramsValidate) or a caller-supplied probability
// outside [0,1]; both are contract violations, reported by panic.
func mustParse(src string) *ast.Program {
	p, err := parseProgram(src)
	if err != nil {
		panic(fmt.Sprintf("workload: bad built-in program: %v", err))
	}
	return p
}

// TCProgram returns the paper's 3-rule probabilistic Transitive Closure
// program over an undirected graph (Section V, "Transitive Closure"):
// the base rule lifts each edge in both directions, and the recursive rule
// composes paths. Base-rule probabilities default to pBase and the
// recursive rule to pRec (the paper's Example 4.2 uses 1.0 / 0.8).
func TCProgram(pBase, pRec float64) *ast.Program {
	return mustParse(fmt.Sprintf(`
		%g r1: tc(X, Y) :- edge(X, Y).
		%g r2: tc(X, Y) :- edge(Y, X).
		%g r3: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, pBase, pBase, pRec))
}

// TCProgram3 returns the undirected TC program with a distinct probability
// per rule (forward lift, backward lift, recursive composition).
func TCProgram3(pFwd, pBwd, pRec float64) *ast.Program {
	return mustParse(fmt.Sprintf(`
		%g r1: tc(X, Y) :- edge(X, Y).
		%g r2: tc(X, Y) :- edge(Y, X).
		%g r3: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, pFwd, pBwd, pRec))
}

// TCProgramDirected returns the 2-rule directed probabilistic TC program of
// Example 4.2 (used by the Section V-C case study, where reachability
// direction matters).
func TCProgramDirected(pBase, pRec float64) *ast.Program {
	return mustParse(fmt.Sprintf(`
		%g r1: tc(X, Y) :- edge(X, Y).
		%g r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, pBase, pRec))
}

// node returns the i-th synthetic node constant.
func node(i int) ast.Term { return ast.C(fmt.Sprintf("n%d", i)) }

// edgeFact builds edge(ni, nj).
func edgeFact(i, j int) ast.Atom { return ast.NewAtom("edge", node(i), node(j)) }

// CompleteGraph populates a database with the edges of the complete
// directed graph on n nodes (no self loops): the paper's "fully connected"
// TC inputs.
func CompleteGraph(n int) *db.Database {
	d := db.NewDatabase()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.MustInsertAtom(edgeFact(i, j))
			}
		}
	}
	return d
}

// RandomGraph populates a database with a G(n, p) random directed graph
// (each ordered pair an edge independently with probability p).
func RandomGraph(n int, p float64, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				d.MustInsertAtom(edgeFact(i, j))
			}
		}
	}
	return d
}

// RandomGraphM populates a database with exactly m distinct random directed
// edges on n nodes.
func RandomGraphM(n, m int, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	added := 0
	for added < m {
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j {
			continue
		}
		if _, fresh := d.MustInsertAtom(edgeFact(i, j)); fresh {
			added++
		}
	}
	return d
}

// RingChordGraph populates a database with a strongly connected sparse
// directed graph: a ring over n nodes plus `chords` random extra edges.
// This is the shape behind the paper's TC scaling experiment, where ~1K
// input tuples generate ~1M output tuples: the closure of a strongly
// connected graph is the complete relation, so outputs grow as n² from
// only O(n) inputs.
func RingChordGraph(n, chords int, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	for i := 0; i < n; i++ {
		d.MustInsertAtom(edgeFact(i, (i+1)%n))
	}
	added := 0
	for added < chords {
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j || (i+1)%n == j {
			continue
		}
		if _, fresh := d.MustInsertAtom(edgeFact(i, j)); fresh {
			added++
		}
	}
	return d
}

// RandomizeWeights returns a copy of prog with every rule's probability
// drawn uniformly from [0, 1) — the paper's default experimental setting
// ("all rules have been randomly assigned with probabilities in the range
// of [0,1]").
func RandomizeWeights(prog *ast.Program, rng *rand.Rand) *ast.Program {
	out := prog.Clone()
	for i := range out.Rules {
		out.Rules[i].Prob = rng.Float64()
	}
	return out
}

// StarWithSinks builds the Section V-C case-study graph (Figure 6): a star
// whose internal node a has l spoke nodes a1..al with edges (ai -> a), and
// m "sink" chains of length 2 hanging from a: for each sink s, edges
// (a -> s1) and (s1 -> s2). The function returns the database plus the
// spoke names and the terminal sink names for building T2.
func StarWithSinks(l, m int) (d *db.Database, spokes []string, sinks []string) {
	d = db.NewDatabase()
	add := func(x, y string) {
		d.MustInsertAtom(ast.NewAtom("edge", ast.C(x), ast.C(y)))
	}
	for i := 1; i <= l; i++ {
		sp := fmt.Sprintf("a%d", i)
		spokes = append(spokes, sp)
		add(sp, "a")
	}
	for i := 1; i <= m; i++ {
		mid := fmt.Sprintf("v%d_1", i)
		end := fmt.Sprintf("v%d_2", i)
		add("a", mid)
		add(mid, end)
		sinks = append(sinks, end)
	}
	return d, spokes, sinks
}

// TC builds the undirected-TC workload over a graph database produced by
// one of the graph generators above.
func TC(d *db.Database) Workload {
	return Workload{Name: "TC", Program: TCProgram(1.0, 0.8), DB: d}
}

package workload

import (
	"fmt"
	"math/rand/v2"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// ExplainProgram returns the 3-rule recursive program used for the
// "Explain" dataset (Section V; the paper takes it from the Explain
// benchmark of [23], with a randomly populated, gradually growing
// database). The program derives a reachability-style "related" relation
// from two base relations, mixing a linear recursion with a union:
//
//	0.9 x1: related(X, Y) :- friend(X, Y).
//	0.7 x2: related(X, Y) :- colleague(X, Y).
//	0.6 x3: related(X, Y) :- related(X, Z), friend(Z, Y).
func ExplainProgram() *ast.Program {
	return mustParse(`
		0.9 x1: related(X, Y) :- friend(X, Y).
		0.7 x2: related(X, Y) :- colleague(X, Y).
		0.6 x3: related(X, Y) :- related(X, Z), friend(Z, Y).
	`)
}

// ExplainDB randomly populates the Explain base relations with nPeople
// people, each with avgDeg random friend edges and avgDeg/2 colleague
// edges. Growing nPeople grows the output roughly quadratically along
// friendship chains, mirroring the paper's "gradually growing" setup.
func ExplainDB(nPeople, avgDeg int, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	person := func(i int) ast.Term { return ast.C(fmt.Sprintf("p%d", i)) }
	addEdges := func(pred string, count int) {
		for added := 0; added < count; {
			i, j := rng.IntN(nPeople), rng.IntN(nPeople)
			if i == j {
				continue
			}
			if _, fresh := d.MustInsertAtom(ast.NewAtom(pred, person(i), person(j))); fresh {
				added++
			}
		}
	}
	addEdges("friend", nPeople*avgDeg)
	addEdges("colleague", nPeople*avgDeg/2)
	return d
}

// Explain builds the Explain workload.
func Explain(nPeople, avgDeg int, rng *rand.Rand) Workload {
	return Workload{Name: "Explain", Program: ExplainProgram(), DB: ExplainDB(nPeople, avgDeg, rng)}
}

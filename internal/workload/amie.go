package workload

import (
	"fmt"
	"math/rand/v2"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// AMIEProgram returns a 23-rule recursive probabilistic program in the
// style of the rules AMIE mines from YAGO (Section V, "AMIE"): Horn rules
// over knowledge-base relations, with confidence weights. The paper's
// program and the YAGO database are not redistributable, so this
// reproduction pairs mined-rule-shaped Horn clauses (including the paper's
// Example 1.1 dealsWith rules) with the synthetic YAGO-style knowledge base
// of AMIEDB; it preserves the properties the experiments depend on:
// recursion through several idb predicates, multiple rules per head
// predicate, and very high rule-instantiation fan-out.
func AMIEProgram() *ast.Program {
	return mustParse(`
		% trade (the paper's Example 1.1 rules a1-a3)
		0.80 a1:  dealsWith(A, B)    :- dealsWith(B, A).
		0.70 a2:  dealsWith(A, B)    :- exports(A, C), imports(B, C).
		0.50 a3:  dealsWith(A, B)    :- dealsWith(A, F), dealsWith(F, B).
		0.60 a4:  dealsWith(A, B)    :- tradeAgreement(A, B).
		% geography
		0.90 a5:  inRegion(C, R)     :- locatedIn(C, R).
		0.65 a6:  inRegion(C, R)     :- locatedIn(C, M), inRegion(M, R).
		0.85 a7:  neighbors(A, B)    :- adjacent(A, B).
		0.55 a8:  neighbors(A, B)    :- neighbors(B, A).
		% people
		0.85 a9:  livesIn(P, C)      :- residesIn(P, C).
		0.80 a10: livesIn(P, C)      :- bornIn(P, C).
		0.60 a11: livesIn(P, C)      :- marriedTo(P, Q), livesIn(Q, C).
		0.90 a12: marriedTo(A, B)    :- spouse(A, B).
		0.75 a13: marriedTo(A, B)    :- marriedTo(B, A).
		0.70 a14: citizenOf(P, C)    :- bornIn(P, T), cityOf(T, C).
		0.55 a15: citizenOf(P, C)    :- livesIn(P, T), cityOf(T, C).
		0.80 a16: knowsPerson(A, B)  :- knows(A, B).
		0.50 a17: knowsPerson(A, B)  :- knowsPerson(B, A).
		0.45 a18: knowsPerson(A, B)  :- worksFor(A, E), worksFor(B, E).
		% derived economy / society
		0.60 a19: influences(A, B)   :- dealsWith(A, B), biggerGDP(A, B).
		0.65 a20: compatriots(A, B)  :- citizenOf(A, C), citizenOf(B, C).
		0.55 a21: tradePartnerOf(P, B) :- citizenOf(P, A), dealsWith(A, B).
		0.70 a22: connected(A, B)    :- dealsWith(A, B).
		0.50 a23: connected(A, B)    :- connected(A, M), connected(M, B).
	`)
}

// AMIEDBParams sizes the synthetic YAGO-style knowledge base.
type AMIEDBParams struct {
	Countries int // default 20
	Cities    int // default 3 per country
	People    int // default 10 per country
	Products  int // default 15
	Employers int // default People/5
}

func (p *AMIEDBParams) fill() {
	if p.Countries <= 0 {
		p.Countries = 20
	}
	if p.Cities <= 0 {
		p.Cities = 3 * p.Countries
	}
	if p.People <= 0 {
		p.People = 10 * p.Countries
	}
	if p.Products <= 0 {
		p.Products = 15
	}
	if p.Employers <= 0 {
		p.Employers = p.People/5 + 1
	}
}

// AMIEDB generates the synthetic knowledge base: countries in regions,
// cities in countries, people born/residing/working/married, import/export
// product flows, trade agreements, adjacency, and GDP order. All populated
// relations are extensional in AMIEProgram.
func AMIEDB(params AMIEDBParams, rng *rand.Rand) *db.Database {
	params.fill()
	d := db.NewDatabase()
	country := func(i int) ast.Term { return ast.C(fmt.Sprintf("country%d", i)) }
	city := func(i int) ast.Term { return ast.C(fmt.Sprintf("city%d", i)) }
	person := func(i int) ast.Term { return ast.C(fmt.Sprintf("person%d", i)) }
	product := func(i int) ast.Term { return ast.C(fmt.Sprintf("product%d", i)) }
	employer := func(i int) ast.Term { return ast.C(fmt.Sprintf("org%d", i)) }
	region := func(i int) ast.Term { return ast.C(fmt.Sprintf("region%d", i)) }
	add := func(pred string, terms ...ast.Term) {
		d.MustInsertAtom(ast.NewAtom(pred, terms...))
	}

	nRegions := params.Countries/5 + 1
	for i := 0; i < params.Cities; i++ {
		c := rng.IntN(params.Countries)
		add("cityOf", city(i), country(c))
		add("locatedIn", city(i), country(c))
	}
	for i := 0; i < params.Countries; i++ {
		add("locatedIn", country(i), region(rng.IntN(nRegions)))
		for k := 0; k < 2; k++ {
			add("exports", country(i), product(rng.IntN(params.Products)))
			add("imports", country(i), product(rng.IntN(params.Products)))
		}
		if rng.Float64() < 0.3 {
			add("tradeAgreement", country(i), country(rng.IntN(params.Countries)))
		}
		if j := rng.IntN(params.Countries); j != i {
			add("adjacent", country(i), country(j))
			add("biggerGDP", country(max(i, j)), country(min(i, j)))
		}
	}
	for i := 0; i < params.People; i++ {
		add("bornIn", person(i), city(rng.IntN(params.Cities)))
		if rng.Float64() < 0.5 {
			add("residesIn", person(i), city(rng.IntN(params.Cities)))
		}
		if rng.Float64() < 0.3 {
			if j := rng.IntN(params.People); j != i {
				add("spouse", person(i), person(j))
			}
		}
		add("worksFor", person(i), employer(rng.IntN(params.Employers)))
		if rng.Float64() < 0.4 {
			if j := rng.IntN(params.People); j != i {
				add("knows", person(i), person(j))
			}
		}
	}
	return d
}

// AMIE builds the AMIE-style workload.
func AMIE(params AMIEDBParams, rng *rand.Rand) Workload {
	return Workload{Name: "AMIE", Program: AMIEProgram(), DB: AMIEDB(params, rng)}
}

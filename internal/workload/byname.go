package workload

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Names lists the datasets ByName accepts, in the paper's order, plus the
// PowerLaw social-influence family used by the estimator battery.
var Names = []string{"TC", "Explain", "IRIS", "AMIE", "Trade", "PowerLaw"}

// ByName constructs a dataset instance by name (case-insensitive), the
// shared front door for the genwork and cmbench CLIs and the experiment
// driver. The size parameter means: TC — node count of the ring+chords
// graph; Explain — people count; IRIS — people count; AMIE — country count;
// Trade — ignored (the fixed Table I example); PowerLaw — people count
// (sized through DefaultPowerLawParams). Unknown names and non-positive
// sizes are errors, not panics, so tools can report usable messages.
func ByName(name string, size int, rng *rand.Rand) (Workload, error) {
	key := strings.ToLower(name)
	if key != "trade" && size <= 0 {
		return Workload{}, fmt.Errorf("workload: dataset %s needs a positive size, got %d", name, size)
	}
	switch key {
	case "tc":
		return Workload{
			Name: "TC",
			// One fixed draw from U[0,1]³, kept constant across sizes so
			// sweeps are comparable (re-drawing per size would change the
			// sampled-subgraph distribution mid-sweep).
			Program: TCProgram3(0.61, 0.44, 0.22),
			DB:      RingChordGraph(size, size/2, rng),
		}, nil
	case "explain":
		return Explain(size, 3, rng), nil
	case "iris":
		return IRIS(size, size/10+2, size/40+2, size/4+2, rng), nil
	case "amie":
		return AMIE(AMIEDBParams{Countries: size, People: 6 * size}, rng), nil
	case "trade":
		return Trade(), nil
	case "powerlaw":
		return PowerLaw(DefaultPowerLawParams(size), rng), nil
	default:
		return Workload{}, fmt.Errorf("workload: unknown dataset %q (known: %s)", name, strings.Join(Names, ", "))
	}
}

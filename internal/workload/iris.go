package workload

import (
	"fmt"
	"math/rand/v2"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// IRISProgram returns an 8-rule, multi-stratum, non-recursive program in
// the style of the IRIS benchmark program of Section V (the original ships
// with the IRIS datalog engine; this reproduction preserves its shape: a
// layered cascade of joins and unions over base relations, no recursion,
// heavy fan-out in the upper strata).
//
// Schema: person(P), worksAt(P, C), locatedIn(C, CT), knows(P, P),
// project(C, J).
func IRISProgram() *ast.Program {
	return mustParse(`
		0.9 i1: colleague(X, Y)  :- worksAt(X, C), worksAt(Y, C), neq(X, Y).
		0.8 i2: cityOf(P, CT)    :- worksAt(P, C), locatedIn(C, CT).
		0.7 i3: contact(X, Y)    :- knows(X, Y).
		0.6 i4: contact(X, Y)    :- colleague(X, Y).
		0.8 i5: sameCity(X, Y)   :- cityOf(X, CT), cityOf(Y, CT), neq(X, Y).
		0.5 i6: mayMeet(X, Y)    :- contact(X, Y), sameCity(X, Y).
		0.9 i7: worksOn(P, J)    :- worksAt(P, C), project(C, J).
		0.6 i8: collaborate(X, Y, J) :- worksOn(X, J), worksOn(Y, J), contact(X, Y).
	`)
}

// IRISDB populates the IRIS schema: nPeople people spread over nCompanies
// companies in nCities cities, with random knows edges and projects. The
// colleague/sameCity joins make the output size grow quadratically within
// companies and cities, reproducing the benchmark's output blow-up.
func IRISDB(nPeople, nCompanies, nCities, nProjects int, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	p := func(i int) ast.Term { return ast.C(fmt.Sprintf("p%d", i)) }
	c := func(i int) ast.Term { return ast.C(fmt.Sprintf("c%d", i)) }
	ct := func(i int) ast.Term { return ast.C(fmt.Sprintf("ct%d", i)) }
	j := func(i int) ast.Term { return ast.C(fmt.Sprintf("j%d", i)) }

	for i := 0; i < nPeople; i++ {
		d.MustInsertAtom(ast.NewAtom("worksAt", p(i), c(rng.IntN(nCompanies))))
	}
	for i := 0; i < nCompanies; i++ {
		d.MustInsertAtom(ast.NewAtom("locatedIn", c(i), ct(rng.IntN(nCities))))
	}
	for k := 0; k < nPeople; k++ {
		x, y := rng.IntN(nPeople), rng.IntN(nPeople)
		if x != y {
			d.MustInsertAtom(ast.NewAtom("knows", p(x), p(y)))
		}
	}
	for i := 0; i < nProjects; i++ {
		d.MustInsertAtom(ast.NewAtom("project", c(rng.IntN(nCompanies)), j(i)))
	}
	return d
}

// IRIS builds the IRIS-style workload.
func IRIS(nPeople, nCompanies, nCities, nProjects int, rng *rand.Rand) Workload {
	return Workload{
		Name:    "IRIS",
		Program: IRISProgram(),
		DB:      IRISDB(nPeople, nCompanies, nCities, nProjects, rng),
	}
}

package workload_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

func powerLawAt(alpha float64, seed uint64) workload.Workload {
	p := workload.DefaultPowerLawParams(300)
	p.Edges = 1500
	p.Alpha = alpha
	return workload.PowerLaw(p, rand.New(rand.NewPCG(seed, seed^0xFACE)))
}

// topDecileInDegreeShare measures how concentrated follow targets are: the
// fraction of all follows edges landing on the 10% most-followed people.
func topDecileInDegreeShare(t *testing.T, w workload.Workload) float64 {
	t.Helper()
	indeg := map[string]int{}
	total := 0
	for _, a := range w.DB.Facts("follows") {
		tgt := a.Terms[1]
		if tgt.Kind != ast.Const {
			t.Fatalf("non-constant follow target in %s", a.String())
		}
		indeg[tgt.Name]++
		total++
	}
	if total == 0 {
		t.Fatal("no follows facts")
	}
	counts := make([]int, 0, len(indeg))
	for _, c := range indeg {
		counts = append(counts, c)
	}
	// Selection of the top decile by repeated max would be quadratic; a
	// simple descending sort is fine at this size.
	for i := range counts {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	top := 300 / 10
	sum := 0
	for i := 0; i < top && i < len(counts); i++ {
		sum += counts[i]
	}
	return float64(sum) / float64(total)
}

// TestPowerLawSkewMonotone checks the defining property of the generator:
// raising the Zipf exponent concentrates in-degree, so the top decile's
// share of follow edges grows monotonically in Alpha.
func TestPowerLawSkewMonotone(t *testing.T) {
	shares := make([]float64, 0, 3)
	for _, alpha := range []float64{0.2, 1.0, 2.5} {
		shares = append(shares, topDecileInDegreeShare(t, powerLawAt(alpha, 17)))
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] <= shares[i-1] {
			t.Errorf("top-decile in-degree share not monotone in alpha: %v", shares)
		}
	}
	// Sanity-pin the endpoints: near-uniform at 0.2, clearly skewed at 2.5.
	if shares[0] > 0.25 {
		t.Errorf("alpha=0.2 share %v too skewed for a near-uniform draw", shares[0])
	}
	if shares[2] < 0.5 {
		t.Errorf("alpha=2.5 share %v not skewed enough", shares[2])
	}
}

// renderFacts renders every relation of the database in RelationNames
// order, the byte-stable view used for determinism comparisons.
func renderFacts(t *testing.T, d *db.Database) []byte {
	t.Helper()
	var all []ast.Atom
	for _, name := range d.RelationNames() {
		all = append(all, d.Facts(name)...)
	}
	var buf bytes.Buffer
	if err := parser.WriteFacts(&buf, all); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPowerLawDeterministicPerSeed pins the generator to its seed: two
// builds from identically seeded PRNGs must agree byte-for-byte, and a
// different seed must not.
func TestPowerLawDeterministicPerSeed(t *testing.T) {
	a := powerLawAt(1.0, 23)
	b := powerLawAt(1.0, 23)
	if a.Program.String() != b.Program.String() {
		t.Error("same seed produced different programs")
	}
	fa, fb := renderFacts(t, a.DB), renderFacts(t, b.DB)
	if !bytes.Equal(fa, fb) {
		t.Error("same seed produced different databases")
	}
	other := renderFacts(t, powerLawAt(1.0, 24).DB)
	if bytes.Equal(fa, other) {
		t.Error("different seeds produced identical databases")
	}
}

// TestPowerLawRoundTrip pushes the generated program and facts through the
// parser: the .dl/.facts files genwork writes must reload into an
// equivalent instance.
func TestPowerLawRoundTrip(t *testing.T) {
	w := powerLawAt(1.0, 31)
	prog, err := parser.ParseProgram(w.Program.String())
	if err != nil {
		t.Fatalf("program round-trip: %v", err)
	}
	if got, want := len(prog.Rules), len(w.Program.Rules); got != want {
		t.Fatalf("round-tripped rules = %d, want %d", got, want)
	}
	facts, err := parser.ParseFacts(string(renderFacts(t, w.DB)))
	if err != nil {
		t.Fatalf("facts round-trip: %v", err)
	}
	reloaded := db.NewDatabase()
	for _, a := range facts {
		reloaded.MustInsertAtom(a)
	}
	if got, want := reloaded.TotalTuples(), w.DB.TotalTuples(); got != want {
		t.Errorf("round-tripped tuples = %d, want %d", got, want)
	}
	if derive(t, workload.Workload{Name: "PowerLaw", Program: prog, DB: reloaded}, "reaches") == 0 {
		t.Error("round-tripped instance derives no reaches tuples")
	}
}

// TestPowerLawHierarchical guards the property the estimator battery
// depends on: every cone of the PowerLaw program passes the hierarchy
// test, so ExactCM never falls back on these workloads.
func TestPowerLawHierarchical(t *testing.T) {
	prog := workload.PowerLawProgram()
	g := analysis.NewDepGraph(prog)
	for _, res := range analysis.AnalyzeHierarchy(prog, g, []string{"reaches", "influences", "connected", "interested"}, nil) {
		if !res.Hierarchical {
			t.Errorf("%s: not hierarchical: %s", res.Root, res.Reason)
		}
	}
}

// TestPowerLawSizing checks clamping and the fact counts the params promise.
func TestPowerLawSizing(t *testing.T) {
	p := workload.DefaultPowerLawParams(50)
	w := workload.PowerLaw(p, rand.New(rand.NewPCG(3, 3)))
	if got := len(w.DB.Facts("follows")); got != p.Edges {
		t.Errorf("follows = %d, want %d", got, p.Edges)
	}
	if got := len(w.DB.Facts("interest")); got != p.Interests {
		t.Errorf("interest = %d, want %d", got, p.Interests)
	}
	// Requesting more edges than the complete graph holds must clamp, not
	// hang.
	tiny := workload.PowerLawParams{Nodes: 4, Edges: 100, Topics: 2, Interests: 100, Alpha: 1.0}
	d := workload.PowerLawDB(tiny, rand.New(rand.NewPCG(4, 4)))
	if got, want := len(d.Facts("follows")), 4*3; got != want {
		t.Errorf("clamped follows = %d, want %d", got, want)
	}
	if got, want := len(d.Facts("interest")), 4*2; got != want {
		t.Errorf("clamped interest = %d, want %d", got, want)
	}
}

package workload_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/engine"
	"contribmax/internal/workload"
)

// derive evaluates the workload (on a scratch database sharing edbs) and
// returns the number of derived tuples of pred.
func derive(t *testing.T, w workload.Workload, pred string) int {
	t.Helper()
	scratch := w.DB.CloneSchema()
	for _, p := range w.Program.EDBs() {
		if rel, ok := w.DB.Lookup(p); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(w.Program, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatal(err)
	}
	rel, ok := scratch.Lookup(pred)
	if !ok {
		return 0
	}
	return rel.Len()
}

func TestProgramsValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, w := range []workload.Workload{
		workload.TC(workload.CompleteGraph(4)),
		workload.Explain(20, 3, rng),
		workload.IRIS(30, 5, 3, 10, rng),
		workload.AMIE(workload.AMIEDBParams{}, rng),
		workload.Trade(),
		workload.PowerLaw(workload.DefaultPowerLawParams(30), rng),
	} {
		if err := w.Program.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.DB.TotalTuples() == 0 {
			t.Errorf("%s: empty database", w.Name)
		}
	}
}

func TestRuleCountsMatchPaper(t *testing.T) {
	if got := len(workload.TCProgram(1, 0.8).Rules); got != 3 {
		t.Errorf("TC rules = %d, want 3 (Section V)", got)
	}
	if got := len(workload.ExplainProgram().Rules); got != 3 {
		t.Errorf("Explain rules = %d, want 3", got)
	}
	if got := len(workload.IRISProgram().Rules); got != 8 {
		t.Errorf("IRIS rules = %d, want 8", got)
	}
	if got := len(workload.AMIEProgram().Rules); got != 23 {
		t.Errorf("AMIE rules = %d, want 23", got)
	}
}

func TestRecursionShapes(t *testing.T) {
	if !workload.TCProgram(1, 0.8).IsRecursive() {
		t.Error("TC should be recursive")
	}
	if !workload.ExplainProgram().IsRecursive() {
		t.Error("Explain should be recursive")
	}
	if workload.IRISProgram().IsRecursive() {
		t.Error("IRIS should be non-recursive")
	}
	if !workload.AMIEProgram().IsRecursive() {
		t.Error("AMIE should be recursive")
	}
	if workload.PowerLawProgram().IsRecursive() {
		t.Error("PowerLaw should be non-recursive")
	}
}

func TestCompleteGraphTC(t *testing.T) {
	n := 5
	w := workload.TC(workload.CompleteGraph(n))
	if got, want := w.DB.TotalTuples(), n*(n-1); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	// Undirected TC over a complete graph reaches every ordered pair,
	// including the diagonal via round trips.
	if got, want := derive(t, w, "tc"), n*n; got != want {
		t.Errorf("tc = %d, want %d", got, want)
	}
}

func TestRandomGraphM(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	d := workload.RandomGraphM(10, 25, rng)
	if d.TotalTuples() != 25 {
		t.Errorf("edges = %d, want 25", d.TotalTuples())
	}
}

func TestRandomGraphDeterministicPerSeed(t *testing.T) {
	d1 := workload.RandomGraph(8, 0.4, rand.New(rand.NewPCG(5, 5)))
	d2 := workload.RandomGraph(8, 0.4, rand.New(rand.NewPCG(5, 5)))
	f1 := fmt.Sprint(d1.Facts("edge"))
	f2 := fmt.Sprint(d2.Facts("edge"))
	if f1 != f2 {
		t.Error("same seed produced different graphs")
	}
}

func TestStarWithSinks(t *testing.T) {
	d, spokes, sinks := workload.StarWithSinks(5, 2)
	if len(spokes) != 5 || len(sinks) != 2 {
		t.Fatalf("spokes=%v sinks=%v", spokes, sinks)
	}
	// Edges: 5 spokes + 2 chains of 2 = 9.
	if d.TotalTuples() != 9 {
		t.Errorf("edges = %d, want 9", d.TotalTuples())
	}
	// Every tc(spoke, sink) must be derivable.
	w := workload.Workload{Name: "star", Program: workload.TCProgramDirected(1, 0.8), DB: d}
	scratch := derivedSet(t, w, "tc")
	for _, sp := range spokes {
		for _, sk := range sinks {
			if !scratch[fmt.Sprintf("tc(%s, %s)", sp, sk)] {
				t.Errorf("tc(%s, %s) not derivable", sp, sk)
			}
		}
	}
}

func derivedSet(t *testing.T, w workload.Workload, pred string) map[string]bool {
	t.Helper()
	scratch := w.DB.CloneSchema()
	for _, p := range w.Program.EDBs() {
		if rel, ok := w.DB.Lookup(p); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(w.Program, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, a := range scratch.Facts(pred) {
		out[a.String()] = true
	}
	return out
}

func TestExplainGrowsWithInput(t *testing.T) {
	small := derive(t, workload.Explain(15, 2, rand.New(rand.NewPCG(3, 3))), "related")
	large := derive(t, workload.Explain(40, 2, rand.New(rand.NewPCG(3, 3))), "related")
	if small <= 0 || large <= small {
		t.Errorf("related: small=%d large=%d; output should grow", small, large)
	}
}

func TestIRISProducesAllIDBs(t *testing.T) {
	w := workload.IRIS(40, 5, 3, 12, rand.New(rand.NewPCG(4, 4)))
	for _, pred := range []string{"colleague", "cityOf", "contact", "sameCity", "mayMeet", "worksOn", "collaborate"} {
		if derive(t, w, pred) == 0 {
			t.Errorf("IRIS derived no %s tuples", pred)
		}
	}
}

func TestAMIEProducesTradeChains(t *testing.T) {
	w := workload.AMIE(workload.AMIEDBParams{Countries: 10, People: 40}, rand.New(rand.NewPCG(6, 6)))
	if derive(t, w, "dealsWith") == 0 {
		t.Error("AMIE derived no dealsWith tuples")
	}
	if derive(t, w, "connected") == 0 {
		t.Error("AMIE derived no connected tuples")
	}
	edb := map[string]bool{}
	for _, p := range w.Program.EDBs() {
		edb[p] = true
	}
	// All populated relations must be extensional w.r.t. the program (no
	// edb/idb mixing).
	for _, name := range w.DB.RelationNames() {
		if !edb[name] {
			t.Errorf("populated relation %s is not extensional in the program", name)
		}
	}
}

func TestTradeExampleDerivesPaperTargets(t *testing.T) {
	w := workload.Trade()
	got := derivedSet(t, w, "dealsWith")
	for _, target := range []string{
		"dealsWith(usa, iran)",
		"dealsWith(pakistan, india)",
		"dealsWith(russia, ukraine)",
	} {
		if !got[target] {
			t.Errorf("running example does not derive %s", target)
		}
	}
}

func TestTCProgramWeights(t *testing.T) {
	p := workload.TCProgram(0.9, 0.7)
	if p.Rules[0].Prob != 0.9 || p.Rules[2].Prob != 0.7 {
		t.Errorf("weights not threaded: %v", p.Rules)
	}
}

// TestWorkloadProgramsAnalyzerClean sweeps every generated workload
// program through the static analyzer with full database knowledge: none
// may produce a warning or error (CM011 adornment warnings only fire when
// query roots are supplied, which workloads do not carry).
func TestWorkloadProgramsAnalyzerClean(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for _, name := range workload.Names {
		w, err := workload.ByName(name, 40, rng)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		edb := map[string]int{}
		for _, rel := range w.DB.RelationNames() {
			if r, ok := w.DB.Lookup(rel); ok {
				edb[rel] = r.Arity()
			}
		}
		diags := analysis.Analyze(w.Program, analysis.Options{EDB: edb})
		for _, d := range diags {
			if d.Severity >= analysis.Warning {
				t.Errorf("%s: %s", name, d)
			}
		}
	}
}

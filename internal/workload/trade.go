package workload

import (
	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// TradeProgram returns the running example of the paper (Example 1.1): the
// 3 AMIE-mined dealsWith rules over exports/imports and an edb copy of
// dealsWith. As footnote 2 of the paper explains, the edb relation is
// copied into the program through a probability-1 copy rule (r0 below), so
// the program proper stays a pure idb definition.
//
//	1.0 r0: dealsWith(A, B) :- dealsWith0(A, B).
//	0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
//	0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
//	0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
func TradeProgram() *ast.Program {
	return mustParse(`
		1.0 r0: dealsWith(A, B) :- dealsWith0(A, B).
		0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
		0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
		0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
	`)
}

// TradeDB returns the example database of Table I. The edb copy of
// dealsWith is stored in dealsWith0.
func TradeDB() *db.Database {
	d := db.NewDatabase()
	add := func(pred, a, b string) {
		d.MustInsertAtom(ast.NewAtom(pred, ast.C(a), ast.C(b)))
	}
	// exports(Country, Product)
	add("exports", "france", "wine")
	add("exports", "france", "vinegar")
	add("exports", "france", "oil")
	add("exports", "cuba", "tobacco")
	add("exports", "cuba", "sugar")
	add("exports", "russia", "gas")
	// imports(Country, Product)
	add("imports", "germany", "wine")
	add("imports", "usa", "vinegar")
	add("imports", "pakistan", "oil")
	add("imports", "india", "tobacco")
	add("imports", "denmark", "sugar")
	add("imports", "iran", "nickel")
	add("imports", "ukraine", "gas")
	// dealsWith edb copy
	add("dealsWith0", "france", "cuba")
	// The derivations discussed in Examples 3.5/3.7 need a trade link from
	// cuba's sphere towards iran; Table I's iran row imports nickel, whose
	// exporter is not listed. We follow the paper's narrative (USA-Iran is
	// derivable through the transitive rules) by adding cuba->iran trade.
	add("exports", "cuba", "nickel")
	return d
}

// Trade builds the running-example workload.
func Trade() Workload {
	return Workload{Name: "Trade", Program: TradeProgram(), DB: TradeDB()}
}

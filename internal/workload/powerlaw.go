package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// PowerLawProgram returns a 5-rule non-recursive social-influence program
// whose every query cone is hierarchical (self-join-free, and each rule's
// existential variables have nested-or-disjoint atom sets), so the exact
// lifted tier applies end to end. It models topic diffusion over a
// follower graph:
//
//	0.9 f1: connected(X, Y)  :- follows(X, Y).
//	0.8 f2: influences(X, T) :- follows(X, Y), interest(Y, T).
//	0.6 f3: interested(X, T) :- interest(X, T).
//	0.7 f4: reaches(X, T)    :- connected(X, Y), influences(Y, T).
//	0.5 f5: reaches(X, T)    :- interested(X, T).
func PowerLawProgram() *ast.Program {
	return mustParse(`
		0.9 f1: connected(X, Y)  :- follows(X, Y).
		0.8 f2: influences(X, T) :- follows(X, Y), interest(Y, T).
		0.6 f3: interested(X, T) :- interest(X, T).
		0.7 f4: reaches(X, T)    :- connected(X, Y), influences(Y, T).
		0.5 f5: reaches(X, T)    :- interested(X, T).
	`)
}

// PowerLawParams sizes and shapes the synthetic follower graph.
type PowerLawParams struct {
	// Nodes is the number of people (u0..u{Nodes-1}).
	Nodes int
	// Edges is the number of distinct follows(src, dst) facts (clamped to
	// Nodes*(Nodes-1)).
	Edges int
	// Topics is the number of topic constants (t0..t{Topics-1}).
	Topics int
	// Interests is the number of distinct interest(person, topic) facts
	// (clamped to Nodes*Topics).
	Interests int
	// Alpha is the Zipf skew exponent: follow targets and topics are drawn
	// with probability proportional to rank^-Alpha, so larger Alpha
	// concentrates in-degree (and topic popularity) on the low-rank nodes.
	// Alpha = 0 degenerates to the uniform distribution.
	Alpha float64
	// Communities partitions people into Communities groups by node id
	// modulo Communities (so each community mixes popular and unpopular
	// ranks); values <= 1 disable community structure.
	Communities int
	// PIntra is the probability a follow edge stays inside the source's
	// community.
	PIntra float64
}

// DefaultPowerLawParams returns the sizing used by ByName and the CLIs for
// a given node count: average out-degree 4, one topic per ten people, two
// interests per person, unit skew, and four communities with 70%
// intra-community edges.
func DefaultPowerLawParams(nodes int) PowerLawParams {
	return PowerLawParams{
		Nodes:       nodes,
		Edges:       4 * nodes,
		Topics:      nodes/10 + 3,
		Interests:   2 * nodes,
		Alpha:       1.0,
		Communities: 4,
		PIntra:      0.7,
	}
}

// zipfSampler draws ranks 0..n-1 with probability proportional to
// (rank+1)^-alpha via inverse-CDF binary search over precomputed cumulative
// weights. (math/rand/v2 ships no Zipf generator, and building our own
// keeps draws deterministic and seed-stable across Go releases.)
type zipfSampler struct {
	cum []float64
}

func newZipfSampler(n int, alpha float64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) draw(r *rand.Rand) int {
	u := r.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// PowerLawDB populates follows and interest relations. Follow sources are
// uniform; follow targets and topics are Zipf-distributed with exponent
// p.Alpha, so in-degree follows a power law. With community structure
// enabled, a PIntra fraction of edges is resampled until the target shares
// the source's community (with a bounded retry budget so degenerate
// parameter mixes still terminate).
func PowerLawDB(p PowerLawParams, rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	person := func(i int) ast.Term { return ast.C(fmt.Sprintf("u%d", i)) }
	topic := func(i int) ast.Term { return ast.C(fmt.Sprintf("t%d", i)) }
	popularity := newZipfSampler(p.Nodes, p.Alpha)
	topicPop := newZipfSampler(p.Topics, p.Alpha)

	community := func(i int) int {
		if p.Communities <= 1 {
			return 0
		}
		return i % p.Communities
	}
	drawTarget := func(src int) int {
		if p.Communities > 1 && rng.Float64() < p.PIntra {
			want := community(src)
			for tries := 0; tries < 32*p.Communities; tries++ {
				if j := popularity.draw(rng); community(j) == want {
					return j
				}
			}
		}
		return popularity.draw(rng)
	}

	edges := min(p.Edges, p.Nodes*(p.Nodes-1))
	for added := 0; added < edges; {
		i := rng.IntN(p.Nodes)
		j := drawTarget(i)
		if i == j {
			continue
		}
		if _, fresh := d.MustInsertAtom(ast.NewAtom("follows", person(i), person(j))); fresh {
			added++
		}
	}
	interests := min(p.Interests, p.Nodes*p.Topics)
	for added := 0; added < interests; {
		i := rng.IntN(p.Nodes)
		t := topicPop.draw(rng)
		if _, fresh := d.MustInsertAtom(ast.NewAtom("interest", person(i), topic(t))); fresh {
			added++
		}
	}
	return d
}

// PowerLaw builds the power-law social-influence workload.
func PowerLaw(p PowerLawParams, rng *rand.Rand) Workload {
	return Workload{Name: "PowerLaw", Program: PowerLawProgram(), DB: PowerLawDB(p, rng)}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// maxBatchSolves bounds one batch request. A batch holds one pool slot for
// its whole duration, so the bound caps how long a slot can be monopolized.
const maxBatchSolves = 64

// BatchSolveRequest is the JSON input for /api/solve/batch: one program
// and fact set, solved under many parameter variations (k-sweeps, seed
// sweeps, algorithm comparisons). The program and facts are parsed once
// and every variation resolves to the same solve-cache identity, so the
// WD graph — and, for k-sweeps, the RR collection — is built once and
// shared across the whole batch.
type BatchSolveRequest struct {
	Program string `json:"program"`
	Facts   string `json:"facts"`
	// Solves are the per-variation parameters. Program and Facts must be
	// empty on every item (they come from the batch envelope); everything
	// else (targets, k, algorithm, rr, seed, ...) varies freely.
	Solves []SolveRequest `json:"solves"`
}

// BatchItem is one variation's outcome. Exactly one field is set.
type BatchItem struct {
	Response *SolveResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// BatchSolveResponse is the JSON output of /api/solve/batch. Results[i]
// corresponds to Solves[i]; one failing variation does not fail the batch.
type BatchSolveResponse struct {
	Results []BatchItem `json:"results"`
	// Aggregated solve-cache counters over the whole batch. A k-sweep over
	// one instance reports one rr miss and len(Solves)-1 rr hits.
	CacheGraphHits   int64   `json:"cacheGraphHits,omitempty"`
	CacheGraphMisses int64   `json:"cacheGraphMisses,omitempty"`
	CacheRRHits      int64   `json:"cacheRRHits,omitempty"`
	CacheRRMisses    int64   `json:"cacheRRMisses,omitempty"`
	TotalMillis      float64 `json:"totalMillis"`
}

func (s *server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Solves) == 0 {
		http.Error(w, "batch has no solves", http.StatusBadRequest)
		return
	}
	if len(req.Solves) > maxBatchSolves {
		http.Error(w, fmt.Sprintf("batch of %d solves exceeds the limit of %d",
			len(req.Solves), maxBatchSolves), http.StatusBadRequest)
		return
	}
	for i, item := range req.Solves {
		if item.Program != "" || item.Facts != "" {
			http.Error(w, fmt.Sprintf(
				"solves[%d]: program and facts belong on the batch envelope", i),
				http.StatusBadRequest)
			return
		}
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// The whole batch runs under one pool slot: it is one client's workload,
	// and the k-sweep sharing below relies on the items running in order.
	release, err := s.pool.acquire(ctx, tenantOf(r.Header))
	if err != nil {
		writeSolveError(w, err)
		return
	}
	defer release()

	start := time.Now()
	p, err := parseRequest(req.Program, req.Facts)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	out := BatchSolveResponse{Results: make([]BatchItem, len(req.Solves))}
	for i, item := range req.Solves {
		if err := ctx.Err(); err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			continue
		}
		res, err := s.solveParsed(ctx, p, item, nil)
		if err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			continue
		}
		out.Results[i] = BatchItem{Response: res}
		out.CacheGraphHits += res.CacheGraphHits
		out.CacheGraphMisses += res.CacheGraphMisses
		out.CacheRRHits += res.CacheRRHits
		out.CacheRRMisses += res.CacheRRMisses
	}
	out.TotalMillis = float64(time.Since(start)) / float64(time.Millisecond)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

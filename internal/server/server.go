// Package server implements the HTTP interface the paper's conclusions
// propose as future work: "a graphical interface, allowing users to easily
// specify their input/output tuple-set of interest, using patterns". It
// serves a minimal HTML form plus JSON endpoints:
//
//	GET  /            the form (program, facts, target patterns, k, ...)
//	POST /solve       form submission, renders an HTML result
//	POST /api/solve   JSON in/out (SolveRequest -> SolveResponse)
//	POST /api/explain JSON: most probable derivation of one tuple
//
// Synchronous solves are stateless: every request carries its program and
// facts. Asynchronous journaled solves add a small amount of bounded state
// (the run store):
//
//	POST /api/solve/start    202 + run ID; solve continues in background
//	GET  /api/solve/{id}     run status, result once done
//	GET  /solve/{id}/events  live journal as Server-Sent Events
//	GET  /journal/{id}       buffered journal replay as JSONL
//	GET  /metrics            obs registry (JSON, or ?format=prometheus)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"math/rand/v2"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/im"
	"contribmax/internal/magic"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/parser"
	"contribmax/internal/prof"
	"contribmax/internal/provenance"
	"contribmax/internal/solvecache"
	"contribmax/internal/wdgraph"
)

// SolveRequest is the JSON (and form) input for /api/solve.
type SolveRequest struct {
	// Program is probabilistic datalog source text.
	Program string `json:"program"`
	// Facts is fact-file source text.
	Facts string `json:"facts"`
	// Targets are output tuples or patterns (variables allowed; patterns
	// are expanded against the program's derived facts).
	Targets []string `json:"targets"`
	// K is the seed-set size (default 5).
	K int `json:"k"`
	// Algorithm: naive | magic | magics (default) | magicg | exact | dnf.
	// exact answers by lifted inference (no sampling error) when every
	// target's cone is hierarchical and falls back to magic sampling
	// otherwise (see SolveResponse.ExactFallback); dnf estimates by
	// Monte-Carlo possible-world sampling over derivation lineages.
	Algorithm string `json:"algorithm"`
	// RR is the number of RR sets (default 1000).
	RR int `json:"rr"`
	// MaxSeedsPerRelation is the diversification cap (0 = none).
	MaxSeedsPerRelation int `json:"maxSeedsPerRelation"`
	// Seed is the random seed (default 1).
	Seed uint64 `json:"seed"`
	// Prune drops rules provably outside the targets' dependency cone
	// before solving; results are byte-identical (see docs/ANALYSIS.md).
	Prune bool `json:"prune"`
	// NoPlan disables the greedy join planner and its plan cache for this
	// solve; results are byte-identical (see docs/PERFORMANCE.md). The
	// server-wide Config.NoPlan disables it for every request.
	NoPlan bool `json:"noplan"`
	// Profile attaches a runtime profiler to the solve and returns the
	// EXPLAIN ANALYZE artifact in SolveResponse.Profile (and, for
	// asynchronous runs, at GET /api/solve/{id}/profile). Profiling never
	// changes results (see docs/OBSERVABILITY.md).
	Profile bool `json:"profile"`
}

// SolveResponse is the JSON output of /api/solve.
type SolveResponse struct {
	Algorithm       string   `json:"algorithm"`
	Seeds           []string `json:"seeds"`
	SeedGains       []int    `json:"seedGains"`
	EstContribution float64  `json:"estContribution"`
	Targets         []string `json:"targets"`
	RRSets          int      `json:"rrSets"`
	AvgGraphSize    float64  `json:"avgGraphSize"`
	PeakGraphSize   int      `json:"peakGraphSize"`
	RulesTotal      int      `json:"rulesTotal"`
	RulesPruned     int      `json:"rulesPruned"`
	PlansBuilt      int64    `json:"plansBuilt,omitempty"`
	PlanCacheHits   int64    `json:"planCacheHits,omitempty"`
	// Cache counters report how this solve used the server's shared solve
	// cache: hits replay a memoized WD graph or RR collection, misses paid
	// the full build. All zero (and omitted) when caching is disabled.
	CacheGraphHits   int64 `json:"cacheGraphHits,omitempty"`
	CacheGraphMisses int64 `json:"cacheGraphMisses,omitempty"`
	CacheRRHits      int64 `json:"cacheRRHits,omitempty"`
	CacheRRMisses    int64 `json:"cacheRRMisses,omitempty"`
	// ExactFallback, for algorithm "exact" or "dnf", names why the request
	// was answered by magic sampling instead (non-hierarchical cone,
	// lineage budget). Empty when the tier answered or for the samplers.
	ExactFallback string  `json:"exactFallback,omitempty"`
	TotalMillis   float64 `json:"totalMillis"`
	// Diagnostics lists non-failing static-analysis findings for the
	// submitted program ("line:col: warning[CMnnn]: ..."). Failing
	// findings (errors, or warnings under Config.WarnAsError) reject the
	// request with a structured HTTP 400 body instead (see errorResponse).
	Diagnostics []string `json:"diagnostics,omitempty"`
	// RunID identifies the solve's journal when the solve was journaled
	// (asynchronous runs started via /api/solve/start). Empty for plain
	// synchronous solves.
	RunID string `json:"runId,omitempty"`
	// Profile is the solve's runtime profile (schema contribmax/profile/v1)
	// when SolveRequest.Profile was set; nil otherwise.
	Profile *prof.RuntimeProfile `json:"profile,omitempty"`
}

// ExplainRequest is the JSON input for /api/explain.
type ExplainRequest struct {
	Program string `json:"program"`
	Facts   string `json:"facts"`
	Target  string `json:"target"`
}

// ExplainResponse is the JSON output of /api/explain.
type ExplainResponse struct {
	Target      string  `json:"target"`
	Derivable   bool    `json:"derivable"`
	Probability float64 `json:"probability,omitempty"`
	Tree        string  `json:"tree,omitempty"`
}

// Config parameterizes the handler beyond its default stateless behavior.
type Config struct {
	// Obs, when non-nil, is threaded through every solve (engine, graph,
	// RR, and server.* metrics) and served as expvar-style JSON on
	// GET /metrics. Nil disables instrumentation and the endpoint.
	Obs *obs.Registry
	// SolveTimeout bounds each solve/explain request; a request past the
	// deadline is abandoned mid-phase and answered 503. 0 means no
	// server-imposed deadline (client disconnects still cancel).
	SolveTimeout time.Duration
	// WarnAsError makes warning-severity static-analysis findings reject
	// requests, matching cmrun/cmlint's -W error.
	WarnAsError bool
	// NoPlan disables the greedy join planner for every solve the server
	// runs, matching cmrun's -noplan escape hatch. Individual requests
	// can also opt out via SolveRequest.NoPlan.
	NoPlan bool
	// CacheBytes bounds the fingerprint-keyed solve cache shared by every
	// request (memoized WD graphs and finalized RR collections). 0 uses the
	// solvecache default (256 MiB); a negative value disables caching.
	CacheBytes int64
	// MaxConcurrentSolves bounds how many solves execute at once. Excess
	// requests queue (up to MaxQueueDepth, waiting at most QueueWait) and
	// beyond that are shed with 429 + Retry-After. 0 means unlimited.
	MaxConcurrentSolves int
	// MaxQueueDepth bounds how many solves may wait for a pool slot
	// (default 2 x MaxConcurrentSolves).
	MaxQueueDepth int
	// QueueWait bounds how long a queued solve waits for a slot before
	// being shed (default 10s). Also the Retry-After hint on 429s.
	QueueWait time.Duration
	// TenantQuota bounds concurrent solves per tenant, identified by the
	// X-Tenant request header ("default" when absent). Over-quota requests
	// are shed with 429. 0 disables per-tenant quotas.
	TenantQuota int
	// MaxRuns bounds the asynchronous run store (default 128); the
	// least-recently-accessed finished run is evicted when full.
	MaxRuns int
}

// New returns the HTTP handler with default configuration (no metrics, no
// timeout).
func New() http.Handler { return NewWith(Config{}) }

// NewWith returns the HTTP handler with cfg applied.
func NewWith(cfg Config) http.Handler {
	s := &server{
		cfg:  cfg,
		runs: newRunStore(cfg.MaxRuns, cfg.Obs),
		pool: newSolvePool(cfg),
	}
	if cfg.CacheBytes >= 0 {
		s.cache = solvecache.NewWith(cfg.CacheBytes, cfg.Obs)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", handleForm)
	mux.HandleFunc("POST /solve", s.handleSolveForm)
	mux.HandleFunc("POST /api/solve", s.handleSolveAPI)
	mux.HandleFunc("POST /api/solve/batch", s.handleSolveBatch)
	mux.HandleFunc("POST /api/explain", s.handleExplainAPI)
	mux.HandleFunc("POST /api/solve/start", s.handleSolveStart)
	mux.HandleFunc("GET /api/solve/{id}", s.handleSolveStatus)
	mux.HandleFunc("GET /api/solve/{id}/profile", s.handleSolveProfile)
	mux.HandleFunc("GET /solve/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /journal/{id}", s.handleJournal)
	// The metrics endpoint sits outside the instrumented wrapper so that
	// scrapes do not perturb the request counters they report.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /metrics", s.handleMetrics)
	outer.Handle("/", s.instrument(mux))
	return outer
}

type server struct {
	cfg   Config
	runs  *runStore
	cache *solvecache.Cache // nil when Config.CacheBytes < 0
	pool  *solvePool
}

// instrument wraps h with the server.* request metrics. With a nil
// registry the handler is returned unwrapped — zero overhead.
func (s *server) instrument(h http.Handler) http.Handler {
	reg := s.cfg.Obs
	if reg == nil {
		return h
	}
	requests := reg.Counter(obs.ServerRequests)
	reqErrors := reg.Counter(obs.ServerErrors)
	inflight := reg.Gauge(obs.ServerInflight)
	latency := reg.Histogram(obs.ServerLatencyNs)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		defer inflight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		latency.ObserveSince(start)
		if sw.code >= 400 {
			reqErrors.Inc()
		}
	})
}

// statusWriter records the response code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through the
// instrumented handler chain.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// requestCtx derives the context a solve runs under: the request's own
// context (canceled when the client goes away) plus the configured
// timeout.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.SolveTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.SolveTimeout)
	}
	return r.Context(), func() {}
}

// httpStatus maps a solve error to a response code: cancellation and
// deadline expiry are the server's condition (503), everything else is a
// problem with the submitted request (422).
func httpStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// analysisError carries the full diagnostic list when the static-analysis
// gate rejects a request, so handlers can answer with a structured body
// instead of flattened text.
type analysisError struct {
	diags []analysis.Diagnostic
	// failSeverity is the severity that caused the rejection (Error, or
	// Warning under Config.WarnAsError).
	failSeverity analysis.Severity
}

func (e *analysisError) Error() string {
	var lines []string
	for _, d := range e.diags {
		if d.Severity >= e.failSeverity {
			lines = append(lines, d.String())
		}
	}
	return "program rejected by static analysis:\n" + strings.Join(lines, "\n")
}

// diagnosticJSON is the wire shape of one diagnostic in error bodies,
// mirroring cmlint -json (1-based positions, zero line = unknown).
type diagnosticJSON struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// errorResponse is the JSON body of a structured request rejection.
type errorResponse struct {
	Error       string           `json:"error"`
	Diagnostics []diagnosticJSON `json:"diagnostics,omitempty"`
}

// writeSolveError answers a failed solve/explain. Load-shed refusals
// become 429 with a Retry-After hint; static-analysis rejections become
// HTTP 400 with the machine-readable diagnostic list (every finding,
// failing or not, so clients see the full report); everything else keeps
// the plain-text httpStatus mapping.
func writeSolveError(w http.ResponseWriter, err error) {
	var se *shedError
	if errors.As(err, &se) {
		w.Header().Set("Retry-After", strconv.Itoa(se.retrySeconds()))
		http.Error(w, se.Error(), http.StatusTooManyRequests)
		return
	}
	var ae *analysisError
	if !errors.As(err, &ae) {
		http.Error(w, err.Error(), httpStatus(err))
		return
	}
	body := errorResponse{Error: ae.Error()}
	for _, d := range ae.diags {
		body.Diagnostics = append(body.Diagnostics, diagnosticJSON{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Message:  d.Message,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(body)
}

// failSeverity is the severity at which analysis findings reject requests.
func (s *server) failSeverity() analysis.Severity {
	if s.cfg.WarnAsError {
		return analysis.Warning
	}
	return analysis.Error
}

// preflight parses and statically analyzes a solve request without running
// it, so asynchronous starts can reject bad programs synchronously with the
// same structured 400 the synchronous endpoint produces — instead of
// burning a run slot on a solve that errors instantly.
func (s *server) preflight(req SolveRequest) error {
	prog, err := parser.ParseProgramLoose(req.Program)
	if err != nil {
		return fmt.Errorf("program: %w", err)
	}
	database, err := loadFacts(req.Facts)
	if err != nil {
		return fmt.Errorf("facts: %w", err)
	}
	_, err = analyzeRequest(prog, database, req.Targets, s.failSeverity())
	return err
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	s.cfg.Obs.UpdateGoRuntime()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		s.cfg.Obs.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.cfg.Obs.WriteJSON(w)
}

// parsedRequest holds a solve request's program and facts parsed exactly
// once, plus the content hashes that identify them to the solve cache.
// Batch solving runs many parameter variations against one parsedRequest.
type parsedRequest struct {
	prog     *ast.Program
	database *db.Database
	// progID and factsID fingerprint the submitted source text, so
	// identical submissions — across requests and across time — resolve to
	// the same cache entries.
	progID  string
	factsID string
}

// parseRequest parses program and facts source text once.
func parseRequest(program, facts string) (*parsedRequest, error) {
	prog, err := parser.ParseProgramLoose(program)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	database, err := loadFacts(facts)
	if err != nil {
		return nil, fmt.Errorf("facts: %w", err)
	}
	return &parsedRequest{
		prog:     prog,
		database: database,
		progID:   solvecache.HashText(program),
		factsID:  solvecache.HashText(facts),
	}, nil
}

// solve runs one CM request. jr, when non-nil, receives the solve's
// structured event stream (asynchronous runs pass their run journal;
// synchronous endpoints pass nil).
func (s *server) solve(ctx context.Context, req SolveRequest, jr *journal.Journal) (*SolveResponse, error) {
	p, err := parseRequest(req.Program, req.Facts)
	if err != nil {
		return nil, err
	}
	return s.solveParsed(ctx, p, req, jr)
}

// solveParsed runs one CM request against an already-parsed program and
// database. The parse may be shared: batch solving calls this once per
// sweep point against one parsedRequest, so every point resolves to the
// same cache identity and the WD graph (and, for k-sweeps, the RR
// collection) is built once and replayed.
func (s *server) solveParsed(ctx context.Context, p *parsedRequest, req SolveRequest, jr *journal.Journal) (*SolveResponse, error) {
	if req.K <= 0 {
		req.K = 5
	}
	if req.RR <= 0 {
		req.RR = 1000
	}
	if req.Algorithm == "" {
		req.Algorithm = "magics"
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	warnings, err := analyzeRequest(p.prog, p.database, req.Targets, s.failSeverity())
	if err != nil {
		return nil, err
	}
	targets, err := expandTargets(ctx, p.prog, p.database, req.Targets)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no targets (patterns matched no derived facts?)")
	}

	in := cm.Input{Program: p.prog, DB: p.database, T2: targets, K: req.K}
	opts := cm.Options{
		Theta:               im.ThetaSpec{Explicit: req.RR},
		MaxSeedsPerRelation: req.MaxSeedsPerRelation,
		Rand:                rand.New(rand.NewPCG(req.Seed, req.Seed^0x5EED)),
		// The request was just analyzed against this schema and these
		// targets; skip the identical in-algorithm gate.
		SkipAnalysis: true,
		Prune:        req.Prune,
		Context:      ctx,
		Obs:          s.cfg.Obs,
		Journal:      jr,
		Cache:        s.cache,
		// The rng is fully determined by the request seed, so it is safe to
		// assert its identity to the cache: same (facts, program, seed)
		// means the same walk stream.
		CacheID: solvecache.Identity{
			Database: p.factsID,
			Program:  p.progID,
			Rand:     "seed:" + strconv.FormatUint(req.Seed, 10),
		},
	}
	if req.NoPlan || s.cfg.NoPlan {
		opts.Plan = cm.PlanOff
	}
	if req.Profile {
		opts.Profile = prof.New()
	}
	var res *cm.Result
	// The pprof label makes per-algorithm cost visible in CPU profiles
	// taken through /debug/pprof while solves are in flight.
	pprof.Do(ctx, pprof.Labels("cm_algorithm", req.Algorithm), func(ctx context.Context) {
		opts.Context = ctx
		switch req.Algorithm {
		case "naive":
			res, err = cm.NaiveCM(in, opts)
		case "magic":
			res, err = cm.MagicCM(in, opts)
		case "magics":
			res, err = cm.MagicSampledCM(in, opts)
		case "magicg":
			res, err = cm.MagicGroupedCM(in, opts)
		case "exact":
			res, err = cm.ExactCM(in, opts)
		case "dnf":
			res, err = cm.DNFCM(in, opts)
		default:
			err = fmt.Errorf("unknown algorithm %q", req.Algorithm)
		}
	})
	if err != nil {
		return nil, err
	}

	out := &SolveResponse{
		Algorithm:        res.Algorithm,
		SeedGains:        res.SeedGains,
		EstContribution:  res.EstContribution,
		RRSets:           res.Stats.NumRR,
		AvgGraphSize:     res.Stats.AvgGraphSize(),
		PeakGraphSize:    res.Stats.PeakResidentSize,
		RulesTotal:       res.Stats.RulesTotal,
		RulesPruned:      res.Stats.RulesPruned,
		PlansBuilt:       res.Stats.PlansBuilt,
		PlanCacheHits:    res.Stats.PlanCacheHits,
		CacheGraphHits:   res.Stats.CacheGraphHits,
		CacheGraphMisses: res.Stats.CacheGraphMisses,
		CacheRRHits:      res.Stats.CacheRRHits,
		CacheRRMisses:    res.Stats.CacheRRMisses,
		ExactFallback:    res.Stats.ExactFallback,
		TotalMillis:      float64(res.Stats.TotalTime) / float64(time.Millisecond),
		RunID:            jr.Run(),
		Profile:          opts.Profile.Report(),
	}
	for _, s := range res.Seeds {
		out.Seeds = append(out.Seeds, s.String())
	}
	for _, a := range targets {
		out.Targets = append(out.Targets, a.String())
	}
	out.Diagnostics = warnings
	return out, nil
}

// analyzeRequest runs the static analyzer over a submitted program against
// the submitted facts and target predicates. Findings at or above
// failSeverity reject the request with an *analysisError (rendered by
// writeSolveError as a structured 400); the rest come back as rendered
// strings for SolveResponse.Diagnostics.
func analyzeRequest(prog *ast.Program, database *db.Database, targetLines []string, failSeverity analysis.Severity) ([]string, error) {
	edb := map[string]int{}
	for _, name := range database.RelationNames() {
		if rel, ok := database.Lookup(name); ok {
			edb[name] = rel.Arity()
		}
	}
	var roots []string
	seen := map[string]bool{}
	for _, line := range targetLines {
		a, err := parser.ParseAtom(strings.TrimSpace(line))
		if err != nil {
			continue // reported by expandTargets with the right context
		}
		if !seen[a.Predicate] {
			seen[a.Predicate] = true
			roots = append(roots, a.Predicate)
		}
	}
	diags := analysis.Analyze(prog, analysis.Options{EDB: edb, Roots: roots})
	var warnings []string
	failing := false
	for _, d := range diags {
		if d.Severity >= failSeverity {
			failing = true
		} else {
			warnings = append(warnings, d.String())
		}
	}
	if failing {
		return nil, &analysisError{diags: diags, failSeverity: failSeverity}
	}
	return warnings, nil
}

func loadFacts(src string) (*db.Database, error) {
	facts, err := parser.ParseFacts(src)
	if err != nil {
		return nil, err
	}
	d := db.NewDatabase()
	for _, f := range facts {
		if _, _, _, err := d.InsertAtom(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// expandTargets parses target lines; non-ground patterns are expanded
// against the derived facts.
func expandTargets(ctx context.Context, prog *ast.Program, database *db.Database, lines []string) ([]ast.Atom, error) {
	var ground, patterns []ast.Atom
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		a, err := parser.ParseAtom(line)
		if err != nil {
			return nil, fmt.Errorf("target %q: %w", line, err)
		}
		if a.IsGround() {
			ground = append(ground, a)
		} else {
			patterns = append(patterns, a)
		}
	}
	if len(patterns) > 0 {
		scratch := database.CloneSchema()
		for _, pred := range prog.EDBs() {
			if rel, ok := database.Lookup(pred); ok {
				scratch.Attach(rel)
			}
		}
		eng, err := engine.New(prog, scratch)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Run(engine.Options{Context: ctx}); err != nil {
			return nil, err
		}
		for _, p := range patterns {
			matches, err := scratch.Match(p)
			if err != nil {
				return nil, fmt.Errorf("pattern %s: %w", p, err)
			}
			ground = append(ground, matches...)
		}
	}
	return ground, nil
}

// explain runs one explanation request.
func (s *server) explain(ctx context.Context, req ExplainRequest) (*ExplainResponse, error) {
	prog, err := parser.ParseProgramLoose(req.Program)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	database, err := loadFacts(req.Facts)
	if err != nil {
		return nil, fmt.Errorf("facts: %w", err)
	}
	if _, err := analyzeRequest(prog, database, []string{req.Target}, s.failSeverity()); err != nil {
		return nil, err
	}
	target, err := parser.ParseAtom(strings.TrimSpace(req.Target))
	if err != nil {
		return nil, fmt.Errorf("target: %w", err)
	}
	if !target.IsGround() {
		return nil, fmt.Errorf("target %s must be ground", target)
	}
	out := &ExplainResponse{Target: target.String()}

	tr, err := magic.Transform(prog, []ast.Atom{target})
	if err != nil {
		return nil, err
	}
	scratch := database.CloneSchema()
	for _, pred := range prog.EDBs() {
		if rel, ok := database.Lookup(pred); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(tr.Program, scratch)
	if err != nil {
		return nil, err
	}
	b := wdgraph.NewBuilder(tr.Projection())
	if _, err := eng.Run(engine.Options{Listener: b.Listener(), Context: ctx}); err != nil {
		return nil, err
	}
	g := b.Graph()
	tuple, err := database.InternAtom(target)
	if err != nil {
		return nil, err
	}
	root, ok := g.FactID(target.Predicate, tuple)
	if !ok {
		return out, nil // not derivable
	}
	tree, ok := provenance.BestDerivation(g, root)
	if !ok {
		return out, nil
	}
	out.Derivable = true
	out.Probability = tree.Prob
	out.Tree = tree.Render(database.Symbols())
	return out, nil
}

func (s *server) handleSolveAPI(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, err := s.pool.acquire(ctx, tenantOf(r.Header))
	if err != nil {
		writeSolveError(w, err)
		return
	}
	defer release()
	res, err := s.solve(ctx, req, nil)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func (s *server) handleExplainAPI(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, err := s.pool.acquire(ctx, tenantOf(r.Header))
	if err != nil {
		writeSolveError(w, err)
		return
	}
	defer release()
	res, err := s.explain(ctx, req)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func handleForm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	pageTmpl.Execute(w, pageData{Req: exampleRequest()})
}

func (s *server) handleSolveForm(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := SolveRequest{
		Program:   r.FormValue("program"),
		Facts:     r.FormValue("facts"),
		Targets:   strings.Split(r.FormValue("targets"), "\n"),
		Algorithm: r.FormValue("algorithm"),
	}
	fmt.Sscanf(r.FormValue("k"), "%d", &req.K)
	fmt.Sscanf(r.FormValue("rr"), "%d", &req.RR)
	fmt.Sscanf(r.FormValue("diverse"), "%d", &req.MaxSeedsPerRelation)
	fmt.Sscanf(r.FormValue("seed"), "%d", &req.Seed)

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	data := pageData{Req: req}
	if release, err := s.pool.acquire(ctx, tenantOf(r.Header)); err != nil {
		data.Error = err.Error()
	} else {
		res, err := s.solve(ctx, req, nil)
		release()
		if err != nil {
			data.Error = err.Error()
		} else {
			data.Res = res
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	pageTmpl.Execute(w, data)
}

type pageData struct {
	Req   SolveRequest
	Res   *SolveResponse
	Error string
}

// exampleRequest pre-fills the form with the paper's running example.
func exampleRequest() SolveRequest {
	return SolveRequest{
		Program: `1.0 r0: dealsWith(A, B) :- dealsWith0(A, B).
0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).`,
		Facts: `exports(france, wine).    exports(france, vinegar). exports(france, oil).
exports(cuba, tobacco).   exports(cuba, sugar).     exports(cuba, nickel).
exports(russia, gas).
imports(germany, wine).   imports(usa, vinegar).    imports(pakistan, oil).
imports(india, tobacco).  imports(denmark, sugar).  imports(iran, nickel).
imports(ukraine, gas).
dealsWith0(france, cuba).`,
		Targets:   []string{"dealsWith(usa, iran)", "dealsWith(russia, ukraine)"},
		K:         2,
		Algorithm: "magics",
		RR:        1000,
		Seed:      1,
	}
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>contribmax</title><style>
body { font-family: sans-serif; margin: 2em auto; max-width: 60em; }
textarea { width: 100%; font-family: monospace; }
label { display: block; margin-top: 0.6em; font-weight: bold; }
.row input, .row select { margin-right: 1.2em; }
.err { color: #b00; white-space: pre-wrap; }
.res { background: #f4f4f4; padding: 1em; margin-top: 1em; }
</style></head><body>
<h1>Contribution Maximization</h1>
<p>Which <i>k</i> input facts contribute the most to these output tuples?
Targets may be patterns (variables match derived facts).</p>
<form method="post" action="/solve">
<label>Probabilistic datalog program</label>
<textarea name="program" rows="7">{{.Req.Program}}</textarea>
<label>Facts</label>
<textarea name="facts" rows="9">{{.Req.Facts}}</textarea>
<label>Targets (one per line; patterns allowed, e.g. dealsWith(usa, Y))</label>
<textarea name="targets" rows="3">{{range .Req.Targets}}{{.}}
{{end}}</textarea>
<div class="row">
<label>Options</label>
k <input name="k" size="3" value="{{.Req.K}}">
algorithm <select name="algorithm">
  <option{{if eq .Req.Algorithm "magics"}} selected{{end}}>magics</option>
  <option{{if eq .Req.Algorithm "magic"}} selected{{end}}>magic</option>
  <option{{if eq .Req.Algorithm "magicg"}} selected{{end}}>magicg</option>
  <option{{if eq .Req.Algorithm "naive"}} selected{{end}}>naive</option>
  <option{{if eq .Req.Algorithm "exact"}} selected{{end}}>exact</option>
  <option{{if eq .Req.Algorithm "dnf"}} selected{{end}}>dnf</option>
</select>
RR sets <input name="rr" size="6" value="{{.Req.RR}}">
max/relation <input name="diverse" size="3" value="{{.Req.MaxSeedsPerRelation}}">
seed <input name="seed" size="6" value="{{.Req.Seed}}">
<button type="submit">Solve</button>
</div>
</form>
{{if .Error}}<div class="res err">{{.Error}}</div>{{end}}
{{if .Res}}<div class="res">
<b>{{.Res.Algorithm}}</b>: estimated contribution {{printf "%.3f" .Res.EstContribution}}
to {{len .Res.Targets}} targets ({{.Res.RRSets}} RR sets,
peak graph {{.Res.PeakGraphSize}}, {{printf "%.1f" .Res.TotalMillis}} ms)
<ol>{{range .Res.Seeds}}<li><code>{{.}}</code></li>{{end}}</ol>
</div>{{end}}
</body></html>`))

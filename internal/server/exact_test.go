package server_test

import (
	"encoding/json"
	"math"
	"testing"

	"contribmax/internal/server"
)

// A hierarchical two-layer program: non-recursive, self-join-free,
// nested existential variables — the exact tier must answer it without
// falling back.
const hierProgram = `0.5 r1: mid(X) :- src(X).
0.8 r2: out(X) :- mid(X).`

const hierFacts = `src(a). src(b).`

// TestSolveAPIExact drives algorithm "exact" and "dnf" over HTTP: the
// exact solve must answer in the lifted tier (no fallback) with the
// closed-form contribution, the DNF solve must land within sampling
// distance of it, and the recursive TC program must fall back with a
// stamped reason rather than fail.
func TestSolveAPIExact(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program:   hierProgram,
		Facts:     hierFacts,
		Targets:   []string{"out(a)", "out(b)"},
		K:         1,
		RR:        2000,
		Algorithm: "exact",
	}
	resp := postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var exact server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&exact); err != nil {
		t.Fatal(err)
	}
	if exact.Algorithm != "ExactCM" || exact.ExactFallback != "" {
		t.Fatalf("exact solve: algorithm=%s fallback=%q", exact.Algorithm, exact.ExactFallback)
	}
	// One seed covers one target's chain exactly: 0.5 * 0.8.
	if math.Abs(exact.EstContribution-0.4) > 1e-12 {
		t.Errorf("exact contribution = %.15f, want 0.4", exact.EstContribution)
	}

	req.Algorithm = "dnf"
	resp = postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var dnf server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&dnf); err != nil {
		t.Fatal(err)
	}
	if dnf.Algorithm != "DNFCM" || dnf.ExactFallback != "" {
		t.Fatalf("dnf solve: algorithm=%s fallback=%q", dnf.Algorithm, dnf.ExactFallback)
	}
	// 6σ over θ=2000 Bernoulli samples of a {0,1} indicator.
	if math.Abs(dnf.EstContribution-0.4) > 6*0.5/math.Sqrt(2000) {
		t.Errorf("dnf contribution = %.4f, want ~0.4", dnf.EstContribution)
	}

	// Recursive cone: the exact tier refuses and reroutes to MagicCM.
	fallback := server.SolveRequest{
		Program:   tcProgram,
		Facts:     tcFacts,
		Targets:   []string{"tc(a, c)"},
		K:         1,
		RR:        500,
		Algorithm: "exact",
	}
	resp = postSolve(t, ts.URL, fallback)
	defer resp.Body.Close()
	var fb server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	if fb.Algorithm != "MagicCM" || fb.ExactFallback == "" {
		t.Errorf("fallback solve: algorithm=%s fallback=%q, want MagicCM with a reason",
			fb.Algorithm, fb.ExactFallback)
	}
	if len(fb.Seeds) != 1 {
		t.Errorf("fallback seeds = %v", fb.Seeds)
	}
}

package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"contribmax/internal/obs"
	"contribmax/internal/server"
)

// waitGauge polls a registry gauge until it reaches want — how the tests
// observe "a solve now holds a pool slot" without racing the handlers.
func waitGauge(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Gauge(name).Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s = %d, want %d", name, reg.Gauge(name).Value(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowSolve fires a synchronous solve that cannot finish on its own
// (per-tuple Magic with a huge θ) and returns a cancel that drops the
// client connection plus a done channel that closes when the request
// goroutine exits. The optional tenant goes out as the X-Tenant header.
func slowSolve(t *testing.T, ts *httptest.Server, tenant string) (cancel func(), done chan struct{}) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	body, err := json.Marshal(server.SolveRequest{
		Program:   tcProgram,
		Facts:     tcFacts,
		Targets:   []string{"tc(a, c)"},
		K:         1,
		RR:        2_000_000,
		Algorithm: "magic",
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	return stop, done
}

// TestSolveAPIWarmCache sends the same request twice and checks the second
// is served from the solve cache — the response reports the RR hit, the
// registry counts it, and the answer is identical to the cold one.
func TestSolveAPIWarmCache(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	req := server.SolveRequest{
		Program: tcProgram,
		Facts:   tcFacts,
		Targets: []string{"tc(a, c)"},
		K:       1,
		RR:      400,
	}
	solve := func() server.SolveResponse {
		t.Helper()
		resp := postSolve(t, ts.URL, req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d (body %q)", resp.StatusCode, body)
		}
		var out server.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cold := solve()
	if cold.CacheRRMisses != 1 || cold.CacheRRHits != 0 {
		t.Fatalf("cold solve: rr misses=%d hits=%d, want 1/0", cold.CacheRRMisses, cold.CacheRRHits)
	}
	warm := solve()
	if warm.CacheRRHits != 1 || warm.CacheRRMisses != 0 {
		t.Fatalf("warm solve: rr hits=%d misses=%d, want 1/0", warm.CacheRRHits, warm.CacheRRMisses)
	}
	if !equalSolves(cold, warm) {
		t.Errorf("warm response diverged:\ncold %+v\nwarm %+v", cold, warm)
	}
	if got := reg.Counter(obs.CacheRRHits).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CacheRRHits, got)
	}
}

// equalSolves compares the deterministic part of two solve responses.
func equalSolves(a, b server.SolveResponse) bool {
	if a.Algorithm != b.Algorithm || a.EstContribution != b.EstContribution ||
		a.RRSets != b.RRSets || len(a.Seeds) != len(b.Seeds) {
		return false
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] || a.SeedGains[i] != b.SeedGains[i] {
			return false
		}
	}
	return true
}

// TestSolveAPICacheDisabled checks the escape hatch: with CacheBytes < 0
// repeated identical solves never touch a cache.
func TestSolveAPICacheDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg, CacheBytes: -1}))
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp := postSolve(t, ts.URL, server.SolveRequest{
			Program: tcProgram, Facts: tcFacts, Targets: []string{"tc(a, c)"}, K: 1, RR: 300,
		})
		var out server.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.CacheRRHits != 0 || out.CacheRRMisses != 0 {
			t.Fatalf("solve %d reports cache traffic with caching disabled: %+v", i, out)
		}
	}
	if got := reg.Counter(obs.CacheRRMisses).Value(); got != 0 {
		t.Errorf("%s = %d with caching disabled", obs.CacheRRMisses, got)
	}
}

// TestBatchSolveKSweep drives the headline batch scenario: one program and
// fact set, a sweep over k. The first variation generates the RR
// collection, every later one replays it (the fixed-θ cache key excludes
// K), and each answer matches the equivalent standalone solve.
func TestBatchSolveKSweep(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	ks := []int{1, 2, 3}
	batch := server.BatchSolveRequest{Program: tcProgram, Facts: tcFacts}
	for _, k := range ks {
		batch.Solves = append(batch.Solves, server.SolveRequest{
			Targets: []string{"tc(a, c)"}, K: k, RR: 400,
		})
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(ts.URL+"/api/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status = %d (body %q)", resp.StatusCode, raw)
	}
	var out server.BatchSolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(ks) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(ks))
	}
	if out.CacheRRMisses != 1 || out.CacheRRHits != int64(len(ks)-1) {
		t.Fatalf("batch cache: rr misses=%d hits=%d, want 1/%d",
			out.CacheRRMisses, out.CacheRRHits, len(ks)-1)
	}
	for i, k := range ks {
		item := out.Results[i]
		if item.Error != "" || item.Response == nil {
			t.Fatalf("solves[%d]: error %q", i, item.Error)
		}
		// Each sweep point equals the standalone solve with the same k.
		resp := postSolve(t, ts.URL, server.SolveRequest{
			Program: tcProgram, Facts: tcFacts, Targets: []string{"tc(a, c)"}, K: k, RR: 400,
		})
		var single server.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !equalSolves(*item.Response, single) {
			t.Errorf("solves[%d] diverged from standalone solve:\nbatch %+v\nsolo  %+v",
				i, item.Response, single)
		}
	}
}

// TestBatchSolveValidation checks the envelope rules: bounded size,
// non-empty, and per-item program/facts rejected.
func TestBatchSolveValidation(t *testing.T) {
	ts := newServer(t)
	post := func(req server.BatchSolveRequest) *http.Response {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/api/solve/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := map[string]server.BatchSolveRequest{
		"empty": {Program: tcProgram, Facts: tcFacts},
		"item program": {Program: tcProgram, Facts: tcFacts, Solves: []server.SolveRequest{
			{Program: tcProgram, Targets: []string{"tc(a, c)"}},
		}},
		"oversized": {Program: tcProgram, Facts: tcFacts,
			Solves: make([]server.SolveRequest, 65)},
	}
	for name, req := range cases {
		resp := post(req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSolvePoolSaturation429 fills the pool (one slot) and the queue (one
// waiter) and checks the next solve is shed immediately: 429, a
// Retry-After hint, and the shed counter.
func TestSolvePoolSaturation429(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{
		Obs:                 reg,
		MaxConcurrentSolves: 1,
		MaxQueueDepth:       1,
		QueueWait:           5 * time.Second,
		SolveTimeout:        20 * time.Second,
	}))
	defer ts.Close()

	cancelA, doneA := slowSolve(t, ts, "")
	waitGauge(t, reg, obs.ServerPoolBusy, 1)
	cancelB, doneB := slowSolve(t, ts, "")
	waitGauge(t, reg, obs.ServerQueueDepth, 1)

	resp := postSolve(t, ts.URL, server.SolveRequest{
		Program: tcProgram, Facts: tcFacts, Targets: []string{"tc(a, c)"}, K: 1, RR: 300,
	})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (body %q), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("Retry-After = %q, want %q", got, "5")
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("shed body = %q", body)
	}
	if got := reg.Counter(obs.ServerShed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.ServerShed, got)
	}

	cancelB()
	cancelA()
	<-doneA
	<-doneB
}

// TestTenantQuota429 checks per-tenant admission: with a quota of one, a
// tenant's second concurrent solve is refused while other tenants proceed.
func TestTenantQuota429(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{
		Obs:          reg,
		TenantQuota:  1,
		QueueWait:    2 * time.Second,
		SolveTimeout: 20 * time.Second,
	}))
	defer ts.Close()

	cancelA, doneA := slowSolve(t, ts, "alice")
	waitGauge(t, reg, "server.tenant_inflight.alice", 1)

	send := func(tenant string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(server.SolveRequest{
			Program: tcProgram, Facts: tcFacts, Targets: []string{"tc(a, c)"}, K: 1, RR: 300,
		})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := send("alice")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over-quota response missing Retry-After")
	}
	if got := reg.Counter(obs.ServerTenantDenied).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.ServerTenantDenied, got)
	}

	resp = send("bob")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d, want 200", resp.StatusCode)
	}

	cancelA()
	<-doneA
}

// TestConcurrentIdenticalSolvesSingleComputation hits the synchronous
// endpoint with identical requests in parallel: the cache's single-flight
// layer must run one RR generation regardless of arrival order.
func TestConcurrentIdenticalSolvesSingleComputation(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	const clients = 6
	var wg sync.WaitGroup
	outs := make([]server.SolveResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postSolve(t, ts.URL, server.SolveRequest{
				Program: tcProgram, Facts: tcFacts, Targets: []string{"tc(a, c)"}, K: 1, RR: 400,
			})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&outs[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Counter(obs.CacheRRMisses).Value(); got != 1 {
		t.Fatalf("%d concurrent identical solves ran %d generations, want 1", clients, got)
	}
	for i := 1; i < clients; i++ {
		if !equalSolves(outs[0], outs[i]) {
			t.Errorf("client %d answer diverged: %+v vs %+v", i, outs[i], outs[0])
		}
	}
}

// TestRunStoreEviction fills a two-run store and checks LRU eviction only
// ever removes finished runs: the running solve survives two eviction
// rounds while the finished ones around it are dropped and counted.
func TestRunStoreEviction(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{
		Obs:          reg,
		MaxRuns:      2,
		SolveTimeout: 1500 * time.Millisecond,
	}))
	defer ts.Close()

	fast := func() string {
		st := startRun(t, ts, []string{"tc(a, c)"}, 300, "magics")
		waitForRun(t, ts, st["run"])
		return st["run"]
	}
	a := fast()
	slow := startRun(t, ts, []string{"tc(a, c)"}, 2_000_000, "magic")["run"]
	c := fast() // store full: evicts a (finished), keeps slow (in flight)
	if got := reg.Counter(obs.ServerRunsEvicted).Value(); got != 1 {
		t.Fatalf("%s = %d after first eviction, want 1", obs.ServerRunsEvicted, got)
	}
	if resp, err := http.Get(ts.URL + "/api/solve/" + a); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted run %s still resolves (status %d)", a, resp.StatusCode)
		}
	}
	d := fast() // evicts c; the in-flight run is older but must survive
	if got := reg.Counter(obs.ServerRunsEvicted).Value(); got != 2 {
		t.Fatalf("%s = %d after second eviction, want 2", obs.ServerRunsEvicted, got)
	}
	if resp, err := http.Get(ts.URL + "/api/solve/" + c); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted run %s still resolves (status %d)", c, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/solve/" + slow)
	if err != nil {
		t.Fatal(err)
	}
	var st runStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Run != slow {
		t.Fatalf("in-flight run evicted: got %+v", st)
	}
	_ = d
	waitForRun(t, ts, slow) // let the slow run hit its timeout before Close
}

// TestRunStoreFullOfInflight checks the refusal path: a store whose every
// run is still solving answers 503 instead of evicting live state.
func TestRunStoreFullOfInflight(t *testing.T) {
	ts := httptest.NewServer(server.NewWith(server.Config{
		MaxRuns:      1,
		SolveTimeout: 1500 * time.Millisecond,
	}))
	defer ts.Close()

	slow := startRun(t, ts, []string{"tc(a, c)"}, 2_000_000, "magic")["run"]
	resp, err := http.Post(ts.URL+"/api/solve/start", "application/json",
		solveBody(t, []string{"tc(a, c)"}, 300, "magics"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %q), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "in flight") {
		t.Errorf("refusal body = %q", body)
	}
	waitForRun(t, ts, slow)
}

// TestSSEQueuedRunDisconnectNoGoroutineLeak extends the SSE leak check to
// queued runs: subscribers attach to a run still waiting for a pool slot
// (its journal has no events yet), disconnect, and everything must drain
// once the runs wind down.
func TestSSEQueuedRunDisconnectNoGoroutineLeak(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{
		Obs:                 reg,
		MaxConcurrentSolves: 1,
		MaxQueueDepth:       4,
		QueueWait:           10 * time.Second,
		SolveTimeout:        1500 * time.Millisecond,
	}))
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	running := startRun(t, ts, []string{"tc(a, c)"}, 2_000_000, "magic")["run"]
	waitGauge(t, reg, obs.ServerPoolBusy, 1)
	queued := startRun(t, ts, []string{"tc(a, c)"}, 2_000_000, "magic")["run"]
	waitGauge(t, reg, obs.ServerQueueDepth, 1)

	const clients = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/solve/"+queued+"/events", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			// The queued run has emitted nothing: drop the stream while the
			// handler blocks on the live channel.
			time.Sleep(100 * time.Millisecond)
			cancel()
			resp.Body.Close()
		}()
	}
	wg.Wait()

	// Both runs terminate via SolveTimeout (the queued one acquires the
	// freed slot with its deadline nearly spent, or is cut off in acquire).
	waitForRun(t, ts, running)
	waitForRun(t, ts, queued)

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d + 3\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"contribmax/internal/server"
)

// warnProgram lints clean except for a warning-severity finding (the
// zero-probability rule), so it solves fine unless warnings are fatal.
const warnProgram = tcProgram + "\n0.0 dead: tc(X, Y) :- edge(Y, X)."

// errorBody mirrors the server's structured rejection shape.
type errorBody struct {
	Error       string `json:"error"`
	Diagnostics []struct {
		Severity string `json:"severity"`
		Code     string `json:"code"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	} `json:"diagnostics"`
}

func postSolve(t *testing.T, url string, req server.SolveRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/api/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSolveAPIStructured400 checks that an analysis rejection carries the
// machine-readable diagnostic list (code, position, message) in a 400 body
// rather than flattened text.
func TestSolveAPIStructured400(t *testing.T) {
	ts := newServer(t)
	resp := postSolve(t, ts.URL, server.SolveRequest{
		// Head variable Y never occurs in the body: a safety error.
		Program: "r1: p(X, Y) :- q(X).",
		Facts:   "q(a).",
		Targets: []string{"p(a, b)"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("400 body is not JSON: %v", err)
	}
	if body.Error == "" || len(body.Diagnostics) == 0 {
		t.Fatalf("body = %+v, want error text and diagnostics", body)
	}
	found := false
	for _, d := range body.Diagnostics {
		if d.Severity == "error" && d.Code != "" && d.Line > 0 && d.Message != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no positioned error diagnostic in %+v", body.Diagnostics)
	}
}

// TestSolveAPIWarnAsError checks Config.WarnAsError parity with cmrun -W
// error: the same program solves by default but is rejected when warnings
// are fatal.
func TestSolveAPIWarnAsError(t *testing.T) {
	req := server.SolveRequest{
		Program: warnProgram,
		Facts:   tcFacts,
		Targets: []string{"tc(a, c)"},
		K:       1,
		RR:      200,
	}

	lenient := newServer(t)
	resp := postSolve(t, lenient.URL, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lenient server: status = %d, want 200", resp.StatusCode)
	}
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Diagnostics) == 0 {
		t.Errorf("lenient server: warning not surfaced in Diagnostics")
	}

	strict := httptest.NewServer(server.NewWith(server.Config{WarnAsError: true}))
	t.Cleanup(strict.Close)
	resp = postSolve(t, strict.URL, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict server: status = %d, want 400", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	warned := false
	for _, d := range body.Diagnostics {
		if d.Severity == "warning" {
			warned = true
		}
	}
	if !warned {
		t.Errorf("strict server: no warning diagnostic in %+v", body.Diagnostics)
	}
}

// TestSolveAPIPrune checks that SolveRequest.Prune reports pruning stats
// and leaves the result identical to the unpruned solve.
func TestSolveAPIPrune(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program: tcProgram + "\n1.0 d1: other(X) :- edge(X, X).",
		Facts:   tcFacts,
		Targets: []string{"tc(a, c)"},
		K:       1,
		RR:      200,
	}
	resp := postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var plain server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if plain.RulesTotal != 3 || plain.RulesPruned != 0 {
		t.Errorf("unpruned: rules = %d/%d, want 3/0", plain.RulesPruned, plain.RulesTotal)
	}

	req.Prune = true
	resp = postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var pruned server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&pruned); err != nil {
		t.Fatal(err)
	}
	if pruned.RulesTotal != 3 || pruned.RulesPruned != 1 {
		t.Errorf("pruned: rules = %d/%d, want 1/3", pruned.RulesPruned, pruned.RulesTotal)
	}
	if len(pruned.Seeds) != len(plain.Seeds) || pruned.Seeds[0] != plain.Seeds[0] ||
		pruned.EstContribution != plain.EstContribution {
		t.Errorf("pruned solve diverged: %+v vs %+v", pruned, plain)
	}
}

// TestAsyncSolveStartRejectsBadProgram checks the asynchronous endpoint
// applies the same gate synchronously: a structured 400, not a 202 whose
// run errors immediately.
func TestAsyncSolveStartRejectsBadProgram(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program: "r1: p(X, Y) :- q(X).",
		Facts:   "q(a).",
		Targets: []string{"p(a, b)"},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/solve/start", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("400 body is not JSON: %v", err)
	}
	if len(eb.Diagnostics) == 0 {
		t.Errorf("body lacks diagnostics: %+v", eb)
	}
}

package server

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"contribmax/internal/obs"
)

// solvePool bounds how many solves execute concurrently and how many may
// wait for a slot, with per-tenant concurrency quotas on top. Saturation
// is answered by load-shedding (shedError → 429 + Retry-After) instead of
// unbounded queueing: a solve can hold a core for seconds, so an unbounded
// queue would turn overload into timeout cascades.
type solvePool struct {
	// slots is a counting semaphore of MaxConcurrentSolves capacity; nil
	// means unlimited.
	slots     chan struct{}
	maxQueue  int
	queueWait time.Duration
	quota     int

	mu      sync.Mutex
	queued  int
	tenants map[string]int
	// buckets pins each active tenant's gauge name for the lifetime of its
	// in-flight solves, so enter and leave always move the same gauge even
	// as the tenant count crosses the cardinality cap.
	buckets map[string]string

	reg *obs.Registry
}

// defaultQueueWait bounds how long a solve waits for a slot when the
// config leaves QueueWait zero.
const defaultQueueWait = 10 * time.Second

// tenantGaugeCap bounds the per-tenant gauge cardinality in /metrics;
// tenants beyond the cap aggregate under "other". Quotas are still
// enforced per real tenant.
const tenantGaugeCap = 32

func newSolvePool(cfg Config) *solvePool {
	p := &solvePool{
		maxQueue:  cfg.MaxQueueDepth,
		queueWait: cfg.QueueWait,
		quota:     cfg.TenantQuota,
		tenants:   make(map[string]int),
		buckets:   make(map[string]string),
		reg:       cfg.Obs,
	}
	if cfg.MaxConcurrentSolves > 0 {
		p.slots = make(chan struct{}, cfg.MaxConcurrentSolves)
		if p.maxQueue <= 0 {
			p.maxQueue = 2 * cfg.MaxConcurrentSolves
		}
	}
	if p.queueWait <= 0 {
		p.queueWait = defaultQueueWait
	}
	return p
}

// shedError reports a refused solve: the pool (or the caller's tenant
// quota) is saturated. Handlers answer 429 with the Retry-After hint.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.reason }

// retrySeconds renders the Retry-After header value (whole seconds, >= 1).
func (e *shedError) retrySeconds() int {
	return int(math.Max(1, math.Ceil(e.retryAfter.Seconds())))
}

// acquire claims a slot for tenant, waiting up to the queue-wait budget
// (or ctx). The returned release must be called exactly once. A nil pool
// or an unbounded one without quotas returns immediately.
func (p *solvePool) acquire(ctx context.Context, tenant string) (release func(), err error) {
	if p == nil {
		return func() {}, nil
	}
	if err := p.enterTenant(tenant); err != nil {
		return nil, err
	}
	if p.slots == nil {
		return func() { p.leaveTenant(tenant) }, nil
	}
	select {
	case p.slots <- struct{}{}: // free slot, no queueing
		p.gauge(obs.ServerPoolBusy, len(p.slots))
		return p.releaseFunc(tenant), nil
	default:
	}
	if !p.enqueue() {
		p.leaveTenant(tenant)
		p.count(obs.ServerShed)
		return nil, &shedError{
			reason:     fmt.Sprintf("solve pool saturated: %d queued", p.maxQueue),
			retryAfter: p.queueWait,
		}
	}
	defer p.dequeue()
	timer := time.NewTimer(p.queueWait)
	defer timer.Stop()
	select {
	case p.slots <- struct{}{}:
		p.gauge(obs.ServerPoolBusy, len(p.slots))
		return p.releaseFunc(tenant), nil
	case <-timer.C:
		p.leaveTenant(tenant)
		p.count(obs.ServerShed)
		return nil, &shedError{
			reason:     fmt.Sprintf("solve pool saturated: no slot within %s", p.queueWait),
			retryAfter: p.queueWait,
		}
	case <-ctx.Done():
		p.leaveTenant(tenant)
		return nil, ctx.Err()
	}
}

func (p *solvePool) releaseFunc(tenant string) func() {
	return func() {
		<-p.slots
		p.gauge(obs.ServerPoolBusy, len(p.slots))
		p.leaveTenant(tenant)
	}
}

// enterTenant enforces the per-tenant concurrency quota.
func (p *solvePool) enterTenant(tenant string) error {
	if p.quota <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tenants[tenant] >= p.quota {
		p.count(obs.ServerTenantDenied)
		return &shedError{
			reason:     fmt.Sprintf("tenant %q over quota: %d solves in flight", tenant, p.quota),
			retryAfter: p.queueWait,
		}
	}
	p.tenants[tenant]++
	if _, ok := p.buckets[tenant]; !ok {
		name := "server.tenant_inflight." + sanitizeMetricPart(tenant)
		if len(p.tenants) > tenantGaugeCap {
			name = "server.tenant_inflight.other"
		}
		p.buckets[tenant] = name
	}
	p.tenantGauge(tenant, 1)
	return nil
}

func (p *solvePool) leaveTenant(tenant string) {
	if p.quota <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tenantGauge(tenant, -1)
	if p.tenants[tenant] <= 1 {
		delete(p.tenants, tenant)
		delete(p.buckets, tenant)
	} else {
		p.tenants[tenant]--
	}
}

// enqueue registers a waiter; false when the queue is at its depth bound.
func (p *solvePool) enqueue() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.maxQueue > 0 && p.queued >= p.maxQueue {
		return false
	}
	p.queued++
	p.gauge(obs.ServerQueueDepth, p.queued)
	return true
}

func (p *solvePool) dequeue() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queued--
	p.gauge(obs.ServerQueueDepth, p.queued)
}

func (p *solvePool) count(name string) {
	if p.reg != nil {
		p.reg.Counter(name).Inc()
	}
}

func (p *solvePool) gauge(name string, v int) {
	if p.reg != nil {
		p.reg.Gauge(name).Set(int64(v))
	}
}

// tenantGauge mirrors a tenant's in-flight count into /metrics under its
// pinned bucket name (cardinality capped at tenantGaugeCap distinct
// tenants; the overflow aggregates as "other"). Callers hold p.mu.
func (p *solvePool) tenantGauge(tenant string, delta int64) {
	if p.reg == nil {
		return
	}
	if name, ok := p.buckets[tenant]; ok {
		p.reg.Gauge(name).Add(delta)
	}
}

// sanitizeMetricPart maps a tenant name onto the metric-name alphabet.
func sanitizeMetricPart(s string) string {
	if s == "" {
		return "default"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// tenantOf extracts the request's tenant identity (X-Tenant header;
// "default" when absent). Quotas and the per-tenant gauges key on it.
func tenantOf(h interface{ Get(string) string }) string {
	if t := strings.TrimSpace(h.Get("X-Tenant")); t != "" {
		return t
	}
	return "default"
}

package server_test

import (
	"encoding/json"
	"testing"

	"contribmax/internal/server"
)

// TestSolveAPINoPlan checks that SolveRequest.NoPlan disables the join
// planner (no plan counters reported) while leaving the solve result
// byte-identical — the planner's core equivalence promise, observed over
// the HTTP surface.
func TestSolveAPINoPlan(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program:   tcProgram,
		Facts:     tcFacts,
		Targets:   []string{"tc(a, c)"},
		K:         1,
		RR:        200,
		Algorithm: "magic",
	}
	resp := postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var planned server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	if planned.PlansBuilt == 0 || planned.PlanCacheHits == 0 {
		t.Errorf("planned solve reported no planner activity: built=%d hits=%d",
			planned.PlansBuilt, planned.PlanCacheHits)
	}

	req.NoPlan = true
	resp = postSolve(t, ts.URL, req)
	defer resp.Body.Close()
	var unplanned server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&unplanned); err != nil {
		t.Fatal(err)
	}
	if unplanned.PlansBuilt != 0 || unplanned.PlanCacheHits != 0 {
		t.Errorf("noplan solve reported planner activity: built=%d hits=%d",
			unplanned.PlansBuilt, unplanned.PlanCacheHits)
	}
	if len(unplanned.Seeds) != len(planned.Seeds) || unplanned.Seeds[0] != planned.Seeds[0] ||
		unplanned.EstContribution != planned.EstContribution {
		t.Errorf("noplan solve diverged: %+v vs %+v", unplanned, planned)
	}
}

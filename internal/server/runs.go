package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
)

// defaultMaxRuns bounds the run store when Config.MaxRuns is zero. When
// full, the least-recently-accessed finished run is evicted to make room;
// if every run is still in flight the start request is refused (503)
// rather than growing without bound.
const defaultMaxRuns = 128

// run is one journaled asynchronous solve tracked by the server.
type run struct {
	id      string
	journal *journal.Journal
	started time.Time

	mu       sync.Mutex
	finished time.Time
	resp     *SolveResponse
	err      error
	done     chan struct{} // closed when the solve returns
}

// state reports the run's lifecycle phase: running, done, or error.
func (r *run) state() string {
	select {
	case <-r.done:
	default:
		return "running"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return "error"
	}
	return "done"
}

// runStore is the server's bounded registry of asynchronous runs,
// evicted in least-recently-accessed order: a run whose status, events,
// or journal a client still polls stays resident over one nobody reads.
type runStore struct {
	mu   sync.Mutex
	max  int
	runs map[string]*run
	// order holds run IDs least-recently-accessed first for eviction.
	order   []string
	evicted *obs.Counter
}

func newRunStore(max int, reg *obs.Registry) *runStore {
	if max <= 0 {
		max = defaultMaxRuns
	}
	return &runStore{
		max:     max,
		runs:    make(map[string]*run),
		evicted: reg.Counter(obs.ServerRunsEvicted),
	}
}

// add registers a new run, evicting the least-recently-accessed finished
// run when full. In-flight runs are never evicted — their journals are
// live and their goroutines still report into them; when the store is
// full of in-flight runs the start request is refused instead.
func (st *runStore) add(r *run) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.runs) >= st.max {
		evicted := false
		for i, id := range st.order {
			old := st.runs[id]
			select {
			case <-old.done:
				delete(st.runs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				st.evicted.Inc()
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return fmt.Errorf("run store full: %d solves in flight", len(st.runs))
		}
	}
	st.runs[r.id] = r
	st.order = append(st.order, r.id)
	return nil
}

func (st *runStore) get(id string) (*run, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.runs[id]
	if ok {
		st.touch(id)
	}
	return r, ok
}

// touch moves id to the most-recently-accessed end. Callers hold st.mu.
func (st *runStore) touch(id string) {
	for i, v := range st.order {
		if v == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			st.order = append(st.order, id)
			return
		}
	}
}

// startResponse is the JSON shape of POST /api/solve/start.
type startResponse struct {
	Run string `json:"run"`
	// Events and Journal are the relative URLs of the live SSE stream and
	// the JSONL replay for this run.
	Events  string `json:"events"`
	Journal string `json:"journal"`
	Status  string `json:"status"`
}

// statusResponse is the JSON shape of GET /api/solve/{id}.
type statusResponse struct {
	Run           string         `json:"run"`
	State         string         `json:"state"` // running | done | error
	ElapsedMillis float64        `json:"elapsedMillis"`
	Response      *SolveResponse `json:"response,omitempty"`
	Error         string         `json:"error,omitempty"`
}

// handleSolveStart launches a journaled solve in the background and
// returns 202 with the run ID immediately. The solve runs under its own
// context (the start request's lifetime is irrelevant to it), bounded by
// the configured SolveTimeout.
func (s *server) handleSolveStart(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.preflight(req); err != nil {
		writeSolveError(w, err)
		return
	}
	id := journal.NewRunID()
	ru := &run{
		id: id,
		// The registry hookup surfaces the journal's data-loss modes
		// (journal.dropped / journal.overwritten) on /metrics.
		journal: journal.New(id, journal.Options{Obs: s.cfg.Obs}),
		started: time.Now(),
		done:    make(chan struct{}),
	}
	if err := s.runs.add(ru); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	tenant := tenantOf(r.Header)
	go func() {
		// Detached from the request context: the start call has already
		// returned by the time the solve makes progress.
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if s.cfg.SolveTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		}
		defer cancel()
		// Async runs go through the same solve pool as synchronous ones —
		// the 202 means accepted, not scheduled. A shed surfaces as the
		// run's error.
		var resp *SolveResponse
		release, err := s.pool.acquire(ctx, tenant)
		if err == nil {
			resp, err = s.solve(ctx, req, ru.journal)
			release()
		}
		ru.mu.Lock()
		ru.resp, ru.err = resp, err
		ru.finished = time.Now()
		ru.mu.Unlock()
		close(ru.done)
		// Closing the journal ends every live SSE stream of this run.
		ru.journal.Close()
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(startResponse{
		Run:     id,
		Events:  "/solve/" + id + "/events",
		Journal: "/journal/" + id,
		Status:  "/api/solve/" + id,
	})
}

// handleSolveStatus reports an asynchronous run's state and, once done,
// its result.
func (s *server) handleSolveStatus(w http.ResponseWriter, r *http.Request) {
	ru, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	out := statusResponse{Run: ru.id, State: ru.state()}
	ru.mu.Lock()
	if out.State == "running" {
		out.ElapsedMillis = float64(time.Since(ru.started)) / float64(time.Millisecond)
	} else {
		out.ElapsedMillis = float64(ru.finished.Sub(ru.started)) / float64(time.Millisecond)
		out.Response = ru.resp
		if ru.err != nil {
			out.Error = ru.err.Error()
		}
	}
	ru.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleSolveProfile serves a finished run's runtime profile as the full
// JSON artifact (schema contribmax/profile/v1). 404 for unknown runs and
// for runs started without SolveRequest.Profile; 409 while still running.
func (s *server) handleSolveProfile(w http.ResponseWriter, r *http.Request) {
	ru, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	if ru.state() == "running" {
		http.Error(w, "run still in progress", http.StatusConflict)
		return
	}
	ru.mu.Lock()
	resp := ru.resp
	ru.mu.Unlock()
	if resp == nil || resp.Profile == nil {
		http.Error(w, "run was not profiled (set \"profile\": true on start)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	resp.Profile.WriteJSON(w)
}

// handleEvents streams a run's journal as Server-Sent Events: the buffered
// history first, then live events as the solve emits them. The stream ends
// when the solve finishes (the journal closes) or the client disconnects;
// a consumer that cannot keep up is dropped rather than allowed to slow
// the solver.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := ru.journal.Subscribe(256)
	defer cancel()
	writeEvent := func(ev journal.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		return true
	}
	for _, ev := range replay {
		if !writeEvent(ev) {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-live:
			if !open {
				// Solve finished (or this consumer fell behind): end the
				// stream with a terminal comment so clients can tell a
				// completed stream from a dropped connection.
				fmt.Fprintf(w, ": stream closed state=%s\n\n", ru.state())
				fl.Flush()
				return
			}
			if !writeEvent(ev) {
				return
			}
			fl.Flush()
		}
	}
}

// handleJournal replays a run's buffered journal as JSONL — the same
// format cmrun -journal writes to disk, consumable by cmd/cmjournal.
func (s *server) handleJournal(w http.ResponseWriter, r *http.Request) {
	ru, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, ev := range ru.journal.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"contribmax/internal/server"
)

const tcProgram = `1.0 r1: tc(X, Y) :- edge(X, Y).
0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).`

const tcFacts = `edge(a, b). edge(b, c). edge(x, y).`

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New())
	t.Cleanup(ts.Close)
	return ts
}

func TestSolveAPI(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program: tcProgram,
		Facts:   tcFacts,
		Targets: []string{"tc(a, c)"},
		K:       1,
		RR:      400,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Seeds) != 1 {
		t.Fatalf("seeds = %v", out.Seeds)
	}
	if s := out.Seeds[0]; s != "edge(a, b)" && s != "edge(b, c)" {
		t.Errorf("seed = %s", s)
	}
	if out.EstContribution <= 0 || out.RRSets != 400 {
		t.Errorf("response = %+v", out)
	}
}

func TestSolveAPIPatternTargets(t *testing.T) {
	ts := newServer(t)
	req := server.SolveRequest{
		Program: tcProgram,
		Facts:   tcFacts,
		Targets: []string{"tc(a, Y)"},
		K:       1,
		RR:      300,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// tc(a, b) and tc(a, c) both match the pattern.
	if len(out.Targets) != 2 {
		t.Errorf("targets = %v, want 2", out.Targets)
	}
}

func TestSolveAPIBadInput(t *testing.T) {
	ts := newServer(t)
	cases := []server.SolveRequest{
		{Program: "syntax error(", Facts: tcFacts, Targets: []string{"tc(a, b)"}},
		{Program: tcProgram, Facts: "bad(", Targets: []string{"tc(a, b)"}},
		{Program: tcProgram, Facts: tcFacts, Targets: []string{"zz(Q)"}},
		{Program: tcProgram, Facts: tcFacts, Targets: nil},
	}
	for i, req := range cases {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/api/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("case %d: want error status", i)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/api/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d", resp.StatusCode)
	}
}

func TestExplainAPI(t *testing.T) {
	ts := newServer(t)
	req := server.ExplainRequest{Program: tcProgram, Facts: tcFacts, Target: "tc(a, c)"}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Derivable {
		t.Fatal("tc(a, c) should be derivable")
	}
	if out.Probability != 0.8 {
		t.Errorf("probability = %g, want 0.8", out.Probability)
	}
	if !strings.Contains(out.Tree, "edge(a, b)") {
		t.Errorf("tree missing leaf:\n%s", out.Tree)
	}

	// Underivable tuple.
	req.Target = "tc(c, a)"
	body, _ = json.Marshal(req)
	resp2, err := http.Post(ts.URL+"/api/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 server.ExplainResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Derivable {
		t.Error("tc(c, a) should not be derivable")
	}
}

func TestFormPages(t *testing.T) {
	ts := newServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "Contribution Maximization") {
		t.Error("form page missing title")
	}

	form := url.Values{
		"program":   {tcProgram},
		"facts":     {tcFacts},
		"targets":   {"tc(a, c)"},
		"k":         {"1"},
		"algorithm": {"magics"},
		"rr":        {"300"},
		"seed":      {"1"},
	}
	resp2, err := http.PostForm(ts.URL+"/solve", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf2 bytes.Buffer
	buf2.ReadFrom(resp2.Body)
	if !strings.Contains(buf2.String(), "edge(") {
		t.Errorf("solve page missing seeds:\n%s", buf2.String())
	}

	// Errors surface in the page rather than a 500.
	form.Set("program", "broken(")
	resp3, err := http.PostForm(ts.URL+"/solve", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var buf3 bytes.Buffer
	buf3.ReadFrom(resp3.Body)
	if !strings.Contains(buf3.String(), "err") {
		t.Error("error not rendered")
	}
}

package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/server"
)

// startRun POSTs /api/solve/start and returns the decoded 202 body.
func startRun(t *testing.T, ts *httptest.Server, targets []string, rr int, algo string) map[string]string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/solve/start", "application/json", solveBody(t, targets, rr, algo))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("start status = %d (body %q)", resp.StatusCode, body)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["run"] == "" {
		t.Fatalf("start response missing run ID: %v", out)
	}
	return out
}

// runStatus mirrors the server's status JSON for decoding in tests.
type runStatus struct {
	Run      string                `json:"run"`
	State    string                `json:"state"`
	Response *server.SolveResponse `json:"response"`
	Error    string                `json:"error"`
}

// waitForRun polls GET /api/solve/{id} until the run leaves "running".
func waitForRun(t *testing.T, ts *httptest.Server, id string) runStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/solve/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st runStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still running after 30s", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchJournal GETs /journal/{id} and decodes the JSONL replay.
func fetchJournal(t *testing.T, ts *httptest.Server, id string) []journal.Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/journal/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("journal content type = %q", ct)
	}
	var evs []journal.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev journal.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestAsyncSolveLifecycle walks the full asynchronous path: start returns
// 202 with a run ID, status polls to done with the solve result (carrying
// the run ID), the journal replay holds the event taxonomy, and the SSE
// stream of a finished run delivers the buffered history and terminates.
func TestAsyncSolveLifecycle(t *testing.T) {
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: obs.NewRegistry()}))
	defer ts.Close()

	start := startRun(t, ts, []string{"tc(a, c)"}, 400, "magics")
	id := start["run"]
	st := waitForRun(t, ts, id)
	if st.State != "done" || st.Error != "" {
		t.Fatalf("run finished as %q (error %q)", st.State, st.Error)
	}
	if st.Response == nil || len(st.Response.Seeds) != 1 {
		t.Fatalf("run response = %+v", st.Response)
	}
	if st.Response.RunID != id {
		t.Errorf("response run ID %q != %q", st.Response.RunID, id)
	}

	evs := fetchJournal(t, ts, id)
	counts := map[journal.EventType]int{}
	for i, ev := range evs {
		if ev.Run != id {
			t.Fatalf("event %d belongs to run %q, want %q", i, ev.Run, id)
		}
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Fatalf("journal gap: seq %d after %d", ev.Seq, evs[i-1].Seq)
		}
		counts[ev.Type]++
	}
	if counts[journal.TypeSolveStart] != 1 || counts[journal.TypeSolveFinish] != 1 {
		t.Errorf("start/finish events = %d/%d", counts[journal.TypeSolveStart], counts[journal.TypeSolveFinish])
	}
	if counts[journal.TypeSelectIter] != len(st.Response.Seeds) {
		t.Errorf("select.iter events = %d, seeds = %d", counts[journal.TypeSelectIter], len(st.Response.Seeds))
	}
	if counts[journal.TypeRRBatch] == 0 {
		t.Error("no rr.batch events")
	}

	// SSE on a finished run: replay everything, then end the stream.
	resp, err := http.Get(ts.URL + "/solve/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type = %q", ct)
	}
	sse, err := io.ReadAll(resp.Body) // stream terminates because the journal is closed
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(sse), "event: "+string(journal.TypeSolveFinish)); got != 1 {
		t.Errorf("SSE solve.finish frames = %d", got)
	}
	if !strings.Contains(string(sse), ": stream closed state=done") {
		t.Error("SSE stream missing terminal comment")
	}

	// Unknown runs are 404 on every run-scoped endpoint.
	for _, path := range []string{"/api/solve/nope", "/solve/nope/events", "/journal/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestConcurrentRunsIsolated starts several journaled solves at once and
// checks cross-run isolation: distinct run IDs, every replayed event tagged
// with its own run, exactly one solve.start/finish per journal, and the
// shared /metrics endpoint (JSON and Prometheus) stays serviceable
// throughout.
func TestConcurrentRunsIsolated(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/solve/start", "application/json",
				solveBody(t, []string{"tc(a, c)"}, 500+100*i, "magics"))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			ids[i] = out["run"]
		}(i)
	}
	// Scrape metrics in both formats while solves are in flight.
	for j := 0; j < 5; j++ {
		for _, q := range []string{"", "?format=prometheus"} {
			resp, err := http.Get(ts.URL + "/metrics" + q)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("metrics%s status = %d", q, resp.StatusCode)
			}
		}
	}
	wg.Wait()

	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" {
			t.Fatalf("run %d did not start", i)
		}
		if seen[id] {
			t.Fatalf("duplicate run ID %q", id)
		}
		seen[id] = true
		st := waitForRun(t, ts, id)
		if st.State != "done" {
			t.Fatalf("run %s state %q (error %q)", id, st.State, st.Error)
		}
		wantRR := 500 + 100*i
		if st.Response.RRSets != wantRR {
			t.Errorf("run %s RR sets = %d, want %d", id, st.Response.RRSets, wantRR)
		}
		evs := fetchJournal(t, ts, id)
		starts, finishes := 0, 0
		for _, ev := range evs {
			if ev.Run != id {
				t.Fatalf("run %s journal holds event of run %q", id, ev.Run)
			}
			switch ev.Type {
			case journal.TypeSolveStart:
				starts++
			case journal.TypeSolveFinish:
				finishes++
			}
		}
		if starts != 1 || finishes != 1 {
			t.Errorf("run %s start/finish = %d/%d", id, starts, finishes)
		}
	}
}

// TestSSEDisconnectNoGoroutineLeak opens SSE streams against a long
// solve, disconnects the clients mid-stream, and asserts the server sheds
// the handler goroutines. The solve itself is bounded by SolveTimeout so
// the run (and its emitters) also wind down inside the test.
func TestSSEDisconnectNoGoroutineLeak(t *testing.T) {
	ts := httptest.NewServer(server.NewWith(server.Config{SolveTimeout: 1500 * time.Millisecond}))
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	// Per-tuple Magic with a huge θ cannot finish inside the timeout — the
	// run stays live long enough for the streams to attach.
	start := startRun(t, ts, []string{"tc(a, c)"}, 2_000_000, "magic")
	id := start["run"]

	const clients = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/solve/"+id+"/events", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			// Read a little of the stream, then drop the connection.
			buf := make([]byte, 256)
			resp.Body.Read(buf)
			cancel()
			resp.Body.Close()
		}()
	}
	wg.Wait()

	st := waitForRun(t, ts, id)
	if st.State != "error" {
		t.Logf("run finished as %q before the timeout — leak check still valid", st.State)
	}

	// The handler goroutines (and the solve's workers) must drain. Allow a
	// small slack for the test server's own connection churn.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d + 3\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMetricsPrometheusFormat checks the text exposition endpoint: correct
// content type and lines that conform to the 0.0.4 text format, including
// solver metrics once a solve has run.
func TestMetricsPrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/solve", "application/json", solveBody(t, []string{"tc(a, c)"}, 300, "magics"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	commentRe := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !commentRe.MatchString(line) {
				t.Errorf("line %d: bad comment %q", i+1, line)
			}
		} else if !sampleRe.MatchString(line) {
			t.Errorf("line %d: bad sample %q", i+1, line)
		}
	}
	for _, want := range []string{
		fmt.Sprintf("# TYPE %s_total counter", strings.ReplaceAll(obs.CMSolves, ".", "_")),
		strings.ReplaceAll(obs.RRMembers, ".", "_") + "_bucket{le=\"+Inf\"}",
		strings.ReplaceAll(obs.ServerLatencyNs, ".", "_") + "_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

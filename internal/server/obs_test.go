package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contribmax/internal/obs"
	"contribmax/internal/server"
)

func solveBody(t *testing.T, targets []string, rr int, algo string) *bytes.Reader {
	t.Helper()
	body, err := json.Marshal(server.SolveRequest{
		Program:   tcProgram,
		Facts:     tcFacts,
		Targets:   targets,
		K:         1,
		RR:        rr,
		Algorithm: algo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(body)
}

// TestMetricsEndpoint: with a registry configured, /metrics serves live
// expvar-style JSON whose counters advance as solves run; without one, the
// endpoint is absent (404).
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	readMetrics := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("content type = %q", ct)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	before := readMetrics()
	if _, ok := before["uptime_seconds"]; !ok {
		t.Error("metrics missing uptime_seconds")
	}

	resp, err := http.Post(ts.URL+"/api/solve", "application/json", solveBody(t, []string{"tc(a, c)"}, 300, "magics"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	after := readMetrics()
	for _, key := range []string{obs.ServerRequests, obs.CMSolves, obs.RRSets} {
		v, ok := after[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("metric %s = %v, want > 0", key, after[key])
		}
	}
	if after[obs.ServerInflight].(float64) != 0 {
		t.Errorf("inflight = %v after requests finished", after[obs.ServerInflight])
	}

	// Unconfigured server: no metrics endpoint.
	plain := httptest.NewServer(server.New())
	defer plain.Close()
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /metrics without registry: status = %d, want 404", resp2.StatusCode)
	}
}

// TestSolveTimeoutReturns503 is the server-robustness satellite: a solve
// that cannot finish inside Config.SolveTimeout must come back promptly as
// 503 Service Unavailable instead of hogging the connection, because the
// deadline propagates into the RR loops.
func TestSolveTimeoutReturns503(t *testing.T) {
	// The timeout is generous enough that the (small) follow-up request
	// finishes inside it even under the race detector, while the huge
	// first request cannot come close.
	ts := httptest.NewServer(server.NewWith(server.Config{SolveTimeout: time.Second}))
	defer ts.Close()

	start := time.Now()
	// Per-tuple Magic-Sets with a huge θ: millions of subgraph builds,
	// minutes of work, far beyond the one-second deadline.
	resp, err := http.Post(ts.URL+"/api/solve", "application/json", solveBody(t, []string{"tc(a, c)"}, 2_000_000, "magic"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %q), want 503", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("timeout surfaced after %v, want prompt return", elapsed)
	}

	// The server stays healthy for the next (feasible) request.
	resp2, err := http.Post(ts.URL+"/api/solve", "application/json", solveBody(t, []string{"tc(a, c)"}, 200, "magics"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("follow-up solve status = %d", resp2.StatusCode)
	}
}

// TestClientDisconnectCancelsSolve: when the client goes away mid-solve,
// the request context cancels the solve; the server must remain healthy.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(server.NewWith(server.Config{Obs: reg}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/solve",
		solveBody(t, []string{"tc(a, c)"}, 2_000_000, "magic"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// A response beat the client deadline — unexpected for this θ.
		resp.Body.Close()
		t.Fatal("expected client-side deadline, got a response")
	}

	// Give the handler a moment to unwind, then verify the server answers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m[obs.ServerInflight].(float64) == 0 {
			if errs, ok := m[obs.ServerErrors].(float64); !ok || errs < 1 {
				t.Errorf("server.errors = %v, want >= 1 after aborted solve", m[obs.ServerErrors])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted solve still in flight after 5s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

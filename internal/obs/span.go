package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Span is one timed phase of a larger operation: it has a name, a
// duration, optional integer attributes, and child spans, forming the
// phase tree cmrun -stats prints. Spans are nil-safe (every method on a
// nil *Span is a no-op returning nil/zero), so instrumented code can run
// with tracing disabled at the cost of a pointer check.
//
// A span tree is built and finished by a single goroutine (the solver's);
// it is not safe for concurrent mutation. Phases that internally fan out
// (the parallel RR loops) are represented as one span covering the whole
// fan-out, with attributes carrying the aggregate counts.
type Span struct {
	Name     string
	Attrs    []Attr
	Children []*Span
	Dur      time.Duration

	start time.Time
}

// Attr is one integer annotation on a span (counts, sizes).
type Attr struct {
	Key   string
	Value int64
}

// StartSpan starts a new root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// StartChild starts and attaches a child span. Nil-safe: returns nil when
// s is nil, so whole disabled subtrees cost nothing.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.Children = append(s.Children, c)
	return c
}

// End fixes the span's duration. Further Ends are no-ops, as is End on a
// nil span.
func (s *Span) End() {
	if s == nil || s.Dur != 0 {
		return
	}
	s.Dur = time.Since(s.start)
}

// SetAttr sets an integer attribute, overwriting an existing key. No-op on
// a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
}

// Attr returns the value of an attribute, ok=false if absent (or s nil).
func (s *Span) Attr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Find returns the first descendant span (depth-first, self included) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// Render writes the span tree as an indented phase listing:
//
//	solve                      142.1ms
//	  build                    101.3ms  nodes=5210 edges=9123
//	  rrgen                     38.0ms  rr=1000
//	  select                     2.7ms  covered=815
//
// Durations of still-running spans render from their start time. No-op on
// a nil span.
func (s *Span) Render(w io.Writer) {
	if s == nil {
		return
	}
	width := s.labelWidth(0)
	s.render(w, 0, width)
}

func (s *Span) labelWidth(depth int) int {
	width := 2*depth + len(s.Name)
	for _, c := range s.Children {
		if cw := c.labelWidth(depth + 1); cw > width {
			width = cw
		}
	}
	return width
}

func (s *Span) render(w io.Writer, depth, width int) {
	d := s.Dur
	if d == 0 && !s.start.IsZero() {
		d = time.Since(s.start)
	}
	label := strings.Repeat("  ", depth) + s.Name
	pad := width - len(label) + 2
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(w, "%s%s%10s", label, strings.Repeat(" ", pad), formatDur(d))
	for _, a := range s.Attrs {
		fmt.Fprintf(w, "  %s=%d", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		c.render(w, depth+1, width)
	}
}

// formatDur renders a duration with ~3 significant digits, keeping the
// columns of the phase tree readable.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

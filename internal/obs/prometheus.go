package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4"

// promName maps a dotted metric name to a legal Prometheus metric name:
// dots become underscores, and any remaining character outside
// [a-zA-Z0-9_:] is replaced by an underscore. A leading digit gets an
// underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `<name>_total`, gauges plain, and
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. Bucket i of the power-of-two layout holds integer values in
// [2^(i-1), 2^i), so its exact inclusive upper bound is le="2^i - 1"
// (bucket 0, values <= 0, gets le="0") — the cumulative counts honor the
// format's v <= le semantics with no boundary leakage. Empty buckets are
// elided (the cumulative counts lose nothing); the mandatory le="+Inf"
// series always equals `_count`. Families are emitted in sorted name order, so output is
// deterministic for a fixed metric state. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, n := range h.Buckets {
			if n == 0 {
				continue // empty buckets are elided; cumulation skips nothing
			}
			cum += n
			le := "0"
			if i > 0 {
				// uint64 keeps i=63 (top bucket, bound 2^63-1) from
				// overflowing.
				le = fmt.Sprintf("%d", (uint64(1)<<uint(i))-1)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}

	_, err := fmt.Fprintf(w, "# TYPE uptime_seconds gauge\nuptime_seconds %g\n", s.UptimeSeconds)
	return err
}

package obs

import "fmt"

// Canonical metric names used across the pipeline, so dashboards and tests
// reference one vocabulary (documented in docs/OBSERVABILITY.md).
const (
	// Engine fixpoint evaluation.
	EngineRuns           = "engine.runs"           // counter: evaluations started
	EngineRounds         = "engine.rounds"         // counter: semi-naive rounds
	EngineInstantiations = "engine.instantiations" // counter: fired rule instantiations
	EngineSuppressed     = "engine.suppressed"     // counter: gate-vetoed instantiations
	EngineNewFacts       = "engine.new_facts"      // counter: idb tuples first derived
	EngineDeltaSize      = "engine.delta_size"     // histogram: delta tuples per round
	EngineEvalNs         = "engine.eval_ns"        // histogram: ns per evaluation
	EngineBatches        = "engine.batches"        // counter: parallel evaluation tasks executed
	EngineWorkerBusy     = "engine.worker_busy"    // histogram: per-worker busy ns per parallel round
	EngineMergeWait      = "engine.merge_wait"     // histogram: ns the coordinator waits for workers per round

	// Join planner (internal/planner).
	PlanBuilt     = "plan.built"      // counter: plans computed (cache misses)
	PlanCacheHits = "plan.cache_hits" // counter: plans served from the shape-keyed cache
	PlanReordered = "plan.reordered"  // counter: plan positions deviating from written body order

	// WD-graph construction.
	GraphBuilds  = "wdgraph.builds"   // counter: graphs constructed
	GraphNodes   = "wdgraph.nodes"    // counter: nodes summed over builds
	GraphEdges   = "wdgraph.edges"    // counter: edges summed over builds
	GraphBuildNs = "wdgraph.build_ns" // histogram: ns per construction

	// RR-set generation and adaptive sampling.
	RRSets         = "rr.sets"          // counter: RR sets generated
	RRMembers      = "rr.members"       // histogram: candidates per RR set (walk length)
	RRBytesArena   = "rr.bytes_arena"   // gauge: resident bytes of the RR-collection arena
	RRScratchGrows = "rr.scratch_grows" // counter: walker-scratch reallocations (0 in steady state)
	IMMRuns        = "imm.runs"         // counter: adaptive solves
	IMMRounds      = "imm.rounds"       // counter: phase-1 halving iterations
	IMMPhase1      = "imm.rr_phase1"    // counter: RR sets spent bounding OPT
	IMMTotalRR     = "imm.rr_total"     // counter: final collection sizes summed

	// CM solvers.
	CMSolves  = "cm.solves"   // counter: completed solves
	CMErrors  = "cm.errors"   // counter: solves returning an error
	CMSolveNs = "cm.solve_ns" // histogram: ns per solve

	// Exact lifted tier and DNF possible-world sampling (internal/cm
	// exact.go / greedydnf.go).
	ExactSolves    = "exact.solves"    // counter: solves answered by the exact lifted tier
	ExactFallbacks = "exact.fallbacks" // counter: exact-tier solves that fell back to RIS sampling
	LineageClauses = "lineage.clauses" // histogram: normalized clauses per target lineage
	DNFSamples     = "dnf.samples"     // counter: DNF possible-world samples drawn

	// Solve cache (internal/solvecache).
	CacheGraphHits    = "cache.graph_hits"          // counter: WD-graph lookups served from cache
	CacheGraphMisses  = "cache.graph_misses"        // counter: WD-graph lookups that built
	CacheRRHits       = "cache.rr_hits"             // counter: RR-collection lookups served from cache
	CacheRRMisses     = "cache.rr_misses"           // counter: RR-collection lookups that generated
	CacheEvictions    = "cache.evictions"           // counter: entries evicted by the byte bound
	CacheRejected     = "cache.rejected"            // counter: entries refused admission (oversized)
	CacheSingleFlight = "cache.singleflight_shared" // counter: lookups that waited on another goroutine's build
	CacheBytes        = "cache.bytes"               // gauge: resident bytes over both stores
	CacheEntries      = "cache.entries"             // gauge: resident entries over both stores

	// HTTP server.
	ServerRequests  = "server.requests"   // counter: requests handled
	ServerErrors    = "server.errors"     // counter: responses with status >= 400
	ServerInflight  = "server.inflight"   // gauge: requests currently in flight
	ServerLatencyNs = "server.latency_ns" // histogram: ns per request

	// Solve pool, tenant quotas, and async run store (internal/server).
	ServerQueueDepth   = "server.queue_depth"   // gauge: solves waiting for a pool slot
	ServerPoolBusy     = "server.pool_busy"     // gauge: pool slots currently executing solves
	ServerShed         = "server.shed"          // counter: solves refused with 429 (pool saturated)
	ServerTenantDenied = "server.tenant_denied" // counter: solves refused with 429 (tenant over quota)
	ServerRunsEvicted  = "runs.evicted"         // counter: finished async runs evicted by the run-store LRU

	// Journal data-loss signals (internal/obs/journal, satellite of the
	// runtime profiler): both losses were previously silent.
	JournalDropped     = "journal.dropped"     // counter: slow subscribers disconnected mid-stream
	JournalOverwritten = "journal.overwritten" // counter: ring-buffer events evicted before replay

	// Go runtime gauges (Registry.UpdateGoRuntime).
	GoGoroutines = "go.goroutines" // gauge: live goroutines
	GoHeapBytes  = "go.heap_bytes" // gauge: heap bytes in use (MemStats.HeapAlloc)
	GoGCPauses   = "go.gc_pauses"  // gauge: cumulative GC stop-the-world pause ns (MemStats.PauseTotalNs)
)

// ProfileRuleSelfNs and ProfileRuleDerived name the top-K hot-rule gauges a
// profiled solve publishes (rank is 1-based). The names are rank-keyed, not
// rule-keyed, so the metric cardinality stays bounded; the rule identity
// lives in the RuntimeProfile artifact and the profile.summary event.
func ProfileRuleSelfNs(rank int) string { return fmt.Sprintf("profile.rule%d.self_ns", rank) }

// ProfileRuleDerived names the derived-tuples gauge of the rank-th hottest
// rule of the last profiled solve.
func ProfileRuleDerived(rank int) string { return fmt.Sprintf("profile.rule%d.derived", rank) }

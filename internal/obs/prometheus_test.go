package obs_test

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"contribmax/internal/obs"
)

// TestQuantileBucketBoundaries pins how the power-of-two bucket layout
// maps boundary values onto quantile estimates: bucket 0 holds v <= 0,
// bucket i holds [2^(i-1), 2^i), and estimates are the winning bucket's
// geometric midpoint clamped to the observed max.
func TestQuantileBucketBoundaries(t *testing.T) {
	observe := func(vs ...int64) obs.HistogramSnapshot {
		r := obs.NewRegistry()
		h := r.Histogram("h")
		for _, v := range vs {
			h.Observe(v)
		}
		return h.Snapshot()
	}

	// All zeros land in bucket 0, estimated as 0.
	if s := observe(0, 0, 0); s.P50 != 0 || s.P99 != 0 {
		t.Errorf("all-zero quantiles = %g/%g", s.P50, s.P99)
	}
	// Value 1 is the first element of bucket 1 = [1, 2); midpoint sqrt(2)
	// clamps to the observed max 1 — boundary values report exactly.
	if s := observe(1, 1, 1); s.P50 != 1 {
		t.Errorf("all-one p50 = %g", s.P50)
	}
	// 2 is the first element of bucket 2 = [2, 4), not the last of
	// bucket 1: its midpoint 2*sqrt(2) clamps to max 2.
	if s := observe(2, 2); s.P50 != 2 {
		t.Errorf("all-two p50 = %g", s.P50)
	}
	// 3 shares bucket 2 with 2; midpoint 2*sqrt(2) is below max 3 and
	// survives unclamped.
	if s := observe(3, 3, 3); s.P50 < 2 || s.P50 >= 4 {
		t.Errorf("all-three p50 = %g, want in [2, 4)", s.P50)
	}
	// 1024 = 2^10 opens bucket 11 = [1024, 2048); 1023 closes bucket 10.
	s := observe(1023, 1024)
	if s.Buckets[10] != 1 || s.Buckets[11] != 1 {
		t.Errorf("boundary bucketing: b10=%d b11=%d", s.Buckets[10], s.Buckets[11])
	}
	// p50 ranks into the lower bucket, p99 into the upper.
	if !(s.P50 < s.P99) {
		t.Errorf("p50=%g p99=%g not separated across boundary", s.P50, s.P99)
	}
	if s.P99 > float64(s.Max) {
		t.Errorf("p99=%g exceeds max=%d", s.P99, s.Max)
	}

	// Negative values join bucket 0.
	if s := observe(-5, -1, 0); s.Buckets[0] != 3 || s.P99 != 0 {
		t.Errorf("negatives: buckets[0]=%d p99=%g", s.Buckets[0], s.P99)
	}

	// Count always equals the bucket sum.
	s = observe(0, 1, 2, 3, 1000, 1<<40)
	var bsum int64
	for _, n := range s.Buckets {
		bsum += n
	}
	if s.Count != bsum || s.Count != 6 {
		t.Errorf("count=%d bucket-sum=%d", s.Count, bsum)
	}
}

// TestSnapshotCountMatchesBuckets hammers a histogram from writer
// goroutines while snapshotting: every snapshot must satisfy the
// single-pass invariant Count == sum(Buckets), and counts must be
// monotone across snapshots. Run under -race in CI.
func TestSnapshotCountMatchesBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("hot")
	c := r.Counter("events")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64(i % 4096))
				c.Inc()
			}
		}(w)
	}
	var last int64
	for i := 0; i < 500; i++ {
		s := r.Snapshot()
		hs := s.Histograms["hot"]
		var bsum int64
		for _, n := range hs.Buckets {
			bsum += n
		}
		if hs.Count != bsum {
			t.Fatalf("snapshot %d: count=%d bucket-sum=%d", i, hs.Count, bsum)
		}
		if hs.Count < last {
			t.Fatalf("snapshot %d: count went backwards %d -> %d", i, last, hs.Count)
		}
		last = hs.Count
	}
	close(stop)
	wg.Wait()
}

var (
	promCommentRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(\+Inf|[0-9]+)"\})? (-?[0-9.eE+-]+|NaN)$`)
)

// checkPromFormat is a conformance checker for the subset of the text
// exposition format WritePrometheus emits: every line is a TYPE comment or
// a sample, names are legal, every sample belongs to a declared family,
// counters end in _total, histogram buckets are cumulative with le
// strictly increasing and the +Inf bucket equal to _count.
func checkPromFormat(t *testing.T, out string) map[string]string {
	t.Helper()
	families := map[string]string{} // name -> type
	type histState struct {
		lastLe   float64
		lastCum  int64
		infCount int64
		count    int64
		seenInf  bool
		seenSum  bool
		seenCnt  bool
	}
	hists := map[string]*histState{}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if m := promCommentRe.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			families[m[1]] = m[2]
			if m[2] == "histogram" {
				hists[m[1]] = &histState{lastLe: -1}
			}
			if m[2] == "counter" && !strings.HasSuffix(m[1], "_total") {
				t.Errorf("line %d: counter %s lacks _total suffix", ln+1, m[1])
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable: %q", ln+1, line)
			continue
		}
		name, le, val := m[1], m[3], m[4]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && hists[b] != nil {
				base = b
			}
		}
		if h, ok := hists[base]; ok {
			v, _ := strconv.ParseInt(val, 10, 64)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					t.Errorf("line %d: bucket without le: %q", ln+1, line)
					break
				}
				var leV float64
				if le == "+Inf" {
					h.seenInf, h.infCount = true, v
					break
				}
				leV, _ = strconv.ParseFloat(le, 64)
				if h.seenInf {
					t.Errorf("line %d: bucket after +Inf", ln+1)
				}
				if leV <= h.lastLe {
					t.Errorf("line %d: le %g not increasing (prev %g)", ln+1, leV, h.lastLe)
				}
				if v < h.lastCum {
					t.Errorf("line %d: cumulative bucket decreased %d -> %d", ln+1, h.lastCum, v)
				}
				h.lastLe, h.lastCum = leV, v
			case strings.HasSuffix(name, "_sum"):
				h.seenSum = true
			case strings.HasSuffix(name, "_count"):
				h.seenCnt, h.count = true, v
			}
			continue
		}
		if _, ok := families[name]; !ok {
			t.Errorf("line %d: sample %s has no TYPE declaration", ln+1, name)
		}
	}
	for name, h := range hists {
		if !h.seenInf || !h.seenSum || !h.seenCnt {
			t.Errorf("histogram %s incomplete: inf=%v sum=%v count=%v", name, h.seenInf, h.seenSum, h.seenCnt)
		}
		if h.infCount != h.count {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", name, h.infCount, h.count)
		}
		if h.lastCum > h.count {
			t.Errorf("histogram %s: top bucket %d exceeds count %d", name, h.lastCum, h.count)
		}
	}
	return families
}

func TestWritePrometheusConformance(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cm.solves").Add(7)
	r.Counter("engine.rule_fires").Add(123456)
	r.Gauge("server.inflight").Set(3)
	h := r.Histogram("rr.set_size")
	for _, v := range []int64{0, 1, 1, 2, 3, 100, 1023, 1024} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	families := checkPromFormat(t, out)

	for name, typ := range map[string]string{
		"cm_solves_total":         "counter",
		"engine_rule_fires_total": "counter",
		"server_inflight":         "gauge",
		"rr_set_size":             "histogram",
		"uptime_seconds":          "gauge",
	} {
		if families[name] != typ {
			t.Errorf("family %s = %q, want %q", name, families[name], typ)
		}
	}

	// Exact bucket series: values 0|1,1|2,3|..|100 -> [64,128) |1023 ->
	// [512,1024) |1024 -> [1024,2048). Upper bounds are 2^i - 1.
	for _, want := range []string{
		`rr_set_size_bucket{le="0"} 1`,
		`rr_set_size_bucket{le="1"} 3`,
		`rr_set_size_bucket{le="3"} 5`,
		`rr_set_size_bucket{le="127"} 6`,
		`rr_set_size_bucket{le="1023"} 7`,
		`rr_set_size_bucket{le="2047"} 8`,
		`rr_set_size_bucket{le="+Inf"} 8`,
		`rr_set_size_sum 2154`,
		`rr_set_size_count 8`,
		"cm_solves_total 7",
		"server_inflight 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Empty buckets between populated ones are elided entirely.
	if strings.Contains(out, `le="7"`) {
		t.Errorf("empty bucket le=7 not elided:\n%s", out)
	}

	// Deterministic output for a fixed state (modulo uptime).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string {
		i := strings.Index(s, "# TYPE uptime_seconds")
		return s[:i]
	}
	if trim(buf.String()) != trim(buf2.String()) {
		t.Error("output not deterministic")
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.NewRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, buf.String())
	if !strings.Contains(buf.String(), "uptime_seconds") {
		t.Errorf("empty output: %q", buf.String())
	}
	// Nil registry still writes a valid (uptime-only) document.
	var nilReg *obs.Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, buf.String())
}

func TestPromNameSanitization(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cm.weird-name.α").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := checkPromFormat(t, buf.String())
	found := false
	for name := range families {
		if strings.HasPrefix(name, "cm_weird") {
			found = true
			if strings.ContainsAny(name, ".-α") {
				t.Errorf("unsanitized name %q", name)
			}
		}
	}
	if !found {
		t.Fatalf("sanitized family missing:\n%s", buf.String())
	}
}

// Histogram sum fits the fmt %d path for the full int64 range.
func TestWritePrometheusTopBucket(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("big").Observe(1 << 62)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, buf.String())
	want := fmt.Sprintf(`big_bucket{le="%d"} 1`, uint64(1)<<63-1)
	if !strings.Contains(buf.String(), want) {
		t.Errorf("missing top bucket %q:\n%s", want, buf.String())
	}
}

// Package obs is the lightweight observability layer of the CM pipeline:
// process-wide metric registries (counters, gauges, exponential-bucket
// histograms, all with lock-free hot paths) and span-style phase timers
// (see span.go) that the engine, the WD-graph builder, the RR machinery,
// the CM solvers, and the HTTP server report into.
//
// Everything is nil-safe by design: a nil *Registry hands out nil metric
// handles, and every operation on a nil handle is a no-op, so instrumented
// code pays a single pointer check when observability is disabled and
// needs no conditional plumbing. All mutating operations on non-nil
// handles are atomic and safe for concurrent use.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (negative to decrease). No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket 0
// holds values <= 0, bucket i holds values in [2^(i-1), 2^i). 63 buckets
// cover the full non-negative int64 range (nanosecond durations up to
// ~292 years), so no observation is ever dropped.
const histBuckets = 64

// Histogram records an int64 value distribution in power-of-two buckets,
// plus exact count/sum/min/max. Observation is a few atomic adds — cheap
// enough for per-RR-set hot paths.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid iff count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start. No-op on a nil
// histogram (time.Since is still evaluated; callers on ultra-hot paths
// should early-out on the handle themselves).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// HistogramSnapshot is a single-pass view of a histogram. Count is derived
// from one read of the bucket array (so Count == sum(Buckets) always holds,
// and quantile ranks computed from Buckets are internally consistent even
// while writers race); Sum/Min/Max/Avg are read alongside and may run a
// few observations ahead or behind the buckets — an accepted, documented
// tear for lock-free observation.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Avg   float64 `json:"avg"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`

	// Buckets is the raw power-of-two bucket array (index 0: v <= 0,
	// index i: v in [2^(i-1), 2^i)), for cumulative-bucket consumers like
	// the Prometheus exposition. Excluded from the flat JSON surface.
	Buckets []int64 `json:"-"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket array
// using the geometric midpoint of the winning bucket, accurate to about a
// factor of sqrt(2). The estimate is clamped to the observed Max so a
// sparse top bucket cannot report a value beyond anything observed.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Geometric midpoint of [2^(i-1), 2^i).
			mid := math.Sqrt2 * math.Exp2(float64(i-1))
			if s.Max > 0 && mid > float64(s.Max) {
				return float64(s.Max)
			}
			return mid
		}
	}
	return float64(s.Max)
}

// Snapshot summarizes the histogram in one pass over the bucket array;
// see HistogramSnapshot for the consistency contract. Zero for nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	counts := make([]int64, histBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	if s.Count == 0 {
		return s
	}
	s.Buckets = counts
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	if s.Min == math.MaxInt64 {
		// A writer has bumped its bucket but not yet CASed min; report
		// the other extreme rather than the sentinel.
		s.Min = s.Max
	}
	s.Avg = float64(s.Sum) / float64(s.Count)
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the disabled registry:
// metric lookups return nil handles and every operation no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for binaries (cmserve) that
// want one shared sink without plumbing a registry through construction.
// Libraries must take a *Registry and treat nil as disabled.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		h.min.Store(math.MaxInt64)
		r.hists[name] = h
	}
	return h
}

// UpdateGoRuntime refreshes the Go runtime gauges — go.goroutines,
// go.heap_bytes, go.gc_pauses — from the live runtime. Metric endpoints
// call it right before rendering a snapshot so every scrape sees current
// values; ReadMemStats costs a brief stop-the-world, so it belongs on the
// scrape path, not in solver hot loops. No-op on a nil registry.
func (r *Registry) UpdateGoRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(GoGoroutines).Set(int64(runtime.NumGoroutine()))
	r.Gauge(GoHeapBytes).Set(int64(ms.HeapAlloc))
	r.Gauge(GoGCPauses).Set(int64(ms.PauseTotalNs))
}

// Snapshot captures every metric's current value.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads all metrics in a single pass: the metric set is captured
// under the registry read-lock (so a concurrent first-use registration
// cannot tear the map iteration), then each metric is read lock-free.
// Within one histogram, Count == sum(Buckets) is guaranteed (see
// HistogramSnapshot); across metrics the snapshot is a point-in-time-ish
// view — writers may land between reads, which is inherent to lock-free
// observation and fine for monitoring. Empty on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeSeconds = time.Since(r.start).Seconds()
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON emits an expvar-style flat JSON object: each counter and gauge
// as "name": value, each histogram as "name": {count, sum, avg, ...}, plus
// "uptime_seconds". Keys are sorted, so the output is deterministic for a
// fixed metric state.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := map[string]any{"uptime_seconds": s.UptimeSeconds}
	for name, v := range s.Counters {
		flat[name] = v
	}
	for name, v := range s.Gauges {
		flat[name] = v
	}
	for name, v := range s.Histograms {
		flat[name] = v
	}
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n "); err != nil {
				return err
			}
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(flat[k])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: %s", kb, vb); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WriteText renders the metrics as sorted human-readable lines — the
// cmrun -stats format.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	type line struct{ name, text string }
	var lines []line
	for name, v := range s.Counters {
		lines = append(lines, line{name, fmt.Sprintf("%s = %d", name, v)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{name, fmt.Sprintf("%s = %d", name, v)})
	}
	for name, h := range s.Histograms {
		lines = append(lines, line{name, fmt.Sprintf(
			"%s: count=%d avg=%.1f min=%d max=%d p50=%.0f p90=%.0f p99=%.0f",
			name, h.Count, h.Avg, h.Min, h.Max, h.P50, h.P90, h.P99)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

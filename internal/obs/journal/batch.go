package journal

import "time"

// batchFlushSets is how many RR sets a BatchRecorder accumulates before
// flushing one rr.batch event; batchFlushInterval bounds the staleness of
// live progress when generation is slow. Both are tuned so journaling
// costs well under 5% of the RR hot path (one event per ~256 sets) while
// SSE consumers still see movement a few times a second.
const (
	batchFlushSets     = 256
	batchFlushInterval = 250 * time.Millisecond
)

// BatchRecorder aggregates per-RR-set observations into rr.batch events.
// One recorder belongs to one generating goroutine (no internal locking on
// the accumulation path); the flush itself goes through the journal's
// mutex. The zero value and a recorder over a nil journal are both
// no-ops at one branch per Observe.
type BatchRecorder struct {
	j      *Journal
	worker int

	sets    int
	members int
	empty   int
	maxLen  int
	total   RRBatchInfo // running totals live in TotalSets/TotalMembers
	started time.Time   // first observation of the open batch
	lastLen int         // observations since the last time check
}

// NewBatchRecorder returns a recorder feeding j, labeled with the worker
// ordinal. A nil journal yields a recorder whose Observe is a single
// branch.
func NewBatchRecorder(j *Journal, worker int) *BatchRecorder {
	return &BatchRecorder{j: j, worker: worker}
}

// Observe records one generated RR set with the given member count.
func (b *BatchRecorder) Observe(members int) {
	if b == nil || b.j == nil {
		return
	}
	if b.sets == 0 {
		b.started = time.Now()
	}
	b.sets++
	b.members += members
	if members == 0 {
		b.empty++
	}
	if members > b.maxLen {
		b.maxLen = members
	}
	if b.sets >= batchFlushSets {
		b.Flush()
		return
	}
	// Check the clock only every few observations: time.Now is ~20ns but
	// the walk itself can be faster than that on tiny graphs.
	b.lastLen++
	if b.lastLen >= 32 {
		b.lastLen = 0
		if time.Since(b.started) >= batchFlushInterval {
			b.Flush()
		}
	}
}

// Flush emits the open batch, if any, as one rr.batch event.
func (b *BatchRecorder) Flush() {
	if b == nil || b.j == nil || b.sets == 0 {
		return
	}
	b.total.TotalSets += b.sets
	b.total.TotalMembers += b.members
	b.j.RRBatch(RRBatchInfo{
		Worker:       b.worker,
		Sets:         b.sets,
		Members:      b.members,
		Empty:        b.empty,
		MaxLen:       b.maxLen,
		TotalSets:    b.total.TotalSets,
		TotalMembers: b.total.TotalMembers,
		ElapsedNs:    int64(time.Since(b.started)),
	})
	b.sets, b.members, b.empty, b.maxLen, b.lastLen = 0, 0, 0, 0, 0
}

package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"contribmax/internal/obs"
)

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.SolveStart(SolveInfo{Algorithm: "NaiveCM"})
	j.SolveFinish(FinishInfo{})
	j.EngineRound(1, 10)
	j.GraphBuild(1, 2, time.Millisecond)
	j.RRBatch(RRBatchInfo{})
	j.IMMRound(IMMInfo{})
	j.SelectIter(IterInfo{})
	if j.Run() != "" || j.Len() != 0 || j.Snapshot() != nil {
		t.Fatal("nil journal leaked state")
	}
	replay, ch, cancel := j.Subscribe(4)
	if replay != nil {
		t.Fatal("nil journal returned replay")
	}
	if _, open := <-ch; open {
		t.Fatal("nil journal channel not closed")
	}
	cancel()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A BatchRecorder over a nil journal observes for free.
	r := NewBatchRecorder(nil, 3)
	for i := 0; i < 1000; i++ {
		r.Observe(i)
	}
	r.Flush()
	var zero *BatchRecorder
	zero.Observe(1)
	zero.Flush()
}

func TestEventOrderingAndStamping(t *testing.T) {
	j := New("run1", Options{})
	j.SolveStart(SolveInfo{Algorithm: "MagicCM", K: 3})
	j.EngineRound(1, 7)
	j.SelectIter(IterInfo{I: 0, Seed: "e(a,b)", Gain: 5, Covered: 5, Coverage: 0.5})
	evs := j.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d: seq = %d", i, ev.Seq)
		}
		if ev.Run != "run1" {
			t.Errorf("event %d: run = %q", i, ev.Run)
		}
		if ev.TNs < 0 {
			t.Errorf("event %d: t_ns = %d", i, ev.TNs)
		}
	}
	if evs[0].Type != TypeSolveStart || evs[0].Solve.Algorithm != "MagicCM" {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Type != TypeEngineRound || evs[1].Round.Delta != 7 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[2].Type != TypeSelectIter || evs[2].Iter.Gain != 5 {
		t.Errorf("event 2 = %+v", evs[2])
	}
}

func TestRingBufferEviction(t *testing.T) {
	j := New("r", Options{Capacity: 8})
	for i := 1; i <= 20; i++ {
		j.EngineRound(i, i)
	}
	evs := j.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("len = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		want := int64(13 + i) // events 13..20 survive
		if ev.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if j.Len() != 8 {
		t.Fatalf("Len = %d", j.Len())
	}
}

func TestJSONLSinkReceivesEvictedEvents(t *testing.T) {
	var buf bytes.Buffer
	j := New("sink", Options{Capacity: 4, Sink: &buf})
	for i := 1; i <= 10; i++ {
		j.EngineRound(i, 2*i)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Seq != int64(n) || ev.Type != TypeEngineRound || ev.Round.Delta != 2*n {
			t.Fatalf("line %d decoded to %+v", n, ev)
		}
		// Only the matching payload is serialized.
		if strings.Contains(sc.Text(), `"solve"`) || strings.Contains(sc.Text(), `"iter"`) {
			t.Fatalf("line %d carries foreign payloads: %s", n, sc.Text())
		}
	}
	if n != 10 {
		t.Fatalf("sink got %d lines, want all 10 despite capacity 4", n)
	}
}

func TestSubscribeReplayThenLiveNoGap(t *testing.T) {
	j := New("sub", Options{})
	j.EngineRound(1, 1)
	j.EngineRound(2, 2)
	replay, ch, cancel := j.Subscribe(16)
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("replay = %d events", len(replay))
	}
	j.EngineRound(3, 3)
	select {
	case ev := <-ch:
		if ev.Seq != 3 {
			t.Fatalf("live event seq = %d", ev.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event")
	}
	// Close ends the stream.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-ch; open {
		t.Fatal("channel still open after Close")
	}
}

func TestSlowSubscriberIsDroppedNotBlocking(t *testing.T) {
	j := New("slow", Options{})
	_, ch, cancel := j.Subscribe(2)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ { // overflows the buffer of 2
			j.EngineRound(i, i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("emitter blocked on slow subscriber")
	}
	// Drain: the channel must be closed after at most 2 buffered events.
	n := 0
	for range ch {
		n++
	}
	if n > 2 {
		t.Fatalf("received %d events from a buffer of 2", n)
	}
}

// TestLossCountersOnRegistry forces both of the journal's data-loss modes
// and asserts they surface on the wired obs registry: a slow subscriber
// disconnect increments journal.dropped, a ring overwrite increments
// journal.overwritten.
func TestLossCountersOnRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	j := New("loss", Options{Capacity: 4, Obs: reg})
	// A 1-slot subscriber that is never read: the first emit fills the
	// buffer, the second finds it full and disconnects the subscriber.
	_, ch, cancel := j.Subscribe(1)
	defer cancel()
	j.EngineRound(1, 1)
	j.EngineRound(2, 2)
	if got := reg.Snapshot().Counters[obs.JournalDropped]; got != 1 {
		t.Fatalf("journal.dropped = %d after forced disconnect, want 1", got)
	}
	if _, open := <-ch; !open {
		// first buffered event; fine either way
	}
	// Overflow the 4-slot ring: 10 appends total leave 6 overwritten.
	for i := 3; i <= 10; i++ {
		j.EngineRound(i, i)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.JournalOverwritten]; got != 6 {
		t.Fatalf("journal.overwritten = %d, want 6", got)
	}
	if got := snap.Counters[obs.JournalDropped]; got != 1 {
		t.Fatalf("journal.dropped = %d after subscriber already gone, want still 1", got)
	}
}

// TestProfileSummaryEvent checks the profile.summary event round-trips
// through JSONL with its typed payload intact.
func TestProfileSummaryEvent(t *testing.T) {
	var buf bytes.Buffer
	j := New("p", Options{Sink: &buf})
	j.ProfileSummary(ProfileInfo{
		Algorithm:  "MagicSCM",
		EngineRuns: 42,
		Rules:      7,
		Attempted:  100,
		Derived:    90,
		NewFacts:   30,
		EvalNs:     12345,
		Walks:      42,
		WalkNs:     678,
		TopRules:   []TopRule{{Rule: "r0", Derived: 50, SelfNs: 999}},
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeProfileSummary || ev.Profile == nil {
		t.Fatalf("event = %+v", ev)
	}
	p := ev.Profile
	if p.Algorithm != "MagicSCM" || p.EngineRuns != 42 || p.Derived != 90 ||
		len(p.TopRules) != 1 || p.TopRules[0].SelfNs != 999 {
		t.Fatalf("payload lost fields: %+v", p)
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	j := New("c", Options{})
	_, _, cancel := j.Subscribe(1)
	cancel()
	cancel()
	j.Close()
	cancel()
}

func TestConcurrentEmitSnapshotSubscribe(t *testing.T) {
	j := New("conc", Options{Capacity: 64})
	var emitters, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			r := NewBatchRecorder(j, w)
			for i := 0; i < 2000; i++ {
				r.Observe(i % 17)
			}
			r.Flush()
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := j.Snapshot()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("snapshot not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
			_, ch, cancel := j.Subscribe(8)
			cancel()
			for range ch {
			}
		}
	}()
	emitters.Wait()
	close(stop)
	reader.Wait()

	// Totals across workers must cover every observation.
	totals := map[int]int{}
	for _, ev := range j.Snapshot() {
		if ev.Type == TypeRRBatch {
			totals[ev.RR.Worker] = ev.RR.TotalSets
		}
	}
	for w, n := range totals {
		if n != 2000 {
			t.Errorf("worker %d total = %d, want 2000", w, n)
		}
	}
}

func TestBatchRecorderAggregation(t *testing.T) {
	j := New("batch", Options{})
	r := NewBatchRecorder(j, 1)
	// 300 observations: one auto-flush at 256, 44 left for the manual one.
	for i := 0; i < 300; i++ {
		m := 2
		if i%3 == 0 {
			m = 0
		}
		r.Observe(m)
	}
	r.Flush()
	evs := j.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d batch events, want 2", len(evs))
	}
	b1, b2 := evs[0].RR, evs[1].RR
	if b1.Sets != 256 || b2.Sets != 44 {
		t.Fatalf("batch sizes %d/%d", b1.Sets, b2.Sets)
	}
	if b2.TotalSets != 300 {
		t.Fatalf("TotalSets = %d", b2.TotalSets)
	}
	wantMembers := 0
	for i := 0; i < 300; i++ {
		if i%3 != 0 {
			wantMembers += 2
		}
	}
	if b2.TotalMembers != wantMembers {
		t.Fatalf("TotalMembers = %d, want %d", b2.TotalMembers, wantMembers)
	}
	wantEmpty := 0
	for i := 256; i < 300; i++ {
		if i%3 == 0 {
			wantEmpty++
		}
	}
	if b2.Empty != wantEmpty || b2.MaxLen != 2 {
		t.Fatalf("batch 2 = %+v", b2)
	}
	// Flushing an empty recorder emits nothing.
	r.Flush()
	if j.Len() != 2 {
		t.Fatal("empty flush emitted")
	}
}

func TestNewRunIDShape(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("ids %q %q", a, b)
	}
	if a == b {
		t.Fatal("collision")
	}
	if j := New("", Options{}); len(j.Run()) != 16 {
		t.Fatalf("auto run id %q", j.Run())
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("NaiveCM", 3, 100, true)
	b := Fingerprint("NaiveCM", 3, 100, true)
	c := Fingerprint("NaiveCM", 3, 101, true)
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if a == c {
		t.Fatal("fingerprint ignores inputs")
	}
	// Separator prevents field-boundary collisions.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint field boundaries collide")
	}
}

func TestFingerprintInputGolden(t *testing.T) {
	// Pinned hashes: the rendering of FingerprintInput.Hash may only change
	// together with a schema Version bump. If this test fails because the
	// rendering changed, bump fingerprintVersion and re-pin.
	zero := FingerprintInput{}
	if got, want := zero.Hash(), "69b0b8b7dd10ae66"; got != want {
		t.Fatalf("zero-value hash = %s, want %s", got, want)
	}
	full := FingerprintInput{
		Algorithm: "MagicSampledCM", Database: "db-hash", Program: "prog-hash",
		Target: "target-hash", K: 5, Candidates: 100, Targets: 40,
		ThetaExplicit: 400, ThetaFraction: 0.3, ThetaEpsilon: 0.1,
		ThetaDelta: 0.01, ThetaMaxAuto: 100000, Adaptive: false,
		Parallelism: 4, MaxSeedsPerRelation: 2, LazyGreedy: true,
		SIPS: "left-to-right", Plan: true, Prune: true,
	}
	if got, want := full.Hash(), "89de274bbbf08793"; got != want {
		t.Fatalf("full hash = %s, want %s", got, want)
	}
}

func TestFingerprintInputTypedFieldsCannotCollide(t *testing.T) {
	// The variadic Fingerprint's failure mode: the same bytes shifted across
	// a field boundary. With tagged fields this must be two distinct keys.
	a := FingerprintInput{Database: "ab", Program: "c"}
	b := FingerprintInput{Database: "a", Program: "bc"}
	if a.Hash() == b.Hash() {
		t.Fatal("field boundary collision across Database/Program")
	}
	// Same value in a different field is a different key.
	c := FingerprintInput{Database: "x"}
	d := FingerprintInput{Program: "x"}
	if c.Hash() == d.Hash() {
		t.Fatal("cross-field collision")
	}
	// Explicit current version and zero version agree (zero means current).
	e := FingerprintInput{Algorithm: "NaiveCM", Version: fingerprintVersion}
	f := FingerprintInput{Algorithm: "NaiveCM"}
	if e.Hash() != f.Hash() {
		t.Fatal("zero Version must default to the current schema version")
	}
	// A different version is a different key space.
	g := FingerprintInput{Algorithm: "NaiveCM", Version: fingerprintVersion + 1}
	if g.Hash() == f.Hash() {
		t.Fatal("version must partition the key space")
	}
}

func TestErrProxy(t *testing.T) {
	if got := ErrProxy(0, 100); got != 0 {
		t.Fatalf("ErrProxy(0,100) = %v", got)
	}
	if got := ErrProxy(10, 0); got != 0 {
		t.Fatalf("ErrProxy(10,0) = %v", got)
	}
	// Full coverage: proxy hits zero.
	if got := ErrProxy(100, 100); got != 0 {
		t.Fatalf("ErrProxy(100,100) = %v", got)
	}
	// More covered sets at the same fraction shrink the proxy.
	small, big := ErrProxy(10, 100), ErrProxy(100, 1000)
	if !(big < small) {
		t.Fatalf("proxy should shrink with scale: %v vs %v", small, big)
	}
}

func TestEmitAfterCloseDropped(t *testing.T) {
	j := New("closed", Options{})
	j.EngineRound(1, 1)
	j.Close()
	j.EngineRound(2, 2)
	if j.Len() != 1 {
		t.Fatalf("Len = %d after close", j.Len())
	}
	// Subscribe after close: replay works, channel closed.
	replay, ch, cancel := j.Subscribe(1)
	defer cancel()
	if len(replay) != 1 {
		t.Fatalf("replay = %d", len(replay))
	}
	if _, open := <-ch; open {
		t.Fatal("live channel open after close")
	}
}

package journal

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"contribmax/internal/obs"
)

// DefaultCapacity is the in-memory ring-buffer size when Options.Capacity
// is zero: enough to hold a full solve's worth of batched events for
// replay without unbounded growth on long runs.
const DefaultCapacity = 4096

// Options configures a Journal.
type Options struct {
	// Capacity bounds the in-memory ring buffer (DefaultCapacity if <= 0).
	// The sink, if any, still receives every event; only replay/Snapshot
	// forget the oldest entries past the cap.
	Capacity int
	// Sink, when non-nil, receives every event as one JSON line, in order,
	// under the journal lock (writes are serialized; wrap slow writers in
	// a bufio.Writer and flush on Close). Write errors are remembered and
	// reported by Close, not surfaced per-event.
	Sink io.Writer
	// Obs, when non-nil, surfaces the journal's two silent data-loss modes
	// as counters: journal.dropped (slow subscribers disconnected) and
	// journal.overwritten (ring-buffer entries evicted before replay).
	Obs *obs.Registry
}

// Journal is one run's event stream. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Journal struct {
	mu     sync.Mutex
	run    string
	start  time.Time
	seq    int64
	ring   []Event // capacity-bounded; logically ordered oldest..newest
	head   int     // index of the oldest element when full
	full   bool
	enc    *json.Encoder
	encErr error
	subs   map[int]*subscriber
	nextID int
	closed bool

	// dropped / overwritten are the pre-resolved loss counters (nil
	// handles no-op when Options.Obs was nil).
	dropped     *obs.Counter
	overwritten *obs.Counter
}

type subscriber struct {
	ch      chan Event
	dropped bool
}

// New opens a journal for the given run ID (NewRunID() if empty).
func New(runID string, opts Options) *Journal {
	if runID == "" {
		runID = NewRunID()
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	j := &Journal{
		run:         runID,
		start:       time.Now(),
		ring:        make([]Event, 0, capacity),
		subs:        make(map[int]*subscriber),
		dropped:     opts.Obs.Counter(obs.JournalDropped),
		overwritten: opts.Obs.Counter(obs.JournalOverwritten),
	}
	if opts.Sink != nil {
		j.enc = json.NewEncoder(opts.Sink)
	}
	return j
}

// Run returns the journal's run ID ("" for nil).
func (j *Journal) Run() string {
	if j == nil {
		return ""
	}
	return j.run
}

// append stamps and records one event. The payload pointers in ev must not
// be mutated by the caller afterwards.
func (j *Journal) append(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.seq++
	ev.Seq = j.seq
	ev.TNs = int64(time.Since(j.start))
	ev.Run = j.run
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.head] = ev
		j.head = (j.head + 1) % len(j.ring)
		j.full = true
		j.overwritten.Inc()
	}
	if j.enc != nil && j.encErr == nil {
		j.encErr = j.enc.Encode(ev)
	}
	for id, s := range j.subs {
		select {
		case s.ch <- ev:
		default:
			// A subscriber that cannot keep up is dropped rather than
			// allowed to block the solver: close its channel so the
			// consumer sees the stream end.
			s.dropped = true
			close(s.ch)
			delete(j.subs, id)
			j.dropped.Inc()
		}
	}
}

// Snapshot returns the buffered events, oldest first. The returned slice
// is a copy. Empty on a nil journal.
func (j *Journal) Snapshot() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Journal) snapshotLocked() []Event {
	out := make([]Event, 0, len(j.ring))
	if j.full {
		out = append(out, j.ring[j.head:]...)
		out = append(out, j.ring[:j.head]...)
	} else {
		out = append(out, j.ring...)
	}
	return out
}

// Len reports the number of buffered events (0 for nil).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.ring)
}

// Subscribe registers a live listener: it atomically returns the buffered
// history (replay, oldest first) and a channel that receives every event
// appended after it, with no gap between the two. The channel is closed
// when the journal closes or the subscriber falls more than buffer events
// behind (slow consumers are dropped, never allowed to block emitters).
// cancel unregisters; it is idempotent and safe after close. A nil
// journal returns (nil, closedChannel, no-op).
func (j *Journal) Subscribe(buffer int) (replay []Event, ch <-chan Event, cancel func()) {
	if buffer <= 0 {
		buffer = 64
	}
	if j == nil {
		c := make(chan Event)
		close(c)
		return nil, c, func() {}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = j.snapshotLocked()
	c := make(chan Event, buffer)
	if j.closed {
		close(c)
		return replay, c, func() {}
	}
	id := j.nextID
	j.nextID++
	sub := &subscriber{ch: c}
	j.subs[id] = sub
	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
	return replay, c, cancel
}

// Close seals the journal: subscriber channels are closed, further emits
// are dropped, and any sink write error is returned. Idempotent; nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.encErr
	}
	j.closed = true
	for id, s := range j.subs {
		close(s.ch)
		delete(j.subs, id)
	}
	return j.encErr
}

// SolveStart emits a solve.start event.
func (j *Journal) SolveStart(info SolveInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeSolveStart, Solve: &info})
}

// SolveFinish emits a solve.finish event.
func (j *Journal) SolveFinish(info FinishInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeSolveFinish, Finish: &info})
}

// EngineRound emits an engine.round event.
func (j *Journal) EngineRound(round, delta int) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeEngineRound, Round: &RoundInfo{Round: round, Delta: delta}})
}

// GraphBuild emits a graph.build event.
func (j *Journal) GraphBuild(nodes, edges int, d time.Duration) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeGraphBuild, Build: &BuildInfo{Nodes: nodes, Edges: edges, DurationNs: int64(d)}})
}

// RRBatch emits an rr.batch event.
func (j *Journal) RRBatch(info RRBatchInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeRRBatch, RR: &info})
}

// IMMRound emits an imm.round event.
func (j *Journal) IMMRound(info IMMInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeIMMRound, IMM: &info})
}

// PlanSummary emits a plan.summary event.
func (j *Journal) PlanSummary(info PlanInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypePlanSummary, Plan: &info})
}

// CacheSummary emits a cache.summary event.
func (j *Journal) CacheSummary(info CacheInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeCacheSummary, Cache: &info})
}

// EstimatorSummary emits an estimator.summary event.
func (j *Journal) EstimatorSummary(info EstInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeEstimatorSummary, Est: &info})
}

// ProfileSummary emits a profile.summary event.
func (j *Journal) ProfileSummary(info ProfileInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeProfileSummary, Profile: &info})
}

// SelectIter emits a select.iter event.
func (j *Journal) SelectIter(info IterInfo) {
	if j == nil {
		return
	}
	j.append(Event{Type: TypeSelectIter, Iter: &info})
}

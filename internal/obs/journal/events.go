// Package journal is the structured event stream of the CM pipeline: an
// append-only, bounded-buffer journal that every stage emits typed events
// into — solve start/finish with a config fingerprint, per-fixpoint-round
// delta sizes, per-RR-batch generation stats, IMM halving rounds, and
// per-CELF-iteration selection records. The in-memory tail lives in a ring
// buffer (replayable, subscribable for live progress); an optional sink
// receives every event as one JSON line (JSONL on disk).
//
// Like the rest of internal/obs, everything is nil-safe: a nil *Journal
// accepts every emit as a no-op, so instrumented code pays one pointer
// check when journaling is disabled and needs no conditional plumbing.
package journal

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
)

// EventType names one kind of journal event. The set is closed: consumers
// (cmjournal, the server SSE stream, the BENCH summarizer) switch on it.
type EventType string

const (
	// TypeSolveStart opens a run: algorithm, config fingerprint, instance
	// shape. Exactly one per solve.
	TypeSolveStart EventType = "solve.start"
	// TypeSolveFinish closes a run: seeds, coverage, estimate, duration,
	// error if any. Exactly one per solve.
	TypeSolveFinish EventType = "solve.finish"
	// TypeEngineRound is one semi-naive fixpoint round of a full-graph
	// build: round ordinal and delta size (new facts this round).
	TypeEngineRound EventType = "engine.round"
	// TypeGraphBuild records a completed full WD-graph construction
	// (NaiveCM, Magic^G CM; per-RR subgraph builds are too numerous and
	// are aggregated into rr.batch instead).
	TypeGraphBuild EventType = "graph.build"
	// TypeRRBatch is an aggregated slice of RR-set generation: one event
	// per ~batch of sets per worker, carrying batch and running totals.
	TypeRRBatch EventType = "rr.batch"
	// TypeIMMRound is one phase-1 halving round of adaptive (IMM-style)
	// sampling: the tested threshold x, the RR count spent, the estimate,
	// and the certified lower bound once found.
	TypeIMMRound EventType = "imm.round"
	// TypeSelectIter is one greedy/CELF selection iteration: the chosen
	// seed, its marginal gain, cumulative coverage, and a running ε-style
	// error proxy derived from RR coverage concentration.
	TypeSelectIter EventType = "select.iter"
	// TypePlanSummary summarizes the solve's join planning: plans built,
	// plan-cache hits, and atom positions reordered away from written
	// order. At most one per solve, emitted with the selection phase.
	TypePlanSummary EventType = "plan.summary"
	// TypeCacheSummary summarizes the solve's use of the solve cache: graph
	// and RR hit/miss counts and bytes reused. At most one per solve,
	// emitted right before solve.finish, and only when a cache is attached.
	TypeCacheSummary EventType = "cache.summary"
	// TypeEstimatorSummary summarizes an exact-tier or DNF-sampling solve:
	// lineage extraction totals, possible worlds sampled, and the fallback
	// reason when the tier rerouted to RIS sampling. At most one per
	// solve, emitted right before solve.finish by ExactCM / DNFCM.
	TypeEstimatorSummary EventType = "estimator.summary"
	// TypeProfileSummary summarizes the solve's runtime profile when one
	// was attached (cm.Options.Profile): engine/RR totals plus the top
	// rules by self-time. At most one per solve, emitted with the
	// selection phase; the full RuntimeProfile artifact is reported out of
	// band (cmrun -profile-json, SolveResponse.Profile).
	TypeProfileSummary EventType = "profile.summary"
)

// Event is the envelope every journal entry shares. Exactly one payload
// pointer (matching Type) is non-nil; the rest are omitted from JSON.
type Event struct {
	// Seq is the journal-local sequence number, starting at 1. Contiguous
	// within a run; gaps after a ring-buffer eviction are visible to
	// replay consumers.
	Seq int64 `json:"seq"`
	// TNs is nanoseconds since the journal was opened (monotonic,
	// per-run; subtractable across events of the same run).
	TNs int64 `json:"t_ns"`
	// Run is the run ID the event belongs to (see NewRunID).
	Run string `json:"run"`
	// Type discriminates the payload.
	Type EventType `json:"type"`

	Solve   *SolveInfo   `json:"solve,omitempty"`
	Finish  *FinishInfo  `json:"finish,omitempty"`
	Round   *RoundInfo   `json:"round,omitempty"`
	Build   *BuildInfo   `json:"build,omitempty"`
	RR      *RRBatchInfo `json:"rr,omitempty"`
	IMM     *IMMInfo     `json:"imm,omitempty"`
	Iter    *IterInfo    `json:"iter,omitempty"`
	Plan    *PlanInfo    `json:"plan,omitempty"`
	Cache   *CacheInfo   `json:"cache,omitempty"`
	Est     *EstInfo     `json:"est,omitempty"`
	Profile *ProfileInfo `json:"profile,omitempty"`
}

// SolveInfo is the solve.start payload.
type SolveInfo struct {
	Algorithm string `json:"algorithm"`
	// Fingerprint hashes the effective solve configuration (see
	// Fingerprint); two runs with equal fingerprints answered the same
	// question with the same knobs.
	Fingerprint string `json:"fingerprint"`
	K           int    `json:"k"`
	Candidates  int    `json:"candidates"`
	Targets     int    `json:"targets"`
	// Theta is the resolved RR-set count; 0 in adaptive mode (the count
	// is discovered online and reported by solve.finish / imm.round).
	Theta       int  `json:"theta"`
	Adaptive    bool `json:"adaptive,omitempty"`
	Parallelism int  `json:"parallelism,omitempty"`
}

// FinishInfo is the solve.finish payload.
type FinishInfo struct {
	Algorithm string `json:"algorithm"`
	// Seeds are the selected facts in greedy order, rendered as ground
	// atoms.
	Seeds           []string `json:"seeds"`
	CoveredRR       int      `json:"covered_rr"`
	NumRR           int      `json:"num_rr"`
	EstContribution float64  `json:"est_contribution"`
	DurationNs      int64    `json:"duration_ns"`
	Err             string   `json:"err,omitempty"`
}

// RoundInfo is the engine.round payload.
type RoundInfo struct {
	// Round is 1-based within one fixpoint evaluation.
	Round int `json:"round"`
	// Delta is the number of new facts derived this round.
	Delta int `json:"delta"`
}

// BuildInfo is the graph.build payload.
type BuildInfo struct {
	Nodes      int   `json:"nodes"`
	Edges      int   `json:"edges"`
	DurationNs int64 `json:"duration_ns"`
}

// RRBatchInfo is the rr.batch payload: one flushed batch of RR-set
// generation from one worker, with running per-worker totals.
type RRBatchInfo struct {
	// Worker identifies the generating goroutine (0 for sequential).
	Worker int `json:"worker"`
	// Sets / Members / Empty / MaxLen describe this batch alone.
	Sets    int `json:"sets"`
	Members int `json:"members"`
	Empty   int `json:"empty,omitempty"`
	MaxLen  int `json:"max_len"`
	// TotalSets / TotalMembers are this worker's running totals after the
	// batch (sum across workers for the global curve).
	TotalSets    int `json:"total_sets"`
	TotalMembers int `json:"total_members"`
	// ElapsedNs is wall time covered by the batch (first to last set).
	ElapsedNs int64 `json:"elapsed_ns"`
}

// IMMInfo is the imm.round payload.
type IMMInfo struct {
	// Round is the 1-based phase-1 halving round.
	Round int `json:"round"`
	// X is the OPT threshold tested this round.
	X float64 `json:"x"`
	// Theta is the cumulative RR-set count after this round.
	Theta int `json:"theta"`
	// Est is the round's coverage-based contribution estimate.
	Est float64 `json:"est"`
	// LB is the certified lower bound once established (0 until then).
	LB float64 `json:"lb,omitempty"`
}

// IterInfo is the select.iter payload.
type IterInfo struct {
	// I is the 0-based selection iteration.
	I int `json:"i"`
	// Seed is the chosen candidate, rendered as a ground atom.
	Seed string `json:"seed"`
	// Gain is the marginal number of RR sets newly covered.
	Gain int `json:"gain"`
	// Covered is the cumulative number of covered RR sets.
	Covered int `json:"covered"`
	// Coverage is Covered/θ — the fraction driving the RIS estimate.
	Coverage float64 `json:"coverage"`
	// ErrProxy is a running ε-style error proxy from coverage
	// concentration: sqrt((1-Coverage)/Covered), shrinking as coverage
	// concentrates (0 when nothing is covered yet — no information).
	ErrProxy float64 `json:"err_proxy"`
}

// PlanInfo is the plan.summary payload: the solve-wide join-planning
// totals. A high Hits/Built ratio on the Magic variants means the adorned
// rule families replanned once and every later per-RR engine compilation
// reused the cached plans.
type PlanInfo struct {
	// Built counts plans computed (cache misses).
	Built int64 `json:"built"`
	// Hits counts plans served from the shape-keyed cache.
	Hits int64 `json:"hits"`
	// Reordered counts plan positions that deviate from written body
	// order, summed over built plans.
	Reordered int64 `json:"reordered"`
}

// CacheInfo is the cache.summary payload: how the solve interacted with
// the attached solve cache.
type CacheInfo struct {
	// GraphHits / GraphMisses count WD-graph cache lookups this solve made.
	GraphHits   int64 `json:"graph_hits"`
	GraphMisses int64 `json:"graph_misses"`
	// RRHits / RRMisses count RR-collection cache lookups.
	RRHits   int64 `json:"rr_hits"`
	RRMisses int64 `json:"rr_misses"`
	// BytesReused is the resident size of cached entries this solve reused
	// instead of recomputing.
	BytesReused int64 `json:"bytes_reused,omitempty"`
}

// EstInfo is the estimator.summary payload: the exact-tier / DNF-sampler
// telemetry of one solve.
type EstInfo struct {
	// Algorithm is the answering solver ("ExactCM", "DNFCM", or the
	// fallback's name when the tier rerouted).
	Algorithm string `json:"algorithm"`
	// Targets counts targets with a derivable lineage; Clauses / Vars the
	// normalized clause and variable totals over their DNFs.
	Targets int `json:"targets"`
	Clauses int `json:"clauses"`
	Vars    int `json:"vars"`
	// LineageNs is wall time spent extracting reachability lineages.
	LineageNs int64 `json:"lineage_ns"`
	// Samples counts sampled possible worlds (DNFCM only, 0 for exact).
	Samples int `json:"samples,omitempty"`
	// Fallback names why the solve rerouted to RIS sampling ("" when the
	// tier answered).
	Fallback string `json:"fallback,omitempty"`
}

// ProfileInfo is the profile.summary payload: the headline numbers of the
// solve's runtime profile. Counts are deterministic (identical at every
// Parallelism level); the *Ns fields are wall times and are not.
type ProfileInfo struct {
	Algorithm string `json:"algorithm"`
	// EngineRuns counts fixpoint evaluations profiled (1 for full-graph
	// algorithms, ~θ for the per-tuple Magic variants); Rules counts
	// distinct rule families that participated.
	EngineRuns int64 `json:"engine_runs"`
	Rules      int   `json:"rules"`
	// Attempted / Derived / NewFacts are the engine totals: fully matched
	// instantiations (pre-gate), fired instantiations (== the
	// engine.instantiations counter), and first derivations.
	Attempted int64 `json:"attempted"`
	Derived   int64 `json:"derived"`
	NewFacts  int64 `json:"new_facts"`
	// EarlyVetoes counts partial bindings cut by planner-hoisted checks.
	EarlyVetoes int64 `json:"early_vetoes,omitempty"`
	// EvalNs is the summed per-rule pass self time.
	EvalNs int64 `json:"eval_ns"`
	// Walks / WalkNs total the RR-phase reverse walks.
	Walks  int64 `json:"walks,omitempty"`
	WalkNs int64 `json:"walk_ns,omitempty"`
	// TopRules lists the hottest rules by self-time (bounded).
	TopRules []TopRule `json:"top_rules,omitempty"`
}

// TopRule is one hot rule in a profile.summary event.
type TopRule struct {
	Rule    string `json:"rule"`
	Derived int64  `json:"derived"`
	SelfNs  int64  `json:"self_ns"`
}

// NewRunID returns a fresh 16-hex-digit run identifier. IDs are random
// (crypto/rand), not sequential, so concurrent processes cannot collide.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a fixed
		// marker rather than panicking an otherwise-healthy solve.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// FingerprintInput is the typed, versioned input of a solve fingerprint.
// Every field is hashed as a tagged, length-prefixed record, so two inputs
// differing in which field holds a value can never collide — the failure
// mode of the old variadic Fingerprint, where ("a", "bc") and ("ab", "c")
// hashed the same formatted stream. The zero value of a field still
// participates (tag plus empty/zero rendering), keeping the schema
// positionless but fixed.
type FingerprintInput struct {
	// Version names the hash schema; bump when fields are added or
	// reinterpreted so old and new fingerprints cannot be confused.
	// FillDefaults sets it; zero means "current".
	Version int

	// Identity of what was solved.
	Algorithm string // solver name, e.g. "MagicSampledCM"
	Database  string // database content identity (db.Fingerprint or a caller hash)
	Program   string // program content identity
	Target    string // hashed target list (order-sensitive)
	K         int

	// Instance shape.
	Candidates int
	Targets    int

	// Configuration knobs. Fields that only affect speed still participate
	// — the fingerprint identifies the full effective configuration.
	ThetaExplicit       int
	ThetaFraction       float64
	ThetaEpsilon        float64
	ThetaDelta          float64
	ThetaMaxAuto        int
	Adaptive            bool
	Parallelism         int
	MaxSeedsPerRelation int
	LazyGreedy          bool
	SIPS                string
	Plan                bool
	Prune               bool
}

// fingerprintVersion is the current FingerprintInput schema version.
const fingerprintVersion = 2

// Hash renders the input as tagged length-prefixed records and returns the
// FNV-1a 64 fingerprint. The rendering is pinned by golden tests: it may
// only change together with a Version bump.
func (in FingerprintInput) Hash() string {
	if in.Version == 0 {
		in.Version = fingerprintVersion
	}
	h := fnv.New64a()
	field := func(tag, val string) {
		fmt.Fprintf(h, "%s=%d:%s\x1f", tag, len(val), val)
	}
	field("v", fmt.Sprintf("%d", in.Version))
	field("algo", in.Algorithm)
	field("db", in.Database)
	field("prog", in.Program)
	field("target", in.Target)
	field("k", fmt.Sprintf("%d", in.K))
	field("cands", fmt.Sprintf("%d", in.Candidates))
	field("targets", fmt.Sprintf("%d", in.Targets))
	field("theta", fmt.Sprintf("%d", in.ThetaExplicit))
	field("frac", fmt.Sprintf("%g", in.ThetaFraction))
	field("eps", fmt.Sprintf("%g", in.ThetaEpsilon))
	field("delta", fmt.Sprintf("%g", in.ThetaDelta))
	field("maxauto", fmt.Sprintf("%d", in.ThetaMaxAuto))
	field("adaptive", fmt.Sprintf("%t", in.Adaptive))
	field("par", fmt.Sprintf("%d", in.Parallelism))
	field("maxseeds", fmt.Sprintf("%d", in.MaxSeedsPerRelation))
	field("lazy", fmt.Sprintf("%t", in.LazyGreedy))
	field("sips", in.SIPS)
	field("plan", fmt.Sprintf("%t", in.Plan))
	field("prune", fmt.Sprintf("%t", in.Prune))
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint hashes an ad-hoc part list (FNV-1a over length-prefixed
// renderings, so adjacent parts cannot blur into each other).
//
// Deprecated: solve fingerprints should use FingerprintInput.Hash, whose
// typed fields also rule out collisions across part orderings. Fingerprint
// remains for ad-hoc callers with genuinely positional data.
func Fingerprint(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		s := fmt.Sprintf("%v", p)
		fmt.Fprintf(h, "%d:%s\x1f", len(s), s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ErrProxy computes the ε-style error proxy for a selection state with
// covered RR sets out of theta total: sqrt((1-f)/covered) with
// f = covered/theta. Intuition: the RIS estimate's relative deviation
// concentrates like 1/sqrt(covered), scaled by how much coverage is still
// missing. Returns 0 when covered or theta is 0.
func ErrProxy(covered, theta int) float64 {
	if covered <= 0 || theta <= 0 {
		return 0
	}
	f := float64(covered) / float64(theta)
	if f > 1 {
		f = 1
	}
	return math.Sqrt((1 - f) / float64(covered))
}

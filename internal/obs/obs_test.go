package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"contribmax/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Error("counter handle not stable across lookups")
	}
	g := r.Gauge("b")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 106 {
		t.Errorf("count/sum = %d/%d, want 5/106", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("min/max = %d/%d, want 0/100", s.Min, s.Max)
	}
	if s.Avg != 106.0/5 {
		t.Errorf("avg = %g", s.Avg)
	}
	// p99 must land in the bucket containing 100 ([64, 128)), whose
	// geometric midpoint is ~90.5; the estimate is within a factor sqrt(2).
	if s.P99 < 64 || s.P99 > 128 {
		t.Errorf("p99 = %g, want within [64, 128]", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: %g %g %g", s.P50, s.P90, s.P99)
	}
}

func TestNilRegistryIsSafeAndFree(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// The disabled hot path must not allocate (this is the zero-cost
	// guarantee the solvers rely on).
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(42)
	}); n != 0 {
		t.Errorf("nil-handle ops allocated %v times per run", n)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil handles must read as zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEnabledHotPathDoesNotAllocate(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(123)
	}); n != 0 {
		t.Errorf("enabled hot path allocated %v times per run", n)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("hist").Observe(int64(i))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestWriteJSONIsExpvarStyle(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("cm.solves").Add(3)
	r.Gauge("server.inflight").Set(1)
	r.Histogram("rr.members").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if flat["cm.solves"] != float64(3) {
		t.Errorf("cm.solves = %v", flat["cm.solves"])
	}
	hist, ok := flat["rr.members"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("rr.members = %v", flat["rr.members"])
	}
	if _, ok := flat["uptime_seconds"]; !ok {
		t.Error("missing uptime_seconds")
	}
}

// TestUpdateGoRuntime checks the scrape-path runtime gauges: live values
// on a real registry, no-op on nil, and Prometheus exposition under the
// sanitized go_* names.
func TestUpdateGoRuntime(t *testing.T) {
	var nilReg *obs.Registry
	nilReg.UpdateGoRuntime()

	r := obs.NewRegistry()
	r.UpdateGoRuntime()
	snap := r.Snapshot()
	if g := snap.Gauges[obs.GoGoroutines]; g < 1 {
		t.Errorf("go.goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauges[obs.GoHeapBytes]; g <= 0 {
		t.Errorf("go.heap_bytes = %d, want > 0", g)
	}
	if g := snap.Gauges[obs.GoGCPauses]; g < 0 {
		t.Errorf("go.gc_pauses = %d, want >= 0", g)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# TYPE go_goroutines gauge", "# TYPE go_heap_bytes gauge", "# TYPE go_gc_pauses gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

func TestSpanTree(t *testing.T) {
	root := obs.StartSpan("solve")
	build := root.StartChild("build")
	build.SetAttr("nodes", 42)
	build.End()
	rr := root.StartChild("rrgen")
	rr.SetAttr("rr", 100)
	rr.SetAttr("rr", 200) // overwrite
	rr.End()
	root.End()
	root.Dur = 5 * time.Millisecond // deterministic rendering

	if v, ok := rr.Attr("rr"); !ok || v != 200 {
		t.Errorf("attr rr = %d, %v", v, ok)
	}
	if root.Find("build") != build || root.Find("nope") != nil {
		t.Error("Find misbehaved")
	}
	var buf bytes.Buffer
	root.Render(&buf)
	out := buf.String()
	for _, want := range []string{"solve", "  build", "nodes=42", "rr=200", "5.0ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *obs.Span
	child := s.StartChild("x")
	if child != nil {
		t.Fatal("nil span must return nil children")
	}
	child.SetAttr("k", 1)
	child.End()
	if _, ok := child.Attr("k"); ok {
		t.Error("nil span attr must be absent")
	}
	var buf bytes.Buffer
	child.Render(&buf)
	if buf.Len() != 0 {
		t.Error("nil span rendered output")
	}
	if n := testing.AllocsPerRun(100, func() {
		c := s.StartChild("y")
		c.SetAttr("k", 1)
		c.End()
	}); n != 0 {
		t.Errorf("nil span ops allocated %v times per run", n)
	}
}

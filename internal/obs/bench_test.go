package obs_test

import (
	"testing"

	"contribmax/internal/obs"
)

// The benchmarks pair every enabled metric operation with its disabled
// (nil-handle) twin, quantifying the cost a solver pays per increment with
// observability on, and proving the nil fast path is a bare pointer check.

func BenchmarkCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *obs.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *obs.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	r := obs.NewRegistry()
	r.Counter("rr.sets")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("rr.sets")
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := obs.NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

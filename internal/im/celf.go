package im

import "container/heap"

// GreedyCELF is the lazy-evaluation variant of the greedy maximum-coverage
// selection (CELF, Leskovec et al.): marginal gains are kept in a max-heap
// and re-evaluated only when a stale entry surfaces, exploiting the
// submodularity of coverage (gains only shrink). It returns exactly the
// same selection as Greedy (including tie-breaking toward lower candidate
// ids) but touches far fewer candidates per pick on skewed instances —
// the common case for CM, where a few input tuples dominate the coverage.
func GreedyCELF(c *RRCollection, k int) GreedyResult {
	c.Finalize()
	n := c.numCandidates
	if k > n {
		k = n
	}
	coveredSet := make([]bool, c.Len())

	// freshGain recomputes the current marginal gain of cand.
	freshGain := func(cand int) int {
		g := 0
		for _, si := range c.MemberOf(CandidateID(cand)) {
			if !coveredSet[si] {
				g++
			}
		}
		return g
	}

	h := make(gainHeap, n)
	for cand := 0; cand < n; cand++ {
		h[cand] = gainEntry{cand: int32(cand), gain: int32(c.Degree(CandidateID(cand))), round: 0}
	}
	heap.Init(&h)

	res := GreedyResult{}
	round := int32(0)
	for len(res.Seeds) < k && h.Len() > 0 {
		top := h[0]
		if top.round != round {
			// Stale: recompute and push back.
			h[0].gain = int32(freshGain(int(top.cand)))
			h[0].round = round
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		res.Seeds = append(res.Seeds, CandidateID(top.cand))
		res.Gains = append(res.Gains, int(top.gain))
		res.Covered += int(top.gain)
		for _, si := range c.MemberOf(CandidateID(top.cand)) {
			coveredSet[si] = true
		}
		round++
	}
	// Pad with zero-gain candidates, matching Greedy's contract.
	if len(res.Seeds) < k {
		selected := make([]bool, n)
		for _, s := range res.Seeds {
			selected[s] = true
		}
		for cand := 0; cand < n && len(res.Seeds) < k; cand++ {
			if !selected[cand] {
				res.Seeds = append(res.Seeds, CandidateID(cand))
				res.Gains = append(res.Gains, 0)
			}
		}
	}
	return res
}

// gainEntry is a CELF heap entry: a candidate with the gain computed at
// `round` selections; entries from older rounds are stale upper bounds.
type gainEntry struct {
	cand  int32
	gain  int32
	round int32
}

// gainHeap orders by gain descending, breaking ties toward lower candidate
// ids so CELF's selection matches Greedy's exactly.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].cand < h[j].cand
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

package im

import (
	"math"
)

// ThetaSpec selects the number of RR sets to generate.
//
// The paper's experiments size θ as a fraction of |T2| (default 30%,
// Section V-A); RIS theory sizes it from the required error ε and failure
// probability δ plus graph-size upper bounds (Remark 2). Both policies are
// supported:
//
//   - if Explicit > 0 it wins;
//   - else if Auto is set, the TIM-style bound is used (capped by MaxAuto
//     if positive, since the theoretical constants are very conservative);
//   - else Fraction of the target-set size is used (0 means the default
//     0.3).
type ThetaSpec struct {
	Explicit int
	Fraction float64
	// Min floors the fraction-based count; useful when |T2| is small (the
	// paper's fraction policy assumes |T2| ≈ 100). Ignored by Explicit
	// and Auto.
	Min     int
	Auto    bool
	Epsilon float64 // default 0.1
	Delta   float64 // default 1/n for universe size n
	MaxAuto int
}

// DefaultFraction is the default number of RR sets as a fraction of |T2|,
// the paper's experimental setting.
const DefaultFraction = 0.3

// Theta resolves the spec for a problem with numCandidates possible seeds
// (|T1|), numTargets target tuples (|T2|), and seed-set size k. The result
// is always at least 1.
func (s ThetaSpec) Theta(numCandidates, numTargets, k int) int {
	if s.Explicit > 0 {
		return s.Explicit
	}
	if s.Auto {
		t := timBound(numCandidates, numTargets, k, s.epsilon(), s.delta(numCandidates))
		if s.MaxAuto > 0 && t > s.MaxAuto {
			t = s.MaxAuto
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	f := s.Fraction
	if f <= 0 {
		f = DefaultFraction
	}
	t := int(math.Round(f * float64(numTargets)))
	if t < s.Min {
		t = s.Min
	}
	if t < 1 {
		t = 1
	}
	return t
}

func (s ThetaSpec) epsilon() float64 {
	if s.Epsilon > 0 {
		return s.Epsilon
	}
	return 0.1
}

func (s ThetaSpec) delta(n int) float64 {
	if s.Delta > 0 {
		return s.Delta
	}
	if n < 2 {
		n = 2
	}
	return 1 / float64(n)
}

// timBound is the TIM-style sample-count bound θ = (8+2ε)·m·(ln(1/δ) +
// ln C(n,k) + ln 2)/(OPT·ε²) with the unknown OPT lower-bounded by 1
// (every target contributes at least one derivation tree rooted in T1 when
// the instance is non-trivial), n = |T1| and m = |T2|. Since the WD graph
// is not materialized by the Magic variants, m serves as the upper bound on
// the number of "target nodes" (Remark 2); generating more sets than needed
// only tightens the approximation.
func timBound(n, m, k int, eps, delta float64) int {
	if n < 1 || m < 1 {
		return 1
	}
	if k > n {
		k = n
	}
	lam := (8 + 2*eps) * float64(m) * (math.Log(1/delta) + lnChoose(n, k) + math.Ln2) / (eps * eps)
	if lam > 1e9 {
		return 1 << 30
	}
	return int(math.Ceil(lam))
}

// lnChoose returns ln C(n, k) via log-gamma.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

package im

import (
	"math"

	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
)

// RRGenerator produces one random RR set (candidate ids, possibly empty).
// The CM algorithms supply generators that hide how the set is produced —
// a reverse walk over the materialized WD graph for NaiveCM, a per-tuple
// Magic-Sets construction for the Magic variants.
type RRGenerator func() []CandidateID

// IMMParams parameterizes the adaptive sampling of IMM (Tang, Shi, Xiao:
// "Influence Maximization in Near-Linear Time", adapted to the targeted CM
// setting): the number of RR sets is derived from a statistically tested
// lower bound on OPT rather than fixed in advance — the paper's Remark 2
// policy, with the unknown graph size replaced by the |T2| upper bound.
type IMMParams struct {
	// Epsilon is the additive approximation error (default 0.1).
	Epsilon float64
	// Delta is the failure probability (default 1/NumTargets).
	Delta float64
	// NumTargets is |T2|, the influence normalizer.
	NumTargets int
	// NumCandidates is |T1|, sizing the union bound over seed sets.
	NumCandidates int
	// K is the seed-set size.
	K int
	// MaxRR caps the total number of generated RR sets (0 = 100·|T2|,
	// a pragmatic bound since the theoretical constants are conservative).
	MaxRR int
	// Obs, when non-nil, receives the adaptive-phase metrics (imm.*
	// counters: runs, phase-1 halving rounds, RR sets per phase).
	Obs *obs.Registry
	// Journal, when non-nil, receives one imm.round event per phase-1
	// halving round (threshold tested, cumulative θ, estimate, and the
	// lower bound once certified) — the convergence trace of Remark 2's
	// adaptive sampling.
	Journal *journal.Journal
}

func (p *IMMParams) fill() {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.1
	}
	if p.Delta <= 0 {
		n := p.NumTargets
		if n < 2 {
			n = 2
		}
		p.Delta = 1 / float64(n)
	}
	if p.MaxRR <= 0 {
		p.MaxRR = 100 * p.NumTargets
		if p.MaxRR < 1000 {
			p.MaxRR = 1000
		}
	}
	if p.K > p.NumCandidates {
		p.K = p.NumCandidates
	}
}

// IMMStats reports what the adaptive phase did.
type IMMStats struct {
	// Phase1RR is the number of RR sets generated while bounding OPT.
	Phase1RR int
	// TotalRR is the final collection size.
	TotalRR int
	// LowerBound is the certified lower bound on OPT.
	LowerBound float64
	// Capped reports that MaxRR stopped generation before the theoretical
	// count was reached (the result is still a valid greedy solution, with
	// a looser guarantee).
	Capped bool
}

// IMM runs the two-phase adaptive RIS scheme: phase 1 halves a guess x of
// OPT until a greedy solution over the sets generated so far certifies
// OPT ≥ x (yielding lower bound LB); phase 2 tops up to θ = λ*/LB sets.
// It returns the collection, the final greedy result over it, and stats.
func IMM(gen RRGenerator, p IMMParams) (*RRCollection, GreedyResult, IMMStats) {
	p.fill()
	var stats IMMStats
	coll := NewRRCollection(p.NumCandidates)
	nT := float64(p.NumTargets)

	generateTo := func(target int) {
		if target > p.MaxRR {
			target = p.MaxRR
			stats.Capped = true
		}
		for coll.Len() < target {
			coll.Add(gen())
		}
	}

	lnDeltaInv := math.Log(1 / p.Delta)
	logN := math.Log2(nT)
	if logN < 1 {
		logN = 1
	}
	epsPrime := math.Sqrt2 * p.Epsilon
	lambdaPrime := (2 + 2*epsPrime/3) *
		(lnChoose(p.NumCandidates, p.K) + lnDeltaInv + math.Log(logN)) *
		nT / (epsPrime * epsPrime)

	// Phase 1: find a lower bound on OPT.
	lb := 1.0
	for i := 1; float64(i) <= logN-1; i++ {
		p.Obs.Counter(obs.IMMRounds).Inc()
		x := nT / math.Pow(2, float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		generateTo(thetaI)
		res := Greedy(coll, p.K)
		est := nT * float64(res.Covered) / float64(coll.Len())
		certified := est >= (1+epsPrime)*x
		if certified {
			lb = est / (1 + epsPrime)
		}
		if p.Journal != nil {
			ev := journal.IMMInfo{Round: i, X: x, Theta: coll.Len(), Est: est}
			if certified {
				ev.LB = lb
			}
			p.Journal.IMMRound(ev)
		}
		if certified || stats.Capped {
			break
		}
	}
	stats.Phase1RR = coll.Len()
	stats.LowerBound = lb

	// Phase 2: top up to the certified count.
	alpha := math.Sqrt(lnDeltaInv + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (lnChoose(p.NumCandidates, p.K) + lnDeltaInv + math.Ln2))
	lambdaStar := 2 * nT * math.Pow((1-1/math.E)*alpha+beta, 2) / (p.Epsilon * p.Epsilon)
	generateTo(int(math.Ceil(lambdaStar / lb)))
	stats.TotalRR = coll.Len()
	if reg := p.Obs; reg != nil {
		reg.Counter(obs.IMMRuns).Inc()
		reg.Counter(obs.IMMPhase1).Add(int64(stats.Phase1RR))
		reg.Counter(obs.IMMTotalRR).Add(int64(stats.TotalRR))
	}

	return coll, Greedy(coll, p.K), stats
}

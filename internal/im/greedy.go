package im

// GreedyResult is the outcome of the greedy maximum-coverage phase.
type GreedyResult struct {
	// Seeds are the selected candidates, in selection order. Fewer than k
	// are returned when additional picks would add zero marginal coverage
	// and no positive-gain candidate remains, or when the universe is
	// smaller than k.
	Seeds []CandidateID
	// Gains[i] is the marginal number of RR sets newly covered by Seeds[i].
	Gains []int
	// Covered is the total number of covered RR sets.
	Covered int
}

// GreedyPartition runs the greedy maximum-coverage selection under a
// partition-matroid constraint: candidates are partitioned into groups
// (group[c] is candidate c's group id) and at most maxPerGroup seeds may
// come from any one group. This implements the diversification constraint
// the paper's conclusions propose as future work ("require that every
// selected database tuple will come from a different table" — groups = the
// tuples' relations, maxPerGroup = 1). Greedy under a partition matroid
// retains a 1/2-approximation of the constrained optimum.
//
// Candidates from saturated groups are skipped; when every remaining
// positive-gain candidate is blocked, remaining seats are filled with
// zero-gain candidates from unsaturated groups (fewer than k seeds are
// returned if the matroid itself cannot supply k).
func GreedyPartition(c *RRCollection, k int, group []int32, maxPerGroup int) GreedyResult {
	if maxPerGroup <= 0 {
		return Greedy(c, k)
	}
	c.Finalize()
	n := c.numCandidates
	if k > n {
		k = n
	}
	deg := make([]int, n)
	for cand := 0; cand < n; cand++ {
		deg[cand] = c.Degree(CandidateID(cand))
	}
	coveredSet := make([]bool, c.Len())
	selected := make([]bool, n)
	groupCount := map[int32]int{}
	groupOf := func(cand int) int32 {
		if cand < len(group) {
			return group[cand]
		}
		return -1
	}

	res := GreedyResult{}
	for len(res.Seeds) < k {
		best, bestDeg := -1, -1
		for cand := 0; cand < n; cand++ {
			if selected[cand] || groupCount[groupOf(cand)] >= maxPerGroup {
				continue
			}
			if deg[cand] > bestDeg {
				best, bestDeg = cand, deg[cand]
			}
		}
		if best < 0 {
			break // matroid exhausted
		}
		selected[best] = true
		groupCount[groupOf(best)]++
		res.Seeds = append(res.Seeds, CandidateID(best))
		res.Gains = append(res.Gains, bestDeg)
		res.Covered += bestDeg
		for _, si := range c.MemberOf(CandidateID(best)) {
			if coveredSet[si] {
				continue
			}
			coveredSet[si] = true
			for _, m := range c.Set(int(si)) {
				deg[m]--
			}
		}
	}
	return res
}

// Greedy runs the classic greedy algorithm for maximum coverage over the RR
// sets: repeatedly pick the candidate covering the most not-yet-covered
// sets. This achieves the optimal (1 - 1/e) approximation of the coverage
// function, which the RIS analysis lifts to the contribution function.
//
// Ties break toward the lower candidate id, making selection deterministic
// given the RR sets.
//
// When fewer than k candidates have positive marginal gain, the remaining
// seats are filled with arbitrary unselected candidates (zero gain), since
// a k-set is what the CM problem asks for; Gains records the zeros.
func Greedy(c *RRCollection, k int) GreedyResult {
	c.Finalize()
	n := c.numCandidates
	if k > n {
		k = n
	}
	deg := make([]int, n)
	for cand := 0; cand < n; cand++ {
		deg[cand] = c.Degree(CandidateID(cand))
	}
	coveredSet := make([]bool, c.Len())
	selected := make([]bool, n)

	res := GreedyResult{}
	for len(res.Seeds) < k {
		best, bestDeg := -1, -1
		for cand := 0; cand < n; cand++ {
			if selected[cand] {
				continue
			}
			if deg[cand] > bestDeg {
				best, bestDeg = cand, deg[cand]
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		res.Seeds = append(res.Seeds, CandidateID(best))
		res.Gains = append(res.Gains, bestDeg)
		res.Covered += bestDeg
		for _, si := range c.MemberOf(CandidateID(best)) {
			if coveredSet[si] {
				continue
			}
			coveredSet[si] = true
			for _, m := range c.Set(int(si)) {
				deg[m]--
			}
		}
	}
	return res
}

// Package im implements the Influence Maximization machinery the CM
// algorithms are built on: storage for Reverse Reachable (RR) sets, the
// greedy maximum-coverage selection of the RIS framework, and the choice of
// the number of RR sets to generate (θ).
//
// The targeted-IM adjustment of Section IV-A — seeds restricted to T1 and
// RR roots drawn from T2 — is realized by the callers: they generate RR
// sets rooted at T2 tuples and filter members to T1 candidates before
// adding them here.
package im

// CandidateID indexes the candidate universe (the set T1). Candidates are
// dense ids assigned by the caller.
type CandidateID int32

// RRCollection accumulates RR sets over a fixed candidate universe.
type RRCollection struct {
	numCandidates int
	sets          [][]CandidateID
	totalMembers  int64
}

// NewRRCollection returns an empty collection over numCandidates
// candidates.
func NewRRCollection(numCandidates int) *RRCollection {
	return &RRCollection{numCandidates: numCandidates}
}

// Add appends one RR set. Empty sets are legal (an RR walk that reached no
// candidate) and count toward the total; they can never be covered, which
// correctly lowers the coverage-based contribution estimate. Add keeps its
// own copy of members.
func (c *RRCollection) Add(members []CandidateID) {
	set := make([]CandidateID, len(members))
	copy(set, members)
	c.sets = append(c.sets, set)
	c.totalMembers += int64(len(members))
}

// Len returns the number of RR sets added.
func (c *RRCollection) Len() int { return len(c.sets) }

// NumCandidates returns the size of the candidate universe.
func (c *RRCollection) NumCandidates() int { return c.numCandidates }

// TotalMembers returns the summed size of all RR sets.
func (c *RRCollection) TotalMembers() int64 { return c.totalMembers }

// Set returns the i-th RR set. The slice is internal; do not modify.
func (c *RRCollection) Set(i int) []CandidateID { return c.sets[i] }

// CoverageOf returns how many RR sets contain at least one member of seeds.
// It is the coverage function F_R(S) of the RIS framework; the contribution
// estimate is |T2| * CoverageOf(S) / Len().
func (c *RRCollection) CoverageOf(seeds []CandidateID) int {
	inSeed := make([]bool, c.numCandidates)
	for _, s := range seeds {
		inSeed[s] = true
	}
	covered := 0
	for _, set := range c.sets {
		for _, m := range set {
			if inSeed[m] {
				covered++
				break
			}
		}
	}
	return covered
}

// Package im implements the Influence Maximization machinery the CM
// algorithms are built on: storage for Reverse Reachable (RR) sets, the
// greedy maximum-coverage selection of the RIS framework, and the choice of
// the number of RR sets to generate (θ).
//
// The targeted-IM adjustment of Section IV-A — seeds restricted to T1 and
// RR roots drawn from T2 — is realized by the callers: they generate RR
// sets rooted at T2 tuples and filter members to T1 candidates before
// adding them here.
package im

// CandidateID indexes the candidate universe (the set T1). Candidates are
// dense ids assigned by the caller.
type CandidateID int32

// RRCollection accumulates RR sets over a fixed candidate universe.
//
// Storage is arena-backed: all members live in one growing flat buffer and
// each set is an offset range into it, so Add is an append (no per-set
// allocation) and Set is a subslice. Finalize lays out the memberOf
// inverted index (candidate -> containing sets) in the same CSR form; the
// index is built once and shared by Greedy, GreedyCELF, GreedyPartition,
// and CoverageOf. Adding sets after Finalize is legal (the adaptive IMM
// loop interleaves generation and selection) — the index is rebuilt lazily
// on next use.
//
// A collection is not safe for concurrent use; the CM pipeline fills it
// from one goroutine after the parallel generation phase joins.
type RRCollection struct {
	numCandidates int
	members       []CandidateID // arena: all sets, concatenated
	setOff        []int32       // setOff[i]..setOff[i+1] bounds set i
	totalMembers  int64

	// memberOf inverted index in CSR form, built by Finalize: candidate c
	// is a member of sets memberOf[memberOfOff[c]:memberOfOff[c+1]].
	// indexedSets records how many sets the index covers; it goes stale
	// (and is rebuilt on demand) when sets are added afterwards.
	memberOf    []int32
	memberOfOff []int32
	indexedSets int

	// Epoch-stamped scratch for CoverageOf (same trick as wdgraph.Walker):
	// seedMark marks seed candidates, setMark marks covered sets, so
	// repeated coverage queries allocate nothing in steady state.
	seedMark  []int32
	setMark   []int32
	markEpoch int32
}

// NewRRCollection returns an empty collection over numCandidates
// candidates.
func NewRRCollection(numCandidates int) *RRCollection {
	return &RRCollection{numCandidates: numCandidates, setOff: []int32{0}}
}

// Reserve pre-sizes the arena for numSets additional RR sets totalling
// totalMembers members, so the subsequent Adds grow nothing.
func (c *RRCollection) Reserve(numSets int, totalMembers int64) {
	if need := len(c.setOff) + numSets; need > cap(c.setOff) {
		grown := make([]int32, len(c.setOff), need)
		copy(grown, c.setOff)
		c.setOff = grown
	}
	if need := int64(len(c.members)) + totalMembers; need > int64(cap(c.members)) {
		grown := make([]CandidateID, len(c.members), need)
		copy(grown, c.members)
		c.members = grown
	}
}

// Add appends one RR set. Empty sets are legal (an RR walk that reached no
// candidate) and count toward the total; they can never be covered, which
// correctly lowers the coverage-based contribution estimate. Add copies
// members into the arena, so callers may reuse their buffer.
func (c *RRCollection) Add(members []CandidateID) {
	c.members = append(c.members, members...)
	c.setOff = append(c.setOff, int32(len(c.members)))
	c.totalMembers += int64(len(members))
}

// Len returns the number of RR sets added.
func (c *RRCollection) Len() int { return len(c.setOff) - 1 }

// NumCandidates returns the size of the candidate universe.
func (c *RRCollection) NumCandidates() int { return c.numCandidates }

// TotalMembers returns the summed size of all RR sets.
func (c *RRCollection) TotalMembers() int64 { return c.totalMembers }

// ArenaBytes returns the resident size of the member arena and offset
// array — the quantity surfaced as the rr.bytes_arena metric.
func (c *RRCollection) ArenaBytes() int64 {
	const candSize, offSize = 4, 4
	return int64(cap(c.members))*candSize + int64(cap(c.setOff))*offSize
}

// MemoryBytes returns the resident size of the collection including the
// memberOf index and scratch — the quantity a cache charges an entry for.
func (c *RRCollection) MemoryBytes() int64 {
	const i32 = 4
	return c.ArenaBytes() +
		int64(cap(c.memberOf))*i32 + int64(cap(c.memberOfOff))*i32 +
		int64(cap(c.seedMark))*i32 + int64(cap(c.setMark))*i32
}

// Snapshot returns a read-only view of a finalized collection: it shares
// the member arena, offsets, and memberOf index (all immutable once no
// further Adds happen) but owns fresh coverage scratch, so any number of
// snapshots can serve concurrent solves without aliasing mutable state.
// The receiver is finalized if it was not already; neither the receiver
// nor any snapshot may receive further Adds afterwards (the shared index
// would go stale for all of them).
func (c *RRCollection) Snapshot() *RRCollection {
	c.Finalize()
	return &RRCollection{
		numCandidates: c.numCandidates,
		members:       c.members,
		setOff:        c.setOff,
		totalMembers:  c.totalMembers,
		memberOf:      c.memberOf,
		memberOfOff:   c.memberOfOff,
		indexedSets:   c.indexedSets,
	}
}

// Set returns the i-th RR set as a subslice of the arena; do not modify.
func (c *RRCollection) Set(i int) []CandidateID {
	return c.members[c.setOff[i]:c.setOff[i+1]]
}

// Finalize builds the memberOf inverted index (candidate -> set ids, CSR
// layout) covering every set added so far. All selection and coverage
// queries share this one index; calling Finalize explicitly after the
// generation phase makes the build cost visible, but it is optional —
// queries finalize lazily. Idempotent until more sets are added.
func (c *RRCollection) Finalize() {
	if c.indexedSets == c.Len() && c.memberOfOff != nil {
		return
	}
	n := c.numCandidates
	if c.memberOfOff == nil {
		c.memberOfOff = make([]int32, n+1)
	} else {
		clear(c.memberOfOff)
	}
	deg := c.memberOfOff[1:] // count degrees shifted by one, prefix-sum in place
	for _, m := range c.members {
		deg[m]++
	}
	for i := 1; i < n; i++ {
		deg[i] += deg[i-1]
	}
	if int64(cap(c.memberOf)) >= c.totalMembers {
		c.memberOf = c.memberOf[:c.totalMembers]
	} else {
		c.memberOf = make([]int32, c.totalMembers)
	}
	cursor := make([]int32, n)
	copy(cursor, c.memberOfOff[:n])
	for i := 0; i < c.Len(); i++ {
		for _, m := range c.Set(i) {
			c.memberOf[cursor[m]] = int32(i)
			cursor[m]++
		}
	}
	c.indexedSets = c.Len()
}

// MemberOf returns the ids of the sets containing candidate cand, in
// ascending order, as a subslice of the shared index; do not modify. It
// finalizes the index if needed.
func (c *RRCollection) MemberOf(cand CandidateID) []int32 {
	c.Finalize()
	return c.memberOf[c.memberOfOff[cand]:c.memberOfOff[cand+1]]
}

// Degree returns |MemberOf(cand)| without materializing the subslice.
func (c *RRCollection) Degree(cand CandidateID) int {
	c.Finalize()
	return int(c.memberOfOff[cand+1] - c.memberOfOff[cand])
}

// nextEpoch advances the scratch epoch, sizing (or re-zeroing on wrap) the
// mark arrays.
func (c *RRCollection) nextEpoch() int32 {
	if c.seedMark == nil {
		c.seedMark = make([]int32, c.numCandidates)
	}
	if sets := c.Len(); sets > len(c.setMark) {
		if sets <= cap(c.setMark) {
			c.setMark = c.setMark[:sets]
		} else {
			grown := make([]int32, sets)
			copy(grown, c.setMark)
			c.setMark = grown
		}
	}
	c.markEpoch++
	if c.markEpoch == 0 {
		for i := range c.seedMark {
			c.seedMark[i] = -1
		}
		for i := range c.setMark {
			c.setMark[i] = -1
		}
		c.markEpoch = 1
	}
	return c.markEpoch
}

// CoverageOf returns how many RR sets contain at least one member of seeds.
// It is the coverage function F_R(S) of the RIS framework; the contribution
// estimate is |T2| * CoverageOf(S) / Len(). The query walks the shared
// memberOf index (cost proportional to the seeds' total membership, not the
// collection size) and reuses epoch-stamped scratch, so steady-state calls
// allocate nothing. Not safe for concurrent use.
func (c *RRCollection) CoverageOf(seeds []CandidateID) int {
	c.Finalize()
	epoch := c.nextEpoch()
	covered := 0
	for _, s := range seeds {
		if c.seedMark[s] == epoch {
			continue // duplicate seed
		}
		c.seedMark[s] = epoch
		for _, si := range c.MemberOf(s) {
			if c.setMark[si] != epoch {
				c.setMark[si] = epoch
				covered++
			}
		}
	}
	return covered
}

package im_test

// Golden RR-stream tests for the arena-backed collection: the selection
// algorithms must be insensitive to whether (and when) the memberOf index
// was finalized, and the lazily rebuilt index must stay correct when the
// adaptive IMM loop interleaves Add with selection.

import (
	"reflect"
	"testing"

	randv2 "math/rand/v2"

	"contribmax/internal/im"
)

// randomStream returns the same pseudorandom RR stream every call: numSets
// sets over numCands candidates, skewed toward low ids.
func randomStream(numCands, numSets int) [][]im.CandidateID {
	rng := randv2.New(randv2.NewPCG(101, 73))
	out := make([][]im.CandidateID, numSets)
	for i := range out {
		n := rng.IntN(8)
		set := make([]im.CandidateID, 0, n)
		seen := map[im.CandidateID]bool{}
		for j := 0; j < n; j++ {
			c := im.CandidateID(rng.ExpFloat64() * float64(numCands) / 5)
			if int(c) >= numCands || seen[c] {
				continue
			}
			seen[c] = true
			set = append(set, c)
		}
		out[i] = set
	}
	return out
}

func collectionOf(numCands int, stream [][]im.CandidateID) *im.RRCollection {
	c := im.NewRRCollection(numCands)
	for _, s := range stream {
		c.Add(s)
	}
	return c
}

// TestSelectionUnchangedByFinalize runs every selection algorithm on two
// collections holding the identical RR stream — one finalized explicitly
// up front, one left to finalize lazily — and requires identical seeds,
// gains, and coverage.
func TestSelectionUnchangedByFinalize(t *testing.T) {
	const numCands, numSets, k = 60, 400, 5
	stream := randomStream(numCands, numSets)
	group := make([]int32, numCands)
	for i := range group {
		group[i] = int32(i % 4)
	}
	algos := map[string]func(*im.RRCollection) im.GreedyResult{
		"greedy":    func(c *im.RRCollection) im.GreedyResult { return im.Greedy(c, k) },
		"celf":      func(c *im.RRCollection) im.GreedyResult { return im.GreedyCELF(c, k) },
		"partition": func(c *im.RRCollection) im.GreedyResult { return im.GreedyPartition(c, k, group, 2) },
	}
	for name, algo := range algos {
		t.Run(name, func(t *testing.T) {
			lazy := collectionOf(numCands, stream)
			eager := collectionOf(numCands, stream)
			eager.Finalize()
			got, want := algo(lazy), algo(eager)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("lazy vs finalized differ:\n%+v\n%+v", got, want)
			}
			if got.Covered == 0 {
				t.Error("degenerate instance: nothing covered")
			}
			// Re-running on the already-indexed collection is also stable.
			if again := algo(lazy); !reflect.DeepEqual(again, got) {
				t.Errorf("re-run differs: %+v vs %+v", again, got)
			}
		})
	}
}

// TestIndexRebuildAfterAdd pins the staleness contract: selections and
// coverage queries interleaved with Add (the IMM pattern) must match a
// collection built from the full stream in one go.
func TestIndexRebuildAfterAdd(t *testing.T) {
	const numCands, numSets, k = 40, 300, 4
	stream := randomStream(numCands, numSets)
	grown := im.NewRRCollection(numCands)
	for i, s := range stream {
		grown.Add(s)
		if i%50 == 10 {
			im.Greedy(grown, k) // force an index build mid-stream
		}
	}
	fresh := collectionOf(numCands, stream)
	if got, want := im.Greedy(grown, k), im.Greedy(fresh, k); !reflect.DeepEqual(got, want) {
		t.Errorf("interleaved index rebuilds change selection:\n%+v\n%+v", got, want)
	}
	seeds := ids(0, 1, 2)
	if got, want := grown.CoverageOf(seeds), fresh.CoverageOf(seeds); got != want {
		t.Errorf("CoverageOf = %d, want %d", got, want)
	}
}

// TestCoverageOfMatchesNaive checks the indexed CoverageOf against a direct
// scan of the sets, including duplicate seeds.
func TestCoverageOfMatchesNaive(t *testing.T) {
	const numCands = 30
	stream := randomStream(numCands, 200)
	c := collectionOf(numCands, stream)
	naive := func(seeds []im.CandidateID) int {
		inSeed := make([]bool, numCands)
		for _, s := range seeds {
			inSeed[s] = true
		}
		covered := 0
		for _, set := range stream {
			for _, m := range set {
				if inSeed[m] {
					covered++
					break
				}
			}
		}
		return covered
	}
	rng := randv2.New(randv2.NewPCG(5, 9))
	for trial := 0; trial < 50; trial++ {
		seeds := make([]im.CandidateID, rng.IntN(6))
		for i := range seeds {
			seeds[i] = im.CandidateID(rng.IntN(numCands))
		}
		if got, want := c.CoverageOf(seeds), naive(seeds); got != want {
			t.Fatalf("CoverageOf(%v) = %d, want %d", seeds, got, want)
		}
	}
}

// TestCoverageOfZeroAlloc asserts the steady-state coverage query allocates
// nothing: the memberOf index is shared and the visitation marks are
// epoch-stamped scratch.
func TestCoverageOfZeroAlloc(t *testing.T) {
	const numCands = 50
	c := collectionOf(numCands, randomStream(numCands, 500))
	seeds := ids(0, 1, 2, 3, 7)
	c.CoverageOf(seeds) // warm-up: builds index and scratch
	if avg := testing.AllocsPerRun(100, func() {
		c.CoverageOf(seeds)
	}); avg != 0 {
		t.Errorf("CoverageOf allocates %.1f allocs/op in steady state, want 0", avg)
	}
}

// TestReserveAndArenaBytes checks the pre-sizing path: a reserved
// collection must not grow its arena during Add, and ArenaBytes reflects
// the reservation.
func TestReserveAndArenaBytes(t *testing.T) {
	stream := randomStream(20, 100)
	var total int64
	for _, s := range stream {
		total += int64(len(s))
	}
	c := im.NewRRCollection(20)
	c.Reserve(len(stream), total)
	reserved := c.ArenaBytes()
	if reserved < total*4 {
		t.Errorf("ArenaBytes = %d after Reserve(%d members)", reserved, total)
	}
	for _, s := range stream {
		c.Add(s)
	}
	if c.ArenaBytes() != reserved {
		t.Errorf("arena grew from %d to %d bytes despite Reserve", reserved, c.ArenaBytes())
	}
	if c.TotalMembers() != total || c.Len() != len(stream) {
		t.Errorf("TotalMembers=%d Len=%d, want %d/%d", c.TotalMembers(), c.Len(), total, len(stream))
	}
}

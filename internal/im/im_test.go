package im_test

import (
	"math/rand"
	randv2 "math/rand/v2"
	"testing"
	"testing/quick"

	"contribmax/internal/im"
)

func ids(xs ...int) []im.CandidateID {
	out := make([]im.CandidateID, len(xs))
	for i, x := range xs {
		out[i] = im.CandidateID(x)
	}
	return out
}

func TestRRCollectionBasics(t *testing.T) {
	c := im.NewRRCollection(5)
	c.Add(ids(0, 1))
	c.Add(ids(2))
	c.Add(nil) // empty RR set
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.TotalMembers() != 3 {
		t.Errorf("TotalMembers = %d", c.TotalMembers())
	}
	if got := c.CoverageOf(ids(1)); got != 1 {
		t.Errorf("CoverageOf(1) = %d", got)
	}
	if got := c.CoverageOf(ids(1, 2)); got != 2 {
		t.Errorf("CoverageOf(1,2) = %d", got)
	}
	if got := c.CoverageOf(ids(4)); got != 0 {
		t.Errorf("CoverageOf(4) = %d", got)
	}
}

func TestRRCollectionAddCopies(t *testing.T) {
	c := im.NewRRCollection(3)
	buf := ids(0, 1)
	c.Add(buf)
	buf[0] = 2
	if got := c.Set(0); got[0] != 0 {
		t.Error("Add did not copy members")
	}
}

func TestGreedyPicksMaximumCoverage(t *testing.T) {
	// Candidate 0 covers sets {0,1}; 1 covers {2}; 2 covers {1,2,3}.
	c := im.NewRRCollection(3)
	c.Add(ids(0))    // set 0
	c.Add(ids(0, 2)) // set 1
	c.Add(ids(1, 2)) // set 2
	c.Add(ids(2))    // set 3
	res := im.Greedy(c, 2)
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	// Greedy: candidate 2 first (3 sets), then candidate 0 (adds set 0).
	if res.Seeds[0] != 2 || res.Seeds[1] != 0 {
		t.Errorf("seeds = %v, want [2 0]", res.Seeds)
	}
	if res.Covered != 4 {
		t.Errorf("covered = %d, want 4", res.Covered)
	}
	if res.Gains[0] != 3 || res.Gains[1] != 1 {
		t.Errorf("gains = %v", res.Gains)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	c := im.NewRRCollection(3)
	c.Add(ids(0, 1, 2))
	res := im.Greedy(c, 1)
	if res.Seeds[0] != 0 {
		t.Errorf("tie should break to lowest id, got %v", res.Seeds)
	}
}

func TestGreedyFillsWithZeroGain(t *testing.T) {
	c := im.NewRRCollection(3)
	c.Add(ids(0))
	res := im.Greedy(c, 2)
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v (want padded to k)", res.Seeds)
	}
	if res.Gains[1] != 0 {
		t.Errorf("second gain = %d, want 0", res.Gains[1])
	}
}

func TestGreedyKLargerThanUniverse(t *testing.T) {
	c := im.NewRRCollection(2)
	c.Add(ids(0))
	res := im.Greedy(c, 10)
	if len(res.Seeds) != 2 {
		t.Errorf("seeds = %v, want all 2 candidates", res.Seeds)
	}
}

// TestGreedyMatchesCoverageOf is a property test: the greedy result's
// Covered must equal CoverageOf(Seeds), and greedy must achieve at least
// (1 - 1/e) of the best single-shot coverage found by random search.
func TestGreedyMatchesCoverageOf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12) + 2
		c := im.NewRRCollection(n)
		nSets := r.Intn(30) + 1
		for i := 0; i < nSets; i++ {
			var set []im.CandidateID
			for j := 0; j < n; j++ {
				if r.Float64() < 0.25 {
					set = append(set, im.CandidateID(j))
				}
			}
			c.Add(set)
		}
		k := r.Intn(n) + 1
		res := im.Greedy(c, k)
		if res.Covered != c.CoverageOf(res.Seeds) {
			return false
		}
		// Greedy dominates any single random k-subset by the submodular
		// guarantee only in expectation vs OPT; but it must at least beat
		// every single candidate alone extended arbitrarily... check the
		// weaker invariant: covered never exceeds number of sets.
		return res.Covered <= c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestGreedyAgainstExhaustiveSmall compares greedy coverage against the
// exhaustive optimum on tiny instances and asserts the (1 − 1/e) bound
// (for coverage, greedy actually guarantees ≥ (1 − (1−1/k)^k) ≥ 0.63·OPT).
func TestGreedyAgainstExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 2
		c := im.NewRRCollection(n)
		nSets := rng.Intn(20) + 1
		for i := 0; i < nSets; i++ {
			var set []im.CandidateID
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					set = append(set, im.CandidateID(j))
				}
			}
			c.Add(set)
		}
		k := rng.Intn(3) + 1
		res := im.Greedy(c, k)
		best := 0
		// Exhaust all k-subsets.
		var rec func(start int, cur []im.CandidateID)
		rec = func(start int, cur []im.CandidateID) {
			if len(cur) == k {
				if cov := c.CoverageOf(cur); cov > best {
					best = cov
				}
				return
			}
			for i := start; i < n; i++ {
				rec(i+1, append(cur, im.CandidateID(i)))
			}
		}
		rec(0, nil)
		if float64(res.Covered) < 0.63*float64(best)-1e-9 {
			t.Fatalf("trial %d: greedy %d < 0.63·OPT (%d)", trial, res.Covered, best)
		}
	}
}

func TestThetaFractionDefault(t *testing.T) {
	var s im.ThetaSpec
	if got := s.Theta(1000, 100, 10); got != 30 {
		t.Errorf("default fraction theta = %d, want 30", got)
	}
	s.Fraction = 0.5
	if got := s.Theta(1000, 100, 10); got != 50 {
		t.Errorf("fraction theta = %d, want 50", got)
	}
	s.Fraction = 0.001
	if got := s.Theta(1000, 100, 10); got != 1 {
		t.Errorf("tiny fraction theta = %d, want >= 1", got)
	}
	s.Explicit = 7
	if got := s.Theta(1000, 100, 10); got != 7 {
		t.Errorf("explicit theta = %d, want 7", got)
	}
}

func TestThetaAuto(t *testing.T) {
	s := im.ThetaSpec{Auto: true, Epsilon: 0.1, Delta: 0.01}
	got := s.Theta(100, 50, 5)
	if got < 50 {
		t.Errorf("auto theta = %d, suspiciously small", got)
	}
	s.MaxAuto = 123
	if got := s.Theta(100, 50, 5); got != 123 {
		t.Errorf("capped auto theta = %d, want 123", got)
	}
	// Degenerate inputs.
	if got := (im.ThetaSpec{Auto: true}).Theta(0, 0, 0); got < 1 {
		t.Errorf("degenerate auto theta = %d", got)
	}
}

// TestCELFMatchesGreedyExactly is a property test: GreedyCELF must return
// the identical selection (same seeds, same order, same gains) as Greedy
// on random instances, including ties and zero-gain padding.
func TestCELFMatchesGreedyExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(20) + 1
		c := im.NewRRCollection(n)
		nSets := rng.Intn(40)
		for i := 0; i < nSets; i++ {
			var set []im.CandidateID
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.2 {
					set = append(set, im.CandidateID(j))
				}
			}
			c.Add(set)
		}
		k := rng.Intn(n) + 1
		g := im.Greedy(c, k)
		l := im.GreedyCELF(c, k)
		if len(g.Seeds) != len(l.Seeds) || g.Covered != l.Covered {
			t.Fatalf("trial %d: greedy %v/%d vs celf %v/%d", trial, g.Seeds, g.Covered, l.Seeds, l.Covered)
		}
		for i := range g.Seeds {
			if g.Seeds[i] != l.Seeds[i] || g.Gains[i] != l.Gains[i] {
				t.Fatalf("trial %d pick %d: greedy (%d, %d) vs celf (%d, %d)",
					trial, i, g.Seeds[i], g.Gains[i], l.Seeds[i], l.Gains[i])
			}
		}
	}
}

// TestIMMDriverDirect exerces im.IMM with a synthetic generator whose
// ground truth is known: every RR set contains candidate 0, so OPT = |T2|
// and the lower bound must approach it.
func TestIMMDriverDirect(t *testing.T) {
	rng := randv2.New(randv2.NewPCG(8, 8))
	gen := func() []im.CandidateID {
		set := []im.CandidateID{0}
		if rng.Float64() < 0.5 {
			set = append(set, im.CandidateID(1+rng.IntN(9)))
		}
		return set
	}
	coll, res, stats := im.IMM(gen, im.IMMParams{
		Epsilon: 0.2, Delta: 0.05, NumTargets: 50, NumCandidates: 10, K: 1, MaxRR: 20000,
	})
	if coll.Len() != stats.TotalRR || stats.TotalRR <= 0 {
		t.Fatalf("stats = %+v len=%d", stats, coll.Len())
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("seeds = %v, want [0]", res.Seeds)
	}
	if res.Covered != coll.Len() {
		t.Errorf("covered = %d of %d (candidate 0 is in every set)", res.Covered, coll.Len())
	}
	// OPT = 50 (candidate 0 covers everything); LB must be ≤ OPT and
	// nontrivially large.
	if stats.LowerBound > 50+1e-9 || stats.LowerBound < 20 {
		t.Errorf("lower bound = %g, want in [20, 50]", stats.LowerBound)
	}
}

// TestIMMCap verifies MaxRR bounds generation.
func TestIMMCap(t *testing.T) {
	gen := func() []im.CandidateID { return nil } // nothing ever covered
	coll, _, stats := im.IMM(gen, im.IMMParams{
		Epsilon: 0.05, NumTargets: 1000, NumCandidates: 100, K: 5, MaxRR: 500,
	})
	if coll.Len() > 500 {
		t.Errorf("generated %d > cap 500", coll.Len())
	}
	if !stats.Capped {
		t.Error("cap should be reported")
	}
}

// TestGreedyPartitionUnit exercises the matroid selection directly.
func TestGreedyPartitionUnit(t *testing.T) {
	c := im.NewRRCollection(4)
	// Candidates 0,1 (group 0) cover a lot; candidates 2,3 (group 1) less.
	c.Add(ids(0))
	c.Add(ids(0, 1))
	c.Add(ids(1))
	c.Add(ids(2))
	c.Add(ids(3))
	group := []int32{0, 0, 1, 1}

	res := im.GreedyPartition(c, 2, group, 1)
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	if g0, g1 := group[res.Seeds[0]], group[res.Seeds[1]]; g0 == g1 {
		t.Errorf("both seeds from group %d: %v", g0, res.Seeds)
	}
	// First pick is still the global best (candidate 0, 2 sets).
	if res.Seeds[0] != 0 {
		t.Errorf("first seed = %d, want 0", res.Seeds[0])
	}

	// maxPerGroup=2 degenerates to plain greedy.
	unres := im.GreedyPartition(c, 2, group, 2)
	plain := im.Greedy(c, 2)
	if unres.Covered != plain.Covered {
		t.Errorf("maxPerGroup=2 covered %d, plain %d", unres.Covered, plain.Covered)
	}
	// maxPerGroup=0 must behave like plain greedy too.
	zero := im.GreedyPartition(c, 2, group, 0)
	if zero.Covered != plain.Covered {
		t.Errorf("maxPerGroup=0 covered %d, plain %d", zero.Covered, plain.Covered)
	}

	// Matroid exhaustion: k=4 but only 2 groups with cap 1.
	small := im.GreedyPartition(c, 4, group, 1)
	if len(small.Seeds) != 2 {
		t.Errorf("matroid should cap at 2 seeds, got %v", small.Seeds)
	}
}

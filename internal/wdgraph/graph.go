// Package wdgraph implements the Weighted Derivation (WD) graph of
// Definition 3.1: a directed weighted graph with one node per edb fact, per
// derived idb fact, and per rule instantiation; every instantiation node
// has weight-1 in-edges from its body facts and one out-edge, weighted by
// the rule's probability, to its head fact.
//
// The package also implements the random-subgraph semantics of Definition
// 3.4: reverse reachability walks that draw each edge independently with
// its weight (used for RR-set generation in the RIS framework) and forward
// sampling (used by the Monte-Carlo contribution estimator).
//
// Graphs are stored in compressed-sparse-row (CSR) form: one flat endpoint
// array and one flat weight array per direction, indexed by per-node offset
// arrays. Adjacent edges of a node are adjacent in memory, so the sampled
// reachability walks — the hot loop of every RIS-based CM algorithm —
// stream through contiguous arrays instead of chasing one heap-allocated
// edge slice per node. See docs/PERFORMANCE.md for the layout contract.
package wdgraph

import "contribmax/internal/db"

// NodeID indexes a node of a Graph.
type NodeID int32

// NodeKind discriminates fact nodes from rule-instantiation nodes.
type NodeKind uint8

const (
	// FactNode is an edb or idb fact.
	FactNode NodeKind = iota
	// RuleNode is a rule instantiation r(inst).
	RuleNode
)

// Node is one WD-graph node.
type Node struct {
	Kind NodeKind
	// Pred and Tuple identify a fact node. For rule nodes Pred holds the
	// rule label and Tuple is nil.
	Pred  string
	Tuple db.Tuple
	// EDB marks fact nodes of extensional relations (candidate seeds live
	// among these).
	EDB bool
}

// Edges is a view of one node's incident edges in one direction: To[i] is
// the i-th neighbor and W[i] the i-th edge weight. Both slices alias the
// graph's CSR arrays; callers must not modify them.
type Edges struct {
	To []NodeID
	W  []float64
}

// Len returns the number of edges in the view.
func (e Edges) Len() int { return len(e.To) }

// Graph is a WD graph in CSR layout. Build one with a Builder (the builder's
// Graph method finalizes the CSR arrays). Graphs are immutable after
// building and safe for concurrent reads.
type Graph struct {
	nodes []Node

	// In-adjacency: the in-edges of node v are inTo[inOff[v]:inOff[v+1]]
	// with weights inW at the same indexes. inDet[v] is the end (absolute
	// index into inTo/inW) of v's leading run of weight-1 in-edges: the
	// reverse walker crosses edges in [inOff[v], inDet[v]) without touching
	// the weight array or the RNG, which covers every in-edge of every rule
	// node (body→rule edges always have weight 1) and the deterministic
	// prefix of fact nodes. Only the leading run is segregated — physically
	// reordering weighted edges would change the walker's RNG consumption
	// order and break byte-identical replay of pinned seeds.
	inTo  []NodeID
	inW   []float64
	inOff []int32
	inDet []int32

	// Out-adjacency, same layout (outDet covers fact→rule edges, which
	// always have weight 1).
	outTo  []NodeID
	outW   []float64
	outOff []int32
	outDet []int32

	factIDs map[string]NodeID // pred + "\x00" + tuple key -> node
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// Size returns nodes + edges, the quantity the paper reports as the graph's
// memory footprint.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// FactID returns the node id of the fact pred(tuple) and whether it exists.
func (g *Graph) FactID(pred string, t db.Tuple) (NodeID, bool) {
	id, ok := g.factIDs[factKey(pred, t)]
	return id, ok
}

// InEdges returns the in-edges of v: To[i] is the i-th source node. The
// views alias internal CSR arrays; callers must not modify them.
func (g *Graph) InEdges(v NodeID) Edges {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return Edges{To: g.inTo[lo:hi], W: g.inW[lo:hi]}
}

// OutEdges returns the out-edges of u: To[i] is the i-th destination node.
// The views alias internal CSR arrays; callers must not modify them.
func (g *Graph) OutEdges(u NodeID) Edges {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return Edges{To: g.outTo[lo:hi], W: g.outW[lo:hi]}
}

// InDegree returns the number of in-edges of v without materializing a view.
func (g *Graph) InDegree(v NodeID) int { return int(g.inOff[v+1] - g.inOff[v]) }

// OutDegree returns the number of out-edges of u without materializing a
// view.
func (g *Graph) OutDegree(u NodeID) int { return int(g.outOff[u+1] - g.outOff[u]) }

// MemoryBytes estimates the resident size of the CSR arrays (nodes
// excluded): endpoint, weight, offset, and deterministic-prefix arrays for
// both directions.
func (g *Graph) MemoryBytes() int64 {
	const nodeIDSize, weightSize, offSize = 4, 8, 4
	edges := int64(len(g.inTo) + len(g.outTo))
	offs := int64(len(g.inOff) + len(g.outOff) + len(g.inDet) + len(g.outDet))
	return edges*(nodeIDSize+weightSize) + offs*offSize
}

// FactNodes calls fn for every fact node.
func (g *Graph) FactNodes(fn func(id NodeID, n Node)) {
	for i, n := range g.nodes {
		if n.Kind == FactNode {
			fn(NodeID(i), n)
		}
	}
}

func factKey(pred string, t db.Tuple) string {
	return pred + "\x00" + t.Key()
}

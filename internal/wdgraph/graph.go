// Package wdgraph implements the Weighted Derivation (WD) graph of
// Definition 3.1: a directed weighted graph with one node per edb fact, per
// derived idb fact, and per rule instantiation; every instantiation node
// has weight-1 in-edges from its body facts and one out-edge, weighted by
// the rule's probability, to its head fact.
//
// The package also implements the random-subgraph semantics of Definition
// 3.4: reverse reachability walks that draw each edge independently with
// its weight (used for RR-set generation in the RIS framework) and forward
// sampling (used by the Monte-Carlo contribution estimator).
package wdgraph

import "contribmax/internal/db"

// NodeID indexes a node of a Graph.
type NodeID int32

// NodeKind discriminates fact nodes from rule-instantiation nodes.
type NodeKind uint8

const (
	// FactNode is an edb or idb fact.
	FactNode NodeKind = iota
	// RuleNode is a rule instantiation r(inst).
	RuleNode
)

// Node is one WD-graph node.
type Node struct {
	Kind NodeKind
	// Pred and Tuple identify a fact node. For rule nodes Pred holds the
	// rule label and Tuple is nil.
	Pred  string
	Tuple db.Tuple
	// EDB marks fact nodes of extensional relations (candidate seeds live
	// among these).
	EDB bool
}

// Edge is a weighted directed edge endpoint.
type Edge struct {
	To NodeID
	W  float64
}

// Graph is a WD graph. Build one with a Builder. Graphs are immutable after
// building and safe for concurrent reads.
type Graph struct {
	nodes []Node
	in    [][]Edge // in[v] = edges (u -> v) stored as {To: u, W}
	out   [][]Edge // out[u] = edges (u -> v) stored as {To: v, W}

	factIDs map[string]NodeID // pred + "\x00" + tuple key -> node
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Size returns nodes + edges, the quantity the paper reports as the graph's
// memory footprint.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// FactID returns the node id of the fact pred(tuple) and whether it exists.
func (g *Graph) FactID(pred string, t db.Tuple) (NodeID, bool) {
	id, ok := g.factIDs[factKey(pred, t)]
	return id, ok
}

// In returns the in-edges of v ({To: source, W: weight}). The slice is
// internal; callers must not modify it.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// Out returns the out-edges of u. The slice is internal; callers must not
// modify it.
func (g *Graph) Out(u NodeID) []Edge { return g.out[u] }

// FactNodes calls fn for every fact node.
func (g *Graph) FactNodes(fn func(id NodeID, n Node)) {
	for i, n := range g.nodes {
		if n.Kind == FactNode {
			fn(NodeID(i), n)
		}
	}
}

func factKey(pred string, t db.Tuple) string {
	return pred + "\x00" + t.Key()
}

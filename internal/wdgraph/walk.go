package wdgraph

import "math/rand/v2"

// Walker performs repeated sampled reachability walks, reusing visitation
// state across walks (epoch-stamped marks) so that a walk costs O(visited)
// rather than O(graph). A walker can also be re-targeted at a different
// graph with Reset, which reuses the mark array whenever its capacity
// suffices — the Magic variants run one persistent walker per worker across
// thousands of per-RR subgraphs, so steady-state walks allocate nothing.
//
// Walkers are not safe for concurrent use; give each goroutine its own.
type Walker struct {
	g       *Graph
	visited []int32
	epoch   int32
	queue   []NodeID
	grows   int64
}

// NewWalker returns a walker over g. g may be nil if Reset is called before
// the first walk.
func NewWalker(g *Graph) *Walker {
	w := &Walker{}
	w.Reset(g)
	return w
}

// Reset re-targets the walker at g. The visitation marks are reused when
// they are large enough; otherwise they grow to g's node count (counted in
// Grows, surfaced as the rr.scratch_grows metric).
func (w *Walker) Reset(g *Graph) {
	w.g = g
	if g == nil {
		return
	}
	if n := g.NumNodes(); n > len(w.visited) {
		if n <= cap(w.visited) {
			// Extend into existing capacity: the new tail is zeroed by the
			// runtime, which can never equal a live epoch (epochs are >= 1).
			w.visited = w.visited[:n]
		} else {
			grown := make([]int32, n)
			copy(grown, w.visited)
			w.visited = grown
			w.grows++
		}
	}
}

// Grows returns how many times the walker's mark array had to be
// reallocated — zero in steady state once sized to the largest graph seen.
func (w *Walker) Grows() int64 { return w.grows }

func (w *Walker) begin() {
	w.epoch++
	if w.epoch == 0 { // wrapped; reset marks
		for i := range w.visited {
			w.visited[i] = -1
		}
		w.epoch = 1
	}
	w.queue = w.queue[:0]
}

// ReverseReachable walks backwards from root, crossing each in-edge
// independently with probability equal to its weight (Definition 3.4's
// random subgraph, explored lazily as in the RIS framework). It calls visit
// for every node reached, including root. If deterministic is true every
// edge is crossed with probability 1, which is correct when the graph was
// already sampled during construction (Magic^S CM).
//
// Edge iteration is in CSR order, which finalize() guarantees equals the
// pre-CSR per-node insertion order, and the RNG is consulted for exactly
// the weight<1 edges in that order — so a pinned seed reproduces the same
// RR set the old layout produced. Each node's leading run of weight-1
// in-edges (inDet) is crossed without loading the weight at all.
//
// rng may be nil only when deterministic is true.
func (w *Walker) ReverseReachable(root NodeID, rng *rand.Rand, deterministic bool, visit func(NodeID)) {
	w.begin()
	g := w.g
	visited, epoch := w.visited, w.epoch
	visited[root] = epoch
	queue := append(w.queue, root)
	visit(root)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo, hi := g.inOff[v], g.inOff[v+1]
		det := hi
		if !deterministic {
			det = g.inDet[v]
		}
		for _, u := range g.inTo[lo:det] {
			if visited[u] == epoch {
				continue
			}
			visited[u] = epoch
			queue = append(queue, u)
			visit(u)
		}
		for i := det; i < hi; i++ {
			u := g.inTo[i]
			if visited[u] == epoch {
				continue
			}
			if wt := g.inW[i]; wt < 1 && rng.Float64() >= wt {
				continue
			}
			visited[u] = epoch
			queue = append(queue, u)
			visit(u)
		}
	}
	w.queue = queue
}

// ForwardReach walks forward from the seed nodes, crossing each out-edge
// independently with probability equal to its weight, and calls visit for
// every node reached (including the seeds). It is the forward analogue used
// by the Monte-Carlo contribution estimator: one call simulates one random
// program execution restricted to derivations reachable from the seeds.
func (w *Walker) ForwardReach(seeds []NodeID, rng *rand.Rand, visit func(NodeID)) {
	w.begin()
	g := w.g
	visited, epoch := w.visited, w.epoch
	queue := w.queue
	for _, s := range seeds {
		if visited[s] != epoch {
			visited[s] = epoch
			queue = append(queue, s)
			visit(s)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo, hi := g.outOff[v], g.outOff[v+1]
		det := g.outDet[v]
		for _, u := range g.outTo[lo:det] {
			if visited[u] == epoch {
				continue
			}
			visited[u] = epoch
			queue = append(queue, u)
			visit(u)
		}
		for i := det; i < hi; i++ {
			u := g.outTo[i]
			if visited[u] == epoch {
				continue
			}
			if wt := g.outW[i]; wt < 1 && rng.Float64() >= wt {
				continue
			}
			visited[u] = epoch
			queue = append(queue, u)
			visit(u)
		}
	}
	w.queue = queue
}

// ReverseClosure computes deterministic reverse reachability (every edge
// crossed), returning nothing but invoking visit per reached node. It is
// used to identify the ancestors of a target in an unsampled graph.
func (w *Walker) ReverseClosure(root NodeID, visit func(NodeID)) {
	w.ReverseReachable(root, nil, true, visit)
}

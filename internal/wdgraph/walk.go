package wdgraph

import "math/rand/v2"

// Walker performs repeated sampled reachability walks over one graph,
// reusing visitation state across walks (epoch-stamped marks) so that a
// walk costs O(visited) rather than O(graph).
type Walker struct {
	g       *Graph
	visited []int32
	epoch   int32
	queue   []NodeID
}

// NewWalker returns a walker over g.
func NewWalker(g *Graph) *Walker {
	return &Walker{g: g, visited: make([]int32, g.NumNodes())}
}

func (w *Walker) begin() {
	w.epoch++
	if w.epoch == 0 { // wrapped; reset marks
		for i := range w.visited {
			w.visited[i] = -1
		}
		w.epoch = 1
	}
	w.queue = w.queue[:0]
}

func (w *Walker) mark(v NodeID) bool {
	if w.visited[v] == w.epoch {
		return false
	}
	w.visited[v] = w.epoch
	return true
}

// ReverseReachable walks backwards from root, crossing each in-edge
// independently with probability equal to its weight (Definition 3.4's
// random subgraph, explored lazily as in the RIS framework). It calls visit
// for every node reached, including root. If deterministic is true every
// edge is crossed with probability 1, which is correct when the graph was
// already sampled during construction (Magic^S CM).
//
// rng may be nil only when deterministic is true.
func (w *Walker) ReverseReachable(root NodeID, rng *rand.Rand, deterministic bool, visit func(NodeID)) {
	w.begin()
	w.mark(root)
	w.queue = append(w.queue, root)
	visit(root)
	for len(w.queue) > 0 {
		v := w.queue[len(w.queue)-1]
		w.queue = w.queue[:len(w.queue)-1]
		for _, e := range w.g.in[v] {
			if w.visited[e.To] == w.epoch {
				continue
			}
			if !deterministic && e.W < 1 && rng.Float64() >= e.W {
				continue
			}
			w.mark(e.To)
			w.queue = append(w.queue, e.To)
			visit(e.To)
		}
	}
}

// ForwardReach walks forward from the seed nodes, crossing each out-edge
// independently with probability equal to its weight, and calls visit for
// every node reached (including the seeds). It is the forward analogue used
// by the Monte-Carlo contribution estimator: one call simulates one random
// program execution restricted to derivations reachable from the seeds.
func (w *Walker) ForwardReach(seeds []NodeID, rng *rand.Rand, visit func(NodeID)) {
	w.begin()
	for _, s := range seeds {
		if w.mark(s) {
			w.queue = append(w.queue, s)
			visit(s)
		}
	}
	for len(w.queue) > 0 {
		v := w.queue[len(w.queue)-1]
		w.queue = w.queue[:len(w.queue)-1]
		for _, e := range w.g.out[v] {
			if w.visited[e.To] == w.epoch {
				continue
			}
			if e.W < 1 && rng.Float64() >= e.W {
				continue
			}
			w.mark(e.To)
			w.queue = append(w.queue, e.To)
			visit(e.To)
		}
	}
}

// ReverseClosure computes deterministic reverse reachability (every edge
// crossed), returning nothing but invoking visit per reached node. It is
// used to identify the ancestors of a target in an unsampled graph.
func (w *Walker) ReverseClosure(root NodeID, visit func(NodeID)) {
	w.ReverseReachable(root, nil, true, visit)
}

package wdgraph

import (
	"context"
	"strconv"
	"strings"
	"time"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/obs"
)

// Projection controls how fired rule instantiations map into WD-graph nodes
// and edges. The identity projection (used by NaiveCM, Algorithm 1) records
// every instantiation as-is; the Magic-Sets algorithms use a projection that
// drops magic/query/seed rules, strips adornments from predicate names, and
// drops magic body atoms — which is what makes the constructed graph
// isomorphic to the relevant subgraph of the full WD graph (Section IV-B1).
type Projection struct {
	// IncludeRule reports whether instantiations of rule i appear in the
	// graph at all.
	IncludeRule func(ruleIndex int) bool
	// RuleLabel returns the label recorded on instantiation nodes of rule
	// i. Magic-Sets modified rules return their origin rule's label so that
	// instantiations of different adorned versions of one origin rule merge
	// into a single node.
	RuleLabel func(ruleIndex int) string
	// RuleWeight returns the probability w(r) put on the instantiation's
	// out-edge.
	RuleWeight func(ruleIndex int) float64
	// MapPred maps a predicate to the name recorded on fact nodes and
	// reports whether facts of that predicate are edb. ok=false drops the
	// fact (used for magic predicates in rule bodies).
	MapPred func(pred string) (mapped string, edb bool, ok bool)
	// KeepBody returns the body positions of rule i that carry original
	// (non-magic) atoms; nil keeps all positions.
	KeepBody func(ruleIndex int) []int
}

// IdentityProjection returns the projection matching Definition 3.1 for an
// untransformed program: all rules included, fact predicates unchanged, edb
// = predicates never appearing in a rule head.
func IdentityProjection(prog *ast.Program) *Projection {
	edb := map[string]bool{}
	for _, p := range prog.EDBs() {
		edb[p] = true
	}
	rules := prog.Rules
	return &Projection{
		IncludeRule: func(int) bool { return true },
		RuleLabel:   func(i int) string { return rules[i].Label },
		RuleWeight:  func(i int) float64 { return rules[i].Prob },
		MapPred: func(pred string) (string, bool, bool) {
			return pred, edb[pred], true
		},
		KeepBody: func(int) []int { return nil },
	}
}

// Builder incrementally constructs a Graph from engine derivations. It is
// the paper's Algorithm 1, generalized with a Projection.
type Builder struct {
	proj  *Projection
	g     *Graph
	rules map[string]NodeID // rule-instantiation dedup key -> node
	keyB  strings.Builder
}

// NewBuilder returns a builder using proj.
func NewBuilder(proj *Projection) *Builder {
	return &Builder{
		proj: proj,
		g: &Graph{
			factIDs: make(map[string]NodeID),
		},
		rules: make(map[string]NodeID),
	}
}

// Graph returns the graph built so far. The builder must not be used after
// the graph has been handed to concurrent readers.
func (b *Builder) Graph() *Graph { return b.g }

// AddFact ensures a node for the fact pred(t) (already projected) and
// returns its id.
func (b *Builder) AddFact(pred string, t db.Tuple, edb bool) NodeID {
	key := factKey(pred, t)
	if id, ok := b.g.factIDs[key]; ok {
		return id
	}
	id := NodeID(len(b.g.nodes))
	b.g.nodes = append(b.g.nodes, Node{Kind: FactNode, Pred: pred, Tuple: t, EDB: edb})
	b.g.in = append(b.g.in, nil)
	b.g.out = append(b.g.out, nil)
	b.g.factIDs[key] = id
	return id
}

// PreloadEDB adds a node for every tuple of every edb relation of prog
// present in database, matching Definition 3.1's "a distinct node per each
// edb in D". NaiveCM uses this; the Magic variants deliberately do not.
func (b *Builder) PreloadEDB(prog *ast.Program, database *db.Database) {
	for _, pred := range prog.EDBs() {
		rel, ok := database.Lookup(pred)
		if !ok {
			continue
		}
		mapped, edb, keep := b.proj.MapPred(pred)
		if !keep {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			b.AddFact(mapped, rel.Tuple(db.TupleID(i)), edb)
		}
	}
}

// Listener returns the engine.DerivationListener that feeds this builder.
func (b *Builder) Listener() engine.DerivationListener {
	return func(d engine.Derivation) { b.observe(d) }
}

func (b *Builder) observe(d engine.Derivation) {
	if !b.proj.IncludeRule(d.RuleIndex) {
		return
	}
	headPred, headEDB, ok := b.proj.MapPred(d.Head.Rel.Name())
	if !ok {
		return
	}
	headID := b.AddFact(headPred, d.Head.Rel.Tuple(d.Head.ID), headEDB)

	keep := b.proj.KeepBody(d.RuleIndex)
	var bodyIDs [32]NodeID
	n := 0
	record := func(ref engine.FactRef) bool {
		pred, edb, ok := b.proj.MapPred(ref.Rel.Name())
		if !ok {
			return true // dropped (magic atom)
		}
		if n >= len(bodyIDs) {
			return false
		}
		bodyIDs[n] = b.AddFact(pred, ref.Rel.Tuple(ref.ID), edb)
		n++
		return true
	}
	if keep == nil {
		for _, ref := range d.Body {
			if !record(ref) {
				return
			}
		}
	} else {
		for _, pos := range keep {
			if !record(d.Body[pos]) {
				return
			}
		}
	}

	label := b.proj.RuleLabel(d.RuleIndex)
	// Dedup key: label, head node, body nodes. Two adorned versions of one
	// origin rule instantiation produce identical keys and merge.
	b.keyB.Reset()
	b.keyB.WriteString(label)
	writeID := func(id NodeID) {
		b.keyB.WriteByte(byte(id >> 24))
		b.keyB.WriteByte(byte(id >> 16))
		b.keyB.WriteByte(byte(id >> 8))
		b.keyB.WriteByte(byte(id))
	}
	writeID(headID)
	for i := 0; i < n; i++ {
		writeID(bodyIDs[i])
	}
	key := b.keyB.String()
	if _, seen := b.rules[key]; seen {
		return
	}
	ruleID := NodeID(len(b.g.nodes))
	b.g.nodes = append(b.g.nodes, Node{Kind: RuleNode, Pred: label})
	b.g.in = append(b.g.in, nil)
	b.g.out = append(b.g.out, nil)
	b.rules[key] = ruleID

	w := b.proj.RuleWeight(d.RuleIndex)
	// body -> rule edges, weight 1.
	for i := 0; i < n; i++ {
		u := bodyIDs[i]
		b.g.out[u] = append(b.g.out[u], Edge{To: ruleID, W: 1})
		b.g.in[ruleID] = append(b.g.in[ruleID], Edge{To: u, W: 1})
	}
	// rule -> head edge, weight w(r).
	b.g.out[ruleID] = append(b.g.out[ruleID], Edge{To: headID, W: w})
	b.g.in[headID] = append(b.g.in[headID], Edge{To: ruleID, W: w})
}

// BuildConfig parameterizes BuildWith beyond the program and database.
// The zero value matches Build's defaults: identity projection, no EDB
// preload, no gate, no context, observability disabled.
type BuildConfig struct {
	// Proj controls the instantiation-to-graph mapping; nil means the
	// identity projection of Definition 3.1.
	Proj *Projection
	// PreloadEDB adds nodes for all edb facts up front (Definition 3.1).
	PreloadEDB bool
	// Gate, if non-nil, is consulted before every instantiation (Magic^S
	// CM's in-construction sampling).
	Gate engine.FireGate
	// Ctx, when non-nil, cancels the underlying fixpoint evaluation
	// between rounds.
	Ctx context.Context
	// Obs, when non-nil, receives the construction metrics (wdgraph.*
	// counters and the build-time histogram) and is forwarded to the
	// engine for its engine.* metrics.
	Obs *obs.Registry
}

// Build evaluates prog over database and returns the projected WD graph.
// preloadEDB adds nodes for all edb facts up front (Definition 3.1); gate,
// if non-nil, is consulted before every instantiation (Magic^S CM's
// in-construction sampling). Instrumented callers use BuildWith.
func Build(prog *ast.Program, database *db.Database, proj *Projection, preloadEDB bool, gate engine.FireGate) (*Graph, engine.Stats, error) {
	return BuildWith(prog, database, BuildConfig{Proj: proj, PreloadEDB: preloadEDB, Gate: gate})
}

// BuildWith is Build with cancellation and observability: one constructed
// graph records one wdgraph.builds increment, its node/edge counts, and
// its wall-clock construction time.
func BuildWith(prog *ast.Program, database *db.Database, cfg BuildConfig) (*Graph, engine.Stats, error) {
	start := time.Now()
	proj := cfg.Proj
	if proj == nil {
		proj = IdentityProjection(prog)
	}
	b := NewBuilder(proj)
	if cfg.PreloadEDB {
		b.PreloadEDB(prog, database)
	}
	eng, err := engine.New(prog, database)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats, err := eng.Run(engine.Options{Listener: b.Listener(), Gate: cfg.Gate, Context: cfg.Ctx, Obs: cfg.Obs})
	if err != nil {
		return nil, stats, err
	}
	g := b.Graph()
	if reg := cfg.Obs; reg != nil {
		reg.Counter(obs.GraphBuilds).Inc()
		reg.Counter(obs.GraphNodes).Add(int64(g.NumNodes()))
		reg.Counter(obs.GraphEdges).Add(int64(g.NumEdges()))
		reg.Histogram(obs.GraphBuildNs).ObserveSince(start)
	}
	return g, stats, nil
}

// DebugString renders a small graph for tests and the wddump tool.
func (g *Graph) DebugString(symbols *db.SymbolTable) string {
	var sb strings.Builder
	for i, n := range g.nodes {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(": ")
		if n.Kind == RuleNode {
			sb.WriteString("[rule ")
			sb.WriteString(n.Pred)
			sb.WriteString("]")
		} else {
			sb.WriteString(n.Pred)
			sb.WriteByte('(')
			for j, s := range n.Tuple {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(symbols.Name(s))
			}
			sb.WriteByte(')')
			if n.EDB {
				sb.WriteString(" edb")
			}
		}
		sb.WriteString(" ->")
		for _, e := range g.out[i] {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(int(e.To)))
			sb.WriteString("@")
			sb.WriteString(strconv.FormatFloat(e.W, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

package wdgraph

import (
	"context"
	"strconv"
	"strings"
	"time"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/planner"
	"contribmax/internal/prof"
)

// Projection controls how fired rule instantiations map into WD-graph nodes
// and edges. The identity projection (used by NaiveCM, Algorithm 1) records
// every instantiation as-is; the Magic-Sets algorithms use a projection that
// drops magic/query/seed rules, strips adornments from predicate names, and
// drops magic body atoms — which is what makes the constructed graph
// isomorphic to the relevant subgraph of the full WD graph (Section IV-B1).
type Projection struct {
	// IncludeRule reports whether instantiations of rule i appear in the
	// graph at all.
	IncludeRule func(ruleIndex int) bool
	// RuleLabel returns the label recorded on instantiation nodes of rule
	// i. Magic-Sets modified rules return their origin rule's label so that
	// instantiations of different adorned versions of one origin rule merge
	// into a single node.
	RuleLabel func(ruleIndex int) string
	// RuleWeight returns the probability w(r) put on the instantiation's
	// out-edge.
	RuleWeight func(ruleIndex int) float64
	// MapPred maps a predicate to the name recorded on fact nodes and
	// reports whether facts of that predicate are edb. ok=false drops the
	// fact (used for magic predicates in rule bodies).
	MapPred func(pred string) (mapped string, edb bool, ok bool)
	// KeepBody returns the body positions of rule i that carry original
	// (non-magic) atoms; nil keeps all positions.
	KeepBody func(ruleIndex int) []int
}

// IdentityProjection returns the projection matching Definition 3.1 for an
// untransformed program: all rules included, fact predicates unchanged, edb
// = predicates never appearing in a rule head.
func IdentityProjection(prog *ast.Program) *Projection {
	edb := map[string]bool{}
	for _, p := range prog.EDBs() {
		edb[p] = true
	}
	rules := prog.Rules
	return &Projection{
		IncludeRule: func(int) bool { return true },
		RuleLabel:   func(i int) string { return rules[i].Label },
		RuleWeight:  func(i int) float64 { return rules[i].Prob },
		MapPred: func(pred string) (string, bool, bool) {
			return pred, edb[pred], true
		},
		KeepBody: func(int) []int { return nil },
	}
}

// rawEdge is one directed edge recorded during construction, before the
// finalize step lays the adjacency out in CSR form.
type rawEdge struct {
	from, to NodeID
	w        float64
}

// Builder incrementally constructs a Graph from engine derivations. It is
// the paper's Algorithm 1, generalized with a Projection. Edges accumulate
// in a flat insertion-ordered log; Graph() runs a counting sort that lays
// both adjacency directions out in CSR form, preserving per-node insertion
// order (the order the old per-node slices grew in), so walk results are
// unchanged by the layout.
type Builder struct {
	proj      *Projection
	g         *Graph
	edges     []rawEdge
	rules     map[string]NodeID // rule-instantiation dedup key -> node
	keyBuf    []byte            // reusable dedup-key scratch
	finalized bool
}

// NewBuilder returns a builder using proj.
func NewBuilder(proj *Projection) *Builder {
	return NewBuilderSized(proj, 0, 0)
}

// NewBuilderSized is NewBuilder with capacity hints: factHint pre-sizes the
// fact-node map (e.g. the edb tuple count when preloading, or a previous
// run's engine.Stats.NewFacts), ruleHint the instantiation-dedup map (e.g.
// engine.Stats.Instantiations). Hints are optional; zero means unknown.
func NewBuilderSized(proj *Projection, factHint, ruleHint int) *Builder {
	if factHint < 0 {
		factHint = 0
	}
	if ruleHint < 0 {
		ruleHint = 0
	}
	return &Builder{
		proj: proj,
		g: &Graph{
			factIDs: make(map[string]NodeID, factHint),
		},
		rules: make(map[string]NodeID, ruleHint),
	}
}

// Graph finalizes the CSR adjacency and returns the graph. The builder must
// not observe further derivations afterwards, and the graph must not be
// handed to concurrent readers before this returns.
func (b *Builder) Graph() *Graph {
	b.finalize()
	return b.g
}

// AddFact ensures a node for the fact pred(t) (already projected) and
// returns its id.
func (b *Builder) AddFact(pred string, t db.Tuple, edb bool) NodeID {
	key := factKey(pred, t)
	if id, ok := b.g.factIDs[key]; ok {
		return id
	}
	if b.finalized {
		panic("wdgraph: AddFact after Graph() finalized the CSR layout")
	}
	id := NodeID(len(b.g.nodes))
	b.g.nodes = append(b.g.nodes, Node{Kind: FactNode, Pred: pred, Tuple: t, EDB: edb})
	b.g.factIDs[key] = id
	return id
}

// PreloadEDB adds a node for every tuple of every edb relation of prog
// present in database, matching Definition 3.1's "a distinct node per each
// edb in D". NaiveCM uses this; the Magic variants deliberately do not.
func (b *Builder) PreloadEDB(prog *ast.Program, database *db.Database) {
	for _, pred := range prog.EDBs() {
		rel, ok := database.Lookup(pred)
		if !ok {
			continue
		}
		mapped, edb, keep := b.proj.MapPred(pred)
		if !keep {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			b.AddFact(mapped, rel.Tuple(db.TupleID(i)), edb)
		}
	}
}

// Listener returns the engine.DerivationListener that feeds this builder.
// The builder is not safe for concurrent use and relies on the engine's
// listener contract: derivations arrive on the goroutine that called
// engine.Run, in an order that is byte-identical at every
// engine.Options.Parallelism level, so node and edge ids are reproducible
// regardless of how the fixpoint was evaluated.
func (b *Builder) Listener() engine.DerivationListener {
	return func(d engine.Derivation) { b.observe(d) }
}

func (b *Builder) observe(d engine.Derivation) {
	if !b.proj.IncludeRule(d.RuleIndex) {
		return
	}
	headPred, headEDB, ok := b.proj.MapPred(d.Head.Rel.Name())
	if !ok {
		return
	}
	headID := b.AddFact(headPred, d.Head.Rel.Tuple(d.Head.ID), headEDB)

	keep := b.proj.KeepBody(d.RuleIndex)
	var bodyIDs [32]NodeID
	n := 0
	record := func(ref engine.FactRef) bool {
		pred, edb, ok := b.proj.MapPred(ref.Rel.Name())
		if !ok {
			return true // dropped (magic atom)
		}
		if n >= len(bodyIDs) {
			return false
		}
		bodyIDs[n] = b.AddFact(pred, ref.Rel.Tuple(ref.ID), edb)
		n++
		return true
	}
	if keep == nil {
		for _, ref := range d.Body {
			if !record(ref) {
				return
			}
		}
	} else {
		for _, pos := range keep {
			if !record(d.Body[pos]) {
				return
			}
		}
	}

	// Dedup key: label, head node, body nodes. Two adorned versions of one
	// origin rule instantiation produce identical keys and merge. The key is
	// assembled in a reusable byte buffer; the map lookup below compiles to
	// an allocation-free string conversion, so only genuinely new
	// instantiations pay a key allocation (on insert).
	label := b.proj.RuleLabel(d.RuleIndex)
	buf := append(b.keyBuf[:0], label...)
	appendID := func(id NodeID) {
		buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	appendID(headID)
	for i := 0; i < n; i++ {
		appendID(bodyIDs[i])
	}
	b.keyBuf = buf
	if _, seen := b.rules[string(buf)]; seen {
		return
	}
	if b.finalized {
		panic("wdgraph: derivation observed after Graph() finalized the CSR layout")
	}
	ruleID := NodeID(len(b.g.nodes))
	b.g.nodes = append(b.g.nodes, Node{Kind: RuleNode, Pred: label})
	b.rules[string(buf)] = ruleID

	w := b.proj.RuleWeight(d.RuleIndex)
	// body -> rule edges, weight 1.
	for i := 0; i < n; i++ {
		b.edges = append(b.edges, rawEdge{from: bodyIDs[i], to: ruleID, w: 1})
	}
	// rule -> head edge, weight w(r).
	b.edges = append(b.edges, rawEdge{from: ruleID, to: headID, w: w})
}

// finalize lays the accumulated edge log out as CSR adjacency in both
// directions. The counting sort is stable with respect to the log, so each
// node's edge order equals its append order under the old per-node-slice
// layout — a prerequisite for reproducing pre-CSR walk results byte for
// byte. Idempotent.
func (b *Builder) finalize() {
	if b.finalized {
		return
	}
	b.finalized = true
	g := b.g
	n := len(g.nodes)
	m := len(b.edges)

	inDeg := make([]int32, n)
	outDeg := make([]int32, n)
	for _, e := range b.edges {
		outDeg[e.from]++
		inDeg[e.to]++
	}

	g.inOff = make([]int32, n+1)
	g.outOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.inOff[i+1] = g.inOff[i] + inDeg[i]
		g.outOff[i+1] = g.outOff[i] + outDeg[i]
	}

	g.inTo = make([]NodeID, m)
	g.inW = make([]float64, m)
	g.outTo = make([]NodeID, m)
	g.outW = make([]float64, m)
	// Reuse the degree arrays as placement cursors.
	copy(inDeg, g.inOff[:n])
	copy(outDeg, g.outOff[:n])
	for _, e := range b.edges {
		oi := outDeg[e.from]
		g.outTo[oi], g.outW[oi] = e.to, e.w
		outDeg[e.from] = oi + 1
		ii := inDeg[e.to]
		g.inTo[ii], g.inW[ii] = e.from, e.w
		inDeg[e.to] = ii + 1
	}
	b.edges = nil

	g.inDet = detPrefixes(g.inOff, g.inW)
	g.outDet = detPrefixes(g.outOff, g.outW)
}

// detPrefixes computes, per node, the absolute end index of the leading run
// of weight-1 edges (the walker's no-RNG fast path).
func detPrefixes(off []int32, w []float64) []int32 {
	n := len(off) - 1
	det := make([]int32, n)
	for v := 0; v < n; v++ {
		end := off[v+1]
		i := off[v]
		for i < end && w[i] == 1 {
			i++
		}
		det[v] = i
	}
	return det
}

// BuildConfig parameterizes BuildWith beyond the program and database.
// The zero value matches Build's defaults: identity projection, no EDB
// preload, no gate, no context, observability disabled.
type BuildConfig struct {
	// Proj controls the instantiation-to-graph mapping; nil means the
	// identity projection of Definition 3.1.
	Proj *Projection
	// PreloadEDB adds nodes for all edb facts up front (Definition 3.1).
	PreloadEDB bool
	// Gate, if non-nil, is consulted before every instantiation (Magic^S
	// CM's in-construction sampling).
	Gate engine.FireGate
	// Ctx, when non-nil, cancels the underlying fixpoint evaluation
	// between rounds.
	Ctx context.Context
	// Obs, when non-nil, receives the construction metrics (wdgraph.*
	// counters and the build-time histogram) and is forwarded to the
	// engine for its engine.* metrics.
	Obs *obs.Registry
	// Parallelism is forwarded to engine.Options.Parallelism: >= 2 runs
	// the fixpoint on that many workers. The builder needs no changes to
	// support this — the engine guarantees the derivation stream reaching
	// the listener is byte-identical to sequential evaluation and is
	// always delivered from the calling goroutine, so the constructed
	// graph (node and edge ids included) is the same at every level. When
	// Gate is set it must implement engine.ParallelSafeGate for the
	// parallel path to engage (magic.HashGate does).
	Parallelism int
	// HintFacts and HintRules pre-size the builder's dedup maps (fact
	// nodes and rule instantiations respectively). Zero means unknown; a
	// good source is a previous run's engine.Stats or the database's edb
	// tuple count.
	HintFacts int
	HintRules int
	// Journal, when non-nil, receives one graph.build event per
	// construction (node/edge counts, wall time) and is forwarded to the
	// engine for its per-round engine.round events. Full-graph builds set
	// it; the Magic variants' per-RR subgraph builds leave it nil.
	Journal *journal.Journal
	// Planner, when non-nil, routes rule compilation through
	// engine.NewPlanned: identical join order (the derivation stream — and
	// hence the constructed graph — is byte-for-byte unchanged), checks
	// evaluated at their earliest bound join step, and plans shared across
	// builds through the planner's shape-keyed cache.
	Planner *planner.Planner
	// Prof, when non-nil, is forwarded to engine.Options.Prof so the
	// fixpoint records per-rule runtime accounting into the solve's
	// profile. Like Obs/Journal it never changes the constructed graph.
	Prof *prof.Profile
}

// Build evaluates prog over database and returns the projected WD graph.
// preloadEDB adds nodes for all edb facts up front (Definition 3.1); gate,
// if non-nil, is consulted before every instantiation (Magic^S CM's
// in-construction sampling). Instrumented callers use BuildWith.
func Build(prog *ast.Program, database *db.Database, proj *Projection, preloadEDB bool, gate engine.FireGate) (*Graph, engine.Stats, error) {
	return BuildWith(prog, database, BuildConfig{Proj: proj, PreloadEDB: preloadEDB, Gate: gate})
}

// BuildWith is Build with cancellation and observability: one constructed
// graph records one wdgraph.builds increment, its node/edge counts, and
// its wall-clock construction time.
func BuildWith(prog *ast.Program, database *db.Database, cfg BuildConfig) (*Graph, engine.Stats, error) {
	start := time.Now()
	proj := cfg.Proj
	if proj == nil {
		proj = IdentityProjection(prog)
	}
	factHint := cfg.HintFacts
	if factHint == 0 && cfg.PreloadEDB {
		for _, pred := range prog.EDBs() {
			if rel, ok := database.Lookup(pred); ok {
				factHint += rel.Len()
			}
		}
	}
	b := NewBuilderSized(proj, factHint, cfg.HintRules)
	if cfg.PreloadEDB {
		b.PreloadEDB(prog, database)
	}
	var eng *engine.Engine
	var err error
	if cfg.Planner != nil {
		eng, err = engine.NewPlanned(prog, database, cfg.Planner)
	} else {
		eng, err = engine.New(prog, database)
	}
	if err != nil {
		return nil, engine.Stats{}, err
	}
	stats, err := eng.Run(engine.Options{Listener: b.Listener(), Gate: cfg.Gate, Context: cfg.Ctx, Obs: cfg.Obs, Parallelism: cfg.Parallelism, Journal: cfg.Journal, Prof: cfg.Prof})
	if err != nil {
		return nil, stats, err
	}
	g := b.Graph()
	if reg := cfg.Obs; reg != nil {
		reg.Counter(obs.GraphBuilds).Inc()
		reg.Counter(obs.GraphNodes).Add(int64(g.NumNodes()))
		reg.Counter(obs.GraphEdges).Add(int64(g.NumEdges()))
		reg.Histogram(obs.GraphBuildNs).ObserveSince(start)
	}
	cfg.Journal.GraphBuild(g.NumNodes(), g.NumEdges(), time.Since(start))
	return g, stats, nil
}

// DebugString renders a small graph for tests and the wddump tool.
func (g *Graph) DebugString(symbols *db.SymbolTable) string {
	var sb strings.Builder
	for i, n := range g.nodes {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(": ")
		if n.Kind == RuleNode {
			sb.WriteString("[rule ")
			sb.WriteString(n.Pred)
			sb.WriteString("]")
		} else {
			sb.WriteString(n.Pred)
			sb.WriteByte('(')
			for j, s := range n.Tuple {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(symbols.Name(s))
			}
			sb.WriteByte(')')
			if n.EDB {
				sb.WriteString(" edb")
			}
		}
		sb.WriteString(" ->")
		es := g.OutEdges(NodeID(i))
		for j, to := range es.To {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(int(to)))
			sb.WriteString("@")
			sb.WriteString(strconv.FormatFloat(es.W[j], 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

package wdgraph_test

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/parser"
	"contribmax/internal/wdgraph"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustDB(t *testing.T, facts string) *db.Database {
	t.Helper()
	fs, err := parser.ParseFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase()
	for _, f := range fs {
		d.MustInsertAtom(f)
	}
	return d
}

// buildTC builds the WD graph of the Example 4.2 program over a 2-edge path.
func buildTC(t *testing.T) (*wdgraph.Graph, *db.Database) {
	t.Helper()
	prog := mustProgram(t, `
		1.0 r1: tc(X, Y) :- edge(X, Y).
		0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustDB(t, `edge(a, b). edge(b, c).`)
	g, _, err := wdgraph.Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

func TestWDGraphStructureDefinition31(t *testing.T) {
	g, d := buildTC(t)
	// Facts: edge(a,b), edge(b,c), tc(a,b), tc(b,c), tc(a,c) = 5 fact
	// nodes; instantiations: r1 x2, r2 x1 = 3 rule nodes.
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8\n%s", g.NumNodes(), g.DebugString(d.Symbols()))
	}
	// Edges: each r1 node has 1 in + 1 out; r2 node has 2 in + 1 out = 7.
	if g.NumEdges() != 7 {
		t.Fatalf("edges = %d, want 7", g.NumEdges())
	}
	if g.Size() != 15 {
		t.Errorf("Size = %d", g.Size())
	}

	// Every rule node: in-edges weight 1, single out-edge with the rule's
	// probability.
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(wdgraph.NodeID(i))
		if n.Kind != wdgraph.RuleNode {
			continue
		}
		for _, w := range g.InEdges(wdgraph.NodeID(i)).W {
			if w != 1 {
				t.Errorf("rule in-edge weight = %g, want 1", w)
			}
		}
		outs := g.OutEdges(wdgraph.NodeID(i))
		if outs.Len() != 1 {
			t.Fatalf("rule node %d has %d out-edges", i, outs.Len())
		}
		want := 1.0
		if n.Pred == "r2" {
			want = 0.8
		}
		if outs.W[0] != want {
			t.Errorf("rule %s out-edge weight = %g, want %g", n.Pred, outs.W[0], want)
		}
	}

	// EDB flags.
	ab, _ := d.InternAtom(ast.NewAtom("edge", ast.C("a"), ast.C("b")))
	if id, ok := g.FactID("edge", ab); !ok || !g.Node(id).EDB {
		t.Error("edge(a,b) should be an EDB fact node")
	}
	tcab, _ := d.InternAtom(ast.NewAtom("tc", ast.C("a"), ast.C("b")))
	if id, ok := g.FactID("tc", tcab); !ok || g.Node(id).EDB {
		t.Error("tc(a,b) should be a non-EDB fact node")
	}
}

func TestPreloadIncludesUnusedEDB(t *testing.T) {
	prog := mustProgram(t, `p(X) :- e(X, X).`)
	d := mustDB(t, `e(a, b). e(c, c).`)
	g, _, err := wdgraph.Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	// e(a,b) participates in no derivation but Definition 3.1 still gives
	// it a node.
	ab, _ := d.InternAtom(ast.NewAtom("e", ast.C("a"), ast.C("b")))
	if _, ok := g.FactID("e", ab); !ok {
		t.Error("unused edb fact missing despite preload")
	}
	// Without preload it is absent.
	g2, _, err := wdgraph.Build(prog, mustDB(t, `e(a, b). e(c, c).`), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g2.FactID("e", ab); ok {
		t.Error("unused edb fact present without preload")
	}
}

func TestSharedDerivationsMerge(t *testing.T) {
	// Two rules deriving the same head from the same body produce distinct
	// rule nodes; the same rule deriving the same head twice produces one.
	prog := mustProgram(t, `
		0.5 q1: p(X) :- e(X, Y).
		0.5 q2: p(X) :- f(X, Y).
	`)
	d := mustDB(t, `e(a, b). f(a, z).`)
	g, _, err := wdgraph.Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(wdgraph.NodeID(i)).Kind == wdgraph.RuleNode {
			rules++
		}
	}
	if rules != 2 {
		t.Errorf("rule nodes = %d, want 2", rules)
	}
	pa, _ := d.InternAtom(ast.NewAtom("p", ast.C("a")))
	id, ok := g.FactID("p", pa)
	if !ok {
		t.Fatal("p(a) missing")
	}
	if g.InDegree(id) != 2 {
		t.Errorf("p(a) in-edges = %d, want 2 (one per rule)", g.InDegree(id))
	}
}

func TestReverseReachableDeterministic(t *testing.T) {
	g, d := buildTC(t)
	tcac, _ := d.InternAtom(ast.NewAtom("tc", ast.C("a"), ast.C("c")))
	root, ok := g.FactID("tc", tcac)
	if !ok {
		t.Fatal("tc(a,c) missing")
	}
	w := wdgraph.NewWalker(g)
	visited := map[wdgraph.NodeID]bool{}
	w.ReverseClosure(root, func(v wdgraph.NodeID) { visited[v] = true })
	// Everything is an ancestor of tc(a,c): 8 nodes.
	if len(visited) != 8 {
		t.Errorf("reverse closure = %d nodes, want 8", len(visited))
	}
}

func TestReverseReachableProbability(t *testing.T) {
	// From tc(a,c), the walk crosses the r2 edge w.p. 0.8 and then reaches
	// everything (r1 edges have weight 1). So P[edge(a,b) in RR] = 0.8.
	g, d := buildTC(t)
	tcac, _ := d.InternAtom(ast.NewAtom("tc", ast.C("a"), ast.C("c")))
	root, _ := g.FactID("tc", tcac)
	ab, _ := d.InternAtom(ast.NewAtom("edge", ast.C("a"), ast.C("b")))
	abID, _ := g.FactID("edge", ab)

	rng := rand.New(rand.NewPCG(3, 14))
	w := wdgraph.NewWalker(g)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		found := false
		w.ReverseReachable(root, rng, false, func(v wdgraph.NodeID) {
			if v == abID {
				found = true
			}
		})
		if found {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.8) > 0.01 {
		t.Errorf("P[edge(a,b) in RR] = %.4f, want 0.80", p)
	}
}

func TestForwardReachProbability(t *testing.T) {
	// Forward from edge(a,b): tc(a,b) w.p. 1 (r1), tc(a,c) w.p. 0.8 (r2).
	g, d := buildTC(t)
	ab, _ := d.InternAtom(ast.NewAtom("edge", ast.C("a"), ast.C("b")))
	abID, _ := g.FactID("edge", ab)
	tcac, _ := d.InternAtom(ast.NewAtom("tc", ast.C("a"), ast.C("c")))
	target, _ := g.FactID("tc", tcac)

	rng := rand.New(rand.NewPCG(0xF00, 0xBA7))
	w := wdgraph.NewWalker(g)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		found := false
		w.ForwardReach([]wdgraph.NodeID{abID}, rng, func(v wdgraph.NodeID) {
			if v == target {
				found = true
			}
		})
		if found {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.8) > 0.01 {
		t.Errorf("P[reach tc(a,c)] = %.4f, want 0.80", p)
	}
}

func TestWalkerReuseIsolation(t *testing.T) {
	// Two consecutive walks must not leak visitation state. Weights are all
	// 1 so the walks are deterministic.
	prog := mustProgram(t, `
		1.0 r1: tc(X, Y) :- edge(X, Y).
		1.0 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustDB(t, `edge(a, b). edge(b, c).`)
	g, _, err := wdgraph.Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := d.InternAtom(ast.NewAtom("edge", ast.C("a"), ast.C("b")))
	abID, _ := g.FactID("edge", ab)
	bc, _ := d.InternAtom(ast.NewAtom("edge", ast.C("b"), ast.C("c")))
	bcID, _ := g.FactID("edge", bc)
	w := wdgraph.NewWalker(g)
	count1, count2 := 0, 0
	w.ForwardReach([]wdgraph.NodeID{abID}, nil, func(wdgraph.NodeID) { count1++ })
	w.ForwardReach([]wdgraph.NodeID{abID, bcID}, nil, func(wdgraph.NodeID) { count2++ })
	if count2 <= count1 {
		t.Errorf("second (larger) walk visited %d <= first %d", count2, count1)
	}
	count3 := 0
	w.ForwardReach([]wdgraph.NodeID{abID}, nil, func(wdgraph.NodeID) { count3++ })
	if count3 != count1 {
		t.Errorf("repeat walk visited %d, want %d", count3, count1)
	}
}

func TestFactNodesIteration(t *testing.T) {
	g, _ := buildTC(t)
	facts := 0
	g.FactNodes(func(id wdgraph.NodeID, n wdgraph.Node) {
		if n.Kind != wdgraph.FactNode {
			t.Error("FactNodes yielded a rule node")
		}
		facts++
	})
	if facts != 5 {
		t.Errorf("fact nodes = %d, want 5", facts)
	}
}

func TestWriteDOT(t *testing.T) {
	g, d := buildTC(t)
	var buf strings.Builder
	if err := wdgraph.WriteDOT(&buf, g, d.Symbols()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph wd {",
		`label="edge(a,b)"`,
		`label="tc(a,c)"`,
		`label="r2"`,
		`label="0.8"`, // the probabilistic edge
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "->"); got != g.NumEdges() {
		t.Errorf("DOT has %d edges, graph has %d", got, g.NumEdges())
	}
}

func TestDebugString(t *testing.T) {
	g, d := buildTC(t)
	out := g.DebugString(d.Symbols())
	if !strings.Contains(out, "edge(a,b) edb") || !strings.Contains(out, "[rule r2]") {
		t.Errorf("DebugString:\n%s", out)
	}
}

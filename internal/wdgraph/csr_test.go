package wdgraph

// Differential and invariant tests for the CSR adjacency layout, plus the
// builder micro-benchmarks. These run in the internal package so they can
// check the det-prefix invariants the walker's fast path relies on.

import (
	"math/rand/v2"
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

// flatEdge is the old-layout view of one directed edge, reconstructed from
// the CSR accessors for the differential comparison.
type flatEdge struct {
	from, to NodeID
	w        float64
}

func sortEdges(es []flatEdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].from != es[j].from {
			return es[i].from < es[j].from
		}
		if es[i].to != es[j].to {
			return es[i].to < es[j].to
		}
		return es[i].w < es[j].w
	})
}

func buildFrom(t *testing.T, progSrc string, d *db.Database) *Graph {
	t.Helper()
	prog, err := parser.ParseProgram(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func dbFromFacts(t *testing.T, facts string) *db.Database {
	t.Helper()
	fs, err := parser.ParseFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase()
	for _, f := range fs {
		d.MustInsertAtom(f)
	}
	return d
}

// TestCSRDifferentialAdjacency rebuilds the pre-CSR adjacency view (one
// edge list per direction) from InEdges/OutEdges and checks that the two
// directions describe the same edge multiset, that degrees and NumEdges
// agree with the views, and that the det prefixes bound exactly the leading
// weight-1 runs.
func TestCSRDifferentialAdjacency(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	graphs := map[string]*Graph{
		"tc": buildFrom(t, `
			1.0 r1: tc(X, Y) :- edge(X, Y).
			0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		`, workload.RandomGraphM(20, 60, rng)),
		"diamond": buildFrom(t, `
			0.5 q1: p(X) :- e(X, Y).
			0.7 q2: p(X) :- f(X, Y).
			0.9 q3: top(X) :- p(X), e(X, X).
		`, dbFromFacts(t, `e(a, b). e(a, a). f(a, z). f(b, z).`)),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			n := g.NumNodes()
			var fromOut, fromIn []flatEdge
			outSum, inSum := 0, 0
			for v := 0; v < n; v++ {
				id := NodeID(v)
				outs := g.OutEdges(id)
				if outs.Len() != g.OutDegree(id) {
					t.Fatalf("node %d: OutEdges len %d != OutDegree %d", v, outs.Len(), g.OutDegree(id))
				}
				for j, to := range outs.To {
					fromOut = append(fromOut, flatEdge{from: id, to: to, w: outs.W[j]})
				}
				outSum += outs.Len()
				ins := g.InEdges(id)
				if ins.Len() != g.InDegree(id) {
					t.Fatalf("node %d: InEdges len %d != InDegree %d", v, ins.Len(), g.InDegree(id))
				}
				for j, from := range ins.To {
					fromIn = append(fromIn, flatEdge{from: from, to: id, w: ins.W[j]})
				}
				inSum += ins.Len()
			}
			if outSum != g.NumEdges() || inSum != g.NumEdges() {
				t.Fatalf("degree sums out=%d in=%d, NumEdges=%d", outSum, inSum, g.NumEdges())
			}
			sortEdges(fromOut)
			sortEdges(fromIn)
			for i := range fromOut {
				if fromOut[i] != fromIn[i] {
					t.Fatalf("edge %d differs between directions: out=%+v in=%+v", i, fromOut[i], fromIn[i])
				}
			}

			// det-prefix invariant: [off[v], det[v]) is all weight 1, and
			// the edge at det[v] (when present) is not.
			checkDet := func(label string, off, det []int32, w []float64) {
				for v := 0; v < n; v++ {
					for i := off[v]; i < det[v]; i++ {
						if w[i] != 1 {
							t.Fatalf("%s node %d: edge %d inside det prefix has weight %g", label, v, i, w[i])
						}
					}
					if det[v] < off[v+1] && w[det[v]] == 1 {
						t.Fatalf("%s node %d: det prefix stops early at %d", label, v, det[v])
					}
				}
			}
			checkDet("in", g.inOff, g.inDet, g.inW)
			checkDet("out", g.outOff, g.outDet, g.outW)
		})
	}
}

// TestBuilderPanicsAfterFinalize pins the builder lifecycle: once Graph()
// lays out the CSR arrays, further mutation must fail loudly instead of
// corrupting the layout.
func TestBuilderPanicsAfterFinalize(t *testing.T) {
	prog, err := parser.ParseProgram(`p(X) :- e(X, X).`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(IdentityProjection(prog))
	b.AddFact("e", db.Tuple{1, 1}, true)
	_ = b.Graph()
	defer func() {
		if recover() == nil {
			t.Fatal("AddFact after Graph() did not panic")
		}
	}()
	b.AddFact("e", db.Tuple{2, 2}, true)
}

// captureDerivations evaluates a mid-size TC instance once and returns the
// derivation stream, so builder benchmarks replay construction without
// re-paying evaluation.
func captureDerivations(b *testing.B) (*ast.Program, *db.Database, []engine.Derivation) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	d := workload.RingChordGraph(80, 40, rng)
	prog, err := parser.ParseProgram(`
		1.0 r1: tc(X, Y) :- edge(X, Y).
		0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	if err != nil {
		b.Fatal(err)
	}
	scratch := d.CloneSchema()
	if rel, ok := d.Lookup("edge"); ok {
		scratch.Attach(rel)
	}
	eng, err := engine.New(prog, scratch)
	if err != nil {
		b.Fatal(err)
	}
	var derivs []engine.Derivation
	_, err = eng.Run(engine.Options{Listener: func(dv engine.Derivation) {
		dv.Body = append([]engine.FactRef(nil), dv.Body...)
		derivs = append(derivs, dv)
	}})
	if err != nil {
		b.Fatal(err)
	}
	return prog, d, derivs
}

// BenchmarkBuilderReplay measures graph construction alone (dedup, edge
// log, CSR finalize) on a captured derivation stream — the component the
// byte-key dedup and size hints optimize.
func BenchmarkBuilderReplay(b *testing.B) {
	prog, d, derivs := captureDerivations(b)
	proj := IdentityProjection(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilderSized(proj, len(derivs), len(derivs))
		bld.PreloadEDB(prog, d)
		l := bld.Listener()
		for _, dv := range derivs {
			l(dv)
		}
		g := bld.Graph()
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

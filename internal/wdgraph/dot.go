package wdgraph

import (
	"fmt"
	"io"

	"contribmax/internal/db"
)

// WriteDOT renders the graph in Graphviz DOT format: fact nodes as ovals
// (edb facts shaded), rule-instantiation nodes as small boxes, and edges
// labeled with their weight when it differs from 1.
func WriteDOT(w io.Writer, g *Graph, symbols *db.SymbolTable) error {
	if _, err := fmt.Fprintln(w, "digraph wd {"); err != nil {
		return err
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		var attrs string
		switch {
		case n.Kind == RuleNode:
			attrs = fmt.Sprintf("label=%q shape=box style=filled fillcolor=thistle", n.Pred)
		case n.EDB:
			attrs = fmt.Sprintf("label=%q style=filled fillcolor=khaki", factLabel(n, symbols))
		default:
			attrs = fmt.Sprintf("label=%q style=filled fillcolor=salmon", factLabel(n, symbols))
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", i, attrs); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		es := g.OutEdges(NodeID(i))
		for j, to := range es.To {
			if wt := es.W[j]; wt != 1 {
				if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%g\"];\n", i, to, wt); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", i, to); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func factLabel(n Node, symbols *db.SymbolTable) string {
	s := n.Pred + "("
	for i, sym := range n.Tuple {
		if i > 0 {
			s += ","
		}
		s += symbols.Name(sym)
	}
	return s + ")"
}

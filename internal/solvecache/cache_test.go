package solvecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"contribmax/internal/im"
	"contribmax/internal/obs"
)

// testColl builds a finalized RR collection with sets sets of width members
// each, over a universe of width candidates.
func testColl(sets, width int) *im.RRCollection {
	c := im.NewRRCollection(width)
	members := make([]im.CandidateID, width)
	for i := range members {
		members[i] = im.CandidateID(i)
	}
	for i := 0; i < sets; i++ {
		c.Add(members)
	}
	c.Finalize()
	return c
}

func rrKey(i int) RRKey {
	return RRKey{Algorithm: "test", Database: "db", Program: "p", Rand: "default",
		Targets: fmt.Sprintf("t%d", i), Candidates: "edb", Params: "theta=4"}
}

func mustRR(t *testing.T, c *Cache, key RRKey, coll *im.RRCollection) Source {
	t.Helper()
	e, src, err := c.RR(context.Background(), key, func() (*RREntry, error) {
		return &RREntry{Coll: coll}, nil
	})
	if err != nil {
		t.Fatalf("RR(%v): %v", key, err)
	}
	if e == nil || e.Coll == nil {
		t.Fatalf("RR(%v): nil entry", key)
	}
	return src
}

func TestCacheHitMissAndByteAccounting(t *testing.T) {
	c := New(1 << 20)
	coll := testColl(8, 16)
	if src := mustRR(t, c, rrKey(0), coll); src != Miss {
		t.Fatalf("first lookup: got %v, want Miss", src)
	}
	if src := mustRR(t, c, rrKey(0), nil); src != Hit {
		t.Fatalf("second lookup: got %v, want Hit", src)
	}
	st := c.Stats()
	if st.RRHits != 1 || st.RRMisses != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/1", st.RRHits, st.RRMisses)
	}
	if st.Entries != 1 || st.Bytes != coll.MemoryBytes() {
		t.Fatalf("stats: entries=%d bytes=%d, want 1/%d", st.Entries, st.Bytes, coll.MemoryBytes())
	}
	// The hit hands back the stored entry, not a rebuild: the nil build
	// closure above would have panicked sizing a nil collection.
}

func TestCacheLRUEviction(t *testing.T) {
	per := testColl(8, 16).MemoryBytes()
	// Room for exactly four entries; each is per == bound/4, right at the
	// admission limit.
	c := New(4 * per)
	for i := 0; i < 4; i++ {
		mustRR(t, c, rrKey(i), testColl(8, 16))
	}
	mustRR(t, c, rrKey(0), nil) // refresh 0: now 1 is least recently used
	mustRR(t, c, rrKey(4), testColl(8, 16))

	st := c.Stats()
	if st.Rejected != 0 {
		t.Fatalf("rejected=%d, want 0 (entries are exactly at the admission bound)", st.Rejected)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	if st.Entries != 4 || st.Bytes != 4*per {
		t.Fatalf("entries=%d bytes=%d, want 4/%d", st.Entries, st.Bytes, 4*per)
	}
	// 1 was the least recently used, so it (and only it) was evicted: the
	// refreshed 0 and the newer 2, 3, 4 are still resident.
	for _, i := range []int{4, 0, 3, 2} {
		if src := mustRR(t, c, rrKey(i), nil); src != Hit {
			t.Fatalf("key %d: got %v, want Hit (only the LRU key is evicted)", i, src)
		}
	}
	built := false
	_, src, err := c.RR(context.Background(), rrKey(1), func() (*RREntry, error) {
		built = true
		return &RREntry{Coll: testColl(8, 16)}, nil
	})
	if err != nil || src != Miss || !built {
		t.Fatalf("evicted key: src=%v built=%v err=%v, want Miss rebuild", src, built, err)
	}
}

func TestCacheAdmissionRejectsOversized(t *testing.T) {
	coll := testColl(64, 64)
	c := New(coll.MemoryBytes()) // bound/4 < entry size
	e, src, err := c.RR(context.Background(), rrKey(0), func() (*RREntry, error) {
		return &RREntry{Coll: coll}, nil
	})
	if err != nil || src != Miss || e == nil {
		t.Fatalf("oversized build: src=%v err=%v", src, err)
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after rejection: %+v", st)
	}
	if src := mustRR(t, c, rrKey(0), coll); src != Miss {
		t.Fatalf("rejected entry must not be resident: got %v", src)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	_, _, err := c.RR(context.Background(), rrKey(0), func() (*RREntry, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if src := mustRR(t, c, rrKey(0), testColl(2, 2)); src != Miss {
		t.Fatalf("after failed build: got %v, want Miss (errors are not cached)", src)
	}
	if st := c.Stats(); st.RRMisses != 2 {
		t.Fatalf("misses=%d, want 2", st.RRMisses)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewWith(1<<20, reg)
	const workers = 8
	gate := make(chan struct{})
	var builds int64
	var mu sync.Mutex

	var wg sync.WaitGroup
	sources := make([]Source, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, src, err := c.RR(context.Background(), rrKey(0), func() (*RREntry, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				<-gate // hold the flight open so followers pile up
				return &RREntry{Coll: testColl(4, 4)}, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			sources[i] = src
		}(i)
	}
	// Wait until the leader is in flight and the rest are enqueued behind it,
	// then release.
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		waiting := len(c.inflight) == 1
		c.mu.Unlock()
		if waiting {
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader never took flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("builds=%d, want exactly 1 (single-flight)", builds)
	}
	var miss, shared, hit int
	for _, s := range sources {
		switch s {
		case Miss:
			miss++
		case Shared:
			shared++
		case Hit:
			hit++
		}
	}
	if miss != 1 || shared+hit != workers-1 {
		t.Fatalf("sources: miss=%d shared=%d hit=%d", miss, shared, hit)
	}
	st := c.Stats()
	if st.RRMisses != 1 || st.RRHits != int64(workers-1) {
		t.Fatalf("stats: %+v", st)
	}
	if st.SharedFlights != int64(shared) {
		t.Fatalf("sharedFlights=%d, want %d", st.SharedFlights, shared)
	}
	if got := reg.Counter(obs.CacheSingleFlight).Value(); got != int64(shared) {
		t.Fatalf("obs %s=%d, want %d", obs.CacheSingleFlight, got, shared)
	}
}

func TestCacheFollowerHonorsContext(t *testing.T) {
	c := New(1 << 20)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.RR(context.Background(), rrKey(0), func() (*RREntry, error) {
			close(leaderIn)
			<-gate
			return &RREntry{Coll: testColl(2, 2)}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.RR(ctx, rrKey(0), func() (*RREntry, error) {
		t.Error("follower must not build")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err=%v, want context.Canceled", err)
	}
	close(gate)
	<-done
	// The leader's value was still cached despite the follower bailing.
	if src := mustRR(t, c, rrKey(0), nil); src != Hit {
		t.Fatalf("after leader finished: got %v, want Hit", src)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("nil Stats: %+v", got)
	}
	if c.MaxBytes() != 0 {
		t.Fatal("nil MaxBytes")
	}
}

func TestKeyRecordsCannotCollide(t *testing.T) {
	a := GraphKey{Database: "ab", Program: "c", Config: "full"}
	b := GraphKey{Database: "a", Program: "bc", Config: "full"}
	if a.id() == b.id() {
		t.Fatal("field boundary collision in GraphKey.id")
	}
	r1 := RRKey{Targets: "xy", Candidates: "z"}
	r2 := RRKey{Targets: "x", Candidates: "yz"}
	if r1.id() == r2.id() {
		t.Fatal("field boundary collision in RRKey.id")
	}
	if (GraphKey{Database: "x"}).id() == (RRKey{Algorithm: "x"}).id() {
		t.Fatal("graph and RR namespaces collide")
	}
}

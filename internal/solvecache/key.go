package solvecache

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

// Identity names the content of a solve's inputs. The cache trusts these
// strings completely: two calls presenting the same identity assert that
// the underlying database / program / random stream are byte-identical
// (including construction order — candidate ids and interned symbols
// depend on relation-creation and fact-insertion order, so "same content"
// means "same build sequence", which is what the content hashes below
// capture for text-loaded inputs).
type Identity struct {
	// Database identifies the database content. Empty means "derive it"
	// (db.Fingerprint — one pass over every tuple).
	Database string
	// Program identifies the program content. Empty means "derive it" from
	// the program's canonical rendering.
	Program string
	// Rand identifies the random stream the solve consumes, e.g. "seed:17".
	// An unidentified caller-supplied stream makes RR results uncacheable
	// (the cache cannot know two draws are the same draw); graph caching,
	// which consumes no randomness, still applies.
	Rand string
}

// Resolve fills the derivable blanks of an identity from the inputs.
// randKnown reports whether the random stream is identified: true when
// Rand was asserted, or when defaultRand says the caller runs on the
// solver's fixed default stream.
func (id Identity) Resolve(database *db.Database, prog *ast.Program, defaultRand bool) (out Identity, randKnown bool) {
	out = id
	if out.Database == "" && database != nil {
		out.Database = database.Fingerprint()
	}
	if out.Program == "" && prog != nil {
		out.Program = HashText(prog.String())
	}
	if out.Rand == "" {
		if !defaultRand {
			return out, false
		}
		out.Rand = "default"
	}
	return out, true
}

// GraphKey identifies one built WD graph: database and program content
// plus the build configuration (full preloaded build vs. a grouped magic
// union graph over specific roots).
type GraphKey struct {
	Database string
	Program  string
	// Config discriminates build shapes sharing a program: "full" for the
	// NaiveCM preloaded build, "magicg|sips=...|roots=..." for grouped
	// union graphs.
	Config string
}

func (k GraphKey) id() string {
	return record("g", k.Database, k.Program, k.Config)
}

// RRKey identifies one finalized RR collection. Everything the generated
// multiset depends on participates; knobs proven byte-identical across
// their settings (join planning, parallel worker count at a fixed
// parallelism class) are deliberately absent, and K is absent in fixed-θ
// mode (generation never reads it), which is what lets a k-sweep share one
// collection.
type RRKey struct {
	Algorithm  string
	Database   string
	Program    string
	Rand       string
	Targets    string // ordered T2 content hash (order drives root draws)
	Candidates string // ordered T1 content hash, or "edb" for the all-facts default
	Params     string // resolved θ or adaptive parameters, parallelism class, SIPS, prune
}

func (k RRKey) id() string {
	return record("r", k.Algorithm, k.Database, k.Program, k.Rand, k.Targets, k.Candidates, k.Params)
}

// record renders fields length-prefixed so no concatenation of different
// field values can collide.
func record(kind string, fields ...string) string {
	out := kind
	for _, f := range fields {
		out += fmt.Sprintf("|%d:%s", len(f), f)
	}
	return out
}

// HashText returns a short content fingerprint of a string (FNV-1a 64).
func HashText(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return hex.EncodeToString(h.Sum(nil))
}

// HashAtoms fingerprints an atom list order-sensitively (candidate ids and
// target draws are positional, so a permutation is a different key).
func HashAtoms(atoms []ast.Atom) string {
	h := fnv.New64a()
	for _, a := range atoms {
		s := a.String()
		fmt.Fprintf(h, "%d:%s", len(s), s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

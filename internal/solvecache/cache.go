// Package solvecache memoizes the two expensive phases of a CM solve
// behind content-fingerprint keys: built WD graphs, keyed by (database
// identity, program identity, build configuration), and finalized RR
// collections, keyed additionally by (target set, RR parameters, random
// stream). Both stores live in one size-bounded LRU with single-flight
// deduplication, so concurrent identical requests share one computation
// and a warm repeat of a solve costs only the selection phase.
//
// Correctness rests on three invariants the rest of the pipeline already
// provides:
//
//   - wdgraph.Graph is immutable after building and safe for concurrent
//     reads, so one cached graph can back any number of solves.
//   - im.RRCollection is read-only once finalized as long as only the
//     selection/coverage queries run (they allocate their own scratch);
//     cached collections are handed out as Snapshot views with private
//     coverage scratch, so even CoverageOf cannot alias across solves.
//   - RR generation is a deterministic function of (graph content, target
//     order, resolved θ, random stream, parallelism class), which is
//     exactly what RRKey captures — a hit replays the byte-identical
//     collection the miss would have generated.
//
// Keys are caller-asserted content identities (see Identity); the helpers
// in key.go derive them from database/program content when the caller has
// nothing cheaper. Errors are never cached.
package solvecache

import (
	"container/list"
	"context"
	"sync"

	"contribmax/internal/im"
	"contribmax/internal/obs"
	"contribmax/internal/wdgraph"
)

// Source reports where a cache lookup's value came from.
type Source int

const (
	// Miss: the caller's build function ran and its value was stored.
	Miss Source = iota
	// Hit: the value was already resident.
	Hit
	// Shared: another goroutine was computing the same key; this caller
	// waited and shares the leader's freshly built value (single-flight).
	Shared
)

// GraphEntry is one cached WD graph.
type GraphEntry struct {
	// Graph is immutable after building and safe for concurrent reads.
	Graph *wdgraph.Graph
}

// sizeBytes estimates the entry's resident size: the CSR arrays plus a
// per-node overhead for the node table and fact-id index.
func (e *GraphEntry) sizeBytes() int64 {
	const perNode = 64
	return e.Graph.MemoryBytes() + int64(e.Graph.NumNodes())*perNode
}

// RRStats is the generation-phase accounting frozen into an RR entry, so a
// cache hit can report the same cost statistics the original generation
// did (times excluded — a hit's build time is honestly ~0).
type RRStats struct {
	GraphBuilds        int
	TotalNodes         int64
	TotalEdges         int64
	MaxNodes           int
	MaxEdges           int
	PeakResidentSize   int
	AdaptiveLowerBound float64
	AdaptiveCapped     bool
}

// RREntry is one cached, finalized RR collection plus the stats of the
// generation run that produced it.
type RREntry struct {
	// Coll is finalized and must be treated as immutable; consumers take
	// Snapshot views rather than using it directly.
	Coll *im.RRCollection
	Gen  RRStats
}

func (e *RREntry) sizeBytes() int64 { return e.Coll.MemoryBytes() }

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	GraphHits     int64
	GraphMisses   int64
	RRHits        int64
	RRMisses      int64
	Evictions     int64
	Rejected      int64 // admissions refused (entry larger than the admission bound)
	SharedFlights int64 // lookups that waited on another goroutine's computation
	Bytes         int64 // resident bytes over both stores
	Entries       int
}

// Cache is the multi-tenant solve cache: one byte-bounded LRU over graph
// and RR entries with per-key single-flight. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List               // front = most recently used
	entries  map[string]*list.Element // -> *entry
	inflight map[string]*flight
	stats    Stats
	reg      *obs.Registry
}

type entry struct {
	key   string
	bytes int64
	val   any // *GraphEntry or *RREntry
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to maxBytes of resident entries (<= 0 means
// 256 MiB). Entries larger than maxBytes/4 are not admitted (they would
// evict most of the working set for one query); the computed value is
// still returned to the caller.
func New(maxBytes int64) *Cache { return NewWith(maxBytes, nil) }

// DefaultMaxBytes is the cache bound when New is given no explicit size.
const DefaultMaxBytes = 256 << 20

// NewWith is New with a metrics registry: the cache keeps the cache.*
// gauges and counters (bytes, entries, evictions, rejected, single-flight
// shares) current as it mutates. Per-solve hit/miss counters are emitted
// by the cm layer against the solve's own registry.
func NewWith(maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
		reg:      reg,
	}
}

// MaxBytes reports the configured size bound.
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}

// Stats returns a snapshot of the counters. Zero value on nil.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.Entries = c.lru.Len()
	return s
}

// Graph looks up (or builds, stores, and returns) the WD graph for key.
// Concurrent callers with the same key share one build. ctx cancels a
// waiting follower (the leader's build keeps running and is still cached).
func (c *Cache) Graph(ctx context.Context, key GraphKey, build func() (*GraphEntry, error)) (*GraphEntry, Source, error) {
	v, src, err := c.do(ctx, key.id(), func() (any, int64, error) {
		e, err := build()
		if err != nil {
			return nil, 0, err
		}
		return e, e.sizeBytes(), nil
	})
	c.count(src, &c.stats.GraphHits, &c.stats.GraphMisses)
	if err != nil {
		return nil, src, err
	}
	return v.(*GraphEntry), src, nil
}

// RR looks up (or builds, stores, and returns) the finalized RR collection
// for key, with the same single-flight semantics as Graph.
func (c *Cache) RR(ctx context.Context, key RRKey, build func() (*RREntry, error)) (*RREntry, Source, error) {
	v, src, err := c.do(ctx, key.id(), func() (any, int64, error) {
		e, err := build()
		if err != nil {
			return nil, 0, err
		}
		return e, e.sizeBytes(), nil
	})
	c.count(src, &c.stats.RRHits, &c.stats.RRMisses)
	if err != nil {
		return nil, src, err
	}
	return v.(*RREntry), src, nil
}

// count records a lookup outcome under the lock (Shared counts as a hit:
// the computation was not repeated).
func (c *Cache) count(src Source, hits, misses *int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch src {
	case Miss:
		*misses++
	default:
		*hits++
	}
	if src == Shared {
		c.stats.SharedFlights++
		if c.reg != nil {
			c.reg.Counter(obs.CacheSingleFlight).Inc()
		}
	}
}

// do is the shared lookup: resident entry, in-flight follower, or leader.
func (c *Cache) do(ctx context.Context, key string, build func() (any, int64, error)) (any, Source, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		c.mu.Unlock()
		return e.val, Hit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Shared, f.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	val, size, err := build()
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.admitLocked(key, val, size)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	if err != nil {
		return nil, Miss, err
	}
	return val, Miss, nil
}

// admitLocked stores one built value, applying admission control and LRU
// eviction. An entry larger than a quarter of the bound is rejected: one
// oversized query must not flush the whole working set.
func (c *Cache) admitLocked(key string, val any, size int64) {
	if size > c.maxBytes/4 {
		c.stats.Rejected++
		if c.reg != nil {
			c.reg.Counter(obs.CacheRejected).Inc()
		}
		return
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent leader for the same key can only have stored an
		// identical value; keep the resident one.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, bytes: size, val: val})
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.bytes -= ev.bytes
		c.stats.Evictions++
		if c.reg != nil {
			c.reg.Counter(obs.CacheEvictions).Inc()
		}
	}
	if c.reg != nil {
		c.reg.Gauge(obs.CacheBytes).Set(c.bytes)
		c.reg.Gauge(obs.CacheEntries).Set(int64(c.lru.Len()))
	}
}

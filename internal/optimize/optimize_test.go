package optimize_test

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/optimize"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFoldTrueBuiltins(t *testing.T) {
	p := mustProgram(t, `
		p(X) :- e(X), lt(1, 2).
		q(X) :- e(X), lte(X, X).
	`)
	out, rep := optimize.Program(p)
	if rep.FoldedAtoms != 2 {
		t.Errorf("folded = %d, want 2", rep.FoldedAtoms)
	}
	for _, r := range out.Rules {
		if len(r.Body) != 1 {
			t.Errorf("rule %s body = %v, want single atom", r.Label, r.Body)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDropUnsatisfiable(t *testing.T) {
	p := mustProgram(t, `
		p(X) :- e(X), lt(2, 1).
		q(X) :- e(X), neq(X, X).
		r(X) :- e(X).
	`)
	out, rep := optimize.Program(p)
	if rep.DroppedUnsatisfiable != 2 {
		t.Errorf("dropped = %d, want 2", rep.DroppedUnsatisfiable)
	}
	if len(out.Rules) != 1 || out.Rules[0].Head.Predicate != "r" {
		t.Errorf("rules = %v", out.Rules)
	}
}

func TestDropSelfSupport(t *testing.T) {
	p := mustProgram(t, `
		p(X) :- p(X).
		p(X) :- p(X), e(X).
		q(X) :- e(X).
	`)
	out, rep := optimize.Program(p)
	if rep.DroppedSelfSupport != 2 {
		t.Errorf("dropped = %d, want 2", rep.DroppedSelfSupport)
	}
	if len(out.Rules) != 1 {
		t.Errorf("rules = %v", out.Rules)
	}
}

func TestDedupOnlyDeterministicRules(t *testing.T) {
	p := mustProgram(t, `
		1.0 a: p(X, Y) :- e(X, Y).
		1.0 b: p(A, B) :- e(A, B).
		0.5 c: q(X, Y) :- e(X, Y).
		0.5 d: q(A, B) :- e(A, B).
	`)
	out, rep := optimize.Program(p)
	if rep.DroppedDuplicates != 1 {
		t.Errorf("dropped = %d, want 1 (only the prob-1 duplicate)", rep.DroppedDuplicates)
	}
	// The two 0.5 rules are independent firing chances and must survive.
	if n := len(out.RulesFor("q")); n != 2 {
		t.Errorf("q rules = %d, want 2", n)
	}
}

func TestNoChangeReport(t *testing.T) {
	p := mustProgram(t, `p(X) :- e(X, Y), neq(X, Y).`)
	out, rep := optimize.Program(p)
	if rep.Changed() {
		t.Errorf("unexpected changes: %+v", rep)
	}
	if !out.Rules[0].Equal(p.Rules[0]) {
		t.Error("rule altered without report")
	}
	// Original must not be mutated.
	p2, _ := optimize.Program(mustProgram(t, `p(X) :- e(X), lt(1, 2).`))
	_ = p2
}

// TestOptimizePreservesFixpoint is the property test: on random programs
// extended with random built-in guards, the optimized program must derive
// exactly the same facts.
func TestOptimizePreservesFixpoint(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xBEE))
		prog := randomGuardedProgram(rng)
		if prog.Validate() != nil {
			continue
		}
		opt, _ := optimize.Program(prog)
		if err := opt.Validate(); err != nil {
			t.Fatalf("trial %d: optimized program invalid: %v\n%s", trial, err, opt)
		}
		d1 := randomDB(rng)
		d2 := cloneDB(t, d1)
		f1 := evalAll(t, prog, d1)
		f2 := evalAll(t, opt, d2)
		if f1 != f2 {
			t.Fatalf("trial %d: fixpoints differ\noriginal:\n%s\noptimized:\n%s\n%s\nvs\n%s",
				trial, prog, opt, f1, f2)
		}
	}
}

func randomGuardedProgram(rng *rand.Rand) *ast.Program {
	prog := ast.NewProgram()
	preds := []string{"p", "q"}
	vars := []string{"X", "Y"}
	builtins := []string{ast.BuiltinEq, ast.BuiltinNeq, ast.BuiltinLt, ast.BuiltinLte, ast.BuiltinGt, ast.BuiltinGte}
	n := rng.IntN(5) + 1
	for i := 0; i < n; i++ {
		head := ast.NewAtom(preds[rng.IntN(2)], ast.V("X"))
		body := []ast.Atom{ast.NewAtom("e", ast.V("X"), ast.V("Y"))}
		if rng.IntN(2) == 0 {
			body = append(body, ast.NewAtom(preds[rng.IntN(2)], ast.V("Y")))
		}
		// A random guard: constants, same-var, or mixed.
		b := builtins[rng.IntN(len(builtins))]
		switch rng.IntN(3) {
		case 0:
			body = append(body, ast.NewAtom(b, ast.C(strconv(rng.IntN(3))), ast.C(strconv(rng.IntN(3)))))
		case 1:
			v := vars[rng.IntN(2)]
			body = append(body, ast.NewAtom(b, ast.V(v), ast.V(v)))
		default:
			body = append(body, ast.NewAtom(b, ast.V(vars[rng.IntN(2)]), ast.V(vars[rng.IntN(2)])))
		}
		prog.Add(ast.Rule{Label: fmt.Sprintf("r%d", i), Prob: 1, Head: head, Body: body})
	}
	return prog
}

func strconv(i int) string { return fmt.Sprintf("%d", i) }

func randomDB(rng *rand.Rand) *db.Database {
	d := db.NewDatabase()
	n := rng.IntN(10) + 2
	for i := 0; i < n; i++ {
		d.MustInsertAtom(ast.NewAtom("e",
			ast.C(strconv(rng.IntN(4))), ast.C(strconv(rng.IntN(4)))))
	}
	return d
}

func cloneDB(t *testing.T, d *db.Database) *db.Database {
	t.Helper()
	out := db.NewDatabase()
	for _, name := range d.RelationNames() {
		for _, f := range d.Facts(name) {
			out.MustInsertAtom(f)
		}
	}
	return out
}

func evalAll(t *testing.T, prog *ast.Program, d *db.Database) string {
	t.Helper()
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{MaxRounds: 100}); err != nil {
		t.Fatal(err)
	}
	var facts []string
	for _, pred := range []string{"p", "q"} {
		for _, a := range d.Facts(pred) {
			facts = append(facts, a.String())
		}
	}
	sort.Strings(facts)
	return fmt.Sprint(facts)
}

// TestOptimizeWorkloadProgramsUnchanged: the curated workload programs
// contain nothing to optimize away (sanity that the optimizer is not
// overeager).
func TestOptimizeWorkloadProgramsUnchanged(t *testing.T) {
	for _, p := range []*ast.Program{
		workload.TCProgram(1, 0.8),
		workload.ExplainProgram(),
		workload.IRISProgram(),
		workload.AMIEProgram(),
	} {
		if _, rep := optimize.Program(p); rep.Changed() {
			t.Errorf("optimizer changed a workload program: %+v", rep)
		}
	}
}

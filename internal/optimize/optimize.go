// Package optimize implements semantics-preserving datalog program
// simplifications: constant folding of built-in comparisons, removal of
// rules that can never fire or never derive anything new, and
// deduplication of redundant deterministic rules.
//
// All transformations preserve the program's fixpoint P(D) for every
// database and preserve the contribution function of the paper (random-
// subgraph reachability): a dropped rule either never produces an
// instantiation (unsatisfiable built-in) or only produces instantiations
// whose head is one of their own body facts (which add no reachability).
package optimize

import (
	"strconv"

	"contribmax/internal/ast"
)

// Report counts what the optimizer did.
type Report struct {
	// FoldedAtoms is the number of always-true built-in atoms removed from
	// rule bodies.
	FoldedAtoms int
	// DroppedUnsatisfiable is the number of rules removed because a
	// built-in body atom can never hold.
	DroppedUnsatisfiable int
	// DroppedSelfSupport is the number of rules removed because the head
	// atom occurs among the rule's own positive body atoms.
	DroppedSelfSupport int
	// DroppedDuplicates is the number of probability-1 rules removed as
	// exact duplicates (up to variable renaming) of an earlier
	// probability-1 rule.
	DroppedDuplicates int
}

// Changed reports whether the optimizer modified anything.
func (r Report) Changed() bool {
	return r.FoldedAtoms+r.DroppedUnsatisfiable+r.DroppedSelfSupport+r.DroppedDuplicates > 0
}

// Program returns an optimized copy of p (p itself is not modified) and a
// report. The result is validated; optimization never invalidates a valid
// program.
func Program(p *ast.Program) (*ast.Program, Report) {
	var rep Report
	out := ast.NewProgram()
	seen := map[string]bool{}
rules:
	for _, r := range p.Rules {
		nr := r.Clone()
		body := nr.Body[:0]
		for _, b := range nr.Body {
			switch foldAtom(b) {
			case foldTrue:
				rep.FoldedAtoms++
				continue
			case foldFalse:
				rep.DroppedUnsatisfiable++
				continue rules
			}
			body = append(body, b)
		}
		nr.Body = body
		// Self-supporting rule: the head among its own positive body atoms
		// can only re-derive an existing fact through itself.
		for _, b := range nr.Body {
			if !b.Negated && b.Equal(nr.Head) {
				rep.DroppedSelfSupport++
				continue rules
			}
		}
		if nr.Prob >= 1 {
			sig := canonicalSig(nr)
			if seen[sig] {
				rep.DroppedDuplicates++
				continue rules
			}
			seen[sig] = true
		}
		out.Add(nr)
	}
	return out, rep
}

type foldResult int

const (
	foldKeep foldResult = iota
	foldTrue
	foldFalse
)

// foldAtom statically evaluates a built-in atom when possible: both
// arguments constant, or both the same variable.
func foldAtom(a ast.Atom) foldResult {
	if !ast.IsBuiltin(a.Predicate) || a.Arity() != 2 {
		return foldKeep
	}
	x, y := a.Terms[0], a.Terms[1]
	if x.IsConst() && y.IsConst() {
		if ast.EvalBuiltin(a.Predicate, x.Name, y.Name) {
			return foldTrue
		}
		return foldFalse
	}
	if x.IsVar() && y.IsVar() && x.Name == y.Name {
		// Reflexive instance: X op X.
		switch a.Predicate {
		case ast.BuiltinEq, ast.BuiltinLte, ast.BuiltinGte:
			return foldTrue
		case ast.BuiltinNeq, ast.BuiltinLt, ast.BuiltinGt:
			return foldFalse
		}
	}
	return foldKeep
}

// canonicalSig renders a rule with variables renamed v0, v1, ... in order
// of first occurrence (head first), so structurally identical rules share
// a signature.
func canonicalSig(r ast.Rule) string {
	names := map[string]string{}
	canon := func(a ast.Atom) string {
		s := ""
		if a.Negated {
			s = "!"
		}
		s += a.Predicate + "("
		for i, t := range a.Terms {
			if i > 0 {
				s += ","
			}
			if t.IsVar() {
				n, ok := names[t.Name]
				if !ok {
					n = "v" + strconv.Itoa(len(names))
					names[t.Name] = n
				}
				s += n
			} else {
				s += "\x00" + t.Name
			}
		}
		return s + ")"
	}
	sig := canon(r.Head) + ":-"
	for _, b := range r.Body {
		sig += canon(b) + ","
	}
	return sig
}

package db

import "sync"

// TupleID identifies a tuple within a relation. Ids are dense and issued in
// insertion order, so the tuples added by one evaluation round form a
// contiguous id range — the property semi-naive evaluation relies on.
type TupleID int32

// Relation is an append-only set of tuples of a fixed arity with lazily
// created hash indexes over binding patterns.
//
// Concurrency: a relation that is not currently being inserted into may be
// read — including index-building LookupPattern and EnsureIndex calls —
// from multiple goroutines (the parallel Magic variants share edb
// relations across workers this way, and the parallel semi-naive engine
// has its workers scan relations concurrently; idxMu guards lazy index
// creation). Insert is single-writer and must not run concurrently with
// any reader or another Insert: the engine alternates read-only scan
// phases with a single-goroutine merge phase, with a happens-before edge
// between them. Callers that scan in parallel should EnsureIndex the
// binding patterns they will use up front, so the scan phase never takes
// the index-creation write lock.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	byKey  map[string]TupleID

	// indexes maps a binding-pattern bitmask (bit i set = position i bound)
	// to a hash index from projected key to the ids of matching tuples.
	idxMu   sync.RWMutex
	indexes map[uint32]*patternIndex
}

type patternIndex struct {
	positions []int // sorted bound positions
	buckets   map[string][]TupleID
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{
		name:  name,
		arity: arity,
		byKey: make(map[string]TupleID),
	}
}

// Name returns the relation's predicate name.
func (r *Relation) Name() string { return r.name }

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the tuple with the given id. The returned slice must not be
// modified.
func (r *Relation) Tuple(id TupleID) Tuple { return r.tuples[id] }

// Contains reports whether the relation holds t, and its id if so.
func (r *Relation) Contains(t Tuple) (TupleID, bool) {
	id, ok := r.byKey[t.Key()]
	return id, ok
}

// Insert adds t if absent. It returns the tuple's id and whether it was
// newly added. The relation keeps its own copy of new tuples, so callers may
// reuse the argument slice.
func (r *Relation) Insert(t Tuple) (TupleID, bool) {
	key := t.Key()
	if id, ok := r.byKey[key]; ok {
		return id, false
	}
	id := TupleID(len(r.tuples))
	r.tuples = append(r.tuples, t.Clone())
	r.byKey[key] = id
	// The write lock (not RLock: bucket appends mutate the index maps, and
	// the single-writer contract still allows a concurrent EnsureIndex from
	// a stale reader to be in flight) keeps index maintenance consistent
	// with lazy index creation.
	r.idxMu.Lock()
	for _, idx := range r.indexes {
		k := projKey(r.tuples[id], idx.positions)
		idx.buckets[k] = append(idx.buckets[k], id)
	}
	r.idxMu.Unlock()
	return id, true
}

// LookupPattern returns the ids of tuples matching the given partial
// binding: mask has bit i set iff position i is bound, and bound holds the
// required symbol for every bound position (unbound positions are ignored).
// With an empty mask it returns nil and false=all, signalled by ok=false; use
// Len and Tuple to scan in that case.
//
// The first call with a given mask builds the index (O(n)); subsequent calls
// are O(1) plus output. Returned slices are internal and must not be
// modified; they are ordered by ascending id.
func (r *Relation) LookupPattern(mask uint32, bound Tuple) (ids []TupleID, ok bool) {
	if mask == 0 {
		return nil, false
	}
	idx := r.index(mask)
	key := projKey(bound, idx.positions)
	return idx.buckets[key], true
}

// EnsureIndex pre-builds the hash index for the given binding-pattern
// mask (a no-op for mask 0 or an existing index). The parallel engine
// calls this for every pattern a stratum's join plans will probe before
// fanning scans out over workers, so the read phase is lock-free: no
// worker ever takes the index-creation write lock mid-scan.
func (r *Relation) EnsureIndex(mask uint32) {
	if mask == 0 {
		return
	}
	r.index(mask)
}

func (r *Relation) index(mask uint32) *patternIndex {
	r.idxMu.RLock()
	idx, ok := r.indexes[mask]
	r.idxMu.RUnlock()
	if ok {
		return idx
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if r.indexes == nil {
		r.indexes = make(map[uint32]*patternIndex)
	}
	if idx, ok := r.indexes[mask]; ok {
		return idx
	}
	var positions []int
	for i := 0; i < r.arity; i++ {
		if mask&(1<<uint(i)) != 0 {
			positions = append(positions, i)
		}
	}
	idx = &patternIndex{positions: positions, buckets: make(map[string][]TupleID)}
	for id, t := range r.tuples {
		k := projKey(t, positions)
		idx.buckets[k] = append(idx.buckets[k], TupleID(id))
	}
	r.indexes[mask] = idx
	return idx
}

// EstimatedBytes returns a rough in-memory size of the relation's tuple
// store (excluding indexes), used by the experiment harness to report
// memory consumption.
func (r *Relation) EstimatedBytes() int64 {
	return int64(len(r.tuples)) * int64(4*r.arity+16)
}

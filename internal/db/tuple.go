package db

import "strings"

// Tuple is a sequence of interned symbols. Tuples are immutable by
// convention: once inserted into a relation they must not be modified.
type Tuple []Sym

// Key packs the tuple into a string usable as a map key. The packing is
// 4 bytes per symbol, big-endian, which is injective for a fixed arity.
func (t Tuple) Key() string {
	var sb strings.Builder
	sb.Grow(4 * len(t))
	for _, s := range t {
		sb.WriteByte(byte(s >> 24))
		sb.WriteByte(byte(s >> 16))
		sb.WriteByte(byte(s >> 8))
		sb.WriteByte(byte(s))
	}
	return sb.String()
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a fresh copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// projKey packs the symbols of t at the given positions into a map key. It
// is used for binding-pattern index keys; positions must be sorted.
func projKey(t Tuple, positions []int) string {
	var sb strings.Builder
	sb.Grow(4 * len(positions))
	for _, p := range positions {
		s := t[p]
		sb.WriteByte(byte(s >> 24))
		sb.WriteByte(byte(s >> 16))
		sb.WriteByte(byte(s >> 8))
		sb.WriteByte(byte(s))
	}
	return sb.String()
}

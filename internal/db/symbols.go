// Package db provides the in-memory database substrate: a symbol table
// interning constants to dense ids, tuples of interned symbols, relations
// with lazily built hash indexes, and a database mapping predicate names to
// relations.
//
// The representation is optimized for the access patterns of semi-naive
// datalog evaluation: append-only relations with insertion-ordered tuple
// ids (so "the delta of iteration i" is an id range), and per-binding-
// pattern hash indexes for sideways information passing joins.
package db

// Sym is an interned constant symbol. Symbols are dense, starting at 0, in
// interning order.
type Sym int32

// SymbolTable interns constant names to dense Sym ids. The zero value is
// ready to use. SymbolTable is not safe for concurrent mutation.
type SymbolTable struct {
	names []string
	ids   map[string]Sym
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Sym)}
}

// Intern returns the id for name, assigning a fresh one on first use.
func (st *SymbolTable) Intern(name string) Sym {
	if st.ids == nil {
		st.ids = make(map[string]Sym)
	}
	if id, ok := st.ids[name]; ok {
		return id
	}
	id := Sym(len(st.names))
	st.names = append(st.names, name)
	st.ids[name] = id
	return id
}

// Lookup returns the id for name if it has been interned.
func (st *SymbolTable) Lookup(name string) (Sym, bool) {
	id, ok := st.ids[name]
	return id, ok
}

// Name returns the name of an interned symbol. It panics on an id that was
// never issued, which always indicates a programming error.
func (st *SymbolTable) Name(id Sym) string {
	return st.names[id]
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int { return len(st.names) }

package db_test

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

func TestSymbolTableInternIsIdempotent(t *testing.T) {
	st := db.NewSymbolTable()
	a := st.Intern("france")
	b := st.Intern("cuba")
	if a == b {
		t.Error("distinct names share an id")
	}
	if st.Intern("france") != a {
		t.Error("re-intern changed id")
	}
	if st.Name(a) != "france" || st.Name(b) != "cuba" {
		t.Error("Name round trip failed")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
	if id, ok := st.Lookup("cuba"); !ok || id != b {
		t.Error("Lookup(cuba) failed")
	}
	if _, ok := st.Lookup("nowhere"); ok {
		t.Error("Lookup(nowhere) should miss")
	}
}

func TestSymbolTableZeroValueUsable(t *testing.T) {
	var st db.SymbolTable
	if st.Intern("x") != 0 {
		t.Error("first intern of zero-value table should be 0")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Property: Key is injective on tuples of the same arity.
	f := func(a, b []int16) bool {
		ta := make(db.Tuple, len(a))
		tb := make(db.Tuple, len(b))
		for i, v := range a {
			ta[i] = db.Sym(v)
		}
		for i, v := range b {
			tb[i] = db.Sym(v)
		}
		if len(ta) == len(tb) {
			return (ta.Key() == tb.Key()) == ta.Equal(tb)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestRelationInsertAndContains(t *testing.T) {
	r := db.NewRelation("e", 2)
	id1, added := r.Insert(db.Tuple{1, 2})
	if !added || id1 != 0 {
		t.Errorf("first insert: id=%d added=%v", id1, added)
	}
	id2, added := r.Insert(db.Tuple{1, 2})
	if added || id2 != id1 {
		t.Error("duplicate insert should be a no-op returning the old id")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if id, ok := r.Contains(db.Tuple{1, 2}); !ok || id != id1 {
		t.Error("Contains failed")
	}
	if _, ok := r.Contains(db.Tuple{2, 1}); ok {
		t.Error("Contains(2,1) should miss")
	}
}

func TestRelationInsertCopiesTuple(t *testing.T) {
	r := db.NewRelation("e", 2)
	buf := db.Tuple{1, 2}
	id, _ := r.Insert(buf)
	buf[0] = 99
	if r.Tuple(id)[0] != 1 {
		t.Error("Insert did not copy the tuple")
	}
}

func TestLookupPattern(t *testing.T) {
	r := db.NewRelation("e", 2)
	r.Insert(db.Tuple{1, 2})
	r.Insert(db.Tuple{1, 3})
	r.Insert(db.Tuple{2, 3})

	ids, ok := r.LookupPattern(0b01, db.Tuple{1, 0})
	if !ok || len(ids) != 2 {
		t.Errorf("first-bound lookup = %v ok=%v", ids, ok)
	}
	ids, ok = r.LookupPattern(0b10, db.Tuple{0, 3})
	if !ok || len(ids) != 2 {
		t.Errorf("second-bound lookup = %v ok=%v", ids, ok)
	}
	ids, ok = r.LookupPattern(0b11, db.Tuple{2, 3})
	if !ok || len(ids) != 1 || ids[0] != 2 {
		t.Errorf("both-bound lookup = %v", ids)
	}
	if _, ok := r.LookupPattern(0, nil); ok {
		t.Error("empty mask should report no index")
	}
}

func TestLookupPatternMaintainedAcrossInserts(t *testing.T) {
	r := db.NewRelation("e", 2)
	r.Insert(db.Tuple{1, 2})
	// Build the index, then insert more tuples; index must stay fresh.
	if ids, _ := r.LookupPattern(0b01, db.Tuple{1, 0}); len(ids) != 1 {
		t.Fatalf("pre-insert lookup = %v", ids)
	}
	r.Insert(db.Tuple{1, 7})
	r.Insert(db.Tuple{2, 7})
	ids, _ := r.LookupPattern(0b01, db.Tuple{1, 0})
	if len(ids) != 2 {
		t.Errorf("post-insert lookup = %v", ids)
	}
	// Ids must be ascending (the engine's range filters rely on it).
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Error("ids not ascending")
	}
}

func TestLookupPatternProperty(t *testing.T) {
	// Property: for random tuple sets, an indexed lookup returns exactly
	// the tuples a linear scan finds.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := db.NewRelation("p", 3)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			r.Insert(db.Tuple{db.Sym(rng.Intn(4)), db.Sym(rng.Intn(4)), db.Sym(rng.Intn(4))})
		}
		mask := uint32(rng.Intn(7) + 1)
		probe := db.Tuple{db.Sym(rng.Intn(4)), db.Sym(rng.Intn(4)), db.Sym(rng.Intn(4))}
		got, ok := r.LookupPattern(mask, probe)
		if !ok {
			t.Fatal("index expected")
		}
		var want []db.TupleID
		for id := 0; id < r.Len(); id++ {
			tup := r.Tuple(db.TupleID(id))
			match := true
			for pos := 0; pos < 3; pos++ {
				if mask&(1<<uint(pos)) != 0 && tup[pos] != probe[pos] {
					match = false
					break
				}
			}
			if match {
				want = append(want, db.TupleID(id))
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d mask %b probe %v: got %v want %v", trial, mask, probe, got, want)
		}
	}
}

func TestDatabaseInsertAndFacts(t *testing.T) {
	d := db.NewDatabase()
	a := ast.NewAtom("exports", ast.C("france"), ast.C("wine"))
	rel, id, added, err := d.InsertAtom(a)
	if err != nil || !added || rel.Name() != "exports" {
		t.Fatalf("InsertAtom: %v %v %v", rel, added, err)
	}
	if got := d.AtomOf(rel, id); !got.Equal(a) {
		t.Errorf("AtomOf = %s", got)
	}
	facts := d.Facts("exports")
	if len(facts) != 1 || !facts[0].Equal(a) {
		t.Errorf("Facts = %v", facts)
	}
	if d.Facts("nothing") != nil {
		t.Error("Facts of unknown relation should be nil")
	}
	if d.TotalTuples() != 1 {
		t.Errorf("TotalTuples = %d", d.TotalTuples())
	}
	if _, _, _, err := d.InsertAtom(ast.NewAtom("p", ast.V("X"))); err == nil {
		t.Error("non-ground insert should error")
	}
}

func TestDatabaseArityPanic(t *testing.T) {
	d := db.NewDatabase()
	d.Relation("p", 2)
	defer func() {
		if recover() == nil {
			t.Error("arity clash should panic")
		}
	}()
	d.Relation("p", 3)
}

func TestCloneSchemaAndAttach(t *testing.T) {
	d := db.NewDatabase()
	d.MustInsertAtom(ast.NewAtom("e", ast.C("a"), ast.C("b")))
	c := d.CloneSchema()
	rel, _ := d.Lookup("e")
	c.Attach(rel)
	// Shared relation: inserts through either handle are visible to both.
	got, ok := c.Lookup("e")
	if !ok || got != rel {
		t.Fatal("Attach did not share the relation")
	}
	// Symbols shared too.
	if _, ok := c.Symbols().Lookup("a"); !ok {
		t.Error("symbol table not shared")
	}
	// Re-attaching the same relation is a no-op; a different one panics.
	c.Attach(rel)
	other := db.NewRelation("e", 2)
	defer func() {
		if recover() == nil {
			t.Error("attaching a different relation under a taken name should panic")
		}
	}()
	c.Attach(other)
}

func TestRelationNamesOrderedAndStats(t *testing.T) {
	d := db.NewDatabase()
	d.MustInsertAtom(ast.NewAtom("zz", ast.C("1")))
	d.MustInsertAtom(ast.NewAtom("aa", ast.C("2")))
	if got := d.RelationNames(); fmt.Sprint(got) != "[zz aa]" {
		t.Errorf("RelationNames = %v (want creation order)", got)
	}
	if s := d.Stats(); !strings.Contains(s, "aa/1: 1 tuples") {
		t.Errorf("Stats = %q", s)
	}
}

func TestMatch(t *testing.T) {
	d := db.NewDatabase()
	for _, f := range []string{"a b", "a c", "b b", "c a"} {
		var x, y string
		fmt.Sscanf(f, "%s %s", &x, &y)
		d.MustInsertAtom(ast.NewAtom("e", ast.C(x), ast.C(y)))
	}
	got, err := d.Match(ast.NewAtom("e", ast.C("a"), ast.V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("e(a, Y) = %v, want 2 matches", got)
	}
	got, err = d.Match(ast.NewAtom("e", ast.V("X"), ast.V("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].String() != "e(b, b)" {
		t.Errorf("e(X, X) = %v", got)
	}
	got, err = d.Match(ast.NewAtom("e", ast.V("X"), ast.V("Y")))
	if err != nil || len(got) != 4 {
		t.Errorf("e(X, Y) = %v err=%v", got, err)
	}
	got, err = d.Match(ast.NewAtom("e", ast.C("zz"), ast.V("Y")))
	if err != nil || got != nil {
		t.Errorf("unknown constant: %v err=%v", got, err)
	}
	got, err = d.Match(ast.NewAtom("missing", ast.V("X")))
	if err != nil || got != nil {
		t.Errorf("unknown relation: %v err=%v", got, err)
	}
	if _, err := d.Match(ast.NewAtom("e", ast.V("X"))); err == nil {
		t.Error("arity mismatch should error")
	}
	neg := ast.NewAtom("e", ast.V("X"), ast.V("Y"))
	neg.Negated = true
	if _, err := d.Match(neg); err == nil {
		t.Error("negated pattern should error")
	}
}

func TestLoadCSVFileAndEstimatedBytes(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/edges.csv"
	if err := os.WriteFile(path, []byte("a,b\nb,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase()
	n, err := d.LoadCSVFile("edge", 2, path, false)
	if err != nil || n != 2 {
		t.Fatalf("LoadCSVFile: n=%d err=%v", n, err)
	}
	rel, _ := d.Lookup("edge")
	if rel.EstimatedBytes() <= 0 {
		t.Error("EstimatedBytes should be positive")
	}
	if _, err := d.LoadCSVFile("edge", 2, dir+"/missing.csv", false); err == nil {
		t.Error("missing CSV should error")
	}
}

func TestEnsureRelationErrors(t *testing.T) {
	d := db.NewDatabase()
	rel, err := d.EnsureRelation("p", 2)
	if err != nil || rel == nil {
		t.Fatalf("EnsureRelation fresh: %v", err)
	}
	again, err := d.EnsureRelation("p", 2)
	if err != nil || again != rel {
		t.Fatalf("EnsureRelation same arity must return the same relation (err %v)", err)
	}
	if _, err := d.EnsureRelation("p", 3); err == nil {
		t.Fatal("EnsureRelation arity clash: want error, got nil")
	} else if !strings.Contains(err.Error(), "p") || !strings.Contains(err.Error(), "2") {
		t.Errorf("arity-clash error %q should name the predicate and existing arity", err)
	}
}

func TestAttachSharedErrors(t *testing.T) {
	d := db.NewDatabase()
	d.MustInsertAtom(ast.NewAtom("e", ast.C("a"), ast.C("b")))
	rel, _ := d.Lookup("e")

	c := d.CloneSchema()
	if err := c.AttachShared(rel); err != nil {
		t.Fatalf("AttachShared: %v", err)
	}
	if err := c.AttachShared(rel); err != nil {
		t.Fatalf("AttachShared same relation twice must be a no-op: %v", err)
	}
	if err := c.AttachShared(db.NewRelation("e", 2)); err == nil {
		t.Fatal("AttachShared different relation under a taken name: want error")
	}
}

func TestInvariantPanicMessage(t *testing.T) {
	d := db.NewDatabase()
	d.Relation("p", 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("arity clash via Relation should panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "db: invariant violated") {
			t.Errorf("panic %v should carry the invariant prefix", r)
		}
	}()
	d.Relation("p", 3)
}

package db

import (
	"fmt"

	"contribmax/internal/ast"
)

// Match returns the tuples of pattern's relation that unify with pattern:
// constants must match, repeated variables must bind consistently, and
// distinct variables are unconstrained. Results are in insertion order.
//
// Match is a point-lookup/scan convenience for inspecting databases (the
// cmrun/wddump CLIs and the examples); full conjunctive queries go through
// a datalog rule and the engine.
func (d *Database) Match(pattern ast.Atom) ([]ast.Atom, error) {
	if pattern.Negated {
		return nil, fmt.Errorf("db: cannot match a negated pattern")
	}
	rel, ok := d.relations[pattern.Predicate]
	if !ok {
		return nil, nil
	}
	if rel.Arity() != pattern.Arity() {
		return nil, fmt.Errorf("db: pattern %s has arity %d, relation has %d", pattern, pattern.Arity(), rel.Arity())
	}

	// Bound positions: constants and the first occurrence of each repeated
	// variable cannot be pre-bound, but constants can use the pattern
	// index.
	var mask uint32
	lookup := make(Tuple, rel.Arity())
	for i, t := range pattern.Terms {
		if t.IsConst() {
			sym, ok := d.symbols.Lookup(t.Name)
			if !ok {
				return nil, nil // constant never interned: no matches
			}
			mask |= 1 << uint(i)
			lookup[i] = sym
		}
	}

	// Repeated-variable positions: map variable name to its first
	// position.
	firstPos := map[string]int{}
	type eqPair struct{ a, b int }
	var eqs []eqPair
	for i, t := range pattern.Terms {
		if !t.IsVar() {
			continue
		}
		if p, seen := firstPos[t.Name]; seen {
			eqs = append(eqs, eqPair{p, i})
		} else {
			firstPos[t.Name] = i
		}
	}

	matches := func(t Tuple) bool {
		for _, e := range eqs {
			if t[e.a] != t[e.b] {
				return false
			}
		}
		return true
	}

	var out []ast.Atom
	if ids, ok := rel.LookupPattern(mask, lookup); ok {
		for _, id := range ids {
			if matches(rel.Tuple(id)) {
				out = append(out, d.AtomOf(rel, id))
			}
		}
		return out, nil
	}
	for id := 0; id < rel.Len(); id++ {
		if matches(rel.Tuple(TupleID(id))) {
			out = append(out, d.AtomOf(rel, TupleID(id)))
		}
	}
	return out, nil
}

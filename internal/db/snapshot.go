package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Snapshot format: a compact binary serialization of a database, so large
// generated or imported fact sets load without re-parsing text. Layout
// (all integers unsigned varints, strings length-prefixed):
//
//	magic "CMDB" version 1
//	symbolCount, symbols...            (in id order)
//	relationCount
//	  per relation: name, arity, tupleCount, tuples (arity syms each)
//
// Relations are written in creation order, tuples in insertion order, so a
// load reproduces ids exactly — snapshots are stable fixtures for
// deterministic experiments.
const (
	snapshotMagic   = "CMDB"
	snapshotVersion = 1
)

// WriteSnapshot serializes the database to w.
func (d *Database) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeUvarint(bw, snapshotVersion)
	writeUvarint(bw, uint64(d.symbols.Len()))
	for i := 0; i < d.symbols.Len(); i++ {
		writeString(bw, d.symbols.Name(Sym(i)))
	}
	writeUvarint(bw, uint64(len(d.order)))
	for _, name := range d.order {
		rel := d.relations[name]
		writeString(bw, name)
		writeUvarint(bw, uint64(rel.Arity()))
		writeUvarint(bw, uint64(rel.Len()))
		for id := 0; id < rel.Len(); id++ {
			for _, s := range rel.Tuple(TupleID(id)) {
				writeUvarint(bw, uint64(s))
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a database written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("db: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("db: not a snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("db: unsupported snapshot version %d", version)
	}
	d := NewDatabase()
	nSyms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSyms; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		if got := d.symbols.Intern(name); got != Sym(i) {
			return nil, fmt.Errorf("db: snapshot symbol %q duplicated", name)
		}
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nRels; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if arity > 31 {
			return nil, fmt.Errorf("db: snapshot relation %s arity %d exceeds 31", name, arity)
		}
		nTuples, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rel, err := d.EnsureRelation(name, int(arity))
		if err != nil {
			return nil, fmt.Errorf("db: corrupt snapshot: %w", err)
		}
		t := make(Tuple, arity)
		for j := uint64(0); j < nTuples; j++ {
			for k := range t {
				v, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				if v >= nSyms {
					return nil, fmt.Errorf("db: snapshot tuple references unknown symbol %d", v)
				}
				t[k] = Sym(v)
			}
			rel.Insert(t)
		}
	}
	return d, nil
}

// SaveSnapshot writes the database to a file.
func (d *Database) SaveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a database from a file.
func LoadSnapshot(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 20
	if n > maxString {
		return "", fmt.Errorf("db: snapshot string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// LoadCSV bulk-loads rows from r into the relation pred, one tuple per
// record. arity fixes the relation's width; records with a different field
// count are an error. If header is true the first record is skipped.
// It returns the number of newly inserted (non-duplicate) tuples.
//
// This is the bulk ingestion path for real datasets (knowledge-base dumps,
// edge lists); the textual fact files of internal/parser remain the
// human-readable path.
func (d *Database) LoadCSV(pred string, arity int, r io.Reader, header bool) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = arity
	cr.ReuseRecord = true
	rel, err := d.EnsureRelation(pred, arity)
	if err != nil {
		return 0, err
	}
	added := 0
	first := true
	t := make(Tuple, arity)
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, fmt.Errorf("db: loading %s: %w", pred, err)
		}
		if first && header {
			first = false
			continue
		}
		first = false
		for i, field := range record {
			t[i] = d.symbols.Intern(field)
		}
		if _, fresh := rel.Insert(t); fresh {
			added++
		}
	}
}

// LoadCSVFile is LoadCSV over a file path.
func (d *Database) LoadCSVFile(pred string, arity int, path string, header bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := d.LoadCSV(pred, arity, f, header)
	if err != nil {
		return n, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// WriteCSV writes the relation pred as CSV rows to w (no header).
func (d *Database) WriteCSV(pred string, w io.Writer) error {
	rel, ok := d.relations[pred]
	if !ok {
		return fmt.Errorf("db: unknown relation %s", pred)
	}
	cw := csv.NewWriter(w)
	record := make([]string, rel.Arity())
	for id := 0; id < rel.Len(); id++ {
		for i, s := range rel.Tuple(TupleID(id)) {
			record[i] = d.symbols.Name(s)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

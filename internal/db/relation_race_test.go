package db_test

import (
	"fmt"
	"sync"
	"testing"

	"contribmax/internal/db"
)

// raceRelation builds a 3-ary relation with enough tuples that lazy index
// construction does real work while racing readers are in flight.
func raceRelation(t *testing.T) *db.Relation {
	t.Helper()
	d := db.NewDatabase()
	rel, err := d.EnsureRelation("r", 3)
	if err != nil {
		t.Fatal(err)
	}
	tuple := make(db.Tuple, 3)
	for i := 0; i < 64; i++ {
		for j := 0; j < 8; j++ {
			tuple[0] = d.Symbols().Intern(fmt.Sprintf("a%d", i%16))
			tuple[1] = d.Symbols().Intern(fmt.Sprintf("b%d", j))
			tuple[2] = d.Symbols().Intern(fmt.Sprintf("c%d", (i+j)%8))
			rel.Insert(tuple)
		}
	}
	return rel
}

// TestRelationConcurrentReaders pins the concurrent-reader contract the
// parallel engine relies on: many goroutines may call LookupPattern —
// including first-touch calls on the same fresh mask, which trigger the
// lazy index build — plus Tuple/Contains/Len, with no external locking.
// Run under -race (make race covers internal/db).
func TestRelationConcurrentReaders(t *testing.T) {
	rel := raceRelation(t)
	bound := make(db.Tuple, 3)
	copy(bound, rel.Tuple(0))

	const readers = 16
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lookup := make(db.Tuple, 3)
			copy(lookup, bound)
			// Every goroutine touches every mask, so several race to build
			// the same index on first touch.
			for round := 0; round < 50; round++ {
				for mask := uint32(1); mask < 1<<3; mask++ {
					ids, ok := rel.LookupPattern(mask, lookup)
					if !ok {
						t.Errorf("mask %b: expected index path", mask)
						return
					}
					for _, id := range ids {
						tu := rel.Tuple(id)
						if _, present := rel.Contains(tu); !present {
							t.Errorf("tuple %d not found by Contains", id)
							return
						}
					}
				}
				if rel.Len() == 0 {
					t.Error("relation emptied under readers")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRelationEnsureIndexThenPhasedInserts mirrors the parallel engine's
// round structure: indexes are pre-built, then rounds alternate a
// read-only parallel scan phase with a single-goroutine insert phase
// (WaitGroup joins provide the happens-before edges). Readers must observe
// a consistent prefix in every round.
func TestRelationEnsureIndexThenPhasedInserts(t *testing.T) {
	d := db.NewDatabase()
	rel, err := d.EnsureRelation("s", 2)
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint32(1); mask < 1<<2; mask++ {
		rel.EnsureIndex(mask)
	}
	key := d.Symbols().Intern("k")
	tuple := make(db.Tuple, 2)
	for round := 0; round < 20; round++ {
		// Insert phase: single writer.
		for i := 0; i < 10; i++ {
			tuple[0] = key
			tuple[1] = d.Symbols().Intern(fmt.Sprintf("v%d_%d", round, i))
			rel.Insert(tuple)
		}
		want := rel.Len()
		// Scan phase: parallel readers over the frozen prefix.
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				lookup := db.Tuple{key, 0}
				ids, ok := rel.LookupPattern(1, lookup) // position 0 bound
				if !ok || len(ids) != want {
					t.Errorf("round %d: got %d indexed ids, want %d", round, len(ids), want)
				}
			}()
		}
		wg.Wait()
	}
}

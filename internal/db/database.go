package db

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"

	"contribmax/internal/ast"
)

// invariantf reports a violated internal invariant. It is the single
// escape hatch for conditions that public error-returning paths
// (EnsureRelation, AttachShared, InsertAtom) have already screened out:
// reaching it means a caller bypassed those paths with data it promised was
// valid, so there is no sensible recovery. Every panic in this package
// funnels through here.
func invariantf(format string, args ...any) {
	panic("db: invariant violated: " + fmt.Sprintf(format, args...))
}

// Database is a collection of named relations sharing one symbol table.
type Database struct {
	symbols   *SymbolTable
	relations map[string]*Relation
	order     []string // creation order, for deterministic iteration
}

// NewDatabase returns an empty database with a fresh symbol table.
func NewDatabase() *Database {
	return &Database{
		symbols:   NewSymbolTable(),
		relations: make(map[string]*Relation),
	}
}

// Symbols returns the database's symbol table.
func (d *Database) Symbols() *SymbolTable { return d.symbols }

// EnsureRelation returns the relation named pred, creating it with the
// given arity if absent. It returns an error if the relation exists with a
// different arity — the public, validating counterpart of Relation for
// callers handling untrusted programs or data files.
func (d *Database) EnsureRelation(pred string, arity int) (*Relation, error) {
	if r, ok := d.relations[pred]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("db: relation %s used with arities %d and %d", pred, r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(pred, arity)
	d.relations[pred] = r
	d.order = append(d.order, pred)
	return r, nil
}

// Relation returns the relation named pred, creating it with the given
// arity if absent. The caller vouches that pred is used with one arity
// (ast.Program.Validate or analysis.Analyze establish this for parsed
// programs); a mismatch is an invariant violation and panics. Callers that
// cannot promise this must use EnsureRelation.
func (d *Database) Relation(pred string, arity int) *Relation {
	r, err := d.EnsureRelation(pred, arity)
	if err != nil {
		invariantf("%v", err)
	}
	return r
}

// Lookup returns the relation named pred if present.
func (d *Database) Lookup(pred string) (*Relation, bool) {
	r, ok := d.relations[pred]
	return r, ok
}

// RelationNames returns all relation names in creation order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// InsertAtom interns and inserts a ground atom. It returns the relation,
// the tuple id and whether the tuple was newly added. It returns an error
// if the atom is not ground or its predicate is already registered with a
// different arity.
func (d *Database) InsertAtom(a ast.Atom) (*Relation, TupleID, bool, error) {
	t, err := d.InternAtom(a)
	if err != nil {
		return nil, 0, false, err
	}
	rel, err := d.EnsureRelation(a.Predicate, a.Arity())
	if err != nil {
		return nil, 0, false, err
	}
	id, added := rel.Insert(t)
	return rel, id, added, nil
}

// MustInsertAtom is InsertAtom for callers that know the atom is ground and
// arity-consistent (e.g. generated workloads); a violation is an invariant
// failure and panics.
func (d *Database) MustInsertAtom(a ast.Atom) (TupleID, bool) {
	_, id, added, err := d.InsertAtom(a)
	if err != nil {
		invariantf("%v", err)
	}
	return id, added
}

// InternAtom interns the constants of a ground atom into a tuple without
// inserting it anywhere.
func (d *Database) InternAtom(a ast.Atom) (Tuple, error) {
	t := make(Tuple, len(a.Terms))
	for i, term := range a.Terms {
		if !term.IsConst() {
			return nil, fmt.Errorf("db: atom %s is not ground", a)
		}
		t[i] = d.symbols.Intern(term.Name)
	}
	return t, nil
}

// AtomOf reconstructs the ground atom for a tuple of a relation.
func (d *Database) AtomOf(rel *Relation, id TupleID) ast.Atom {
	t := rel.Tuple(id)
	terms := make([]ast.Term, len(t))
	for i, s := range t {
		terms[i] = ast.C(d.symbols.Name(s))
	}
	return ast.Atom{Predicate: rel.Name(), Terms: terms}
}

// Facts returns all tuples of pred as ground atoms, in insertion order. It
// returns nil if the relation does not exist.
func (d *Database) Facts(pred string) []ast.Atom {
	rel, ok := d.relations[pred]
	if !ok {
		return nil
	}
	out := make([]ast.Atom, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		out[i] = d.AtomOf(rel, TupleID(i))
	}
	return out
}

// TotalTuples returns the number of tuples across all relations.
func (d *Database) TotalTuples() int {
	n := 0
	for _, r := range d.relations {
		n += r.Len()
	}
	return n
}

// CloneSchema returns a new empty database sharing this database's symbol
// table. Sharing the table keeps symbol ids stable across the original
// database and per-query scratch databases built by the Magic-Sets
// algorithms, so tuples can be compared across databases by value.
func (d *Database) CloneSchema() *Database {
	return &Database{
		symbols:   d.symbols,
		relations: make(map[string]*Relation),
	}
}

// AttachShared shares an existing relation (typically an edb relation of
// another database with the same symbol table) under its own name. The
// relation is shared by reference: the Magic-Sets algorithms attach the
// original edb relations to per-query scratch databases so that edb data
// and its lazily built indexes are reused across queries. It returns an
// error if a different relation is already registered under the name.
func (d *Database) AttachShared(rel *Relation) error {
	if prev, ok := d.relations[rel.Name()]; ok {
		if prev != rel {
			return fmt.Errorf("db: relation %s already attached", rel.Name())
		}
		return nil
	}
	d.relations[rel.Name()] = rel
	d.order = append(d.order, rel.Name())
	return nil
}

// Attach is AttachShared for callers that know the name is free or holds
// the same relation (the Magic-Sets scratch databases, which attach each
// edb relation exactly once); a clash is an invariant failure and panics.
func (d *Database) Attach(rel *Relation) {
	if err := d.AttachShared(rel); err != nil {
		invariantf("%v", err)
	}
}

// Fingerprint returns a content identity of the database: an FNV-1a hash
// over every relation (in creation order) and every tuple (in insertion
// order), with constants rendered by name so two databases built by the
// same insertion sequence — even with different symbol tables — agree.
// Creation and insertion order participate deliberately: downstream
// candidate ids are positional, so "same content, different build order"
// must be a different identity. Cost is one pass over every term; callers
// that already know a cheaper identity (e.g. a hash of the fact file the
// database was loaded from) should use that instead.
func (d *Database) Fingerprint() string {
	h := fnv.New64a()
	for _, name := range d.order {
		rel := d.relations[name]
		fmt.Fprintf(h, "%d:%s/%d#%d;", len(name), name, rel.arity, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			for _, s := range rel.tuples[i] {
				n := d.symbols.Name(s)
				fmt.Fprintf(h, "%d:%s,", len(n), n)
			}
			h.Write([]byte{'\n'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats returns a deterministic, human-readable per-relation tuple count
// summary, for debugging and the wddump tool.
func (d *Database) Stats() string {
	names := make([]string, 0, len(d.relations))
	for n := range d.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s/%d: %d tuples\n", n, d.relations[n].arity, d.relations[n].Len())
	}
	return s
}

package db_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := db.NewDatabase()
	d.MustInsertAtom(ast.NewAtom("exports", ast.C("france"), ast.C("wine")))
	d.MustInsertAtom(ast.NewAtom("exports", ast.C("cuba"), ast.C("tobacco")))
	d.MustInsertAtom(ast.NewAtom("flag", ast.C("on")))
	d.MustInsertAtom(ast.NewAtom("weird", ast.C("With Space"), ast.C(""), ast.C("日本")))

	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.RelationNames()) != fmt.Sprint(d.RelationNames()) {
		t.Errorf("relation order changed: %v vs %v", got.RelationNames(), d.RelationNames())
	}
	for _, name := range d.RelationNames() {
		if fmt.Sprint(got.Facts(name)) != fmt.Sprint(d.Facts(name)) {
			t.Errorf("%s: %v vs %v", name, got.Facts(name), d.Facts(name))
		}
	}
	// Symbol ids must be identical (tuple ids and keys stay stable).
	if got.Symbols().Len() != d.Symbols().Len() {
		t.Errorf("symbol count %d vs %d", got.Symbols().Len(), d.Symbols().Len())
	}
}

func TestSnapshotRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := db.NewDatabase()
		nRel := rng.Intn(4) + 1
		for r := 0; r < nRel; r++ {
			arity := rng.Intn(3) + 1
			pred := fmt.Sprintf("r%d", r)
			n := rng.Intn(50)
			for i := 0; i < n; i++ {
				terms := make([]ast.Term, arity)
				for j := range terms {
					terms[j] = ast.C(fmt.Sprintf("c%d", rng.Intn(20)))
				}
				d.MustInsertAtom(ast.NewAtom(pred, terms...))
			}
		}
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := db.ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range d.RelationNames() {
			if fmt.Sprint(got.Facts(name)) != fmt.Sprint(d.Facts(name)) {
				t.Fatalf("trial %d relation %s mismatch", trial, name)
			}
		}
	}
}

func TestSnapshotFileHelpers(t *testing.T) {
	d := db.NewDatabase()
	d.MustInsertAtom(ast.NewAtom("e", ast.C("a"), ast.C("b")))
	path := filepath.Join(t.TempDir(), "snap.cmdb")
	if err := d.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := db.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalTuples() != 1 {
		t.Errorf("tuples = %d", got.TotalTuples())
	}
	if _, err := db.LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("CMDB\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"), // absurd version
		[]byte("CMDB\x01\x02\x01a"),                            // truncated symbols
	}
	for i, c := range cases {
		if _, err := db.ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

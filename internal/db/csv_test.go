package db_test

import (
	"bytes"
	"strings"
	"testing"

	"contribmax/internal/db"
)

func TestLoadCSVAndWriteCSV(t *testing.T) {
	d := db.NewDatabase()
	n, err := d.LoadCSV("exports", 2, strings.NewReader("country,product\nfrance,wine\ncuba,tobacco\nfrance,wine\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("added = %d, want 2 (duplicate skipped)", n)
	}
	rel, _ := d.Lookup("exports")
	if rel.Len() != 2 {
		t.Errorf("len = %d", rel.Len())
	}
	var buf bytes.Buffer
	if err := d.WriteCSV("exports", &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "france,wine\ncuba,tobacco\n" {
		t.Errorf("WriteCSV = %q", got)
	}
	if err := d.WriteCSV("missing", &buf); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestLoadCSVArityMismatch(t *testing.T) {
	d := db.NewDatabase()
	if _, err := d.LoadCSV("e", 2, strings.NewReader("a,b,c\n"), false); err == nil {
		t.Error("3 fields into arity 2 should error")
	}
}

func TestLoadCSVQuotedFields(t *testing.T) {
	d := db.NewDatabase()
	n, err := d.LoadCSV("p", 2, strings.NewReader("\"has, comma\",\"multi\nline\"\n"), false)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	facts := d.Facts("p")
	if facts[0].Terms[0].Name != "has, comma" {
		t.Errorf("field = %q", facts[0].Terms[0].Name)
	}
}

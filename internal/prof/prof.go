// Package prof is the solve-scoped runtime profiler of the CM pipeline:
// an EXPLAIN ANALYZE for probabilistic Datalog solves. A *Profile threaded
// through cm.Options.Profile collects per-rule accounting from every
// semi-naive fixpoint the solve evaluates (instantiations attempted, tuples
// derived, dedup rate, wall time per rule per round, per-plan-step join
// fan-out and hoisted-check savings), per-stratum round/delta curves, and
// RR-phase attribution (walks, members, and wall time per target), then
// renders the aggregate as a RuntimeProfile JSON artifact or a text tree
// ranked by self-time.
//
// Contract (the same one obs and journal follow): a nil *Profile is a
// no-op — every method returns immediately after one pointer check and
// allocates nothing — so instrumented code needs no conditional plumbing
// and disabled profiling is free. Profiling never perturbs the solver:
// the collector draws no randomness and changes no evaluation order, so a
// profiled solve is byte-identical to an unprofiled one.
//
// Determinism: all counts (attempted, derived, new facts, suppressed,
// vetoes, step matches, walks, members, per-stratum deltas) are collected
// on deterministic paths — the engine's sequential emit path, its ordered
// parallel merge replay, or per-chunk sums over a fixed partition of the
// same work — and merged by commutative addition, so they are identical at
// every Parallelism level. Wall times are inherently scheduling-dependent
// and are accumulated in separate fields that never influence the counts.
package prof

import (
	"sync"
	"sync/atomic"
)

// Caps bound the collector so a pathological solve (thousands of adorned
// per-target rule families, ten-thousand-target instances) cannot make the
// artifact unbounded. Totals always cover everything; only the per-item
// breakdowns are truncated, and the report says how many items were cut.
const (
	// maxRoundsTracked caps the per-rule and per-stratum round breakdown;
	// later rounds aggregate into the last slot.
	maxRoundsTracked = 64
	// maxRulesReported caps RuntimeProfile.Rules (ranked by self-time).
	maxRulesReported = 40
	// maxTargetsReported caps RRProfile.Targets (ranked by walk time).
	maxTargetsReported = 24
	// maxStrataTracked caps the per-stratum curves.
	maxStrataTracked = 16
)

// Profile is the solve-scoped collector. One Profile spans one solve: the
// full-graph fixpoint of NaiveCM or the thousands of per-RR subgraph
// fixpoints of the Magic variants all merge into it. All methods are safe
// for concurrent use (the parallel RR workers report into it) and no-ops
// on a nil receiver.
type Profile struct {
	mu        sync.Mutex
	algorithm string
	runs      int64 // engine runs merged
	rules     map[string]*ruleAcc
	strata    []stratumAcc
	plan      *PlanProfile
	phases    []PhaseProfile
	hot       []HotNode
	arena     int64

	// RR-phase attribution, keyed by target index. The arrays are sized
	// once by EnsureTargets and then written with atomic adds from the
	// parallel walk workers (sums are commutative, so totals stay
	// deterministic regardless of scheduling).
	targetNames []string
	walkCount   []int64
	walkMembers []int64
	walkNs      []int64
}

// ruleAcc accumulates one rule family (keyed by source text) across every
// engine run of the solve.
type ruleAcc struct {
	attempted  int64
	derived    int64
	newFacts   int64
	suppressed int64
	earlyVeto  int64
	selfNs     int64
	// per-round breakdown, aggregated across engine runs by round ordinal
	// (capped; the tail folds into the last slot).
	roundDerived []int64
	roundNs      []int64
	// per-plan-step fan-out, aggregated across delta positions and runs.
	stepMatches []int64
	stepVetoes  []int64
}

// stratumAcc is one stratum's round/delta curve summed across engine runs.
type stratumAcc struct {
	delta []int64 // new-fact delta per round ordinal
	runs  []int64 // engine runs that reached the round
}

// New returns an empty collector.
func New() *Profile {
	return &Profile{rules: make(map[string]*ruleAcc)}
}

// SetAlgorithm records the solving algorithm's name.
func (p *Profile) SetAlgorithm(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.algorithm = name
	p.mu.Unlock()
}

// EnsureTargets sizes the per-target walk attribution for n targets.
// Idempotent; called once by the solver before the RR phase.
func (p *Profile) EnsureTargets(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	if len(p.walkCount) < n {
		p.walkCount = make([]int64, n)
		p.walkMembers = make([]int64, n)
		p.walkNs = make([]int64, n)
	}
	p.mu.Unlock()
}

// SetTargetNames attaches the rendered target atoms to the attribution
// arrays (names are only needed at report time, so solvers defer the
// rendering cost until the solve is done).
func (p *Profile) SetTargetNames(names []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.targetNames = names
	p.mu.Unlock()
}

// RecordWalk attributes one RR walk to target ti: the members it
// collected and its wall time. Safe for concurrent use by the parallel RR
// workers; counts are summed, so the totals are scheduling-independent.
func (p *Profile) RecordWalk(ti int, members int, ns int64) {
	if p == nil || ti < 0 || ti >= len(p.walkCount) {
		return
	}
	atomic.AddInt64(&p.walkCount[ti], 1)
	atomic.AddInt64(&p.walkMembers[ti], int64(members))
	atomic.AddInt64(&p.walkNs[ti], ns)
}

// RecordPlan records the solve's join-planning totals plus the runtime
// early-veto count (check-hoist savings actually realized), reconciling
// the profile against the plan.summary journal event.
func (p *Profile) RecordPlan(built, hits, reordered int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.plan = &PlanProfile{Built: built, Hits: hits, Reordered: reordered}
	p.mu.Unlock()
}

// RecordPhase appends one named phase duration (build, rrgen, select).
func (p *Profile) RecordPhase(name string, ns int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phases = append(p.phases, PhaseProfile{Phase: name, Ns: ns})
	p.mu.Unlock()
}

// RecordArena records the resident RR-arena size.
func (p *Profile) RecordArena(bytes int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.arena = bytes
	p.mu.Unlock()
}

// RecordHotNodes records the hottest WD-graph candidate nodes by RR-set
// membership (the memberOf CSR degree), pre-ranked by the caller.
func (p *Profile) RecordHotNodes(nodes []HotNode) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.hot = nodes
	p.mu.Unlock()
}

// roundSlot maps a 1-based round ordinal to its capped slot index.
func roundSlot(round int) int {
	if round < 1 {
		round = 1
	}
	if round > maxRoundsTracked {
		round = maxRoundsTracked
	}
	return round - 1
}

// grow extends s to hold index i, returning the (possibly reallocated)
// slice.
func grow(s []int64, i int) []int64 {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

// EngineRun records one fixpoint evaluation. The engine's coordinator
// goroutine owns it: all mutating methods are called from the goroutine
// that called engine.Run (worker-side counts arrive via JoinCounters,
// which are per-goroutine and folded in by the coordinator). A nil
// *EngineRun (from a nil Profile) is a no-op.
type EngineRun struct {
	p     *Profile
	names []string // rule index -> source text

	round       int // current global round ordinal (1-based)
	stratum     int
	stratumRnd  int // current round ordinal within the stratum
	counters    []*JoinCounters
	newByRule   []int64
	derByRule   []int64
	roundDer    [][]int64 // [rule][roundSlot]
	roundNs     [][]int64
	strataDelta [][]int64 // [stratum][roundSlot]
	strataRuns  [][]int64
}

// StartEngine opens the recording of one engine run over the given rules
// (ruleNames[i] labels rule i). Returns nil — the universal no-op — on a
// nil Profile.
func (p *Profile) StartEngine(ruleNames []string) *EngineRun {
	if p == nil {
		return nil
	}
	n := len(ruleNames)
	return &EngineRun{
		p:         p,
		names:     ruleNames,
		newByRule: make([]int64, n),
		derByRule: make([]int64, n),
		roundDer:  make([][]int64, n),
		roundNs:   make([][]int64, n),
	}
}

// NewCounters allocates one goroutine-private counter block for the run
// (the engine gives one to its sequential runner and one to every parallel
// worker). bodyLens[i] is rule i's positive-body length, sizing the
// per-step arrays. Nil on a nil run.
func (r *EngineRun) NewCounters(bodyLens []int) *JoinCounters {
	if r == nil {
		return nil
	}
	n := len(bodyLens)
	c := &JoinCounters{
		Attempted:   make([]int64, n),
		Suppressed:  make([]int64, n),
		RoundNs:     make([]int64, n),
		StepMatches: make([][]int64, n),
		StepVetoes:  make([][]int64, n),
	}
	for i, bl := range bodyLens {
		c.StepMatches[i] = make([]int64, bl)
		c.StepVetoes[i] = make([]int64, bl)
	}
	r.counters = append(r.counters, c)
	return c
}

// BeginRound marks the start of one semi-naive round in stratum si with
// the given delta (new facts visible to the round).
func (r *EngineRun) BeginRound(si, delta int) {
	if r == nil {
		return
	}
	r.round++
	if si != r.stratum || r.round == 1 {
		r.stratum, r.stratumRnd = si, 0
	}
	r.stratumRnd++
	if si >= maxStrataTracked {
		si = maxStrataTracked - 1
	}
	for len(r.strataDelta) <= si {
		r.strataDelta = append(r.strataDelta, nil)
		r.strataRuns = append(r.strataRuns, nil)
	}
	slot := roundSlot(r.stratumRnd)
	r.strataDelta[si] = grow(r.strataDelta[si], slot)
	r.strataRuns[si] = grow(r.strataRuns[si], slot)
	r.strataDelta[si][slot] += int64(delta)
	r.strataRuns[si][slot]++
}

// RuleFired records one fired instantiation of rule ri on the
// coordinator's deterministic emit/merge path; added reports the head
// fact was first derived (the dedup signal).
func (r *EngineRun) RuleFired(ri int, added bool) {
	if r == nil {
		return
	}
	r.derByRule[ri]++
	if added {
		r.newByRule[ri]++
	}
	slot := roundSlot(r.round)
	r.roundDer[ri] = grow(r.roundDer[ri], slot)
	r.roundDer[ri][slot]++
}

// RuleTime attributes ns of pass wall time to rule ri in the current
// round (sequential evaluation; the parallel path accumulates into worker
// JoinCounters and flushes per round).
func (r *EngineRun) RuleTime(ri int, ns int64) {
	if r == nil || ns == 0 {
		return
	}
	slot := roundSlot(r.round)
	r.roundNs[ri] = grow(r.roundNs[ri], slot)
	r.roundNs[ri][slot] += ns
}

// FlushRoundNs folds one worker's per-rule pass times into the current
// round and zeroes them, so the per-(rule, round) attribution survives
// worker reuse across rounds.
func (r *EngineRun) FlushRoundNs(c *JoinCounters) {
	if r == nil || c == nil {
		return
	}
	for ri, ns := range c.RoundNs {
		if ns != 0 {
			r.RuleTime(ri, ns)
			c.RoundNs[ri] = 0
		}
	}
}

// Finish merges the completed run into the profile. Must be called after
// all workers joined; safe to call concurrently with other runs' Finish
// (the Magic variants profile per-RR subgraph fixpoints from parallel RR
// workers).
func (r *EngineRun) Finish() {
	if r == nil {
		return
	}
	p := r.p
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
	for ri, name := range r.names {
		var att, sup, veto int64
		for _, c := range r.counters {
			att += c.Attempted[ri]
			sup += c.Suppressed[ri]
			for _, v := range c.StepVetoes[ri] {
				veto += v
			}
		}
		if att == 0 && r.derByRule[ri] == 0 && veto == 0 {
			continue // rule never participated in this run
		}
		acc := p.rules[name]
		if acc == nil {
			acc = &ruleAcc{}
			p.rules[name] = acc
		}
		acc.attempted += att
		acc.suppressed += sup
		acc.earlyVeto += veto
		acc.derived += r.derByRule[ri]
		acc.newFacts += r.newByRule[ri]
		for slot, n := range r.roundDer[ri] {
			acc.roundDerived = grow(acc.roundDerived, slot)
			acc.roundDerived[slot] += n
		}
		for slot, ns := range r.roundNs[ri] {
			acc.roundNs = grow(acc.roundNs, slot)
			acc.roundNs[slot] += ns
			acc.selfNs += ns
		}
		for _, c := range r.counters {
			for s, m := range c.StepMatches[ri] {
				acc.stepMatches = grow(acc.stepMatches, s)
				acc.stepMatches[s] += m
			}
			for s, v := range c.StepVetoes[ri] {
				acc.stepVetoes = grow(acc.stepVetoes, s)
				acc.stepVetoes[s] += v
			}
		}
	}
	for si := range r.strataDelta {
		for len(p.strata) <= si {
			p.strata = append(p.strata, stratumAcc{})
		}
		for slot, d := range r.strataDelta[si] {
			p.strata[si].delta = grow(p.strata[si].delta, slot)
			p.strata[si].runs = grow(p.strata[si].runs, slot)
			p.strata[si].delta[slot] += d
			p.strata[si].runs[slot] += r.strataRuns[si][slot]
		}
	}
}

// JoinCounters is one goroutine's private per-rule counter block inside
// one engine run. The join hot loops increment plain int64s (no atomics —
// the block is goroutine-private); the coordinator folds blocks together
// at round boundaries (RoundNs) and at run end (the rest). Count totals
// are sums over a fixed partition of the same work, so they are identical
// at every Parallelism level.
type JoinCounters struct {
	// Attempted counts fully matched instantiations (pre-gate) per rule.
	Attempted []int64
	// Suppressed counts gate-vetoed instantiations per rule.
	Suppressed []int64
	// RoundNs accumulates the goroutine's pass wall time per rule within
	// the current round (parallel workers; flushed by the coordinator).
	RoundNs []int64
	// StepMatches[r][s] counts bindings surviving join step s of rule r —
	// the per-plan-step fan-out, aggregated over delta positions.
	StepMatches [][]int64
	// StepVetoes[r][s] counts partial bindings cut at step s by checks the
	// planner hoisted below instantiation completion — the realized
	// check-hoist savings.
	StepVetoes [][]int64
}

package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestNilNoOp exercises every method on the nil receivers instrumented
// code holds when profiling is off: nothing may panic, and the derived
// objects must themselves be the nil no-op.
func TestNilNoOp(t *testing.T) {
	var p *Profile
	p.SetAlgorithm("x")
	p.EnsureTargets(4)
	p.SetTargetNames([]string{"a"})
	p.RecordWalk(0, 3, 5)
	p.RecordPlan(1, 2, 3)
	p.RecordPhase("build", 7)
	p.RecordArena(9)
	p.RecordHotNodes([]HotNode{{Node: "n", Visits: 1}})
	r := p.StartEngine([]string{"r0"})
	if r != nil {
		t.Fatalf("StartEngine on nil Profile = %v, want nil", r)
	}
	c := r.NewCounters([]int{2})
	if c != nil {
		t.Fatalf("NewCounters on nil run = %v, want nil", c)
	}
	r.BeginRound(0, 10)
	r.RuleFired(0, true)
	r.RuleTime(0, 5)
	r.FlushRoundNs(c)
	r.Finish()
	if rep := p.Report(); rep != nil {
		t.Fatalf("Report on nil Profile = %v, want nil", rep)
	}
}

// TestNilAllocFree pins the disabled-profiling cost: the nil path must not
// allocate, so threading the hooks through the hot loops is free when no
// profiler is attached.
func TestNilAllocFree(t *testing.T) {
	var p *Profile
	var r *EngineRun
	var c *JoinCounters
	allocs := testing.AllocsPerRun(100, func() {
		p.RecordWalk(0, 3, 5)
		r2 := p.StartEngine(nil)
		_ = r2
		r.BeginRound(0, 1)
		r.RuleFired(0, true)
		r.RuleTime(0, 5)
		r.FlushRoundNs(c)
		r.Finish()
	})
	if allocs != 0 {
		t.Fatalf("nil-profile path allocates %.1f times per op, want 0", allocs)
	}
}

// TestEngineRunMerge drives one engine run through two counter blocks —
// the shape of a 2-worker parallel evaluation — and checks the report
// folds worker-side counts, coordinator-side firings, and flushed pass
// times into one rule ledger.
func TestEngineRunMerge(t *testing.T) {
	p := New()
	p.SetAlgorithm("TestCM")
	run := p.StartEngine([]string{"r0", "r1"})
	w1 := run.NewCounters([]int{2, 1})
	w2 := run.NewCounters([]int{2, 1})

	run.BeginRound(0, 10)
	// Worker-side: r0 matched 5 instantiations on w1 and 3 on w2, one
	// gate-suppressed on each; step fan-out split across the workers.
	w1.Attempted[0], w2.Attempted[0] = 5, 3
	w1.Suppressed[0], w2.Suppressed[0] = 1, 1
	w1.StepMatches[0][0], w2.StepMatches[0][0] = 20, 10
	w1.StepMatches[0][1], w2.StepMatches[0][1] = 5, 3
	w1.StepVetoes[0][1], w2.StepVetoes[0][1] = 2, 4
	w1.RoundNs[0], w2.RoundNs[0] = 100, 50
	// Coordinator-side: 6 fired, 4 first-derived.
	for i := 0; i < 6; i++ {
		run.RuleFired(0, i < 4)
	}
	run.FlushRoundNs(w1)
	run.FlushRoundNs(w2)

	run.BeginRound(0, 4)
	w1.Attempted[1] = 2
	w1.RoundNs[1] = 30
	run.RuleFired(1, true)
	run.RuleFired(1, false)
	run.FlushRoundNs(w1)
	run.FlushRoundNs(w2)
	run.Finish()

	rep := p.Report()
	if rep.Algorithm != "TestCM" || rep.EngineRuns != 1 {
		t.Fatalf("header = (%q, %d), want (TestCM, 1)", rep.Algorithm, rep.EngineRuns)
	}
	if rep.Attempted != 10 || rep.Derived != 8 || rep.NewFacts != 5 || rep.Suppressed != 2 {
		t.Fatalf("totals attempted=%d derived=%d new=%d suppressed=%d, want 10/8/5/2",
			rep.Attempted, rep.Derived, rep.NewFacts, rep.Suppressed)
	}
	if rep.EarlyVetoes != 6 || rep.EvalNs != 180 {
		t.Fatalf("vetoes=%d evalNs=%d, want 6/180", rep.EarlyVetoes, rep.EvalNs)
	}
	if len(rep.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rep.Rules))
	}
	// r0 has the larger self-time, so it ranks first.
	r0 := rep.Rules[0]
	if r0.Rule != "r0" {
		t.Fatalf("top rule = %q, want r0 (self-time ranking)", r0.Rule)
	}
	if r0.Attempted != 8 || r0.Derived != 6 || r0.NewFacts != 4 || r0.Suppressed != 2 || r0.SelfNs != 150 {
		t.Fatalf("r0 ledger = %+v", r0)
	}
	if want := 1 - float64(4)/float64(6); r0.DedupRate != want {
		t.Fatalf("r0 dedup = %g, want %g", r0.DedupRate, want)
	}
	if len(r0.Steps) != 2 || r0.Steps[0].Matches != 30 || r0.Steps[1].Matches != 8 || r0.Steps[1].Vetoes != 6 {
		t.Fatalf("r0 steps = %+v", r0.Steps)
	}
	if len(r0.Rounds) != 1 || r0.Rounds[0].Round != 1 || r0.Rounds[0].Derived != 6 || r0.Rounds[0].SelfNs != 150 {
		t.Fatalf("r0 rounds = %+v", r0.Rounds)
	}
	if len(rep.Strata) != 1 || len(rep.Strata[0].Rounds) != 2 ||
		rep.Strata[0].Rounds[0].Delta != 10 || rep.Strata[0].Rounds[1].Delta != 4 {
		t.Fatalf("strata = %+v", rep.Strata)
	}
}

// TestRuleFamilyAggregation checks that two engine runs naming the same
// rule merge into one family ledger — the Magic variants' thousands of
// per-target fixpoints must not each become a report row.
func TestRuleFamilyAggregation(t *testing.T) {
	p := New()
	for i := 0; i < 3; i++ {
		run := p.StartEngine([]string{"shared"})
		c := run.NewCounters([]int{1})
		run.BeginRound(0, 1)
		c.Attempted[0] = 2
		run.RuleFired(0, true)
		run.RuleFired(0, false)
		run.Finish()
	}
	rep := p.Report()
	if rep.EngineRuns != 3 {
		t.Fatalf("engine runs = %d, want 3", rep.EngineRuns)
	}
	if len(rep.Rules) != 1 {
		t.Fatalf("got %d rule rows, want 1 merged family", len(rep.Rules))
	}
	if r := rep.Rules[0]; r.Attempted != 6 || r.Derived != 6 || r.NewFacts != 3 {
		t.Fatalf("family ledger = %+v", r)
	}
}

// TestIdleRulesSkipped: a rule that never matched, fired, or vetoed in a
// run must not appear in the profile (the Magic variants instantiate the
// whole adorned program per target; most rules are idle per run).
func TestIdleRulesSkipped(t *testing.T) {
	p := New()
	run := p.StartEngine([]string{"busy", "idle"})
	c := run.NewCounters([]int{1, 1})
	run.BeginRound(0, 1)
	c.Attempted[0] = 1
	run.RuleFired(0, true)
	run.Finish()
	rep := p.Report()
	if len(rep.Rules) != 1 || rep.Rules[0].Rule != "busy" {
		t.Fatalf("rules = %+v, want only busy", rep.Rules)
	}
}

// TestRuleCap: more rule families than maxRulesReported fold into the
// totals with RulesOmitted accounting for them.
func TestRuleCap(t *testing.T) {
	p := New()
	names := make([]string, maxRulesReported+7)
	lens := make([]int, len(names))
	for i := range names {
		names[i] = fmt.Sprintf("r%03d", i)
		lens[i] = 1
	}
	run := p.StartEngine(names)
	run.NewCounters(lens)
	run.BeginRound(0, 1)
	for i := range names {
		run.RuleFired(i, true)
	}
	run.Finish()
	rep := p.Report()
	if len(rep.Rules) != maxRulesReported || rep.RulesOmitted != 7 {
		t.Fatalf("got %d rules, %d omitted; want %d and 7", len(rep.Rules), rep.RulesOmitted, maxRulesReported)
	}
	if rep.Derived != int64(len(names)) {
		t.Fatalf("totals must cover omitted rules: derived = %d, want %d", rep.Derived, len(names))
	}
}

// TestRoundCapFolds: round ordinals past maxRoundsTracked aggregate into
// the last slot instead of growing the breakdown without bound.
func TestRoundCapFolds(t *testing.T) {
	p := New()
	run := p.StartEngine([]string{"r"})
	run.NewCounters([]int{1})
	for i := 0; i < maxRoundsTracked+20; i++ {
		run.BeginRound(0, 1)
		run.RuleFired(0, true)
	}
	run.Finish()
	rep := p.Report()
	rounds := rep.Rules[0].Rounds
	if len(rounds) != maxRoundsTracked {
		t.Fatalf("tracked %d rounds, cap is %d", len(rounds), maxRoundsTracked)
	}
	last := rounds[len(rounds)-1]
	if last.Derived != 21 {
		t.Fatalf("last slot derived = %d, want 21 (the folded tail)", last.Derived)
	}
	if sc := rep.Strata[0].Rounds; len(sc) != maxRoundsTracked || sc[len(sc)-1].Delta != 21 {
		t.Fatalf("stratum curve = %d rounds, tail delta %d; want %d and 21",
			len(sc), sc[len(sc)-1].Delta, maxRoundsTracked)
	}
}

// TestWalkAttribution checks the per-target RR arrays and their ranked,
// capped report form.
func TestWalkAttribution(t *testing.T) {
	p := New()
	p.EnsureTargets(3)
	p.SetTargetNames([]string{"t0", "t1", "t2"})
	p.RecordWalk(0, 5, 100)
	p.RecordWalk(0, 3, 50)
	p.RecordWalk(2, 7, 900)
	p.RecordWalk(-1, 9, 9) // out of range: ignored
	p.RecordWalk(3, 9, 9)
	p.RecordArena(4096)
	p.RecordHotNodes([]HotNode{{Node: "edge(a, b)", Visits: 4}})
	rep := p.Report()
	rr := rep.RR
	if rr == nil {
		t.Fatal("no RR block")
	}
	if rr.Walks != 3 || rr.Members != 15 || rr.WalkNs != 1050 || rr.ArenaBytes != 4096 {
		t.Fatalf("rr totals = %+v", rr)
	}
	// t1 had no walks and is skipped; t2 outranks t0 by walk time.
	if len(rr.Targets) != 2 || rr.Targets[0].Target != "t2" || rr.Targets[1].Target != "t0" {
		t.Fatalf("targets = %+v", rr.Targets)
	}
	if rr.Targets[1].Walks != 2 || rr.Targets[1].Members != 8 || rr.Targets[1].Bytes != 32 {
		t.Fatalf("t0 attribution = %+v", rr.Targets[1])
	}
	if len(rr.HotNodes) != 1 || rr.HotNodes[0].Visits != 4 {
		t.Fatalf("hot nodes = %+v", rr.HotNodes)
	}
}

// buildProfile constructs the same logical work split across a given
// number of counter blocks, with scheduling-dependent times varied, to
// model the same solve at different Parallelism levels.
func buildProfile(workers int, timeScale int64) *Profile {
	p := New()
	p.SetAlgorithm("TestCM")
	p.EnsureTargets(2)
	p.SetTargetNames([]string{"a", "b"})
	run := p.StartEngine([]string{"r0", "r1"})
	cs := make([]*JoinCounters, workers)
	for i := range cs {
		cs[i] = run.NewCounters([]int{2, 1})
	}
	run.BeginRound(0, 12)
	// 12 attempted instantiations of r0, partitioned round-robin.
	for i := 0; i < 12; i++ {
		cs[i%workers].Attempted[0]++
		cs[i%workers].StepMatches[0][0] += 3
		cs[i%workers].StepMatches[0][1]++
		cs[i%workers].RoundNs[0] += timeScale // scheduling-dependent
	}
	for i := 0; i < 12; i++ {
		run.RuleFired(0, i%3 == 0)
	}
	for _, c := range cs {
		run.FlushRoundNs(c)
	}
	run.Finish()
	p.RecordWalk(0, 4, 17*timeScale)
	p.RecordWalk(1, 6, 11*timeScale)
	p.RecordPhase("rrgen", 23*timeScale)
	return p
}

// TestCountsJSONDeterminism is the package-level determinism contract:
// the same logical work split across different worker counts with
// different wall times must produce byte-identical CountsJSON.
func TestCountsJSONDeterminism(t *testing.T) {
	base, err := buildProfile(1, 1000).Report().CountsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := buildProfile(workers, int64(workers)*777).Report().CountsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("CountsJSON differs at %d workers:\n%s\nvs\n%s", workers, base, got)
		}
	}
	var rt map[string]any
	if err := json.Unmarshal(base, &rt); err != nil {
		t.Fatalf("CountsJSON not valid JSON: %v", err)
	}
	if _, hasTimes := rt["eval_ns"]; hasTimes {
		t.Fatal("CountsJSON leaked a wall-time field")
	}
}

// TestRenderers smoke-tests both output forms on a populated profile.
func TestRenderers(t *testing.T) {
	rep := buildProfile(2, 50).Report()
	var jb bytes.Buffer
	if err := rep.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded RuntimeProfile
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if decoded.Schema != Schema || decoded.Derived != rep.Derived {
		t.Fatalf("round-trip lost data: %+v", decoded)
	}
	var tb bytes.Buffer
	if err := rep.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"EXPLAIN ANALYZE (TestCM)", "rule r0", "rr phase", "phase rrgen"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text tree missing %q:\n%s", want, out)
		}
	}
	var nilRep *RuntimeProfile
	tb.Reset()
	if err := nilRep.WriteText(&tb); err != nil || !strings.Contains(tb.String(), "no profile") {
		t.Fatalf("nil WriteText = (%q, %v)", tb.String(), err)
	}
}

package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Schema identifies the RuntimeProfile JSON artifact format.
const Schema = "contribmax/profile/v1"

// RuntimeProfile is the finalized EXPLAIN ANALYZE artifact for one solve.
// Totals cover every rule, run, and target; the per-item breakdowns are
// ranked and capped, with *Omitted reporting how many items were folded
// into the totals but not listed.
type RuntimeProfile struct {
	Schema    string `json:"schema"`
	Algorithm string `json:"algorithm,omitempty"`

	// Engine totals. Derived reconciles with the engine.instantiations
	// counter (both count fired instantiations on the deterministic
	// emit/merge path); Attempted additionally includes gate-suppressed
	// matches.
	EngineRuns  int64 `json:"engine_runs"`
	Attempted   int64 `json:"attempted"`
	Derived     int64 `json:"derived"`
	NewFacts    int64 `json:"new_facts"`
	Suppressed  int64 `json:"suppressed,omitempty"`
	EarlyVetoes int64 `json:"early_vetoes,omitempty"`
	EvalNs      int64 `json:"eval_ns"`

	Rules        []RuleProfile    `json:"rules,omitempty"`
	RulesOmitted int              `json:"rules_omitted,omitempty"`
	Strata       []StratumProfile `json:"strata,omitempty"`
	RR           *RRProfile       `json:"rr,omitempty"`
	Plan         *PlanProfile     `json:"plan,omitempty"`
	Phases       []PhaseProfile   `json:"phases,omitempty"`
}

// RuleProfile is one rule family's ledger, aggregated across every engine
// run of the solve (the Magic variants evaluate the same source rule in
// thousands of per-target subgraph fixpoints; they merge here by source
// text).
type RuleProfile struct {
	Rule        string        `json:"rule"`
	Attempted   int64         `json:"attempted"`
	Derived     int64         `json:"derived"`
	NewFacts    int64         `json:"new_facts"`
	Suppressed  int64         `json:"suppressed,omitempty"`
	EarlyVetoes int64         `json:"early_vetoes,omitempty"`
	DedupRate   float64       `json:"dedup_rate"` // share of derivations that were duplicates
	SelfNs      int64         `json:"self_ns"`
	Steps       []StepProfile `json:"steps,omitempty"`
	Rounds      []RuleRound   `json:"rounds,omitempty"`
}

// StepProfile is the runtime fan-out of one join-plan step: Matches
// counts bindings surviving the step, Vetoes counts partial bindings cut
// by checks the planner hoisted to this step (check-hoist savings).
type StepProfile struct {
	Step    int   `json:"step"`
	Matches int64 `json:"matches"`
	Vetoes  int64 `json:"vetoes,omitempty"`
}

// RuleRound is one round's slice of a rule's work (round ordinals past
// the tracking cap aggregate into the last entry).
type RuleRound struct {
	Round   int   `json:"round"`
	Derived int64 `json:"derived"`
	SelfNs  int64 `json:"self_ns"`
}

// StratumProfile is one stratum's convergence curve, summed across engine
// runs: Delta is the new-fact delta per round ordinal, Runs how many runs
// reached that round.
type StratumProfile struct {
	Stratum int          `json:"stratum"`
	Rounds  []DeltaPoint `json:"rounds"`
}

// DeltaPoint is one (round ordinal, delta) sample of a stratum curve.
type DeltaPoint struct {
	Round int   `json:"round"`
	Delta int64 `json:"delta"`
	Runs  int64 `json:"runs"`
}

// RRProfile attributes the RR-generation phase: per-target walk counts,
// collected members, and wall time, plus the hottest WD-graph nodes by
// RR-set membership.
type RRProfile struct {
	Walks          int64           `json:"walks"`
	Members        int64           `json:"members"`
	WalkNs         int64           `json:"walk_ns"`
	ArenaBytes     int64           `json:"arena_bytes,omitempty"`
	Targets        []TargetProfile `json:"targets,omitempty"`
	TargetsOmitted int             `json:"targets_omitted,omitempty"`
	HotNodes       []HotNode       `json:"hot_nodes,omitempty"`
}

// TargetProfile is one query target's share of the RR phase. Bytes is the
// target's arena footprint (4 bytes per collected member in the
// CandidateID arena).
type TargetProfile struct {
	Target  string `json:"target"`
	Walks   int64  `json:"walks"`
	Members int64  `json:"members"`
	Bytes   int64  `json:"bytes"`
	WalkNs  int64  `json:"walk_ns"`
}

// HotNode is one WD-graph candidate node ranked by how many RR sets
// contain it (its memberOf CSR degree) — the nodes selection gravity
// concentrates on.
type HotNode struct {
	Node   string `json:"node"`
	Visits int64  `json:"visits"`
}

// PlanProfile reconciles the profile against the join planner's
// plan.summary counters.
type PlanProfile struct {
	Built     int64 `json:"built"`
	Hits      int64 `json:"hits"`
	Reordered int64 `json:"reordered"`
}

// PhaseProfile is one solve phase's wall time.
type PhaseProfile struct {
	Phase string `json:"phase"`
	Ns    int64  `json:"ns"`
}

// Report finalizes the collector into a RuntimeProfile snapshot. Rules
// are ranked by self-time (then derived count, then source text) and
// capped; targets likewise by walk time. Safe to call while the profile
// is still attached, though normally called after the solve returns.
func (p *Profile) Report() *RuntimeProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rp := &RuntimeProfile{Schema: Schema, Algorithm: p.algorithm, EngineRuns: p.runs}

	names := make([]string, 0, len(p.rules))
	for name := range p.rules {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.rules[names[i]], p.rules[names[j]]
		if a.selfNs != b.selfNs {
			return a.selfNs > b.selfNs
		}
		if a.derived != b.derived {
			return a.derived > b.derived
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		acc := p.rules[name]
		rp.Attempted += acc.attempted
		rp.Derived += acc.derived
		rp.NewFacts += acc.newFacts
		rp.Suppressed += acc.suppressed
		rp.EarlyVetoes += acc.earlyVeto
		rp.EvalNs += acc.selfNs
		if len(rp.Rules) >= maxRulesReported {
			rp.RulesOmitted++
			continue
		}
		r := RuleProfile{
			Rule:        name,
			Attempted:   acc.attempted,
			Derived:     acc.derived,
			NewFacts:    acc.newFacts,
			Suppressed:  acc.suppressed,
			EarlyVetoes: acc.earlyVeto,
			SelfNs:      acc.selfNs,
		}
		if acc.derived > 0 {
			r.DedupRate = 1 - float64(acc.newFacts)/float64(acc.derived)
		}
		for s := range acc.stepMatches {
			sp := StepProfile{Step: s, Matches: acc.stepMatches[s]}
			if s < len(acc.stepVetoes) {
				sp.Vetoes = acc.stepVetoes[s]
			}
			r.Steps = append(r.Steps, sp)
		}
		n := len(acc.roundDerived)
		if len(acc.roundNs) > n {
			n = len(acc.roundNs)
		}
		for i := 0; i < n; i++ {
			rr := RuleRound{Round: i + 1}
			if i < len(acc.roundDerived) {
				rr.Derived = acc.roundDerived[i]
			}
			if i < len(acc.roundNs) {
				rr.SelfNs = acc.roundNs[i]
			}
			if rr.Derived != 0 || rr.SelfNs != 0 {
				r.Rounds = append(r.Rounds, rr)
			}
		}
		rp.Rules = append(rp.Rules, r)
	}

	for si, sa := range p.strata {
		if len(sa.delta) == 0 {
			continue
		}
		sp := StratumProfile{Stratum: si}
		for i := range sa.delta {
			sp.Rounds = append(sp.Rounds, DeltaPoint{Round: i + 1, Delta: sa.delta[i], Runs: sa.runs[i]})
		}
		rp.Strata = append(rp.Strata, sp)
	}

	if len(p.walkCount) > 0 {
		rr := &RRProfile{ArenaBytes: p.arena, HotNodes: p.hot}
		order := make([]int, len(p.walkCount))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if p.walkNs[ia] != p.walkNs[ib] {
				return p.walkNs[ia] > p.walkNs[ib]
			}
			if p.walkMembers[ia] != p.walkMembers[ib] {
				return p.walkMembers[ia] > p.walkMembers[ib]
			}
			return ia < ib
		})
		for _, ti := range order {
			rr.Walks += p.walkCount[ti]
			rr.Members += p.walkMembers[ti]
			rr.WalkNs += p.walkNs[ti]
			if p.walkCount[ti] == 0 {
				continue
			}
			if len(rr.Targets) >= maxTargetsReported {
				rr.TargetsOmitted++
				continue
			}
			name := fmt.Sprintf("target[%d]", ti)
			if ti < len(p.targetNames) && p.targetNames[ti] != "" {
				name = p.targetNames[ti]
			}
			rr.Targets = append(rr.Targets, TargetProfile{
				Target:  name,
				Walks:   p.walkCount[ti],
				Members: p.walkMembers[ti],
				Bytes:   4 * p.walkMembers[ti],
				WalkNs:  p.walkNs[ti],
			})
		}
		if rr.Walks > 0 || rr.ArenaBytes > 0 || len(rr.HotNodes) > 0 {
			rp.RR = rr
		}
	} else if p.arena > 0 || len(p.hot) > 0 {
		rp.RR = &RRProfile{ArenaBytes: p.arena, HotNodes: p.hot}
	}

	if p.plan != nil {
		c := *p.plan
		rp.Plan = &c
	}
	rp.Phases = append(rp.Phases, p.phases...)
	return rp
}

// CountsJSON marshals only the deterministic portion of the profile —
// every count, no wall times — with rules and targets sorted by name, so
// two profiles of the same solve at different Parallelism levels compare
// byte-identical. Used by the determinism tests.
func (rp *RuntimeProfile) CountsJSON() ([]byte, error) {
	if rp == nil {
		return []byte("null"), nil
	}
	type stepC struct {
		Step    int   `json:"step"`
		Matches int64 `json:"matches"`
		Vetoes  int64 `json:"vetoes"`
	}
	type ruleC struct {
		Rule        string  `json:"rule"`
		Attempted   int64   `json:"attempted"`
		Derived     int64   `json:"derived"`
		NewFacts    int64   `json:"new_facts"`
		Suppressed  int64   `json:"suppressed"`
		EarlyVetoes int64   `json:"early_vetoes"`
		Steps       []stepC `json:"steps"`
	}
	type targetC struct {
		Target  string `json:"target"`
		Walks   int64  `json:"walks"`
		Members int64  `json:"members"`
	}
	type countsC struct {
		EngineRuns  int64            `json:"engine_runs"`
		Attempted   int64            `json:"attempted"`
		Derived     int64            `json:"derived"`
		NewFacts    int64            `json:"new_facts"`
		Suppressed  int64            `json:"suppressed"`
		EarlyVetoes int64            `json:"early_vetoes"`
		Rules       []ruleC          `json:"rules"`
		Strata      []StratumProfile `json:"strata"`
		Targets     []targetC        `json:"targets"`
	}
	c := countsC{
		EngineRuns:  rp.EngineRuns,
		Attempted:   rp.Attempted,
		Derived:     rp.Derived,
		NewFacts:    rp.NewFacts,
		Suppressed:  rp.Suppressed,
		EarlyVetoes: rp.EarlyVetoes,
		Strata:      rp.Strata,
	}
	for _, r := range rp.Rules {
		rc := ruleC{
			Rule:        r.Rule,
			Attempted:   r.Attempted,
			Derived:     r.Derived,
			NewFacts:    r.NewFacts,
			Suppressed:  r.Suppressed,
			EarlyVetoes: r.EarlyVetoes,
		}
		for _, s := range r.Steps {
			rc.Steps = append(rc.Steps, stepC{Step: s.Step, Matches: s.Matches, Vetoes: s.Vetoes})
		}
		c.Rules = append(c.Rules, rc)
	}
	sort.Slice(c.Rules, func(i, j int) bool { return c.Rules[i].Rule < c.Rules[j].Rule })
	if rp.RR != nil {
		for _, t := range rp.RR.Targets {
			c.Targets = append(c.Targets, targetC{Target: t.Target, Walks: t.Walks, Members: t.Members})
		}
		sort.Slice(c.Targets, func(i, j int) bool { return c.Targets[i].Target < c.Targets[j].Target })
	}
	return json.Marshal(c)
}

// WriteJSON writes the artifact as indented JSON.
func (rp *RuntimeProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rp)
}

// WriteText renders the profile as an EXPLAIN ANALYZE-style text tree:
// solve phases, then rules ranked by self-time with their per-step
// fan-out, then stratum curves and RR attribution.
func (rp *RuntimeProfile) WriteText(w io.Writer) error {
	if rp == nil {
		_, err := fmt.Fprintln(w, "no profile")
		return err
	}
	bw := &errWriter{w: w}
	alg := rp.Algorithm
	if alg == "" {
		alg = "?"
	}
	bw.printf("EXPLAIN ANALYZE (%s)\n", alg)
	for _, ph := range rp.Phases {
		bw.printf("├─ phase %-8s %s\n", ph.Phase, durNs(ph.Ns))
	}
	bw.printf("├─ engine: %d runs, %d derived (%d new, %.1f%% dup), %d attempted",
		rp.EngineRuns, rp.Derived, rp.NewFacts, 100*dupRate(rp.NewFacts, rp.Derived), rp.Attempted)
	if rp.Suppressed > 0 {
		bw.printf(", %d gate-suppressed", rp.Suppressed)
	}
	if rp.EarlyVetoes > 0 {
		bw.printf(", %d early vetoes", rp.EarlyVetoes)
	}
	bw.printf("  [%s]\n", durNs(rp.EvalNs))
	for i, r := range rp.Rules {
		branch := "├─"
		if i == len(rp.Rules)-1 && rp.RulesOmitted == 0 && len(rp.Strata) == 0 && rp.RR == nil && rp.Plan == nil {
			branch = "└─"
		}
		bw.printf("%s rule %s\n", branch, r.Rule)
		bw.printf("│    self=%s derived=%d new=%d dup=%.1f%% attempted=%d",
			durNs(r.SelfNs), r.Derived, r.NewFacts, 100*r.DedupRate, r.Attempted)
		if r.Suppressed > 0 {
			bw.printf(" suppressed=%d", r.Suppressed)
		}
		if r.EarlyVetoes > 0 {
			bw.printf(" early_vetoes=%d", r.EarlyVetoes)
		}
		bw.printf("\n")
		for _, s := range r.Steps {
			bw.printf("│    step %d: %d matches", s.Step, s.Matches)
			if s.Vetoes > 0 {
				bw.printf(", %d hoisted-check vetoes", s.Vetoes)
			}
			bw.printf("\n")
		}
	}
	if rp.RulesOmitted > 0 {
		bw.printf("├─ ... %d more rules folded into totals\n", rp.RulesOmitted)
	}
	for _, s := range rp.Strata {
		var parts []string
		for _, d := range s.Rounds {
			parts = append(parts, fmt.Sprintf("%d", d.Delta))
		}
		bw.printf("├─ stratum %d deltas: %s\n", s.Stratum, strings.Join(parts, " "))
	}
	if rr := rp.RR; rr != nil {
		bw.printf("├─ rr phase: %d walks, %d members", rr.Walks, rr.Members)
		if rr.ArenaBytes > 0 {
			bw.printf(", arena %s", byteStr(rr.ArenaBytes))
		}
		bw.printf("  [%s]\n", durNs(rr.WalkNs))
		for _, t := range rr.Targets {
			bw.printf("│    %s: %d walks, %d members (%s)  [%s]\n",
				t.Target, t.Walks, t.Members, byteStr(t.Bytes), durNs(t.WalkNs))
		}
		if rr.TargetsOmitted > 0 {
			bw.printf("│    ... %d more targets folded into totals\n", rr.TargetsOmitted)
		}
		for _, h := range rr.HotNodes {
			bw.printf("│    hot node %s: in %d RR sets\n", h.Node, h.Visits)
		}
	}
	if pl := rp.Plan; pl != nil {
		bw.printf("└─ planner: %d plans built, %d cache hits, %d atoms reordered\n",
			pl.Built, pl.Hits, pl.Reordered)
	}
	return bw.err
}

func dupRate(newFacts, derived int64) float64 {
	if derived == 0 {
		return 0
	}
	return 1 - float64(newFacts)/float64(derived)
}

func durNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func byteStr(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

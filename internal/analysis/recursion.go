package analysis

import (
	"sort"

	"contribmax/internal/ast"
)

// RecursionKind classifies a strongly connected component of the
// dependency graph by the shape of its recursion, which determines the
// cost profile of semi-naive evaluation and the effectiveness of the
// Magic-Sets rewriting.
type RecursionKind int

const (
	// NonRecursive components have no internal dependency edge; their
	// predicates are computable in one bottom-up pass.
	NonRecursive RecursionKind = iota
	// LinearRecursive components have internal edges, but every defining
	// rule mentions at most one body atom from the component — the classic
	// transitive-closure shape, where each semi-naive iteration joins one
	// delta against stable relations.
	LinearRecursive
	// NonlinearRecursive components have a rule with two or more body
	// atoms from the component (e.g. tc(X,Y) :- tc(X,Z), tc(Z,Y)); each
	// iteration joins deltas against full recursive relations, and the
	// Magic-Sets "relevant" cone grows much faster.
	NonlinearRecursive
)

// String renders the kind in the hyphenated lowercase form used by the
// ProgramProfile JSON schema.
func (k RecursionKind) String() string {
	switch k {
	case LinearRecursive:
		return "linear"
	case NonlinearRecursive:
		return "nonlinear"
	default:
		return "non-recursive"
	}
}

// SCCInfo describes one strongly connected component of the dependency
// graph restricted to intensional predicates.
type SCCInfo struct {
	// Preds lists the component's predicates, sorted.
	Preds []string
	// Kind is the component's recursion shape.
	Kind RecursionKind
	// Mutual reports whether the component contains more than one
	// predicate (mutual recursion).
	Mutual bool
	// Rules indexes the program rules whose head predicate is in the
	// component, in source order.
	Rules []int
	// NonlinearRule is the source index of the first rule with two or more
	// body atoms inside the component (-1 unless Kind is
	// NonlinearRecursive), and NonlinearAtom the source body index of the
	// second such atom — the natural anchor for diagnostics.
	NonlinearRule int
	NonlinearAtom int
}

// Recursion is the result of classifying a program's recursion structure.
type Recursion struct {
	// SCCs lists the intensional components, ordered by their first
	// predicate name.
	SCCs []SCCInfo
	// ByPred maps each intensional predicate to its component.
	ByPred map[string]*SCCInfo
}

// Kind returns the recursion kind of pred (NonRecursive for extensional or
// unknown predicates).
func (rec *Recursion) Kind(pred string) RecursionKind {
	if s := rec.ByPred[pred]; s != nil {
		return s.Kind
	}
	return NonRecursive
}

// ClassifyRecursion groups the program's intensional predicates into
// strongly connected components of the dependency graph and classifies
// each as non-recursive, linearly recursive, or nonlinearly recursive.
// Extensional predicates are excluded: they have no defining rules and are
// trivially non-recursive.
func ClassifyRecursion(prog *ast.Program, g *DepGraph) *Recursion {
	rec := &Recursion{ByPred: map[string]*SCCInfo{}}
	if prog == nil {
		return rec
	}
	comp := g.sccs()

	// Gather intensional components; a component is recursive iff it has
	// an internal edge (which covers self-loops).
	members := map[int][]string{}
	for _, p := range g.Preds {
		if g.IDB[p] {
			members[comp[p]] = append(members[comp[p]], p)
		}
	}
	internal := map[int]bool{}
	for _, e := range g.Edges {
		if comp[e.Head] == comp[e.Body] {
			internal[comp[e.Head]] = true
		}
	}

	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	// Order components by their first (smallest) predicate name for
	// deterministic output.
	sort.Slice(ids, func(i, j int) bool {
		return minName(members[ids[i]]) < minName(members[ids[j]])
	})

	for _, id := range ids {
		preds := members[id]
		sort.Strings(preds)
		info := SCCInfo{
			Preds:         preds,
			Mutual:        len(preds) > 1,
			NonlinearRule: -1,
			NonlinearAtom: -1,
		}
		inSCC := map[string]bool{}
		for _, p := range preds {
			inSCC[p] = true
		}
		for ri, r := range prog.Rules {
			if !inSCC[r.Head.Predicate] {
				continue
			}
			info.Rules = append(info.Rules, ri)
			if !internal[id] {
				continue
			}
			n := 0
			for bi, b := range r.Body {
				if ast.IsBuiltin(b.Predicate) || !inSCC[b.Predicate] {
					continue
				}
				n++
				if n == 2 && info.NonlinearRule < 0 {
					info.NonlinearRule, info.NonlinearAtom = ri, bi
				}
			}
		}
		switch {
		case !internal[id]:
			info.Kind = NonRecursive
		case info.NonlinearRule >= 0:
			info.Kind = NonlinearRecursive
		default:
			info.Kind = LinearRecursive
		}
		rec.SCCs = append(rec.SCCs, info)
	}
	for i := range rec.SCCs {
		for _, p := range rec.SCCs[i].Preds {
			rec.ByPred[p] = &rec.SCCs[i]
		}
	}
	return rec
}

func minName(names []string) string {
	min := names[0]
	for _, n := range names[1:] {
		if n < min {
			min = n
		}
	}
	return min
}

package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/analysis")

// TestGoldenCorpus runs the linter over every seeded-defect program in
// testdata/analysis and compares the rendered diagnostics (code, line and
// column included) against the sibling .golden file. Regenerate with
//
//	go test ./internal/analysis -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "analysis", "bad_*.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no bad_*.dl files found under testdata/analysis")
	}
	sort.Strings(files)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			res, err := LintFile(file, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range res.Diagnostics {
				fmt.Fprintln(&b, d.String())
			}
			got := b.String()
			golden := strings.TrimSuffix(file, ".dl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}

// TestGoldenCorpusHasErrors pins down which corpus files must contain at
// least one hard error (as opposed to warnings/infos only).
func TestGoldenCorpusHasErrors(t *testing.T) {
	wantError := map[string]bool{
		"bad_arity.dl":      true,
		"bad_builtin.dl":    true,
		"bad_edbquery.dl":   false, // info only: CM014 (extensional + hierarchical)
		"bad_ghostquery.dl": false, // warning only: CM008; hierarchy pass silent for ghost
		"bad_hier.dl":       false, // info only: CM018
		"bad_mutual.dl":     false, // info only: CM017
		"bad_negcycle.dl":   true,
		"bad_parse.dl":      true,
		"bad_prob.dl":       true,
		"bad_reach.dl":      false, // warnings only: CM008/CM009/CM011/CM016 (+CM015 info)
		"bad_safety.dl":     true,
		"bad_unbound.dl":    false, // info only: CM013/CM014
		"bad_unused.dl":     false, // info only: CM014/CM019
	}
	for name, want := range wantError {
		res, err := LintFile(filepath.Join("..", "..", "testdata", "analysis", name), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := HasErrors(res.Diagnostics); got != want {
			t.Errorf("%s: HasErrors = %v, want %v", name, got, want)
		}
		if len(res.Diagnostics) == 0 {
			t.Errorf("%s: expected at least one diagnostic", name)
		}
	}
}

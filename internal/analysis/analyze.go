package analysis

import (
	"sort"
	"strconv"
	"strings"

	"contribmax/internal/ast"
)

// Options configures an analysis run.
type Options struct {
	// EDB maps extensional predicate names to their arities, typically
	// harvested from a loaded database. When nil, the analyzer assumes
	// nothing about the extensional schema: body-only predicates are taken
	// to be legitimate edb relations and CM008 is never reported.
	EDB map[string]int
	// Roots lists the query/target predicates the program is evaluated
	// for. When non-empty, the analyzer additionally reports rules that
	// cannot contribute to any root (CM009) and Magic-Sets free-variable
	// explosions along the roots' dependency cone (CM011). Targets that no
	// rule defines are reported as CM008.
	Roots []string
}

// Analyze runs every analysis pass over prog and returns the diagnostics
// sorted by source position. A nil or empty program yields none.
//
// Error-severity diagnostics are a superset of ast.Program.Validate's
// rejections; a program with no Error diagnostics evaluates without
// arity/safety panics and stratifies.
func Analyze(prog *ast.Program, opts Options) []Diagnostic {
	if prog == nil {
		return nil
	}
	l := &list{}
	g := NewDepGraph(prog)
	rec := ClassifyRecursion(prog, g)
	checkRules(l, prog)
	checkArities(l, prog, opts)
	checkDefinitions(l, prog, g, opts)
	checkStratification(l, g)
	checkAdornments(l, prog, g, opts)
	checkRecursionShape(l, prog, g, rec, opts)
	checkHierarchy(l, prog, g, rec, opts)
	checkNeverFires(l, prog, opts)
	checkUnusedRelations(l, prog, g, opts)
	Sort(l.diags)
	return l.diags
}

// checkRules runs the per-rule passes: labels, probabilities, range
// restriction, safety, built-in misuse, and singleton variables.
func checkRules(l *list, prog *ast.Program) {
	labelAt := map[string]ast.Pos{}
	for _, r := range prog.Rules {
		span := r.Span()

		// Labels (CM001).
		if r.Label == "" {
			l.errorf(CodeLabel, r.Pos, span, "rule has an empty label")
		} else if first, dup := labelAt[r.Label]; dup {
			d := l.errorf(CodeLabel, r.Pos, span, "duplicate rule label %q", r.Label)
			d.Related = append(d.Related, Related{Pos: first, Message: "first defined here"})
		} else {
			labelAt[r.Label] = r.Pos
		}

		// Probabilities (CM002, CM003).
		if r.Prob < 0 || r.Prob > 1 || r.Prob != r.Prob {
			l.errorf(CodeProbRange, r.Pos, span, "probability %g of rule %s is outside [0,1]", r.Prob, r.Label)
		} else if r.Prob == 0 {
			l.warnf(CodeDeadRule, r.Pos, span, "rule %s has probability 0 and can never fire", r.Label)
		}

		// Head shape (CM007).
		if r.Head.Negated {
			l.errorf(CodeBuiltinMisuse, r.Head.Pos, span, "rule %s has a negated head", r.Label)
		}
		if ast.IsBuiltin(r.Head.Predicate) {
			l.errorf(CodeBuiltinMisuse, r.Head.Pos, span, "built-in predicate %s cannot be a rule head", r.Head.Predicate)
		}

		// Range restriction (CM004) and safety (CM005), reported per
		// offending variable at the variable's own position.
		binding := map[string]bool{}
		for _, b := range r.Body {
			if b.Negated || ast.IsBuiltin(b.Predicate) {
				continue
			}
			for _, t := range b.Terms {
				if t.IsVar() {
					binding[t.Name] = true
				}
			}
		}
		reported := map[string]bool{}
		for _, t := range r.Head.Terms {
			if t.IsVar() && !binding[t.Name] && !reported[t.Name] {
				reported[t.Name] = true
				if r.IsFact() {
					l.errorf(CodeRangeRestriction, t.Pos, span,
						"fact %s contains variable %s (facts must be ground)", r.Label, t.Name)
				} else {
					l.errorf(CodeRangeRestriction, t.Pos, span,
						"head variable %s of rule %s is not bound by a positive body atom", t.Name, r.Label)
				}
			}
		}
		for _, b := range r.Body {
			builtin := ast.IsBuiltin(b.Predicate)
			if builtin {
				if b.Arity() != 2 {
					l.errorf(CodeBuiltinMisuse, b.Pos, span,
						"built-in %s must be binary, used with %d argument(s)", b.Predicate, b.Arity())
				}
				if b.Negated {
					l.errorf(CodeBuiltinMisuse, b.Pos, span,
						"negated built-in %s (use the complementary comparison)", b.Predicate)
				}
			}
			if !b.Negated && !builtin {
				continue
			}
			what := "negated atom"
			if builtin {
				what = "built-in " + b.Predicate
			}
			for _, t := range b.Terms {
				if t.IsVar() && !binding[t.Name] && !reported[t.Name] {
					reported[t.Name] = true
					l.errorf(CodeUnsafe, t.Pos, span,
						"variable %s of %s in rule %s is not bound by a positive body atom", t.Name, what, r.Label)
				}
			}
		}

		// Singleton variables (CM012): one occurrence across the whole
		// rule is usually a typo; _-prefixed names opt out.
		count := map[string]int{}
		firstAt := map[string]ast.Pos{}
		countAtom := func(a ast.Atom) {
			for _, t := range a.Terms {
				if !t.IsVar() {
					continue
				}
				count[t.Name]++
				if count[t.Name] == 1 {
					firstAt[t.Name] = t.Pos
				}
			}
		}
		countAtom(r.Head)
		for _, b := range r.Body {
			countAtom(b)
		}
		for _, v := range sortedVarNames(count) {
			if count[v] == 1 && !strings.HasPrefix(v, "_") && !reported[v] {
				l.infof(CodeSingletonVar, firstAt[v], span,
					"variable %s occurs only once in rule %s (prefix with _ if intentional)", v, r.Label)
			}
		}
	}
}

// checkArities verifies every predicate keeps one arity across rule heads,
// bodies, and the extensional database (CM006).
func checkArities(l *list, prog *ast.Program, opts Options) {
	type use struct {
		arity int
		pos   ast.Pos
		what  string
	}
	first := map[string]use{}
	for p, a := range opts.EDB {
		first[p] = use{arity: a, what: "extensional database"}
	}
	check := func(a ast.Atom, span ast.Span) {
		if ast.IsBuiltin(a.Predicate) {
			return
		}
		if prev, ok := first[a.Predicate]; ok {
			if prev.arity != a.Arity() {
				d := l.errorf(CodeArity, a.Pos, span,
					"predicate %s used with arity %d, previously %d", a.Predicate, a.Arity(), prev.arity)
				what := prev.what
				if what == "" {
					what = "first use"
				}
				d.Related = append(d.Related, Related{Pos: prev.pos, Message: what})
			}
			return
		}
		first[a.Predicate] = use{arity: a.Arity(), pos: a.Pos}
	}
	for _, r := range prog.Rules {
		span := r.Span()
		check(r.Head, span)
		for _, b := range r.Body {
			check(b, span)
		}
	}
}

// checkDefinitions reports undefined body predicates (CM008, needs EDB
// info), undefined roots (CM008), and rules unreachable from the roots
// (CM009).
func checkDefinitions(l *list, prog *ast.Program, g *DepGraph, opts Options) {
	if opts.EDB != nil {
		seen := map[string]bool{}
		for _, r := range prog.Rules {
			for _, b := range r.Body {
				p := b.Predicate
				if ast.IsBuiltin(p) || g.IDB[p] || seen[p] {
					continue
				}
				if _, ok := opts.EDB[p]; ok {
					continue
				}
				seen[p] = true
				l.warnf(CodeUndefinedPred, b.Pos, r.Span(),
					"predicate %s has no rules and no facts in the database", p)
			}
		}
	}
	if len(opts.Roots) == 0 {
		return
	}
	for _, root := range opts.Roots {
		if !g.IDB[root] {
			if _, edb := opts.EDB[root]; !edb {
				l.warnf(CodeUndefinedPred, ast.Pos{}, ast.Span{},
					"query/target predicate %s is not defined by any rule%s", root, edbHint(opts))
			}
		}
	}
	deps := g.DependenciesOf(opts.Roots)
	for _, r := range prog.Rules {
		if !deps[r.Head.Predicate] {
			l.warnf(CodeUnreachable, r.Pos, r.Span(),
				"rule %s (head %s) cannot contribute to the query/target predicates", r.Label, r.Head.Predicate)
		}
	}
}

func edbHint(opts Options) string {
	if opts.EDB == nil {
		return ""
	}
	return " and has no facts in the database"
}

// checkStratification reports negation through recursion (CM010) with the
// offending cycle spelled out.
func checkStratification(l *list, g *DepGraph) {
	cycle := g.NegativeCycle()
	if cycle == nil {
		return
	}
	neg := cycle.NegEdge()
	d := l.errorf(CodeNegativeCycle, neg.Pos, ast.Span{Start: neg.Pos, End: neg.Pos},
		"program is not stratifiable: recursion through negation (%s)", cycle)
	for _, e := range cycle.Edges {
		if e.Pos.IsValid() && e.Pos != neg.Pos {
			d.Related = append(d.Related, Related{Pos: e.Pos, Message: e.Head + " depends on " + e.Body + " here"})
		}
	}
}

// checkAdornments runs the shared adornment dataflow pass (ComputeFlow,
// the exact propagation internal/magic performs, full left-to-right SIPS)
// and reports two findings over its results: a recursive predicate reached
// with an all-free binding pattern, where the "relevant" subgraph
// degenerates to the full materialization and defeats the rewriting
// (CM011); and intensional argument positions that stay free in every
// binding pattern reaching them, which no query binding will ever restrict
// (CM013).
func checkAdornments(l *list, prog *ast.Program, g *DepGraph, opts Options) {
	if len(opts.Roots) == 0 {
		return
	}
	flow := ComputeFlow(prog, g, opts.Roots, LeftToRight)
	recursive := g.recursivePreds()
	warned := map[string]bool{}
	for _, oc := range flow.Occurrences {
		if !oc.IDB || !oc.Adornment.AllFree() {
			continue
		}
		if recursive[oc.Pred] && !warned[oc.Pred] {
			warned[oc.Pred] = true
			r := prog.Rules[oc.Rule]
			l.warnf(CodeFreeAdornment, oc.Pos, r.Span(),
				"magic sets: recursive predicate %s is reached with no bound arguments; the relevant subgraph degenerates to the full materialization", oc.Pred)
		}
	}

	// CM013: positions free in every reached binding pattern. Roots are
	// reached all-bound, so only strictly-inner predicates can qualify.
	for _, pred := range sortedPreds(flow.goalPreds()) {
		bound, ok := flow.BoundSomewhere(pred)
		if !ok || len(bound) == 0 {
			continue
		}
		var free []string
		for i, b := range bound {
			if !b {
				free = append(free, strconv.Itoa(i+1))
			}
		}
		if len(free) == 0 {
			continue
		}
		pos, span := predAnchor(prog, pred)
		l.infof(CodeUnboundPosition, pos, span,
			"argument position(s) %s of predicate %s are never bound in any binding pattern reaching it; query bindings cannot restrict them",
			strings.Join(free, ", "), pred)
	}
}

// goalPreds returns the set of predicates the flow reached.
func (f *Flow) goalPreds() map[string]bool {
	out := make(map[string]bool, len(f.Goals))
	for p := range f.Goals {
		out[p] = true
	}
	return out
}

// predAnchor finds the source anchor for a predicate-level finding: the
// head of its first defining rule.
func predAnchor(prog *ast.Program, pred string) (ast.Pos, ast.Span) {
	for _, r := range prog.Rules {
		if r.Head.Predicate == pred {
			return r.Head.Pos, r.Span()
		}
	}
	return ast.Pos{}, ast.Span{}
}

// checkRecursionShape reports nonlinear recursion inside the query cone
// (CM015) and mutually recursive components (CM017).
func checkRecursionShape(l *list, prog *ast.Program, g *DepGraph, rec *Recursion, opts Options) {
	var cone map[string]bool
	if len(opts.Roots) > 0 {
		cone = g.DependenciesOf(opts.Roots)
	}
	for _, scc := range rec.SCCs {
		if scc.Mutual && len(scc.Rules) > 0 {
			r := prog.Rules[scc.Rules[0]]
			l.infof(CodeMutualRecursion, r.Pos, r.Span(),
				"predicates %s are mutually recursive (one strongly connected component)",
				strings.Join(scc.Preds, ", "))
		}
		if scc.Kind != NonlinearRecursive || cone == nil || !inCone(scc.Preds, cone) {
			continue
		}
		r := prog.Rules[scc.NonlinearRule]
		b := r.Body[scc.NonlinearAtom]
		l.infof(CodeNonlinearRecursion, b.Pos, r.Span(),
			"rule %s makes %s nonlinearly recursive (two or more recursive body atoms); semi-naive deltas join full recursive relations and the magic cone grows super-linearly",
			r.Label, strings.Join(scc.Preds, ", "))
	}
}

func inCone(preds []string, cone map[string]bool) bool {
	for _, p := range preds {
		if cone[p] {
			return true
		}
	}
	return false
}

// checkHierarchy classifies each query root's cone and reports whether an
// exact lifted tier applies (CM014) or sampling is required because the
// cone is non-recursive yet non-hierarchical (CM018). Recursive cones get
// neither: recursion already implies sampling and is reported through
// CM011/CM015.
func checkHierarchy(l *list, prog *ast.Program, g *DepGraph, rec *Recursion, opts Options) {
	if len(opts.Roots) == 0 {
		return
	}
	for _, res := range AnalyzeHierarchy(prog, g, opts.Roots, rec) {
		pos, span := predAnchor(prog, res.Root)
		if res.Hierarchical {
			if !g.IDB[res.Root] {
				// Extensional (rule-less) root: trivially hierarchical when
				// it names a known database relation; silent otherwise —
				// unknown predicates are the reachability passes' finding.
				if _, known := opts.EDB[res.Root]; known {
					l.infof(CodeHierarchical, pos, span,
						"query predicate %s is extensional (no rules); exact evaluation reads the fact probability directly", res.Root)
				}
				continue
			}
			l.infof(CodeHierarchical, pos, span,
				"query predicate %s spans a hierarchical non-recursive sub-program; exact lifted evaluation is polynomial", res.Root)
			continue
		}
		if res.Rule < 0 {
			// Recursive cone: not a hierarchy finding.
			continue
		}
		if res.Pos.IsValid() {
			pos = res.Pos
			span = prog.Rules[res.Rule].Span()
		}
		l.infof(CodeNonHierarchical, pos, span,
			"query predicate %s is non-recursive but not hierarchical (%s); exact lifted evaluation may be exponential, sampling required", res.Root, res.Reason)
	}
}

// checkNeverFires reports rules with a transitively underivable positive
// body predicate (CM016, needs EDB info). Subsumes CM008 transitively:
// CM008 flags the missing predicate itself, CM016 every rule the gap
// kills downstream.
func checkNeverFires(l *list, prog *ast.Program, opts Options) {
	if opts.EDB == nil {
		return
	}
	for _, nf := range NeverFiringRules(prog, opts.EDB) {
		r := prog.Rules[nf.Rule]
		b := r.Body[nf.Body]
		l.warnf(CodeNeverFires, b.Pos, r.Span(),
			"rule %s can never fire: predicate %s is transitively underivable (no facts and no derivable rule)", r.Label, nf.Pred)
	}
}

// checkUnusedRelations reports database relations no rule body, rule
// head, or query root ever mentions (CM019, needs EDB info).
func checkUnusedRelations(l *list, prog *ast.Program, g *DepGraph, opts Options) {
	if opts.EDB == nil {
		return
	}
	used := map[string]bool{}
	for _, r := range prog.Rules {
		used[r.Head.Predicate] = true
		for _, b := range r.Body {
			used[b.Predicate] = true
		}
	}
	for _, root := range opts.Roots {
		used[root] = true
	}
	rels := make([]string, 0, len(opts.EDB))
	for p := range opts.EDB {
		if !used[p] {
			rels = append(rels, p)
		}
	}
	sort.Strings(rels)
	for _, p := range rels {
		l.infof(CodeUnusedRelation, ast.Pos{}, ast.Span{},
			"database relation %s (arity %d) is never referenced by any rule or query", p, opts.EDB[p])
	}
}

// recursivePreds marks predicates on a dependency cycle (an edge to a
// predicate in their own strongly connected component).
func (g *DepGraph) recursivePreds() map[string]bool {
	comp := g.sccs()
	rec := map[string]bool{}
	for _, e := range g.Edges {
		if comp[e.Head] == comp[e.Body] {
			rec[e.Head] = true
			rec[e.Body] = true
		}
	}
	return rec
}

func sortedVarNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	// Order by name for determinism; the list is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package analysis

import (
	"strings"

	"contribmax/internal/ast"
)

// Options configures an analysis run.
type Options struct {
	// EDB maps extensional predicate names to their arities, typically
	// harvested from a loaded database. When nil, the analyzer assumes
	// nothing about the extensional schema: body-only predicates are taken
	// to be legitimate edb relations and CM008 is never reported.
	EDB map[string]int
	// Roots lists the query/target predicates the program is evaluated
	// for. When non-empty, the analyzer additionally reports rules that
	// cannot contribute to any root (CM009) and Magic-Sets free-variable
	// explosions along the roots' dependency cone (CM011). Targets that no
	// rule defines are reported as CM008.
	Roots []string
}

// Analyze runs every analysis pass over prog and returns the diagnostics
// sorted by source position. A nil or empty program yields none.
//
// Error-severity diagnostics are a superset of ast.Program.Validate's
// rejections; a program with no Error diagnostics evaluates without
// arity/safety panics and stratifies.
func Analyze(prog *ast.Program, opts Options) []Diagnostic {
	if prog == nil {
		return nil
	}
	l := &list{}
	g := NewDepGraph(prog)
	checkRules(l, prog)
	checkArities(l, prog, opts)
	checkDefinitions(l, prog, g, opts)
	checkStratification(l, g)
	checkAdornments(l, prog, g, opts)
	Sort(l.diags)
	return l.diags
}

// checkRules runs the per-rule passes: labels, probabilities, range
// restriction, safety, built-in misuse, and singleton variables.
func checkRules(l *list, prog *ast.Program) {
	labelAt := map[string]ast.Pos{}
	for _, r := range prog.Rules {
		span := r.Span()

		// Labels (CM001).
		if r.Label == "" {
			l.errorf(CodeLabel, r.Pos, span, "rule has an empty label")
		} else if first, dup := labelAt[r.Label]; dup {
			d := l.errorf(CodeLabel, r.Pos, span, "duplicate rule label %q", r.Label)
			d.Related = append(d.Related, Related{Pos: first, Message: "first defined here"})
		} else {
			labelAt[r.Label] = r.Pos
		}

		// Probabilities (CM002, CM003).
		if r.Prob < 0 || r.Prob > 1 || r.Prob != r.Prob {
			l.errorf(CodeProbRange, r.Pos, span, "probability %g of rule %s is outside [0,1]", r.Prob, r.Label)
		} else if r.Prob == 0 {
			l.warnf(CodeDeadRule, r.Pos, span, "rule %s has probability 0 and can never fire", r.Label)
		}

		// Head shape (CM007).
		if r.Head.Negated {
			l.errorf(CodeBuiltinMisuse, r.Head.Pos, span, "rule %s has a negated head", r.Label)
		}
		if ast.IsBuiltin(r.Head.Predicate) {
			l.errorf(CodeBuiltinMisuse, r.Head.Pos, span, "built-in predicate %s cannot be a rule head", r.Head.Predicate)
		}

		// Range restriction (CM004) and safety (CM005), reported per
		// offending variable at the variable's own position.
		binding := map[string]bool{}
		for _, b := range r.Body {
			if b.Negated || ast.IsBuiltin(b.Predicate) {
				continue
			}
			for _, t := range b.Terms {
				if t.IsVar() {
					binding[t.Name] = true
				}
			}
		}
		reported := map[string]bool{}
		for _, t := range r.Head.Terms {
			if t.IsVar() && !binding[t.Name] && !reported[t.Name] {
				reported[t.Name] = true
				if r.IsFact() {
					l.errorf(CodeRangeRestriction, t.Pos, span,
						"fact %s contains variable %s (facts must be ground)", r.Label, t.Name)
				} else {
					l.errorf(CodeRangeRestriction, t.Pos, span,
						"head variable %s of rule %s is not bound by a positive body atom", t.Name, r.Label)
				}
			}
		}
		for _, b := range r.Body {
			builtin := ast.IsBuiltin(b.Predicate)
			if builtin {
				if b.Arity() != 2 {
					l.errorf(CodeBuiltinMisuse, b.Pos, span,
						"built-in %s must be binary, used with %d argument(s)", b.Predicate, b.Arity())
				}
				if b.Negated {
					l.errorf(CodeBuiltinMisuse, b.Pos, span,
						"negated built-in %s (use the complementary comparison)", b.Predicate)
				}
			}
			if !b.Negated && !builtin {
				continue
			}
			what := "negated atom"
			if builtin {
				what = "built-in " + b.Predicate
			}
			for _, t := range b.Terms {
				if t.IsVar() && !binding[t.Name] && !reported[t.Name] {
					reported[t.Name] = true
					l.errorf(CodeUnsafe, t.Pos, span,
						"variable %s of %s in rule %s is not bound by a positive body atom", t.Name, what, r.Label)
				}
			}
		}

		// Singleton variables (CM012): one occurrence across the whole
		// rule is usually a typo; _-prefixed names opt out.
		count := map[string]int{}
		firstAt := map[string]ast.Pos{}
		countAtom := func(a ast.Atom) {
			for _, t := range a.Terms {
				if !t.IsVar() {
					continue
				}
				count[t.Name]++
				if count[t.Name] == 1 {
					firstAt[t.Name] = t.Pos
				}
			}
		}
		countAtom(r.Head)
		for _, b := range r.Body {
			countAtom(b)
		}
		for _, v := range sortedVarNames(count) {
			if count[v] == 1 && !strings.HasPrefix(v, "_") && !reported[v] {
				l.infof(CodeSingletonVar, firstAt[v], span,
					"variable %s occurs only once in rule %s (prefix with _ if intentional)", v, r.Label)
			}
		}
	}
}

// checkArities verifies every predicate keeps one arity across rule heads,
// bodies, and the extensional database (CM006).
func checkArities(l *list, prog *ast.Program, opts Options) {
	type use struct {
		arity int
		pos   ast.Pos
		what  string
	}
	first := map[string]use{}
	for p, a := range opts.EDB {
		first[p] = use{arity: a, what: "extensional database"}
	}
	check := func(a ast.Atom, span ast.Span) {
		if ast.IsBuiltin(a.Predicate) {
			return
		}
		if prev, ok := first[a.Predicate]; ok {
			if prev.arity != a.Arity() {
				d := l.errorf(CodeArity, a.Pos, span,
					"predicate %s used with arity %d, previously %d", a.Predicate, a.Arity(), prev.arity)
				what := prev.what
				if what == "" {
					what = "first use"
				}
				d.Related = append(d.Related, Related{Pos: prev.pos, Message: what})
			}
			return
		}
		first[a.Predicate] = use{arity: a.Arity(), pos: a.Pos}
	}
	for _, r := range prog.Rules {
		span := r.Span()
		check(r.Head, span)
		for _, b := range r.Body {
			check(b, span)
		}
	}
}

// checkDefinitions reports undefined body predicates (CM008, needs EDB
// info), undefined roots (CM008), and rules unreachable from the roots
// (CM009).
func checkDefinitions(l *list, prog *ast.Program, g *DepGraph, opts Options) {
	if opts.EDB != nil {
		seen := map[string]bool{}
		for _, r := range prog.Rules {
			for _, b := range r.Body {
				p := b.Predicate
				if ast.IsBuiltin(p) || g.IDB[p] || seen[p] {
					continue
				}
				if _, ok := opts.EDB[p]; ok {
					continue
				}
				seen[p] = true
				l.warnf(CodeUndefinedPred, b.Pos, r.Span(),
					"predicate %s has no rules and no facts in the database", p)
			}
		}
	}
	if len(opts.Roots) == 0 {
		return
	}
	for _, root := range opts.Roots {
		if !g.IDB[root] {
			if _, edb := opts.EDB[root]; !edb {
				l.warnf(CodeUndefinedPred, ast.Pos{}, ast.Span{},
					"query/target predicate %s is not defined by any rule%s", root, edbHint(opts))
			}
		}
	}
	deps := g.DependenciesOf(opts.Roots)
	for _, r := range prog.Rules {
		if !deps[r.Head.Predicate] {
			l.warnf(CodeUnreachable, r.Pos, r.Span(),
				"rule %s (head %s) cannot contribute to the query/target predicates", r.Label, r.Head.Predicate)
		}
	}
}

func edbHint(opts Options) string {
	if opts.EDB == nil {
		return ""
	}
	return " and has no facts in the database"
}

// checkStratification reports negation through recursion (CM010) with the
// offending cycle spelled out.
func checkStratification(l *list, g *DepGraph) {
	cycle := g.NegativeCycle()
	if cycle == nil {
		return
	}
	neg := cycle.NegEdge()
	d := l.errorf(CodeNegativeCycle, neg.Pos, ast.Span{Start: neg.Pos, End: neg.Pos},
		"program is not stratifiable: recursion through negation (%s)", cycle)
	for _, e := range cycle.Edges {
		if e.Pos.IsValid() && e.Pos != neg.Pos {
			d.Related = append(d.Related, Related{Pos: e.Pos, Message: e.Head + " depends on " + e.Body + " here"})
		}
	}
}

// checkAdornments simulates the Magic-Sets adornment propagation from the
// roots (full left-to-right SIPS, the strategy of internal/magic — see
// internal/magic/adorn.go) and warns when a recursive predicate would be
// processed with an all-free binding pattern: the "relevant" subgraph then
// degenerates to the full materialization, defeating the point of the
// rewriting (CM011). The simulation duplicates the adornment arithmetic
// rather than importing internal/magic, which sits above the engine in the
// package layering.
func checkAdornments(l *list, prog *ast.Program, g *DepGraph, opts Options) {
	if len(opts.Roots) == 0 {
		return
	}
	recursive := g.recursivePreds()
	arities := prog.Arities()

	type adorned struct {
		pred string
		ad   string // binding pattern: 'b'/'f' per argument position
	}
	var queue []adorned
	visited := map[adorned]bool{}
	enqueue := func(p string, ad string) {
		key := adorned{p, ad}
		if !visited[key] {
			visited[key] = true
			queue = append(queue, key)
		}
	}
	for _, root := range opts.Roots {
		if g.IDB[root] {
			enqueue(root, strings.Repeat("b", arities[root]))
		}
	}
	warned := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, r := range prog.RulesFor(cur.pred) {
			bound := map[string]bool{}
			for i, t := range r.Head.Terms {
				if t.IsVar() && i < len(cur.ad) && cur.ad[i] == 'b' {
					bound[t.Name] = true
				}
			}
			for _, b := range r.Body {
				if ast.IsBuiltin(b.Predicate) {
					continue
				}
				ad := adornmentFor(b, bound)
				if g.IDB[b.Predicate] {
					if len(ad) > 0 && !strings.ContainsRune(ad, 'b') && recursive[b.Predicate] && !warned[b.Predicate] {
						warned[b.Predicate] = true
						l.warnf(CodeFreeAdornment, b.Pos, r.Span(),
							"magic sets: recursive predicate %s is reached with no bound arguments; the relevant subgraph degenerates to the full materialization", b.Predicate)
					}
					enqueue(b.Predicate, ad)
				}
				if !b.Negated {
					for _, t := range b.Terms {
						if t.IsVar() {
							bound[t.Name] = true
						}
					}
				}
			}
		}
	}
}

// adornmentFor computes the binding pattern of atom under the given bound
// variable set: 'b' where the term is a constant or bound variable, 'f'
// otherwise. Mirrors internal/magic's adornmentFor.
func adornmentFor(atom ast.Atom, bound map[string]bool) string {
	var sb strings.Builder
	sb.Grow(atom.Arity())
	for _, t := range atom.Terms {
		if t.IsConst() || bound[t.Name] {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return sb.String()
}

// recursivePreds marks predicates on a dependency cycle (an edge to a
// predicate in their own strongly connected component).
func (g *DepGraph) recursivePreds() map[string]bool {
	comp := g.sccs()
	rec := map[string]bool{}
	for _, e := range g.Edges {
		if comp[e.Head] == comp[e.Body] {
			rec[e.Head] = true
			rec[e.Body] = true
		}
	}
	return rec
}

func sortedVarNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	// Order by name for determinism; the list is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package analysis

import (
	"fmt"
	"sort"

	"contribmax/internal/ast"
)

// Hierarchical-query detection (cf. "A Unifying Algorithm for Hierarchical
// Queries", PODS). For a self-join-free conjunctive query, exact
// probabilistic evaluation is polynomial exactly when the query is
// hierarchical: for every pair of existential variables x, y, the sets of
// atoms containing x and containing y are nested or disjoint. We lift the
// per-query test to a conservative per-root test over datalog programs: a
// root's sub-program qualifies when its dependency cone is non-recursive,
// negation-free, every rule is self-join-free, and every rule body passes
// the pairwise existential-variable test. Programs that qualify admit an
// exact lifted contribution tier; everything else needs sampling.

// HierarchyResult is the verdict for one query root.
type HierarchyResult struct {
	// Root is the query predicate the cone was analyzed for.
	Root string
	// Hierarchical reports whether the root's whole dependency cone passed
	// the (conservative, sufficient) hierarchy test.
	Hierarchical bool
	// Reason explains the first disqualifying finding ("" when
	// hierarchical): a recursive predicate, a negated literal, a
	// self-join, or the offending rule and variable pair.
	Reason string
	// Rule is the source index of the offending rule (-1 when
	// hierarchical or when the reason is not rule-specific).
	Rule int
	// Pos anchors the reason to a source position when one exists.
	Pos ast.Pos
}

// AnalyzeHierarchy classifies each root's dependency cone. A root with no
// rules (an extensional or EDB-only target) classifies as hierarchical: its
// "sub-program" is empty, so exact evaluation is trivial — reading the
// fact's own probability. rec may be nil, in which case the recursion
// structure is computed internally.
func AnalyzeHierarchy(prog *ast.Program, g *DepGraph, roots []string, rec *Recursion) []HierarchyResult {
	if prog == nil {
		return nil
	}
	if rec == nil {
		rec = ClassifyRecursion(prog, g)
	}
	var out []HierarchyResult
	seen := map[string]bool{}
	for _, root := range roots {
		if seen[root] {
			continue
		}
		seen[root] = true
		if !g.IDB[root] {
			out = append(out, HierarchyResult{Root: root, Hierarchical: true, Rule: -1})
			continue
		}
		out = append(out, classifyCone(prog, g, rec, root))
	}
	return out
}

func classifyCone(prog *ast.Program, g *DepGraph, rec *Recursion, root string) HierarchyResult {
	res := HierarchyResult{Root: root, Rule: -1}
	cone := g.DependenciesOf([]string{root})

	// Any recursion in the cone disqualifies: the hierarchy test is
	// defined for (unions of) conjunctive queries.
	for _, p := range sortedPreds(cone) {
		if rec.Kind(p) != NonRecursive {
			res.Reason = fmt.Sprintf("predicate %s in the cone of %s is recursive", p, root)
			return res
		}
	}
	for ri, r := range prog.Rules {
		if !cone[r.Head.Predicate] {
			continue
		}
		seenPred := map[string]ast.Pos{}
		for _, b := range r.Body {
			if ast.IsBuiltin(b.Predicate) {
				continue
			}
			if b.Negated {
				res.Reason = fmt.Sprintf("rule %s uses negation (not %s)", r.Label, b.Predicate)
				res.Rule, res.Pos = ri, b.Pos
				return res
			}
			if _, dup := seenPred[b.Predicate]; dup {
				res.Reason = fmt.Sprintf("rule %s self-joins %s", r.Label, b.Predicate)
				res.Rule, res.Pos = ri, b.Pos
				return res
			}
			seenPred[b.Predicate] = b.Pos
		}
		if x, y, ok := nonHierarchicalPair(r); ok {
			res.Reason = fmt.Sprintf("rule %s is not hierarchical: variables %s and %s share an atom but neither's atom set contains the other's", r.Label, x, y)
			res.Rule, res.Pos = ri, r.Pos
			return res
		}
	}
	res.Hierarchical = true
	return res
}

// nonHierarchicalPair applies the textbook test to one rule body: for
// every pair of existential variables (body variables not exported through
// the head), the sets of non-built-in body atoms containing them must be
// nested or disjoint. It returns the first offending pair in name order.
func nonHierarchicalPair(r ast.Rule) (x, y string, found bool) {
	head := map[string]bool{}
	for _, v := range r.HeadVars() {
		head[v] = true
	}
	atomsOf := map[string]map[int]bool{}
	for bi, b := range r.Body {
		if ast.IsBuiltin(b.Predicate) {
			continue
		}
		for _, v := range b.Vars(nil) {
			if head[v] {
				continue
			}
			if atomsOf[v] == nil {
				atomsOf[v] = map[int]bool{}
			}
			atomsOf[v][bi] = true
		}
	}
	vars := make([]string, 0, len(atomsOf))
	for v := range atomsOf {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			a, b := atomsOf[vars[i]], atomsOf[vars[j]]
			if !nestedOrDisjoint(a, b) {
				return vars[i], vars[j], true
			}
		}
	}
	return "", "", false
}

func nestedOrDisjoint(a, b map[int]bool) bool {
	inter, onlyA, onlyB := 0, 0, 0
	for k := range a {
		if b[k] {
			inter++
		} else {
			onlyA++
		}
	}
	for k := range b {
		if !a[k] {
			onlyB++
		}
	}
	return inter == 0 || onlyA == 0 || onlyB == 0
}

func sortedPreds(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

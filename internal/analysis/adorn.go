package analysis

import (
	"sort"
	"strings"

	"contribmax/internal/ast"
)

// This file owns the adornment (binding-pattern) arithmetic shared by the
// analyzer and the Magic-Sets transformation (internal/magic aliases these
// types rather than duplicating the logic; the package layering puts
// analysis below the engine, and magic above it, so the shared code must
// live here). On top of the primitives it implements ComputeFlow, the
// adornment dataflow pass: a breadth-first propagation of binding patterns
// from the query roots that records, per rule and per body atom, which
// argument positions are bound when the Magic-Sets rewriting (or a
// binding-aware join planner) processes the atom.

// Adornment is a binding pattern: one byte per argument position, 'b' for
// bound, 'f' for free.
type Adornment string

// AllBound returns the all-'b' adornment of the given arity (the adornment
// of a ground query atom).
func AllBound(arity int) Adornment {
	return Adornment(strings.Repeat("b", arity))
}

// AllFree reports whether the adornment binds no position. The empty
// adornment (a 0-ary predicate) is not considered all-free: there is
// nothing to bind.
func (a Adornment) AllFree() bool {
	return len(a) > 0 && !strings.ContainsRune(string(a), 'b')
}

// BoundPositions returns the indices of bound positions, in order.
func (a Adornment) BoundPositions() []int {
	var out []int
	for i := 0; i < len(a); i++ {
		if a[i] == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// NumBound returns the number of bound positions.
func (a Adornment) NumBound() int {
	n := 0
	for i := 0; i < len(a); i++ {
		if a[i] == 'b' {
			n++
		}
	}
	return n
}

// AdornmentFor computes the adornment of atom given the set of bound
// variable names: a position is bound iff its term is a constant or a bound
// variable.
func AdornmentFor(atom ast.Atom, bound map[string]bool) Adornment {
	var sb strings.Builder
	sb.Grow(atom.Arity())
	for _, t := range atom.Terms {
		if t.IsConst() || bound[t.Name] {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return Adornment(sb.String())
}

// SIPS selects the sideways information passing strategy: the order in
// which a rule's body atoms are processed during adornment, which
// determines the binding patterns (and hence how much a binding-aware
// rewriting prunes).
type SIPS int

const (
	// LeftToRight processes body atoms in source order — the textbook
	// strategy and the default.
	LeftToRight SIPS = iota
	// BoundFirst greedily picks the unprocessed atom with the most bound
	// argument positions (ties: edb before idb, then source order), so
	// adornments carry as many bindings as possible and built-in filters
	// run as early as their variables allow.
	BoundFirst
)

// OrderBody returns the body atoms in SIPS processing order. bound is the
// initially bound variable set (from the head adornment) and is NOT
// mutated. For LeftToRight the source order is returned as-is.
func OrderBody(body []ast.Atom, bound map[string]bool, sips SIPS, idb map[string]bool) []ast.Atom {
	if sips == LeftToRight || len(body) < 2 {
		return body
	}
	cur := map[string]bool{}
	for v := range bound {
		cur[v] = true
	}
	score := func(a ast.Atom) int {
		s := 0
		for _, t := range a.Terms {
			if t.IsConst() || cur[t.Name] {
				s++
			}
		}
		return s
	}
	out := make([]ast.Atom, 0, len(body))
	used := make([]bool, len(body))
	for len(out) < len(body) {
		best, bestKey := -1, -1
		for i, a := range body {
			if used[i] {
				continue
			}
			// Score: bound positions dominate; prefer edb atoms on ties;
			// earliest source position breaks remaining ties (strict >).
			key := score(a)*2 + boolToInt(!idb[a.Predicate])
			if key > bestKey {
				best, bestKey = i, key
			}
		}
		used[best] = true
		out = append(out, body[best])
		for _, v := range body[best].Vars(nil) {
			cur[v] = true
		}
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Occurrence is one body-atom visit of the adornment dataflow: rule Rule
// was processed under head adornment HeadAdornment, and its body atom at
// source index Body received adornment Adornment. Built-in literals are
// skipped (they filter, they do not bind or receive adornments). A body
// atom can occur several times, once per distinct head adornment the rule
// is processed under; occurrences appear in BFS order.
type Occurrence struct {
	Rule          int
	Body          int
	Pred          string
	Adornment     Adornment
	HeadAdornment Adornment
	Negated       bool
	IDB           bool
	Pos           ast.Pos
}

// Flow is the result of the adornment dataflow pass.
type Flow struct {
	// Roots are the query predicates the propagation started from (only
	// those intensional in the program seed goals).
	Roots []string
	// Goals maps each reached intensional predicate to the distinct
	// adornments it was reached with, in first-reached order. Roots appear
	// with their all-bound adornment.
	Goals map[string][]Adornment
	// Occurrences lists every body-atom visit in BFS order.
	Occurrences []Occurrence
}

// Adornments returns the distinct adornments pred was reached with, sorted
// lexicographically for deterministic output (BFS order is preserved in
// Goals itself).
func (f *Flow) Adornments(pred string) []Adornment {
	out := append([]Adornment(nil), f.Goals[pred]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BoundSomewhere returns, for a reached predicate, a bitmap of argument
// positions bound in at least one reached adornment. ok=false when the
// predicate was never reached.
func (f *Flow) BoundSomewhere(pred string) (bound []bool, ok bool) {
	ads := f.Goals[pred]
	if len(ads) == 0 {
		return nil, false
	}
	bound = make([]bool, len(ads[0]))
	for _, a := range ads {
		for i := 0; i < len(a) && i < len(bound); i++ {
			if a[i] == 'b' {
				bound[i] = true
			}
		}
	}
	return bound, true
}

// ComputeFlow runs the adornment dataflow pass: starting from each
// intensional root at the all-bound adornment (a ground query atom binds
// every argument), it processes each reached (predicate, adornment) goal
// once, walking the defining rules' bodies in SIPS order. A body atom's
// adornment is computed from the currently bound variables; after a
// positive non-built-in atom is processed, all its variables become bound
// (full SIPS — exactly the strategy of internal/magic). Negated atoms
// receive adornments and propagate goals but bind nothing; built-ins are
// skipped entirely.
//
// The pass mirrors magic.TransformWith's worklist, so its Goals set is the
// set of adorned predicates the transformation would generate, without
// constructing the transformed program.
func ComputeFlow(prog *ast.Program, g *DepGraph, roots []string, sips SIPS) *Flow {
	flow := &Flow{Goals: map[string][]Adornment{}}
	if prog == nil || len(roots) == 0 {
		return flow
	}
	arities := prog.Arities()

	type goal struct {
		pred string
		ad   Adornment
	}
	var queue []goal
	visited := map[goal]bool{}
	enqueue := func(p string, ad Adornment) {
		key := goal{p, ad}
		if !visited[key] {
			visited[key] = true
			queue = append(queue, key)
			flow.Goals[p] = append(flow.Goals[p], ad)
		}
	}
	for _, root := range roots {
		if g.IDB[root] {
			flow.Roots = append(flow.Roots, root)
			enqueue(root, AllBound(arities[root]))
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for ri, r := range prog.Rules {
			if r.Head.Predicate != cur.pred {
				continue
			}
			bound := map[string]bool{}
			for i, t := range r.Head.Terms {
				if t.IsVar() && i < len(cur.ad) && cur.ad[i] == 'b' {
					bound[t.Name] = true
				}
			}
			for _, b := range OrderBody(r.Body, bound, sips, g.IDB) {
				if ast.IsBuiltin(b.Predicate) {
					continue
				}
				ad := AdornmentFor(b, bound)
				bi := indexOfAtom(r.Body, b)
				flow.Occurrences = append(flow.Occurrences, Occurrence{
					Rule:          ri,
					Body:          bi,
					Pred:          b.Predicate,
					Adornment:     ad,
					HeadAdornment: cur.ad,
					Negated:       b.Negated,
					IDB:           g.IDB[b.Predicate],
					Pos:           b.Pos,
				})
				if g.IDB[b.Predicate] {
					enqueue(b.Predicate, ad)
				}
				if !b.Negated {
					for _, t := range b.Terms {
						if t.IsVar() {
							bound[t.Name] = true
						}
					}
				}
			}
		}
	}
	return flow
}

// indexOfAtom locates a (possibly reordered) body atom's source index by
// position: OrderBody returns the very atoms of the body slice, so the
// source position uniquely identifies the occurrence.
func indexOfAtom(body []ast.Atom, a ast.Atom) int {
	for i := range body {
		if body[i].Pos == a.Pos && body[i].Predicate == a.Predicate {
			return i
		}
	}
	return -1
}

package analysis

import (
	"sort"

	"contribmax/internal/ast"
)

// ProgramProfile is the machine-readable summary of the semantic passes:
// what the adornment dataflow, recursion classification, hierarchy
// detection, and dead-rule elimination discovered about one program. It is
// what `cmlint -profile` emits and what a binding-aware join planner or an
// exact-tier dispatcher would consume.
type ProgramProfile struct {
	// Roots are the query predicates the binding-sensitive passes ran for
	// (empty when none were supplied; those sections are then empty too).
	Roots []string `json:"roots,omitempty"`
	// Predicates profiles every predicate mentioned by the program,
	// sorted by name.
	Predicates []PredicateProfile `json:"predicates"`
	// Rules profiles every rule in source order.
	Rules []RuleProfile `json:"rules"`
	// SCCs lists the recursive components (size >1 or self-recursive);
	// trivial non-recursive components are omitted for brevity.
	SCCs []SCCProfile `json:"sccs,omitempty"`
	// Hierarchy holds one verdict per intensional root.
	Hierarchy []HierarchyProfile `json:"hierarchy,omitempty"`
	// Pruning summarizes dead-rule elimination toward the roots,
	// including never-fires and zero-probability findings (report only;
	// runtime pruning applies just the unreachable criterion).
	Pruning *PruningProfile `json:"pruning,omitempty"`
}

// PredicateProfile is the per-predicate section.
type PredicateProfile struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	// IDB reports whether some rule defines the predicate.
	IDB bool `json:"idb"`
	// Recursion is "non-recursive", "linear", or "nonlinear".
	Recursion string `json:"recursion"`
	// Mutual reports membership in a multi-predicate component.
	Mutual bool `json:"mutual,omitempty"`
	// Adornments lists the distinct binding patterns the dataflow reached
	// the predicate with, sorted (empty without roots or when the
	// predicate is outside the cone).
	Adornments []string `json:"adornments,omitempty"`
	// Reachable reports membership in the roots' dependency cone (always
	// false without roots).
	Reachable bool `json:"reachable,omitempty"`
}

// RuleProfile is the per-rule section.
type RuleProfile struct {
	Label string  `json:"label"`
	Head  string  `json:"head"`
	Prob  float64 `json:"prob"`
	// Atoms profiles the body atoms in source order.
	Atoms []AtomProfile `json:"atoms,omitempty"`
}

// AtomProfile is one body atom's dataflow summary.
type AtomProfile struct {
	Pred    string `json:"pred"`
	Negated bool   `json:"negated,omitempty"`
	Builtin bool   `json:"builtin,omitempty"`
	// Adornments lists the distinct binding patterns the dataflow
	// computed for this occurrence (one per head adornment the enclosing
	// rule was processed under), sorted.
	Adornments []string `json:"adornments,omitempty"`
}

// SCCProfile is one recursive component.
type SCCProfile struct {
	Preds []string `json:"preds"`
	Kind  string   `json:"kind"` // "linear" or "nonlinear"
	// Mutual reports a multi-predicate component.
	Mutual bool `json:"mutual,omitempty"`
}

// HierarchyProfile is one root's hierarchy verdict.
type HierarchyProfile struct {
	Root         string `json:"root"`
	Hierarchical bool   `json:"hierarchical"`
	Reason       string `json:"reason,omitempty"`
}

// PruningProfile summarizes dead-rule elimination.
type PruningProfile struct {
	RulesTotal  int          `json:"rules_total"`
	RulesPruned int          `json:"rules_pruned"`
	Rules       []PrunedInfo `json:"rules,omitempty"`
}

// PrunedInfo is one eliminated rule.
type PrunedInfo struct {
	Label  string `json:"label"`
	Head   string `json:"head"`
	Reason string `json:"reason"`
}

// Profile runs the semantic passes over prog and assembles the profile.
// opts supplies the roots (binding-sensitive sections stay empty without
// them) and the extensional schema (enables never-fires pruning info).
// Analyze need not have been called; the passes tolerate ill-formed
// programs, though their results are only meaningful for clean ones.
func Profile(prog *ast.Program, opts Options) *ProgramProfile {
	p := &ProgramProfile{}
	if prog == nil {
		return p
	}
	g := NewDepGraph(prog)
	rec := ClassifyRecursion(prog, g)
	flow := ComputeFlow(prog, g, opts.Roots, LeftToRight)
	p.Roots = append(p.Roots, flow.Roots...)

	var cone map[string]bool
	if len(opts.Roots) > 0 {
		cone = g.DependenciesOf(opts.Roots)
	}

	arities := prog.Arities()
	for p2, a := range opts.EDB {
		if _, ok := arities[p2]; !ok {
			arities[p2] = a
		}
	}
	preds := make([]string, 0, len(arities))
	for name := range arities {
		preds = append(preds, name)
	}
	sort.Strings(preds)
	for _, name := range preds {
		scc := rec.ByPred[name]
		pp := PredicateProfile{
			Name:      name,
			Arity:     arities[name],
			IDB:       g.IDB[name],
			Recursion: rec.Kind(name).String(),
			Mutual:    scc != nil && scc.Mutual,
			Reachable: cone[name],
		}
		for _, a := range flow.Adornments(name) {
			pp.Adornments = append(pp.Adornments, string(a))
		}
		p.Predicates = append(p.Predicates, pp)
	}

	// Per-atom adornments: collect the distinct patterns each (rule, body
	// index) occurrence received.
	atomAds := map[[2]int]map[Adornment]bool{}
	for _, oc := range flow.Occurrences {
		key := [2]int{oc.Rule, oc.Body}
		if atomAds[key] == nil {
			atomAds[key] = map[Adornment]bool{}
		}
		atomAds[key][oc.Adornment] = true
	}
	for ri, r := range prog.Rules {
		rp := RuleProfile{Label: r.Label, Head: r.Head.Predicate, Prob: r.Prob}
		for bi, b := range r.Body {
			ap := AtomProfile{
				Pred:    b.Predicate,
				Negated: b.Negated,
				Builtin: ast.IsBuiltin(b.Predicate),
			}
			ads := make([]string, 0, len(atomAds[[2]int{ri, bi}]))
			for a := range atomAds[[2]int{ri, bi}] {
				ads = append(ads, string(a))
			}
			sort.Strings(ads)
			ap.Adornments = ads
			rp.Atoms = append(rp.Atoms, ap)
		}
		p.Rules = append(p.Rules, rp)
	}

	for _, scc := range rec.SCCs {
		if scc.Kind == NonRecursive {
			continue
		}
		p.SCCs = append(p.SCCs, SCCProfile{
			Preds:  append([]string(nil), scc.Preds...),
			Kind:   scc.Kind.String(),
			Mutual: scc.Mutual,
		})
	}

	for _, h := range AnalyzeHierarchy(prog, g, opts.Roots, rec) {
		p.Hierarchy = append(p.Hierarchy, HierarchyProfile{
			Root:         h.Root,
			Hierarchical: h.Hierarchical,
			Reason:       h.Reason,
		})
	}

	if len(opts.Roots) > 0 || opts.EDB != nil {
		pr := Prune(prog, PruneOptions{
			Roots:      opts.Roots,
			EDB:        opts.EDB,
			NeverFires: opts.EDB != nil,
			ZeroProb:   true,
		})
		pp := &PruningProfile{RulesTotal: pr.Total, RulesPruned: len(pr.Pruned)}
		for _, d := range pr.Pruned {
			pp.Rules = append(pp.Rules, PrunedInfo{Label: d.Label, Head: d.Head, Reason: string(d.Reason)})
		}
		p.Pruning = pp
	}
	return p
}

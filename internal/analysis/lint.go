package analysis

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"contribmax/internal/ast"
	"contribmax/internal/parser"
)

// FileResult is the outcome of linting one source file.
type FileResult struct {
	// Path identifies the file in reports ("-" for stdin).
	Path string
	// Program is the parsed program, nil when parsing failed.
	Program *ast.Program
	// Diagnostics holds the findings, sorted. A parse failure yields a
	// single CM000 error and no further analysis.
	Diagnostics []Diagnostic
	// Options are the analysis options after merging embedded lint
	// directives, so callers (e.g. cmlint -profile) can rerun passes with
	// the same configuration the diagnostics were produced under.
	Options Options
}

// HasErrors reports whether the result contains error-severity findings.
func (r FileResult) HasErrors() bool { return HasErrors(r.Diagnostics) }

// LintSource parses and analyzes program source text. Lint directives
// embedded in comments refine the analysis:
//
//	%! query: dealsWith cheaperThan   -- roots for reachability/adornment checks
//	%! facts: trade.facts             -- fact file(s) establishing the edb schema
//
// Directive-supplied roots and fact files are merged into opts (fact paths
// resolve relative to path's directory). A parse failure is reported as a
// CM000 diagnostic, not an error return, so callers can treat broken and
// clean files uniformly.
func LintSource(path, src string, opts Options) FileResult {
	res := FileResult{Path: path}
	dir := filepath.Dir(path)
	for _, d := range parseDirectives(src) {
		switch d.key {
		case "query":
			opts.Roots = append(opts.Roots, strings.Fields(d.value)...)
		case "facts":
			for _, f := range strings.Fields(d.value) {
				fp := f
				if !filepath.IsAbs(fp) && path != "-" {
					fp = filepath.Join(dir, fp)
				}
				edb, err := factArities(fp)
				if err != nil {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Severity: Warning,
						Code:     CodeParse,
						Pos:      d.pos,
						Message:  fmt.Sprintf("cannot load fact file %s: %v", f, err),
					})
					continue
				}
				if opts.EDB == nil {
					opts.EDB = map[string]int{}
				}
				for p, a := range edb {
					if _, ok := opts.EDB[p]; !ok {
						opts.EDB[p] = a
					}
				}
			}
		default:
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Severity: Warning,
				Code:     CodeParse,
				Pos:      d.pos,
				Message:  fmt.Sprintf("unknown lint directive %q (known: query, facts)", d.key),
			})
		}
	}
	res.Options = opts
	prog, err := parser.ParseProgramLoose(src)
	if err != nil {
		res.Diagnostics = append(res.Diagnostics, parseDiagnostic(err))
		Sort(res.Diagnostics)
		return res
	}
	res.Program = prog
	res.Diagnostics = append(res.Diagnostics, Analyze(prog, opts)...)
	Sort(res.Diagnostics)
	return res
}

// LintFile reads and lints the program file at path.
func LintFile(path string, opts Options) (FileResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FileResult{Path: path}, err
	}
	return LintSource(path, string(data), opts), nil
}

// parseDiagnostic converts a parser failure into a CM000 diagnostic,
// recovering the source position from parser.Error when available.
func parseDiagnostic(err error) Diagnostic {
	d := Diagnostic{Severity: Error, Code: CodeParse, Message: err.Error()}
	var perr *parser.Error
	if errors.As(err, &perr) {
		d.Pos = ast.Pos{Line: perr.Line, Col: perr.Col}
		d.Message = perr.Msg
	}
	return d
}

// factArities parses a fact file and returns each predicate's arity. Both
// the plain and probabilistic fact formats are accepted.
func factArities(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pfs, err := parser.ParseProbFacts(string(data))
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, pf := range pfs {
		if _, ok := out[pf.Atom.Predicate]; !ok {
			out[pf.Atom.Predicate] = pf.Atom.Arity()
		}
	}
	return out, nil
}

// directive is one "%! key: value" lint comment.
type directive struct {
	key   string
	value string
	pos   ast.Pos
}

// parseDirectives scans src for lint directives. A directive is a comment
// line starting with "%!" followed by "key: value"; anything else starting
// with "%" is an ordinary comment.
func parseDirectives(src string) []directive {
	var out []directive
	line := 0
	for len(src) > 0 {
		line++
		nl := strings.IndexByte(src, '\n')
		var text string
		if nl < 0 {
			text, src = src, ""
		} else {
			text, src = src[:nl], src[nl+1:]
		}
		trimmed := strings.TrimSpace(text)
		if !strings.HasPrefix(trimmed, "%!") {
			continue
		}
		body := strings.TrimSpace(trimmed[2:])
		col := len(text) - len(strings.TrimLeft(text, " \t")) + 1
		pos := ast.Pos{Line: line, Col: col}
		key, value, ok := strings.Cut(body, ":")
		if !ok {
			out = append(out, directive{key: body, pos: pos})
			continue
		}
		out = append(out, directive{key: strings.TrimSpace(key), value: strings.TrimSpace(value), pos: pos})
	}
	return out
}

package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SARIF 2.1.0 emission (Static Analysis Results Interchange Format, the
// OASIS standard GitHub code scanning and most editors ingest). Only the
// minimal required surface is produced: one run, the cmlint driver with
// one reportingDescriptor per diagnostic code that actually fired, and one
// result per diagnostic with a physical location.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifMessage      `json:"shortDescription"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// sarifLevel maps analyzer severities onto the SARIF level enum.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// ruleDescriptions gives each code a one-line shortDescription for the
// driver's rule table. Kept in sync with docs/DIALECT.md.
var ruleDescriptions = map[Code]string{
	CodeParse:              "source failed to parse",
	CodeLabel:              "empty or duplicate rule label",
	CodeProbRange:          "rule probability outside [0,1]",
	CodeDeadRule:           "rule probability is 0",
	CodeRangeRestriction:   "head variable not bound by a positive body atom",
	CodeUnsafe:             "negated/built-in variable not bound by a positive body atom",
	CodeArity:              "predicate used with inconsistent arities",
	CodeBuiltinMisuse:      "built-in comparison misused",
	CodeUndefinedPred:      "predicate has no rules and no facts",
	CodeUnreachable:        "rule cannot contribute to the query targets",
	CodeNegativeCycle:      "recursion through negation (not stratifiable)",
	CodeFreeAdornment:      "recursive predicate reached with an all-free binding pattern",
	CodeSingletonVar:       "variable occurs only once in the rule",
	CodeUnboundPosition:    "argument position never bound by any reaching binding pattern",
	CodeHierarchical:       "query cone is hierarchical; exact lifted evaluation is polynomial",
	CodeNonlinearRecursion: "nonlinear recursion in the query cone",
	CodeNeverFires:         "rule can never fire (transitively underivable body predicate)",
	CodeMutualRecursion:    "mutually recursive predicate component",
	CodeNonHierarchical:    "query cone is non-recursive but not hierarchical; sampling required",
	CodeUnusedRelation:     "database relation never referenced",
}

// WriteSARIF renders the lint results of one or more files as a single
// SARIF 2.1.0 log with one run. Diagnostics keep their in-file order; the
// driver rule table lists exactly the codes that fired, sorted.
func WriteSARIF(w io.Writer, results []FileResult) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "cmlint",
			InformationURI: "https://github.com/contribmax/contribmax/blob/main/docs/DIALECT.md",
		}},
		Results: []sarifResult{},
	}
	fired := map[Code]bool{}
	for _, fr := range results {
		for _, d := range fr.Diagnostics {
			fired[d.Code] = true
			res := sarifResult{
				RuleID:  string(d.Code),
				Level:   sarifLevel(d.Severity),
				Message: sarifMessage{Text: d.Message},
			}
			loc := sarifLocation{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: fr.Path},
			}}
			if d.Pos.IsValid() {
				reg := &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col}
				if d.Span.End.IsValid() {
					reg.EndLine = d.Span.End.Line
					reg.EndColumn = d.Span.End.Col
				}
				loc.PhysicalLocation.Region = reg
			}
			res.Locations = append(res.Locations, loc)
			run.Results = append(run.Results, res)
		}
	}
	codes := make([]string, 0, len(fired))
	for c := range fired {
		codes = append(codes, string(c))
	}
	sort.Strings(codes)
	for _, c := range codes {
		desc := ruleDescriptions[Code(c)]
		if desc == "" {
			desc = "contribmax analyzer diagnostic"
		}
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               c,
			ShortDescription: sarifMessage{Text: desc},
		})
	}
	log := sarifLog{Version: sarifVersion, Schema: sarifSchema, Runs: []sarifRun{run}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	return nil
}

// Package analysis implements a multi-pass static analyzer for
// probabilistic datalog programs. It is the correctness gate in front of
// the CM pipeline: malformed programs (unsafe rules, inconsistent arities,
// out-of-range probabilities, negation through recursion, targets that no
// rule can derive) are reported as structured diagnostics with real source
// positions before the expensive WD-graph / RIS machinery runs, instead of
// surfacing as runtime panics or silently wrong fixpoints.
//
// The analyzer subsumes ast.Program.Validate: every condition Validate
// rejects maps to an error-severity diagnostic here, plus a set of
// warnings (dead rules, unreachable predicates, Magic-Sets free-variable
// explosions) and informational lints (singleton variables) that Validate
// never reported.
//
// Entry points: Analyze for in-memory programs, LintSource/LintFile for
// source text (tolerating parse failures, which become CM000 diagnostics).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"contribmax/internal/ast"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info marks stylistic lints; they never fail a build.
	Info Severity = iota
	// Warning marks likely mistakes that do not make the program
	// ill-formed (dead rules, unreachable predicates).
	Warning
	// Error marks conditions that make the program ill-formed: evaluation
	// would reject it, panic, or compute a meaningless result.
	Error
)

// String renders the severity in lowercase, as printed by cmlint.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Code identifies a diagnostic class. Codes are stable across releases and
// documented in docs/DIALECT.md ("Static checks & diagnostics").
type Code string

const (
	// CodeParse: the source failed to lex or parse.
	CodeParse Code = "CM000"
	// CodeLabel: empty or duplicate rule label.
	CodeLabel Code = "CM001"
	// CodeProbRange: rule probability outside [0, 1].
	CodeProbRange Code = "CM002"
	// CodeDeadRule: rule probability is exactly 0, so it can never fire.
	CodeDeadRule Code = "CM003"
	// CodeRangeRestriction: a head variable is not bound by any positive,
	// non-built-in body atom.
	CodeRangeRestriction Code = "CM004"
	// CodeUnsafe: a variable of a negated or built-in literal is not bound
	// by any positive, non-built-in body atom.
	CodeUnsafe Code = "CM005"
	// CodeArity: a predicate is used with two different arities (across
	// rules, facts, or the extensional database).
	CodeArity Code = "CM006"
	// CodeBuiltinMisuse: a built-in comparison used as a rule head, negated,
	// or with arity other than 2; or a negated rule head.
	CodeBuiltinMisuse Code = "CM007"
	// CodeUndefinedPred: a body predicate has no defining rule and no facts
	// in the extensional database (only reported when EDB info is known).
	CodeUndefinedPred Code = "CM008"
	// CodeUnreachable: a rule's head predicate cannot contribute to any of
	// the query/target predicates (only reported when roots are known).
	CodeUnreachable Code = "CM009"
	// CodeNegativeCycle: recursion through negation; the program is not
	// stratifiable.
	CodeNegativeCycle Code = "CM010"
	// CodeFreeAdornment: the Magic-Sets rewriting would process a recursive
	// predicate with an all-free binding pattern, so the "relevant" subgraph
	// degenerates to the full materialization (free-variable explosion).
	CodeFreeAdornment Code = "CM011"
	// CodeSingletonVar: a variable occurs exactly once in a rule; usually a
	// typo. Prefix the name with _ to mark an intentional projection.
	CodeSingletonVar Code = "CM012"
	// CodeUnboundPosition: an argument position of an intensional predicate
	// is free in every binding pattern the adornment dataflow reaches it
	// with, so no query binding ever constrains it (only reported when
	// roots are known).
	CodeUnboundPosition Code = "CM013"
	// CodeHierarchical: a query root's dependency cone is non-recursive,
	// negation-free, self-join-free, and hierarchical, so exact lifted
	// evaluation of its contribution is polynomial (no sampling needed).
	CodeHierarchical Code = "CM014"
	// CodeNonlinearRecursion: a recursive component inside the query cone
	// is nonlinear (a rule joins two or more atoms of its own component);
	// semi-naive deltas join against full recursive relations and the
	// Magic-Sets cone grows super-linearly.
	CodeNonlinearRecursion Code = "CM015"
	// CodeNeverFires: a rule can never fire because a positive body
	// predicate is transitively underivable — no facts in the database and
	// no rule chain can produce it (only reported when EDB info is known).
	CodeNeverFires Code = "CM016"
	// CodeMutualRecursion: two or more predicates form one strongly
	// connected component (mutual recursion).
	CodeMutualRecursion Code = "CM017"
	// CodeNonHierarchical: a query root's cone is non-recursive and safe
	// but fails the hierarchy test, so exact lifted evaluation may be
	// exponential and sampling is required.
	CodeNonHierarchical Code = "CM018"
	// CodeUnusedRelation: a database relation is never referenced by any
	// rule or query root (only reported when EDB info is known).
	CodeUnusedRelation Code = "CM019"
)

// Related points at a secondary source location that explains a
// diagnostic (e.g. the first use establishing a predicate's arity).
type Related struct {
	Pos     ast.Pos
	Message string
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Severity Severity
	Code     Code
	// Pos is the primary source position the finding anchors to.
	Pos ast.Pos
	// Span is the source range of the enclosing construct (usually the
	// rule); Span.Start may differ from Pos.
	Span    ast.Span
	Message string
	// Related lists secondary positions (first arity use, the other end of
	// a negative cycle, ...). May be empty.
	Related []Related
}

// String renders the diagnostic in the canonical single-line form
//
//	3:14: error[CM004]: head variable Y is not bound by a positive body atom
//
// with related positions appended as "(see 1:5: first use)" clauses.
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
	for _, r := range d.Related {
		fmt.Fprintf(&sb, " (see %s: %s)", r.Pos, r.Message)
	}
	return sb.String()
}

// errorf appends an error diagnostic; warnf and infof likewise.
func (l *list) errorf(code Code, pos ast.Pos, span ast.Span, format string, args ...any) *Diagnostic {
	return l.add(Error, code, pos, span, format, args...)
}

func (l *list) warnf(code Code, pos ast.Pos, span ast.Span, format string, args ...any) *Diagnostic {
	return l.add(Warning, code, pos, span, format, args...)
}

func (l *list) infof(code Code, pos ast.Pos, span ast.Span, format string, args ...any) *Diagnostic {
	return l.add(Info, code, pos, span, format, args...)
}

// list accumulates diagnostics during analysis.
type list struct {
	diags []Diagnostic
}

func (l *list) add(sev Severity, code Code, pos ast.Pos, span ast.Span, format string, args ...any) *Diagnostic {
	l.diags = append(l.diags, Diagnostic{
		Severity: sev,
		Code:     code,
		Pos:      pos,
		Span:     span,
		Message:  fmt.Sprintf(format, args...),
	})
	return &l.diags[len(l.diags)-1]
}

// Sort orders diagnostics by source position, then severity (errors
// first), then code, giving deterministic tool output.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Code < b.Code
	})
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// FirstError returns the first error-severity diagnostic as a Go error, or
// nil. It is the bridge for fail-fast call sites that want one error value
// rather than the full list.
func FirstError(diags []Diagnostic) error {
	for _, d := range diags {
		if d.Severity == Error {
			return fmt.Errorf("analysis: %s", d)
		}
	}
	return nil
}

package analysis_test

import (
	"reflect"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
)

// These tests pin ComputeFlow's behavior on the edge shapes the join
// planner leans on: empty rule bodies, built-ins ahead of binding atoms,
// and mutually recursive SCCs whose adornment families must close under
// both SIPS strategies without looping.

var bothSIPS = []analysis.SIPS{analysis.LeftToRight, analysis.BoundFirst}

// TestFlowEmptyBody: a rule with an empty body contributes no occurrences
// and the pass still terminates and reaches everything else.
func TestFlowEmptyBody(t *testing.T) {
	prog := ast.NewProgram(
		ast.Rule{Label: "r1", Head: ast.NewAtom("p", ast.C("a"))},
		ast.Rule{Label: "r2", Head: ast.NewAtom("q", ast.V("X")),
			Body: []ast.Atom{ast.NewAtom("p", ast.V("X"))}},
	)
	for _, sips := range bothSIPS {
		g := analysis.NewDepGraph(prog)
		flow := analysis.ComputeFlow(prog, g, []string{"q"}, sips)
		if got := flow.Adornments("q"); !reflect.DeepEqual(got, []analysis.Adornment{"b"}) {
			t.Errorf("sips=%v: q adornments = %v, want [b]", sips, got)
		}
		if got := flow.Adornments("p"); !reflect.DeepEqual(got, []analysis.Adornment{"b"}) {
			t.Errorf("sips=%v: p adornments = %v, want [b]", sips, got)
		}
		// Exactly one occurrence: r2's body atom. The empty body adds none.
		if len(flow.Occurrences) != 1 || flow.Occurrences[0].Rule != 1 || flow.Occurrences[0].Body != 0 {
			t.Errorf("sips=%v: occurrences = %+v, want exactly r2/body0", sips, flow.Occurrences)
		}
	}
}

// TestFlowBuiltinFirstAtom: built-ins written ahead of the binding atoms
// are skipped by the dataflow — they produce no occurrences, bind nothing,
// and do not perturb the source indices recorded for the real atoms.
func TestFlowBuiltinFirstAtom(t *testing.T) {
	prog := ast.NewProgram(
		ast.Rule{Label: "r1", Head: ast.NewAtom("out", ast.V("X"), ast.V("Y")),
			Body: []ast.Atom{
				ast.NewAtom("lt", ast.V("X"), ast.V("Y")),
				ast.NewAtom("e", ast.V("X"), ast.V("Y")),
			}},
		ast.Rule{Label: "r2", Head: ast.NewAtom("far", ast.V("X")),
			Body: []ast.Atom{
				ast.NewAtom("gt", ast.V("X"), ast.C("c0")),
				ast.NewAtom("out", ast.V("X"), ast.V("Z")),
			}},
	)
	for _, sips := range bothSIPS {
		g := analysis.NewDepGraph(prog)
		flow := analysis.ComputeFlow(prog, g, []string{"far"}, sips)
		for _, oc := range flow.Occurrences {
			if oc.Pred == "lt" || oc.Pred == "gt" {
				t.Fatalf("sips=%v: built-in %s received an occurrence", sips, oc.Pred)
			}
		}
		// far^b processes out(X,Z) at source index 1 with X bound: "bf".
		if got := flow.Adornments("out"); !reflect.DeepEqual(got, []analysis.Adornment{"bf"}) {
			t.Errorf("sips=%v: out adornments = %v, want [bf]", sips, got)
		}
		for _, oc := range flow.Occurrences {
			if oc.Pred == "out" && oc.Body != 1 {
				t.Errorf("sips=%v: out occurrence at body index %d, want source index 1", sips, oc.Body)
			}
		}
	}
}

// TestFlowMutualRecursionSCC: a symmetric recursive SCC reached with a
// partial binding must close over its adornment family ({bf, fb}) exactly
// once per member under both SIPS strategies — no duplicates, no
// divergence.
func TestFlowMutualRecursionSCC(t *testing.T) {
	prog := ast.NewProgram(
		ast.Rule{Label: "r1", Head: ast.NewAtom("ans", ast.V("X")),
			Body: []ast.Atom{
				ast.NewAtom("p", ast.V("X"), ast.V("Y")),
				ast.NewAtom("q", ast.V("Y")),
			}},
		ast.Rule{Label: "r2", Head: ast.NewAtom("p", ast.V("X"), ast.V("Y")),
			Body: []ast.Atom{ast.NewAtom("e", ast.V("X"), ast.V("Y"))}},
		ast.Rule{Label: "r3", Head: ast.NewAtom("p", ast.V("X"), ast.V("Y")),
			Body: []ast.Atom{ast.NewAtom("p", ast.V("Y"), ast.V("X"))}},
		ast.Rule{Label: "r4", Head: ast.NewAtom("q", ast.V("Y")),
			Body: []ast.Atom{ast.NewAtom("p", ast.V("Y"), ast.V("Z"))}},
	)
	for _, sips := range bothSIPS {
		g := analysis.NewDepGraph(prog)
		flow := analysis.ComputeFlow(prog, g, []string{"ans"}, sips)
		// The symmetry flip in r3 turns bf into fb and back; the visited set
		// must stop the oscillation after producing both.
		if got := flow.Adornments("p"); !reflect.DeepEqual(got, []analysis.Adornment{"bf", "fb"}) {
			t.Errorf("sips=%v: p adornments = %v, want [bf fb]", sips, got)
		}
		if got := flow.Adornments("q"); !reflect.DeepEqual(got, []analysis.Adornment{"b"}) {
			t.Errorf("sips=%v: q adornments = %v, want [b]", sips, got)
		}
		// Goals must be duplicate-free: one entry per (pred, adornment).
		for pred, ads := range flow.Goals {
			seen := map[analysis.Adornment]bool{}
			for _, ad := range ads {
				if seen[ad] {
					t.Errorf("sips=%v: %s reached twice with %s", sips, pred, ad)
				}
				seen[ad] = true
			}
		}
	}
}

// TestFlowDegenerateInputs: nil program, no roots, and extensional roots
// all yield an empty (but non-nil) flow.
func TestFlowDegenerateInputs(t *testing.T) {
	prog := ast.NewProgram(
		ast.Rule{Label: "r1", Head: ast.NewAtom("p", ast.V("X")),
			Body: []ast.Atom{ast.NewAtom("e", ast.V("X"))}},
	)
	g := analysis.NewDepGraph(prog)
	for name, flow := range map[string]*analysis.Flow{
		"nil program": analysis.ComputeFlow(nil, g, []string{"p"}, analysis.LeftToRight),
		"no roots":    analysis.ComputeFlow(prog, g, nil, analysis.LeftToRight),
		"edb root":    analysis.ComputeFlow(prog, g, []string{"e"}, analysis.LeftToRight),
	} {
		if flow == nil {
			t.Fatalf("%s: ComputeFlow returned nil", name)
		}
		if len(flow.Roots) != 0 || len(flow.Goals) != 0 || len(flow.Occurrences) != 0 {
			t.Errorf("%s: flow not empty: %+v", name, flow)
		}
	}
}

// TestOrderBodyBoundFirstTies pins OrderBody's tie-break chain — bound
// count first, then edb-before-idb, then source order — since the Magic
// transform and the flow pass both depend on it being stable.
func TestOrderBodyBoundFirstTies(t *testing.T) {
	body := []ast.Atom{
		ast.NewAtom("i1", ast.V("A")), // idb, score 0
		ast.NewAtom("e1", ast.V("B")), // edb, score 0 → wins the tie
		ast.NewAtom("i2", ast.V("A"), ast.V("B")),
	}
	idb := map[string]bool{"i1": true, "i2": true}
	got := analysis.OrderBody(body, nil, analysis.BoundFirst, idb)
	// e1 wins the zero-score tie as the only edb atom; it binds B, so i2
	// (score 1) then beats i1 (score 0).
	want := []string{"e1", "i2", "i1"}
	for i, a := range got {
		if a.Predicate != want[i] {
			t.Fatalf("OrderBody = %v, want %v", preds(got), want)
		}
	}
	// LeftToRight must return the body untouched.
	ltr := analysis.OrderBody(body, nil, analysis.LeftToRight, idb)
	for i := range body {
		if ltr[i].Predicate != body[i].Predicate {
			t.Fatalf("LeftToRight reordered the body: %v", preds(ltr))
		}
	}
}

func preds(atoms []ast.Atom) []string {
	out := make([]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.Predicate
	}
	return out
}

package analysis_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/magic"
	"contribmax/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFlowMatchesMagicTransform is the regression test for unifying the
// analyzer's Magic-Sets simulation with the transformation proper (the
// CM011 arithmetic used to be a private copy): the goal set ComputeFlow
// reaches must be exactly the set of adorned predicates
// magic.TransformWith generates, for both SIPS strategies, on programs
// covering recursion, symmetry flips, and built-ins.
func TestFlowMatchesMagicTransform(t *testing.T) {
	programs := map[string]string{
		"tc": `
			0.9 r1: tc(X, Y) :- edge(X, Y).
			0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		`,
		"symmetric": `
			r1: tc(X, Y) :- edge(X, Y).
			r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
			r3: tc(X, Y) :- tc(Y, X).
			r4: same(X, Y) :- tc(X, Y), tc(Y, X).
		`,
		"builtin": `
			r1: big(X, Y) :- edge(X, Y), lt(X, Y).
			r2: far(X, Y) :- big(X, Z), big(Z, Y).
		`,
	}
	queries := map[string]ast.Atom{
		"tc":        {Predicate: "tc", Terms: []ast.Term{ast.C("a"), ast.C("b")}},
		"symmetric": {Predicate: "same", Terms: []ast.Term{ast.C("a"), ast.C("b")}},
		"builtin":   {Predicate: "far", Terms: []ast.Term{ast.C("a"), ast.C("b")}},
	}
	for name, src := range programs {
		for _, sips := range []analysis.SIPS{analysis.LeftToRight, analysis.BoundFirst} {
			prog := mustParse(t, src)
			g := analysis.NewDepGraph(prog)
			q := queries[name]
			flow := analysis.ComputeFlow(prog, g, []string{q.Predicate}, sips)

			tr, err := magic.TransformWith(prog, []ast.Atom{q}, sips)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := map[string]bool{}
			for _, r := range tr.Program.Rules {
				if orig, ad, isMagic, ok := magic.SplitAdorned(r.Head.Predicate); ok && !isMagic {
					want[orig+"@"+string(ad)] = true
				}
			}
			got := map[string]bool{}
			for pred := range flow.Goals {
				for _, ad := range flow.Adornments(pred) {
					got[pred+"@"+string(ad)] = true
				}
			}
			if len(got) != len(want) {
				t.Errorf("%s sips=%v: flow reached %v, transform generated %v", name, sips, keys(got), keys(want))
				continue
			}
			for k := range want {
				if !got[k] {
					t.Errorf("%s sips=%v: transform generated %s but flow never reached it", name, sips, k)
				}
			}
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestClassifyRecursion(t *testing.T) {
	prog := mustParse(t, `
		b1: base(X) :- e(X).
		t1: tc(X, Y) :- edge(X, Y).
		t2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		p1: path(X, Y) :- edge(X, Y).
		p2: path(X, Y) :- path(X, Z), edge(Z, Y).
		m1: even(X) :- zero(X).
		m2: even(X) :- succ(Y, X), odd(Y).
		m3: odd(X) :- succ(Y, X), even(Y).
	`)
	rec := analysis.ClassifyRecursion(prog, analysis.NewDepGraph(prog))
	wantKind := map[string]analysis.RecursionKind{
		"base": analysis.NonRecursive,
		"tc":   analysis.NonlinearRecursive,
		"path": analysis.LinearRecursive,
		"even": analysis.LinearRecursive,
		"odd":  analysis.LinearRecursive,
	}
	for pred, want := range wantKind {
		if got := rec.Kind(pred); got != want {
			t.Errorf("Kind(%s) = %v, want %v", pred, got, want)
		}
	}
	even := rec.ByPred["even"]
	if even == nil || !even.Mutual || strings.Join(even.Preds, ",") != "even,odd" {
		t.Errorf("even component = %+v, want mutual {even, odd}", even)
	}
	if tc := rec.ByPred["tc"]; tc == nil || tc.Mutual {
		t.Errorf("tc component = %+v, want non-mutual", tc)
	}
}

func TestAnalyzeHierarchy(t *testing.T) {
	prog := mustParse(t, `
		h1: good(X) :- r(X, U), s(U).
		h2: bad(X) :- r(X, U), s2(U, V), t(V, X).
		h3: selfjoin(X) :- r(X, U), r(U, X).
		t1: rec(X, Y) :- edge(X, Y).
		t2: rec(X, Y) :- rec(X, Z), edge(Z, Y).
	`)
	g := analysis.NewDepGraph(prog)
	results := analysis.AnalyzeHierarchy(prog, g, []string{"good", "bad", "selfjoin", "rec"}, nil)
	byRoot := map[string]analysis.HierarchyResult{}
	for _, r := range results {
		byRoot[r.Root] = r
	}
	if !byRoot["good"].Hierarchical {
		t.Errorf("good: not hierarchical: %s", byRoot["good"].Reason)
	}
	if byRoot["bad"].Hierarchical || !strings.Contains(byRoot["bad"].Reason, "not hierarchical") {
		t.Errorf("bad: %+v, want non-hierarchical variable-pair reason", byRoot["bad"])
	}
	if byRoot["selfjoin"].Hierarchical || !strings.Contains(byRoot["selfjoin"].Reason, "self-join") {
		t.Errorf("selfjoin: %+v, want self-join reason", byRoot["selfjoin"])
	}
	if byRoot["rec"].Hierarchical || !strings.Contains(byRoot["rec"].Reason, "recursive") {
		t.Errorf("rec: %+v, want recursion reason", byRoot["rec"])
	}
}

func TestPruneCriteria(t *testing.T) {
	prog := mustParse(t, `
		r1: tc(X, Y) :- edge(X, Y).
		r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		d1: other(X) :- edge(X, X).
		n1: ghost(X) :- phantom(X).
		n2: haunted(X) :- tc(X, X), ghost(X).
		0 z1: tc(X, X) :- edge(X, X).
	`)
	edb := map[string]int{"edge": 2}

	// Reachability only: other is outside tc's cone; ghost/haunted too.
	pr := analysis.Prune(prog, analysis.PruneOptions{Roots: []string{"tc"}})
	if pr.Total != 6 {
		t.Fatalf("Total = %d, want 6", pr.Total)
	}
	wantPruned := map[string]analysis.PruneReason{
		"d1": analysis.PruneUnreachable,
		"n1": analysis.PruneUnreachable,
		"n2": analysis.PruneUnreachable,
	}
	checkPruned(t, pr, wantPruned)
	if len(pr.Program.Rules) != 3 {
		t.Errorf("surviving rules = %d, want 3", len(pr.Program.Rules))
	}

	// All criteria toward haunted: phantom is underivable, so n1 and then
	// n2 can never fire; z1 has probability 0; d1 is unreachable.
	pr = analysis.Prune(prog, analysis.PruneOptions{
		Roots:      []string{"haunted"},
		EDB:        edb,
		NeverFires: true,
		ZeroProb:   true,
	})
	wantPruned = map[string]analysis.PruneReason{
		"d1": analysis.PruneUnreachable,
		"n1": analysis.PruneNeverFires,
		"n2": analysis.PruneNeverFires,
		"z1": analysis.PruneZeroProb,
	}
	checkPruned(t, pr, wantPruned)
}

func checkPruned(t *testing.T, pr analysis.PruneResult, want map[string]analysis.PruneReason) {
	t.Helper()
	got := map[string]analysis.PruneReason{}
	for _, d := range pr.Pruned {
		got[d.Label] = d.Reason
	}
	for label, reason := range want {
		if got[label] != reason {
			t.Errorf("rule %s: pruned as %q, want %q", label, got[label], reason)
		}
	}
	for label := range got {
		if _, ok := want[label]; !ok {
			t.Errorf("rule %s unexpectedly pruned (%s)", label, got[label])
		}
	}
}

// TestProfileJSON checks the assembled profile on a mixed program and that
// it round-trips through JSON with the documented field names.
func TestProfileJSON(t *testing.T) {
	prog := mustParse(t, `
		r1: tc(X, Y) :- edge(X, Y).
		r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		d1: other(X) :- edge(X, X).
	`)
	p := analysis.Profile(prog, analysis.Options{
		Roots: []string{"tc"},
		EDB:   map[string]int{"edge": 2},
	})
	if p.Pruning == nil || p.Pruning.RulesTotal != 3 || p.Pruning.RulesPruned != 1 {
		t.Fatalf("pruning section = %+v, want 3 total / 1 pruned", p.Pruning)
	}
	var tcProf *analysis.PredicateProfile
	for i := range p.Predicates {
		if p.Predicates[i].Name == "tc" {
			tcProf = &p.Predicates[i]
		}
	}
	if tcProf == nil || tcProf.Recursion != "nonlinear" || !tcProf.Reachable {
		t.Fatalf("tc profile = %+v, want reachable nonlinear", tcProf)
	}
	if len(tcProf.Adornments) == 0 || tcProf.Adornments[0] != "bb" {
		t.Errorf("tc adornments = %v, want bb first", tcProf.Adornments)
	}

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"rules_total"`, `"rules_pruned"`, `"predicates"`, `"adornments"`, `"recursion"`} {
		if !bytes.Contains(data, []byte(field)) {
			t.Errorf("profile JSON missing %s:\n%s", field, data)
		}
	}
	var back analysis.ProgramProfile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSARIF validates the emitted log against the SARIF 2.1.0
// structural requirements: version string, runs with a named driver, rule
// metadata for every fired code, and results with physical locations.
func TestWriteSARIF(t *testing.T) {
	res, err := analysis.LintFile(filepath.Join("..", "..", "testdata", "analysis", "bad_reach.dl"), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, []analysis.FileResult{res}); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "cmlint" {
		t.Fatalf("runs = %+v", log.Runs)
	}
	run := log.Runs[0]
	if len(run.Results) != len(res.Diagnostics) {
		t.Errorf("results = %d, want %d", len(run.Results), len(res.Diagnostics))
	}
	levels := map[string]bool{"error": true, "warning": true, "note": true}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, r := range run.Results {
		if !levels[r.Level] {
			t.Errorf("result %s has invalid level %q", r.RuleID, r.Level)
		}
		if !ruleIDs[r.RuleID] {
			t.Errorf("result rule %s missing from driver rule table", r.RuleID)
		}
		if len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Errorf("result %s has no physical location", r.RuleID)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result %s has no startLine", r.RuleID)
		}
	}
}

package analysis

import (
	"contribmax/internal/ast"
)

// Dead-rule elimination. Three independent criteria, in increasing order
// of aggressiveness:
//
//   - unreachable: the rule's head predicate is outside the roots'
//     dependency cone, so no derivation of a root fact can use it. Dropping
//     such rules is byte-exact for every root-directed computation: the
//     fixpoint restricted to the cone, the Magic-Sets transformation (whose
//     worklist never leaves the cone), and the WD graph reachable from the
//     roots are all identical. This is the only criterion cm applies at
//     runtime (Options.Prune).
//
//   - never-fires: some positive body atom's predicate is transitively
//     underivable (no facts in the database and no derivable rule).
//     Sound for the fixpoint, but NOT byte-exact for the Magic-Sets
//     rewriting (the transformed program still emits magic-prefix rules for
//     the dead body, so generated labels shift); reported, never applied
//     silently.
//
//   - zero-probability: the rule's probability is exactly 0. Sound for the
//     distribution's support, but removing the rule changes which WD-graph
//     edges exist and hence perturbs sampling RNG streams; reported, and
//     applied only when explicitly requested.
type PruneReason string

const (
	PruneUnreachable PruneReason = "unreachable"
	PruneNeverFires  PruneReason = "never-fires"
	PruneZeroProb    PruneReason = "zero-probability"
)

// PruneOptions selects which criteria apply.
type PruneOptions struct {
	// Roots enables unreachable-rule elimination toward these query/target
	// predicates. Empty disables the criterion (nothing is unreachable).
	Roots []string
	// EDB enables never-fires elimination: predicates present as keys are
	// derivable axiomatically. Nil disables the criterion (any body-only
	// predicate might have facts).
	EDB map[string]int
	// NeverFires applies the never-fires criterion (requires EDB).
	NeverFires bool
	// ZeroProb drops probability-0 rules.
	ZeroProb bool
}

// PrunedRule records one eliminated rule.
type PrunedRule struct {
	// Rule is the rule's index in the input program.
	Rule int
	// Label is the rule's label, Head its head predicate.
	Label string
	Head  string
	// Reason is the first criterion that eliminated the rule (criteria are
	// tested in the order unreachable, never-fires, zero-probability).
	Reason PruneReason
	// Pos is the rule's source position.
	Pos ast.Pos
}

// PruneResult is the outcome of Prune.
type PruneResult struct {
	// Program is the pruned program: a fresh Program sharing the surviving
	// Rule values of the input, in source order. When nothing was pruned
	// it is still a fresh Program (callers may mutate the rule slice).
	Program *ast.Program
	// Pruned lists the eliminated rules in source order.
	Pruned []PrunedRule
	// Total is the number of rules in the input program.
	Total int
}

// Prune eliminates dead rules from prog under the given options and
// returns the surviving program plus an audit trail of what was removed
// and why. With only Roots set, the result is provably equivalent for
// every root-directed computation (see the criteria above); the other
// criteria preserve the fixpoint but not byte-level artifacts.
func Prune(prog *ast.Program, opts PruneOptions) PruneResult {
	res := PruneResult{Program: ast.NewProgram()}
	if prog == nil {
		return res
	}
	res.Total = len(prog.Rules)
	g := NewDepGraph(prog)

	var reach map[string]bool
	if len(opts.Roots) > 0 {
		reach = g.DependenciesOf(opts.Roots)
	}
	var derivable map[string]bool
	if opts.NeverFires && opts.EDB != nil {
		derivable = derivablePreds(prog, opts.EDB)
	}

	for i, r := range prog.Rules {
		if reason, dead := deadReason(r, reach, derivable, opts.ZeroProb); dead {
			res.Pruned = append(res.Pruned, PrunedRule{
				Rule:   i,
				Label:  r.Label,
				Head:   r.Head.Predicate,
				Reason: reason,
				Pos:    r.Pos,
			})
			continue
		}
		res.Program.Add(r)
	}
	return res
}

func deadReason(r ast.Rule, reach, derivable map[string]bool, zeroProb bool) (PruneReason, bool) {
	if reach != nil && !reach[r.Head.Predicate] {
		return PruneUnreachable, true
	}
	if derivable != nil {
		for _, b := range r.Body {
			if b.Negated || ast.IsBuiltin(b.Predicate) {
				continue
			}
			if !derivable[b.Predicate] {
				return PruneNeverFires, true
			}
		}
	}
	if zeroProb && r.Prob == 0 {
		return PruneZeroProb, true
	}
	return "", false
}

// derivablePreds computes the predicates that can hold at least one fact:
// the extensional relations, plus every head whose rule's positive
// non-built-in body predicates are all derivable (a fixpoint; facts with
// empty bodies seed it). Negated atoms are ignored — an underivable
// negated predicate makes the literal trivially true, not the rule dead.
func derivablePreds(prog *ast.Program, edb map[string]int) map[string]bool {
	derivable := map[string]bool{}
	for p := range edb {
		derivable[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if derivable[r.Head.Predicate] {
				continue
			}
			ok := true
			for _, b := range r.Body {
				if b.Negated || ast.IsBuiltin(b.Predicate) {
					continue
				}
				if !derivable[b.Predicate] {
					ok = false
					break
				}
			}
			if ok {
				derivable[r.Head.Predicate] = true
				changed = true
			}
		}
	}
	return derivable
}

// NeverFiringRules returns, for diagnostic purposes, the rules that can
// never fire because a positive body predicate is transitively underivable
// given the extensional schema, along with the first offending body atom
// of each. The result is in source order.
func NeverFiringRules(prog *ast.Program, edb map[string]int) []NeverFiring {
	if prog == nil || edb == nil {
		return nil
	}
	derivable := derivablePreds(prog, edb)
	var out []NeverFiring
	for i, r := range prog.Rules {
		for bi, b := range r.Body {
			if b.Negated || ast.IsBuiltin(b.Predicate) || derivable[b.Predicate] {
				continue
			}
			out = append(out, NeverFiring{Rule: i, Body: bi, Pred: b.Predicate})
			break
		}
	}
	return out
}

// NeverFiring identifies a rule that cannot fire and the body atom that
// kills it.
type NeverFiring struct {
	Rule int
	Body int
	Pred string
}

package analysis

import (
	"strings"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.ParseProgramLoose(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func codes(diags []Diagnostic) []Code {
	out := make([]Code, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func hasCode(diags []Diagnostic, c Code) bool {
	for _, d := range diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

func TestAnalyzeCleanProgram(t *testing.T) {
	prog := mustParse(t, `
		0.8 r1: tc(X, Y) :- edge(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), edge(Z, Y).
	`)
	diags := Analyze(prog, Options{})
	if len(diags) != 0 {
		t.Fatalf("clean program produced diagnostics: %v", diags)
	}
}

func TestAnalyzeEDBGating(t *testing.T) {
	prog := mustParse(t, `p(X) :- q(X).`)

	// Without EDB knowledge CM008 must stay silent: q may well live in
	// a fact file the analyzer has not seen.
	if diags := Analyze(prog, Options{}); hasCode(diags, CodeUndefinedPred) {
		t.Fatalf("CM008 fired without EDB info: %v", diags)
	}
	// With an (empty) EDB, q is provably undefined.
	diags := Analyze(prog, Options{EDB: map[string]int{}})
	if !hasCode(diags, CodeUndefinedPred) {
		t.Fatalf("CM008 missing with empty EDB: %v", diags)
	}
	// Declaring q suppresses it again.
	if diags := Analyze(prog, Options{EDB: map[string]int{"q": 1}}); hasCode(diags, CodeUndefinedPred) {
		t.Fatalf("CM008 fired for declared EDB predicate: %v", diags)
	}
	// And an EDB arity clash is a hard CM006 error.
	diags = Analyze(prog, Options{EDB: map[string]int{"q": 3}})
	if !hasCode(diags, CodeArity) {
		t.Fatalf("CM006 missing for EDB arity clash: %v", diags)
	}
}

func TestAnalyzeUnreachableAndUndefinedRoots(t *testing.T) {
	prog := mustParse(t, `
		p(X) :- e(X).
		dead(X) :- e(X).
	`)
	diags := Analyze(prog, Options{EDB: map[string]int{"e": 1}, Roots: []string{"p", "ghost"}})
	var gotUnreachable, gotGhost bool
	for _, d := range diags {
		switch d.Code {
		case CodeUnreachable:
			gotUnreachable = true
			if d.Pos.Line != 3 {
				t.Errorf("CM009 at %s, want line 3", d.Pos)
			}
		case CodeUndefinedPred:
			if strings.Contains(d.Message, "ghost") {
				gotGhost = true
			}
		}
	}
	if !gotUnreachable {
		t.Errorf("missing CM009 for rule dead: %v", codes(diags))
	}
	if !gotGhost {
		t.Errorf("missing CM008 for undefined root ghost: %v", codes(diags))
	}
	// Every root reachable, nothing unreachable.
	diags = Analyze(prog, Options{EDB: map[string]int{"e": 1}, Roots: []string{"p", "dead"}})
	if hasCode(diags, CodeUnreachable) {
		t.Errorf("CM009 fired with all rules reachable: %v", diags)
	}
}

func TestAnalyzeDedupsPerVariable(t *testing.T) {
	// Y is both an unbound head variable (CM004) and a singleton; only
	// the error should be reported for it.
	prog := mustParse(t, `p(X, Y) :- q(X).`)
	diags := Analyze(prog, Options{})
	var yCount int
	for _, d := range diags {
		if strings.Contains(d.Message, "variable Y") {
			yCount++
			if d.Code != CodeRangeRestriction {
				t.Errorf("variable Y reported as %s, want %s", d.Code, CodeRangeRestriction)
			}
		}
	}
	if yCount != 1 {
		t.Errorf("variable Y reported %d times, want 1: %v", yCount, diags)
	}
}

func TestDepGraphStrata(t *testing.T) {
	prog := mustParse(t, `
		reach(X) :- source(X).
		reach(Y) :- reach(X), edge(X, Y).
		unreached(X) :- node(X), not reach(X).
	`)
	g := NewDepGraph(prog)
	strata, cycle := g.Strata()
	if cycle != nil {
		t.Fatalf("unexpected cycle: %v", cycle)
	}
	if strata["reach"] >= strata["unreached"] {
		t.Errorf("unreached must sit strictly above reach: %v", strata)
	}
}

func TestDepGraphNegativeCycleString(t *testing.T) {
	prog := mustParse(t, `
		a(X) :- e(X), not b(X).
		b(X) :- e(X), a(X).
	`)
	g := NewDepGraph(prog)
	cycle := g.NegativeCycle()
	if cycle == nil {
		t.Fatal("expected a negative cycle")
	}
	s := cycle.String()
	if !strings.Contains(s, "not b") || !strings.Contains(s, "a") {
		t.Errorf("cycle string %q does not show the negated edge", s)
	}
	if edge := cycle.NegEdge(); !edge.Negated {
		t.Errorf("NegEdge returned a positive edge: %+v", edge)
	}
}

func TestDependenciesOf(t *testing.T) {
	prog := mustParse(t, `
		p(X) :- q(X).
		q(X) :- e(X).
		island(X) :- e(X).
	`)
	g := NewDepGraph(prog)
	deps := g.DependenciesOf([]string{"p"})
	for _, want := range []string{"p", "q", "e"} {
		if !deps[want] {
			t.Errorf("DependenciesOf(p) missing %s: %v", want, deps)
		}
	}
	if deps["island"] {
		t.Errorf("DependenciesOf(p) should not include island: %v", deps)
	}
}

func TestSortAndFirstError(t *testing.T) {
	prog := mustParse(t, `
		1.5 r1: p(X) :- q(X).
		bad(X, Y) :- q(X).
	`)
	diags := Analyze(prog, Options{})
	Sort(diags)
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Before(diags[i-1].Pos) {
			t.Fatalf("diagnostics not sorted by position: %v", diags)
		}
	}
	err := FirstError(diags)
	if err == nil {
		t.Fatal("FirstError: want error")
	}
	if !strings.Contains(err.Error(), string(CodeProbRange)) {
		t.Errorf("FirstError %q should surface the first error (CM002)", err)
	}
	if FirstError(nil) != nil {
		t.Error("FirstError(nil) must be nil")
	}
}

func TestLintSourceDirectives(t *testing.T) {
	src := "%! query: p\n%! bogus: x\np(X) :- q(X).\n"
	res := LintSource("test.dl", src, Options{})
	var gotBogus bool
	for _, d := range res.Diagnostics {
		if d.Code == CodeParse && strings.Contains(d.Message, "bogus") {
			gotBogus = true
			if d.Pos.Line != 2 {
				t.Errorf("unknown-directive warning at %s, want line 2", d.Pos)
			}
			if d.Severity != Warning {
				t.Errorf("unknown directive severity %s, want warning", d.Severity)
			}
		}
	}
	if !gotBogus {
		t.Errorf("unknown directive not reported: %v", res.Diagnostics)
	}
	if res.HasErrors() {
		t.Errorf("directive handling must not produce errors: %v", res.Diagnostics)
	}
}

func TestLintSourceParseFailure(t *testing.T) {
	res := LintSource("test.dl", "p(X :- q(X).", Options{})
	if !res.HasErrors() || !hasCode(res.Diagnostics, CodeParse) {
		t.Fatalf("parse failure must yield a CM000 error: %v", res.Diagnostics)
	}
	if res.Diagnostics[0].Pos.Line != 1 {
		t.Errorf("CM000 at %s, want line 1", res.Diagnostics[0].Pos)
	}
}

package analysis

import (
	"sort"
	"strings"

	"contribmax/internal/ast"
)

// DepEdge is one head-to-body dependency: the rule's head predicate
// depends on the body predicate, negatively when the body literal is
// negated. Pos is the body literal's source position and Rule the index of
// the contributing rule, so stratification errors and cycle reports can
// point at real source locations.
type DepEdge struct {
	Head    string
	Body    string
	Negated bool
	Rule    int
	Pos     ast.Pos
}

// DepGraph is the predicate dependency graph of a program: one node per
// predicate, one edge per (rule, body literal) pair, built-ins excluded.
// It is the shared substrate for stratification (engine.Stratify), the
// analyzer's negation-through-recursion and reachability passes, and
// unused-rule detection.
type DepGraph struct {
	// Preds lists every predicate mentioned in the program, sorted.
	Preds []string
	// IDB marks predicates that appear in some rule head.
	IDB map[string]bool
	// Edges lists all dependencies in rule order.
	Edges []DepEdge
	// out[p] indexes the edges with Head == p.
	out map[string][]int
}

// NewDepGraph builds the dependency graph of prog.
func NewDepGraph(prog *ast.Program) *DepGraph {
	g := &DepGraph{IDB: map[string]bool{}, out: map[string][]int{}}
	seen := map[string]bool{}
	note := func(p string) {
		if !seen[p] {
			seen[p] = true
			g.Preds = append(g.Preds, p)
		}
	}
	for _, r := range prog.Rules {
		g.IDB[r.Head.Predicate] = true
		note(r.Head.Predicate)
	}
	for i, r := range prog.Rules {
		h := r.Head.Predicate
		for _, b := range r.Body {
			if ast.IsBuiltin(b.Predicate) {
				continue
			}
			note(b.Predicate)
			g.out[h] = append(g.out[h], len(g.Edges))
			g.Edges = append(g.Edges, DepEdge{Head: h, Body: b.Predicate, Negated: b.Negated, Rule: i, Pos: b.Pos})
		}
	}
	sort.Strings(g.Preds)
	return g
}

// NegCycle describes a negation-through-recursion violation: a dependency
// cycle containing at least one negated edge. Preds lists the cycle's
// predicates in order (without repeating the first), and Edges the edges
// traversed, Edges[i] going from Preds[i] to Preds[(i+1)%len].
type NegCycle struct {
	Preds []string
	Edges []DepEdge
}

// String renders the cycle as "p -> not q -> r -> p".
func (c *NegCycle) String() string {
	if len(c.Preds) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(c.Preds[0])
	for i, e := range c.Edges {
		sb.WriteString(" -> ")
		if e.Negated {
			sb.WriteString("not ")
		}
		sb.WriteString(c.Preds[(i+1)%len(c.Preds)])
	}
	return sb.String()
}

// NegEdge returns the first negated edge of the cycle (every NegCycle has
// at least one).
func (c *NegCycle) NegEdge() DepEdge {
	for _, e := range c.Edges {
		if e.Negated {
			return e
		}
	}
	return DepEdge{}
}

// Strata computes each predicate's stratum: at least the stratum of every
// positive idb dependency and strictly greater than that of every negated
// idb dependency; predicates with no rules (extensional) live at stratum
// 0. When the program is stratifiable it returns (strata, nil); otherwise
// it returns (nil, cycle) for some offending negative cycle.
func (g *DepGraph) Strata() (map[string]int, *NegCycle) {
	if c := g.NegativeCycle(); c != nil {
		return nil, c
	}
	stratum := map[string]int{}
	// Fixpoint iteration; convergence is guaranteed because stratifiable
	// programs bound every stratum by the number of idb predicates.
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if !g.IDB[e.Body] {
				continue
			}
			need := stratum[e.Body]
			if e.Negated {
				need++
			}
			if stratum[e.Head] < need {
				stratum[e.Head] = need
				changed = true
			}
		}
	}
	return stratum, nil
}

// NegativeCycle returns a dependency cycle through a negated edge, or nil
// when the program is stratifiable. The search finds a strongly connected
// component containing an internal negated edge, then a shortest path
// closing the cycle, so the report is minimal and deterministic.
func (g *DepGraph) NegativeCycle() *NegCycle {
	comp := g.sccs()
	for _, ei := range g.sortedEdgeIndexes() {
		e := g.Edges[ei]
		if !e.Negated || comp[e.Head] != comp[e.Body] {
			continue
		}
		// Close the cycle: shortest path Body -> ... -> Head inside the
		// component, then the negated edge Head -> Body.
		path := g.shortestPath(e.Body, e.Head, comp)
		cycle := &NegCycle{}
		cycle.Preds = append(cycle.Preds, e.Head)
		cycle.Edges = append(cycle.Edges, e)
		for i := 0; i < len(path)-1; i++ {
			cycle.Preds = append(cycle.Preds, path[i])
			cycle.Edges = append(cycle.Edges, g.edgeBetween(path[i], path[i+1]))
		}
		return cycle
	}
	return nil
}

// sortedEdgeIndexes returns edge indexes ordered by source position, so
// the reported cycle anchors to the first offending literal in the file.
func (g *DepGraph) sortedEdgeIndexes() []int {
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return g.Edges[idx[a]].Pos.Before(g.Edges[idx[b]].Pos)
	})
	return idx
}

// sccs assigns each predicate a strongly-connected-component id via
// iterative Tarjan over the dependency edges.
func (g *DepGraph) sccs() map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		pred string
		ei   int // next out-edge index to consider
	}
	for _, root := range g.Preds {
		if _, done := index[root]; done {
			continue
		}
		work := []frame{{pred: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			edges := g.out[f.pred]
			if f.ei < len(edges) {
				w := g.Edges[edges[f.ei]].Body
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{pred: w})
				} else if onStack[w] && low[f.pred] > index[w] {
					low[f.pred] = index[w]
				}
				continue
			}
			v := f.pred
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].pred
				if low[p] > low[v] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// shortestPath returns a shortest predicate path from -> ... -> to that
// stays inside the given component (BFS; both endpoints must share a
// component). The result includes both endpoints; from == to yields a
// single-element path.
func (g *DepGraph) shortestPath(from, to string, comp map[string]int) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range g.out[v] {
			w := g.Edges[ei].Body
			if comp[w] != comp[from] {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = v
			if w == to {
				var path []string
				for at := to; ; at = prev[at] {
					path = append(path, at)
					if at == from {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return []string{from} // unreachable for SCC-mates; defensive
}

// edgeBetween returns some edge from head to body (preferring positive
// ones, which keeps reported cycles minimal in negations).
func (g *DepGraph) edgeBetween(head, body string) DepEdge {
	var found *DepEdge
	for _, ei := range g.out[head] {
		e := g.Edges[ei]
		if e.Body != body {
			continue
		}
		if !e.Negated {
			return e
		}
		if found == nil {
			found = &g.Edges[ei]
		}
	}
	if found != nil {
		return *found
	}
	return DepEdge{Head: head, Body: body}
}

// DependenciesOf returns the predicates reachable from the given roots by
// following head -> body edges (i.e. everything the roots' derivations can
// depend on), including the roots themselves.
func (g *DepGraph) DependenciesOf(roots []string) map[string]bool {
	reach := map[string]bool{}
	var stack []string
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.out[v] {
			w := g.Edges[ei].Body
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	return reach
}

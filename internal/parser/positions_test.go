package parser_test

import (
	"errors"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/parser"
)

// TestParsedPositionsExact pins the exact line/column carried by every node
// of a small program. Columns are 1-based and count the first character of
// the token; a negated literal starts at its "not" keyword.
func TestParsedPositionsExact(t *testing.T) {
	src := "0.8 r1: p(X) :- q(X, b), not r(X).\nflag :- p(a)."
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(prog.Rules))
	}

	r1 := prog.Rules[0]
	wantPos := func(what string, got, want ast.Pos) {
		t.Helper()
		if got != want {
			t.Errorf("%s: position %s, want %s", what, got, want)
		}
	}
	wantPos("rule r1", r1.Pos, ast.Pos{Line: 1, Col: 1})
	wantPos("head p", r1.Head.Pos, ast.Pos{Line: 1, Col: 9})
	wantPos("head var X", r1.Head.Terms[0].Pos, ast.Pos{Line: 1, Col: 11})
	wantPos("body q", r1.Body[0].Pos, ast.Pos{Line: 1, Col: 17})
	wantPos("q arg X", r1.Body[0].Terms[0].Pos, ast.Pos{Line: 1, Col: 19})
	wantPos("q arg b", r1.Body[0].Terms[1].Pos, ast.Pos{Line: 1, Col: 22})
	wantPos("negated r (at its not)", r1.Body[1].Pos, ast.Pos{Line: 1, Col: 26})

	r2 := prog.Rules[1]
	wantPos("rule r2", r2.Pos, ast.Pos{Line: 2, Col: 1})
	wantPos("head flag", r2.Head.Pos, ast.Pos{Line: 2, Col: 1})
	wantPos("body p", r2.Body[0].Pos, ast.Pos{Line: 2, Col: 9})

	if span := r1.Span(); span.Start != r1.Pos || !span.End.IsValid() || span.End.Before(r1.Body[1].Pos) {
		t.Errorf("rule span %s does not cover the rule (last literal at %s)", span, r1.Body[1].Pos)
	}
}

// TestParseErrorPositions checks that each syntax-error shape points at the
// offending token, not just "somewhere in the file".
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src  string
		line int
		col  int
	}{
		{"p(X) :- q(X)\nr(a).", 2, 1},             // missing period: error at next rule's start
		{"p(X :- q(X).", 1, 5},                    // bad paren: at ":-"
		{"p(X) :- q(X), .", 1, 15},                // trailing comma: at "."
		{"p(a).\nq(b).\np(\"oops :- r(X).", 3, 3}, // unterminated string
		{"p(a).\n\nq(&).", 3, 3},                  // unexpected character
	}
	for _, c := range cases {
		_, err := parser.ParseProgram(c.src)
		if err == nil {
			t.Errorf("ParseProgram(%q): want error", c.src)
			continue
		}
		var perr *parser.Error
		if !errors.As(err, &perr) {
			t.Errorf("ParseProgram(%q): error %v is not a *parser.Error", c.src, err)
			continue
		}
		if perr.Line != c.line || perr.Col != c.col {
			t.Errorf("ParseProgram(%q): error at %d:%d, want %d:%d (%v)", c.src, perr.Line, perr.Col, c.line, c.col, err)
		}
	}
}

// checkPositionOrder asserts the structural position invariants of a parsed
// program: every node has a valid position, rules start at strictly
// increasing positions, and within a rule the head and body literals (and
// their terms) appear in non-decreasing source order.
func checkPositionOrder(t *testing.T, prog *ast.Program, src string) {
	t.Helper()
	var prevRule ast.Pos
	for i, r := range prog.Rules {
		if !r.Pos.IsValid() {
			t.Fatalf("rule %d has no position\ninput: %q", i, src)
		}
		if i > 0 && !prevRule.Before(r.Pos) {
			t.Fatalf("rule %d starts at %s, not after previous rule at %s\ninput: %q", i, r.Pos, prevRule, src)
		}
		prevRule = r.Pos
		last := r.Pos
		advance := func(what string, p ast.Pos) {
			if !p.IsValid() {
				t.Fatalf("rule %d: %s has no position\ninput: %q", i, what, src)
			}
			if p.Before(last) {
				t.Fatalf("rule %d: %s at %s precedes earlier node at %s\ninput: %q", i, what, p, last, src)
			}
			last = p
		}
		advance("head", r.Head.Pos)
		for _, term := range r.Head.Terms {
			advance("head term", term.Pos)
		}
		for _, a := range r.Body {
			advance("body literal", a.Pos)
			for _, term := range a.Terms {
				advance("body term", term.Pos)
			}
		}
	}
}

// TestPositionOrderOnCorpus runs the ordering invariants over a few
// handwritten programs, including ones that exercise comments, negation and
// multi-line rules.
func TestPositionOrderOnCorpus(t *testing.T) {
	for _, src := range []string{
		"p(X) :- q(X).",
		"% leading comment\n0.5 a: p(X, Y) :-\n  q(X, Z),\n  r(Z, Y),\n  not s(X).\nflag :- p(a, b).",
		".5 p(a). .25 p(b).\n\n\nq(X) :- p(X).",
	} {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("ParseProgram(%q): %v", src, err)
		}
		checkPositionOrder(t, prog, src)
	}
}

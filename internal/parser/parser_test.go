package parser_test

import (
	"contribmax/internal/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contribmax/internal/parser"
)

func TestParseProgramBasics(t *testing.T) {
	src := `
		% the paper's Example 1.1
		0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
		0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
		0.5 r3: dealsWith(A, B) :- dealsWith(A, F), dealsWith(F, B).
	`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	r := p.Rules[1]
	if r.Label != "r2" || r.Prob != 0.7 || r.Head.Predicate != "dealsWith" || len(r.Body) != 2 {
		t.Errorf("r2 parsed wrong: %v", r)
	}
	if !r.Body[0].Terms[1].IsVar() || r.Body[0].Terms[1].Name != "C" {
		t.Errorf("r2 body = %v", r.Body)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := parser.ParseProgram(`
		p(X) :- q(X).
		0.5 p(X) :- r(X).
		named: p(X) :- s(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Prob != 1 || p.Rules[0].Label != "r1" {
		t.Errorf("rule 0 = %v", p.Rules[0])
	}
	if p.Rules[1].Prob != 0.5 || p.Rules[1].Label != "r2" {
		t.Errorf("rule 1 = %v", p.Rules[1])
	}
	if p.Rules[2].Label != "named" {
		t.Errorf("rule 2 label = %q", p.Rules[2].Label)
	}
}

func TestAutoLabelSkipsTaken(t *testing.T) {
	p, err := parser.ParseProgram(`
		r1: p(X) :- q(X).
		p(X) :- s(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[1].Label == "r1" {
		t.Error("auto label collided with explicit r1")
	}
}

func TestParseFactRuleAndLeadingDotFloat(t *testing.T) {
	p, err := parser.ParseProgram(`
		seedFact(a, b).
		.5 half: p(X) :- seedFact(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Rules[0].IsFact() || p.Rules[0].Prob != 1 {
		t.Errorf("fact rule = %v", p.Rules[0])
	}
	if p.Rules[1].Prob != 0.5 {
		t.Errorf("prob = %g", p.Rules[1].Prob)
	}
}

func TestParseComments(t *testing.T) {
	p, err := parser.ParseProgram(`
		% percent comment
		# hash comment
		// slash comment
		p(X) :- q(X). % trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Errorf("rules = %d", len(p.Rules))
	}
}

func TestParseQuotedConstants(t *testing.T) {
	p, err := parser.ParseProgram(`p(X) :- q(X, "United States", "tab\tchar").`)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Rules[0].Body[0]
	if b.Terms[1].Name != "United States" || b.Terms[2].Name != "tab\tchar" {
		t.Errorf("quoted terms = %v", b.Terms)
	}
}

func TestParseNumericAndMixedConstants(t *testing.T) {
	facts, err := parser.ParseFacts(`age(alice, 42). code(2pac, a1b2).`)
	if err != nil {
		t.Fatal(err)
	}
	if facts[0].Terms[1].Name != "42" {
		t.Errorf("numeric constant = %v", facts[0].Terms[1])
	}
	if facts[1].Terms[0].Name != "2pac" {
		t.Errorf("mixed constant = %v", facts[1].Terms[0])
	}
}

func TestParseZeroArity(t *testing.T) {
	p, err := parser.ParseProgram(`
		flag :- q(X).
		flag2() :- flag.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Arity() != 0 || p.Rules[1].Body[0].Arity() != 0 {
		t.Errorf("zero-arity parse: %v", p.Rules)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`p(X) :- q(X)`,                         // missing period
		`p(X :- q(X).`,                         // bad paren
		`p(X) :- .`,                            // empty body atom
		`2 p(X) :- q(X).`,                      // probability out of range
		`p(X, Y) :- q(X).`,                     // not range-restricted
		`p("unterminated :- q(X).`,             // unterminated string
		`p(X) :- q(X), .`,                      // trailing comma
		`r1: p(X) :- q(X). r1: p(X) :- s(X).`,  // duplicate labels
		`p(X) :- q(X). p(X, Y) :- q(X), s(Y).`, // arity clash
	}
	for _, src := range cases {
		if _, err := parser.ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q): want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := parser.ParseProgram("p(X) :- q(X).\np(Y :- r(Y).")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks line 2 position", err)
	}
}

func TestParseFacts(t *testing.T) {
	facts, err := parser.ParseFacts(`
		exports(france, wine).
		imports(germany, wine). % comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 || facts[0].String() != "exports(france, wine)" {
		t.Errorf("facts = %v", facts)
	}
	if _, err := parser.ParseFacts(`exports(france, X).`); err == nil {
		t.Error("non-ground fact should error")
	}
	if _, err := parser.ParseFactsReader(strings.NewReader("p(a).")); err != nil {
		t.Errorf("reader parse: %v", err)
	}
}

func TestParseAtom(t *testing.T) {
	a, err := parser.ParseAtom("dealsWith(usa, iran)")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "dealsWith(usa, iran)" {
		t.Errorf("atom = %s", a)
	}
	if _, err := parser.ParseAtom("dealsWith(usa, iran)."); err != nil {
		t.Errorf("trailing period should be tolerated: %v", err)
	}
	if _, err := parser.ParseAtom("p(a) q(b)"); err == nil {
		t.Error("trailing junk should error")
	}
	v, err := parser.ParseAtom("tc(X, b)")
	if err != nil || !v.Terms[0].IsVar() {
		t.Errorf("variable atom: %v %v", v, err)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
0.7 r2: deals2(A, B) :- exports(A, C), imports(B, C).
1 f1: seed(a, "Weird Const").
`
	p1, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := parser.ParseProgram(p1.String())
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, p1.String())
	}
	if len(p1.Rules) != len(p2.Rules) {
		t.Fatalf("rule count changed")
	}
	for i := range p1.Rules {
		if !p1.Rules[i].Equal(p2.Rules[i]) {
			t.Errorf("rule %d changed: %v vs %v", i, p1.Rules[i], p2.Rules[i])
		}
	}
}

func TestParseProgramValidatedOutput(t *testing.T) {
	p, err := parser.ParseProgram(`p(X) :- q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("parsed program should be valid: %v", err)
	}
}

func TestParseNegation(t *testing.T) {
	p, err := parser.ParseProgram(`
		unreached(X) :- node(X), not reach(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Rules[0].Body
	if b[0].Negated || !b[1].Negated {
		t.Errorf("negation flags = %v %v", b[0].Negated, b[1].Negated)
	}
	if b[1].Predicate != "reach" {
		t.Errorf("negated predicate = %q", b[1].Predicate)
	}
}

func TestParsePredicateNamedNot(t *testing.T) {
	// "not" followed by '(' is the atom not(...), not a negation.
	p, err := parser.ParseProgram(`p(X) :- not(X).`)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Rules[0].Body[0]
	if b.Negated || b.Predicate != "not" {
		t.Errorf("atom = %v negated=%v", b, b.Negated)
	}
}

func TestNegationRoundTrip(t *testing.T) {
	src := "1 r1: unreached(X) :- node(X), not reach(X), neq(X, sentinel).\n"
	p1, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != src {
		t.Errorf("render = %q, want %q", p1.String(), src)
	}
	p2, err := parser.ParseProgram(p1.String())
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Rules[0].Equal(p2.Rules[0]) {
		t.Error("negation did not round-trip")
	}
}

func TestParseRejectsNegatedHead(t *testing.T) {
	// A head cannot be negated; "not p(X) :- q(X)." parses the head as
	// predicate "not"... with arity mismatch or as negation? The grammar
	// only allows negation in bodies, so this must fail to parse or
	// validate.
	if _, err := parser.ParseProgram(`not p(X) :- q(X).`); err == nil {
		t.Error("negated head should not parse")
	}
}

func TestWriteFactsRoundTrip(t *testing.T) {
	src := `exports(france, wine). weird("Upper Case", "with space"). empty("").`
	facts, err := parser.ParseFacts(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := parser.WriteFacts(&buf, facts); err != nil {
		t.Fatal(err)
	}
	back, err := parser.ParseFacts(buf.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back) != len(facts) {
		t.Fatalf("count changed: %d vs %d", len(back), len(facts))
	}
	for i := range facts {
		if !facts[i].Equal(back[i]) {
			t.Errorf("fact %d changed: %s vs %s", i, facts[i], back[i])
		}
	}
}

func TestWriteFactsRejectsVariables(t *testing.T) {
	a, _ := parser.ParseAtom("p(X)")
	var buf strings.Builder
	if err := parser.WriteFacts(&buf, []ast.Atom{a}); err == nil {
		t.Error("variable fact should error")
	}
}

func TestParseFilesHelpers(t *testing.T) {
	dir := t.TempDir()
	progPath := filepath.Join(dir, "p.dl")
	factsPath := filepath.Join(dir, "f.facts")
	os.WriteFile(progPath, []byte("p(X) :- q(X)."), 0o644)
	os.WriteFile(factsPath, []byte("q(a). q(b)."), 0o644)

	prog, err := parser.ParseProgramFile(progPath)
	if err != nil || len(prog.Rules) != 1 {
		t.Fatalf("ParseProgramFile: %v %v", prog, err)
	}
	facts, err := parser.ParseFactsFile(factsPath)
	if err != nil || len(facts) != 2 {
		t.Fatalf("ParseFactsFile: %v %v", facts, err)
	}
	if _, err := parser.ParseProgramFile(filepath.Join(dir, "missing.dl")); err == nil {
		t.Error("missing program file should error")
	}
	if _, err := parser.ParseFactsFile(filepath.Join(dir, "missing.facts")); err == nil {
		t.Error("missing fact file should error")
	}
	// Parse errors carry the file name.
	os.WriteFile(progPath, []byte("broken("), 0o644)
	if _, err := parser.ParseProgramFile(progPath); err == nil || !strings.Contains(err.Error(), "p.dl") {
		t.Errorf("error should name the file: %v", err)
	}
}

func TestParseProbFactsBasics(t *testing.T) {
	pf, err := parser.ParseProbFacts(`
		0.9 exports(france, wine).
		imports(germany, wine).
		.25 flag(on).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf) != 3 || pf[0].Prob != 0.9 || pf[1].Prob != 1 || pf[2].Prob != 0.25 {
		t.Fatalf("probfacts = %v", pf)
	}
	for _, bad := range []string{`1.5 p(a).`, `0.5 p(X).`, `0.5 p(a)`} {
		if _, err := parser.ParseProbFacts(bad); err == nil {
			t.Errorf("ParseProbFacts(%q): want error", bad)
		}
	}
}

// TestDottedConstantRoundTrip is the regression test for the quoting bug
// found by FuzzParseFacts: constants containing dots (other than plain
// numeric literals) must render quoted.
func TestDottedConstantRoundTrip(t *testing.T) {
	for _, name := range []string{"a.b", "2.5.6", "v1.2-rc", "2.", "x."} {
		facts := []ast.Atom{ast.NewAtom("p", ast.C(name))}
		var sb strings.Builder
		if err := parser.WriteFacts(&sb, facts); err != nil {
			t.Fatal(err)
		}
		back, err := parser.ParseFacts(sb.String())
		if err != nil {
			t.Fatalf("%q: re-parse: %v (rendered %q)", name, err, sb.String())
		}
		if len(back) != 1 || !back[0].Equal(facts[0]) {
			t.Errorf("%q: round trip changed: %v", name, back)
		}
	}
}

package parser_test

import (
	"testing"

	"contribmax/internal/parser"
)

// FuzzParseProgram asserts the parser's crash-freedom and the
// parse-render-parse fixpoint: any input either fails with an error or
// yields a program whose rendering re-parses to an equal program.
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"p(X) :- q(X).",
		"0.8 r1: dealsWith(A, B) :- dealsWith(B, A).",
		`p("we\"ird", X) :- q(X, 42), not r(X), lt(X, 9).`,
		"% comment\nflag :- e(a, X).",
		".5 p(a).",
		"p(X :- q(X).",
		"p() :- .",
		":-",
		"0.8",
		"p(\"unterminated",
		"不(X) :- q(X).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		checkPositionOrder(t, prog, src)
		rendered := prog.String()
		back, err := parser.ParseProgram(rendered)
		if err != nil {
			t.Fatalf("rendering did not re-parse: %v\ninput: %q\nrendered: %q", err, src, rendered)
		}
		if len(back.Rules) != len(prog.Rules) {
			t.Fatalf("rule count changed after round trip: %d -> %d\ninput: %q", len(prog.Rules), len(back.Rules), src)
		}
		for i := range prog.Rules {
			if !prog.Rules[i].Equal(back.Rules[i]) {
				t.Fatalf("rule %d changed after round trip:\n was %s\n now %s\ninput: %q",
					i, prog.Rules[i], back.Rules[i], src)
			}
		}
		checkPositionOrder(t, back, rendered)
	})
}

// FuzzParseFacts: same crash-freedom and round-trip property for fact
// files.
func FuzzParseFacts(f *testing.F) {
	for _, seed := range []string{
		"exports(france, wine).",
		`p("a b", "").`,
		"p(1). p(2.5). p(2pac).",
		"p(X).",
		"p(",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		facts, err := parser.ParseFacts(src)
		if err != nil {
			return
		}
		var sb stringsBuilder
		if err := parser.WriteFacts(&sb, facts); err != nil {
			t.Fatalf("WriteFacts on parsed facts: %v", err)
		}
		back, err := parser.ParseFacts(sb.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\nrendered: %q", err, sb.String())
		}
		if len(back) != len(facts) {
			t.Fatalf("fact count changed: %d -> %d", len(facts), len(back))
		}
		for i := range facts {
			if !facts[i].Equal(back[i]) {
				t.Fatalf("fact %d changed: %s -> %s", i, facts[i], back[i])
			}
		}
	})
}

// stringsBuilder is a minimal strings.Builder stand-in kept local so the
// fuzz file's imports stay tiny.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

// Package parser implements the textual syntax for probabilistic datalog
// programs and fact files.
//
// Program syntax (one rule per statement, '.'-terminated):
//
//	% comments run to end of line; # also starts a comment
//	0.8 r1: dealsWith(A, B) :- dealsWith(B, A).
//	0.7 r2: dealsWith(A, B) :- exports(A, C), imports(B, C).
//	dealsWith(france, cuba).          % a fact rule; probability defaults to 1
//
// Identifiers starting with an upper-case letter are variables; identifiers
// starting with a lower-case letter, a digit, or an underscore are constant
// or predicate symbols; arbitrary constants may be written as double-quoted
// strings with Go escape rules.
package parser

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF       tokenKind = iota
	tokIdent               // lower-case-leading bare symbol: predicate or constant
	tokVariable            // upper-case-leading identifier
	tokNumber              // numeric literal (used for probabilities and numeric constants)
	tokString              // double-quoted constant
	tokLParen              // (
	tokRParen              // )
	tokComma               // ,
	tokPeriod              // .
	tokColon               // :
	tokColonDash           // :-
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPeriod:
		return "'.'"
	case tokColon:
		return "':'"
	case tokColonDash:
		return "':-'"
	}
	return "unknown token"
}

// token is a lexical token with its source position (1-based line/column).
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer scans datalog source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.advance(1)
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		l.advance(1)
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == ',':
		l.advance(1)
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.advance(2)
			return token{kind: tokColonDash, text: ":-", line: line, col: col}, nil
		}
		l.advance(1)
		return token{kind: tokColon, text: ":", line: line, col: col}, nil
	case c == '"':
		return l.lexString(line, col)
	case c >= '0' && c <= '9':
		return l.lexNumberOrIdent(line, col)
	case c == '.':
		// Distinguish a statement terminator from a leading-dot float like
		// ".5": a '.' followed by a digit is a number.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumberOrIdent(line, col)
		}
		l.advance(1)
		return token{kind: tokPeriod, text: ".", line: line, col: col}, nil
	case isIdentStart(rune(c)):
		return l.lexIdent(line, col)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if unicode.IsUpper(r) || unicode.IsLetter(r) {
		return l.lexIdent(line, col)
	}
	return token{}, l.errorf(line, col, "unexpected character %q", r)
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '%' || c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) lexString(line, col int) (token, error) {
	// Find the closing quote, honoring backslash escapes, then let strconv
	// handle the unescaping.
	start := l.pos
	l.advance(1) // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.advance(2)
		case '"':
			l.advance(1)
			raw := l.src[start:l.pos]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, l.errorf(line, col, "bad string literal %s: %v", raw, err)
			}
			return token{kind: tokString, text: s, line: line, col: col}, nil
		case '\n':
			return token{}, l.errorf(line, col, "unterminated string literal")
		default:
			l.advance(1)
		}
	}
	return token{}, l.errorf(line, col, "unterminated string literal")
}

// lexNumberOrIdent scans a token starting with a digit or '.'. If the
// scanned characters continue into identifier characters (e.g. "2pac"), the
// whole run is an identifier constant; otherwise it is a number.
func (l *lexer) lexNumberOrIdent(line, col int) (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.advance(1)
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.advance(1)
			continue
		}
		break
	}
	// Identifier continuation turns the whole run into a bare symbol.
	if l.pos < len(l.src) && isIdentInner(rune(l.src[l.pos])) {
		for l.pos < len(l.src) && isIdentInner(rune(l.src[l.pos])) {
			l.advance(1)
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	start := l.pos
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	first := r
	l.advance(size)
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentInner(r) {
			break
		}
		l.advance(size)
	}
	text := l.src[start:l.pos]
	if unicode.IsUpper(first) {
		return token{kind: tokVariable, text: text, line: line, col: col}, nil
	}
	return token{kind: tokIdent, text: text, line: line, col: col}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentInner(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Error is a parse error with a source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

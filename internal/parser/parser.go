package parser

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"contribmax/internal/ast"
)

// ParseProgram parses probabilistic datalog source text into a Program.
// Rules without an explicit label get sequential labels r1, r2, ...; rules
// without an explicit probability default to 1. The returned program has
// been validated (ast.Program.Validate).
func ParseProgram(src string) (*ast.Program, error) {
	prog, err := ParseProgramLoose(src)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseProgramLoose parses source text without running Program.Validate,
// so that syntactically well-formed but semantically ill-formed programs
// (arity clashes, unsafe rules, out-of-range probabilities, duplicate
// labels) still yield an AST. This is the entry point for tools that run
// their own, richer diagnostics over possibly broken programs — notably
// internal/analysis and the cmlint command. Auto-labels are assigned as in
// ParseProgram; explicit duplicate labels are preserved as written.
//
// Every AST node of the result carries its source position (ast.Pos).
func ParseProgramLoose(src string) (*ast.Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	prog := ast.NewProgram()
	auto := 0
	used := map[string]bool{}
	for p.tok.kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if r.Label == "" {
			for {
				auto++
				r.Label = "r" + strconv.Itoa(auto)
				if !used[r.Label] {
					break
				}
			}
		}
		used[r.Label] = true
		prog.Add(r)
	}
	return prog, nil
}

// ParseProgramFile reads and parses a program file.
func ParseProgramFile(path string) (*ast.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := ParseProgram(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, nil
}

// ParseFacts parses a fact file: ground atoms, one per '.'-terminated
// statement, without probabilities or labels. It returns the atoms in
// source order.
func ParseFacts(src string) ([]ast.Atom, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	var out []ast.Atom
	for p.tok.kind != tokEOF {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if !a.IsGround() {
			return nil, p.errHeref("fact %s contains variables", a)
		}
		if err := p.expect(tokPeriod); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ProbFact is a ground atom with an associated probability, as parsed from
// a probabilistic fact file ("0.9 exports(france, wine).").
type ProbFact struct {
	Atom ast.Atom
	Prob float64
}

// ParseProbFacts parses a fact file in which each ground atom may carry an
// optional leading probability (default 1):
//
//	0.9 exports(france, wine).
//	imports(germany, wine).
func ParseProbFacts(src string) ([]ProbFact, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	var out []ProbFact
	for p.tok.kind != tokEOF {
		pf := ProbFact{Prob: 1}
		if p.tok.kind == tokNumber {
			f, err := strconv.ParseFloat(p.tok.text, 64)
			if err != nil {
				return nil, p.errHeref("bad probability %q: %v", p.tok.text, err)
			}
			if f < 0 || f > 1 {
				return nil, p.errHeref("probability %g outside [0,1]", f)
			}
			pf.Prob = f
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if !a.IsGround() {
			return nil, p.errHeref("fact %s contains variables", a)
		}
		if err := p.expect(tokPeriod); err != nil {
			return nil, err
		}
		pf.Atom = a
		out = append(out, pf)
	}
	return out, nil
}

// ParseFactsReader parses facts from an io.Reader.
func ParseFactsReader(r io.Reader) ([]ast.Atom, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseFacts(string(data))
}

// ParseFactsFile reads and parses a fact file.
func ParseFactsFile(path string) ([]ast.Atom, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	facts, err := ParseFacts(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return facts, nil
}

// WriteFacts writes ground atoms one per line in the fact-file syntax that
// ParseFacts reads back (the inverse operation, round-trip safe thanks to
// constant quoting).
func WriteFacts(w io.Writer, facts []ast.Atom) error {
	bw := bufio.NewWriter(w)
	for _, f := range facts {
		if !f.IsGround() {
			return fmt.Errorf("parser: fact %s contains variables", f)
		}
		if _, err := bw.WriteString(f.String()); err != nil {
			return err
		}
		if _, err := bw.WriteString(".\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseAtom parses a single ground or non-ground atom, e.g. for specifying
// target tuples on a command line: "dealsWith(usa, iran)".
func ParseAtom(src string) (ast.Atom, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return ast.Atom{}, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return ast.Atom{}, err
	}
	// An optional trailing period is tolerated.
	if p.tok.kind == tokPeriod {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if p.tok.kind != tokEOF {
		return ast.Atom{}, p.errHeref("unexpected %s after atom", p.tok.kind)
	}
	return a, nil
}

type parser struct {
	lex *lexer
	tok token
}

// pos converts the token's lexer coordinates to an ast source position.
func (t token) pos() ast.Pos { return ast.Pos{Line: t.line, Col: t.col} }

func (p *parser) prime() error { return p.advance() }

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) error {
	if p.tok.kind != kind {
		return p.errHeref("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

func (p *parser) errHeref(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// parseRule parses one statement:
//
//	[prob] [label :] head [:- body] .
func (p *parser) parseRule() (ast.Rule, error) {
	r := ast.Rule{Prob: 1, Pos: p.tok.pos()}
	if p.tok.kind == tokNumber {
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return r, p.errHeref("bad probability %q: %v", p.tok.text, err)
		}
		r.Prob = f
		if err := p.advance(); err != nil {
			return r, err
		}
	}
	// A label is an identifier immediately followed by ':'. We need one
	// token of lookahead: stash the ident, peek at the next token, and if it
	// is not ':' the ident begins the head atom instead.
	if p.tok.kind == tokIdent {
		ident := p.tok
		if err := p.advance(); err != nil {
			return r, err
		}
		if p.tok.kind == tokColon {
			r.Label = ident.text
			if err := p.advance(); err != nil {
				return r, err
			}
			head, err := p.parseAtom()
			if err != nil {
				return r, err
			}
			r.Head = head
		} else {
			head, err := p.parseAtomWithPred(ident)
			if err != nil {
				return r, err
			}
			r.Head = head
		}
	} else {
		head, err := p.parseAtom()
		if err != nil {
			return r, err
		}
		r.Head = head
	}
	if p.tok.kind == tokColonDash {
		if err := p.advance(); err != nil {
			return r, err
		}
		for {
			b, err := p.parseBodyLiteral()
			if err != nil {
				return r, err
			}
			r.Body = append(r.Body, b)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return r, err
			}
		}
	}
	if err := p.expect(tokPeriod); err != nil {
		return r, err
	}
	return r, nil
}

// parseBodyLiteral parses a body atom with an optional "not" prefix. The
// word "not" is a keyword only when another identifier follows (so a
// predicate literally named "not" still parses as the atom not(...)).
func (p *parser) parseBodyLiteral() (ast.Atom, error) {
	if p.tok.kind == tokIdent && p.tok.text == "not" {
		not := p.tok
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		if p.tok.kind == tokIdent {
			a, err := p.parseAtom()
			if err != nil {
				return ast.Atom{}, err
			}
			a.Negated = true
			a.Pos = not.pos() // the literal starts at the "not" keyword
			return a, nil
		}
		return p.parseAtomWithPred(not)
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (ast.Atom, error) {
	if p.tok.kind != tokIdent {
		return ast.Atom{}, p.errHeref("expected predicate name, found %s %q", p.tok.kind, p.tok.text)
	}
	pred := p.tok
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	return p.parseAtomWithPred(pred)
}

// parseAtomWithPred parses the argument list of an atom whose predicate
// token has already been consumed. A bare predicate with no parenthesis is a
// zero-ary atom (used by Magic-Sets boolean query predicates).
func (p *parser) parseAtomWithPred(pred token) (ast.Atom, error) {
	a := ast.Atom{Predicate: pred.text, Pos: pred.pos()}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return a, err
	}
	if p.tok.kind == tokRParen {
		return a, p.advance()
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return a, err
		}
		a.Terms = append(a.Terms, t)
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return a, err
			}
		case tokRParen:
			return a, p.advance()
		default:
			return a, p.errHeref("expected ',' or ')' in argument list, found %s %q", p.tok.kind, p.tok.text)
		}
	}
}

func (p *parser) parseTerm() (ast.Term, error) {
	switch p.tok.kind {
	case tokVariable:
		t := ast.V(p.tok.text)
		t.Pos = p.tok.pos()
		return t, p.advance()
	case tokIdent, tokNumber, tokString:
		t := ast.C(p.tok.text)
		t.Pos = p.tok.pos()
		return t, p.advance()
	default:
		return ast.Term{}, p.errHeref("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

// Package provenance extracts derivation trees — the paper's Section II
// notion — from WD graphs. The headline operation is the most probable
// derivation tree of a tuple: the tree maximizing the product of its rule
// instantiations' probabilities, computed with Knuth's generalization of
// Dijkstra's algorithm to directed hypergraphs (each rule instantiation is
// a hyperedge from its body facts to its head).
//
// CM (internal/cm) answers "which inputs matter most for these outputs";
// this package answers the complementary question "show me how this output
// was derived", which the paper's related-work section attributes to
// selective provenance systems.
package provenance

import (
	"container/heap"
	"fmt"
	"strings"

	"contribmax/internal/db"
	"contribmax/internal/wdgraph"
)

// Tree is a derivation tree. Leaves are edb facts (Rule == "", Prob == 1);
// internal nodes record the rule instantiation deriving the fact from the
// children and the probability of the whole subtree.
type Tree struct {
	// Pred and Tuple identify the fact at this node.
	Pred  string
	Tuple db.Tuple
	// Rule is the label of the rule instantiation deriving the fact; empty
	// for edb leaves.
	Rule string
	// Prob is the product of the subtree's rule-instantiation weights,
	// counted per occurrence. When the tree shares no sub-derivations this
	// is exactly the probability that every instantiation in it fires;
	// with shared sub-derivations it is a lower bound (the shared part is
	// double-counted).
	Prob float64
	// Children are the derivations of the instantiation's body facts.
	Children []*Tree
}

// Render returns an indented multi-line rendering of the tree.
func (t *Tree) Render(symbols *db.SymbolTable) string {
	var sb strings.Builder
	t.render(&sb, symbols, 0)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder, symbols *db.SymbolTable, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(factString(t.Pred, t.Tuple, symbols))
	if t.Rule != "" {
		fmt.Fprintf(sb, "   [%s, p=%.3g]", t.Rule, t.Prob)
	}
	sb.WriteByte('\n')
	for _, c := range t.Children {
		c.render(sb, symbols, depth+1)
	}
}

// Size returns the number of fact nodes in the tree.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

func factString(pred string, tuple db.Tuple, symbols *db.SymbolTable) string {
	var sb strings.Builder
	sb.WriteString(pred)
	sb.WriteByte('(')
	for i, s := range tuple {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(symbols.Name(s))
	}
	sb.WriteByte(')')
	return sb.String()
}

// BestDerivation returns the most probable derivation tree of the fact at
// node root in g, and false if root has no derivation grounded in edb
// facts. The score of a tree is the product of the weights of its rule
// instantiations (per occurrence); edb leaves score 1.
//
// The computation is Knuth's algorithm: process facts in decreasing best
// achievable score; a rule instantiation becomes available once all its
// body facts are finalized, offering w(r)·Π(body scores) to its head.
// Scores lie in (0, 1] and multiplication by a weight ≤ 1 never increases
// them, so the greedy finalization order is optimal, and cycles in the WD
// graph are handled for free (a derivation through a cycle can never beat
// the acyclic one that finalized the fact).
func BestDerivation(g *wdgraph.Graph, root wdgraph.NodeID) (*Tree, bool) {
	sc := computeScores(g)
	if !sc.final[root] {
		return nil, false
	}
	return buildTree(g, root, sc.score, sc.bestRule), true
}

// scores holds the Knuth-pass results: per fact node, the best achievable
// derivation score and the arg-max rule node.
type scores struct {
	score    []float64
	final    []bool
	bestRule []int32
}

// computeScores runs the Knuth pass to completion (all derivable facts
// finalized).
func computeScores(g *wdgraph.Graph) scores {
	n := g.NumNodes()
	sc := scores{
		score:    make([]float64, n),
		final:    make([]bool, n),
		bestRule: make([]int32, n),
	}
	pending := make([]int32, n) // per rule node: #unfinalized bodies
	ruleOffer := make([]float64, n)
	for i := range sc.bestRule {
		sc.bestRule[i] = -1
	}

	pq := &scoreHeap{}
	heap.Init(pq)

	// Seed: edb leaves score 1. Rule nodes count their body facts.
	for i := 0; i < n; i++ {
		id := wdgraph.NodeID(i)
		node := g.Node(id)
		switch node.Kind {
		case wdgraph.FactNode:
			if node.EDB {
				heap.Push(pq, scored{id: id, score: 1, rule: -1})
			}
		case wdgraph.RuleNode:
			pending[i] = int32(g.InDegree(id))
			ruleOffer[i] = ruleWeight(g, id)
			if pending[i] == 0 {
				// A rule with no (kept) body atoms derives its head
				// unconditionally with probability w(r).
				offerHead(g, pq, id, ruleOffer[i])
			}
		}
	}

	for pq.Len() > 0 {
		top := heap.Pop(pq).(scored)
		i := int(top.id)
		if sc.final[i] {
			continue
		}
		sc.final[i] = true
		sc.score[i] = top.score
		sc.bestRule[i] = top.rule
		// Relax the rule nodes consuming this fact.
		for _, to := range g.OutEdges(top.id).To {
			ri := int(to)
			if g.Node(to).Kind != wdgraph.RuleNode {
				continue
			}
			ruleOffer[ri] *= top.score
			pending[ri]--
			if pending[ri] == 0 {
				offerHead(g, pq, to, ruleOffer[ri])
			}
		}
	}
	return sc
}

// offerHead pushes the head of rule node r with the given offered score.
func offerHead(g *wdgraph.Graph, pq *scoreHeap, r wdgraph.NodeID, offer float64) {
	outs := g.OutEdges(r)
	if outs.Len() != 1 {
		return
	}
	heap.Push(pq, scored{id: outs.To[0], score: offer, rule: int32(r)})
}

func ruleWeight(g *wdgraph.Graph, r wdgraph.NodeID) float64 {
	outs := g.OutEdges(r)
	if outs.Len() != 1 {
		return 0
	}
	return outs.W[0]
}

func buildTree(g *wdgraph.Graph, id wdgraph.NodeID, score []float64, bestRule []int32) *Tree {
	node := g.Node(id)
	t := &Tree{Pred: node.Pred, Tuple: node.Tuple, Prob: score[id]}
	r := bestRule[id]
	if r < 0 {
		return t // edb leaf
	}
	ruleID := wdgraph.NodeID(r)
	t.Rule = g.Node(ruleID).Pred
	for _, u := range g.InEdges(ruleID).To {
		t.Children = append(t.Children, buildTree(g, u, score, bestRule))
	}
	return t
}

// Support returns the edb facts in the backward closure of root: every
// input fact that participates in some derivation of the fact.
func Support(g *wdgraph.Graph, root wdgraph.NodeID) []wdgraph.NodeID {
	var out []wdgraph.NodeID
	w := wdgraph.NewWalker(g)
	w.ReverseClosure(root, func(v wdgraph.NodeID) {
		n := g.Node(v)
		if n.Kind == wdgraph.FactNode && n.EDB {
			out = append(out, v)
		}
	})
	return out
}

// scored is a priority-queue entry: a candidate finalization of a fact
// node via rule node rule (or -1 for edb leaves).
type scored struct {
	id    wdgraph.NodeID
	score float64
	rule  int32
}

type scoreHeap []scored

func (h scoreHeap) Len() int           { return len(h) }
func (h scoreHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h scoreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *scoreHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

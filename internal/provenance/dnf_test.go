package provenance_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"contribmax/internal/provenance"
	"contribmax/internal/wdgraph"
)

// reachOf extracts the reachability lineage and indexes it by source atom
// rendering for assertions.
func reachOf(t *testing.T, g *wdgraph.Graph, root wdgraph.NodeID) *provenance.ReachLineage {
	t.Helper()
	lin, err := provenance.ReachabilityLineage(g, root, provenance.DNFBudget{})
	if err != nil {
		t.Fatal(err)
	}
	return lin
}

func TestReachabilityLineageChain(t *testing.T) {
	g, d := build(t, `
		0.5 r1: a(X) :- e(X).
		0.8 r2: b(X) :- a(X).
	`, `e(n1).`)
	lin := reachOf(t, g, factNode(t, g, d, "b(n1)"))
	if len(lin.Sources) != 1 {
		t.Fatalf("sources = %d, want 1", len(lin.Sources))
	}
	if got := lin.Clauses[0]; len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("clauses = %s, want one 2-variable clause", provenance.ClausesString(got))
	}
	p := lin.Vars.Probs[lin.Clauses[0][0][0]] * lin.Vars.Probs[lin.Clauses[0][0][1]]
	if math.Abs(p-0.4) > 1e-15 {
		t.Fatalf("clause probability product = %v, want 0.4", p)
	}
}

func TestReachabilityLineageDeterministicRule(t *testing.T) {
	// Weight-1 instantiations are deterministic: they never become
	// variables, so the only clause variable is r2's.
	g, d := build(t, `
		1.0 r1: a(X) :- e(X).
		0.8 r2: b(X) :- a(X).
	`, `e(n1).`)
	lin := reachOf(t, g, factNode(t, g, d, "b(n1)"))
	if lin.Vars.Len() != 1 {
		t.Fatalf("vars = %d, want 1", lin.Vars.Len())
	}
	if got := lin.Clauses[0]; len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("clauses = %s, want one 1-variable clause", provenance.ClausesString(got))
	}
	if p := lin.Vars.Probs[0]; p != 0.8 {
		t.Fatalf("var probability = %v, want 0.8", p)
	}
}

func TestReachabilityLineageDiamond(t *testing.T) {
	// Two disjoint paths e -> t: the DNF has two variable-disjoint
	// 2-variable clauses.
	g, d := build(t, `
		0.5 p1: p(X) :- e(X).
		0.6 p2: q(X) :- e(X).
		0.9 t1: t(X) :- p(X).
		0.7 t2: t(X) :- q(X).
	`, `e(n1).`)
	lin := reachOf(t, g, factNode(t, g, d, "t(n1)"))
	if len(lin.Sources) != 1 {
		t.Fatalf("sources = %d, want 1", len(lin.Sources))
	}
	cl := lin.Clauses[0]
	if len(cl) != 2 || len(cl[0]) != 2 || len(cl[1]) != 2 {
		t.Fatalf("clauses = %s, want two 2-variable clauses", provenance.ClausesString(cl))
	}
	seen := map[int32]int{}
	for _, c := range cl {
		for _, v := range c {
			seen[v]++
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("variable %d appears in %d clauses, want 1", v, n)
		}
	}
}

func TestReachabilityLineageRecursiveCone(t *testing.T) {
	// Recursion is fine for reachability: simple-path enumeration skips
	// cycles. tc(a,c) is reached from e(a,b) via {r1(a,b), r2} composition.
	g, d := build(t, `
		0.6 r1: tc(X, Y) :- e(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, c).`)
	lin := reachOf(t, g, factNode(t, g, d, "tc(a, c)"))
	if len(lin.Sources) != 2 {
		t.Fatalf("sources = %d, want 2 (both edges reach tc(a,c))", len(lin.Sources))
	}
	for i, cl := range lin.Clauses {
		if len(cl) == 0 {
			t.Fatalf("source %d has empty DNF", i)
		}
	}
}

func TestDerivationLineageJoin(t *testing.T) {
	g, d := build(t, `
		0.5 r: t(X) :- e(X), f(X).
	`, `e(n1). f(n1).`)
	vt, dnf, err := provenance.DerivationLineage(g, factNode(t, g, d, "t(n1)"), provenance.DNFBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if vt.Len() != 1 || len(dnf) != 1 || len(dnf[0]) != 1 {
		t.Fatalf("dnf = %s over %d vars, want one singleton clause over 1 var",
			provenance.ClausesString(dnf), vt.Len())
	}
}

func TestDerivationLineageRecursionRejected(t *testing.T) {
	g, d := build(t, `
		0.6 r1: tc(X, Y) :- e(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, a).`)
	_, _, err := provenance.DerivationLineage(g, factNode(t, g, d, "tc(a, a)"), provenance.DNFBudget{})
	if err == nil {
		t.Fatal("expected an error on a recursive cone")
	}
}

func TestLineageBudget(t *testing.T) {
	g, d := build(t, `
		0.5 p1: p(X) :- e(X).
		0.6 p2: q(X) :- e(X).
		0.9 t1: t(X) :- p(X).
		0.7 t2: t(X) :- q(X).
	`, `e(n1).`)
	_, err := provenance.ReachabilityLineage(g, factNode(t, g, d, "t(n1)"), provenance.DNFBudget{MaxClauses: 1})
	if !errors.Is(err, provenance.ErrLineageBudget) {
		t.Fatalf("err = %v, want ErrLineageBudget", err)
	}
}

func TestNormalizeClauses(t *testing.T) {
	in := [][]int32{{2, 1, 2}, {1}, {3, 2}, {1, 2, 3}, {2, 3}}
	got := provenance.NormalizeClauses(in)
	want := [][]int32{{1}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizeClauses = %s, want %s",
			provenance.ClausesString(got), provenance.ClausesString(want))
	}
}

package provenance

import (
	"container/heap"

	"contribmax/internal/wdgraph"
)

// TopKDerivations enumerates up to k cycle-free derivation trees of the
// fact at root, in non-increasing score order (per-occurrence weight
// product, as in BestDerivation). The first result, when any exists,
// equals BestDerivation's tree score.
//
// The enumeration is a best-first (A*) search over partial trees: the
// priority of a partial tree is the product of its already-chosen rule
// weights and the Knuth best score of every still-open fact slot — an
// admissible bound, since completing a slot can only multiply by at most
// its best score. Trees in which a fact would appear as its own ancestor
// are skipped (they only rearrange probability mass that a smaller tree
// already carries).
//
// maxExpansions caps the search (0 means 100·k·1000); on instances with
// very many near-equal derivations the cap may truncate the result early.
func TopKDerivations(g *wdgraph.Graph, root wdgraph.NodeID, k, maxExpansions int) []*Tree {
	if k <= 0 {
		return nil
	}
	if maxExpansions <= 0 {
		maxExpansions = 100 * k * 1000
	}
	sc := computeScores(g)
	if !sc.final[root] {
		return nil
	}

	pq := &partialHeap{}
	heap.Init(pq)
	heap.Push(pq, &partial{
		bound: sc.score[root],
		open:  []slot{{fact: root}},
	})

	var out []*Tree
	for pq.Len() > 0 && len(out) < k && maxExpansions > 0 {
		maxExpansions--
		p := heap.Pop(pq).(*partial)
		if len(p.open) == 0 {
			out = append(out, replay(g, root, p.choices))
			continue
		}
		// Expand the last open slot with every applicable rule.
		s := p.open[len(p.open)-1]
		node := g.Node(s.fact)
		if node.EDB {
			// edb leaf: close the slot with no choice.
			heap.Push(pq, p.close(s, -1, 1, wdgraph.Edges{}, sc))
			continue
		}
		ins := g.InEdges(s.fact)
		for j, ruleID := range ins.To {
			if g.Node(ruleID).Kind != wdgraph.RuleNode {
				continue
			}
			// Bodies become new open slots unless one is an ancestor
			// (cycle) or underivable.
			bodies := g.InEdges(ruleID)
			ok := true
			for _, bu := range bodies.To {
				if !sc.final[bu] || s.onPath(bu) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			heap.Push(pq, p.close(s, int32(ruleID), ins.W[j], bodies, sc))
		}
	}
	return out
}

// slot is an open fact position with its ancestor chain (for cycle
// pruning).
type slot struct {
	fact      wdgraph.NodeID
	ancestors *ancNode
}

type ancNode struct {
	fact wdgraph.NodeID
	next *ancNode
}

func (s slot) onPath(f wdgraph.NodeID) bool {
	if f == s.fact {
		return true
	}
	for a := s.ancestors; a != nil; a = a.next {
		if a.fact == f {
			return true
		}
	}
	return false
}

// partial is a partially expanded derivation tree. choices records, in
// expansion order, the rule node chosen for each closed idb slot (and -1
// for edb leaves); replaying the choices with the same deterministic
// expansion order rebuilds the tree.
type partial struct {
	bound   float64
	choices []int32
	open    []slot
}

// close returns a new partial with slot s (the last open one) resolved by
// ruleID (weight w), pushing the rule's bodies as new open slots.
func (p *partial) close(s slot, ruleID int32, w float64, bodies wdgraph.Edges, sc scores) *partial {
	np := &partial{
		bound:   p.bound / sc.score[s.fact] * w,
		choices: append(append(make([]int32, 0, len(p.choices)+1), p.choices...), ruleID),
		open:    append(make([]slot, 0, len(p.open)-1+bodies.Len()), p.open[:len(p.open)-1]...),
	}
	anc := &ancNode{fact: s.fact, next: s.ancestors}
	for _, bu := range bodies.To {
		np.bound *= sc.score[bu]
		np.open = append(np.open, slot{fact: bu, ancestors: anc})
	}
	return np
}

// replay rebuilds the tree from a complete choice sequence, mirroring the
// expansion order (always the last open slot). During replay each node's
// Prob temporarily holds its own rule weight; the final pass folds in the
// children bottom-up.
func replay(g *wdgraph.Graph, root wdgraph.NodeID, choices []int32) *Tree {
	rootTree := &Tree{Pred: g.Node(root).Pred, Tuple: g.Node(root).Tuple, Prob: 1}
	open := []*Tree{rootTree}
	for _, c := range choices {
		t := open[len(open)-1]
		open = open[:len(open)-1]
		if c < 0 {
			continue // edb leaf, Prob stays 1
		}
		ruleID := wdgraph.NodeID(c)
		t.Rule = g.Node(ruleID).Pred
		t.Prob = ruleWeight(g, ruleID)
		for _, bu := range g.InEdges(ruleID).To {
			bn := g.Node(bu)
			child := &Tree{Pred: bn.Pred, Tuple: bn.Tuple, Prob: 1}
			t.Children = append(t.Children, child)
			open = append(open, child)
		}
	}
	fillSubtreeProbs(rootTree)
	return rootTree
}

// fillSubtreeProbs folds children's probabilities into each subtree's,
// bottom-up; on entry every node's Prob holds just its own rule weight.
func fillSubtreeProbs(t *Tree) float64 {
	for _, c := range t.Children {
		t.Prob *= fillSubtreeProbs(c)
	}
	return t.Prob
}

type partialHeap []*partial

func (h partialHeap) Len() int           { return len(h) }
func (h partialHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h partialHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *partialHeap) Push(x any)        { *h = append(*h, x.(*partial)) }
func (h *partialHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

package provenance

import (
	"errors"
	"fmt"
	"sort"

	"contribmax/internal/wdgraph"
)

// Derivation DNFs. Under the random-subgraph semantics (Definition 3.4)
// every edge of the WD graph is present independently with its weight;
// fact→rule edges carry weight 1 and each rule node has exactly one
// weighted out-edge, so the only genuine Bernoulli variables of a WD graph
// are its probabilistic rule instantiations (rule nodes with out-weight
// < 1). Two monotone DNFs over those variables matter:
//
//   - The reachability lineage of a pair (s, t): one clause per simple
//     s→t path, listing the probabilistic rule nodes the path crosses.
//     Pr[the DNF holds] is exactly Pr[s ⇝ t] — the quantity one RR walk
//     samples — because reachability holds iff some simple path has all
//     its (independent) rule variables firing.
//   - The derivation lineage of a single fact t: clauses are the
//     variable sets of t's derivation trees (conjunctive semantics).
//     Pr[the DNF holds] is the query probability of t — the quantity
//     DerivationProbability estimates by Monte Carlo.
//
// Both extractions share a VarTable mapping dense variable ids to rule
// nodes and probabilities, and both are budgeted: lineages are worst-case
// exponential, and callers (the exact tier in internal/cm) fall back to
// sampling when a budget trips.

// ErrLineageBudget reports a lineage that exceeded its extraction budget.
// Callers should treat it as "too hard for the exact tier", not a failure.
var ErrLineageBudget = errors.New("provenance: lineage exceeds extraction budget")

// errRecursiveCone reports a derivation-lineage extraction that hit a
// cycle; derivation DNFs are defined here for non-recursive cones only.
var errRecursiveCone = errors.New("provenance: derivation lineage requires a non-recursive cone")

// DNFBudget caps lineage extraction. The zero value selects defaults
// sized for the exact tier's intended instances (thousands of clauses).
type DNFBudget struct {
	// MaxClauses bounds the total number of clauses extracted (across all
	// sources for ReachabilityLineage, for the single root otherwise).
	MaxClauses int
	// MaxSteps bounds the number of DFS/expansion steps, catching graphs
	// whose path count explodes before the clause cap is reached.
	MaxSteps int
}

func (b DNFBudget) maxClauses() int {
	if b.MaxClauses > 0 {
		return b.MaxClauses
	}
	return 20000
}

func (b DNFBudget) maxSteps() int {
	if b.MaxSteps > 0 {
		return b.MaxSteps
	}
	return 2_000_000
}

// VarTable maps dense lineage variable ids to their WD rule nodes and
// firing probabilities. One table is shared by every clause of a lineage.
type VarTable struct {
	// Probs[i] is the probability of variable i (strictly < 1: weight-1
	// rule instantiations are deterministic and never become variables).
	Probs []float64
	// Nodes[i] is the rule node variable i stands for.
	Nodes []wdgraph.NodeID

	byNode map[wdgraph.NodeID]int32
}

func newVarTable() *VarTable {
	return &VarTable{byNode: map[wdgraph.NodeID]int32{}}
}

// idOf interns the rule node as a variable, returning (-1, false) when the
// node's single out-edge is deterministic (weight >= 1).
func (vt *VarTable) idOf(g *wdgraph.Graph, r wdgraph.NodeID) (int32, bool) {
	if id, ok := vt.byNode[r]; ok {
		return id, true
	}
	outs := g.OutEdges(r)
	if outs.Len() != 1 || outs.W[0] >= 1 {
		return -1, false
	}
	id := int32(len(vt.Probs))
	vt.byNode[r] = id
	vt.Probs = append(vt.Probs, outs.W[0])
	vt.Nodes = append(vt.Nodes, r)
	return id, true
}

// Len returns the number of interned variables.
func (vt *VarTable) Len() int { return len(vt.Probs) }

// ReachLineage is the reachability lineage of one target: for every EDB
// fact with at least one path to the target, the path DNF of the pair.
type ReachLineage struct {
	// Vars is the variable table shared by every clause.
	Vars *VarTable
	// Sources lists the EDB fact nodes reaching the target, in the
	// deterministic order the reverse DFS first discovered them.
	Sources []wdgraph.NodeID
	// Clauses[i] is the normalized path DNF of Sources[i]: each clause a
	// strictly ascending variable-id slice, duplicates and supersets
	// removed. An empty clause (a fully deterministic path) makes the
	// whole DNF true.
	Clauses [][][]int32
	// NumClauses is the total clause count over all sources, after
	// normalization.
	NumClauses int
}

// ReachabilityLineage extracts, for every EDB fact backward-reachable from
// root, the DNF over probabilistic rule instantiations whose truth is
// equivalent to "the fact reaches root in the sampled subgraph". The
// enumeration walks simple reverse paths (reachability is witnessed by a
// simple path, so cycles in recursive cones are skipped, not looped), and
// returns ErrLineageBudget when the budget trips.
func ReachabilityLineage(g *wdgraph.Graph, root wdgraph.NodeID, budget DNFBudget) (*ReachLineage, error) {
	out := &ReachLineage{Vars: newVarTable()}
	raw := map[wdgraph.NodeID][][]int32{}
	maxClauses, maxSteps := budget.maxClauses(), budget.maxSteps()
	steps, clauses := 0, 0

	onPath := make([]bool, g.NumNodes())
	var pathVars []int32

	// Iterative DFS over reverse edges with an explicit frame stack: each
	// frame is a node plus the index of the next in-edge to expand.
	// Frames alternate fact and rule nodes; the probabilistic variable of
	// a rule node joins pathVars for the duration of its frame.
	type frame struct {
		node   wdgraph.NodeID
		ei     int
		pushed bool // this frame added a variable to pathVars
	}
	var walk func(wdgraph.NodeID) error
	walk = func(start wdgraph.NodeID) error {
		stack := []frame{{node: start}}
		onPath[start] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if steps++; steps > maxSteps {
				return ErrLineageBudget
			}
			if f.ei == 0 {
				node := g.Node(f.node)
				if node.Kind == wdgraph.RuleNode {
					if id, ok := out.Vars.idOf(g, f.node); ok {
						pathVars = append(pathVars, id)
						f.pushed = true
					}
				} else if node.EDB {
					// An EDB source: the current pathVars are one clause of
					// its path DNF. EDB facts have no in-edges, so the frame
					// pops right after.
					if clauses++; clauses > maxClauses {
						return ErrLineageBudget
					}
					if _, seen := raw[f.node]; !seen {
						out.Sources = append(out.Sources, f.node)
					}
					raw[f.node] = append(raw[f.node], sortedCopy(pathVars))
				}
			}
			ins := g.InEdges(f.node)
			advanced := false
			for f.ei < ins.Len() {
				next := ins.To[f.ei]
				f.ei++
				if onPath[next] {
					continue // simple paths only; also breaks cycles
				}
				onPath[next] = true
				stack = append(stack, frame{node: next})
				advanced = true
				break
			}
			if advanced {
				continue
			}
			if f.pushed {
				pathVars = pathVars[:len(pathVars)-1]
			}
			onPath[f.node] = false
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	out.Clauses = make([][][]int32, len(out.Sources))
	for i, s := range out.Sources {
		out.Clauses[i] = NormalizeClauses(raw[s])
		out.NumClauses += len(out.Clauses[i])
	}
	return out, nil
}

// DerivationLineage extracts the derivation DNF of the fact at root: the
// disjunction, over root's derivation trees, of the probabilistic rule
// instantiations each tree uses. Pr[DNF] is the conjunctive-semantics
// query probability of the fact. The cone must be non-recursive (a cycle
// returns an error); budgets apply as in ReachabilityLineage.
func DerivationLineage(g *wdgraph.Graph, root wdgraph.NodeID, budget DNFBudget) (*VarTable, [][]int32, error) {
	vt := newVarTable()
	maxClauses, maxSteps := budget.maxClauses(), budget.maxSteps()
	steps := 0
	memo := map[wdgraph.NodeID][][]int32{}
	onStack := make(map[wdgraph.NodeID]bool)

	var dnfOf func(wdgraph.NodeID) ([][]int32, error)
	dnfOf = func(v wdgraph.NodeID) ([][]int32, error) {
		if d, ok := memo[v]; ok {
			return d, nil
		}
		if onStack[v] {
			return nil, errRecursiveCone
		}
		if steps++; steps > maxSteps {
			return nil, ErrLineageBudget
		}
		node := g.Node(v)
		if node.Kind == wdgraph.FactNode && node.EDB {
			d := [][]int32{{}}
			memo[v] = d
			return d, nil
		}
		onStack[v] = true
		defer delete(onStack, v)
		var acc [][]int32
		switch node.Kind {
		case wdgraph.FactNode:
			// OR over the rule instantiations deriving the fact.
			ins := g.InEdges(v)
			for i := 0; i < ins.Len(); i++ {
				d, err := dnfOf(ins.To[i])
				if err != nil {
					return nil, err
				}
				acc = append(acc, d...)
				if len(acc) > maxClauses {
					return nil, ErrLineageBudget
				}
			}
		case wdgraph.RuleNode:
			// AND over the body facts, times the rule's own variable.
			acc = [][]int32{{}}
			if id, ok := vt.idOf(g, v); ok {
				acc = [][]int32{{id}}
			}
			ins := g.InEdges(v)
			for i := 0; i < ins.Len(); i++ {
				d, err := dnfOf(ins.To[i])
				if err != nil {
					return nil, err
				}
				next := make([][]int32, 0, len(acc))
				for _, a := range acc {
					for _, b := range d {
						if steps++; steps > maxSteps {
							return nil, ErrLineageBudget
						}
						next = append(next, unionClause(a, b))
						if len(next) > maxClauses {
							return nil, ErrLineageBudget
						}
					}
				}
				acc = NormalizeClauses(next)
			}
		}
		acc = NormalizeClauses(acc)
		memo[v] = acc
		return acc, nil
	}
	d, err := dnfOf(root)
	if err != nil {
		return nil, nil, err
	}
	return vt, d, nil
}

// NormalizeClauses sorts each clause, removes duplicate variables within a
// clause, then removes duplicate and subsumed clauses (a superset of
// another clause is redundant in a monotone DNF). The result is ordered
// shortest-first, ties lexicographic, so normalization is deterministic.
func NormalizeClauses(clauses [][]int32) [][]int32 {
	norm := make([][]int32, 0, len(clauses))
	seen := map[string]bool{}
	for _, c := range clauses {
		s := sortedCopy(c)
		k := clauseKey(s)
		if seen[k] {
			continue
		}
		seen[k] = true
		norm = append(norm, s)
	}
	sort.Slice(norm, func(i, j int) bool {
		if len(norm[i]) != len(norm[j]) {
			return len(norm[i]) < len(norm[j])
		}
		return clauseLess(norm[i], norm[j])
	})
	// Subsumption: clauses are visited shortest-first, so any clause
	// containing an already-kept clause is redundant.
	kept := norm[:0]
	for _, c := range norm {
		redundant := false
		for _, k := range kept {
			if containsAll(c, k) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	return kept
}

// sortedCopy returns an ascending duplicate-free copy of vars.
func sortedCopy(vars []int32) []int32 {
	out := make([]int32, len(vars))
	copy(out, vars)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// unionClause merges two ascending clauses into a fresh ascending clause.
func unionClause(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// containsAll reports whether ascending clause c contains every variable
// of ascending clause k.
func containsAll(c, k []int32) bool {
	i := 0
	for _, want := range k {
		for i < len(c) && c[i] < want {
			i++
		}
		if i >= len(c) || c[i] != want {
			return false
		}
		i++
	}
	return true
}

func clauseLess(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func clauseKey(c []int32) string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// ClausesString renders a clause set for debugging and test failure
// messages.
func ClausesString(clauses [][]int32) string {
	s := "{"
	for i, c := range clauses {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v", c)
	}
	return s + "}"
}

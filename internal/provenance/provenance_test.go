package provenance_test

import (
	"math"
	"strings"
	"testing"

	"contribmax/internal/db"
	"contribmax/internal/parser"
	"contribmax/internal/provenance"
	"contribmax/internal/wdgraph"
)

func build(t *testing.T, programSrc, factsSrc string) (*wdgraph.Graph, *db.Database) {
	t.Helper()
	prog, err := parser.ParseProgram(programSrc)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := parser.ParseFacts(factsSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase()
	for _, f := range facts {
		d.MustInsertAtom(f)
	}
	g, _, err := wdgraph.Build(prog, d, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

func factNode(t *testing.T, g *wdgraph.Graph, d *db.Database, atom string) wdgraph.NodeID {
	t.Helper()
	a, err := parser.ParseAtom(atom)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := d.InternAtom(a)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := g.FactID(a.Predicate, tup)
	if !ok {
		t.Fatalf("fact %s not in graph", atom)
	}
	return id
}

func TestBestDerivationChain(t *testing.T) {
	g, d := build(t, `
		0.6 r1: tc(X, Y) :- e(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, c).`)
	tree, ok := provenance.BestDerivation(g, factNode(t, g, d, "tc(a, c)"))
	if !ok {
		t.Fatal("no derivation")
	}
	// Only derivation: r2 over r1(a,b), r1(b,c): 0.5 * 0.6 * 0.6 = 0.18.
	if math.Abs(tree.Prob-0.18) > 1e-12 {
		t.Errorf("prob = %g, want 0.18", tree.Prob)
	}
	if tree.Rule != "r2" || len(tree.Children) != 2 {
		t.Errorf("tree = %+v", tree)
	}
	if tree.Size() != 5 {
		t.Errorf("size = %d, want 5", tree.Size())
	}
	rendered := tree.Render(d.Symbols())
	for _, want := range []string{"tc(a, c)", "r2", "e(a, b)", "e(b, c)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendering missing %q:\n%s", want, rendered)
		}
	}
}

func TestBestDerivationPicksBetterBranch(t *testing.T) {
	// p(a) derivable via cheap (0.2) or expensive (0.9*0.9=0.81) path.
	g, d := build(t, `
		0.2 low:  p(X) :- direct(X).
		0.9 mid:  q(X) :- base(X).
		0.9 high: p(X) :- q(X).
	`, `direct(a). base(a).`)
	tree, ok := provenance.BestDerivation(g, factNode(t, g, d, "p(a)"))
	if !ok {
		t.Fatal("no derivation")
	}
	if tree.Rule != "high" {
		t.Errorf("best rule = %s, want high", tree.Rule)
	}
	if math.Abs(tree.Prob-0.81) > 1e-12 {
		t.Errorf("prob = %g, want 0.81", tree.Prob)
	}
}

func TestBestDerivationHandlesCycles(t *testing.T) {
	// Symmetric rules create a cycle between p(a,b) and p(b,a); the best
	// derivation must bottom out at the edb, not loop.
	g, d := build(t, `
		0.9 base: p(X, Y) :- e(X, Y).
		0.8 sym:  p(X, Y) :- p(Y, X).
	`, `e(a, b).`)
	tree, ok := provenance.BestDerivation(g, factNode(t, g, d, "p(b, a)"))
	if !ok {
		t.Fatal("no derivation")
	}
	// p(b,a) best: sym over base(a,b): 0.8*0.9 = 0.72.
	if math.Abs(tree.Prob-0.72) > 1e-12 {
		t.Errorf("prob = %g, want 0.72", tree.Prob)
	}
	if tree.Rule != "sym" || tree.Children[0].Rule != "base" {
		t.Errorf("tree = %s", tree.Render(d.Symbols()))
	}
}

func TestBestDerivationUnderivable(t *testing.T) {
	g, d := build(t, `
		0.5 r1: p(X) :- e(X), trigger(X).
	`, `e(a). other(b).`)
	// p(a) needs trigger(a), which does not exist; the graph has no p(a)
	// node at all — test Support on the edb instead and the not-found path
	// via a fact with no derivation: use e(a), an edb leaf.
	id := factNode(t, g, d, "e(a)")
	tree, ok := provenance.BestDerivation(g, id)
	if !ok || tree.Rule != "" || tree.Prob != 1 {
		t.Errorf("edb leaf derivation = %+v ok=%v", tree, ok)
	}
}

func TestSupport(t *testing.T) {
	g, d := build(t, `
		1.0 r1: tc(X, Y) :- e(X, Y).
		0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, c). e(x, y).`)
	sup := provenance.Support(g, factNode(t, g, d, "tc(a, c)"))
	if len(sup) != 2 {
		t.Fatalf("support = %d facts, want 2", len(sup))
	}
	for _, id := range sup {
		n := g.Node(id)
		if !n.EDB || n.Pred != "e" {
			t.Errorf("support contains non-edb node %v", n)
		}
	}
}

func TestBestDerivationSharedSubtreeMultiplicity(t *testing.T) {
	// tc(a,a) via r2(tc(a,b), tc(b,a))... with e(a,b), e(b,a): the two
	// children are distinct derivations; check per-occurrence product.
	g, d := build(t, `
		0.5 r1: tc(X, Y) :- e(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, a).`)
	tree, ok := provenance.BestDerivation(g, factNode(t, g, d, "tc(a, a)"))
	if !ok {
		t.Fatal("no derivation")
	}
	// 0.5 (r2) * 0.5 (r1 ab) * 0.5 (r1 ba) = 0.125.
	if math.Abs(tree.Prob-0.125) > 1e-12 {
		t.Errorf("prob = %g, want 0.125", tree.Prob)
	}
}

func TestTopKDerivationsOrderedAndComplete(t *testing.T) {
	// p(a) has three derivations with scores 0.81 (via q), 0.2 (direct),
	// and 0.9*0.3 = 0.27 (via r).
	g, d := build(t, `
		0.2  low:  p(X) :- direct(X).
		0.9  mid:  q(X) :- base(X).
		0.9  high: p(X) :- q(X).
		0.3  rr:   r(X) :- base(X).
		0.9  alt:  p(X) :- r(X).
	`, `direct(a). base(a).`)
	root := factNode(t, g, d, "p(a)")
	trees := provenance.TopKDerivations(g, root, 5, 0)
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(trees))
	}
	want := []float64{0.81, 0.27, 0.2}
	for i, w := range want {
		if math.Abs(trees[i].Prob-w) > 1e-12 {
			t.Errorf("tree %d prob = %g, want %g", i, trees[i].Prob, w)
		}
	}
	// First tree must match BestDerivation.
	best, _ := provenance.BestDerivation(g, root)
	if trees[0].Prob != best.Prob || trees[0].Rule != best.Rule {
		t.Errorf("top-1 (%s, %g) != best (%s, %g)", trees[0].Rule, trees[0].Prob, best.Rule, best.Prob)
	}
}

func TestTopKDerivationsK1(t *testing.T) {
	g, d := build(t, `
		0.6 r1: tc(X, Y) :- e(X, Y).
		0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, c).`)
	trees := provenance.TopKDerivations(g, factNode(t, g, d, "tc(a, c)"), 1, 0)
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	if math.Abs(trees[0].Prob-0.18) > 1e-12 {
		t.Errorf("prob = %g, want 0.18", trees[0].Prob)
	}
	if trees[0].Size() != 5 {
		t.Errorf("size = %d", trees[0].Size())
	}
}

func TestTopKDerivationsCyclePruned(t *testing.T) {
	// Symmetric rules: infinitely many derivations exist in principle; the
	// cycle-free enumeration returns the finitely many acyclic ones, best
	// first.
	g, d := build(t, `
		0.9 base: p(X, Y) :- e(X, Y).
		0.8 sym:  p(X, Y) :- p(Y, X).
	`, `e(a, b).`)
	trees := provenance.TopKDerivations(g, factNode(t, g, d, "p(a, b)"), 10, 0)
	if len(trees) != 1 {
		t.Fatalf("got %d acyclic trees, want 1 (base only)", len(trees))
	}
	if trees[0].Rule != "base" || math.Abs(trees[0].Prob-0.9) > 1e-12 {
		t.Errorf("tree = (%s, %g)", trees[0].Rule, trees[0].Prob)
	}
}

func TestTopKDerivationsUnderivable(t *testing.T) {
	g, d := build(t, `0.5 r1: p(X) :- e(X).`, `e(a).`)
	fb := factNode(t, g, d, "e(a)")
	// e(a) is an edb leaf: one trivial tree.
	trees := provenance.TopKDerivations(g, fb, 3, 0)
	if len(trees) != 1 || trees[0].Prob != 1 {
		t.Errorf("edb trees = %v", trees)
	}
	if got := provenance.TopKDerivations(g, fb, 0, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
}

func TestTopKMonotoneScores(t *testing.T) {
	g, d := build(t, `
		0.7 r1: tc(X, Y) :- e(X, Y).
		0.6 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`, `e(a, b). e(b, c). e(a, c). e(c, d). e(b, d).`)
	trees := provenance.TopKDerivations(g, factNode(t, g, d, "tc(a, d)"), 8, 0)
	if len(trees) < 3 {
		t.Fatalf("trees = %d, want several", len(trees))
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Prob > trees[i-1].Prob+1e-12 {
			t.Errorf("scores not non-increasing at %d: %g > %g", i, trees[i].Prob, trees[i-1].Prob)
		}
	}
}

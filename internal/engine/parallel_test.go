package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/obs"
)

// tcFixture builds a transitive-closure workload large enough to cross the
// parallel engine's small-round sequential fallback: a directed ring with
// chords over n nodes.
func tcFixture(t *testing.T, n int) (*ast.Program, func() *db.Database) {
	t.Helper()
	prog := mustProgram(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
		reach(X) :- path(src, X).
	`)
	var facts strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&facts, "edge(n%d, n%d).\n", i, (i+1)%n)
		fmt.Fprintf(&facts, "edge(n%d, n%d).\n", i, (i+7)%n)
	}
	fmt.Fprintf(&facts, "edge(src, n0).\n")
	src := facts.String()
	return prog, func() *db.Database { return mustFacts(t, src) }
}

// evalSnapshot captures everything the determinism contract covers: every
// relation's full tuple sequence in id order, the Stats, and the exact
// derivation stream (as rendered strings, including tuple ids and HeadNew).
func evalSnapshot(t *testing.T, prog *ast.Program, d *db.Database, opts engine.Options) (string, engine.Stats) {
	t.Helper()
	var sb strings.Builder
	opts.Listener = func(dv engine.Derivation) {
		fmt.Fprintf(&sb, "d %d %s/%d new=%t [", dv.RuleIndex, dv.Head.Rel.Name(), dv.Head.ID, dv.HeadNew)
		for _, b := range dv.Body {
			fmt.Fprintf(&sb, " %s/%d", b.Rel.Name(), b.ID)
		}
		sb.WriteString(" ]\n")
	}
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	stats, err := eng.Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, name := range d.RelationNames() {
		rel, _ := d.Lookup(name)
		fmt.Fprintf(&sb, "r %s", name)
		for id := 0; id < rel.Len(); id++ {
			fmt.Fprintf(&sb, " %v", rel.Tuple(db.TupleID(id)))
		}
		sb.WriteString("\n")
	}
	return sb.String(), stats
}

// TestParallelByteIdentical pins the tentpole contract directly at the
// engine API: relations (tuple ids included), Stats, and the derivation
// stream are byte-identical across Parallelism levels.
func TestParallelByteIdentical(t *testing.T) {
	prog, freshDB := tcFixture(t, 60)
	wantSnap, wantStats := evalSnapshot(t, prog, freshDB(), engine.Options{})
	if wantStats.NewFacts == 0 || wantStats.Rounds < 3 {
		t.Fatalf("fixture too small to be meaningful: %+v", wantStats)
	}
	for _, par := range []int{0, 1, 2, 4, 8} {
		snap, stats := evalSnapshot(t, prog, freshDB(), engine.Options{Parallelism: par})
		if snap != wantSnap {
			t.Errorf("Parallelism=%d: snapshot diverges from sequential", par)
		}
		stats.Elapsed = wantStats.Elapsed
		if fmt.Sprintf("%+v", stats) != fmt.Sprintf("%+v", wantStats) {
			t.Errorf("Parallelism=%d: stats %+v, want %+v", par, stats, wantStats)
		}
	}
}

// TestParallelStratifiedNegation exercises the parallel path across
// stratum boundaries with negation and built-ins in the mix.
func TestParallelStratifiedNegation(t *testing.T) {
	prog := mustProgram(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
		sep(X, Y) :- node(X), node(Y), not path(X, Y), neq(X, Y).
	`)
	var facts strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&facts, "node(n%d).\n", i)
		if i%3 != 0 {
			fmt.Fprintf(&facts, "edge(n%d, n%d).\n", i, (i+1)%40)
		}
	}
	src := facts.String()
	want, _ := evalSnapshot(t, prog, mustFacts(t, src), engine.Options{})
	for _, par := range []int{2, 8} {
		got, _ := evalSnapshot(t, prog, mustFacts(t, src), engine.Options{Parallelism: par})
		if got != want {
			t.Errorf("Parallelism=%d: snapshot diverges on stratified program", par)
		}
	}
}

// countGate counts calls; it deliberately does NOT implement
// ParallelSafeGate, so the engine must fall back to sequential evaluation
// (the count below would race otherwise, and -race would catch it).
type countGate struct{ calls int }

func (g *countGate) ShouldFire(ruleIndex int, vars []db.Sym) bool {
	g.calls++
	return g.calls%2 == 0
}

// TestParallelUnsafeGateFallsBackSequential pins the safety valve: a gate
// without the ParallelSafeGate marker forces sequential evaluation even at
// high Parallelism, with identical results to an explicit sequential run.
func TestParallelUnsafeGateFallsBackSequential(t *testing.T) {
	prog, freshDB := tcFixture(t, 60)
	seqGate := &countGate{}
	want, wantStats := evalSnapshot(t, prog, freshDB(), engine.Options{Gate: seqGate})
	parGate := &countGate{}
	got, gotStats := evalSnapshot(t, prog, freshDB(), engine.Options{Gate: parGate, Parallelism: 8})
	if got != want {
		t.Error("unsafe gate at Parallelism=8 diverges from sequential")
	}
	if parGate.calls != seqGate.calls {
		t.Errorf("gate calls %d, want %d", parGate.calls, seqGate.calls)
	}
	if gotStats.Suppressed != wantStats.Suppressed || gotStats.Suppressed == 0 {
		t.Errorf("suppressed %d, want %d (nonzero)", gotStats.Suppressed, wantStats.Suppressed)
	}
}

// hashEveryOther is a minimal ParallelSafeGate: order-independent (a pure
// function of the bound variables), so it is legal under parallelism.
type hashEveryOther struct{}

func (hashEveryOther) ShouldFire(ruleIndex int, vars []db.Sym) bool {
	h := uint64(ruleIndex+1) * 0x9e3779b97f4a7c15
	for _, v := range vars {
		h = (h ^ uint64(uint32(v))) * 0x100000001b3
	}
	return h&1 == 0
}
func (hashEveryOther) ParallelSafeFireGate() {}

// TestParallelSafeGateRunsParallel verifies a conforming gate keeps the
// parallel path engaged and suppression totals identical to sequential.
func TestParallelSafeGateRunsParallel(t *testing.T) {
	prog, freshDB := tcFixture(t, 60)
	want, wantStats := evalSnapshot(t, prog, freshDB(), engine.Options{Gate: hashEveryOther{}})
	reg := obs.NewRegistry()
	got, gotStats := evalSnapshot(t, prog, freshDB(), engine.Options{Gate: hashEveryOther{}, Parallelism: 4, Obs: reg})
	if got != want {
		t.Error("safe gate at Parallelism=4 diverges from sequential")
	}
	if gotStats.Suppressed != wantStats.Suppressed || gotStats.Suppressed == 0 {
		t.Errorf("suppressed %d, want %d (nonzero)", gotStats.Suppressed, wantStats.Suppressed)
	}
	if reg.Counter(obs.EngineBatches).Value() == 0 {
		t.Error("engine.batches is zero: parallel path never engaged")
	}
}

// TestParallelObsMetrics checks the new parallel-round metrics appear for
// a big enough workload and stay silent for sequential runs.
func TestParallelObsMetrics(t *testing.T) {
	prog, freshDB := tcFixture(t, 60)
	reg := obs.NewRegistry()
	if _, _ = evalSnapshot(t, prog, freshDB(), engine.Options{Parallelism: 4, Obs: reg}); reg.Counter(obs.EngineBatches).Value() == 0 {
		t.Fatal("engine.batches not incremented under Parallelism=4")
	}
	if reg.Histogram(obs.EngineWorkerBusy).Snapshot().Count == 0 {
		t.Error("engine.worker_busy not observed")
	}
	if reg.Histogram(obs.EngineMergeWait).Snapshot().Count == 0 {
		t.Error("engine.merge_wait not observed")
	}
	seqReg := obs.NewRegistry()
	_, _ = evalSnapshot(t, prog, freshDB(), engine.Options{Obs: seqReg})
	if seqReg.Counter(obs.EngineBatches).Value() != 0 {
		t.Error("engine.batches incremented on a sequential run")
	}
}

// TestParallelSmallRoundFallback: a tiny program never crosses parMinWork,
// so parallel options must still work (and match) via the fallback.
func TestParallelSmallRoundFallback(t *testing.T) {
	prog := mustProgram(t, `
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
	`)
	src := "edge(a, b).\nedge(b, c).\nedge(c, d).\n"
	want, _ := evalSnapshot(t, prog, mustFacts(t, src), engine.Options{})
	got, _ := evalSnapshot(t, prog, mustFacts(t, src), engine.Options{Parallelism: 8})
	if got != want {
		t.Error("small-round fallback diverges from sequential")
	}
}

package engine

// PlanOrders exposes each compiled rule's per-delta join orders so external
// tests can assert the planner path reproduces the legacy greedy order
// exactly — the property that keeps the derivation stream byte-identical.
func (e *Engine) PlanOrders() [][][]int {
	out := make([][][]int, len(e.rules))
	for i, cr := range e.rules {
		out[i] = cr.plans
	}
	return out
}

// Package difftest is the engine's differential test harness: it evaluates
// one program twice — sequentially and under parallel evaluation — and
// asserts the observable outputs are byte-identical, which is the
// determinism contract engine.Options.Parallelism promises (relations with
// tuple ids, Stats, and the derivation stream; see docs/PERFORMANCE.md).
//
// The package is used three ways: property-based tests over randomly
// generated stratified programs (Generate), corpus tests over the
// repository's example programs (LoadCorpus), and the FuzzEvalProgram fuzz
// target in the engine package.
package difftest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/parser"
	"contribmax/internal/planner"
)

// Spec is one differential test case: a program plus the extensional facts
// to evaluate it over. Fresh databases are built per run, so evaluations
// never share derived state.
type Spec struct {
	Prog  *ast.Program
	Facts []ast.Atom
}

// NewDB builds a fresh database holding the spec's facts.
func (s *Spec) NewDB() (*db.Database, error) {
	d := db.NewDatabase()
	for _, f := range s.Facts {
		if _, _, _, err := d.InsertAtom(f); err != nil {
			return nil, fmt.Errorf("difftest: insert %s: %w", f, err)
		}
	}
	return d, nil
}

// Snapshot evaluates prog over d and renders everything the determinism
// contract covers into one comparable string: the exact derivation stream
// (rule index, head relation/id/novelty, body fact refs, in listener
// order), every touched relation's full tuple sequence in id order, and
// the Stats with the wall-clock field zeroed. opts.Listener is replaced by
// the recording listener. A run error is folded into the snapshot (after
// the output produced so far), so two runs that fail identically still
// compare equal — and a divergence in *when* they fail is caught.
//
// maxDerivations > 0 bounds the run: once the stream reaches the budget
// the run is canceled at the next round boundary. Both the sequential and
// the parallel engine check cancellation at the same boundaries and
// deliver identical streams, so a budgeted run still snapshots
// identically at every Parallelism level.
func Snapshot(prog *ast.Program, d *db.Database, opts engine.Options, maxDerivations int) string {
	return snapshot(prog, d, opts, maxDerivations, false)
}

// SnapshotPlanned is Snapshot with rule compilation routed through
// engine.NewPlanned (a fresh per-call planner, no shared cache). The
// planner preserves the engine's join order, so for every program this must
// produce a byte-identical snapshot to Snapshot — ComparePlanModes asserts
// exactly that.
func SnapshotPlanned(prog *ast.Program, d *db.Database, opts engine.Options, maxDerivations int) string {
	return snapshot(prog, d, opts, maxDerivations, true)
}

func snapshot(prog *ast.Program, d *db.Database, opts engine.Options, maxDerivations int, planned bool) string {
	var sb strings.Builder
	var ctx context.Context
	var cancel context.CancelFunc
	if maxDerivations > 0 {
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		opts.Context = ctx
	}
	derivations := 0
	opts.Listener = func(dv engine.Derivation) {
		fmt.Fprintf(&sb, "d %d %s/%d new=%t [", dv.RuleIndex, dv.Head.Rel.Name(), dv.Head.ID, dv.HeadNew)
		for _, b := range dv.Body {
			fmt.Fprintf(&sb, " %s/%d", b.Rel.Name(), b.ID)
		}
		sb.WriteString(" ]\n")
		derivations++
		if maxDerivations > 0 && derivations == maxDerivations {
			cancel()
		}
	}
	var eng *engine.Engine
	var err error
	if planned {
		eng, err = engine.NewPlanned(prog, d, planner.New(nil))
	} else {
		eng, err = engine.New(prog, d)
	}
	if err != nil {
		return "new error: " + err.Error()
	}
	stats, runErr := eng.Run(opts)
	for _, name := range d.RelationNames() {
		rel, ok := d.Lookup(name)
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "r %s", name)
		for id := 0; id < rel.Len(); id++ {
			fmt.Fprintf(&sb, " %v", rel.Tuple(db.TupleID(id)))
		}
		sb.WriteString("\n")
	}
	stats.Elapsed = 0
	fmt.Fprintf(&sb, "stats %+v\n", stats)
	if runErr != nil {
		fmt.Fprintf(&sb, "run error: %v\n", runErr)
	}
	return sb.String()
}

// CompareParallel evaluates the spec sequentially and at each given
// Parallelism level and returns a descriptive error on the first
// divergence (nil when all levels agree). base supplies the non-parallel
// options (gate, round budget, ...); its Listener and Context are managed
// by Snapshot. maxDerivations is forwarded to Snapshot.
func CompareParallel(s *Spec, base engine.Options, maxDerivations int, levels []int) error {
	d, err := s.NewDB()
	if err != nil {
		return err
	}
	base.Parallelism = 0
	want := Snapshot(s.Prog, d, base, maxDerivations)
	for _, par := range levels {
		d, err := s.NewDB()
		if err != nil {
			return err
		}
		opts := base
		opts.Parallelism = par
		got := Snapshot(s.Prog, d, opts, maxDerivations)
		if got != want {
			return fmt.Errorf("difftest: Parallelism=%d diverges from sequential:\n%s", par, firstDiff(want, got))
		}
	}
	return nil
}

// firstDiff renders the first differing line of two snapshots.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  sequential: %q\n  parallel:   %q", i+1, wl, gl)
		}
	}
	return "snapshots differ only in length"
}

// CorpusEntry is one example program resolved from disk.
type CorpusEntry struct {
	Path string
	Spec *Spec
}

// LoadCorpus walks the given roots for .dl programs, resolving each
// program's fact files from its "%! facts:" directives (paths relative to
// the program file). Programs that fail to parse are skipped — corpus
// directories may hold intentionally broken analyzer fixtures — but a
// fact-file directive that names an unreadable file is an error, since
// silently dropping facts would hollow out the differential assertion.
func LoadCorpus(roots ...string) ([]CorpusEntry, error) {
	var out []CorpusEntry
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || filepath.Ext(path) != ".dl" {
				return err
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			prog, err := parser.ParseProgram(string(src))
			if err != nil {
				return nil // analyzer fixtures etc.
			}
			spec := &Spec{Prog: prog}
			for _, rel := range factsDirectives(string(src)) {
				fp := rel
				if !filepath.IsAbs(fp) {
					fp = filepath.Join(filepath.Dir(path), fp)
				}
				factSrc, err := os.ReadFile(fp)
				if err != nil {
					return fmt.Errorf("difftest: %s: %w", path, err)
				}
				// ParseProbFacts accepts both plain and
				// probability-annotated fact files; the engine grounds the
				// program identically either way, so weights are dropped.
				facts, err := parser.ParseProbFacts(string(factSrc))
				if err != nil {
					return fmt.Errorf("difftest: %s: %w", path, err)
				}
				for _, f := range facts {
					spec.Facts = append(spec.Facts, f.Atom)
				}
			}
			out = append(out, CorpusEntry{Path: path, Spec: spec})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// factsDirectives extracts the values of "%! facts:" comment directives.
func factsDirectives(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "%!") {
			continue
		}
		key, value, ok := strings.Cut(strings.TrimSpace(trimmed[2:]), ":")
		if ok && strings.TrimSpace(key) == "facts" {
			out = append(out, strings.Fields(value)...)
		}
	}
	return out
}

package difftest_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"contribmax/internal/engine"
	"contribmax/internal/engine/difftest"
)

var parLevels = []int{2, 4, 8}

// TestGeneratedProgramsParallelIdentical is the property-based half of the
// harness: random stratified programs with random databases must evaluate
// byte-identically at every Parallelism level.
func TestGeneratedProgramsParallelIdentical(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0xd1f))
		spec := difftest.Generate(rng)
		// MaxRounds keeps pathological recursive closures bounded; the
		// cutoff fires at the same round for every level, so the
		// comparison stays exact.
		if err := difftest.CompareParallel(spec, engine.Options{MaxRounds: 64}, 0, parLevels); err != nil {
			t.Errorf("seed %d: %v\nprogram:\n%s", seed, err, spec.Prog)
		}
	}
}

// TestGeneratedProgramsWithBudget exercises the derivation-budget path the
// fuzz target depends on: mid-run cancellation must also be level-exact.
func TestGeneratedProgramsWithBudget(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0xb4d6e7))
		spec := difftest.Generate(rng)
		if err := difftest.CompareParallel(spec, engine.Options{MaxRounds: 64}, 500, parLevels); err != nil {
			t.Errorf("seed %d: %v\nprogram:\n%s", seed, err, spec.Prog)
		}
	}
}

// TestExamplesCorpusParallelIdentical runs the repository's real example
// programs (with their fact files) through the same differential check.
func TestExamplesCorpusParallelIdentical(t *testing.T) {
	entries, err := difftest.LoadCorpus("../../../examples", "../../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if strings.Contains(e.Path, "analysis") {
			continue // analyzer fixtures: parseable ones may be unstratifiable etc.
		}
		if err := difftest.CompareParallel(e.Spec, engine.Options{}, 0, parLevels); err != nil {
			t.Errorf("%s: %v", e.Path, err)
		}
		ran++
	}
	if ran < 3 {
		t.Fatalf("only %d corpus programs ran; expected the quickstart/uncertain/trade programs at least", ran)
	}
}

// TestGeneratedProgramsPlanEquivalent is the planner's differential
// battery: random stratified programs (negation and built-ins included)
// must evaluate byte-identically with planning on — sequentially and in
// parallel — and reach the same fixpoint as strict written-order
// evaluation.
func TestGeneratedProgramsPlanEquivalent(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0x9a7))
		spec := difftest.Generate(rng)
		if err := difftest.ComparePlanModes(spec, engine.Options{MaxRounds: 64}, 0, parLevels); err != nil {
			t.Errorf("seed %d: %v\nprogram:\n%s", seed, err, spec.Prog)
		}
	}
}

// TestMagicProgramsPlanEquivalent runs the same battery over Magic-Sets
// output — the adorned, guard-heavy rule shape the CM variants actually
// evaluate and the one the plan cache is keyed for.
func TestMagicProgramsPlanEquivalent(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0x3a61c))
		spec, err := difftest.GenerateMagic(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := difftest.ComparePlanModes(spec, engine.Options{MaxRounds: 64}, 0, parLevels); err != nil {
			t.Errorf("seed %d: %v\nprogram:\n%s", seed, err, spec.Prog)
		}
	}
}

// TestExamplesCorpusPlanEquivalent runs the repository's example programs
// through the plan-mode differential check.
func TestExamplesCorpusPlanEquivalent(t *testing.T) {
	entries, err := difftest.LoadCorpus("../../../examples", "../../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if strings.Contains(e.Path, "analysis") {
			continue
		}
		if err := difftest.ComparePlanModes(e.Spec, engine.Options{}, 0, []int{4}); err != nil {
			t.Errorf("%s: %v", e.Path, err)
		}
		ran++
	}
	if ran < 3 {
		t.Fatalf("only %d corpus programs ran", ran)
	}
}

// TestGenerateDeterministic pins that the generator is a pure function of
// its rng, so failing seeds reported by CI reproduce locally.
func TestGenerateDeterministic(t *testing.T) {
	a := difftest.Generate(rand.New(rand.NewPCG(7, 7)))
	b := difftest.Generate(rand.New(rand.NewPCG(7, 7)))
	if a.Prog.String() != b.Prog.String() || len(a.Facts) != len(b.Facts) {
		t.Error("same rng state generated different specs")
	}
}

// TestGeneratorProducesInterestingPrograms guards against the generator
// silently degenerating: across a window of seeds it must produce
// recursion, negation, built-ins, and programs whose evaluation crosses
// the parallel engine's small-round threshold.
func TestGeneratorProducesInterestingPrograms(t *testing.T) {
	var recursive, negated, builtin, nontrivial int
	for seed := 0; seed < 40; seed++ {
		spec := difftest.Generate(rand.New(rand.NewPCG(uint64(seed), 0xd1f)))
		if spec.Prog.IsRecursive() {
			recursive++
		}
		if spec.Prog.HasNegation() {
			negated++
		}
		for _, r := range spec.Prog.Rules {
			for _, a := range r.Body {
				if a.Predicate == "eq" || a.Predicate == "neq" || a.Predicate == "lt" ||
					a.Predicate == "lte" || a.Predicate == "gt" || a.Predicate == "gte" {
					builtin++
				}
			}
		}
		d, err := spec.NewDB()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(spec.Prog, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		stats, err := eng.Run(engine.Options{MaxRounds: 64})
		if err != nil && !strings.Contains(err.Error(), "MaxRounds") {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.NewFacts > 300 {
			nontrivial++
		}
	}
	if recursive == 0 || negated == 0 || builtin == 0 {
		t.Errorf("generator coverage degenerated: recursive=%d negated=%d builtin=%d", recursive, negated, builtin)
	}
	if nontrivial == 0 {
		t.Error("no generated program derived > 300 facts; parallel path may never engage")
	}
}

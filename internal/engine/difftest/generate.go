package difftest

import (
	"fmt"
	"math/rand/v2"

	"contribmax/internal/ast"
)

// Generate builds a random stratified, safe datalog program with a random
// extensional database. Construction is correct by design:
//
//   - predicates are organized in layers: layer 0 is extensional, every
//     idb layer's rules take positive body atoms from any layer up to and
//     including their own (so same-layer recursion happens) and negated
//     atoms only from strictly lower layers — hence stratifiable;
//   - head, negated, and built-in arguments draw their variables from the
//     positive body's bound variables — hence safe and range-restricted;
//   - bodies are variable chains (each atom after the first reuses an
//     already-bound variable), so joins stay selective instead of
//     exploding into cross products.
//
// prog.Validate is still asserted as a backstop against generator bugs.
// The same rng state always yields the same spec.
func Generate(rng *rand.Rand) *Spec {
	g := &generator{rng: rng}
	// Constant pool: small pools make dense recursive closures (big
	// rounds), large pools make sparse ones; cover both.
	nConsts := 3 + rng.IntN(8)
	g.consts = make([]string, nConsts)
	for i := range g.consts {
		g.consts[i] = fmt.Sprintf("c%d", i)
	}

	// Layer 0: extensional predicates. e0 is always binary so transitive
	// rules have something to close over.
	nEDB := 1 + rng.IntN(3)
	for i := 0; i < nEDB; i++ {
		arity := 1 + rng.IntN(2)
		if i == 0 {
			arity = 2
		}
		g.layers = append(g.layers, predSig{name: fmt.Sprintf("e%d", i), arity: arity, layer: 0})
	}
	// IDB layers.
	nLayers := 1 + rng.IntN(3)
	for l := 1; l <= nLayers; l++ {
		nPreds := 1 + rng.IntN(2)
		for i := 0; i < nPreds; i++ {
			g.layers = append(g.layers, predSig{name: fmt.Sprintf("p%d_%d", l, i), arity: 1 + rng.IntN(2), layer: l})
		}
	}

	prog := ast.NewProgram()
	ruleN := 0
	for _, head := range g.layers {
		if head.layer == 0 {
			continue
		}
		// Every idb predicate starts with a copy rule from a lower layer,
		// so all layers actually populate; binary predicates often get a
		// transitive rule, the recursive-closure workhorse that drives
		// round counts and delta sizes up.
		prog.Add(g.copyRule(head, ruleN))
		ruleN++
		if head.arity == 2 && rng.IntN(10) < 6 {
			prog.Add(g.transRule(head, ruleN))
			ruleN++
		}
		nRules := g.rng.IntN(3)
		for r := 0; r < nRules; r++ {
			prog.Add(g.rule(head, ruleN))
			ruleN++
		}
	}
	if err := prog.Validate(); err != nil {
		// Correct-by-construction: a failure here is a generator bug, and
		// panicking surfaces it with the offending program attached.
		panic(fmt.Sprintf("difftest: generated invalid program: %v\n%s", err, prog))
	}

	spec := &Spec{Prog: prog}
	for _, p := range g.layers {
		if p.layer != 0 {
			continue
		}
		nFacts := 10 + rng.IntN(70)
		for i := 0; i < nFacts; i++ {
			terms := make([]ast.Term, p.arity)
			for j := range terms {
				terms[j] = ast.C(g.consts[rng.IntN(len(g.consts))])
			}
			spec.Facts = append(spec.Facts, ast.NewAtom(p.name, terms...))
		}
	}
	return spec
}

type predSig struct {
	name  string
	arity int
	layer int
}

type generator struct {
	rng    *rand.Rand
	consts []string
	layers []predSig
}

func (g *generator) pickPred(maxLayer int) predSig {
	var pool []predSig
	for _, p := range g.layers {
		if p.layer <= maxLayer {
			pool = append(pool, p)
		}
	}
	return pool[g.rng.IntN(len(pool))]
}

var builtins = []string{"eq", "neq", "lt", "lte", "gt", "gte"}

// copyRule populates head from a strictly lower layer:
// head(V0, ..) :- src(V0, ..), reusing V0 for head positions the source's
// arity cannot cover.
func (g *generator) copyRule(head predSig, n int) ast.Rule {
	src := g.pickPred(head.layer - 1)
	srcTerms := make([]ast.Term, src.arity)
	for i := range srcTerms {
		srcTerms[i] = ast.V(fmt.Sprintf("V%d", i))
	}
	headTerms := make([]ast.Term, head.arity)
	for i := range headTerms {
		if i < src.arity {
			headTerms[i] = ast.V(fmt.Sprintf("V%d", i))
		} else {
			headTerms[i] = ast.V("V0")
		}
	}
	return ast.NewRule(fmt.Sprintf("g%d", n), 1.0,
		ast.NewAtom(head.name, headTerms...), ast.NewAtom(src.name, srcTerms...))
}

// transRule closes a binary head over a random binary step relation:
// head(X, Z) :- head(X, Y), step(Y, Z).
func (g *generator) transRule(head predSig, n int) ast.Rule {
	step := head
	var binary []predSig
	for _, p := range g.layers {
		if p.layer <= head.layer && p.arity == 2 {
			binary = append(binary, p)
		}
	}
	if len(binary) > 0 {
		step = binary[g.rng.IntN(len(binary))]
	}
	prob := 1.0
	if g.rng.IntN(2) == 0 {
		prob = 0.3 + 0.7*g.rng.Float64()
	}
	return ast.NewRule(fmt.Sprintf("g%d", n), prob,
		ast.NewAtom(head.name, ast.V("X"), ast.V("Z")),
		ast.NewAtom(head.name, ast.V("X"), ast.V("Y")),
		ast.NewAtom(step.name, ast.V("Y"), ast.V("Z")))
}

// rule generates one safe rule for the given head predicate.
func (g *generator) rule(head predSig, n int) ast.Rule {
	rng := g.rng
	var body []ast.Atom
	var bound []string
	freshVar := func() string {
		v := fmt.Sprintf("V%d", len(bound))
		bound = append(bound, v)
		return v
	}
	boundVar := func() string { return bound[rng.IntN(len(bound))] }
	// term for a positive body atom: chain through a bound variable,
	// introduce a fresh one, or pin a constant.
	bodyTerm := func() ast.Term {
		switch {
		case len(bound) > 0 && rng.IntN(10) < 5:
			return ast.V(boundVar())
		case rng.IntN(10) < 8:
			return ast.V(freshVar())
		default:
			return ast.C(g.consts[rng.IntN(len(g.consts))])
		}
	}
	// term for heads, negated atoms, and built-ins: bound variables only
	// (plus constants), preserving safety.
	safeTerm := func() ast.Term {
		if len(bound) > 0 && rng.IntN(10) < 8 {
			return ast.V(boundVar())
		}
		return ast.C(g.consts[rng.IntN(len(g.consts))])
	}
	atomOf := func(p predSig, term func() ast.Term) ast.Atom {
		terms := make([]ast.Term, p.arity)
		for i := range terms {
			terms[i] = term()
		}
		return ast.NewAtom(p.name, terms...)
	}

	nPos := 1 + rng.IntN(3)
	for i := 0; i < nPos; i++ {
		p := g.pickPred(head.layer)
		a := atomOf(p, bodyTerm)
		if i > 0 && len(bound) > 0 {
			// Chain: overwrite one random position with an already-bound
			// variable so the join is connected.
			a.Terms[rng.IntN(len(a.Terms))] = ast.V(bound[rng.IntN(len(bound))])
		}
		body = append(body, a)
	}
	// Recompute the bound set from the atoms actually built: the chain
	// overwrite above may have replaced the sole occurrence of a fresh
	// variable, and a head using it would be unsafe.
	seen := map[string]bool{}
	bound = bound[:0]
	for _, a := range body {
		for _, t := range a.Terms {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				bound = append(bound, t.Name)
			}
		}
	}
	if head.layer > 1 && rng.IntN(10) < 3 {
		p := g.pickPred(head.layer - 1)
		neg := atomOf(p, safeTerm)
		neg.Negated = true
		body = append(body, neg)
	}
	if len(bound) > 0 && rng.IntN(10) < 3 {
		b := ast.NewAtom(builtins[rng.IntN(len(builtins))], safeTerm(), safeTerm())
		body = append(body, b)
	}

	headAtom := atomOf(head, safeTerm)
	prob := 1.0
	if rng.IntN(2) == 0 {
		prob = 0.3 + 0.7*rng.Float64()
	}
	return ast.NewRule(fmt.Sprintf("g%d", n), prob, headAtom, body...)
}

package difftest

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/magic"
)

// ComparePlanModes is the planner's differential battery over one spec. It
// asserts two layers of equivalence:
//
//   - stream preservation: the planned engine's snapshot — derivation
//     stream, relation tuple sequences with ids, Stats — is byte-identical
//     to the legacy engine's, sequentially and at every given Parallelism
//     level. This is the strong property that keeps golden fingerprints
//     valid with planning on by default.
//   - fixpoint equivalence against written order: with maxDerivations == 0,
//     the planned fixpoint's relation contents equal (as sets) those of a
//     DisableJoinReorder run. Written order enumerates instantiations in a
//     different sequence, so tuple ids legitimately differ and only the
//     set-level comparison is meaningful. (A mid-run derivation budget
//     aborts at an order-dependent point, so this leg only runs unbudgeted;
//     a MaxRounds bound in base is fine — round boundaries are
//     order-independent.)
//
// base supplies gate/round budget etc.; its Listener, Context, Parallelism,
// and DisableJoinReorder are managed here.
func ComparePlanModes(s *Spec, base engine.Options, maxDerivations int, levels []int) error {
	base.DisableJoinReorder = false
	base.Parallelism = 0
	d, err := s.NewDB()
	if err != nil {
		return err
	}
	want := Snapshot(s.Prog, d, base, maxDerivations)

	if d, err = s.NewDB(); err != nil {
		return err
	}
	got := SnapshotPlanned(s.Prog, d, base, maxDerivations)
	if got != want {
		return fmt.Errorf("difftest: planned sequential run diverges from legacy:\n%s", firstDiff(want, got))
	}
	for _, par := range levels {
		if d, err = s.NewDB(); err != nil {
			return err
		}
		opts := base
		opts.Parallelism = par
		got := SnapshotPlanned(s.Prog, d, opts, maxDerivations)
		if got != want {
			return fmt.Errorf("difftest: planned Parallelism=%d diverges from legacy sequential:\n%s", par, firstDiff(want, got))
		}
	}

	if maxDerivations > 0 {
		return nil
	}
	if d, err = s.NewDB(); err != nil {
		return err
	}
	planned := fixpointSet(s.Prog, d, base, true)
	if d, err = s.NewDB(); err != nil {
		return err
	}
	written := base
	written.DisableJoinReorder = true
	writtenSet := fixpointSet(s.Prog, d, written, false)
	if planned != writtenSet {
		return fmt.Errorf("difftest: planned fixpoint differs from written-order fixpoint:\n%s", firstDiff(writtenSet, planned))
	}
	return nil
}

// fixpointSet evaluates prog over d and renders every relation's contents
// as a sorted tuple set — the order-insensitive view two runs with
// different enumeration orders can still be compared under.
func fixpointSet(prog *ast.Program, d *db.Database, opts engine.Options, planned bool) string {
	opts.Listener = nil
	var eng *engine.Engine
	var err error
	if planned {
		eng, err = engine.NewPlanned(prog, d, nil)
	} else {
		eng, err = engine.New(prog, d)
	}
	if err != nil {
		return "new error: " + err.Error()
	}
	_, runErr := eng.Run(opts)
	var sb strings.Builder
	for _, name := range d.RelationNames() {
		rel, ok := d.Lookup(name)
		if !ok {
			continue
		}
		tuples := make([]string, rel.Len())
		for id := 0; id < rel.Len(); id++ {
			tuples[id] = fmt.Sprintf("%v", rel.Tuple(db.TupleID(id)))
		}
		sort.Strings(tuples)
		fmt.Fprintf(&sb, "r %s %s\n", name, strings.Join(tuples, " "))
	}
	if runErr != nil {
		fmt.Fprintf(&sb, "run error: %v\n", runErr)
	}
	return sb.String()
}

// GenerateMagic builds a random Magic-Sets-transformed spec: it generates a
// stratified program with Generate, evaluates it to find a derived idb
// tuple, and returns the transform of the program for that goal (same
// extensional facts). The transformed program is exactly the rule shape the
// Magic CM variants feed the engine — adorned predicates, magic guards,
// seed rules — and the shape whose plans the cache is keyed to reuse.
// Programs with negation are regenerated (the transform requires positive
// programs), so the same rng state still yields a deterministic spec.
func GenerateMagic(rng *rand.Rand) (*Spec, error) {
	for attempt := 0; attempt < 32; attempt++ {
		base := Generate(rng)
		if base.Prog.HasNegation() {
			continue
		}
		goal, err := derivedGoal(base)
		if err != nil {
			return nil, err
		}
		if goal == nil {
			continue
		}
		tr, err := magic.Transform(base.Prog, []ast.Atom{*goal})
		if err != nil {
			return nil, fmt.Errorf("difftest: magic transform: %w", err)
		}
		return &Spec{Prog: tr.Program, Facts: base.Facts}, nil
	}
	return nil, fmt.Errorf("difftest: no magic-transformable spec in 32 attempts")
}

// derivedGoal evaluates the spec and returns the first derived idb tuple
// (by relation name, then tuple id) as a ground atom, or nil when the
// fixpoint derives nothing intensional.
func derivedGoal(s *Spec) (*ast.Atom, error) {
	d, err := s.NewDB()
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(s.Prog, d)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(engine.Options{MaxRounds: 64}); err != nil && !strings.Contains(err.Error(), "MaxRounds") {
		return nil, err
	}
	syms := d.Symbols()
	for _, name := range d.RelationNames() {
		if !s.Prog.IsIDB(name) {
			continue
		}
		rel, ok := d.Lookup(name)
		if !ok || rel.Len() == 0 {
			continue
		}
		t := rel.Tuple(0)
		terms := make([]ast.Term, len(t))
		for i, sym := range t {
			terms[i] = ast.C(syms.Name(sym))
		}
		a := ast.NewAtom(name, terms...)
		return &a, nil
	}
	return nil, nil
}

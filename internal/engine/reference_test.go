package engine_test

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
)

// referenceEval is a deliberately simple fixpoint evaluator used as a
// correctness oracle: it re-derives everything from scratch each round by
// enumerating all substitutions (no deltas, no indexes). Positive programs
// only.
func referenceEval(prog *ast.Program, facts []ast.Atom) map[string]bool {
	derived := map[string]bool{}
	byPred := map[string][]ast.Atom{}
	add := func(a ast.Atom) bool {
		k := a.String()
		if derived[k] {
			return false
		}
		derived[k] = true
		byPred[a.Predicate] = append(byPred[a.Predicate], a)
		return true
	}
	for _, f := range facts {
		add(f)
	}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			for _, s := range allMatches(r.Body, byPred, ast.Subst{}) {
				if add(s.ApplyAtom(r.Head)) {
					changed = true
				}
			}
		}
	}
	return derived
}

// allMatches enumerates all substitutions grounding the body over byPred.
func allMatches(body []ast.Atom, byPred map[string][]ast.Atom, s ast.Subst) []ast.Subst {
	if len(body) == 0 {
		return []ast.Subst{s}
	}
	var out []ast.Subst
	for _, f := range byPred[body[0].Predicate] {
		if s2, ok := ast.MatchAtom(s, body[0], f); ok {
			out = append(out, allMatches(body[1:], byPred, s2)...)
		}
	}
	return out
}

// randomProgram generates a small random positive program over unary and
// binary predicates p0..p3 (edb: e0, e1).
func randomProgram(rng *rand.Rand) *ast.Program {
	preds := []struct {
		name  string
		arity int
	}{{"p0", 1}, {"p1", 2}, {"p2", 2}, {"p3", 1}}
	vars := []string{"X", "Y", "Z"}
	edb := []struct {
		name  string
		arity int
	}{{"e0", 1}, {"e1", 2}}

	prog := ast.NewProgram()
	nRules := rng.IntN(4) + 2
	for i := 0; i < nRules; i++ {
		head := preds[rng.IntN(len(preds))]
		nBody := rng.IntN(2) + 1
		var body []ast.Atom
		for j := 0; j < nBody; j++ {
			// Mix edb and idb body atoms.
			if rng.IntN(2) == 0 {
				p := edb[rng.IntN(len(edb))]
				body = append(body, randAtom(p.name, p.arity, vars, rng))
			} else {
				p := preds[rng.IntN(len(preds))]
				body = append(body, randAtom(p.name, p.arity, vars, rng))
			}
		}
		// Head terms drawn from body variables to keep range restriction.
		bodyVars := ast.NewRule("", 1, ast.NewAtom("x"), body...).BodyVars()
		if len(bodyVars) == 0 {
			continue
		}
		terms := make([]ast.Term, head.arity)
		for j := range terms {
			terms[j] = ast.V(bodyVars[rng.IntN(len(bodyVars))])
		}
		prog.Add(ast.Rule{
			Label: fmt.Sprintf("r%d", i),
			Prob:  1,
			Head:  ast.NewAtom(head.name, terms...),
			Body:  body,
		})
	}
	return prog
}

func randAtom(pred string, arity int, vars []string, rng *rand.Rand) ast.Atom {
	terms := make([]ast.Term, arity)
	for i := range terms {
		if rng.IntN(5) == 0 {
			terms[i] = ast.C(fmt.Sprintf("c%d", rng.IntN(3)))
		} else {
			terms[i] = ast.V(vars[rng.IntN(len(vars))])
		}
	}
	return ast.NewAtom(pred, terms...)
}

func randomFacts(rng *rand.Rand) []ast.Atom {
	var out []ast.Atom
	seen := map[string]bool{}
	n := rng.IntN(12) + 3
	for i := 0; i < n; i++ {
		var a ast.Atom
		if rng.IntN(2) == 0 {
			a = ast.NewAtom("e0", ast.C(fmt.Sprintf("c%d", rng.IntN(4))))
		} else {
			a = ast.NewAtom("e1", ast.C(fmt.Sprintf("c%d", rng.IntN(4))), ast.C(fmt.Sprintf("c%d", rng.IntN(4))))
		}
		if !seen[a.String()] {
			seen[a.String()] = true
			out = append(out, a)
		}
	}
	return out
}

// TestEngineMatchesReferenceOnRandomPrograms is the semi-naive engine's
// main correctness property test: on hundreds of random programs and
// databases, the engine's fixpoint must equal the naive reference
// evaluator's, fact for fact.
func TestEngineMatchesReferenceOnRandomPrograms(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xFEED))
		prog := randomProgram(rng)
		if len(prog.Rules) == 0 || prog.Validate() != nil {
			continue
		}
		facts := randomFacts(rng)

		want := referenceEval(prog, facts)

		d := db.NewDatabase()
		for _, f := range facts {
			d.MustInsertAtom(f)
		}
		eng, err := engine.New(prog, d)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, prog)
		}
		if _, err := eng.Run(engine.Options{MaxRounds: 200}); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, prog)
		}

		got := map[string]bool{}
		for _, f := range facts {
			got[f.String()] = true
		}
		for _, pred := range []string{"p0", "p1", "p2", "p3"} {
			for _, a := range d.Facts(pred) {
				got[a.String()] = true
			}
		}
		if !sameSet(got, want) {
			t.Fatalf("trial %d mismatch\nprogram:\n%s\nfacts: %v\n got: %v\nwant: %v",
				trial, prog, facts, keys(got), keys(want))
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

package engine_test

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

// TestPruneEquivalentFixpoint is the differential soundness check behind
// analysis.Prune's unreachable criterion: for randomized databases and a
// program mixing reachable and dead rules, evaluating the pruned program
// must derive exactly the same facts for every predicate in the roots'
// dependency cone as evaluating the full program.
func TestPruneEquivalentFixpoint(t *testing.T) {
	prog, err := parser.ParseProgram(`
		1 r1: tc(X, Y) :- edge(X, Y).
		1 r2: tc(X, Y) :- edge(Y, X).
		0.8 r3: tc(X, Y) :- tc(X, Z), tc(Z, Y).
		1 d1: pair(X, Y) :- edge(X, Y), edge(Y, X).
		1 d2: chain(X, Y) :- pair(X, Y), tc(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	roots := []string{"tc"}
	pr := analysis.Prune(prog, analysis.PruneOptions{Roots: roots})
	if len(pr.Pruned) != 2 {
		t.Fatalf("pruned %d rules, want 2 (d1, d2); got %+v", len(pr.Pruned), pr.Pruned)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*7+1))
		d := workload.RandomGraphM(10, 24, rng)
		full := evalPreds(t, prog, d, roots)
		pruned := evalPreds(t, pr.Program, d, roots)
		if full != pruned {
			t.Errorf("seed %d: fixpoints diverge on cone predicates:\nfull:   %s\npruned: %s", seed, full, pruned)
		}
	}
}

// evalPreds evaluates prog over a scratch copy of d and renders the sorted
// facts of each listed predicate.
func evalPreds(t *testing.T, prog *ast.Program, d *db.Database, preds []string) string {
	t.Helper()
	scratch := d.CloneSchema()
	for _, p := range prog.EDBs() {
		if rel, ok := d.Lookup(p); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(prog, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, p := range preds {
		facts := scratch.Facts(p)
		strs := make([]string, len(facts))
		for i, f := range facts {
			strs[i] = f.String()
		}
		sort.Strings(strs)
		out += fmt.Sprintf("%s=%v;", p, strs)
	}
	return out
}

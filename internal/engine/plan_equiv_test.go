package engine_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"contribmax/internal/engine"
	"contribmax/internal/engine/difftest"
)

// TestPlannedOrderMatchesLegacy asserts, over random generated programs and
// their Magic-Sets transforms, that engine.NewPlanned compiles every rule
// to exactly the join orders engine.New computes. This is the load-bearing
// invariant behind "planning on by default, goldens unchanged": equal
// orders mean equal enumeration, which means an identical derivation
// stream. The snapshot-level differential tests in difftest verify the
// consequence; this test pins the cause, so a divergence fails here with
// the offending rule's orders instead of a downstream stream diff.
func TestPlannedOrderMatchesLegacy(t *testing.T) {
	check := func(t *testing.T, spec *difftest.Spec, seed int) {
		d1, err := spec.NewDB()
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := engine.New(spec.Prog, d1)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		d2, err := spec.NewDB()
		if err != nil {
			t.Fatal(err)
		}
		planned, err := engine.NewPlanned(spec.Prog, d2, nil)
		if err != nil {
			t.Fatalf("seed %d: NewPlanned: %v", seed, err)
		}
		lo, po := legacy.PlanOrders(), planned.PlanOrders()
		for ri := range lo {
			if !reflect.DeepEqual(lo[ri], po[ri]) {
				t.Errorf("seed %d rule %d: planner order %v != legacy order %v\nrule: %s",
					seed, ri, po[ri], lo[ri], spec.Prog.Rules[ri])
			}
		}
	}
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0x91a))
		check(t, difftest.Generate(rng), seed)
	}
	for seed := 0; seed < 15; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 0x51a6))
		spec, err := difftest.GenerateMagic(rng)
		if err != nil {
			t.Fatal(err)
		}
		check(t, spec, seed)
	}
}

package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"contribmax/internal/db"
	"contribmax/internal/obs"
)

// Parallel round execution.
//
// Why this is byte-identical to sequential evaluation: within one
// semi-naive round, every join reads only tuples with id below the round
// watermark (roundLen), and all inserts land above it — so the round's
// instantiation set is a pure function of the round-start database state,
// independent of insertion order within the round. Sequential evaluation
// enumerates instantiations in (rule, delta position, ascending delta id,
// plan order) order. The parallel path partitions each (rule, delta
// position) pass into contiguous delta-id chunks, workers enumerate each
// chunk in the identical nested-loop order into private buffers, and the
// coordinator replays the buffers in (rule, delta position, chunk start)
// order — exactly the sequential enumeration, including head tuple ids,
// HeadNew flags, Stats, and the listener stream. Chunk boundaries vary
// with Parallelism; the replay order does not.

// parMinWork is the per-round delta-work threshold (total delta tuples
// across viable passes) below which a parallel run executes the round on
// the coordinator instead: rounds are independent, so output is unchanged,
// and tiny rounds lose more to goroutine startup than workers recover.
const parMinWork = 256

// evalTask is one contiguous chunk of a rule's semi-naive delta pass. The
// claiming worker fills in where its results live in that worker's arenas.
type evalTask struct {
	cr       *compiledRule
	deltaPos int
	lo, hi   int // delta id sub-range [lo, hi)

	worker     int   // index of the worker that executed the task
	headLo     int   // start offset in the worker's heads arena
	bodyLo     int   // start offset in the worker's bodies arena
	resLo      int   // start offset in the worker's resolved arena
	n          int   // number of buffered instantiations
	suppressed int64 // gate-vetoed instantiations in this chunk
}

// parWorker is one evaluation worker: a private joinRun plus flat result
// arenas, reused across rounds. heads holds head-tuple symbols (stride =
// head arity), bodies holds body tuple ids (stride = body length — the
// relation of each body position is static per rule, so ids suffice and
// the arenas stay pointer-free, which keeps the GC from rescanning them),
// and resolved holds the pre-resolved head tuple id, or -1 when the head
// was not present at round start (strides are per-rule constants,
// recovered from the task during merge).
type parWorker struct {
	jr       joinRun
	heads    []db.Sym
	bodies   []db.TupleID
	resolved []db.TupleID
	busy     time.Duration
}

// emitBuffered is the worker-side emit path: buffer the instantiation
// instead of inserting. The head tuple id is pre-resolved here against the
// relation's key map — frozen for the whole worker phase — which moves the
// hash lookups (and their projection-key allocations) off the sequential
// merge and into the parallel phase.
func (w *parWorker) emitBuffered(cr *compiledRule, vars []db.Sym, body []FactRef) {
	for _, t := range cr.head.terms {
		if t.isVar {
			w.heads = append(w.heads, vars[t.slot])
		} else {
			w.heads = append(w.heads, t.sym)
		}
	}
	ht := db.Tuple(w.heads[len(w.heads)-cr.head.arity:])
	if id, ok := cr.head.rel.Contains(ht); ok {
		w.resolved = append(w.resolved, id)
	} else {
		w.resolved = append(w.resolved, -1)
	}
	for i := range body {
		w.bodies = append(w.bodies, body[i].ID)
	}
}

// ensureWorkers lazily creates the worker pool for this run.
func (ev *evaluator) ensureWorkers() {
	if ev.workers != nil {
		return
	}
	ev.workers = make([]*parWorker, ev.par)
	for i := range ev.workers {
		w := &parWorker{}
		w.jr.init(ev.engine, ev.opts, w.emitBuffered)
		w.jr.attach(ev)
		w.jr.prof = ev.prof.NewCounters(ev.profLens)
		ev.workers[i] = w
	}
}

// prebuildIndexes creates every binding-pattern index the stratum's join
// plans can probe, so the worker phase never takes db.Relation's
// index-creation write lock. The mask at each plan step is static: it
// covers constant positions plus variables bound by earlier plan atoms —
// the same computation scanAtom performs at run time.
func (ev *evaluator) prebuildIndexes(ruleIdxs []int) {
	for _, ri := range ruleIdxs {
		cr := ev.engine.rules[ri]
		n := len(cr.body)
		for d := 0; d < n; d++ {
			bound := make([]bool, len(cr.varNames))
			for step := 0; step < n; step++ {
				var pos int
				if ev.opts.DisableJoinReorder {
					pos = stepAtom(d, step)
				} else {
					pos = cr.plans[d][step]
				}
				atom := &cr.body[pos]
				var mask uint32
				for j, t := range atom.terms {
					if !t.isVar || bound[t.slot] {
						mask |= 1 << uint(j)
					}
				}
				atom.rel.EnsureIndex(mask)
				for _, t := range atom.terms {
					if t.isVar {
						bound[t.slot] = true
					}
				}
			}
		}
	}
}

// runRoundParallel evaluates one semi-naive round on the worker pool:
// chunk every viable (rule, delta position) pass, fan the chunks out,
// wait, and replay the buffered results in task order.
func (ev *evaluator) runRoundParallel(ruleIdxs []int) {
	e := ev.engine
	tasks := ev.tasks[:0]
	work := 0
	for _, ri := range ruleIdxs {
		cr := e.rules[ri]
		if len(cr.body) == 0 {
			continue
		}
		for d := range cr.body {
			rel := cr.body[d].rel
			lo, hi := ev.processedLen[rel], ev.roundLen[rel]
			if lo >= hi || !ev.passViable(cr, d) {
				continue
			}
			span := hi - lo
			work += span
			chunks := ev.par * 2
			if chunks > span {
				chunks = span
			}
			size := (span + chunks - 1) / chunks
			for s := lo; s < hi; s += size {
				end := s + size
				if end > hi {
					end = hi
				}
				tasks = append(tasks, evalTask{cr: cr, deltaPos: d, lo: s, hi: end})
			}
		}
	}
	ev.tasks = tasks
	if len(tasks) == 0 {
		return
	}
	if work < parMinWork {
		// Chunks of one pass are contiguous and in ascending order, so
		// running them back to back on the coordinator's own runner is the
		// sequential pass.
		for i := range tasks {
			t := &tasks[i]
			ev.timedPass(t.cr, t.deltaPos, t.lo, t.hi)
		}
		return
	}

	ev.ensureWorkers()
	var next int64
	var wg sync.WaitGroup
	for wi := range ev.workers {
		w := ev.workers[wi]
		w.heads = w.heads[:0]
		w.bodies = w.bodies[:0]
		w.resolved = w.resolved[:0]
		w.busy = 0
		wg.Add(1)
		go func(wi int, w *parWorker) {
			defer wg.Done()
			start := time.Now()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(tasks) {
					break
				}
				t := &tasks[i]
				t.worker = wi
				t.headLo = len(w.heads)
				t.bodyLo = len(w.bodies)
				t.resLo = len(w.resolved)
				if w.jr.prof != nil {
					p0 := time.Now()
					w.jr.pass(t.cr, t.deltaPos, t.lo, t.hi)
					w.jr.prof.RoundNs[t.cr.index] += int64(time.Since(p0))
				} else {
					w.jr.pass(t.cr, t.deltaPos, t.lo, t.hi)
				}
				t.n = len(w.resolved) - t.resLo
				t.suppressed = w.jr.takeSuppressed()
			}
			w.busy = time.Since(start)
		}(wi, w)
	}
	waitStart := time.Now()
	wg.Wait()
	mergeWait := time.Since(waitStart)

	ev.mergeTasks(tasks)

	if ev.prof != nil {
		// Fold the workers' per-rule pass times into the round now closing,
		// before the next round reuses the counter blocks.
		for _, w := range ev.workers {
			ev.prof.FlushRoundNs(w.jr.prof)
		}
	}

	if reg := ev.opts.Obs; reg != nil {
		reg.Counter(obs.EngineBatches).Add(int64(len(tasks)))
		reg.Histogram(obs.EngineMergeWait).Observe(int64(mergeWait))
		busyHist := reg.Histogram(obs.EngineWorkerBusy)
		for _, w := range ev.workers {
			busyHist.Observe(int64(w.busy))
		}
	}
}

// mergeTasks replays the buffered worker results in task order, which is
// the sequential enumeration order. A pre-resolved head (id >= 0) existed
// at round start, so HeadNew is false without touching the relation; a
// miss runs the full Insert, whose added flag distinguishes a first
// derivation from a duplicate head fired earlier in this same merge —
// exactly what sequential Insert would have reported.
func (ev *evaluator) mergeTasks(tasks []evalTask) {
	for i := range tasks {
		t := &tasks[i]
		ev.stats.Suppressed += t.suppressed
		if t.n == 0 {
			continue
		}
		cr := t.cr
		headRel := cr.head.rel
		ha := cr.head.arity
		bs := len(cr.body)
		w := ev.workers[t.worker]
		if cap(ev.mergeBody) < bs {
			ev.mergeBody = make([]FactRef, bs)
		}
		body := ev.mergeBody[:bs]
		for r := 0; r < t.n; r++ {
			id := w.resolved[t.resLo+r]
			added := false
			if id < 0 {
				ht := db.Tuple(w.heads[t.headLo+r*ha : t.headLo+(r+1)*ha])
				id, added = headRel.Insert(ht)
			}
			ev.stats.Instantiations++
			ev.stats.FiredByRule[cr.index]++
			if added {
				ev.stats.NewFacts++
			}
			ev.prof.RuleFired(cr.index, added)
			if ev.opts.Listener != nil {
				ids := w.bodies[t.bodyLo+r*bs : t.bodyLo+r*bs+bs]
				for j := range ids {
					body[j] = FactRef{Rel: cr.body[j].rel, ID: ids[j]}
				}
				ev.opts.Listener(Derivation{
					RuleIndex: cr.index,
					Rule:      &cr.src,
					Head:      FactRef{Rel: headRel, ID: id},
					HeadNew:   added,
					Body:      body,
				})
			}
		}
	}
}

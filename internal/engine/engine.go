package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/planner"
	"contribmax/internal/prof"
)

// FactRef identifies a ground fact as a tuple of a relation.
type FactRef struct {
	Rel *db.Relation
	ID  db.TupleID
}

// Derivation describes one fired rule instantiation. Body aliases an
// engine-internal buffer: listeners must copy it if they retain it past the
// callback.
type Derivation struct {
	// RuleIndex is the index of the rule in the program passed to New.
	RuleIndex int
	// Rule is the source rule.
	Rule *ast.Rule
	// Head is the derived fact.
	Head FactRef
	// HeadNew reports whether the head fact was first derived by this
	// instantiation (false when the fact already existed).
	HeadNew bool
	// Body holds the instantiated positive body facts, in body order.
	// Built-in and negated literals are filters, not facts, and do not
	// appear here.
	Body []FactRef
}

// DerivationListener observes every fired rule instantiation exactly once.
//
// The listener is always invoked from the goroutine that called Run —
// never concurrently — and the derivation stream is identical at every
// Options.Parallelism level: parallel evaluation buffers worker results
// and replays them in the sequential order. Listeners therefore need no
// synchronization of their own (wdgraph.Builder relies on this).
type DerivationListener func(d Derivation)

// FireGate decides whether a candidate rule instantiation fires. vars holds
// the instantiation's variable bindings indexed consistently with
// Engine.RuleVarNames(ruleIndex); it aliases an engine-internal buffer and
// must not be retained. Returning false suppresses the instantiation: no
// listener call and no head insertion.
type FireGate interface {
	ShouldFire(ruleIndex int, vars []db.Sym) bool
}

// ParallelSafeGate marks gates that parallel evaluation may consult from
// worker goroutines: ShouldFire must be safe for concurrent use and
// order-independent — its verdict a pure function of (ruleIndex, bindings),
// never of how many or in which order other instantiations were seen
// (magic.HashGate is the canonical implementation). When Options sets
// Parallelism >= 2 with a gate that does not implement this interface, the
// engine falls back to sequential evaluation rather than risk corrupting
// the gate's state; results are identical either way for conforming gates.
type ParallelSafeGate interface {
	FireGate
	// ParallelSafeFireGate is a marker; implementations do nothing.
	ParallelSafeFireGate()
}

// Options configures one evaluation run.
type Options struct {
	// Listener, if non-nil, observes every fired instantiation.
	Listener DerivationListener
	// Gate, if non-nil, can veto instantiations before they fire. With
	// Parallelism >= 2 the gate is consulted from worker goroutines and
	// must implement ParallelSafeGate (otherwise the run is evaluated
	// sequentially).
	Gate FireGate
	// MaxRounds bounds the number of semi-naive rounds as a safety net
	// against runaway programs; 0 means unbounded (datalog always
	// terminates, so this is belt-and-suspenders for debugging).
	MaxRounds int
	// DisableJoinReorder evaluates rule bodies strictly left to right
	// (after the delta atom) instead of the greedy bound-first order. Join
	// order never changes results; the flag exists for the ablation
	// benchmark.
	DisableJoinReorder bool
	// Parallelism, when >= 2, evaluates each semi-naive round on that many
	// worker goroutines: every rule's delta-tuple range is partitioned
	// into contiguous chunks, workers evaluate chunks into private
	// buffers, and the results are merged on the calling goroutine in
	// fixed (rule, partition) order. Relations (tuple ids included),
	// Stats, and the derivation stream are byte-identical to sequential
	// evaluation at every level; see docs/PERFORMANCE.md for the
	// determinism contract. 0 and 1 evaluate sequentially. Small rounds
	// below an internal work threshold run sequentially even when
	// parallelism is on — the output is identical by construction.
	Parallelism int
	// Context, when non-nil, is checked between semi-naive rounds;
	// cancellation aborts the run with the context's error. Checks are
	// per-round, so cancellation latency is one round of rule firing.
	Context context.Context
	// Obs, when non-nil, receives the engine metrics (see obs names
	// engine.*): run/round/instantiation counters, the per-round delta
	// size histogram, and — under Parallelism >= 2 — the parallel-round
	// task counter and worker-busy/merge-wait histograms. A nil registry
	// costs one pointer check per run.
	Obs *obs.Registry
	// Journal, when non-nil, receives one engine.round event per
	// semi-naive round (round ordinal and delta size), emitted from the
	// coordinator goroutine. Full-graph builds journal their fixpoint this
	// way; the per-RR subgraph builds of the Magic variants leave it nil
	// (thousands of tiny fixpoints would drown the stream).
	Journal *journal.Journal
	// Prof, when non-nil, collects the run's rule-level runtime profile:
	// per-rule instantiation/dedup counts, per-plan-step join fan-out and
	// hoisted-check vetoes, wall time per rule per round, and per-stratum
	// delta curves, merged into the solve-scoped profile at run end. All
	// counts are recorded on deterministic paths, so they are identical at
	// every Parallelism level; times live in separate fields. Nil costs
	// one pointer check per run.
	Prof *prof.Profile
}

// Stats summarizes an evaluation run.
type Stats struct {
	Rounds         int
	Instantiations int64 // fired instantiations (post-gate)
	Suppressed     int64 // instantiations vetoed by the gate
	NewFacts       int64 // idb tuples first derived during the run
	Elapsed        time.Duration
	// FiredByRule[i] counts rule i's fired instantiations (indexes follow
	// the program's rule order) — the per-rule profile that identifies
	// which rules dominate evaluation cost.
	FiredByRule []int64
}

// HottestRule returns the index of the rule with the most fired
// instantiations, or -1 when nothing fired.
func (s Stats) HottestRule() int {
	best, bestN := -1, int64(0)
	for i, n := range s.FiredByRule {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// Engine evaluates one program over one database. Construct with New, then
// call Run once. An Engine is single-use and not safe for concurrent use.
type Engine struct {
	prog  *ast.Program
	db    *db.Database
	rules []*compiledRule
	ran   bool
}

// New compiles prog against database. All predicates mentioned by the
// program are resolved (idb relations are created empty if absent).
func New(prog *ast.Program, database *db.Database) (*Engine, error) {
	rules, err := compile(prog, database)
	if err != nil {
		return nil, err
	}
	return &Engine{prog: prog, db: database, rules: rules}, nil
}

// NewPlanned compiles prog like New but sources each rule's join plan from
// the planner package: the positive-atom order is identical to New's greedy
// bound-first order (planner.Build replicates it exactly, so the derivation
// stream — and every golden fingerprint over it — is byte-identical), and
// additionally every built-in or negated check is evaluated at the earliest
// join step where its variables are bound, pruning doomed partial bindings
// instead of fully materializing them. pl, when non-nil, caches plans by
// rule shape across engines — the Magic variants compile thousands of
// engines per solve from the same adorned rule families, and each family
// plans once. A nil pl plans per-engine without caching.
func NewPlanned(prog *ast.Program, database *db.Database, pl *planner.Planner) (*Engine, error) {
	e, err := New(prog, database)
	if err != nil {
		return nil, err
	}
	for _, cr := range e.rules {
		cr.applyPlan(pl)
	}
	return e, nil
}

// RuleVarNames returns the variable slot names of rule ruleIndex, in slot
// order. Gates use this to map slot bindings back to source variables.
func (e *Engine) RuleVarNames(ruleIndex int) []string {
	return e.rules[ruleIndex].varNames
}

// Run evaluates to fixpoint. It may be called once.
func (e *Engine) Run(opts Options) (Stats, error) {
	if e.ran {
		return Stats{}, fmt.Errorf("engine: Run called twice")
	}
	e.ran = true
	start := time.Now()
	var stats Stats

	stats.FiredByRule = make([]int64, len(e.rules))
	par := opts.Parallelism
	if par >= 2 && opts.Gate != nil {
		if _, ok := opts.Gate.(ParallelSafeGate); !ok {
			par = 1
		}
	}
	ev := &evaluator{engine: e, opts: opts, par: par, stats: &stats,
		deltaHist: opts.Obs.Histogram(obs.EngineDeltaSize)}
	if opts.Prof != nil {
		names := make([]string, len(e.rules))
		lens := make([]int, len(e.rules))
		for i, cr := range e.rules {
			names[i] = cr.src.String()
			lens[i] = len(cr.body)
		}
		ev.prof = opts.Prof.StartEngine(names)
		ev.profLens = lens
	}
	ev.seq.init(e, opts, ev.emitSequential)
	ev.seq.prof = ev.prof.NewCounters(ev.profLens)
	runErr := ev.run()
	stats.Suppressed += ev.seq.takeSuppressed()
	if ev.prof != nil {
		ev.prof.FlushRoundNs(ev.seq.prof)
		ev.prof.Finish()
	}

	stats.Elapsed = time.Since(start)
	if reg := opts.Obs; reg != nil {
		reg.Counter(obs.EngineRuns).Inc()
		reg.Counter(obs.EngineRounds).Add(int64(stats.Rounds))
		reg.Counter(obs.EngineInstantiations).Add(stats.Instantiations)
		reg.Counter(obs.EngineSuppressed).Add(stats.Suppressed)
		reg.Counter(obs.EngineNewFacts).Add(stats.NewFacts)
		reg.Histogram(obs.EngineEvalNs).Observe(int64(stats.Elapsed))
	}
	if runErr != nil {
		return stats, runErr
	}
	if opts.MaxRounds > 0 && stats.Rounds >= opts.MaxRounds {
		return stats, fmt.Errorf("engine: exceeded MaxRounds=%d", opts.MaxRounds)
	}
	return stats, nil
}

// evaluator holds the mutable state of one Run: the coordinator. The join
// machinery itself lives in joinRun so that the sequential path and every
// parallel worker share one implementation.
type evaluator struct {
	engine    *Engine
	opts      Options
	par       int // effective parallelism (gate-safe), <2 means sequential
	stats     *Stats
	deltaHist *obs.Histogram // per-round delta sizes; nil when disabled

	// prof records this run for the solve-scoped profiler (nil when
	// disabled); profLens caches per-rule body lengths for sizing worker
	// counter blocks, and stratum is the ordinal of the stratum currently
	// evaluating (set by run's stratum loop).
	prof     *prof.EngineRun
	profLens []int
	stratum  int

	// watermarks: processedLen[rel] is the tuple count of rel that has been
	// fully processed by previous rounds; roundLen[rel] is the count
	// snapshot at the start of the current round. Tuples with id in
	// [processedLen, roundLen) form the current delta. Workers read both
	// maps concurrently during a round; the coordinator writes them only
	// between rounds.
	processedLen map[*db.Relation]int
	roundLen     map[*db.Relation]int

	// seq is the coordinator's own join runner (sequential strata, fact
	// rules, and sub-threshold rounds of parallel strata).
	seq joinRun

	// headBuf is the sequential emit path's reusable head-tuple scratch
	// (Relation.Insert clones, so the buffer never escapes).
	headBuf db.Tuple

	// workers and tasks are the parallel execution state; see parallel.go.
	// mergeBody is the merge phase's reusable Derivation.Body scratch.
	workers   []*parWorker
	tasks     []evalTask
	mergeBody []FactRef
}

func (ev *evaluator) run() error {
	e := ev.engine
	strata, err := Stratify(e.prog)
	if err != nil {
		return err
	}
	ev.processedLen = make(map[*db.Relation]int)
	ev.roundLen = make(map[*db.Relation]int)
	ev.seq.attach(ev)
	rels := map[*db.Relation]bool{}
	for _, r := range e.rules {
		rels[r.head.rel] = true
		for _, b := range r.body {
			rels[b.rel] = true
		}
		for _, c := range r.checks {
			if c.rel != nil {
				rels[c.rel] = true
			}
		}
	}
	// Deterministic iteration order for the relation set.
	relList := make([]*db.Relation, 0, len(rels))
	for rel := range rels {
		relList = append(relList, rel)
	}
	sort.Slice(relList, func(i, j int) bool { return relList[i].Name() < relList[j].Name() })

	for si, ruleIdxs := range strata {
		ev.stratum = si
		if err := ev.runStratum(ruleIdxs, relList); err != nil {
			return err
		}
		if ev.opts.MaxRounds > 0 && ev.stats.Rounds >= ev.opts.MaxRounds {
			return nil
		}
	}
	return nil
}

// ctxErr reports the run context's error, nil when no context was set.
func (ev *evaluator) ctxErr() error {
	if ev.opts.Context == nil {
		return nil
	}
	return ev.opts.Context.Err()
}

// runStratum evaluates one stratum's rules to fixpoint. At stratum entry
// all existing tuples count as unprocessed delta, so rules see everything
// derived by earlier strata exactly once.
func (ev *evaluator) runStratum(ruleIdxs []int, relList []*db.Relation) error {
	e := ev.engine
	for _, rel := range relList {
		ev.processedLen[rel] = 0
	}
	if ev.par >= 2 {
		ev.prebuildIndexes(ruleIdxs)
	}

	// Fact rules of this stratum fire once, before the first round.
	for _, ri := range ruleIdxs {
		if cr := e.rules[ri]; len(cr.body) == 0 {
			ev.seq.fireFact(cr)
		}
	}

	for {
		if ev.opts.MaxRounds > 0 && ev.stats.Rounds >= ev.opts.MaxRounds {
			return nil
		}
		if err := ev.ctxErr(); err != nil {
			return err
		}
		// Snapshot the round: delta = [processedLen, roundLen).
		hasDelta := false
		delta := int64(0)
		for _, rel := range relList {
			n := rel.Len()
			ev.roundLen[rel] = n
			if n > ev.processedLen[rel] {
				hasDelta = true
				delta += int64(n - ev.processedLen[rel])
			}
		}
		if !hasDelta {
			return nil
		}
		ev.deltaHist.Observe(delta)
		ev.stats.Rounds++
		ev.opts.Journal.EngineRound(ev.stats.Rounds, int(delta))
		ev.prof.BeginRound(ev.stratum, int(delta))
		if ev.par >= 2 {
			ev.runRoundParallel(ruleIdxs)
		} else {
			for _, ri := range ruleIdxs {
				cr := e.rules[ri]
				if len(cr.body) == 0 {
					continue
				}
				ev.applyRule(cr)
			}
		}
		for _, rel := range relList {
			ev.processedLen[rel] = ev.roundLen[rel]
		}
	}
}

// applyRule runs the semi-naive decomposition of one rule sequentially:
// one pass per body position i, where atom i ranges over the current delta
// of its relation, atoms before i range over strictly-old tuples, and atoms
// after i range over old-plus-delta tuples. This fires every instantiation
// exactly once across the whole run.
func (ev *evaluator) applyRule(cr *compiledRule) {
	for i := range cr.body {
		rel := cr.body[i].rel
		lo, hi := ev.processedLen[rel], ev.roundLen[rel]
		if lo >= hi || !ev.passViable(cr, i) {
			continue
		}
		ev.timedPass(cr, i, lo, hi)
	}
}

// timedPass runs one sequential pass on the coordinator's runner,
// attributing its wall time to the rule when profiling is on (timing wraps
// the pass; it never reorders or perturbs it).
func (ev *evaluator) timedPass(cr *compiledRule, deltaPos, lo, hi int) {
	if ev.prof == nil {
		ev.seq.pass(cr, deltaPos, lo, hi)
		return
	}
	t0 := time.Now()
	ev.seq.pass(cr, deltaPos, lo, hi)
	ev.prof.RuleTime(cr.index, int64(time.Since(t0)))
}

// passViable prunes a whole delta pass when any other atom's id range is
// empty (e.g. a strictly-old range before anything was processed): no
// instantiation can complete, regardless of join order.
func (ev *evaluator) passViable(cr *compiledRule, deltaPos int) bool {
	for j := range cr.body {
		if j == deltaPos {
			continue
		}
		jrel := cr.body[j].rel
		var max int
		if j < deltaPos {
			max = ev.processedLen[jrel]
		} else {
			max = ev.roundLen[jrel]
		}
		if max == 0 {
			return false
		}
	}
	return true
}

// emitSequential is the coordinator's emit path: insert the head, update
// stats, notify the listener. Parallel merges replay buffered worker
// results through an equivalent sequence (see mergeTasks), so the two
// paths produce identical observable effects.
func (ev *evaluator) emitSequential(cr *compiledRule, vars []db.Sym, body []FactRef) {
	headRel := cr.head.rel
	if cap(ev.headBuf) < cr.head.arity {
		ev.headBuf = make(db.Tuple, cr.head.arity)
	}
	ht := ev.headBuf[:cr.head.arity]
	for j, t := range cr.head.terms {
		if t.isVar {
			ht[j] = vars[t.slot]
		} else {
			ht[j] = t.sym
		}
	}
	id, added := headRel.Insert(ht)
	ev.stats.Instantiations++
	ev.stats.FiredByRule[cr.index]++
	if added {
		ev.stats.NewFacts++
	}
	ev.prof.RuleFired(cr.index, added)
	if ev.opts.Listener != nil {
		ev.opts.Listener(Derivation{
			RuleIndex: cr.index,
			Rule:      &cr.src,
			Head:      FactRef{Rel: headRel, ID: id},
			HeadNew:   added,
			Body:      body,
		})
	}
}

// joinRun executes rule passes for one goroutine: it owns the binding
// scratch and streams completed instantiations to emit. The watermark maps
// are shared with the coordinator and read-only for the duration of a
// pass.
type joinRun struct {
	engine         *Engine
	disableReorder bool
	gate           FireGate

	// processedLen/roundLen alias the evaluator's watermark maps.
	processedLen map[*db.Relation]int
	roundLen     map[*db.Relation]int

	// deltaLo/deltaHi bound the delta atom's id range for the current
	// pass (a sub-range of [processedLen, roundLen) under partitioning).
	deltaLo, deltaHi int

	// emit receives each completed, gate-approved instantiation. vars and
	// body alias this runner's scratch and are valid only for the call.
	emit func(cr *compiledRule, vars []db.Sym, body []FactRef)

	suppressed int64 // gate-vetoed instantiations since the last take

	// prof is this goroutine's private profiler counter block (nil when
	// profiling is off); the coordinator folds blocks at run end.
	prof *prof.JoinCounters

	// scratch buffers reused across instantiations.
	vars     []db.Sym
	bound    []bool
	bodyRefs []FactRef
	boundBuf db.Tuple
	checkBuf db.Tuple
}

func (jr *joinRun) init(e *Engine, opts Options, emit func(cr *compiledRule, vars []db.Sym, body []FactRef)) {
	jr.engine = e
	jr.disableReorder = opts.DisableJoinReorder
	jr.gate = opts.Gate
	jr.emit = emit
}

// attach points the runner at the evaluator's watermark maps.
func (jr *joinRun) attach(ev *evaluator) {
	jr.processedLen = ev.processedLen
	jr.roundLen = ev.roundLen
}

// takeSuppressed returns and resets the runner's suppressed count.
func (jr *joinRun) takeSuppressed() int64 {
	n := jr.suppressed
	jr.suppressed = 0
	return n
}

// fireFact handles a rule with no positive body atoms: a single
// instantiation with no variables (possibly guarded by ground checks, e.g.
// `p(a) :- lt(1, 2).`).
func (jr *joinRun) fireFact(cr *compiledRule) {
	jr.resetScratch(cr)
	if !jr.preChecksOK(cr) {
		return
	}
	jr.completeInstantiation(cr)
}

// pass evaluates one semi-naive pass of cr with the delta at body position
// deltaPos, restricted to delta ids in [lo, hi).
func (jr *joinRun) pass(cr *compiledRule, deltaPos, lo, hi int) {
	jr.deltaLo, jr.deltaHi = lo, hi
	jr.resetScratch(cr)
	if !jr.preChecksOK(cr) {
		return
	}
	jr.joinFrom(cr, deltaPos, 0)
}

// earlyChecks reports whether the runner evaluates cr's checks on the
// planner schedule (during the join) instead of at instantiation
// completion. Written-order evaluation keeps the legacy at-completion path:
// the planner's step schedule is computed against plan order and need not
// be bound-safe under DisableJoinReorder.
func (jr *joinRun) earlyChecks(cr *compiledRule) bool {
	return cr.planned && !jr.disableReorder
}

// preChecksOK evaluates a planned rule's ground (variable-free) checks,
// which hold for every instantiation of the pass or for none: a single
// failed comparison vetoes the whole pass before any scan.
func (jr *joinRun) preChecksOK(cr *compiledRule) bool {
	if !jr.earlyChecks(cr) {
		return true
	}
	for _, ci := range cr.preChecks {
		if !jr.evalCheck(&cr.checks[ci]) {
			return false
		}
	}
	return true
}

// resetScratch prepares the per-instantiation scratch buffers for cr.
func (jr *joinRun) resetScratch(cr *compiledRule) {
	n := len(cr.varNames)
	if cap(jr.vars) < n {
		jr.vars = make([]db.Sym, n)
		jr.bound = make([]bool, n)
	}
	jr.vars = jr.vars[:n]
	jr.bound = jr.bound[:n]
	for j := range jr.bound {
		jr.bound[j] = false
	}
	if cap(jr.bodyRefs) < len(cr.body) {
		jr.bodyRefs = make([]FactRef, len(cr.body))
	}
	jr.bodyRefs = jr.bodyRefs[:len(cr.body)]
}

// joinFrom matches body atoms in plan order: deltaPos first, then the
// remaining atoms bound-first (or left to right under
// DisableJoinReorder). step counts how many atoms have been matched.
func (jr *joinRun) joinFrom(cr *compiledRule, deltaPos, step int) {
	if step == len(cr.body) {
		jr.completeInstantiation(cr)
		return
	}
	// Determine which atom this step matches.
	var pos int
	if jr.disableReorder {
		pos = stepAtom(deltaPos, step)
	} else {
		pos = cr.plans[deltaPos][step]
	}
	atom := &cr.body[pos]
	rel := atom.rel
	var minID, maxID int
	switch {
	case pos == deltaPos:
		minID, maxID = jr.deltaLo, jr.deltaHi
	case pos < deltaPos:
		minID, maxID = 0, jr.processedLen[rel]
	default:
		minID, maxID = 0, jr.roundLen[rel]
	}
	if minID >= maxID {
		return
	}
	if jr.earlyChecks(cr) {
		if sched := cr.checksAt[deltaPos][step]; len(sched) > 0 {
			jr.scanAtom(cr, atom, pos, minID, maxID, func() {
				if jr.prof != nil {
					jr.prof.StepMatches[cr.index][step]++
				}
				// All variables of these checks were just bound by this
				// step; failing one prunes the partial binding and every
				// join extension under it.
				for _, ci := range sched {
					if !jr.evalCheck(&cr.checks[ci]) {
						if jr.prof != nil {
							jr.prof.StepVetoes[cr.index][step]++
						}
						return
					}
				}
				jr.joinFrom(cr, deltaPos, step+1)
			})
			return
		}
	}
	jr.scanAtom(cr, atom, pos, minID, maxID, func() {
		if jr.prof != nil {
			jr.prof.StepMatches[cr.index][step]++
		}
		jr.joinFrom(cr, deltaPos, step+1)
	})
}

// stepAtom maps a step number to a body position: step 0 is the delta
// position; later steps walk the remaining positions in order.
func stepAtom(deltaPos, step int) int {
	if step == 0 {
		return deltaPos
	}
	if step <= deltaPos {
		return step - 1
	}
	return step
}

// scanAtom enumerates the tuples of atom's relation with id in
// [minID, maxID) that are consistent with the current bindings, extends the
// bindings, records the body fact, and calls next for each match. Bindings
// made here are rolled back before returning.
func (jr *joinRun) scanAtom(cr *compiledRule, atom *compiledAtom, pos, minID, maxID int, next func()) {
	rel := atom.rel
	// Build the bound-position mask and lookup tuple.
	if cap(jr.boundBuf) < atom.arity {
		jr.boundBuf = make(db.Tuple, atom.arity)
	}
	lookup := jr.boundBuf[:atom.arity]
	var mask uint32
	for j, t := range atom.terms {
		switch {
		case !t.isVar:
			mask |= 1 << uint(j)
			lookup[j] = t.sym
		case jr.bound[t.slot]:
			mask |= 1 << uint(j)
			lookup[j] = jr.vars[t.slot]
		}
	}

	tryTuple := func(id db.TupleID) {
		t := rel.Tuple(id)
		// Bind unbound variable positions, checking repeated variables.
		var newlyBound [31]int
		nNew := 0
		ok := true
		for j, term := range atom.terms {
			if !term.isVar {
				// Constants are always part of the lookup mask, so the index
				// path guarantees a match, and the scan path (mask==0) only
				// occurs for constant-free atoms.
				continue
			}
			if jr.bound[term.slot] {
				if jr.vars[term.slot] != t[j] {
					ok = false
					break
				}
				continue
			}
			jr.vars[term.slot] = t[j]
			jr.bound[term.slot] = true
			newlyBound[nNew] = term.slot
			nNew++
		}
		if ok {
			jr.bodyRefs[pos] = FactRef{Rel: rel, ID: id}
			next()
		}
		for k := 0; k < nNew; k++ {
			jr.bound[newlyBound[k]] = false
		}
	}

	if ids, usedIndex := rel.LookupPattern(mask, lookup); usedIndex {
		// ids are ascending; restrict to [minID, maxID).
		start := sort.Search(len(ids), func(i int) bool { return int(ids[i]) >= minID })
		for _, id := range ids[start:] {
			if int(id) >= maxID {
				break
			}
			tryTuple(id)
		}
		return
	}
	// No bound positions: scan the id range, verifying constants inline
	// (none exist when mask==0, but keep the check for clarity).
	for id := minID; id < maxID; id++ {
		tryTuple(db.TupleID(id))
	}
}

// completeInstantiation is called with all positive body atoms matched: it
// evaluates the rule's checks (an instantiation failing a check does not
// exist), consults the gate, and hands the instantiation to emit. On the
// planner path every check already ran — at pass level (ground) or at its
// earliest bound join step — with the same verdicts: built-ins are pure and
// negated relations are frozen by stratification, so evaluation time never
// changes a check's outcome.
func (jr *joinRun) completeInstantiation(cr *compiledRule) {
	if !jr.earlyChecks(cr) {
		for i := range cr.checks {
			if !jr.evalCheck(&cr.checks[i]) {
				return
			}
		}
	}
	if jr.prof != nil {
		jr.prof.Attempted[cr.index]++
	}
	if jr.gate != nil && !jr.gate.ShouldFire(cr.index, jr.vars) {
		jr.suppressed++
		if jr.prof != nil {
			jr.prof.Suppressed[cr.index]++
		}
		return
	}
	jr.emit(cr, jr.vars, jr.bodyRefs[:len(cr.body)])
}

// evalCheck evaluates one built-in or negated literal under the current
// (fully bound, by safety) variable bindings.
func (jr *joinRun) evalCheck(c *compiledCheck) bool {
	symOf := func(t atomTerm) db.Sym {
		if t.isVar {
			return jr.vars[t.slot]
		}
		return t.sym
	}
	if c.builtin {
		symbols := jr.engine.db.Symbols()
		return ast.EvalBuiltin(c.pred, symbols.Name(symOf(c.terms[0])), symbols.Name(symOf(c.terms[1])))
	}
	// Negated atom: succeed iff the tuple is absent. The relation was
	// fully computed by an earlier stratum (or is extensional), so the
	// check is stable.
	if cap(jr.checkBuf) < len(c.terms) {
		jr.checkBuf = make(db.Tuple, len(c.terms))
	}
	t := jr.checkBuf[:len(c.terms)]
	for i, term := range c.terms {
		t[i] = symOf(term)
	}
	_, present := c.rel.Contains(t)
	return !present
}

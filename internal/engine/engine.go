package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/obs"
)

// FactRef identifies a ground fact as a tuple of a relation.
type FactRef struct {
	Rel *db.Relation
	ID  db.TupleID
}

// Derivation describes one fired rule instantiation. Body aliases an
// engine-internal buffer: listeners must copy it if they retain it past the
// callback.
type Derivation struct {
	// RuleIndex is the index of the rule in the program passed to New.
	RuleIndex int
	// Rule is the source rule.
	Rule *ast.Rule
	// Head is the derived fact.
	Head FactRef
	// HeadNew reports whether the head fact was first derived by this
	// instantiation (false when the fact already existed).
	HeadNew bool
	// Body holds the instantiated positive body facts, in body order.
	// Built-in and negated literals are filters, not facts, and do not
	// appear here.
	Body []FactRef
}

// DerivationListener observes every fired rule instantiation exactly once.
type DerivationListener func(d Derivation)

// FireGate decides whether a candidate rule instantiation fires. vars holds
// the instantiation's variable bindings indexed consistently with
// Engine.RuleVarNames(ruleIndex); it aliases an engine-internal buffer and
// must not be retained. Returning false suppresses the instantiation: no
// listener call and no head insertion.
type FireGate interface {
	ShouldFire(ruleIndex int, vars []db.Sym) bool
}

// Options configures one evaluation run.
type Options struct {
	// Listener, if non-nil, observes every fired instantiation.
	Listener DerivationListener
	// Gate, if non-nil, can veto instantiations before they fire.
	Gate FireGate
	// MaxRounds bounds the number of semi-naive rounds as a safety net
	// against runaway programs; 0 means unbounded (datalog always
	// terminates, so this is belt-and-suspenders for debugging).
	MaxRounds int
	// DisableJoinReorder evaluates rule bodies strictly left to right
	// (after the delta atom) instead of the greedy bound-first order. Join
	// order never changes results; the flag exists for the ablation
	// benchmark.
	DisableJoinReorder bool
	// Context, when non-nil, is checked between semi-naive rounds;
	// cancellation aborts the run with the context's error. Checks are
	// per-round, so cancellation latency is one round of rule firing.
	Context context.Context
	// Obs, when non-nil, receives the engine metrics (see obs names
	// engine.*): run/round/instantiation counters and the per-round delta
	// size histogram. A nil registry costs one pointer check per run.
	Obs *obs.Registry
}

// Stats summarizes an evaluation run.
type Stats struct {
	Rounds         int
	Instantiations int64 // fired instantiations (post-gate)
	Suppressed     int64 // instantiations vetoed by the gate
	NewFacts       int64 // idb tuples first derived during the run
	Elapsed        time.Duration
	// FiredByRule[i] counts rule i's fired instantiations (indexes follow
	// the program's rule order) — the per-rule profile that identifies
	// which rules dominate evaluation cost.
	FiredByRule []int64
}

// HottestRule returns the index of the rule with the most fired
// instantiations, or -1 when nothing fired.
func (s Stats) HottestRule() int {
	best, bestN := -1, int64(0)
	for i, n := range s.FiredByRule {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// Engine evaluates one program over one database. Construct with New, then
// call Run once. An Engine is single-use and not safe for concurrent use.
type Engine struct {
	prog  *ast.Program
	db    *db.Database
	rules []*compiledRule
	ran   bool
}

// New compiles prog against database. All predicates mentioned by the
// program are resolved (idb relations are created empty if absent).
func New(prog *ast.Program, database *db.Database) (*Engine, error) {
	rules, err := compile(prog, database)
	if err != nil {
		return nil, err
	}
	return &Engine{prog: prog, db: database, rules: rules}, nil
}

// RuleVarNames returns the variable slot names of rule ruleIndex, in slot
// order. Gates use this to map slot bindings back to source variables.
func (e *Engine) RuleVarNames(ruleIndex int) []string {
	return e.rules[ruleIndex].varNames
}

// Run evaluates to fixpoint. It may be called once.
func (e *Engine) Run(opts Options) (Stats, error) {
	if e.ran {
		return Stats{}, fmt.Errorf("engine: Run called twice")
	}
	e.ran = true
	start := time.Now()
	var stats Stats

	stats.FiredByRule = make([]int64, len(e.rules))
	ev := &evaluator{engine: e, opts: opts, stats: &stats,
		deltaHist: opts.Obs.Histogram(obs.EngineDeltaSize)}
	runErr := ev.run()

	stats.Elapsed = time.Since(start)
	if reg := opts.Obs; reg != nil {
		reg.Counter(obs.EngineRuns).Inc()
		reg.Counter(obs.EngineRounds).Add(int64(stats.Rounds))
		reg.Counter(obs.EngineInstantiations).Add(stats.Instantiations)
		reg.Counter(obs.EngineSuppressed).Add(stats.Suppressed)
		reg.Counter(obs.EngineNewFacts).Add(stats.NewFacts)
		reg.Histogram(obs.EngineEvalNs).Observe(int64(stats.Elapsed))
	}
	if runErr != nil {
		return stats, runErr
	}
	if opts.MaxRounds > 0 && stats.Rounds >= opts.MaxRounds {
		return stats, fmt.Errorf("engine: exceeded MaxRounds=%d", opts.MaxRounds)
	}
	return stats, nil
}

// evaluator holds the mutable state of one Run.
type evaluator struct {
	engine    *Engine
	opts      Options
	stats     *Stats
	deltaHist *obs.Histogram // per-round delta sizes; nil when disabled

	// watermarks: processedLen[rel] is the tuple count of rel that has been
	// fully processed by previous rounds; roundLen[rel] is the count
	// snapshot at the start of the current round. Tuples with id in
	// [processedLen, roundLen) form the current delta.
	processedLen map[*db.Relation]int
	roundLen     map[*db.Relation]int

	// scratch buffers reused across instantiations.
	vars     []db.Sym
	bound    []bool
	bodyRefs []FactRef
	boundBuf db.Tuple
	checkBuf db.Tuple
}

func (ev *evaluator) run() error {
	e := ev.engine
	strata, err := Stratify(e.prog)
	if err != nil {
		return err
	}
	ev.processedLen = make(map[*db.Relation]int)
	ev.roundLen = make(map[*db.Relation]int)
	rels := map[*db.Relation]bool{}
	for _, r := range e.rules {
		rels[r.head.rel] = true
		for _, b := range r.body {
			rels[b.rel] = true
		}
		for _, c := range r.checks {
			if c.rel != nil {
				rels[c.rel] = true
			}
		}
	}
	// Deterministic iteration order for the relation set.
	relList := make([]*db.Relation, 0, len(rels))
	for rel := range rels {
		relList = append(relList, rel)
	}
	sort.Slice(relList, func(i, j int) bool { return relList[i].Name() < relList[j].Name() })

	for _, ruleIdxs := range strata {
		if err := ev.runStratum(ruleIdxs, relList); err != nil {
			return err
		}
		if ev.opts.MaxRounds > 0 && ev.stats.Rounds >= ev.opts.MaxRounds {
			return nil
		}
	}
	return nil
}

// ctxErr reports the run context's error, nil when no context was set.
func (ev *evaluator) ctxErr() error {
	if ev.opts.Context == nil {
		return nil
	}
	return ev.opts.Context.Err()
}

// runStratum evaluates one stratum's rules to fixpoint. At stratum entry
// all existing tuples count as unprocessed delta, so rules see everything
// derived by earlier strata exactly once.
func (ev *evaluator) runStratum(ruleIdxs []int, relList []*db.Relation) error {
	e := ev.engine
	for _, rel := range relList {
		ev.processedLen[rel] = 0
	}

	// Fact rules of this stratum fire once, before the first round.
	for _, ri := range ruleIdxs {
		if cr := e.rules[ri]; len(cr.body) == 0 {
			ev.fireFactRule(cr)
		}
	}

	for {
		if ev.opts.MaxRounds > 0 && ev.stats.Rounds >= ev.opts.MaxRounds {
			return nil
		}
		if err := ev.ctxErr(); err != nil {
			return err
		}
		// Snapshot the round: delta = [processedLen, roundLen).
		hasDelta := false
		delta := int64(0)
		for _, rel := range relList {
			n := rel.Len()
			ev.roundLen[rel] = n
			if n > ev.processedLen[rel] {
				hasDelta = true
				delta += int64(n - ev.processedLen[rel])
			}
		}
		if !hasDelta {
			return nil
		}
		ev.deltaHist.Observe(delta)
		ev.stats.Rounds++
		for _, ri := range ruleIdxs {
			cr := e.rules[ri]
			if len(cr.body) == 0 {
				continue
			}
			ev.applyRule(cr)
		}
		for _, rel := range relList {
			ev.processedLen[rel] = ev.roundLen[rel]
		}
	}
}

// fireFactRule handles a rule with no positive body atoms: a single
// instantiation with no variables (possibly guarded by ground checks, e.g.
// `p(a) :- lt(1, 2).`).
func (ev *evaluator) fireFactRule(cr *compiledRule) {
	ev.resetScratch(cr)
	ev.completeInstantiation(cr)
}

// applyRule runs the semi-naive decomposition of one rule: one pass per
// body position i, where atom i ranges over the current delta of its
// relation, atoms before i range over strictly-old tuples, and atoms after
// i range over old-plus-delta tuples. This fires every instantiation
// exactly once across the whole run.
func (ev *evaluator) applyRule(cr *compiledRule) {
	for i := range cr.body {
		rel := cr.body[i].rel
		lo, hi := ev.processedLen[rel], ev.roundLen[rel]
		if lo >= hi {
			continue
		}
		// Prune the whole pass when any atom's id range is empty (e.g. a
		// strictly-old range before anything was processed): no
		// instantiation can complete, regardless of join order.
		viable := true
		for j := range cr.body {
			if j == i {
				continue
			}
			jrel := cr.body[j].rel
			var max int
			if j < i {
				max = ev.processedLen[jrel]
			} else {
				max = ev.roundLen[jrel]
			}
			if max == 0 {
				viable = false
				break
			}
		}
		if !viable {
			continue
		}
		ev.resetScratch(cr)
		ev.joinFrom(cr, i, 0)
	}
}

// resetScratch prepares the per-instantiation scratch buffers for cr.
func (ev *evaluator) resetScratch(cr *compiledRule) {
	n := len(cr.varNames)
	if cap(ev.vars) < n {
		ev.vars = make([]db.Sym, n)
		ev.bound = make([]bool, n)
	}
	ev.vars = ev.vars[:n]
	ev.bound = ev.bound[:n]
	for j := range ev.bound {
		ev.bound[j] = false
	}
	if cap(ev.bodyRefs) < len(cr.body) {
		ev.bodyRefs = make([]FactRef, len(cr.body))
	}
	ev.bodyRefs = ev.bodyRefs[:len(cr.body)]
}

// joinFrom matches body atoms in plan order: deltaPos first, then the
// remaining atoms bound-first (or left to right under
// DisableJoinReorder). step counts how many atoms have been matched.
func (ev *evaluator) joinFrom(cr *compiledRule, deltaPos, step int) {
	if step == len(cr.body) {
		ev.completeInstantiation(cr)
		return
	}
	// Determine which atom this step matches.
	var pos int
	if ev.opts.DisableJoinReorder {
		pos = stepAtom(deltaPos, step)
	} else {
		pos = cr.plans[deltaPos][step]
	}
	atom := &cr.body[pos]
	rel := atom.rel
	var minID, maxID int
	switch {
	case pos == deltaPos:
		minID, maxID = ev.processedLen[rel], ev.roundLen[rel]
	case pos < deltaPos:
		minID, maxID = 0, ev.processedLen[rel]
	default:
		minID, maxID = 0, ev.roundLen[rel]
	}
	if minID >= maxID {
		return
	}
	ev.scanAtom(cr, atom, pos, minID, maxID, func() {
		ev.joinFrom(cr, deltaPos, step+1)
	})
}

// stepAtom maps a step number to a body position: step 0 is the delta
// position; later steps walk the remaining positions in order.
func stepAtom(deltaPos, step int) int {
	if step == 0 {
		return deltaPos
	}
	if step <= deltaPos {
		return step - 1
	}
	return step
}

// scanAtom enumerates the tuples of atom's relation with id in
// [minID, maxID) that are consistent with the current bindings, extends the
// bindings, records the body fact, and calls next for each match. Bindings
// made here are rolled back before returning.
func (ev *evaluator) scanAtom(cr *compiledRule, atom *compiledAtom, pos, minID, maxID int, next func()) {
	rel := atom.rel
	// Build the bound-position mask and lookup tuple.
	if cap(ev.boundBuf) < atom.arity {
		ev.boundBuf = make(db.Tuple, atom.arity)
	}
	lookup := ev.boundBuf[:atom.arity]
	var mask uint32
	for j, t := range atom.terms {
		switch {
		case !t.isVar:
			mask |= 1 << uint(j)
			lookup[j] = t.sym
		case ev.bound[t.slot]:
			mask |= 1 << uint(j)
			lookup[j] = ev.vars[t.slot]
		}
	}

	tryTuple := func(id db.TupleID) {
		t := rel.Tuple(id)
		// Bind unbound variable positions, checking repeated variables.
		var newlyBound [31]int
		nNew := 0
		ok := true
		for j, term := range atom.terms {
			if !term.isVar {
				// Constants are always part of the lookup mask, so the index
				// path guarantees a match, and the scan path (mask==0) only
				// occurs for constant-free atoms.
				continue
			}
			if ev.bound[term.slot] {
				if ev.vars[term.slot] != t[j] {
					ok = false
					break
				}
				continue
			}
			ev.vars[term.slot] = t[j]
			ev.bound[term.slot] = true
			newlyBound[nNew] = term.slot
			nNew++
		}
		if ok {
			ev.bodyRefs[pos] = FactRef{Rel: rel, ID: id}
			next()
		}
		for k := 0; k < nNew; k++ {
			ev.bound[newlyBound[k]] = false
		}
	}

	if ids, usedIndex := rel.LookupPattern(mask, lookup); usedIndex {
		// ids are ascending; restrict to [minID, maxID).
		start := sort.Search(len(ids), func(i int) bool { return int(ids[i]) >= minID })
		for _, id := range ids[start:] {
			if int(id) >= maxID {
				break
			}
			tryTuple(id)
		}
		return
	}
	// No bound positions: scan the id range, verifying constants inline
	// (none exist when mask==0, but keep the check for clarity).
	for id := minID; id < maxID; id++ {
		tryTuple(db.TupleID(id))
	}
}

// completeInstantiation is called with all positive body atoms matched: it
// evaluates the rule's checks (an instantiation failing a check does not
// exist), consults the gate, inserts the head, and notifies the listener.
func (ev *evaluator) completeInstantiation(cr *compiledRule) {
	for i := range cr.checks {
		if !ev.evalCheck(&cr.checks[i]) {
			return
		}
	}
	if ev.opts.Gate != nil && !ev.opts.Gate.ShouldFire(cr.index, ev.vars) {
		ev.stats.Suppressed++
		return
	}
	ev.emit(cr)
}

// evalCheck evaluates one built-in or negated literal under the current
// (fully bound, by safety) variable bindings.
func (ev *evaluator) evalCheck(c *compiledCheck) bool {
	symOf := func(t atomTerm) db.Sym {
		if t.isVar {
			return ev.vars[t.slot]
		}
		return t.sym
	}
	if c.builtin {
		symbols := ev.engine.db.Symbols()
		return ast.EvalBuiltin(c.pred, symbols.Name(symOf(c.terms[0])), symbols.Name(symOf(c.terms[1])))
	}
	// Negated atom: succeed iff the tuple is absent. The relation was
	// fully computed by an earlier stratum (or is extensional), so the
	// check is stable.
	if cap(ev.checkBuf) < len(c.terms) {
		ev.checkBuf = make(db.Tuple, len(c.terms))
	}
	t := ev.checkBuf[:len(c.terms)]
	for i, term := range c.terms {
		t[i] = symOf(term)
	}
	_, present := c.rel.Contains(t)
	return !present
}

func (ev *evaluator) emit(cr *compiledRule) {
	headRel := cr.head.rel
	ht := make(db.Tuple, cr.head.arity)
	for j, t := range cr.head.terms {
		if t.isVar {
			ht[j] = ev.vars[t.slot]
		} else {
			ht[j] = t.sym
		}
	}
	id, added := headRel.Insert(ht)
	ev.stats.Instantiations++
	ev.stats.FiredByRule[cr.index]++
	if added {
		ev.stats.NewFacts++
	}
	if ev.opts.Listener != nil {
		ev.opts.Listener(Derivation{
			RuleIndex: cr.index,
			Rule:      &cr.src,
			Head:      FactRef{Rel: headRel, ID: id},
			HeadNew:   added,
			Body:      ev.bodyRefs[:len(cr.body)],
		})
	}
}

// Package engine implements bottom-up semi-naive evaluation of datalog
// programs over internal/db databases.
//
// The engine is deterministic: it computes the full consequence P(D) of a
// program. The probabilistic semantics of the paper is layered on top by
// its consumers in two ways:
//
//   - a DerivationListener observes every rule instantiation exactly once,
//     which is what the WD-graph builder (Algorithm 1 of the paper) needs;
//   - a FireGate can veto instantiations before they fire, which is how the
//     Magic^S CM algorithm folds the rule-probability sampling into graph
//     construction (Section IV-B2 of the paper).
package engine

import (
	"fmt"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/planner"
)

// atomTerm is one argument position of a compiled atom: either a constant
// symbol or a reference to a variable slot of the rule.
type atomTerm struct {
	isVar bool
	slot  int    // variable slot index when isVar
	sym   db.Sym // interned constant otherwise
}

// compiledAtom is an atom with terms resolved to variable slots / interned
// constants and the predicate resolved to its relation.
type compiledAtom struct {
	pred  string
	arity int
	rel   *db.Relation
	terms []atomTerm
}

// compiledCheck is a non-binding body literal evaluated after the positive
// join: a built-in comparison or a negated atom. Safety (ast.Rule.Safe)
// guarantees all its variables are bound by the positive atoms.
type compiledCheck struct {
	builtin bool
	negated bool
	pred    string
	rel     *db.Relation // negated checks only
	terms   []atomTerm
}

// compiledRule is a rule with a dense variable slot assignment. body holds
// the positive, non-built-in atoms (the joinable literals); checks holds
// built-ins and negated atoms.
type compiledRule struct {
	src      ast.Rule
	index    int
	varNames []string // slot -> variable name
	head     compiledAtom
	body     []compiledAtom
	checks   []compiledCheck

	// plans[d] is the join order used when body position d carries the
	// delta: plans[d][0] == d, and the remaining positions are ordered
	// bound-first (greedily maximizing already-bound argument positions)
	// so index lookups stay selective. Join order affects only cost, never
	// the result set; the semi-naive watermark of each atom depends on its
	// original position, not its place in the plan.
	plans [][]int

	// Planner-sourced scheduling (NewPlanned only). planned selects the
	// early-check evaluation path; the positive-atom order in plans is the
	// same either way (planner.Build replicates buildPlans exactly), so
	// planning never changes the derivation stream. checksAt[d][step] lists
	// check indices to evaluate as soon as plan step `step` of delta
	// position d binds its atom; preChecks lists ground checks evaluated
	// once per pass. Both may alias a shared cached Plan — read-only.
	planned   bool
	checksAt  [][][]int
	preChecks []int
}

// buildPlans fills cr.plans with a greedy bound-first order per delta
// position.
func (cr *compiledRule) buildPlans() {
	n := len(cr.body)
	cr.plans = make([][]int, n)
	for d := 0; d < n; d++ {
		bound := make([]bool, len(cr.varNames))
		bind := func(a *compiledAtom) {
			for _, t := range a.terms {
				if t.isVar {
					bound[t.slot] = true
				}
			}
		}
		score := func(a *compiledAtom) int {
			s := 0
			for _, t := range a.terms {
				if !t.isVar || bound[t.slot] {
					s++
				}
			}
			return s
		}
		plan := make([]int, 0, n)
		used := make([]bool, n)
		plan = append(plan, d)
		used[d] = true
		bind(&cr.body[d])
		for len(plan) < n {
			best, bestScore := -1, -1
			for p := 0; p < n; p++ {
				if used[p] {
					continue
				}
				if s := score(&cr.body[p]); s > bestScore {
					best, bestScore = p, s
				}
			}
			plan = append(plan, best)
			used[best] = true
			bind(&cr.body[best])
		}
		cr.plans[d] = plan
	}
}

// applyPlan swaps the rule onto the planner path: join order from the
// (possibly cached) Plan, checks scheduled at their earliest bound step.
func (cr *compiledRule) applyPlan(pl *planner.Planner) {
	p := pl.PlanRule(plannerRule(cr))
	cr.plans = p.Order
	cr.checksAt = p.ChecksAt
	cr.preChecks = p.Pre
	cr.planned = true
}

// plannerRule projects the compiled rule onto the planner's shape view:
// variable slots kept, constants anonymized (plans never depend on which
// constant sits in a position).
func plannerRule(cr *compiledRule) *planner.Rule {
	shapeTerms := func(terms []atomTerm) []planner.Term {
		out := make([]planner.Term, len(terms))
		for j, t := range terms {
			out[j] = planner.Term{IsVar: t.isVar, Slot: t.slot}
		}
		return out
	}
	r := &planner.Rule{
		NumVars: len(cr.varNames),
		Atoms:   make([]planner.Atom, len(cr.body)),
		Checks:  make([]planner.Check, len(cr.checks)),
	}
	for i := range cr.body {
		r.Atoms[i] = planner.Atom{Pred: cr.body[i].pred, Terms: shapeTerms(cr.body[i].terms)}
	}
	for i := range cr.checks {
		c := &cr.checks[i]
		r.Checks[i] = planner.Check{Builtin: c.builtin, Negated: c.negated, Pred: c.pred, Terms: shapeTerms(c.terms)}
	}
	return r
}

// compile resolves a program against a database: it interns all constants,
// assigns variable slots per rule, and resolves (creating when necessary)
// the relation of every predicate.
func compile(prog *ast.Program, database *db.Database) ([]*compiledRule, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid program: %w", err)
	}
	rules := make([]*compiledRule, len(prog.Rules))
	for i, r := range prog.Rules {
		cr := &compiledRule{src: r, index: i}
		slots := map[string]int{}
		slotOf := func(name string) int {
			if s, ok := slots[name]; ok {
				return s
			}
			s := len(cr.varNames)
			slots[name] = s
			cr.varNames = append(cr.varNames, name)
			return s
		}
		compileAtom := func(a ast.Atom) (compiledAtom, error) {
			if a.Arity() > 31 {
				return compiledAtom{}, fmt.Errorf("engine: predicate %s arity %d exceeds 31", a.Predicate, a.Arity())
			}
			rel, err := database.EnsureRelation(a.Predicate, a.Arity())
			if err != nil {
				return compiledAtom{}, fmt.Errorf("engine: %w", err)
			}
			ca := compiledAtom{
				pred:  a.Predicate,
				arity: a.Arity(),
				rel:   rel,
				terms: make([]atomTerm, a.Arity()),
			}
			for j, t := range a.Terms {
				if t.IsVar() {
					ca.terms[j] = atomTerm{isVar: true, slot: slotOf(t.Name)}
				} else {
					ca.terms[j] = atomTerm{sym: database.Symbols().Intern(t.Name)}
				}
			}
			return ca, nil
		}
		// Terms of a check atom are compiled without resolving a relation
		// (built-ins have none).
		compileTerms := func(a ast.Atom) []atomTerm {
			terms := make([]atomTerm, a.Arity())
			for j, t := range a.Terms {
				if t.IsVar() {
					terms[j] = atomTerm{isVar: true, slot: slotOf(t.Name)}
				} else {
					terms[j] = atomTerm{sym: database.Symbols().Intern(t.Name)}
				}
			}
			return terms
		}
		// Positive body first so that head and check variables reuse body
		// slots (range restriction and safety guarantee they all occur in
		// positive body atoms).
		var err error
		for _, b := range r.Body {
			if b.Negated || ast.IsBuiltin(b.Predicate) {
				continue
			}
			ca, err := compileAtom(b)
			if err != nil {
				return nil, err
			}
			cr.body = append(cr.body, ca)
		}
		for _, b := range r.Body {
			switch {
			case ast.IsBuiltin(b.Predicate):
				cr.checks = append(cr.checks, compiledCheck{
					builtin: true,
					pred:    b.Predicate,
					terms:   compileTerms(b),
				})
			case b.Negated:
				if b.Arity() > 31 {
					return nil, fmt.Errorf("engine: predicate %s arity %d exceeds 31", b.Predicate, b.Arity())
				}
				rel, err := database.EnsureRelation(b.Predicate, b.Arity())
				if err != nil {
					return nil, fmt.Errorf("engine: %w", err)
				}
				cr.checks = append(cr.checks, compiledCheck{
					negated: true,
					pred:    b.Predicate,
					rel:     rel,
					terms:   compileTerms(b),
				})
			}
		}
		if cr.head, err = compileAtom(r.Head); err != nil {
			return nil, err
		}
		cr.buildPlans()
		rules[i] = cr
	}
	return rules, nil
}

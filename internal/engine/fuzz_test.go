package engine_test

import (
	"os"
	"path/filepath"
	"testing"

	"contribmax/internal/analysis"
	"contribmax/internal/engine"
	"contribmax/internal/engine/difftest"
	"contribmax/internal/parser"
)

// Input ceilings for FuzzEvalProgram. The engine only checks cancellation
// and MaxRounds at round boundaries, so a single pathological round must
// already be cheap: a rule body is a potential cross product, so the
// worst-case pass is fuzzMaxFacts^fuzzMaxBody instantiations (24^3 ≈ 14k),
// times rules × body positions × evaluation levels — comfortably inside a
// fuzz iteration's budget. (Body length 4 over 32 facts, the previous
// ceilings, let the fuzzer synthesize single rounds of ~10^6
// instantiations per pass and drop throughput to a few execs/sec.)
const (
	fuzzMaxProgBytes = 2048
	fuzzMaxFactBytes = 1024
	fuzzMaxRules     = 12
	fuzzMaxBody      = 3
	fuzzMaxFacts     = 24
	fuzzMaxRounds    = 4
	fuzzMaxDerived   = 2000
)

// FuzzEvalProgram drives the full front half of the pipeline — parse,
// analyze, stratify, evaluate — on arbitrary program/fact sources,
// asserting crash-freedom and that parallel evaluation agrees
// byte-for-byte with sequential evaluation (including mid-run aborts from
// the round and derivation budgets). Inputs the pipeline itself rejects
// (parse or analysis errors, unstratifiable programs, schema conflicts)
// are skipped: rejection is correct behavior, crashing is the bug.
func FuzzEvalProgram(f *testing.F) {
	for _, p := range []string{
		"../../examples/quickstart/program.dl",
		"../../examples/uncertain/program.dl",
		"../../testdata/trade.dl",
	} {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		var factSrc []byte
		for _, fp := range []string{"trade.facts", "extracted.facts"} {
			if b, err := os.ReadFile(filepath.Join(filepath.Dir(p), fp)); err == nil {
				factSrc = b
				break
			}
		}
		f.Add(string(src), string(factSrc))
	}
	f.Add("a(X) :- e(X).\nb(X) :- a(X), not c(X).\nc(X) :- e2(X).", "e(k1). e(k2). e2(k1).")
	f.Add("t(X,Z) :- t(X,Y), t(Y,Z).\nt(X,Y) :- e(X,Y).", "e(a,b). e(b,c). e(c,a).")
	f.Add("p(X) :- e(X), lt(X, c9).", "e(c1). e(c42).")

	f.Fuzz(func(t *testing.T, progSrc, factSrc string) {
		if len(progSrc) > fuzzMaxProgBytes || len(factSrc) > fuzzMaxFactBytes {
			t.Skip("oversized input")
		}
		prog, err := parser.ParseProgram(progSrc)
		if err != nil {
			return
		}
		if len(prog.Rules) > fuzzMaxRules {
			return
		}
		for _, r := range prog.Rules {
			if len(r.Body) > fuzzMaxBody {
				return
			}
		}
		if err := analysis.FirstError(analysis.Analyze(prog, analysis.Options{})); err != nil {
			return
		}
		if _, err := engine.Stratify(prog); err != nil {
			return
		}
		facts, err := parser.ParseProbFacts(factSrc)
		if err != nil || len(facts) > fuzzMaxFacts {
			return
		}
		spec := &difftest.Spec{Prog: prog}
		for _, pf := range facts {
			spec.Facts = append(spec.Facts, pf.Atom)
		}
		if _, err := spec.NewDB(); err != nil {
			return // fact schema conflicts with the program's
		}
		err = difftest.CompareParallel(spec, engine.Options{MaxRounds: fuzzMaxRounds}, fuzzMaxDerived, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		// Plan-mode toggle: the planned engine must reproduce the legacy
		// snapshot byte-for-byte, sequentially and in parallel, on the same
		// budgeted run.
		err = difftest.ComparePlanModes(spec, engine.Options{MaxRounds: fuzzMaxRounds}, fuzzMaxDerived, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
	})
}

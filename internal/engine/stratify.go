package engine

import (
	"fmt"
	"sort"

	"contribmax/internal/ast"
)

// Stratify partitions the program's rules into evaluation strata: rules
// are grouped by their head predicate's stratum, where a predicate's
// stratum is at least that of every positive idb body predicate of its
// rules and strictly greater than that of every negated idb body
// predicate. Extensional predicates live at stratum 0.
//
// It returns the rule indexes per stratum, in ascending stratum order, or
// an error if the program is not stratifiable (a recursive cycle passes
// through negation).
func Stratify(prog *ast.Program) ([][]int, error) {
	idb := map[string]bool{}
	for _, r := range prog.Rules {
		idb[r.Head.Predicate] = true
	}
	stratum := map[string]int{}
	limit := len(idb) + 1

	// Iterate to fixpoint; the stratum of any predicate is bounded by the
	// number of idb predicates in a stratifiable program, so exceeding the
	// bound proves a negative cycle.
	changed := true
	for changed {
		changed = false
		for _, r := range prog.Rules {
			h := r.Head.Predicate
			for _, b := range r.Body {
				if !idb[b.Predicate] {
					continue
				}
				need := stratum[b.Predicate]
				if b.Negated {
					need++
				}
				if stratum[h] < need {
					stratum[h] = need
					if stratum[h] > limit {
						return nil, fmt.Errorf("engine: program is not stratifiable (negation cycle through %s)", h)
					}
					changed = true
				}
			}
		}
	}

	byStratum := map[int][]int{}
	for i, r := range prog.Rules {
		s := stratum[r.Head.Predicate]
		byStratum[s] = append(byStratum[s], i)
	}
	levels := make([]int, 0, len(byStratum))
	for s := range byStratum {
		levels = append(levels, s)
	}
	sort.Ints(levels)
	out := make([][]int, 0, len(levels))
	for _, s := range levels {
		out = append(out, byStratum[s])
	}
	return out, nil
}

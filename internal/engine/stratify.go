package engine

import (
	"fmt"
	"sort"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
)

// Stratify partitions the program's rules into evaluation strata: rules
// are grouped by their head predicate's stratum, where a predicate's
// stratum is at least that of every positive idb body predicate of its
// rules and strictly greater than that of every negated idb body
// predicate. Extensional predicates live at stratum 0.
//
// It returns the rule indexes per stratum, in ascending stratum order, or
// an error if the program is not stratifiable. The error spells out an
// offending negation cycle with the source position of the negated literal
// when the program carries positions (analysis.DepGraph supplies both).
func Stratify(prog *ast.Program) ([][]int, error) {
	g := analysis.NewDepGraph(prog)
	stratum, cycle := g.Strata()
	if cycle != nil {
		neg := cycle.NegEdge()
		if neg.Pos.IsValid() {
			return nil, fmt.Errorf("engine: %s: program is not stratifiable: recursion through negation (%s)", neg.Pos, cycle)
		}
		return nil, fmt.Errorf("engine: program is not stratifiable: recursion through negation (%s)", cycle)
	}

	byStratum := map[int][]int{}
	for i, r := range prog.Rules {
		s := stratum[r.Head.Predicate]
		byStratum[s] = append(byStratum[s], i)
	}
	levels := make([]int, 0, len(byStratum))
	for s := range byStratum {
		levels = append(levels, s)
	}
	sort.Ints(levels)
	out := make([][]int, 0, len(levels))
	for _, s := range levels {
		out = append(out, byStratum[s])
	}
	return out, nil
}

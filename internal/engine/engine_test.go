package engine_test

import (
	"fmt"
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/parser"
)

// mustProgram parses a program or fails the test.
func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	return p
}

// mustFacts inserts parsed facts into a fresh database.
func mustFacts(t *testing.T, src string) *db.Database {
	t.Helper()
	facts, err := parser.ParseFacts(src)
	if err != nil {
		t.Fatalf("parse facts: %v", err)
	}
	d := db.NewDatabase()
	for _, f := range facts {
		if _, _, _, err := d.InsertAtom(f); err != nil {
			t.Fatalf("insert %s: %v", f, err)
		}
	}
	return d
}

// run evaluates and returns the derived atoms of pred as sorted strings.
func run(t *testing.T, prog *ast.Program, d *db.Database, pred string) []string {
	t.Helper()
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var out []string
	for _, a := range d.Facts(pred) {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

func TestNonRecursiveJoin(t *testing.T) {
	prog := mustProgram(t, `
		deals(A, B) :- exports(A, C), imports(B, C).
	`)
	d := mustFacts(t, `
		exports(france, wine). exports(cuba, tobacco).
		imports(germany, wine). imports(india, tobacco). imports(usa, wine).
	`)
	got := run(t, prog, d, "deals")
	want := []string{
		"deals(cuba, india)",
		"deals(france, germany)",
		"deals(france, usa)",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("deals = %v, want %v", got, want)
	}
}

func TestTransitiveClosure(t *testing.T) {
	prog := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustFacts(t, `
		e(a, b). e(b, c). e(c, d). e(d, e).
	`)
	got := run(t, prog, d, "tc")
	// A 5-node path has C(5,2) = 10 ordered reachable pairs.
	if len(got) != 10 {
		t.Fatalf("tc has %d facts, want 10: %v", len(got), got)
	}
	for _, want := range []string{"tc(a, e)", "tc(a, b)", "tc(b, e)"} {
		if !containsStr(got, want) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	prog := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), e(Z, Y).
	`)
	d := mustFacts(t, `e(a, b). e(b, c). e(c, a).`)
	got := run(t, prog, d, "tc")
	if len(got) != 9 {
		t.Fatalf("tc over a 3-cycle has %d facts, want 9: %v", len(got), got)
	}
}

func TestRepeatedVariableInBody(t *testing.T) {
	prog := mustProgram(t, `
		loop(X) :- e(X, X).
	`)
	d := mustFacts(t, `e(a, a). e(a, b). e(c, c).`)
	got := run(t, prog, d, "loop")
	want := []string{"loop(a)", "loop(c)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("loop = %v, want %v", got, want)
	}
}

func TestConstantsInRule(t *testing.T) {
	prog := mustProgram(t, `
		fromFrance(P) :- exports(france, P).
		special(P) :- exports(france, P), imports(usa, P).
	`)
	d := mustFacts(t, `
		exports(france, wine). exports(france, oil). exports(cuba, sugar).
		imports(usa, oil).
	`)
	if got := run(t, prog, d, "fromFrance"); len(got) != 2 {
		t.Errorf("fromFrance = %v, want 2 facts", got)
	}
	if got := run2(t, d, "special"); fmt.Sprint(got) != "[special(oil)]" {
		t.Errorf("special = %v, want [special(oil)]", got)
	}
}

// run2 just reads already-derived facts (the previous run call evaluated the
// full program).
func run2(t *testing.T, d *db.Database, pred string) []string {
	t.Helper()
	var out []string
	for _, a := range d.Facts(pred) {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

func TestFactRule(t *testing.T) {
	prog := mustProgram(t, `
		seed(a, b).
		p(X, Y) :- seed(X, Y).
	`)
	d := db.NewDatabase()
	if got := run(t, prog, d, "p"); fmt.Sprint(got) != "[p(a, b)]" {
		t.Errorf("p = %v", got)
	}
}

func TestEachInstantiationFiresExactlyOnce(t *testing.T) {
	prog := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustFacts(t, `e(a, b). e(b, c). e(c, d). e(a, c). e(b, d).`)
	seen := map[string]int{}
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(engine.Options{Listener: func(dv engine.Derivation) {
		key := fmt.Sprint(dv.RuleIndex, dv.Head.Rel.Name(), dv.Head.ID)
		for _, b := range dv.Body {
			key += fmt.Sprint("|", b.Rel.Name(), b.ID)
		}
		seen[key]++
	}})
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("instantiation %s fired %d times", k, n)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no instantiations observed")
	}
}

func TestGateVeto(t *testing.T) {
	prog := mustProgram(t, `
		r1: tc(X, Y) :- e(X, Y).
		r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustFacts(t, `e(a, b). e(b, c).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	// Veto all instantiations of r2 (rule index 1): only base edges derive.
	stats, err := eng.Run(engine.Options{Gate: gateFunc(func(ruleIndex int, _ []db.Sym) bool {
		return ruleIndex != 1
	})})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Suppressed == 0 {
		t.Error("expected suppressed instantiations")
	}
	got := run2(t, d, "tc")
	want := []string{"tc(a, b)", "tc(b, c)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tc = %v, want %v", got, want)
	}
}

type gateFunc func(ruleIndex int, vars []db.Sym) bool

func (f gateFunc) ShouldFire(ruleIndex int, vars []db.Sym) bool { return f(ruleIndex, vars) }

func TestGateSeesBindings(t *testing.T) {
	prog := mustProgram(t, `
		p(X, Y) :- e(X, Y).
	`)
	d := mustFacts(t, `e(a, b). e(c, d).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	names := eng.RuleVarNames(0)
	if len(names) != 2 {
		t.Fatalf("var names = %v", names)
	}
	xi, yi := indexOf(names, "X"), indexOf(names, "Y")
	var bindings [][2]string
	_, err = eng.Run(engine.Options{Gate: gateFunc(func(_ int, vars []db.Sym) bool {
		bindings = append(bindings, [2]string{d.Symbols().Name(vars[xi]), d.Symbols().Name(vars[yi])})
		return true
	})})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(bindings, func(i, j int) bool { return bindings[i][0] < bindings[j][0] })
	if fmt.Sprint(bindings) != "[[a b] [c d]]" {
		t.Errorf("bindings = %v", bindings)
	}
}

func TestRunTwiceFails(t *testing.T) {
	prog := mustProgram(t, `p(X) :- e(X).`)
	d := mustFacts(t, `e(a).`)
	eng, _ := engine.New(prog, d)
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err == nil {
		t.Error("second Run should fail")
	}
}

func TestHeadNewFlag(t *testing.T) {
	prog := mustProgram(t, `
		p(X) :- e(X, Y).
	`)
	d := mustFacts(t, `e(a, b). e(a, c).`)
	eng, _ := engine.New(prog, d)
	news := 0
	total := 0
	_, err := eng.Run(engine.Options{Listener: func(dv engine.Derivation) {
		total++
		if dv.HeadNew {
			news++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || news != 1 {
		t.Errorf("total=%d news=%d, want 2 and 1", total, news)
	}
}

func TestSelfJoinSameRelationDelta(t *testing.T) {
	// Regression guard for the semi-naive delta decomposition on self-joins:
	// path counting over two hops.
	prog := mustProgram(t, `
		two(X, Z) :- e(X, Y), e(Y, Z).
	`)
	d := mustFacts(t, `e(a, b). e(b, c). e(c, d).`)
	got := run(t, prog, d, "two")
	want := []string{"two(a, c)", "two(b, d)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("two = %v, want %v", got, want)
	}
}

func TestZeroArityPredicate(t *testing.T) {
	prog := mustProgram(t, `
		trigger :- e(a, X).
		q(X) :- trigger, e(Y, X).
	`)
	d := mustFacts(t, `e(a, b). e(b, c).`)
	got := run(t, prog, d, "q")
	want := []string{"q(b)", "q(c)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("q = %v, want %v", got, want)
	}
}

func TestLinearVsNonLinearTCAgree(t *testing.T) {
	facts := `e(a, b). e(b, c). e(c, d). e(d, a). e(b, e2). e(e2, f).`
	linear := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), e(Z, Y).
	`)
	nonlinear := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d1 := mustFacts(t, facts)
	d2 := mustFacts(t, facts)
	g1 := run(t, linear, d1, "tc")
	g2 := run(t, nonlinear, d2, "tc")
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Errorf("linear %v != nonlinear %v", g1, g2)
	}
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

func containsStr(xs []string, s string) bool { return indexOf(xs, s) >= 0 }

func TestMaxRoundsAborts(t *testing.T) {
	prog := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustFacts(t, `e(a, b). e(b, c). e(c, d). e(d, e2). e(e2, f).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := eng.Run(engine.Options{MaxRounds: 1})
	if stats.Rounds > 1 {
		t.Errorf("rounds = %d, want <= 1", stats.Rounds)
	}
	// Round 1 only lifts base edges; transitive pairs need more rounds.
	if got := len(d.Facts("tc")); got != 5 {
		t.Errorf("tc after 1 round = %d, want 5 (base lifts only)", got)
	}
}

func TestArityLimit(t *testing.T) {
	terms := make([]ast.Term, 32)
	for i := range terms {
		terms[i] = ast.V(fmt.Sprintf("V%d", i))
	}
	prog := ast.NewProgram(ast.Rule{
		Label: "r",
		Prob:  1,
		Head:  ast.NewAtom("wide", terms...),
		Body:  []ast.Atom{ast.NewAtom("src", terms...)},
	})
	d := db.NewDatabase()
	if _, err := engine.New(prog, d); err == nil {
		t.Error("arity 32 should be rejected")
	}
}

func TestEmptyProgram(t *testing.T) {
	d := mustFacts(t, `e(a).`)
	eng, err := engine.New(ast.NewProgram(), d)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(engine.Options{})
	if err != nil || stats.NewFacts != 0 {
		t.Errorf("empty program: stats=%+v err=%v", stats, err)
	}
}

func TestEmptyDatabase(t *testing.T) {
	prog := mustProgram(t, `tc(X, Y) :- e(X, Y).`)
	eng, err := engine.New(prog, db.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(engine.Options{})
	if err != nil || stats.Instantiations != 0 {
		t.Errorf("empty db: stats=%+v err=%v", stats, err)
	}
}

package engine_test

import (
	"fmt"
	"sort"
	"testing"

	"contribmax/internal/engine"
	"contribmax/internal/parser"
)

func TestStratifyPositiveProgramSingleStratum(t *testing.T) {
	prog := mustProgram(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	strata, err := engine.Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 || len(strata[0]) != 2 {
		t.Errorf("strata = %v", strata)
	}
}

func TestStratifyLayersNegation(t *testing.T) {
	prog := mustProgram(t, `
		reach(X) :- source(X).
		reach(Y) :- reach(X), e(X, Y).
		unreached(X) :- node(X), not reach(X).
		summary(X) :- unreached(X), important(X).
	`)
	strata, err := engine.Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %v, want 2", strata)
	}
	// reach rules (indexes 0, 1) below the negation consumers (2, 3).
	if fmt.Sprint(strata[0]) != "[0 1]" || fmt.Sprint(strata[1]) != "[2 3]" {
		t.Errorf("strata = %v", strata)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	prog := mustProgram(t, `
		p(X) :- base(X), not q(X).
		q(X) :- base(X), not p(X).
	`)
	if _, err := engine.Stratify(prog); err == nil {
		t.Error("negation cycle should not stratify")
	}
}

func TestNegationSetDifference(t *testing.T) {
	prog := mustProgram(t, `
		onlyA(X) :- a(X), not b(X).
	`)
	d := mustFacts(t, `a(1). a(2). a(3). b(2).`)
	got := run(t, prog, d, "onlyA")
	want := []string{"onlyA(1)", "onlyA(3)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("onlyA = %v, want %v", got, want)
	}
}

func TestNegationOverDerivedRelation(t *testing.T) {
	// Unreachable nodes: negation over a recursively computed relation.
	prog := mustProgram(t, `
		reach(X) :- source(X).
		reach(Y) :- reach(X), e(X, Y).
		unreached(X) :- node(X), not reach(X).
	`)
	d := mustFacts(t, `
		node(a). node(b). node(c). node(d).
		source(a).
		e(a, b). e(b, c). e(d, d).
	`)
	got := run(t, prog, d, "unreached")
	want := []string{"unreached(d)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("unreached = %v, want %v", got, want)
	}
}

func TestDoubleNegation(t *testing.T) {
	prog := mustProgram(t, `
		p(X) :- base(X), not q(X).
		q(X) :- mark(X).
		r(X) :- base(X), not p(X).
	`)
	d := mustFacts(t, `base(1). base(2). mark(1).`)
	// q = {1}; p = base \ q = {2}; r = base \ p = {1}.
	if got := run(t, prog, d, "r"); fmt.Sprint(got) != "[r(1)]" {
		t.Errorf("r = %v", got)
	}
}

func TestNegatedEDB(t *testing.T) {
	prog := mustProgram(t, `
		noFriend(X, Y) :- person(X), person(Y), not friend(X, Y), neq(X, Y).
	`)
	d := mustFacts(t, `person(ann). person(bob). person(cat). friend(ann, bob).`)
	got := run(t, prog, d, "noFriend")
	if len(got) != 5 { // 6 ordered pairs minus friend(ann,bob)
		t.Errorf("noFriend = %v, want 5 tuples", got)
	}
}

func TestBuiltinsComparisons(t *testing.T) {
	prog := mustProgram(t, `
		older(X, Y) :- age(X, A), age(Y, B), gt(A, B).
		adult(X) :- age(X, A), gte(A, 18).
		peer(X, Y) :- age(X, A), age(Y, A), neq(X, Y).
	`)
	d := mustFacts(t, `age(ann, 30). age(bob, 17). age(cat, 30).`)
	if got := run(t, prog, d, "older"); fmt.Sprint(got) != "[older(ann, bob) older(cat, bob)]" {
		t.Errorf("older = %v", got)
	}
	if got := run2(t, d, "adult"); fmt.Sprint(got) != "[adult(ann) adult(cat)]" {
		t.Errorf("adult = %v", got)
	}
	if got := run2(t, d, "peer"); fmt.Sprint(got) != "[peer(ann, cat) peer(cat, ann)]" {
		t.Errorf("peer = %v", got)
	}
}

func TestBuiltinNumericVsLexicographic(t *testing.T) {
	prog := mustProgram(t, `
		numless(X, Y) :- v(X), v(Y), lt(X, Y).
	`)
	// Numerically 9 < 10, lexicographically "9" > "10": values that parse
	// as numbers must compare numerically.
	d := mustFacts(t, `v(9). v(10).`)
	if got := run(t, prog, d, "numless"); fmt.Sprint(got) != "[numless(9, 10)]" {
		t.Errorf("numless = %v", got)
	}
	prog2 := mustProgram(t, `
		lexless(X, Y) :- w(X), w(Y), lt(X, Y).
	`)
	d2 := mustFacts(t, `w(apple). w(pear).`)
	if got := run(t, prog2, d2, "lexless"); fmt.Sprint(got) != "[lexless(apple, pear)]" {
		t.Errorf("lexless = %v", got)
	}
}

func TestGroundBuiltinGuard(t *testing.T) {
	prog := mustProgram(t, `
		yes(ok) :- lt(1, 2).
		no(bad) :- lt(2, 1).
	`)
	d := mustFacts(t, `dummy(x).`)
	if got := run(t, prog, d, "yes"); fmt.Sprint(got) != "[yes(ok)]" {
		t.Errorf("yes = %v", got)
	}
	if got := run2(t, d, "no"); len(got) != 0 {
		t.Errorf("no = %v, want empty", got)
	}
}

func TestBuiltinBodyExcludedFromDerivationBody(t *testing.T) {
	prog := mustProgram(t, `
		p(X, Y) :- e(X, Y), neq(X, Y).
	`)
	d := mustFacts(t, `e(a, b). e(c, c).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	var bodies int
	_, err = eng.Run(engine.Options{Listener: func(dv engine.Derivation) {
		bodies = len(dv.Body)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if bodies != 1 {
		t.Errorf("derivation body length = %d, want 1 (builtin excluded)", bodies)
	}
	if got := run2(t, d, "p"); fmt.Sprint(got) != "[p(a, b)]" {
		t.Errorf("p = %v", got)
	}
}

func TestValidationRejectsUnsafeNegation(t *testing.T) {
	cases := []string{
		`p(X) :- a(X), not q(X, Y).`,   // Y only in negated atom
		`p(X) :- a(X), lt(X, Y).`,      // Y only in builtin
		`p(X) :- not q(X).`,            // no positive binding at all
		`lt(X, Y) :- a(X), a(Y).`,      // builtin head
		`p(X) :- a(X), neq(X).`,        // builtin arity
		`p(X) :- a(X), not neq(X, X).`, // negated builtin
	}
	for _, src := range cases {
		if _, err := parser.ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q): want validation error", src)
		}
	}
}

func TestUnstratifiableRunFails(t *testing.T) {
	prog := mustProgram(t, `
		p(X) :- base(X), not q(X).
		q(X) :- base(X), not p(X).
	`)
	d := mustFacts(t, `base(1).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err == nil {
		t.Error("Run should fail on unstratifiable program")
	}
}

// TestJoinReorderSameResults: the greedy bound-first join order must
// produce exactly the same fixpoint and the same instantiation multiset as
// strict left-to-right evaluation.
func TestJoinReorderSameResults(t *testing.T) {
	progSrc := `
		0.9 j1: tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).
		0.8 j2: far(X, Z) :- e(X, Y), hub(W), e(Y, Z).
		0.7 j3: mix(X, Z) :- big(Z), e(X, Y), e(Y, Z).
	`
	factsSrc := `
		e(a, b). e(b, c). e(c, a). e(b, d). e(d, a). e(c, d).
		hub(h1). hub(h2). big(a). big(d).
	`
	collect := func(disable bool) (map[string]int, []string) {
		prog := mustProgram(t, progSrc)
		d := mustFacts(t, factsSrc)
		eng, err := engine.New(prog, d)
		if err != nil {
			t.Fatal(err)
		}
		insts := map[string]int{}
		if _, err := eng.Run(engine.Options{
			DisableJoinReorder: disable,
			Listener: func(dv engine.Derivation) {
				key := fmt.Sprint(dv.RuleIndex, "|", dv.Head.Rel.Name(), dv.Head.Rel.Tuple(dv.Head.ID))
				for _, b := range dv.Body {
					key += fmt.Sprint("|", b.Rel.Name(), b.Rel.Tuple(b.ID))
				}
				insts[key]++
			},
		}); err != nil {
			t.Fatal(err)
		}
		var facts []string
		for _, pred := range []string{"tri", "far", "mix"} {
			for _, a := range d.Facts(pred) {
				facts = append(facts, a.String())
			}
		}
		sort.Strings(facts)
		return insts, facts
	}
	optInsts, optFacts := collect(false)
	refInsts, refFacts := collect(true)
	if fmt.Sprint(optFacts) != fmt.Sprint(refFacts) {
		t.Errorf("facts differ:\n opt %v\n ref %v", optFacts, refFacts)
	}
	if len(optInsts) != len(refInsts) {
		t.Fatalf("instantiation counts differ: %d vs %d", len(optInsts), len(refInsts))
	}
	for k, n := range optInsts {
		if refInsts[k] != n {
			t.Errorf("instantiation %s: %d vs %d", k, n, refInsts[k])
		}
	}
}

func TestPerRuleStats(t *testing.T) {
	prog := mustProgram(t, `
		r1: tc(X, Y) :- e(X, Y).
		r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).
	`)
	d := mustFacts(t, `e(a, b). e(b, c). e(c, d).`)
	eng, err := engine.New(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.FiredByRule) != 2 {
		t.Fatalf("FiredByRule = %v", stats.FiredByRule)
	}
	if stats.FiredByRule[0] != 3 {
		t.Errorf("r1 fired %d, want 3", stats.FiredByRule[0])
	}
	// 4-node path: r2 instantiations = triples (x<z<y): (a,b,c),(a,b,d via
	// tc(b,d)),(a,c,d),(b,c,d) = 4.
	if stats.FiredByRule[1] != 4 {
		t.Errorf("r2 fired %d, want 4", stats.FiredByRule[1])
	}
	if sum := stats.FiredByRule[0] + stats.FiredByRule[1]; sum != stats.Instantiations {
		t.Errorf("per-rule sum %d != total %d", sum, stats.Instantiations)
	}
	if stats.HottestRule() != 1 {
		t.Errorf("hottest = %d, want 1", stats.HottestRule())
	}
	if (engine.Stats{}).HottestRule() != -1 {
		t.Error("empty stats hottest should be -1")
	}
}

package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/parser"
)

// guardedWorkload builds the join shape the planner's early checks target:
// a selective guard whose variables are bound before the expensive second
// join. lt(X, c50) depends only on X, bound at step 0 by e — the planned
// engine rejects half the e tuples before probing f, while the
// written-order engine materializes every e ⋈ f binding and filters at the
// end. Constants are zero-padded so the built-in's lexicographic fallback
// orders them like numbers.
func guardedWorkload(tb testing.TB) (*ast.Program, []ast.Atom) {
	tb.Helper()
	prog, err := parser.ParseProgram(`q(X, Z) :- e(X, Y), f(Y, Z), lt(X, c50).`)
	if err != nil {
		tb.Fatalf("parse program: %v", err)
	}
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		for j := 0; j < 20; j++ {
			fmt.Fprintf(&sb, "e(c%02d, m%02d).\n", i, j)
		}
	}
	for j := 0; j < 20; j++ {
		for k := 0; k < 50; k++ {
			fmt.Fprintf(&sb, "f(m%02d, n%02d).\n", j, k)
		}
	}
	facts, err := parser.ParseFacts(sb.String())
	if err != nil {
		tb.Fatalf("parse facts: %v", err)
	}
	return prog, facts
}

func guardedDB(tb testing.TB, facts []ast.Atom) *db.Database {
	tb.Helper()
	d := db.NewDatabase()
	for _, f := range facts {
		if _, _, _, err := d.InsertAtom(f); err != nil {
			tb.Fatalf("insert %s: %v", f.String(), err)
		}
	}
	return d
}

// TestGuardedFixpointEquivalent pins the benchmark workload itself: both
// engines derive the same q facts, and the planner actually schedules the
// guard before the final step (otherwise the benchmark measures nothing).
func TestGuardedFixpointEquivalent(t *testing.T) {
	prog, facts := guardedWorkload(t)
	derive := func(planned bool) []string {
		d := guardedDB(t, facts)
		var eng *engine.Engine
		var err error
		if planned {
			eng, err = engine.NewPlanned(prog, d, nil)
		} else {
			eng, err = engine.New(prog, d)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(engine.Options{}); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, a := range d.Facts("q") {
			out = append(out, a.String())
		}
		return out
	}
	planned, written := derive(true), derive(false)
	if len(planned) != 50*50 {
		t.Errorf("derived %d q facts, want %d", len(planned), 50*50)
	}
	if fmt.Sprint(planned) != fmt.Sprint(written) {
		t.Errorf("planned and written-order engines diverged: %d vs %d facts",
			len(planned), len(written))
	}
}

func benchGuardedFixpoint(b *testing.B, planned bool) {
	prog, facts := guardedWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := guardedDB(b, facts)
		b.StartTimer()
		var eng *engine.Engine
		var err error
		if planned {
			eng, err = engine.NewPlanned(prog, d, nil)
		} else {
			eng, err = engine.New(prog, d)
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixpointGuardedPlanned measures the early-check win: the guard
// prunes at join step 0 instead of after the full e ⋈ f product.
func BenchmarkFixpointGuardedPlanned(b *testing.B) { benchGuardedFixpoint(b, true) }

// BenchmarkFixpointGuardedWritten is the written-order baseline: checks
// evaluated only on complete instantiations.
func BenchmarkFixpointGuardedWritten(b *testing.B) { benchGuardedFixpoint(b, false) }

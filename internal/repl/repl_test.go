package repl_test

import (
	"strings"
	"testing"

	"contribmax/internal/repl"
)

// drive runs a scripted session and returns the transcript.
func drive(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	if err := repl.New().Run(in, &out); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out.String()
}

func TestReplFactsRulesAndQuery(t *testing.T) {
	out := drive(t,
		"edge(a, b).",
		"edge(b, c).",
		"0.8 r1: tc(X, Y) :- edge(X, Y).",
		"0.5 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).",
		"?- tc(a, X).",
		":quit",
	)
	for _, want := range []string{"fact edge(a, b)", "rule 0.8 r1:", "tc(a, b)", "tc(a, c)", "2 results"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestReplExplainAndProb(t *testing.T) {
	out := drive(t,
		"edge(a, b).",
		"0.6 r1: tc(X, Y) :- edge(X, Y).",
		":explain tc(a, b)",
		":prob tc(a, b)",
		":quit",
	)
	if !strings.Contains(out, "p = 0.6") {
		t.Errorf("explain missing:\n%s", out)
	}
	if !strings.Contains(out, "P[tc(a, b)] ~= 0.6") {
		t.Errorf("prob missing:\n%s", out)
	}
}

func TestReplSolve(t *testing.T) {
	out := drive(t,
		"edge(a, b).", "edge(b, c).", "edge(x, y).",
		"1.0 r1: tc(X, Y) :- edge(X, Y).",
		"0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).",
		":solve k=1 tc(a,c)",
		":quit",
	)
	if !strings.Contains(out, "1. edge(") {
		t.Errorf("solve missing seeds:\n%s", out)
	}
}

func TestReplLoadAndStats(t *testing.T) {
	out := drive(t,
		":load program ../../testdata/trade.dl",
		":load facts ../../testdata/trade.facts",
		":stats",
		"?- dealsWith(usa, iran).",
		":quit",
	)
	for _, want := range []string{"loaded 4 rules", "loaded 15 facts", "rules: 4", "1 results"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestReplErrorsKeepSessionAlive(t *testing.T) {
	out := drive(t,
		"broken(",
		":nosuch",
		"?- fine(X).",
		"p(X) :- q(X). ",
		":explain p(nope)",
		":quit",
	)
	if c := strings.Count(out, "error:"); c < 2 {
		t.Errorf("want at least 2 errors, got %d:\n%s", c, out)
	}
	if !strings.Contains(out, "0 results") {
		t.Errorf("query after errors should still run:\n%s", out)
	}
}

func TestReplProgramListing(t *testing.T) {
	out := drive(t,
		"0.7 z: p(X) :- q(X).",
		":program",
		":quit",
	)
	if !strings.Contains(out, "0.7 z: p(X) :- q(X).") {
		t.Errorf(":program missing rule:\n%s", out)
	}
}

func TestReplEOFEndsCleanly(t *testing.T) {
	var out strings.Builder
	if err := repl.New().Run(strings.NewReader("edge(a, b).\n"), &out); err != nil {
		t.Fatalf("EOF should be clean: %v", err)
	}
}

func TestReplPatternSolveTargets(t *testing.T) {
	out := drive(t,
		"edge(a, b).", "edge(b, c).",
		"1.0 r1: tc(X, Y) :- edge(X, Y).",
		"0.8 r2: tc(X, Y) :- tc(X, Z), tc(Z, Y).",
		":solve k=1 tc(a,X)",
		":quit",
	)
	if !strings.Contains(out, "to 2 targets") {
		t.Errorf("pattern expansion missing:\n%s", out)
	}
}

// Package repl implements the interactive datalog shell behind cmd/cmrepl:
// accumulate rules and facts, query with patterns, explain derivations,
// estimate probabilities, and run contribution maximization, all from a
// prompt. The REPL reads from an io.Reader and writes to an io.Writer, so
// it is fully testable.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/im"
	"contribmax/internal/magic"
	"contribmax/internal/parser"
	"contribmax/internal/provenance"
	"contribmax/internal/wdgraph"
)

// REPL is one interactive session.
type REPL struct {
	prog *ast.Program
	base *db.Database
	rng  *rand.Rand
	auto int          // auto-label counter
	fix  *db.Database // cached fixpoint (nil = stale)
}

// New returns an empty session.
func New() *REPL {
	return &REPL{
		prog: ast.NewProgram(),
		base: db.NewDatabase(),
		rng:  rand.New(rand.NewPCG(0x5EE1, 7)),
	}
}

// Run processes lines from in until EOF or :quit, writing responses to out.
// It always returns nil on a clean EOF; input errors are reported inline
// and the loop continues.
func (r *REPL) Run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fmt.Fprint(out, "contribmax repl — :help for commands\n")
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == ":quit" || line == ":q" {
			return nil
		}
		if err := r.Exec(line, out); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

// Exec runs one REPL line.
func (r *REPL) Exec(line string, out io.Writer) error {
	switch {
	case line == ":help":
		return r.help(out)
	case strings.HasPrefix(line, ":load "):
		return r.load(strings.TrimSpace(strings.TrimPrefix(line, ":load ")), out)
	case line == ":program":
		fmt.Fprint(out, r.prog.String())
		return nil
	case line == ":stats":
		return r.stats(out)
	case strings.HasPrefix(line, ":explain "):
		return r.explain(strings.TrimSpace(strings.TrimPrefix(line, ":explain ")), out)
	case strings.HasPrefix(line, ":prob "):
		return r.probability(strings.TrimSpace(strings.TrimPrefix(line, ":prob ")), out)
	case strings.HasPrefix(line, ":solve "):
		return r.solve(strings.TrimSpace(strings.TrimPrefix(line, ":solve ")), out)
	case strings.HasPrefix(line, "?-"):
		return r.query(strings.TrimSpace(strings.TrimPrefix(line, "?-")), out)
	case strings.HasPrefix(line, ":"):
		return fmt.Errorf("unknown command %q (:help)", line)
	default:
		return r.addStatement(line, out)
	}
}

func (r *REPL) help(out io.Writer) error {
	fmt.Fprint(out, `statements
  0.8 r1: p(X) :- q(X).     add a rule (probability and label optional)
  q(a).                     add a fact (ground head, no body)
queries
  ?- p(X).                  evaluate the program and list matching facts
commands
  :load program <path>      load rules from a file
  :load facts <path>        load facts from a file (.facts or .cmdb)
  :program                  print the current program
  :stats                    database and fixpoint statistics
  :explain <atom>           most probable derivation of a derived tuple
  :prob <atom>              derivation probability (5k sampled executions)
  :solve k=<n> <target>...  top-n contributing facts for the targets
  :quit                     leave
`)
	return nil
}

func (r *REPL) load(arg string, out io.Writer) error {
	kind, path, ok := strings.Cut(arg, " ")
	if !ok {
		return fmt.Errorf("usage: :load program|facts <path>")
	}
	path = strings.TrimSpace(path)
	switch kind {
	case "program":
		prog, err := parser.ParseProgramFile(path)
		if err != nil {
			return err
		}
		for _, rule := range prog.Rules {
			if err := r.addRule(rule); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "loaded %d rules\n", len(prog.Rules))
	case "facts":
		var added int
		if strings.HasSuffix(path, ".cmdb") {
			loaded, err := db.LoadSnapshot(path)
			if err != nil {
				return err
			}
			for _, name := range loaded.RelationNames() {
				for _, f := range loaded.Facts(name) {
					if _, fresh := r.base.MustInsertAtom(f); fresh {
						added++
					}
				}
			}
		} else {
			facts, err := parser.ParseFactsFile(path)
			if err != nil {
				return err
			}
			for _, f := range facts {
				if _, fresh := r.base.MustInsertAtom(f); fresh {
					added++
				}
			}
		}
		r.fix = nil
		fmt.Fprintf(out, "loaded %d facts\n", added)
	default:
		return fmt.Errorf("usage: :load program|facts <path>")
	}
	return nil
}

// addStatement parses a rule or fact statement.
func (r *REPL) addStatement(line string, out io.Writer) error {
	if !strings.HasSuffix(line, ".") {
		return fmt.Errorf("statements end with '.' (queries start with '?-')")
	}
	prog, err := parser.ParseProgram(line)
	if err != nil {
		return err
	}
	for _, rule := range prog.Rules {
		if rule.IsFact() && rule.Prob >= 1 {
			// Plain ground facts go straight into the database.
			if _, _, _, err := r.base.InsertAtom(rule.Head); err == nil {
				r.fix = nil
				fmt.Fprintf(out, "fact %s\n", rule.Head)
				continue
			}
		}
		if err := r.addRule(rule); err != nil {
			return err
		}
		fmt.Fprintf(out, "rule %s\n", rule.String())
	}
	return nil
}

func (r *REPL) addRule(rule ast.Rule) error {
	// Relabel on collision so files and interactive rules can mix.
	if _, taken := r.prog.RuleByLabel(rule.Label); taken {
		for {
			r.auto++
			rule.Label = "i" + strconv.Itoa(r.auto)
			if _, taken := r.prog.RuleByLabel(rule.Label); !taken {
				break
			}
		}
	}
	next := r.prog.Clone()
	next.Add(rule)
	if err := next.Validate(); err != nil {
		return err
	}
	r.prog = next
	r.fix = nil
	return nil
}

// fixpoint evaluates (and caches) the program over the base facts.
func (r *REPL) fixpoint() (*db.Database, error) {
	if r.fix != nil {
		return r.fix, nil
	}
	scratch := r.base.CloneSchema()
	for _, name := range r.base.RelationNames() {
		if rel, ok := r.base.Lookup(name); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(r.prog, scratch)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		return nil, err
	}
	r.fix = scratch
	return scratch, nil
}

func (r *REPL) query(q string, out io.Writer) error {
	pattern, err := parser.ParseAtom(q)
	if err != nil {
		return err
	}
	fix, err := r.fixpoint()
	if err != nil {
		return err
	}
	matches, err := fix.Match(pattern)
	if err != nil {
		return err
	}
	lines := make([]string, len(matches))
	for i, m := range matches {
		lines[i] = m.String()
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	fmt.Fprintf(out, "%d results\n", len(lines))
	return nil
}

func (r *REPL) stats(out io.Writer) error {
	fmt.Fprintf(out, "rules: %d\nbase facts: %d\n", len(r.prog.Rules), r.base.TotalTuples())
	fix, err := r.fixpoint()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fixpoint tuples: %d\n%s", fix.TotalTuples(), fix.Stats())
	return nil
}

func (r *REPL) explain(arg string, out io.Writer) error {
	target, err := parser.ParseAtom(arg)
	if err != nil {
		return err
	}
	if !target.IsGround() {
		return fmt.Errorf("explain needs a ground tuple")
	}
	tr, err := magic.Transform(r.prog, []ast.Atom{target})
	if err != nil {
		return err
	}
	scratch := r.base.CloneSchema()
	for _, name := range r.base.RelationNames() {
		if rel, ok := r.base.Lookup(name); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(tr.Program, scratch)
	if err != nil {
		return err
	}
	b := wdgraph.NewBuilder(tr.Projection())
	if _, err := eng.Run(engine.Options{Listener: b.Listener()}); err != nil {
		return err
	}
	g := b.Graph()
	tuple, err := r.base.InternAtom(target)
	if err != nil {
		return err
	}
	root, ok := g.FactID(target.Predicate, tuple)
	if !ok {
		return fmt.Errorf("%s is not derivable", target)
	}
	tree, ok := provenance.BestDerivation(g, root)
	if !ok {
		return fmt.Errorf("%s has no derivation grounded in the facts", target)
	}
	fmt.Fprintf(out, "p = %.4g\n%s", tree.Prob, tree.Render(r.base.Symbols()))
	return nil
}

func (r *REPL) probability(arg string, out io.Writer) error {
	target, err := parser.ParseAtom(arg)
	if err != nil {
		return err
	}
	p, err := cm.DerivationProbability(r.prog, r.base, target, 5000, r.rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "P[%s] ~= %.3f\n", target, p)
	return nil
}

// solve parses "k=<n> <target> <target>..." and runs Magic^S CM.
func (r *REPL) solve(arg string, out io.Writer) error {
	fields := strings.Fields(arg)
	k := 3
	var targets []ast.Atom
	for _, f := range fields {
		if strings.HasPrefix(f, "k=") {
			n, err := strconv.Atoi(strings.TrimPrefix(f, "k="))
			if err != nil {
				return fmt.Errorf("bad k: %v", err)
			}
			k = n
			continue
		}
		a, err := parser.ParseAtom(f)
		if err != nil {
			return fmt.Errorf("target %q: %v", f, err)
		}
		targets = append(targets, a)
	}
	// Expand patterns against the fixpoint.
	var ground []ast.Atom
	for _, a := range targets {
		if a.IsGround() {
			ground = append(ground, a)
			continue
		}
		fix, err := r.fixpoint()
		if err != nil {
			return err
		}
		matches, err := fix.Match(a)
		if err != nil {
			return err
		}
		ground = append(ground, matches...)
	}
	if len(ground) == 0 {
		return fmt.Errorf("no targets")
	}
	res, err := cm.MagicSampledCM(cm.Input{
		Program: r.prog, DB: r.base, T2: ground, K: k,
	}, cm.Options{Theta: im.ThetaSpec{Explicit: 1000}, Rand: r.rng})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "contribution %.3f to %d targets\n", res.EstContribution, len(ground))
	for i, s := range res.Seeds {
		fmt.Fprintf(out, "  %d. %s\n", i+1, s)
	}
	return nil
}

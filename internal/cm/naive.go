package cm

import (
	"math/rand/v2"
	"sort"
	"time"

	"contribmax/internal/im"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/wdgraph"
)

// NaiveCM is Algorithm 2: materialize the full WD graph with Algorithm 1,
// then run the adjusted RIS-based IM algorithm over it — RR roots sampled
// from T2, RR members filtered to T1, greedy maximum coverage for the seed
// selection. It provides a (1 − 1/e − ε)-approximation with probability
// ≥ 1 − δ (Proposition 4.1) but materializes a graph polynomial in |D|,
// which is what the optimized variants avoid.
func NaiveCM(in Input, opts Options) (*Result, error) {
	res, err := solveVia(in, opts, "NaiveCM", naiveCM)
	return observeSolve(opts, res, err)
}

func naiveCM(in Input, opts Options) (*Result, error) {
	sp := opts.Trace.StartChild("NaiveCM")
	defer sp.End()
	prep := sp.StartChild("prepare")
	inst, err := prepare(in, opts)
	prep.End()
	if err != nil {
		return nil, err
	}
	ctx := opts.ctx()
	rng := opts.rng()
	start := time.Now()
	res := &Result{Algorithm: "NaiveCM", pl: opts.solvePlanner()}
	res.Stats.RulesTotal, res.Stats.RulesPruned = inst.rulesTotal, inst.rulesPruned
	journalSolveStart(opts, inst, "NaiveCM")
	opts.Profile.EnsureTargets(len(inst.targets))

	// Phase 1: full WD graph (Algorithm 1). Definition 3.1 includes a node
	// for every edb fact in D, hence the preload.
	buildSpan := sp.StartChild("build")
	buildStart := time.Now()
	g, err := cachedFullGraph(in, opts, inst, res)
	if err != nil {
		return nil, err
	}
	res.Stats.BuildTime = time.Since(buildStart)
	recordBuild(&res.Stats, g)
	res.Stats.PeakResidentSize = g.Size()
	buildSpan.SetAttr("nodes", int64(g.NumNodes()))
	buildSpan.SetAttr("edges", int64(g.NumEdges()))
	buildSpan.End()

	// Phase 2: RR sets via reverse sampled walks from random T2 roots.
	// Precompute per-node candidate ids so walks avoid per-visit key
	// construction.
	rrSpan := sp.StartChild("rrgen")
	candOfNode := candidateIndex(g, inst)
	targetIDs := make([]wdgraph.NodeID, len(inst.targets))
	targetOK := make([]bool, len(inst.targets))
	for i, t := range inst.targets {
		targetIDs[i], targetOK[i] = g.FactID(t.Pred, t.Tuple)
	}
	if opts.Parallelism >= 1 && !opts.Adaptive {
		err = parallelWalkPhase(ctx, inst, opts, res, rng, g, targetIDs, targetOK, candOfNode, nil)
	} else {
		walker := wdgraph.NewWalker(g)
		var members []im.CandidateID
		gen := func() []im.CandidateID {
			members = members[:0]
			ti := rng.IntN(len(inst.targets))
			var t0 time.Time
			if opts.Profile != nil {
				t0 = time.Now()
			}
			if targetOK[ti] {
				walker.ReverseReachable(targetIDs[ti], rng, false, func(v wdgraph.NodeID) {
					if c := candOfNode[v]; c >= 0 {
						members = append(members, im.CandidateID(c))
					}
				})
			}
			if opts.Profile != nil {
				opts.Profile.RecordWalk(ti, len(members), int64(time.Since(t0)))
			}
			return members
		}
		err = runRRPhase(ctx, inst, opts, res, gen)
		observeArena(opts.Obs, res.rrColl, walker.Grows())
	}
	rrSpan.SetAttr("rr", int64(res.Stats.NumRR))
	rrSpan.End()
	if err != nil {
		return nil, err
	}

	finishSelection(inst, opts, res, sp)
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// candidateIndex maps every node of g to its T1 candidate id, or -1.
func candidateIndex(g *wdgraph.Graph, inst *instance) []int32 {
	out := make([]int32, g.NumNodes())
	for i := range out {
		out[i] = -1
	}
	for ci, h := range inst.candidates {
		if id, ok := g.FactID(h.Pred, h.Tuple); ok {
			out[id] = int32(ci)
		}
	}
	return out
}

// recordBuild accumulates one constructed graph into the stats.
func recordBuild(s *Stats, g *wdgraph.Graph) {
	n, e := g.NumNodes(), g.NumEdges()
	s.GraphBuilds++
	s.TotalNodes += int64(n)
	s.TotalEdges += int64(e)
	if n > s.MaxNodes {
		s.MaxNodes = n
	}
	if e > s.MaxEdges {
		s.MaxEdges = e
	}
	if n+e > s.PeakResidentSize {
		s.PeakResidentSize = n + e
	}
}

// finishSelection runs the greedy coverage phase shared by all algorithms
// and fills the result from res.rrColl. sp is the algorithm's phase span
// (nil when tracing is off); the selection is recorded as its child.
func finishSelection(inst *instance, opts Options, res *Result, sp *obs.Span) {
	sel := sp.StartChild("select")
	selStart := time.Now()
	var gr im.GreedyResult
	switch {
	case opts.MaxSeedsPerRelation > 0:
		gr = im.GreedyPartition(res.rrColl, inst.in.K, inst.relationGroups(), opts.MaxSeedsPerRelation)
	case opts.LazyGreedy:
		gr = im.GreedyCELF(res.rrColl, inst.in.K)
	default:
		gr = im.Greedy(res.rrColl, inst.in.K)
	}
	res.Stats.SelectTime = time.Since(selStart)
	res.Stats.CoveredRR = gr.Covered
	res.Seeds = inst.seedsToAtoms(gr.Seeds)
	res.SeedGains = gr.Gains
	if res.rrColl.Len() > 0 {
		res.EstContribution = float64(len(inst.targets)) * float64(gr.Covered) / float64(res.rrColl.Len())
	}
	if opts.RankCandidates {
		res.Ranking = rankCandidates(inst, res.rrColl)
	}
	sel.SetAttr("covered", int64(gr.Covered))
	sel.SetAttr("seeds", int64(len(gr.Seeds)))
	sel.End()
	if st := res.pl.Stats(); st.Built > 0 {
		res.Stats.PlansBuilt = st.Built
		res.Stats.PlanCacheHits = st.Hits
		res.Stats.PlanAtomsReordered = st.Reordered
		opts.Journal.PlanSummary(journal.PlanInfo{Built: st.Built, Hits: st.Hits, Reordered: st.Reordered})
	}
	journalSelection(opts, inst, res)
	finishProfile(inst, opts, res)
}

// rankCandidates computes every candidate's individual coverage over the
// RR pool and returns the descending ranking.
func rankCandidates(inst *instance, coll *im.RRCollection) []CandidateScore {
	// Distinct candidates per set: a candidate may appear once per set at
	// most (RR walks visit each node once), so its index degree is its
	// coverage; the shared memberOf index makes this one lookup each.
	counts := make([]int, len(inst.candidates))
	for c := range counts {
		counts[c] = coll.Degree(im.CandidateID(c))
	}
	theta := coll.Len()
	out := make([]CandidateScore, len(inst.candidates))
	for c := range inst.candidates {
		out[c] = CandidateScore{
			Fact:     inst.atomOf(inst.candidates[c]),
			Coverage: counts[c],
		}
		if theta > 0 {
			out[c].EstContribution = float64(len(inst.targets)) * float64(counts[c]) / float64(theta)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Coverage > out[j].Coverage })
	return out
}

// drawTarget picks a uniform random target index.
func drawTarget(rng *rand.Rand, n int) int { return rng.IntN(n) }

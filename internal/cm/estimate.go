package cm

import (
	"fmt"
	"math"
	"math/rand/v2"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/wdgraph"
)

// Estimator evaluates the contribution function c(S ⇝ T2) of Definition
// 3.4 by Monte-Carlo simulation over the full WD graph: each sample draws a
// random subgraph (lazily, along the forward reachability frontier of S)
// and counts the targets reached; the estimate is the sample mean.
//
// Build an Estimator once per (program, database, T2) and reuse it across
// seed sets; construction materializes the full WD graph, so it is meant
// for validation and the Section V-C case study, not for large instances.
type Estimator struct {
	database *db.Database
	g        *wdgraph.Graph
	walker   *wdgraph.Walker
	targets  []wdgraph.NodeID // node ids of derivable targets
	isTarget []bool           // indexed by node id
}

// NewEstimator builds the full WD graph for (prog, database) and resolves
// the target atoms. Input.K is not used and may be left zero-valued by
// setting it to 1.
func NewEstimator(in Input) (*Estimator, error) {
	inst, err := prepare(in, Options{})
	if err != nil {
		return nil, err
	}
	g, _, err := wdgraph.Build(in.Program, scratchFor(in), nil, true, nil)
	if err != nil {
		return nil, err
	}
	e := &Estimator{
		database: in.DB,
		g:        g,
		walker:   wdgraph.NewWalker(g),
		isTarget: make([]bool, g.NumNodes()),
	}
	for _, t := range inst.targets {
		if id, ok := g.FactID(t.Pred, t.Tuple); ok {
			e.targets = append(e.targets, id)
			e.isTarget[id] = true
		}
		// A target absent from the graph is not derivable and contributes 0
		// to every seed set.
	}
	return e, nil
}

// Graph exposes the underlying full WD graph (e.g. for size reporting).
func (e *Estimator) Graph() *wdgraph.Graph { return e.g }

// Contribution estimates c(S ⇝ T2) with the given number of Monte-Carlo
// samples. Seeds that are not nodes of the WD graph contribute nothing and
// are ignored. The standard error of the estimate is at most
// |T2| / (2·sqrt(samples)).
func (e *Estimator) Contribution(seeds []ast.Atom, samples int, rng *rand.Rand) (float64, error) {
	ids := make([]wdgraph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		id, ok, err := e.factNode(s)
		if err != nil {
			return 0, err
		}
		if ok {
			ids = append(ids, id)
		}
	}
	return e.contributionByID(ids, samples, rng), nil
}

// ContributionCI is like Contribution but also returns the standard error
// of the estimate (sample standard deviation / sqrt(samples)), so callers
// can attach a confidence interval: mean ± z·stderr.
func (e *Estimator) ContributionCI(seeds []ast.Atom, samples int, rng *rand.Rand) (mean, stderr float64, err error) {
	ids := make([]wdgraph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		id, ok, err := e.factNode(s)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 || len(e.targets) == 0 || samples <= 0 {
		return 0, 0, nil
	}
	var sum, sumSq float64
	for s := 0; s < samples; s++ {
		reached := 0
		e.walker.ForwardReach(ids, rng, func(v wdgraph.NodeID) {
			if e.isTarget[v] {
				reached++
			}
		})
		x := float64(reached)
		sum += x
		sumSq += x * x
	}
	n := float64(samples)
	mean = sum / n
	if samples > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / n)
	}
	return mean, stderr, nil
}

func (e *Estimator) contributionByID(seeds []wdgraph.NodeID, samples int, rng *rand.Rand) float64 {
	if len(seeds) == 0 || len(e.targets) == 0 || samples <= 0 {
		return 0
	}
	total := 0
	for s := 0; s < samples; s++ {
		reached := 0
		e.walker.ForwardReach(seeds, rng, func(v wdgraph.NodeID) {
			if e.isTarget[v] {
				reached++
			}
		})
		total += reached
	}
	return float64(total) / float64(samples)
}

func (e *Estimator) factNode(a ast.Atom) (wdgraph.NodeID, bool, error) {
	if !a.IsGround() {
		return 0, false, fmt.Errorf("cm: estimator seed %s is not ground", a)
	}
	t, err := e.database.InternAtom(a)
	if err != nil {
		return 0, false, err
	}
	id, ok := e.g.FactID(a.Predicate, t)
	return id, ok, nil
}

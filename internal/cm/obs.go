package cm

import (
	"contribmax/internal/obs"
)

// observeSolve folds one finished solve into the metrics registry. It is
// the common tail of every algorithm's public entry point.
func observeSolve(opts Options, res *Result, err error) (*Result, error) {
	if reg := opts.Obs; reg != nil {
		if err != nil {
			reg.Counter(obs.CMErrors).Inc()
		} else {
			reg.Counter(obs.CMSolves).Inc()
			reg.Histogram(obs.CMSolveNs).Observe(int64(res.Stats.TotalTime))
		}
	}
	return res, err
}

// rrObs bundles the pre-resolved RR-generation metric handles so the hot
// loops pay handle lookup once, not per set. The zero value (from a nil
// registry) is a no-op; observe is safe for concurrent use by the parallel
// RR workers.
type rrObs struct {
	sets    *obs.Counter
	members *obs.Histogram
}

func newRRObs(reg *obs.Registry) rrObs {
	return rrObs{sets: reg.Counter(obs.RRSets), members: reg.Histogram(obs.RRMembers)}
}

func (r rrObs) observe(members int) {
	r.sets.Inc()
	r.members.Observe(int64(members))
}

package cm

import (
	"fmt"

	"contribmax/internal/ast"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/solvecache"
)

// observeSolve folds one finished solve into the metrics registry and
// closes the journal record with a solve.finish event. It is the common
// tail of every algorithm's public entry point.
func observeSolve(opts Options, res *Result, err error) (*Result, error) {
	if reg := opts.Obs; reg != nil {
		if err != nil {
			reg.Counter(obs.CMErrors).Inc()
		} else {
			reg.Counter(obs.CMSolves).Inc()
			reg.Histogram(obs.CMSolveNs).Observe(int64(res.Stats.TotalTime))
		}
	}
	if opts.Cache != nil && res != nil && err == nil {
		st := res.Stats
		if reg := opts.Obs; reg != nil {
			reg.Counter(obs.CacheGraphHits).Add(st.CacheGraphHits)
			reg.Counter(obs.CacheGraphMisses).Add(st.CacheGraphMisses)
			reg.Counter(obs.CacheRRHits).Add(st.CacheRRHits)
			reg.Counter(obs.CacheRRMisses).Add(st.CacheRRMisses)
		}
		opts.Journal.CacheSummary(journal.CacheInfo{
			GraphHits:   st.CacheGraphHits,
			GraphMisses: st.CacheGraphMisses,
			RRHits:      st.CacheRRHits,
			RRMisses:    st.CacheRRMisses,
			BytesReused: st.CacheBytesReused,
		})
	}
	if res != nil && err == nil &&
		(res.Stats.ExactTargets > 0 || res.Stats.DNFSamples > 0 || res.Stats.ExactFallback != "") {
		opts.Journal.EstimatorSummary(journal.EstInfo{
			Algorithm: res.Algorithm,
			Targets:   res.Stats.ExactTargets,
			Clauses:   res.Stats.LineageClauses,
			Vars:      res.Stats.LineageVars,
			LineageNs: int64(res.Stats.LineageTime),
			Samples:   res.Stats.DNFSamples,
			Fallback:  res.Stats.ExactFallback,
		})
	}
	if j := opts.Journal; j != nil {
		var fin journal.FinishInfo
		if err != nil {
			fin.Err = err.Error()
		}
		if res != nil {
			fin.Algorithm = res.Algorithm
			fin.Seeds = make([]string, len(res.Seeds))
			for i, s := range res.Seeds {
				fin.Seeds[i] = s.String()
			}
			fin.CoveredRR = res.Stats.CoveredRR
			fin.NumRR = res.Stats.NumRR
			fin.EstContribution = res.EstContribution
			fin.DurationNs = int64(res.Stats.TotalTime)
		}
		j.SolveFinish(fin)
	}
	return res, err
}

// journalSolveStart opens the journal record of one solve: algorithm,
// config fingerprint, and instance shape. No-op without a journal.
func journalSolveStart(opts Options, inst *instance, name string) {
	j := opts.Journal
	if j == nil {
		return
	}
	theta := 0
	if !opts.Adaptive {
		theta = inst.theta(opts)
	}
	j.SolveStart(journal.SolveInfo{
		Algorithm: name,
		Fingerprint: journal.FingerprintInput{
			Algorithm:           name,
			Database:            opts.cacheIdentity.Database,
			Program:             opts.cacheIdentity.Program,
			Target:              targetsHash(inst),
			K:                   inst.in.K,
			Candidates:          len(inst.candidates),
			Targets:             len(inst.targets),
			ThetaExplicit:       opts.Theta.Explicit,
			ThetaFraction:       opts.Theta.Fraction,
			ThetaEpsilon:        opts.Theta.Epsilon,
			ThetaDelta:          opts.Theta.Delta,
			ThetaMaxAuto:        opts.Theta.MaxAuto,
			Adaptive:            opts.Adaptive,
			Parallelism:         opts.Parallelism,
			MaxSeedsPerRelation: opts.MaxSeedsPerRelation,
			LazyGreedy:          opts.LazyGreedy,
			SIPS:                fmt.Sprintf("%d", opts.SIPS),
			Plan:                opts.Plan == PlanOn,
			Prune:               opts.Prune,
		}.Hash(),
		K:           inst.in.K,
		Candidates:  len(inst.candidates),
		Targets:     len(inst.targets),
		Theta:       theta,
		Adaptive:    opts.Adaptive,
		Parallelism: opts.Parallelism,
	})
}

// targetsHash fingerprints the resolved target list, order-sensitively —
// the Target field of the solve fingerprint.
func targetsHash(inst *instance) string {
	atoms := make([]ast.Atom, len(inst.targets))
	for i, t := range inst.targets {
		atoms[i] = inst.atomOf(t)
	}
	return solvecache.HashAtoms(atoms)
}

// journalSelection replays the greedy selection into the journal as one
// select.iter event per chosen seed. The per-iteration state is
// reconstructed from the greedy result's gain sequence (cumulative
// coverage is the prefix sum — exactly how CoveredRR is defined for all
// three selection variants), so the selection algorithms themselves stay
// untouched and byte-deterministic.
func journalSelection(opts Options, inst *instance, res *Result) {
	j := opts.Journal
	if j == nil {
		return
	}
	theta := 0
	if res.rrColl != nil {
		theta = res.rrColl.Len()
	}
	covered := 0
	for i, seed := range res.Seeds {
		gain := 0
		if i < len(res.SeedGains) {
			gain = res.SeedGains[i]
		}
		covered += gain
		coverage := 0.0
		if theta > 0 {
			coverage = float64(covered) / float64(theta)
		}
		j.SelectIter(journal.IterInfo{
			I:        i,
			Seed:     seed.String(),
			Gain:     gain,
			Covered:  covered,
			Coverage: coverage,
			ErrProxy: journal.ErrProxy(covered, theta),
		})
	}
}

// rrObs bundles the pre-resolved RR-generation metric handles so the hot
// loops pay handle lookup once, not per set. The zero value (from a nil
// registry) is a no-op; observe is safe for concurrent use by the parallel
// RR workers.
type rrObs struct {
	sets    *obs.Counter
	members *obs.Histogram
}

func newRRObs(reg *obs.Registry) rrObs {
	return rrObs{sets: reg.Counter(obs.RRSets), members: reg.Histogram(obs.RRMembers)}
}

func (r rrObs) observe(members int) {
	r.sets.Inc()
	r.members.Observe(int64(members))
}

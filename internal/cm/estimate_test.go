package cm_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/workload"
)

// TestPaperExample35Qualitative validates the claims of Example 3.5 on the
// running trade example (Table I). The paper's absolute scores (≈0.5, 0.35,
// 0.6) depend on the exact portion of the YAGO-derived database that is not
// reproducible from Table I alone; the properties the example demonstrates
// are checked instead:
//
//  1. dealsWith(france, cuba) contributes to both targets while
//     exports(france, vinegar) reaches mainly one, so the former scores
//     strictly higher;
//  2. the joint contribution is at most the sum of the individual ones
//     (shared sub-paths), and
//  3. at least the maximum of the two.
func TestPaperExample35Qualitative(t *testing.T) {
	w := workload.Trade()
	T2 := atoms(t, "dealsWith(usa, iran)", "dealsWith(pakistan, india)")
	est, err := cm.NewEstimator(cm.Input{Program: w.Program, DB: w.DB, T2: T2, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(35, 35))
	const samples = 60000
	fc := atoms(t, "dealsWith0(france, cuba)")
	fv := atoms(t, "exports(france, vinegar)")
	c1, err := est.Contribution(fc, samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := est.Contribution(fv, samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := est.Contribution(append(fc, fv...), samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.02
	if c1 <= c2+tol {
		t.Errorf("c(france-cuba)=%.3f should exceed c(exports vinegar)=%.3f", c1, c2)
	}
	if joint > c1+c2+tol {
		t.Errorf("joint %.3f exceeds sum %.3f", joint, c1+c2)
	}
	if joint < math.Max(c1, c2)-tol {
		t.Errorf("joint %.3f below max(%.3f, %.3f)", joint, c1, c2)
	}
	for _, c := range []float64{c1, c2, joint} {
		if c <= 0 || c > float64(len(T2)) {
			t.Errorf("contribution %.3f outside (0, |T2|]", c)
		}
	}
}

// TestEstimatorExactOnChain checks the estimator against a closed-form
// case: a single derivation chain edge(a,b) -r1-> tc(a,b) where r1 has
// probability p gives contribution exactly p; extending by the recursive
// rule multiplies the path probabilities.
func TestEstimatorExactOnChain(t *testing.T) {
	prog := workload.TCProgramDirected(0.6, 0.5)
	d := mustFactsDB(t, `edge(a, b).`)
	est, err := cm.NewEstimator(cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, b)"), K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	got, err := est.Contribution(atoms(t, "edge(a, b)"), 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 0.01 {
		t.Errorf("contribution = %.4f, want 0.6", got)
	}
}

func TestEstimatorTwoHopChain(t *testing.T) {
	// edge(a,b), edge(b,c): the WD graph has rule nodes I1 = r1(a,b),
	// I2 = r1(b,c) and I3 = r2 deriving tc(a,c) from {tc(a,b), tc(b,c)}.
	// Under Definition 3.4 (reachability in the random subgraph):
	//   c({edge(a,b), edge(b,c)}) = P[I3 ∧ (I1 ∨ I2)] = 0.5·(1−0.4²) = 0.42
	//   c({edge(a,b)})            = P[I3 ∧ I1]        = 0.5·0.6      = 0.30
	// (I3's second parent does not gate reachability — the marginal
	// contribution ignores other parts of the derivation, Example 3.5.)
	prog := workload.TCProgramDirected(0.6, 0.5)
	d := mustFactsDB(t, `edge(a, b). edge(b, c).`)
	est, err := cm.NewEstimator(cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, c)"), K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 10))
	const samples = 200000
	both, err := est.Contribution(atoms(t, "edge(a, b)", "edge(b, c)"), samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(both-0.42) > 0.01 {
		t.Errorf("joint contribution = %.4f, want 0.42", both)
	}
	one, err := est.Contribution(atoms(t, "edge(a, b)"), samples, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-0.3) > 0.01 {
		t.Errorf("single contribution = %.4f, want 0.30", one)
	}
}

func TestEstimatorUnknownSeedIgnored(t *testing.T) {
	prog := workload.TCProgramDirected(1, 0.5)
	d := mustFactsDB(t, `edge(a, b).`)
	est, err := cm.NewEstimator(cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, b)"), K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	got, err := est.Contribution([]ast.Atom{atom(t, "edge(zz, zz)")}, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("unknown seed contribution = %g, want 0", got)
	}
	if _, err := est.Contribution([]ast.Atom{ast.NewAtom("edge", ast.V("X"), ast.C("b"))}, 10, rng); err == nil {
		t.Error("non-ground seed should error")
	}
}

func TestContributionCI(t *testing.T) {
	prog := workload.TCProgramDirected(0.6, 0.5)
	d := mustFactsDB(t, `edge(a, b).`)
	est, err := cm.NewEstimator(cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, b)"), K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 22))
	mean, stderr, err := est.ContributionCI(atoms(t, "edge(a, b)"), 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Bernoulli(0.6): stderr = sqrt(0.6*0.4/50000) ~= 0.00219.
	if math.Abs(mean-0.6) > 0.01 {
		t.Errorf("mean = %.4f", mean)
	}
	if stderr < 0.0015 || stderr > 0.0030 {
		t.Errorf("stderr = %.5f, want ~0.0022", stderr)
	}
	// Degenerate inputs.
	if m, se, err := est.ContributionCI(nil, 100, rng); err != nil || m != 0 || se != 0 {
		t.Errorf("empty seeds: %v %v %v", m, se, err)
	}
}

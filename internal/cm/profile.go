package cm

import (
	"sort"

	"contribmax/internal/im"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/prof"
)

// profileTopRules bounds the hot-rule list surfaced through the
// profile.summary journal event and the rank-keyed /metrics gauges (the
// full ranked list lives in the RuntimeProfile artifact).
const profileTopRules = 5

// profileHotNodes bounds the hottest-candidate list attached to the RR
// section of the profile.
const profileHotNodes = 10

// finishProfile finalizes Options.Profile at the end of a solve: it stamps
// the algorithm and target names, attributes the phase times and RR arena,
// ranks the hottest WD-graph candidate nodes by RR-set membership (the
// memberOf CSR degree), reconciles the planner counters, and surfaces the
// aggregate as a profile.summary journal event plus rank-keyed hot-rule
// gauges on the metrics registry. No-op without a profile; runs after
// journalSelection so the event ordering within a run is stable.
func finishProfile(inst *instance, opts Options, res *Result) {
	p := opts.Profile
	if p == nil {
		return
	}
	p.SetAlgorithm(res.Algorithm)
	names := make([]string, len(inst.targets))
	for i, t := range inst.targets {
		names[i] = inst.atomOf(t).String()
	}
	p.SetTargetNames(names)
	if coll := res.rrColl; coll != nil {
		p.RecordArena(coll.ArenaBytes())
		p.RecordHotNodes(hotNodes(inst, coll))
	}
	if st := res.pl.Stats(); st.Built > 0 {
		p.RecordPlan(st.Built, st.Hits, st.Reordered)
	}
	for _, ph := range []struct {
		name string
		ns   int64
	}{
		{"build", int64(res.Stats.BuildTime)},
		{"rrgen", int64(res.Stats.RRGenTime)},
		{"select", int64(res.Stats.SelectTime)},
	} {
		if ph.ns > 0 {
			p.RecordPhase(ph.name, ph.ns)
		}
	}

	rep := p.Report()
	info := journal.ProfileInfo{
		Algorithm:   rep.Algorithm,
		EngineRuns:  rep.EngineRuns,
		Rules:       len(rep.Rules) + rep.RulesOmitted,
		Attempted:   rep.Attempted,
		Derived:     rep.Derived,
		NewFacts:    rep.NewFacts,
		EarlyVetoes: rep.EarlyVetoes,
		EvalNs:      rep.EvalNs,
	}
	if rep.RR != nil {
		info.Walks = rep.RR.Walks
		info.WalkNs = rep.RR.WalkNs
	}
	for i, r := range rep.Rules {
		if i >= profileTopRules {
			break
		}
		info.TopRules = append(info.TopRules, journal.TopRule{Rule: r.Rule, Derived: r.Derived, SelfNs: r.SelfNs})
	}
	opts.Journal.ProfileSummary(info)
	if reg := opts.Obs; reg != nil {
		for i, r := range rep.Rules {
			if i >= profileTopRules {
				break
			}
			rank := i + 1
			reg.Gauge(obs.ProfileRuleSelfNs(rank)).Set(r.SelfNs)
			reg.Gauge(obs.ProfileRuleDerived(rank)).Set(r.Derived)
		}
	}
}

// hotNodes ranks the T1 candidates by how many RR sets contain them — the
// candidate nodes the greedy selection's coverage gravity concentrates on —
// and renders the top few as profile hot nodes. Deterministic: degrees are
// a pure function of the finalized collection, ties break by candidate id.
func hotNodes(inst *instance, coll *im.RRCollection) []prof.HotNode {
	type cd struct {
		ci  int
		deg int
	}
	ranked := make([]cd, 0, len(inst.candidates))
	for ci := range inst.candidates {
		if d := coll.Degree(im.CandidateID(ci)); d > 0 {
			ranked = append(ranked, cd{ci: ci, deg: d})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].deg != ranked[j].deg {
			return ranked[i].deg > ranked[j].deg
		}
		return ranked[i].ci < ranked[j].ci
	})
	if len(ranked) > profileHotNodes {
		ranked = ranked[:profileHotNodes]
	}
	out := make([]prof.HotNode, len(ranked))
	for i, c := range ranked {
		out[i] = prof.HotNode{Node: inst.atomOf(inst.candidates[c.ci]).String(), Visits: int64(c.deg)}
	}
	return out
}

// Package cm implements the paper's Contribution Maximization algorithms:
// NaiveCM (Algorithm 2), MagicCM (Algorithm 3), Magic^S CM (Algorithm 3
// with in-construction sampling, Section IV-B2), and Magic^G CM (the
// grouped variant of Remark 1), plus a Monte-Carlo contribution estimator
// and a near-exact OPT oracle for the case study of Section V-C.
package cm

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/im"
	"contribmax/internal/magic"
	"contribmax/internal/obs"
	"contribmax/internal/obs/journal"
	"contribmax/internal/planner"
	"contribmax/internal/prof"
	"contribmax/internal/solvecache"
)

// Input is one CM problem instance: find the k-size subset of T1 with the
// maximal expected contribution to T2 (Definition 3.6).
type Input struct {
	Program *ast.Program
	DB      *db.Database
	// T1 is the candidate set of edb facts; nil means "all edb facts in
	// the database" (the paper's default experimental setting).
	T1 []ast.Atom
	// T2 is the target set of output (idb) facts.
	T2 []ast.Atom
	// K is the seed-set size.
	K int
}

// PlanMode selects the join-planning strategy for every fixpoint engine a
// solve compiles.
type PlanMode int

const (
	// PlanOn (the zero value) routes rule compilation through
	// internal/planner: the positive-atom join order is identical to the
	// engine's legacy greedy order — the derivation stream, and therefore
	// every solver output, is byte-for-byte unchanged — but built-in and
	// negated checks run at the earliest join step where their variables
	// are bound, and plans are cached solve-wide by rule shape, so the
	// Magic variants' thousands of per-RR engine compilations replan each
	// adorned rule family exactly once.
	PlanOn PlanMode = iota
	// PlanOff keeps the legacy per-engine planning with checks evaluated
	// at instantiation completion — the escape hatch behind the
	// cmrun/cmserve/cmbench -noplan flags and the planner A/B benchmark.
	PlanOff
)

// Options tunes the algorithms.
type Options struct {
	// Theta selects the number of RR sets (see im.ThetaSpec). The zero
	// value uses the paper's default: 30% of |T2|.
	Theta im.ThetaSpec
	// Adaptive switches to IMM-style adaptive sampling (Remark 2 of the
	// paper): the RR-set count is derived online from a certified lower
	// bound on OPT instead of Theta. Theta.Epsilon / Theta.Delta /
	// Theta.MaxAuto parameterize it.
	Adaptive bool
	// Rand drives all sampling. nil means a fixed-seed PCG source, making
	// runs reproducible by default.
	Rand *rand.Rand
	// LazyGreedy switches the selection phase to the CELF lazy-evaluation
	// greedy. The selection is bit-identical to the default greedy; CELF
	// is faster when candidates are many and coverage is skewed.
	LazyGreedy bool
	// SIPS selects the Magic-Sets sideways-information-passing strategy
	// for the Magic variants (see magic.SIPS); the default LeftToRight is
	// the textbook strategy.
	SIPS magic.SIPS
	// RankCandidates additionally fills Result.Ranking with every
	// candidate's *individual* estimated contribution, computed from the
	// same RR pool. The paper's Examples 1.1/3.7 turn on the difference
	// between the top-k individually ranked tuples and the jointly optimal
	// k-set; this exposes both sides.
	RankCandidates bool
	// MaxSeedsPerRelation, when positive, caps how many selected seeds may
	// come from any one database relation — the diversification constraint
	// proposed in the paper's conclusions (set to 1 to force every seed
	// from a different table). Selection becomes greedy under a partition
	// matroid (1/2-approximation of the constrained optimum). Incompatible
	// with LazyGreedy (the constraint wins).
	MaxSeedsPerRelation int
	// SkipAnalysis disables the static-analysis gate that prepare runs in
	// front of every algorithm (the zero value keeps it on). The gate
	// rejects programs with error-severity findings — unsafe rules, arity
	// clashes with the database schema, out-of-range probabilities,
	// negation through recursion — before any graph is built. Skipping is
	// for callers that already analyzed the program (e.g. a server linting
	// at load time) or construct programs the analyzer provably accepts;
	// ast.Program.Validate still runs as a cheap backstop.
	SkipAnalysis bool
	// Plan selects the join-planning strategy (see PlanMode; the zero
	// value keeps planning on). Planning never changes results — only
	// evaluation cost and the plan.* stats/journal/metric signals.
	Plan PlanMode
	// Prune runs the analyzer's provably-sound dead-rule elimination
	// (analysis.Prune, unreachable criterion only) over the program before
	// any rewriting or graph construction: rules whose head predicate lies
	// outside the T2 predicates' dependency cone are dropped. Such rules
	// cannot appear in any target derivation, so every solver output —
	// seeds, gains, estimates, RR statistics — is byte-identical with or
	// without pruning; only the evaluated program (and hence build work
	// and graph-size stats on programs with dead rules) shrinks.
	// Stats.RulesTotal / Stats.RulesPruned report the effect.
	Prune bool
	// Parallelism is the solver's single concurrency knob. It fans RR-set
	// generation out over this many goroutines — per-tuple subgraph
	// constructions for MagicCM / Magic^S CM, reverse walks over the
	// shared graph for NaiveCM / Magic^G CM — and, when >= 2, also runs
	// the semi-naive fixpoint of *full-graph* builds (NaiveCM's WD graph,
	// Magic^G CM's union graph) on that many engine workers
	// (engine.Options.Parallelism; per-tuple subgraph builds stay
	// sequential inside the already-parallel RR workers). The engine is
	// byte-identical at every level, and any value >= 1 routes RR
	// generation through the pre-seeded slot design, so for a fixed seed
	// every Parallelism level — including 1 — produces byte-identical
	// results regardless of scheduling or worker count. 0 (the zero
	// value) keeps the legacy strictly-sequential draw order, which is
	// statistically equivalent but draws from the rng differently; the
	// adaptive mode is inherently sequential and ignores this.
	Parallelism int
	// Obs, when non-nil, receives the pipeline metrics of the solve (cm.*,
	// rr.*, wdgraph.*, engine.*, imm.* — see internal/obs and
	// docs/OBSERVABILITY.md). nil disables all metric collection at the
	// cost of one pointer check per site.
	Obs *obs.Registry
	// Trace, when non-nil, receives a child span per solve with nested
	// phase spans (prepare → build → rrgen → select) carrying duration and
	// count attributes — the tree cmrun -stats prints. The span tree is
	// mutated only from the calling goroutine.
	Trace *obs.Span
	// Journal, when non-nil, receives the solve's structured event stream
	// (see internal/obs/journal): solve.start/finish with a config
	// fingerprint, per-fixpoint-round deltas and graph.build events for
	// full-graph builds, batched rr.batch generation stats, imm.round
	// convergence records in adaptive mode, and one select.iter per chosen
	// seed. Events carry the journal's run ID, correlating them with the
	// spans and metrics of the same solve. Journaling never perturbs the
	// solver: the same seed yields byte-identical results with or without
	// it. nil disables the stream at one pointer check per site.
	Journal *journal.Journal
	// Context, when non-nil, cancels a long-running solve: the RR
	// generation loops and the fixpoint evaluations underneath them check
	// it and return its error promptly (within one RR set or one
	// semi-naive round).
	Context context.Context
	// Cache, when non-nil, memoizes the expensive phases across solves:
	// full/grouped WD graphs and finalized RR collections, keyed by content
	// fingerprints of the database, program, targets, and effective RR
	// parameters (see internal/solvecache). A cached repeat of a solve
	// costs only the selection phase and returns byte-identical results;
	// Stats.CacheGraphHits/CacheRRHits report what was reused. Safe to
	// share one cache across concurrent solves and tenants.
	Cache *solvecache.Cache
	// CacheID optionally asserts content identities for the cache, letting
	// callers that already know a cheap identity (e.g. a hash of the fact
	// file and program text, plus a seed label for Rand) skip the
	// database-fingerprint pass. Zero-value fields are derived from the
	// inputs; see solvecache.Identity for the contract. Ignored without
	// Cache. When Rand is non-nil and CacheID.Rand is empty, RR collections
	// are NOT cached (the stream is unidentified); graph caching still
	// applies.
	CacheID solvecache.Identity
	// Profile, when non-nil, collects an EXPLAIN ANALYZE-style runtime
	// profile of the solve (see internal/prof): per-rule fixpoint
	// accounting, per-stratum delta curves, RR walk time and arena bytes
	// per target, hot WD-graph nodes, and planner/phase attribution. Same
	// contract as Obs/Journal: profiling never perturbs the solver (a
	// profiled solve is byte-identical to an unprofiled one, and the
	// profile's counts are identical at every Parallelism level), and nil
	// disables collection at one pointer check per site. One Profile
	// should observe one solve; Report() renders it after the solve
	// returns.
	Profile *prof.Profile

	// cacheIdentity is the resolved identity solveVia computed for this
	// solve, handed down to the per-algorithm graph hooks.
	cacheIdentity solvecache.Identity
	// cacheIDValid reports cacheIdentity's Database/Program are filled.
	cacheIDValid bool
}

// ctx returns the solve context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// solvePlanner returns the solve-wide plan cache, nil under PlanOff. One
// cache spans every engine compilation of the solve — full-graph builds and
// per-RR subgraph builds alike — so hit counts measure real cross-engine
// plan reuse.
func (o Options) solvePlanner() *planner.Planner {
	if o.Plan == PlanOff {
		return nil
	}
	return planner.New(o.Obs)
}

func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewPCG(0xC0FFEE, 0xD15EA5E))
}

// Result is the outcome of a CM algorithm run.
type Result struct {
	// Algorithm names the algorithm that produced the result.
	Algorithm string
	// Seeds is the selected k-size (or smaller, see im.Greedy) subset of
	// T1, in greedy selection order.
	Seeds []ast.Atom
	// EstContribution is the RIS estimate |T2|·coverage/θ of the seeds'
	// expected contribution to T2.
	EstContribution float64
	// SeedGains[i] is the marginal number of RR sets newly covered by
	// Seeds[i] during greedy selection — a per-seed importance signal.
	SeedGains []int
	// ExactGains[i] is the exact marginal contribution of Seeds[i] when the
	// exact lifted tier answered (ExactCM without fallback); nil for every
	// sampling algorithm, which reports integer RR coverage in SeedGains
	// instead.
	ExactGains []float64
	// Ranking, filled when Options.RankCandidates is set, lists every T1
	// candidate with its individual contribution estimate, sorted
	// descending (ties by first appearance). Selecting the top k of this
	// list is the single-tuple ranking the paper contrasts with CM's
	// joint selection.
	Ranking []CandidateScore
	// Stats records the cost measurements the paper's evaluation reports.
	Stats Stats

	// rrColl retains the RR collection for the selection phase.
	rrColl *im.RRCollection
	// pl is the solve's plan cache (nil under PlanOff); finishSelection
	// folds its counters into Stats.
	pl *planner.Planner
}

// Stats carries the measurements plotted in the paper's Figures 2–5.
type Stats struct {
	NumRR       int   // RR sets generated (θ)
	GraphBuilds int   // WD (sub)graph constructions
	CoveredRR   int   // RR sets covered by the selected seeds
	TotalNodes  int64 // summed over all constructed graphs
	TotalEdges  int64
	MaxNodes    int // largest single constructed graph
	MaxEdges    int
	// PeakResidentSize is the largest graph size (nodes+edges) held in
	// memory at any point: the full graph for NaiveCM and Magic^G CM, the
	// largest per-RR subgraph for MagicCM / Magic^S CM (which discard each
	// subgraph after one use, Section V-A).
	PeakResidentSize int

	BuildTime  time.Duration // graph construction time (all builds)
	RRGenTime  time.Duration // total RR generation incl. per-RR builds
	SelectTime time.Duration // greedy maximum-coverage phase
	TotalTime  time.Duration

	// AdaptiveLowerBound is IMM's certified lower bound on OPT (adaptive
	// mode only); AdaptiveCapped reports the MaxRR cap was hit.
	AdaptiveLowerBound float64
	AdaptiveCapped     bool

	// RulesTotal is the input program's rule count; RulesPruned how many
	// of them dead-rule elimination removed before evaluation (always 0
	// unless Options.Prune is set).
	RulesTotal  int
	RulesPruned int

	// Join-planning totals (all 0 under Options.Plan == PlanOff).
	// PlansBuilt counts plans computed (cache misses), PlanCacheHits plans
	// served from the solve-wide shape-keyed cache, PlanAtomsReordered
	// plan positions deviating from written body order summed over built
	// plans. Deterministic: a fixed configuration yields the same counts
	// on every run, at every Parallelism level.
	PlansBuilt         int64
	PlanCacheHits      int64
	PlanAtomsReordered int64

	// Exact lifted tier (all zero unless ExactCM answered exactly).
	// ExactTargets counts targets with a derivable lineage, LineageClauses /
	// LineageVars the normalized clause and variable totals over them, and
	// LineageTime the reachability-lineage extraction phase.
	ExactTargets   int
	LineageClauses int
	LineageVars    int
	LineageTime    time.Duration
	// ExactFallback names the reason an ExactCM solve fell back to MagicCM
	// sampling ("" when the exact tier answered, or for other algorithms).
	ExactFallback string

	// DNFSamples counts the possible worlds DNFCM sampled (0 elsewhere).
	DNFSamples int

	// Solve-cache interaction (all 0 without Options.Cache). Hits mean the
	// phase was skipped entirely and its output reused; the graph/RR cost
	// stats above still describe the original computation, so cold and
	// warm runs report the same shape. CacheBytesReused is the resident
	// size of the reused entries.
	CacheGraphHits   int64
	CacheGraphMisses int64
	CacheRRHits      int64
	CacheRRMisses    int64
	CacheBytesReused int64
}

// AvgGraphSize returns the average constructed-graph size (nodes+edges) per
// build — the y-axis of Figures 2 and 4.
func (s Stats) AvgGraphSize() float64 {
	if s.GraphBuilds == 0 {
		return 0
	}
	return float64(s.TotalNodes+s.TotalEdges) / float64(s.GraphBuilds)
}

// PerRRTime returns the amortized time to produce one RR set — the y-axis
// of Figure 3. For NaiveCM this amortizes the one-time full-graph
// construction over the RR sets, as the paper does.
func (s Stats) PerRRTime() time.Duration {
	if s.NumRR == 0 {
		return 0
	}
	return (s.BuildTime + s.RRGenTime) / time.Duration(s.NumRR)
}

// CandidateScore is one candidate's individual contribution estimate.
type CandidateScore struct {
	// Fact is the candidate input fact.
	Fact ast.Atom
	// Coverage is the number of RR sets containing the candidate.
	Coverage int
	// EstContribution is |T2|·Coverage/θ — the RIS estimate of the
	// candidate's individual expected contribution to T2.
	EstContribution float64
}

// FactHandle identifies a ground fact by predicate and interned tuple.
type FactHandle struct {
	Pred  string
	Tuple db.Tuple
}

func (f FactHandle) key() string { return f.Pred + "\x00" + f.Tuple.Key() }

// instance is a resolved Input: candidates and targets interned against the
// database symbol table, plus the program the algorithms must evaluate
// (the input program, or its pruned form under Options.Prune).
type instance struct {
	in         Input
	candidates []FactHandle
	candOf     map[string]im.CandidateID // fact key -> candidate id
	targets    []FactHandle
	// prog is the program to evaluate/transform. Candidate enumeration,
	// scratch databases, and constant interning always use the ORIGINAL
	// in.Program so that pruning cannot perturb symbol tables, relation
	// attachment, or the T1-defaulting candidate order.
	prog        *ast.Program
	rulesTotal  int
	rulesPruned int
}

// prepare validates and resolves an Input. Unless opts.SkipAnalysis is set
// it runs the full static analyzer over the program against the database
// schema and the T2 predicates, rejecting error-severity findings with
// source positions; Program.Validate runs either way as a cheap backstop.
// With opts.Prune it additionally applies reachability-based dead-rule
// elimination toward the T2 predicates.
func prepare(in Input, opts Options) (*instance, error) {
	if in.Program == nil || in.DB == nil {
		return nil, fmt.Errorf("cm: nil program or database")
	}
	if err := in.Program.Validate(); err != nil {
		return nil, fmt.Errorf("cm: %w", err)
	}
	if !opts.SkipAnalysis {
		if err := analysis.FirstError(analysis.Analyze(in.Program, analysisOptions(in))); err != nil {
			return nil, fmt.Errorf("cm: %w", err)
		}
	}
	if in.K <= 0 {
		return nil, fmt.Errorf("cm: K must be positive, got %d", in.K)
	}
	if len(in.T2) == 0 {
		return nil, fmt.Errorf("cm: empty target set T2")
	}
	inst := &instance{
		in:         in,
		candOf:     make(map[string]im.CandidateID),
		prog:       in.Program,
		rulesTotal: len(in.Program.Rules),
	}
	if opts.Prune {
		pr := analysis.Prune(in.Program, analysis.PruneOptions{Roots: analysisOptions(in).Roots})
		inst.prog = pr.Program
		inst.rulesPruned = len(pr.Pruned)
	}

	// Pre-intern every constant of the program so that no symbol-table
	// writes happen during (possibly parallel) evaluation: the transformed
	// programs introduce no constants beyond the program's and the
	// targets' (which InternAtom below covers).
	for _, r := range in.Program.Rules {
		internAtomConsts(in.DB, r.Head)
		for _, b := range r.Body {
			internAtomConsts(in.DB, b)
		}
	}

	addCandidate := func(h FactHandle) {
		k := h.key()
		if _, dup := inst.candOf[k]; dup {
			return
		}
		inst.candOf[k] = im.CandidateID(len(inst.candidates))
		inst.candidates = append(inst.candidates, h)
	}

	if in.T1 == nil {
		// All edb facts, in deterministic (relation creation, insertion)
		// order.
		edb := map[string]bool{}
		for _, p := range in.Program.EDBs() {
			edb[p] = true
		}
		for _, name := range in.DB.RelationNames() {
			if !edb[name] {
				continue
			}
			rel, _ := in.DB.Lookup(name)
			for i := 0; i < rel.Len(); i++ {
				addCandidate(FactHandle{Pred: name, Tuple: rel.Tuple(db.TupleID(i))})
			}
		}
	} else {
		for _, a := range in.T1 {
			h, err := handleOf(in.DB, a)
			if err != nil {
				return nil, fmt.Errorf("cm: T1 atom %s: %w", a, err)
			}
			if rel, ok := in.DB.Lookup(a.Predicate); !ok {
				return nil, fmt.Errorf("cm: T1 atom %s: unknown relation", a)
			} else if _, present := rel.Contains(h.Tuple); !present {
				return nil, fmt.Errorf("cm: T1 atom %s is not a database fact", a)
			}
			addCandidate(h)
		}
	}
	if len(inst.candidates) == 0 {
		return nil, fmt.Errorf("cm: empty candidate set T1")
	}

	seenT2 := map[string]bool{}
	for _, a := range in.T2 {
		h, err := handleOf(in.DB, a)
		if err != nil {
			return nil, fmt.Errorf("cm: T2 atom %s: %w", a, err)
		}
		if !in.Program.IsIDB(a.Predicate) {
			return nil, fmt.Errorf("cm: T2 atom %s is not intensional", a)
		}
		if seenT2[h.key()] {
			continue
		}
		seenT2[h.key()] = true
		inst.targets = append(inst.targets, h)
	}
	return inst, nil
}

// analysisOptions derives the analyzer configuration from an Input: the
// database relations give the edb schema, the T2 predicates the roots.
func analysisOptions(in Input) analysis.Options {
	edb := map[string]int{}
	for _, name := range in.DB.RelationNames() {
		if rel, ok := in.DB.Lookup(name); ok {
			edb[name] = rel.Arity()
		}
	}
	var roots []string
	seen := map[string]bool{}
	for _, a := range in.T2 {
		if !seen[a.Predicate] {
			seen[a.Predicate] = true
			roots = append(roots, a.Predicate)
		}
	}
	return analysis.Options{EDB: edb, Roots: roots}
}

// internAtomConsts interns the constant terms of an atom (variables are
// skipped).
func internAtomConsts(database *db.Database, a ast.Atom) {
	for _, t := range a.Terms {
		if t.IsConst() {
			database.Symbols().Intern(t.Name)
		}
	}
}

// handleOf interns a ground atom against the database symbol table.
func handleOf(database *db.Database, a ast.Atom) (FactHandle, error) {
	t, err := database.InternAtom(a)
	if err != nil {
		return FactHandle{}, err
	}
	return FactHandle{Pred: a.Predicate, Tuple: t}, nil
}

// atomOf converts a handle back to a ground atom.
func (inst *instance) atomOf(h FactHandle) ast.Atom {
	syms := inst.in.DB.Symbols()
	terms := make([]ast.Term, len(h.Tuple))
	for i, s := range h.Tuple {
		terms[i] = ast.C(syms.Name(s))
	}
	return ast.Atom{Predicate: h.Pred, Terms: terms}
}

// seedsToAtoms maps greedy-selected candidate ids to ground atoms.
func (inst *instance) seedsToAtoms(seeds []im.CandidateID) []ast.Atom {
	out := make([]ast.Atom, len(seeds))
	for i, s := range seeds {
		out[i] = inst.atomOf(inst.candidates[int(s)])
	}
	return out
}

// relationGroups assigns each candidate a dense group id per source
// relation, for the partition-matroid selection.
func (inst *instance) relationGroups() []int32 {
	ids := map[string]int32{}
	out := make([]int32, len(inst.candidates))
	for i, h := range inst.candidates {
		id, ok := ids[h.Pred]
		if !ok {
			id = int32(len(ids))
			ids[h.Pred] = id
		}
		out[i] = id
	}
	return out
}

// theta resolves the RR-set count for this instance.
func (inst *instance) theta(opts Options) int {
	return opts.Theta.Theta(len(inst.candidates), len(inst.targets), inst.in.K)
}

// scratchFor returns a fresh database sharing in.DB's symbol table and edb
// relations (by reference). All evaluations — full WD graph construction
// included — run on such scratch databases, so the caller's database is
// never mutated with derived facts.
func scratchFor(in Input) *db.Database {
	scratch := in.DB.CloneSchema()
	for _, pred := range in.Program.EDBs() {
		if rel, ok := in.DB.Lookup(pred); ok {
			scratch.Attach(rel)
		}
	}
	return scratch
}

package cm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"contribmax/internal/analysis"
	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/im"
	"contribmax/internal/obs"
	"contribmax/internal/provenance"
	"contribmax/internal/wdgraph"
)

// ExactCM is the exact lifted evaluation tier: when every T2 predicate's
// dependency cone is hierarchical (analysis.AnalyzeHierarchy — Dalvi–Suciu
// safe, non-recursive, self-join-free), it computes the seed set by greedy
// maximization of the EXACT contribution function, evaluating
// Pr[t reachable from S] in closed form over reachability lineages instead
// of estimating it from RR samples. Result.EstContribution is then the true
// c(S ⇝ T2) and Result.ExactGains the true marginal gains; Stats.NumRR is 0
// because no sampling happened.
//
// When the cone is not hierarchical, or a lineage/evaluation budget trips
// (lineages are worst-case exponential), the solve transparently falls back
// to Magic^S CM sampling: the returned result carries that algorithm's
// name and Stats.ExactFallback records the reason. Greedy selection over
// the exact objective keeps the classic (1 − 1/e) guarantee — with no
// sampling error term, since coverage is computed exactly.
func ExactCM(in Input, opts Options) (*Result, error) {
	res, err := exactCM(in, opts)
	return observeSolve(opts, res, err)
}

func exactCM(in Input, opts Options) (*Result, error) {
	sp := opts.Trace.StartChild("ExactCM")
	defer sp.End()
	prep := sp.StartChild("prepare")
	inst, err := prepare(in, opts)
	prep.End()
	if err != nil {
		return nil, err
	}
	if reason := exactEligibility(inst); reason != "" {
		return exactFallback(in, opts, reason)
	}

	// Mirror solveVia's identity resolution so the full-graph build can hit
	// Options.Cache. The exact tier bypasses solveVia itself: it has no RR
	// collection to memoize.
	if opts.Cache != nil {
		id, _ := opts.CacheID.Resolve(in.DB, in.Program, opts.Rand == nil)
		opts.cacheIdentity = id
		opts.cacheIDValid = id.Database != "" && id.Program != ""
	}
	start := time.Now()
	res := &Result{Algorithm: "ExactCM", pl: opts.solvePlanner()}
	res.Stats.RulesTotal, res.Stats.RulesPruned = inst.rulesTotal, inst.rulesPruned
	journalSolveStart(opts, inst, "ExactCM")

	buildSpan := sp.StartChild("build")
	buildStart := time.Now()
	g, err := cachedFullGraph(in, opts, inst, res)
	if err != nil {
		return nil, err
	}
	res.Stats.BuildTime = time.Since(buildStart)
	recordBuild(&res.Stats, g)
	res.Stats.PeakResidentSize = g.Size()
	buildSpan.SetAttr("nodes", int64(g.NumNodes()))
	buildSpan.SetAttr("edges", int64(g.NumEdges()))
	buildSpan.End()

	linSpan := sp.StartChild("lineage")
	linStart := time.Now()
	tls, err := exactLineages(g, inst, opts, &res.Stats)
	res.Stats.LineageTime = time.Since(linStart)
	linSpan.SetAttr("targets", int64(res.Stats.ExactTargets))
	linSpan.SetAttr("clauses", int64(res.Stats.LineageClauses))
	linSpan.End()
	if err != nil {
		if errors.Is(err, provenance.ErrLineageBudget) {
			return exactFallback(in, opts, "lineage budget exceeded")
		}
		return nil, err
	}

	selSpan := sp.StartChild("select")
	selStart := time.Now()
	err = exactGreedy(inst, opts, res, tls)
	res.Stats.SelectTime = time.Since(selStart)
	selSpan.SetAttr("seeds", int64(len(res.Seeds)))
	selSpan.End()
	if err != nil {
		if errors.Is(err, errLiftedBudget) {
			return exactFallback(in, opts, "lifted evaluation budget exceeded")
		}
		return nil, err
	}
	if reg := opts.Obs; reg != nil {
		reg.Counter(obs.ExactSolves).Inc()
	}
	if st := res.pl.Stats(); st.Built > 0 {
		res.Stats.PlansBuilt = st.Built
		res.Stats.PlanCacheHits = st.Hits
		res.Stats.PlanAtomsReordered = st.Reordered
	}
	journalSelection(opts, inst, res)
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// exactEligibility checks every target predicate's cone against the
// hierarchy test, returning the first disqualifying reason ("" when the
// exact tier applies).
func exactEligibility(inst *instance) string {
	var roots []string
	seen := map[string]bool{}
	for _, t := range inst.targets {
		if !seen[t.Pred] {
			seen[t.Pred] = true
			roots = append(roots, t.Pred)
		}
	}
	dg := analysis.NewDepGraph(inst.prog)
	for _, h := range analysis.AnalyzeHierarchy(inst.prog, dg, roots, nil) {
		if !h.Hierarchical {
			return h.Reason
		}
	}
	return ""
}

// exactFallback reroutes an ineligible solve to MagicCM sampling, stamping
// the reason. MagicCM (not Magic^S) keeps the fallback on the same
// edge-percolation distribution the exact tier evaluates in closed form:
// Magic^S's in-evaluation draws condition RR membership on derivability,
// which diverges from percolation on joins over derived atoms. The
// fallback goes through solveVia under that algorithm's own name, so
// fallback solves share cache entries with direct MagicCM calls.
func exactFallback(in Input, opts Options, reason string) (*Result, error) {
	if reg := opts.Obs; reg != nil {
		reg.Counter(obs.ExactFallbacks).Inc()
	}
	res, err := solveVia(in, opts, "MagicCM", func(in Input, opts Options) (*Result, error) {
		return magicVariant(in, opts, "MagicCM", false)
	})
	if res != nil {
		res.Stats.ExactFallback = reason
	}
	return res, err
}

// exactTarget is one derivable target's lineage, prepared for the greedy
// loop: per-candidate clause sets plus the running selected-set union.
type exactTarget struct {
	l      *lifted
	byCand map[im.CandidateID][][]int32
	cur    [][]int32 // union of the selected candidates' clauses, normalized
	curP   float64   // Pr[cur] — Pr[target reachable from the selection]
}

// exactLineages extracts one reachability lineage per derivable target and
// indexes its sources by candidate id. Targets absent from the graph are
// skipped: they contribute 0 to every seed set.
func exactLineages(g *wdgraph.Graph, inst *instance, opts Options, st *Stats) ([]*exactTarget, error) {
	ctx := opts.ctx()
	candOfNode := candidateIndex(g, inst)
	clausesH := opts.Obs.Histogram(obs.LineageClauses)
	var out []*exactTarget
	for _, t := range inst.targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id, ok := g.FactID(t.Pred, t.Tuple)
		if !ok {
			continue
		}
		lin, err := provenance.ReachabilityLineage(g, id, provenance.DNFBudget{})
		if err != nil {
			return nil, err
		}
		et := &exactTarget{l: newLifted(lin.Vars.Probs), byCand: map[im.CandidateID][][]int32{}}
		for i, s := range lin.Sources {
			if c := candOfNode[s]; c >= 0 {
				et.byCand[im.CandidateID(c)] = lin.Clauses[i]
			}
		}
		st.ExactTargets++
		st.LineageClauses += lin.NumClauses
		st.LineageVars += lin.Vars.Len()
		clausesH.Observe(int64(lin.NumClauses))
		out = append(out, et)
	}
	return out, nil
}

// exactGreedy runs greedy contribution maximization with exact marginal
// gains: gain(c) = Σ_t (Pr[cur_t ∪ clauses_t(c)] − Pr[cur_t]). Candidates
// are scanned in ascending id order and ties keep the first, so the
// selection is deterministic. Honors MaxSeedsPerRelation like the sampled
// selections.
func exactGreedy(inst *instance, opts Options, res *Result, tls []*exactTarget) error {
	ctx := opts.ctx()
	seenC := map[im.CandidateID]bool{}
	var cands []im.CandidateID
	for _, et := range tls {
		for c := range et.byCand {
			if !seenC[c] {
				seenC[c] = true
				cands = append(cands, c)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	groups := inst.relationGroups()
	groupCount := map[int32]int{}
	selected := map[im.CandidateID]bool{}
	for iter := 0; iter < inst.in.K; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var best im.CandidateID
		bestGain, found := 0.0, false
		for _, c := range cands {
			if selected[c] {
				continue
			}
			if opts.MaxSeedsPerRelation > 0 && groupCount[groups[int(c)]] >= opts.MaxSeedsPerRelation {
				continue
			}
			gain := 0.0
			for _, et := range tls {
				cl, ok := et.byCand[c]
				if !ok {
					continue
				}
				p, err := et.l.prob(unionClauses(et.cur, cl))
				if err != nil {
					return err
				}
				gain += p - et.curP
			}
			if !found || gain > bestGain {
				found, best, bestGain = true, c, gain
			}
		}
		if !found || bestGain <= 0 {
			break
		}
		selected[best] = true
		groupCount[groups[int(best)]]++
		res.Seeds = append(res.Seeds, inst.atomOf(inst.candidates[int(best)]))
		res.ExactGains = append(res.ExactGains, bestGain)
		for _, et := range tls {
			cl, ok := et.byCand[best]
			if !ok {
				continue
			}
			et.cur = unionClauses(et.cur, cl)
			p, err := et.l.prob(et.cur)
			if err != nil {
				return err
			}
			et.curP = p
		}
	}
	total := 0.0
	for _, et := range tls {
		total += et.curP
	}
	res.EstContribution = total
	if opts.RankCandidates {
		ranking, err := exactRanking(inst, tls, cands)
		if err != nil {
			return err
		}
		res.Ranking = ranking
	}
	return nil
}

// unionClauses merges two normalized clause sets into a fresh normalized
// set — the DNF of "some selected candidate reaches the target".
func unionClauses(a, b [][]int32) [][]int32 {
	merged := make([][]int32, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return provenance.NormalizeClauses(merged)
}

// exactRanking scores every candidate's individual exact contribution
// Σ_t Pr[t reachable from {c}] — the exact analogue of rankCandidates
// (Coverage stays 0: there is no RR pool).
func exactRanking(inst *instance, tls []*exactTarget, cands []im.CandidateID) ([]CandidateScore, error) {
	scoreOf := make(map[im.CandidateID]float64, len(cands))
	for _, c := range cands {
		s := 0.0
		for _, et := range tls {
			cl, ok := et.byCand[c]
			if !ok {
				continue
			}
			p, err := et.l.prob(cl)
			if err != nil {
				return nil, err
			}
			s += p
		}
		scoreOf[c] = s
	}
	out := make([]CandidateScore, len(inst.candidates))
	for ci := range inst.candidates {
		out[ci] = CandidateScore{
			Fact:            inst.atomOf(inst.candidates[ci]),
			EstContribution: scoreOf[im.CandidateID(ci)],
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].EstContribution > out[j].EstContribution })
	return out, nil
}

// ExactContribution computes the exact contribution c(S ⇝ T2) of a seed
// set — the ground-truth oracle the agreement battery holds every sampler
// against. Unlike ExactCM it does not require a hierarchical cone: the
// lifted engine's Shannon fallback is exact on any lineage (including
// recursive cones, whose reachability DNFs simple-path enumeration still
// captures), just not polynomial; budget errors mean "too hard", not
// "wrong". Input.K is ignored.
func ExactContribution(in Input, seeds []ast.Atom, opts Options) (float64, error) {
	inst, err := prepare(in, opts)
	if err != nil {
		return 0, err
	}
	g, _, err := wdgraph.Build(inst.prog, scratchFor(in), nil, true, nil)
	if err != nil {
		return 0, err
	}
	isSeed := make([]bool, g.NumNodes())
	any := false
	for _, s := range seeds {
		id, ok, err := graphFactNode(in.DB, g, s)
		if err != nil {
			return 0, err
		}
		if ok {
			isSeed[id] = true
			any = true
		}
	}
	if !any {
		return 0, nil
	}
	total := 0.0
	for _, t := range inst.targets {
		id, ok := g.FactID(t.Pred, t.Tuple)
		if !ok {
			continue
		}
		lin, err := provenance.ReachabilityLineage(g, id, provenance.DNFBudget{})
		if err != nil {
			return 0, err
		}
		var merged [][]int32
		for i, src := range lin.Sources {
			if isSeed[src] {
				merged = append(merged, lin.Clauses[i]...)
			}
		}
		if len(merged) == 0 {
			continue
		}
		l := newLifted(lin.Vars.Probs)
		p, err := l.prob(provenance.NormalizeClauses(merged))
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

// ExactQueryProbability computes the exact conjunctive-semantics query
// probability of one ground fact via its derivation DNF — the quantity
// DerivationProbability estimates by Monte Carlo. The fact's cone must be
// non-recursive. A target that was never derived returns 0.
func ExactQueryProbability(prog *ast.Program, database *db.Database, target ast.Atom) (float64, error) {
	in := Input{Program: prog, DB: database}
	g, _, err := wdgraph.Build(prog, scratchFor(in), nil, true, nil)
	if err != nil {
		return 0, err
	}
	id, ok, err := graphFactNode(database, g, target)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	vt, clauses, err := provenance.DerivationLineage(g, id, provenance.DNFBudget{})
	if err != nil {
		return 0, err
	}
	return newLifted(vt.Probs).prob(clauses)
}

// graphFactNode resolves a ground atom to its node in g, reporting absence
// (not an error) when the fact is not part of the graph.
func graphFactNode(database *db.Database, g *wdgraph.Graph, a ast.Atom) (wdgraph.NodeID, bool, error) {
	if !a.IsGround() {
		return 0, false, fmt.Errorf("cm: exact seed %s is not ground", a)
	}
	t, err := database.InternAtom(a)
	if err != nil {
		return 0, false, err
	}
	id, ok := g.FactID(a.Predicate, t)
	return id, ok, nil
}

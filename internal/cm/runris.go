package cm

import (
	"time"

	"contribmax/internal/im"
)

// runRRPhase generates the RR collection for an instance: fixed-count per
// Options.Theta, or IMM-adaptive (Options.Adaptive) where the count is
// derived online from a certified lower bound on OPT (Remark 2). gen
// produces one RR set per call; it may reuse its output buffer (the
// collection copies).
func runRRPhase(inst *instance, opts Options, res *Result, gen im.RRGenerator) *im.RRCollection {
	start := time.Now()
	defer func() {
		res.Stats.RRGenTime += time.Since(start)
		res.Stats.NumRR = res.rrColl.Len()
	}()
	if opts.Adaptive {
		coll, _, immStats := im.IMM(gen, im.IMMParams{
			Epsilon:       opts.Theta.Epsilon,
			Delta:         opts.Theta.Delta,
			NumTargets:    len(inst.targets),
			NumCandidates: len(inst.candidates),
			K:             inst.in.K,
			MaxRR:         opts.Theta.MaxAuto,
		})
		res.Stats.AdaptiveLowerBound = immStats.LowerBound
		res.Stats.AdaptiveCapped = immStats.Capped
		res.rrColl = coll
		return coll
	}
	theta := inst.theta(opts)
	coll := im.NewRRCollection(len(inst.candidates))
	for i := 0; i < theta; i++ {
		coll.Add(gen())
	}
	res.rrColl = coll
	return coll
}

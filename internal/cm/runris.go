package cm

import (
	"context"
	"time"

	"contribmax/internal/im"
	"contribmax/internal/obs/journal"
)

// runRRPhase generates the RR collection for an instance: fixed-count per
// Options.Theta, or IMM-adaptive (Options.Adaptive) where the count is
// derived online from a certified lower bound on OPT (Remark 2). gen
// produces one RR set per call; it may reuse its output buffer (the
// collection copies). The loop checks ctx before every set and returns its
// error on cancellation, leaving the partial collection on res.
func runRRPhase(ctx context.Context, inst *instance, opts Options, res *Result, gen im.RRGenerator) error {
	start := time.Now()
	defer func() {
		res.Stats.RRGenTime += time.Since(start)
		res.Stats.NumRR = res.rrColl.Len()
	}()
	ro := newRRObs(opts.Obs)
	rec := journal.NewBatchRecorder(opts.Journal, 0)
	defer rec.Flush()
	if opts.Adaptive {
		// IMM drives generation itself; a canceled context turns further
		// sets into cheap empties so the adaptive loop unwinds promptly,
		// and the phase reports the cancellation afterwards.
		wrapped := func() []im.CandidateID {
			if ctx.Err() != nil {
				return nil
			}
			set := gen()
			ro.observe(len(set))
			rec.Observe(len(set))
			return set
		}
		coll, _, immStats := im.IMM(wrapped, im.IMMParams{
			Epsilon:       opts.Theta.Epsilon,
			Delta:         opts.Theta.Delta,
			NumTargets:    len(inst.targets),
			NumCandidates: len(inst.candidates),
			K:             inst.in.K,
			MaxRR:         opts.Theta.MaxAuto,
			Obs:           opts.Obs,
			Journal:       opts.Journal,
		})
		res.Stats.AdaptiveLowerBound = immStats.LowerBound
		res.Stats.AdaptiveCapped = immStats.Capped
		res.rrColl = coll
		return ctx.Err()
	}
	theta := inst.theta(opts)
	coll := im.NewRRCollection(len(inst.candidates))
	res.rrColl = coll
	for i := 0; i < theta; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		set := gen()
		ro.observe(len(set))
		rec.Observe(len(set))
		coll.Add(set)
	}
	return nil
}

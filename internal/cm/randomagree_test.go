package cm_test

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/db"
	"contribmax/internal/engine"
	"contribmax/internal/im"
)

// randomCMInstance builds a random positive probabilistic program and
// database with at least minTargets derivable idb tuples, or ok=false.
func randomCMInstance(rng *rand.Rand, minTargets int) (prog *ast.Program, d *db.Database, targets []ast.Atom, ok bool) {
	type predSig struct {
		name  string
		arity int
	}
	idb := []predSig{{"p0", 1}, {"p1", 2}}
	edb := []predSig{{"e0", 1}, {"e1", 2}}
	vars := []string{"X", "Y", "Z"}
	randAtom := func(p predSig) ast.Atom {
		terms := make([]ast.Term, p.arity)
		for i := range terms {
			terms[i] = ast.V(vars[rng.IntN(len(vars))])
		}
		return ast.NewAtom(p.name, terms...)
	}
	prog = ast.NewProgram()
	n := rng.IntN(3) + 2
	for i := 0; i < n; i++ {
		head := idb[rng.IntN(len(idb))]
		nBody := rng.IntN(2) + 1
		var body []ast.Atom
		for j := 0; j < nBody; j++ {
			if rng.IntN(2) == 0 {
				body = append(body, randAtom(edb[rng.IntN(len(edb))]))
			} else {
				body = append(body, randAtom(idb[rng.IntN(len(idb))]))
			}
		}
		bodyVars := ast.NewRule("", 1, ast.NewAtom("x"), body...).BodyVars()
		if len(bodyVars) == 0 {
			continue
		}
		terms := make([]ast.Term, head.arity)
		for j := range terms {
			terms[j] = ast.V(bodyVars[rng.IntN(len(bodyVars))])
		}
		prog.Add(ast.Rule{
			Label: fmt.Sprintf("r%d", i),
			Prob:  0.4 + 0.6*rng.Float64(),
			Head:  ast.NewAtom(head.name, terms...),
			Body:  body,
		})
	}
	if len(prog.Rules) == 0 || prog.Validate() != nil {
		return nil, nil, nil, false
	}
	d = db.NewDatabase()
	for i := 0; i < rng.IntN(8)+4; i++ {
		if rng.IntN(2) == 0 {
			d.MustInsertAtom(ast.NewAtom("e0", ast.C(fmt.Sprintf("c%d", rng.IntN(3)))))
		} else {
			d.MustInsertAtom(ast.NewAtom("e1",
				ast.C(fmt.Sprintf("c%d", rng.IntN(3))), ast.C(fmt.Sprintf("c%d", rng.IntN(3)))))
		}
	}
	// Evaluate on a scratch to collect derivable targets.
	scratch := d.CloneSchema()
	for _, p := range prog.EDBs() {
		if rel, found := d.Lookup(p); found {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(prog, scratch)
	if err != nil {
		return nil, nil, nil, false
	}
	if _, err := eng.Run(engine.Options{MaxRounds: 100}); err != nil {
		return nil, nil, nil, false
	}
	for _, pred := range prog.IDBs() {
		targets = append(targets, scratch.Facts(pred)...)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].String() < targets[j].String() })
	if len(targets) < minTargets {
		return nil, nil, nil, false
	}
	if len(targets) > 6 {
		targets = targets[:6]
	}
	return prog, d, targets, true
}

// TestNaiveMagicAgreeOnRandomPrograms is the Proposition 4.4 end-to-end
// property test on random programs: NaiveCM's and MagicCM's contribution
// estimates come from the same RR-set distribution, so with a large θ they
// must agree statistically on every instance.
func TestNaiveMagicAgreeOnRandomPrograms(t *testing.T) {
	instances := 0
	for trial := 0; trial < 200 && instances < 15; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xA9EE))
		prog, d, targets, ok := randomCMInstance(rng, 2)
		if !ok {
			continue
		}
		instances++
		in := cm.Input{Program: prog, DB: d, T2: targets, K: 2}
		opt := func(seed uint64) cm.Options {
			return cm.Options{
				Theta: im.ThetaSpec{Explicit: 1500},
				Rand:  rand.New(rand.NewPCG(seed, 99)),
			}
		}
		naive, err := cm.NaiveCM(in, opt(1))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, prog)
		}
		magicRes, err := cm.MagicCM(in, opt(2))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, prog)
		}
		// Absolute tolerance: each estimate has stderr <= |T2|/(2*sqrt(θ));
		// allow 6 combined sigmas.
		tol := 6 * float64(len(targets)) / math.Sqrt(1500)
		if diff := math.Abs(naive.EstContribution - magicRes.EstContribution); diff > tol {
			t.Errorf("trial %d: naive %.3f vs magic %.3f (diff %.3f > tol %.3f)\n%s",
				trial, naive.EstContribution, magicRes.EstContribution, diff, tol, prog)
		}
	}
	if instances < 5 {
		t.Fatalf("only %d usable instances", instances)
	}
}

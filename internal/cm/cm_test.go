package cm_test

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/cm"
	"contribmax/internal/im"
	"contribmax/internal/parser"
	"contribmax/internal/workload"
)

func atom(t *testing.T, s string) ast.Atom {
	t.Helper()
	a, err := parser.ParseAtom(s)
	if err != nil {
		t.Fatalf("parse atom %q: %v", s, err)
	}
	return a
}

func atoms(t *testing.T, ss ...string) []ast.Atom {
	out := make([]ast.Atom, len(ss))
	for i, s := range ss {
		out[i] = atom(t, s)
	}
	return out
}

func seedsOf(r *cm.Result) []string {
	out := make([]string, len(r.Seeds))
	for i, s := range r.Seeds {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}

// algos enumerates the four CM algorithms under one signature.
var algos = []struct {
	name string
	run  func(cm.Input, cm.Options) (*cm.Result, error)
}{
	{"NaiveCM", cm.NaiveCM},
	{"MagicCM", cm.MagicCM},
	{"MagicSCM", cm.MagicSampledCM},
	{"MagicGCM", cm.MagicGroupedCM},
}

// TestAllAlgorithmsAgreeOnClearCutInstance uses an instance with an
// unambiguous answer: two disjoint derivation chains, targets at the end of
// each, k=2 — the unique optimum is one base edge per chain.
func TestAllAlgorithmsAgreeOnClearCutInstance(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 0.8)
	d := mustFactsDB(t, `
		edge(a, b). edge(b, c).
		edge(x, y). edge(y, z).
	`)
	in := cm.Input{
		Program: prog,
		DB:      d,
		T2:      atoms(t, "tc(a, c)", "tc(x, z)"),
		K:       2,
	}
	for _, al := range algos {
		t.Run(al.name, func(t *testing.T) {
			res, err := al.run(in, cm.Options{
				Theta: im.ThetaSpec{Explicit: 400},
				Rand:  rand.New(rand.NewPCG(1, 2)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Seeds) != 2 {
				t.Fatalf("seeds = %v", res.Seeds)
			}
			got := seedsOf(res)
			// One seed per chain; any edge of a chain covers that chain's
			// target equally (all lie on every derivation path).
			var chainA, chainX int
			for _, s := range got {
				switch s {
				case "edge(a, b)", "edge(b, c)":
					chainA++
				case "edge(x, y)", "edge(y, z)":
					chainX++
				}
			}
			if chainA != 1 || chainX != 1 {
				t.Errorf("%s seeds %v do not split across chains", al.name, got)
			}
			if res.EstContribution <= 0 {
				t.Errorf("estimated contribution = %g", res.EstContribution)
			}
		})
	}
}

func mustFactsDB(t *testing.T, src string) *dbT {
	t.Helper()
	fs, err := parser.ParseFacts(src)
	if err != nil {
		t.Fatal(err)
	}
	d := newDB()
	for _, f := range fs {
		d.MustInsertAtom(f)
	}
	return d
}

// TestPaperExample37 reproduces Example 3.7: with T2 = {dealsWith(usa,
// iran), dealsWith(pakistan, india), dealsWith(russia, ukraine)} and k = 2,
// the selected set must contain dealsWith0(france, cuba) — the only tuple
// contributing to two targets — plus one contributor to the russia-ukraine
// target.
func TestPaperExample37(t *testing.T) {
	w := workload.Trade()
	in := cm.Input{
		Program: w.Program,
		DB:      w.DB,
		T2: atoms(t,
			"dealsWith(usa, iran)",
			"dealsWith(pakistan, india)",
			"dealsWith(russia, ukraine)",
		),
		K: 2,
	}
	for _, al := range algos {
		t.Run(al.name, func(t *testing.T) {
			res, err := al.run(in, cm.Options{
				Theta: im.ThetaSpec{Explicit: 800},
				Rand:  rand.New(rand.NewPCG(11, 7)),
			})
			if err != nil {
				t.Fatal(err)
			}
			got := seedsOf(res)
			if len(got) != 2 {
				t.Fatalf("seeds = %v", got)
			}
			hasFC := false
			hasRU := false
			for _, s := range got {
				if s == `dealsWith0(france, cuba)` {
					hasFC = true
				}
				if s == "exports(russia, gas)" || s == "imports(ukraine, gas)" {
					hasRU = true
				}
			}
			if !hasFC {
				t.Errorf("%s: seeds %v missing dealsWith0(france, cuba)", al.name, got)
			}
			if !hasRU {
				t.Errorf("%s: seeds %v missing a russia-ukraine contributor", al.name, got)
			}
		})
	}
}

// TestNaiveAndMagicEstimatesAgree checks Proposition 4.4 end to end: the
// contribution estimates produced from NaiveCM's RR sets and from the
// Magic variants' RR sets must agree statistically.
func TestNaiveAndMagicEstimatesAgree(t *testing.T) {
	prog := workload.TCProgram(1.0, 0.8)
	rng := rand.New(rand.NewPCG(5, 6))
	d := workload.RandomGraphM(10, 24, rng)
	derived := evalFacts(t, prog, d, "tc")
	if len(derived) < 5 {
		t.Skip("random graph too sparse")
	}
	targets := derived[:5]
	in := cm.Input{Program: prog, DB: d, T2: targets, K: 3}
	opts := func(seed uint64) cm.Options {
		return cm.Options{Theta: im.ThetaSpec{Explicit: 1200}, Rand: rand.New(rand.NewPCG(seed, 1))}
	}
	naive, err := cm.NaiveCM(in, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range algos[1:] {
		res, err := al.run(in, opts(2))
		if err != nil {
			t.Fatalf("%s: %v", al.name, err)
		}
		// Both estimate the same quantity; with θ=1200 the standard
		// error is small. Allow 15% relative tolerance (several σ).
		if rel := math.Abs(res.EstContribution-naive.EstContribution) / math.Max(naive.EstContribution, 1e-9); rel > 0.15 {
			t.Errorf("%s estimate %.3f vs NaiveCM %.3f (rel diff %.2f)",
				al.name, res.EstContribution, naive.EstContribution, rel)
		}
	}
}

// TestSeedsSubsetOfT1 checks the targeted-IM restriction (i): only T1
// members may be selected.
func TestSeedsSubsetOfT1(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 0.8)
	d := mustFactsDB(t, `edge(a, b). edge(b, c). edge(c, d).`)
	T1 := atoms(t, "edge(b, c)", "edge(c, d)")
	in := cm.Input{Program: prog, DB: d, T1: T1, T2: atoms(t, "tc(a, d)"), K: 1}
	for _, al := range algos {
		res, err := al.run(in, cm.Options{Theta: im.ThetaSpec{Explicit: 200}, Rand: rand.New(rand.NewPCG(3, 3))})
		if err != nil {
			t.Fatalf("%s: %v", al.name, err)
		}
		for _, s := range res.Seeds {
			str := s.String()
			if str != "edge(b, c)" && str != "edge(c, d)" {
				t.Errorf("%s selected %s outside T1", al.name, str)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 0.8)
	d := mustFactsDB(t, `edge(a, b).`)
	cases := []struct {
		name string
		in   cm.Input
	}{
		{"nil program", cm.Input{DB: d, T2: atoms(t, "tc(a, b)"), K: 1}},
		{"nil db", cm.Input{Program: prog, T2: atoms(t, "tc(a, b)"), K: 1}},
		{"zero k", cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, b)")}},
		{"empty T2", cm.Input{Program: prog, DB: d, K: 1}},
		{"edb target", cm.Input{Program: prog, DB: d, T2: atoms(t, "edge(a, b)"), K: 1}},
		{"T1 not in db", cm.Input{Program: prog, DB: d, T1: atoms(t, "edge(z, z)"), T2: atoms(t, "tc(a, b)"), K: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := cm.NaiveCM(c.in, cm.Options{}); err == nil {
				t.Errorf("want error")
			}
		})
	}
}

// TestStatsSanity verifies the cost accounting the figures rely on.
func TestStatsSanity(t *testing.T) {
	prog := workload.TCProgram(1.0, 0.8)
	d := workload.CompleteGraph(6)
	in := cm.Input{Program: prog, DB: d, T2: evalFacts(t, prog, d, "tc")[:4], K: 2}
	theta := 40

	naive, err := cm.NaiveCM(in, cm.Options{Theta: im.ThetaSpec{Explicit: theta}, Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stats.GraphBuilds != 1 {
		t.Errorf("NaiveCM builds = %d, want 1", naive.Stats.GraphBuilds)
	}
	if naive.Stats.NumRR != theta {
		t.Errorf("NaiveCM RR = %d, want %d", naive.Stats.NumRR, theta)
	}

	magicRes, err := cm.MagicCM(in, cm.Options{Theta: im.ThetaSpec{Explicit: theta}, Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if magicRes.Stats.GraphBuilds != theta {
		t.Errorf("MagicCM builds = %d, want %d", magicRes.Stats.GraphBuilds, theta)
	}

	sampled, err := cm.MagicSampledCM(in, cm.Options{Theta: im.ThetaSpec{Explicit: theta}, Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	// In-construction sampling must not enlarge graphs: per-build average
	// strictly below the unsampled magic average (rule probabilities < 1
	// prune aggressively on this dense instance).
	if sampled.Stats.AvgGraphSize() >= magicRes.Stats.AvgGraphSize() {
		t.Errorf("Magic^S avg graph %.1f >= MagicCM avg graph %.1f",
			sampled.Stats.AvgGraphSize(), magicRes.Stats.AvgGraphSize())
	}

	grouped, err := cm.MagicGroupedCM(in, cm.Options{Theta: im.ThetaSpec{Explicit: theta}, Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Stats.GraphBuilds != 1 {
		t.Errorf("MagicGCM builds = %d, want 1", grouped.Stats.GraphBuilds)
	}
	// The full WD graph dominates any magic subgraph.
	if naive.Stats.PeakResidentSize < grouped.Stats.PeakResidentSize {
		t.Errorf("naive peak %d < grouped peak %d", naive.Stats.PeakResidentSize, grouped.Stats.PeakResidentSize)
	}
}

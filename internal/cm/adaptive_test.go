package cm_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"contribmax/internal/cm"
	"contribmax/internal/im"
	"contribmax/internal/workload"
)

// TestAdaptiveMode exercises the IMM-based sampling (Remark 2) end to end
// on all four algorithms: the RR-set count must be chosen by the driver
// (positive, capped), the selected seeds must solve the clear-cut instance,
// and the OPT lower bound must be recorded.
func TestAdaptiveMode(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 0.8)
	d := mustFactsDB(t, `
		edge(a, b). edge(b, c).
		edge(x, y). edge(y, z).
	`)
	in := cm.Input{
		Program: prog,
		DB:      d,
		T2:      atoms(t, "tc(a, c)", "tc(x, z)"),
		K:       2,
	}
	for _, al := range algos {
		t.Run(al.name, func(t *testing.T) {
			res, err := al.run(in, cm.Options{
				Adaptive: true,
				Theta:    im.ThetaSpec{Epsilon: 0.2, Delta: 0.05, MaxAuto: 3000},
				Rand:     rand.New(rand.NewPCG(9, 9)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.NumRR <= 0 || res.Stats.NumRR > 3000 {
				t.Errorf("adaptive NumRR = %d", res.Stats.NumRR)
			}
			if res.Stats.AdaptiveLowerBound <= 0 {
				t.Errorf("lower bound = %g", res.Stats.AdaptiveLowerBound)
			}
			var chainA, chainX int
			for _, s := range seedsOf(res) {
				switch s {
				case "edge(a, b)", "edge(b, c)":
					chainA++
				case "edge(x, y)", "edge(y, z)":
					chainX++
				}
			}
			if chainA != 1 || chainX != 1 {
				t.Errorf("%s adaptive seeds %v do not split across chains", al.name, res.Seeds)
			}
			if len(res.SeedGains) != len(res.Seeds) {
				t.Errorf("SeedGains = %v for %d seeds", res.SeedGains, len(res.Seeds))
			}
		})
	}
}

// TestAdaptiveLowerBoundSane: on an instance where OPT is known (two
// deterministic one-hop targets, base probability 1), IMM's certified
// lower bound must not exceed the true optimum.
func TestAdaptiveLowerBoundSane(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 1.0)
	d := mustFactsDB(t, `edge(a, b). edge(x, y).`)
	in := cm.Input{Program: prog, DB: d, T2: atoms(t, "tc(a, b)", "tc(x, y)"), K: 2}
	res, err := cm.NaiveCM(in, cm.Options{
		Adaptive: true,
		Theta:    im.ThetaSpec{Epsilon: 0.3, MaxAuto: 2000},
		Rand:     rand.New(rand.NewPCG(4, 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// OPT = 2 (both targets deterministically covered).
	if res.Stats.AdaptiveLowerBound > 2.0+1e-9 {
		t.Errorf("lower bound %g exceeds OPT=2", res.Stats.AdaptiveLowerBound)
	}
	if res.EstContribution < 1.9 {
		t.Errorf("estimate %g, want ~2", res.EstContribution)
	}
}

// TestParallelMatchesSequential verifies the parallel RR paths of all four
// algorithms: same seed must give an equivalent (deterministic) outcome
// and identical seed sets regardless of worker count.
func TestParallelMatchesSequential(t *testing.T) {
	prog := workload.TCProgram(1.0, 0.8)
	rng := rand.New(rand.NewPCG(31, 41))
	d := workload.RandomGraphM(12, 30, rng)
	derived := evalFacts(t, prog, d, "tc")
	if len(derived) < 6 {
		t.Skip("sparse instance")
	}
	in := cm.Input{Program: prog, DB: d, T2: derived[:6], K: 3}
	opt := func(par int) cm.Options {
		return cm.Options{
			Theta:       im.ThetaSpec{Explicit: 120},
			Rand:        rand.New(rand.NewPCG(5, 5)),
			Parallelism: par,
		}
	}
	for _, algo := range []struct {
		name string
		run  func(cm.Input, cm.Options) (*cm.Result, error)
	}{
		{"NaiveCM", cm.NaiveCM},
		{"MagicCM", cm.MagicCM},
		{"MagicSCM", cm.MagicSampledCM},
		{"MagicGCM", cm.MagicGroupedCM},
	} {
		par4a, err := algo.run(in, opt(4))
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		par4b, err := algo.run(in, opt(4))
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		par8, err := algo.run(in, opt(8))
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		a, b, c := seedsOf(par4a), seedsOf(par4b), seedsOf(par8)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("%s: same seed, different results: %v vs %v", algo.name, a, b)
		}
		if fmt.Sprint(a) != fmt.Sprint(c) {
			t.Errorf("%s: worker count changed result: %v vs %v", algo.name, a, c)
		}
		if algo.name == "MagicCM" || algo.name == "MagicSCM" {
			if par4a.Stats.GraphBuilds != 120 {
				t.Errorf("%s: builds = %d, want 120", algo.name, par4a.Stats.GraphBuilds)
			}
		}
	}
}

package cm_test

import (
	"math/rand/v2"
	"testing"

	"contribmax/internal/cm"
	"contribmax/internal/workload"
)

// TestGreedyMCMatchesRISOnClearCut: the classic MC-greedy baseline must
// find the same answer as the RIS algorithms on the unambiguous instance.
func TestGreedyMCMatchesRISOnClearCut(t *testing.T) {
	prog := workload.TCProgramDirected(1.0, 0.8)
	d := mustFactsDB(t, `
		edge(a, b). edge(b, c).
		edge(x, y). edge(y, z).
	`)
	in := cm.Input{
		Program: prog,
		DB:      d,
		T2:      atoms(t, "tc(a, c)", "tc(x, z)"),
		K:       2,
	}
	res, err := cm.GreedyMCCM(in, cm.GreedyMCOptions{
		Simulations: 400,
		Options:     cm.Options{Rand: rand.New(rand.NewPCG(7, 7))},
	})
	if err != nil {
		t.Fatal(err)
	}
	var chainA, chainX int
	for _, s := range seedsOf(res) {
		switch s {
		case "edge(a, b)", "edge(b, c)":
			chainA++
		case "edge(x, y)", "edge(y, z)":
			chainX++
		}
	}
	if chainA != 1 || chainX != 1 {
		t.Errorf("GreedyMC seeds %v do not split across chains", res.Seeds)
	}
	if res.EstContribution < 1.0 {
		t.Errorf("contribution = %g", res.EstContribution)
	}
	if res.Algorithm != "GreedyMC" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}

// TestGreedyMCAgreesWithEstimator: the returned contribution must agree
// with an independent Monte-Carlo estimate of the same seed set.
func TestGreedyMCAgreesWithEstimator(t *testing.T) {
	prog := workload.TCProgram(1.0, 0.8)
	rng := rand.New(rand.NewPCG(12, 13))
	d := workload.RandomGraphM(8, 16, rng)
	derived := evalFacts(t, prog, d, "tc")
	if len(derived) < 4 {
		t.Skip("sparse instance")
	}
	in := cm.Input{Program: prog, DB: d, T2: derived[:4], K: 2}
	res, err := cm.GreedyMCCM(in, cm.GreedyMCOptions{
		Simulations: 1500,
		Options:     cm.Options{Rand: rand.New(rand.NewPCG(1, 1))},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := cm.NewEstimator(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.Contribution(res.Seeds, 20000, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.EstContribution - want; diff > 0.15 || diff < -0.15 {
		t.Errorf("GreedyMC estimate %.3f vs estimator %.3f", res.EstContribution, want)
	}
}

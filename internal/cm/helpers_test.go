package cm_test

import (
	"sort"
	"testing"

	"contribmax/internal/ast"
	"contribmax/internal/db"
	"contribmax/internal/engine"
)

// dbT aliases db.Database for brevity in the test files.
type dbT = db.Database

func newDB() *db.Database { return db.NewDatabase() }

// evalFacts evaluates prog over a scratch database sharing d's edb
// relations and returns pred's derived atoms sorted by rendering. d itself
// is left untouched.
func evalFacts(t *testing.T, prog *ast.Program, d *db.Database, pred string) []ast.Atom {
	t.Helper()
	scratch := d.CloneSchema()
	for _, p := range prog.EDBs() {
		if rel, ok := d.Lookup(p); ok {
			scratch.Attach(rel)
		}
	}
	eng, err := engine.New(prog, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(engine.Options{}); err != nil {
		t.Fatal(err)
	}
	facts := scratch.Facts(pred)
	sort.Slice(facts, func(i, j int) bool { return facts[i].String() < facts[j].String() })
	return facts
}
